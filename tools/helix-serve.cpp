//===----------------------------------------------------------------------===//
///
/// \file
/// helix-serve: the resident compile-and-simulate service.
///
/// Daemon (default mode) — listen on a local socket, serve pipeline runs
/// with process-lifetime warm caches:
///
///   helix-serve --socket /tmp/helix.sock --workers 4 --queue 64
///               --disk-cache .stagecache-serve --log serve.log
///
/// Client mode — talk to a running daemon:
///
///   helix-serve --client --socket /tmp/helix.sock --run prog.ir
///               [--pipeline profile,simulate] [--cores 4] [--stats]
///   helix-serve --client --socket /tmp/helix.sock --shutdown
///
/// Self-stress mode (the CI smoke): start an in-process daemon on a fresh
/// socket, hammer it with N submissions from K concurrent client threads
/// (mixing repeated and distinct modules), verify every response, print
/// the daemon statistics and exit non-zero on any failure:
///
///   helix-serve --self-stress 100 --clients 8
///
/// Exit codes: 0 = success, 1 = request/verification failure, 2 = usage
/// or connection error.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "serve/ServeClient.h"
#include "serve/ServeServer.h"
#include "support/Format.h"
#include "workloads/WorkloadBuilder.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace helix;

namespace {

void usage() {
  std::printf(
      "usage: helix-serve [options]\n"
      "daemon mode (default):\n"
      "  --socket PATH     listen here (default /tmp/helix-serve.sock)\n"
      "  --workers N       pipeline worker threads (0 = hardware)\n"
      "  --queue N         max runs in flight before rejection (default "
      "64)\n"
      "  --max-instrs N    per-request interpreter budget cap\n"
      "  --cache-bytes N   in-memory stage cache bound (default 256 MiB)\n"
      "  --disk-cache DIR  back the memory cache with this directory\n"
      "  --log FILE        append one line per server event\n"
      "  --trace-out FILE  write Chrome trace_event JSON of request/run "
      "spans at exit\n"
      "client mode:\n"
      "  --client          talk to a running daemon instead\n"
      "  --run FILE        submit this .ir module ('-' = stdin)\n"
      "  --pipeline STR    stage list for --run (default: standard)\n"
      "  --cores N         override NumCores for --run\n"
      "  --signal-cycles S override the selection signal latency\n"
      "  --stats           print the daemon statistics\n"
      "  --shutdown        ask the daemon to stop\n"
      "self-stress mode (CI smoke):\n"
      "  --self-stress N   submit N runs against an in-process daemon\n"
      "  --clients K       from K concurrent client threads (default 8)\n");
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 0);
  return End && *End == '\0' && End != S;
}

std::atomic<bool> GInterrupted{false};
void onSignal(int) { GInterrupted.store(true); }

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

int runDaemon(const ServeServerConfig &Config) {
  ServeServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
    return 2;
  }
  std::printf("helix-serve: listening on %s\n", Config.SocketPath.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GInterrupted.load() && !Server.shutdownRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Server.stop();

  ServeStats S = Server.stats();
  std::printf("helix-serve: served=%llu failed=%llu rejected=%llu "
              "coalesced=%llu cache=%llu/%llu (hits/misses)\n",
              (unsigned long long)S.Served, (unsigned long long)S.Failed,
              (unsigned long long)S.Rejected,
              (unsigned long long)S.Coalesced,
              (unsigned long long)S.CacheHits,
              (unsigned long long)S.CacheMisses);
  return 0;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

void printStats(const ServeStats &S) {
  std::printf("requests: received=%llu served=%llu failed=%llu "
              "rejected=%llu coalesced=%llu\n",
              (unsigned long long)S.Received, (unsigned long long)S.Served,
              (unsigned long long)S.Failed, (unsigned long long)S.Rejected,
              (unsigned long long)S.Coalesced);
  std::printf("stage cache: hits=%llu misses=%llu stores=%llu "
              "evictions=%llu\n",
              (unsigned long long)S.CacheHits,
              (unsigned long long)S.CacheMisses,
              (unsigned long long)S.CacheStores,
              (unsigned long long)S.CacheEvictions);
  std::printf("decode cache: decodes=%llu hits=%llu evictions=%llu\n",
              (unsigned long long)S.DecodeDecodes,
              (unsigned long long)S.DecodeHits,
              (unsigned long long)S.DecodeEvictions);
  for (const ServeStats::StageAgg &A : S.Stages)
    std::printf("stage %-14s executions=%llu reuses=%llu millis=%.1f\n",
                A.Name.c_str(), (unsigned long long)A.Executions,
                (unsigned long long)A.Reuses, A.Millis);
}

int runClient(const std::string &SocketPath, const std::string &RunFile,
              const std::string &PipelineText,
              const ConfigOverrides &Overrides, bool WantStats,
              bool WantShutdown) {
  ServeClient Client;
  std::string Err;
  if (!Client.connect(SocketPath, &Err)) {
    std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
    return 2;
  }

  if (!RunFile.empty()) {
    std::string ModuleText;
    if (RunFile == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      ModuleText = SS.str();
    } else {
      std::ifstream In(RunFile);
      if (!In) {
        std::fprintf(stderr, "helix-serve: cannot read %s\n",
                     RunFile.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      ModuleText = SS.str();
    }
    ServeResponse Resp;
    if (!Client.run(ModuleText, PipelineText, Overrides, Resp, &Err)) {
      std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
      return 2;
    }
    if (!Resp.Ok) {
      std::fprintf(stderr, "helix-serve: run failed: %s\n",
                   Resp.Error.c_str());
      return 1;
    }
    std::printf("speedup=%.3f model=%.3f outputs_match=%d%s\n",
                Resp.Report.Speedup, Resp.Report.ModelSpeedup,
                Resp.Report.OutputsMatch ? 1 : 0,
                Resp.Coalesced ? " (coalesced)" : "");
    for (const StageSummary &S : Resp.Stages)
      std::printf("  %-14s %-8s %8.1f ms  %llu instrs\n", S.Name.c_str(),
                  S.Source.c_str(), S.WallMillis,
                  (unsigned long long)S.InterpretedInstructions);
  }

  if (WantStats) {
    ServeStats S;
    if (!Client.stats(S, &Err)) {
      std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
      return 2;
    }
    printStats(S);
  }

  if (WantShutdown) {
    if (!Client.shutdownServer(&Err)) {
      std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
      return 2;
    }
    std::printf("helix-serve: daemon acknowledged shutdown\n");
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Self-stress (CI smoke)
//===----------------------------------------------------------------------===//

/// A small workload family: variant 0 is the repeated module (the warm
/// cache target); other variants differ in trip count, so they fingerprint
/// differently and keep the cache honest.
std::string stressModule(unsigned Variant) {
  WorkloadSpec Spec;
  Spec.Name = formatStr("stress%u", Variant);
  Spec.MainRepeat = 1;
  PhaseSpec Phase;
  Phase.Repeat = 1;
  KernelSpec K;
  K.Idiom = KernelIdiom::Reduction;
  K.N = 48 + Variant * 8;
  K.Work = 2;
  Phase.Kernels.push_back(K);
  Spec.Phases.push_back(Phase);
  return buildWorkload(Spec)->toString();
}

int runSelfStress(ServeServerConfig Config, unsigned Submissions,
                  unsigned NumClients) {
  if (Config.SocketPath.empty())
    Config.SocketPath =
        formatStr("/tmp/helix-serve-stress-%d.sock", (int)getpid());
  ServeServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "helix-serve: %s\n", Err.c_str());
    return 2;
  }

  // Pre-render the module family once; clients pick per-submission.
  std::vector<std::string> Modules;
  for (unsigned V = 0; V != 4; ++V)
    Modules.push_back(stressModule(V));

  ConfigOverrides Overrides;
  Overrides.NumCores = 4;
  Overrides.ModelProfileThreads = 1;

  std::atomic<unsigned> NextSubmission{0};
  std::atomic<unsigned> Failures{0};
  std::atomic<unsigned> OkRuns{0};
  auto ClientBody = [&](unsigned ClientIdx) {
    ServeClient Client;
    std::string CErr;
    if (!Client.connect(Config.SocketPath, &CErr)) {
      std::fprintf(stderr, "client %u: connect: %s\n", ClientIdx,
                   CErr.c_str());
      Failures.fetch_add(1);
      return;
    }
    for (;;) {
      unsigned I = NextSubmission.fetch_add(1);
      if (I >= Submissions)
        break;
      // Every other submission repeats variant 0 so the warm cache and the
      // coalescer both see heavy traffic on one key.
      const std::string &Mod = Modules[(I % 2) ? 0 : (I % Modules.size())];
      ServeResponse Resp;
      if (!Client.run(Mod, "", Overrides, Resp, &CErr)) {
        std::fprintf(stderr, "client %u: submission %u: %s\n", ClientIdx, I,
                     CErr.c_str());
        Failures.fetch_add(1);
        return; // transport is gone; this client is done
      }
      if (!Resp.Ok || !Resp.HasReport || !Resp.Report.OutputsMatch) {
        std::fprintf(stderr, "client %u: submission %u failed: %s\n",
                     ClientIdx, I, Resp.Error.c_str());
        Failures.fetch_add(1);
        continue;
      }
      OkRuns.fetch_add(1);
    }
  };

  std::vector<std::thread> Clients;
  for (unsigned C = 0; C != NumClients; ++C)
    Clients.emplace_back(ClientBody, C);
  for (std::thread &T : Clients)
    T.join();

  // A repeated identical request must now be fully warm: every training
  // stage (profile, candidates, model-profile — the persisted ones whose
  // execution interprets the program) restored from the cache with zero
  // training-interpreter instructions. Validation re-executes by design.
  {
    ServeClient Client;
    ServeResponse Resp;
    std::string CErr;
    if (!Client.connect(Config.SocketPath, &CErr) ||
        !Client.run(Modules[0], "", Overrides, Resp, &CErr) || !Resp.Ok) {
      std::fprintf(stderr, "warm-repeat check failed: %s %s\n", CErr.c_str(),
                   Resp.Error.c_str());
      Failures.fetch_add(1);
    } else {
      for (const StageSummary &S : Resp.Stages) {
        if (S.Name != "profile" && S.Name != "candidates" &&
            S.Name != "model-profile")
          continue;
        if (S.Source == "executed" || S.InterpretedInstructions != 0) {
          std::fprintf(
              stderr,
              "warm-repeat check: stage %s not served warm (source=%s, "
              "%llu interpreted instructions)\n",
              S.Name.c_str(), S.Source.c_str(),
              (unsigned long long)S.InterpretedInstructions);
          Failures.fetch_add(1);
        }
      }
    }
  }

  ServeStats S = Server.stats();
  Server.stop();
  printStats(S);
  std::printf("self-stress: %u submissions, %u clients, ok=%u failures=%u\n",
              Submissions, NumClients, OkRuns.load(), Failures.load());
  if (Failures.load() || OkRuns.load() != Submissions)
    return 1;
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// main
//===----------------------------------------------------------------------===//

int main(int Argc, char **Argv) {
  ServeServerConfig Config;
  Config.SocketPath = "/tmp/helix-serve.sock";

  bool ClientMode = false, WantStats = false, WantShutdown = false;
  bool SocketGiven = false;
  std::string RunFile, PipelineText, TraceOutPath;
  ConfigOverrides Overrides;
  uint64_t SelfStress = 0, NumClients = 8;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    uint64_t N = 0;
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--client") {
      ClientMode = true;
    } else if (Arg == "--stats") {
      WantStats = true;
    } else if (Arg == "--shutdown") {
      WantShutdown = true;
    } else if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Config.SocketPath = V;
      SocketGiven = true;
    } else if (Arg == "--run" || Arg == "--pipeline" || Arg == "--disk-cache" ||
               Arg == "--log" || Arg == "--trace-out") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      if (Arg == "--run")
        RunFile = V;
      else if (Arg == "--pipeline")
        PipelineText = V;
      else if (Arg == "--disk-cache")
        Config.DiskCachePath = V;
      else if (Arg == "--trace-out")
        TraceOutPath = V;
      else
        Config.LogPath = V;
    } else if (Arg == "--workers" || Arg == "--queue" || Arg == "--max-instrs" ||
               Arg == "--cache-bytes" || Arg == "--cores" ||
               Arg == "--self-stress" || Arg == "--clients") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N)) {
        usage();
        return 2;
      }
      if (Arg == "--workers")
        Config.Workers = unsigned(N);
      else if (Arg == "--queue")
        Config.MaxInFlight = unsigned(N);
      else if (Arg == "--max-instrs")
        Config.MaxInterpInstructions = N;
      else if (Arg == "--cache-bytes")
        Config.MemoryCacheBytes = size_t(N);
      else if (Arg == "--cores")
        Overrides.NumCores = int64_t(N);
      else if (Arg == "--self-stress")
        SelfStress = N;
      else
        NumClients = N;
    } else if (Arg == "--signal-cycles") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Overrides.SignalCycles = std::atof(V);
    } else {
      std::fprintf(stderr, "helix-serve: unknown option %s\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  if (!TraceOutPath.empty())
    obs::TraceRecorder::global().setEnabled(true);
  auto WriteTrace = [&]() {
    if (TraceOutPath.empty())
      return;
    std::string TErr;
    if (obs::TraceRecorder::global().drainToFile(TraceOutPath, &TErr))
      std::printf("helix-serve: trace: wrote %s\n", TraceOutPath.c_str());
    else
      std::fprintf(stderr, "helix-serve: trace: %s\n", TErr.c_str());
  };

  int Code;
  if (SelfStress) {
    if (!SocketGiven)
      Config.SocketPath.clear(); // pick a pid-unique stress path
    if (NumClients < 1)
      NumClients = 1;
    Code = runSelfStress(Config, unsigned(SelfStress), unsigned(NumClients));
  } else if (ClientMode) {
    Code = runClient(Config.SocketPath, RunFile, PipelineText, Overrides,
                     WantStats, WantShutdown);
  } else {
    Code = runDaemon(Config);
  }
  WriteTrace();
  return Code;
}
