//===----------------------------------------------------------------------===//
///
/// bench-diff: the CI regression gate over BENCH_*.json documents.
///
///   bench-diff --baseline bench/BENCH_baseline.json BENCH_*.json ...
///   bench-diff --baseline bench/BENCH_baseline.json --dir build/
///
/// Compares every series the baseline pins against the current run's
/// documents and prints one line per series. A "hard" series outside its
/// tolerance in the bad direction fails the run; "warn" series are logged
/// only (thread-scaling numbers on a 1-core runner, noisy wall-clock
/// series). Missing series are reported but pass by default — CI
/// legitimately runs a subset of the benches — unless --missing-is-hard.
///
/// Exit codes: 0 = within tolerance, 1 = hard regression, 2 = usage or
/// I/O or parse error.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchJson.h"
#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace helix;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: bench-diff --baseline FILE [options] [BENCH_*.json ...]\n"
      "  --baseline FILE      the pinned expectations (required)\n"
      "  --dir DIR            also read every BENCH_*.json under DIR\n"
      "  --default-tolerance P  tolerance %% for series without their own\n"
      "                       (default 10)\n"
      "  --missing-is-hard    a missing hard-gated series fails the run\n"
      "  -h, --help           this text\n");
}

bool readJsonFile(const std::string &Path, Json &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench-diff: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Err;
  if (!Json::parse(SS.str(), Out, &Err)) {
    std::fprintf(stderr, "bench-diff: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string BaselinePath;
  std::vector<std::string> CurrentPaths;
  obs::BenchDiffOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-h" || A == "--help") {
      usage();
      return 0;
    }
    if (A == "--missing-is-hard") {
      Opts.MissingIsHard = true;
    } else if (A == "--baseline" || A == "--dir" ||
               A == "--default-tolerance") {
      if (++I == argc) {
        usage();
        return 2;
      }
      if (A == "--baseline") {
        BaselinePath = argv[I];
      } else if (A == "--default-tolerance") {
        Opts.DefaultTolerancePct = std::atof(argv[I]);
      } else {
        std::error_code EC;
        std::filesystem::directory_iterator It(argv[I], EC), End;
        if (EC) {
          std::fprintf(stderr, "bench-diff: cannot read %s: %s\n", argv[I],
                       EC.message().c_str());
          return 2;
        }
        for (; It != End; It.increment(EC)) {
          if (EC)
            break;
          std::string Name = It->path().filename().string();
          if (It->is_regular_file() && Name.rfind("BENCH_", 0) == 0 &&
              It->path().extension() == ".json")
            CurrentPaths.push_back(It->path().string());
        }
      }
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "bench-diff: unknown option %s\n", A.c_str());
      usage();
      return 2;
    } else {
      CurrentPaths.push_back(A);
    }
  }
  if (BaselinePath.empty()) {
    usage();
    return 2;
  }

  Json Baseline;
  if (!readJsonFile(BaselinePath, Baseline))
    return 2;
  std::vector<Json> Current;
  for (const std::string &P : CurrentPaths) {
    Json Doc;
    if (!readJsonFile(P, Doc))
      return 2;
    Current.push_back(std::move(Doc));
  }

  obs::BenchDiffResult R = obs::benchDiff(Baseline, Current, Opts);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "bench-diff: %s\n", R.Error.c_str());
    return 2;
  }

  std::printf("%-26s %-28s %-4s %10s %10s %8s  %s\n", "bench", "series",
              "gate", "baseline", "current", "delta", "verdict");
  for (const obs::BenchDiffFinding &F : R.Findings) {
    const char *Verdict = F.Missing ? (F.Regression ? "MISSING (hard)"
                                                    : "missing")
                          : F.Regression
                              ? (F.Gate == "hard" ? "REGRESSION" : "warn")
                              : "ok";
    if (F.Missing)
      std::printf("%-26s %-28s %-4s %10.3f %10s %8s  %s\n", F.Bench.c_str(),
                  F.Series.c_str(), F.Gate.c_str(), F.Baseline, "-", "-",
                  Verdict);
    else
      std::printf("%-26s %-28s %-4s %10.3f %10.3f %+7.1f%%  %s\n",
                  F.Bench.c_str(), F.Series.c_str(), F.Gate.c_str(),
                  F.Baseline, F.Current, F.DeltaPct, Verdict);
  }
  std::printf("\n%zu series: %u hard regression(s), %u warning(s), "
              "%u missing\n",
              R.Findings.size(), R.HardRegressions, R.WarnRegressions,
              R.MissingSeries);
  return R.ok() ? 0 : 1;
}
