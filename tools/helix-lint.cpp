//===----------------------------------------------------------------------===//
///
/// helix-lint: standalone static synchronization checker for textual IR.
///
/// Each input module is parsed, every top-level loop HELIX accepts is
/// transformed in place, and the SyncChecker verifies the resulting
/// Wait/Signal contract without executing an instruction. Saved fuzz
/// repros (`--corpus-dir` over the `.ir` files helix-fuzz writes) can be
/// triaged this way far faster than re-running the dynamic oracle.
///
/// Exit codes: 0 = all modules clean, 1 = findings, 2 = usage or I/O or
/// parse error.
///
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "check/DepAudit.h"
#include "check/SyncChecker.h"
#include "helix/HelixTransform.h"
#include "ir/IRParser.h"
#include "sim/Interpreter.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace helix;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: helix-lint [options] [file.ir ...]\n"
      "\n"
      "Statically verifies the Wait/Signal synchronization contract of\n"
      "every HELIX-parallelizable loop in each module: coverage of the\n"
      "loop-carried dependences, deadlock-freedom, and sync hygiene.\n"
      "\n"
      "  --corpus-dir DIR   lint every .ir file under DIR (recursive)\n"
      "  --deps             per-loop dependence summary (alias pairs,\n"
      "                     loop-carried, pruned-by-range, segments) plus a\n"
      "                     dynamic dependence-audit verdict: the module\n"
      "                     runs once sequentially and every witnessed\n"
      "                     loop-carried dependence must be synchronized\n"
      "  --json             machine-readable report on stdout\n"
      "  --trace-out FILE   write Chrome trace_event JSON of per-file and\n"
      "                     per-pass spans at exit\n"
      "  --no-signal-opt    transform with Step 6 disabled\n"
      "  --no-scheduling    transform with Step 5 scheduling disabled\n"
      "  --no-inlining      transform with Step 5 inlining disabled\n"
      "  -h, --help         this text\n");
}

struct FileReport {
  std::string Path;
  std::string Error; ///< parse/read failure, empty otherwise
  unsigned LoopsAttempted = 0;
  unsigned LoopsTransformed = 0;
  SyncCheckResult Check;

  /// --deps mode: one Table-1-style row per transformed loop.
  struct DepRow {
    std::string Func, Header;
    unsigned AliasPairs = 0;     ///< aliasing pairs, any distance
    unsigned Carried = 0;        ///< loop-carried subset synchronized
    unsigned PrunedByRange = 0;  ///< disproved by value-range facts
    unsigned Segments = 0;       ///< sequential segments emitted
  };
  std::vector<DepRow> DepRows;
  /// --deps mode: dynamic audit of the rows above (check/DepAudit).
  bool Audited = false;
  DepAuditResult Audit;
};

FileReport lintFile(const std::string &Path, const HelixOptions &Opts,
                    bool DepsMode) {
  obs::TraceSpan FileSpan("lint:" + Path, "lint");
  FileReport FR;
  FR.Path = Path;
  std::ifstream In(Path);
  if (!In) {
    FR.Error = "cannot open file";
    return FR;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  ParseResult PR = parseModule(SS.str());
  if (!PR.succeeded()) {
    FR.Error = "parse error: " + PR.Error;
    return FR;
  }

  Module &M = *PR.M;
  AnalysisManager AM(M);
  std::vector<std::pair<Function *, BasicBlock *>> Targets;
  for (Function *F : M)
    for (Loop *L : AM.get<LoopInfo>(F).topLevelLoops())
      Targets.push_back({F, L->header()});
  std::vector<ParallelLoopInfo> Loops;
  for (auto &[F, H] : Targets) {
    ++FR.LoopsAttempted;
    if (std::optional<ParallelLoopInfo> PLI = parallelizeLoop(AM, F, H, Opts)) {
      ++FR.LoopsTransformed;
      Loops.push_back(std::move(*PLI));
    }
  }
  std::vector<const ParallelLoopInfo *> PLIs;
  for (ParallelLoopInfo &L : Loops)
    PLIs.push_back(&L);
  FR.Check = checkModuleSync(AM, PLIs);

  if (DepsMode) {
    for (const ParallelLoopInfo &PLI : Loops) {
      FileReport::DepRow Row;
      Row.Func = PLI.F->name();
      Row.Header = PLI.Header->name();
      Row.AliasPairs = PLI.NumDepsTotal;
      Row.Carried = PLI.NumDepsCarried;
      Row.PrunedByRange = PLI.NumDepsPrunedByRange;
      Row.Segments = unsigned(PLI.Segments.size());
      FR.DepRows.push_back(std::move(Row));
    }
    // Dynamic verdict: run the transformed module once (Step 9 sequential
    // semantics) and audit the witnessed cross-iteration dependences
    // against the rows above.
    if (!Loops.empty() && M.findFunction("main")) {
      DepWitnessObserver DW(PLIs);
      Interpreter Interp(M);
      Interp.setObserver(&DW);
      ExecResult R = Interp.run();
      if (R.Ok) {
        FR.Audited = true;
        FR.Audit = auditDependences(DW);
      }
    }
  }
  return FR;
}

Json reportToJson(const std::vector<FileReport> &Reports) {
  Json Files = Json::array();
  uint64_t Total = 0, Errors = 0;
  for (const FileReport &FR : Reports) {
    Json F = Json::object();
    F.set("path", Json::str(FR.Path));
    if (!FR.Error.empty()) {
      F.set("error", Json::str(FR.Error));
      ++Errors;
      Files.push(std::move(F));
      continue;
    }
    F.set("loops_attempted", Json::integer(FR.LoopsAttempted));
    F.set("loops_transformed", Json::integer(FR.LoopsTransformed));
    F.set("loops_checked", Json::integer(FR.Check.LoopsChecked));
    F.set("deps_checked", Json::integer(FR.Check.DepsChecked));
    F.set("endpoints_checked", Json::integer(FR.Check.EndpointsChecked));
    if (!FR.DepRows.empty()) {
      Json Rows = Json::array();
      for (const FileReport::DepRow &Row : FR.DepRows) {
        Json R = Json::object();
        R.set("function", Json::str(Row.Func));
        R.set("header", Json::str(Row.Header));
        R.set("alias_pairs", Json::integer(Row.AliasPairs));
        R.set("loop_carried", Json::integer(Row.Carried));
        R.set("pruned_by_range", Json::integer(Row.PrunedByRange));
        R.set("segments", Json::integer(Row.Segments));
        Rows.push(std::move(R));
      }
      F.set("deps", std::move(Rows));
    }
    if (FR.Audited) {
      Json A = Json::object();
      A.set("loops_audited", Json::integer(FR.Audit.LoopsAudited));
      A.set("witnessed", Json::integer(FR.Audit.WitnessedDeps));
      A.set("covered", Json::integer(FR.Audit.CoveredDeps));
      A.set("uncovered", Json::integer(FR.Audit.UncoveredDeps));
      A.set("static_unwitnessed",
            Json::integer(FR.Audit.StaticUnwitnessed));
      Json Diags = Json::array();
      for (const std::string &D : FR.Audit.Diags)
        Diags.push(Json::str(D));
      A.set("diags", std::move(Diags));
      F.set("dep_audit", std::move(A));
    }
    Json Findings = Json::array();
    for (const SyncDiag &D : FR.Check.Diags) {
      Json J = Json::object();
      J.set("kind", Json::str(syncDiagKindName(D.Kind)));
      J.set("function", Json::str(D.Function));
      J.set("block", Json::str(D.Block));
      if (D.InstrIndex != ~0u)
        J.set("instr", Json::integer(D.InstrIndex));
      if (D.SegmentId >= 0)
        J.set("segment", Json::integer(D.SegmentId));
      J.set("detail", Json::str(D.Detail));
      Findings.push(std::move(J));
    }
    Total += FR.Check.Diags.size();
    F.set("findings", std::move(Findings));
    Files.push(std::move(F));
  }
  Json Root = Json::object();
  Root.set("files", std::move(Files));
  Root.set("total_findings", Json::integer(int64_t(Total)));
  Root.set("file_errors", Json::integer(int64_t(Errors)));
  return Root;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Paths;
  bool JsonOut = false;
  bool DepsMode = false;
  std::string TraceOutPath;
  HelixOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-h" || A == "--help") {
      usage();
      return 0;
    }
    if (A == "--json") {
      JsonOut = true;
    } else if (A == "--deps") {
      DepsMode = true;
    } else if (A == "--no-signal-opt") {
      Opts.EnableSignalOpt = false;
    } else if (A == "--no-scheduling") {
      Opts.EnableScheduling = false;
    } else if (A == "--no-inlining") {
      Opts.EnableInlining = false;
    } else if (A == "--trace-out") {
      if (++I == argc) {
        std::fprintf(stderr, "helix-lint: --trace-out needs a file\n");
        return 2;
      }
      TraceOutPath = argv[I];
    } else if (A == "--corpus-dir") {
      if (++I == argc) {
        std::fprintf(stderr, "helix-lint: --corpus-dir needs a directory\n");
        return 2;
      }
      std::error_code EC;
      std::filesystem::recursive_directory_iterator It(argv[I], EC), End;
      if (EC) {
        std::fprintf(stderr, "helix-lint: cannot read %s: %s\n", argv[I],
                     EC.message().c_str());
        return 2;
      }
      for (; It != End; It.increment(EC)) {
        if (EC)
          break;
        if (It->is_regular_file() && It->path().extension() == ".ir")
          Paths.push_back(It->path().string());
      }
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "helix-lint: unknown option %s\n", A.c_str());
      usage();
      return 2;
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.empty()) {
    usage();
    return 2;
  }
  std::sort(Paths.begin(), Paths.end());

  if (!TraceOutPath.empty())
    obs::TraceRecorder::global().setEnabled(true);

  std::vector<FileReport> Reports;
  for (const std::string &P : Paths)
    Reports.push_back(lintFile(P, Opts, DepsMode));

  if (!TraceOutPath.empty()) {
    std::string TErr;
    if (obs::TraceRecorder::global().drainToFile(TraceOutPath, &TErr))
      std::fprintf(stderr, "helix-lint: trace: wrote %s\n",
                   TraceOutPath.c_str());
    else
      std::fprintf(stderr, "helix-lint: trace: %s\n", TErr.c_str());
  }

  bool AnyError = false, AnyFinding = false;
  for (const FileReport &FR : Reports) {
    AnyError |= !FR.Error.empty();
    AnyFinding |= !FR.Check.Diags.empty();
    AnyFinding |= FR.Audited && !FR.Audit.sound();
  }

  if (JsonOut) {
    std::printf("%s\n", reportToJson(Reports).toString().c_str());
  } else {
    for (const FileReport &FR : Reports) {
      if (!FR.Error.empty()) {
        std::printf("%s: ERROR: %s\n", FR.Path.c_str(), FR.Error.c_str());
        continue;
      }
      std::printf("%s: %s (%u/%u loops transformed, %u deps, %u endpoints "
                  "checked)\n",
                  FR.Path.c_str(),
                  FR.Check.clean() ? "clean"
                                   : formatStr("%u finding(s)",
                                               unsigned(FR.Check.Diags.size()))
                                         .c_str(),
                  FR.LoopsTransformed, FR.LoopsAttempted, FR.Check.DepsChecked,
                  FR.Check.EndpointsChecked);
      for (const SyncDiag &D : FR.Check.Diags)
        std::printf("  %s\n", D.str().c_str());
      for (const FileReport::DepRow &Row : FR.DepRows)
        std::printf("  deps @%s/%s: %u alias pair(s), %u loop-carried, "
                    "%u pruned by range, %u segment(s)\n",
                    Row.Func.c_str(), Row.Header.c_str(), Row.AliasPairs,
                    Row.Carried, Row.PrunedByRange, Row.Segments);
      if (FR.Audited) {
        std::printf("  dep audit: %s (%u loop(s), %u witnessed, %u "
                    "covered, %u uncovered, %u static unwitnessed)\n",
                    FR.Audit.sound() ? "sound" : "UNSOUND",
                    FR.Audit.LoopsAudited, FR.Audit.WitnessedDeps,
                    FR.Audit.CoveredDeps, FR.Audit.UncoveredDeps,
                    FR.Audit.StaticUnwitnessed);
        for (const std::string &D : FR.Audit.Diags)
          std::printf("    %s\n", D.c_str());
      }
    }
  }
  if (AnyError)
    return 2;
  return AnyFinding ? 1 : 0;
}
