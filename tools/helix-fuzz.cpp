//===----------------------------------------------------------------------===//
///
/// \file
/// helix-fuzz: differential fuzzing of the HELIX pipeline from the command
/// line.
///
///   helix-fuzz --seed 1 --runs 500 --corpus fuzz-corpus
///   helix-fuzz --case-seed 0xec779c3693f88501     # replay one case
///   helix-fuzz --replay fuzz-corpus/div-0003-....shrunk.ir
///
/// Each case generates a random loop program, executes it sequentially,
/// transformed-sequentially and threaded (2/4/6 workers by default), and
/// reports any checksum/trap divergence. Failing cases are shrunk and
/// written to the corpus directory as parseable .ir repro files; replay a
/// printed case seed with --case-seed, or run the differential oracle
/// directly on a saved .ir repro with --replay.
///
/// Exit codes: 0 = all cases differentially clean, 1 = divergence found,
/// 2 = bad usage, 3 = no divergence but some cases were inconclusive
/// (nothing was actually compared for them — not a clean run).
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzJson.h"
#include "fuzz/Fuzzer.h"
#include "ir/IRParser.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace helix;

namespace {

void usage() {
  std::printf(
      "usage: helix-fuzz [options]\n"
      "  --seed N          campaign seed (default 1)\n"
      "  --runs N          number of generated programs (default 100)\n"
      "  --case-seed X     replay exactly this generator seed (repeatable;\n"
      "                    overrides --seed/--runs)\n"
      "  --gen-variant N   generator variant for --case-seed replays (a\n"
      "                    coverage-guided failure names its variant)\n"
      "  --coverage-guided bias case scheduling toward generator variants\n"
      "                    that historically produced untransformed loops\n"
      "  --replay FILE     run the differential oracle on a saved .ir repro\n"
      "                    (repeatable; overrides seed-based generation)\n"
      "  --jobs N          worker threads (0 = hardware, default)\n"
      "  --threads A,B,..  thread counts of the threaded leg (default "
      "2,4,6)\n"
      "  --corpus DIR      write repro files of failing cases here\n"
      "  --shrink          shrink failing cases (default)\n"
      "  --no-shrink       keep failing cases unreduced\n"
      "  --max-instrs N    interpreter budget per sequential run\n"
      "  --inject-bug K    deliberately corrupt the transform to prove the\n"
      "                    oracle works; K = flip | drop-waits\n"
      "  --json FILE       also write the campaign summary as JSON\n"
      "  --trace-out FILE  record trace spans (one per fuzz case, plus the\n"
      "                    pipeline stages and passes under each) and write\n"
      "                    them as Chrome trace_event JSON on exit\n"
      "  --require-static-catch\n"
      "                    with --inject-bug: exit 0 iff the static sync\n"
      "                    checker flagged every case the injection hit\n"
      "                    (the injected divergences themselves are\n"
      "                    expected and do not fail the run)\n"
      "  --require-dep-sound\n"
      "                    CI soundness gate: fail unless the dependence\n"
      "                    audit actually ran (>= 1 loop audited) and every\n"
      "                    witnessed loop-carried memory dependence was\n"
      "                    covered by the static D_data\n"
      "  --no-dep-audit    skip the dependence-soundness audit leg\n");
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 0);
  return End && *End == '\0' && End != S;
}

void printAnalysisCounters(const std::vector<AnalysisCounterReport> &Counters) {
  if (Counters.empty())
    return;
  std::printf("analysis cache:");
  for (const AnalysisCounterReport &C : Counters)
    if (C.Built || C.Hits || C.Invalidated)
      std::printf(" %s=%llu/%llu/%llu", C.Analysis.c_str(),
                  (unsigned long long)C.Built, (unsigned long long)C.Hits,
                  (unsigned long long)C.Invalidated);
  std::printf(" (built/hits/invalidated)\n");
}

/// Runs the oracle directly on saved .ir repro files ('#' comment lines
/// are part of the IR grammar, so campaign repros load unmodified).
/// \returns the process exit code.
int replayFiles(const std::vector<std::string> &Files, const DiffConfig &C) {
  unsigned Divergent = 0, Inconclusive = 0;
  std::vector<AnalysisCounterReport> Counters;
  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "helix-fuzz: cannot read '%s'\n", Path.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    ParseResult P = parseModule(SS.str());
    if (!P.succeeded()) {
      std::fprintf(stderr, "helix-fuzz: '%s' does not parse: %s\n",
                   Path.c_str(), P.Error.c_str());
      return 2;
    }
    DiffOutcome O = runDifferential(*P.M, C);
    mergeAnalysisCounters(Counters, O.AnalysisCounters);
    const char *Verdict =
        O.DivergentKind == DiffOutcome::Kind::DepUnsound ? "DEP-UNSOUND"
        : O.Divergence                                   ? "DIVERGENCE"
        : O.Inconclusive                                 ? "INCONCLUSIVE"
                                                         : "clean";
    std::printf("%s: %s (%u/%u loops transformed, seq checksum %lld)%s%s\n",
                Path.c_str(), Verdict, O.LoopsTransformed, O.LoopsAttempted,
                (long long)O.SeqChecksum, O.Detail.empty() ? "" : ": ",
                O.Detail.c_str());
    // The static verdict next to the dynamic one: a confirmed finding
    // points straight at the broken Wait/Signal, and a static-only
    // finding is the repro to triage first.
    if (O.StaticFindings) {
      std::printf("  static: %u finding(s) on %u checked loop(s)\n",
                  O.StaticFindings, O.StaticLoopsChecked);
      for (const std::string &D : O.StaticDiags)
        std::printf("    %s\n", D.c_str());
    } else if (O.StaticLoopsChecked) {
      std::printf("  static: clean (%u loop(s) checked)\n",
                  O.StaticLoopsChecked);
    }
    // The dependence-audit verdict of the transformed-sequential leg: the
    // witnessed ground truth next to the static dependence set.
    if (O.DepLoopsAudited) {
      std::printf("  dep audit: %s (%u loop(s), %u witnessed, %u covered, "
                  "%u uncovered, %u static unwitnessed)\n",
                  O.DepUncovered ? "UNSOUND" : "sound", O.DepLoopsAudited,
                  O.DepWitnessed, O.DepCovered, O.DepUncovered,
                  O.DepStaticUnwitnessed);
      for (const std::string &D : O.DepDiags)
        std::printf("    %s\n", D.c_str());
    }
    Divergent += O.Divergence;
    Inconclusive += O.Inconclusive;
  }
  printAnalysisCounters(Counters);
  if (Divergent)
    return 1;
  return Inconclusive ? 3 : 0;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opt;
  std::vector<std::string> ReplayFilesList;
  bool RequireStaticCatch = false;
  bool RequireDepSound = false;
  std::string JsonPath, TraceOutPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NeedValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "helix-fuzz: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    uint64_t N = 0;
    if (Arg == "--seed") {
      if (!parseUnsigned(NeedValue(), Opt.Seed)) {
        std::fprintf(stderr, "helix-fuzz: bad --seed\n");
        return 2;
      }
    } else if (Arg == "--runs") {
      if (!parseUnsigned(NeedValue(), N)) {
        std::fprintf(stderr, "helix-fuzz: bad --runs\n");
        return 2;
      }
      Opt.Runs = unsigned(N);
    } else if (Arg == "--case-seed") {
      if (!parseUnsigned(NeedValue(), N)) {
        std::fprintf(stderr, "helix-fuzz: bad --case-seed\n");
        return 2;
      }
      Opt.CaseSeeds.push_back(N);
    } else if (Arg == "--jobs") {
      if (!parseUnsigned(NeedValue(), N)) {
        std::fprintf(stderr, "helix-fuzz: bad --jobs\n");
        return 2;
      }
      Opt.Jobs = unsigned(N);
    } else if (Arg == "--threads") {
      Opt.Diff.ThreadCounts.clear();
      std::string Spec = NeedValue();
      size_t Pos = 0;
      while (Pos < Spec.size()) {
        size_t Comma = Spec.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Spec.size();
        uint64_t T = 0;
        if (!parseUnsigned(Spec.substr(Pos, Comma - Pos).c_str(), T) ||
            T == 0) {
          std::fprintf(stderr, "helix-fuzz: bad --threads list\n");
          return 2;
        }
        Opt.Diff.ThreadCounts.push_back(unsigned(T));
        Pos = Comma + 1;
      }
      if (Opt.Diff.ThreadCounts.empty()) {
        std::fprintf(stderr, "helix-fuzz: empty --threads list\n");
        return 2;
      }
    } else if (Arg == "--gen-variant") {
      if (!parseUnsigned(NeedValue(), N)) {
        std::fprintf(stderr, "helix-fuzz: bad --gen-variant\n");
        return 2;
      }
      Opt.ReplayVariant = unsigned(N);
    } else if (Arg == "--coverage-guided") {
      Opt.CoverageGuided = true;
    } else if (Arg == "--replay") {
      ReplayFilesList.push_back(NeedValue());
    } else if (Arg == "--corpus") {
      Opt.CorpusDir = NeedValue();
    } else if (Arg == "--shrink") {
      Opt.Shrink = true;
    } else if (Arg == "--no-shrink") {
      Opt.Shrink = false;
    } else if (Arg == "--max-instrs") {
      if (!parseUnsigned(NeedValue(), Opt.Diff.MaxInstructions)) {
        std::fprintf(stderr, "helix-fuzz: bad --max-instrs\n");
        return 2;
      }
    } else if (Arg == "--inject-bug") {
      std::string Kind = NeedValue();
      if (Kind == "flip") {
        Opt.Diff.Inject = BugInjection::FlipFirstBodyOp;
      } else if (Kind == "drop-waits") {
        Opt.Diff.Inject = BugInjection::DropFirstSegmentWaits;
      } else {
        std::fprintf(stderr, "helix-fuzz: unknown --inject-bug '%s'\n",
                     Kind.c_str());
        return 2;
      }
    } else if (Arg == "--json") {
      JsonPath = NeedValue();
    } else if (Arg == "--trace-out") {
      TraceOutPath = NeedValue();
    } else if (Arg == "--require-static-catch") {
      RequireStaticCatch = true;
    } else if (Arg == "--require-dep-sound") {
      RequireDepSound = true;
    } else if (Arg == "--no-dep-audit") {
      Opt.Diff.AuditDeps = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "helix-fuzz: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  size_t NumVariants = fuzzScheduleVariants(Opt.Gen).size();
  if (Opt.ReplayVariant >= NumVariants) {
    // Falling back to the base config here would silently regenerate a
    // different module than the failing case and report it "fixed".
    std::fprintf(stderr,
                 "helix-fuzz: --gen-variant %u out of range (the variant "
                 "table has %zu entries, 0-%zu)\n",
                 Opt.ReplayVariant, NumVariants, NumVariants - 1);
    return 2;
  }

  if (!TraceOutPath.empty())
    obs::TraceRecorder::global().setEnabled(true);
  auto WriteTrace = [&] {
    if (TraceOutPath.empty())
      return;
    std::string Err;
    if (obs::TraceRecorder::global().drainToFile(TraceOutPath, &Err))
      std::printf("trace: wrote %s\n", TraceOutPath.c_str());
    else
      std::fprintf(stderr, "helix-fuzz: %s\n", Err.c_str());
  };

  if (!ReplayFilesList.empty()) {
    std::printf("helix-fuzz: replaying %zu repro file(s)\n",
                ReplayFilesList.size());
    int Code = replayFiles(ReplayFilesList, Opt.Diff);
    WriteTrace();
    return Code;
  }

  if (!Opt.CaseSeeds.empty())
    std::printf("helix-fuzz: replaying %zu case seed(s)\n",
                Opt.CaseSeeds.size());
  std::printf("helix-fuzz: seed=%llu runs=%u threads=",
              (unsigned long long)Opt.Seed,
              Opt.CaseSeeds.empty() ? Opt.Runs
                                    : unsigned(Opt.CaseSeeds.size()));
  for (size_t K = 0; K != Opt.Diff.ThreadCounts.size(); ++K)
    std::printf("%s%u", K ? "," : "", Opt.Diff.ThreadCounts[K]);
  std::printf("%s\n", Opt.Diff.Inject != BugInjection::None
                          ? " (bug injection active)"
                          : "");

  auto Start = std::chrono::steady_clock::now();
  FuzzSummary S = runFuzzCampaign(Opt);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  WriteTrace();

  if (!JsonPath.empty()) {
    Json Doc = fuzzSummaryToJson(S);
    Doc.set("seed", Json::integer(int64_t(Opt.Seed)));
    Doc.set("seconds", Json::number(Secs));
    std::ofstream Out(JsonPath);
    if (Out) {
      Out << Doc.toString() << "\n";
      std::printf("json: wrote %s\n", JsonPath.c_str());
    } else {
      std::fprintf(stderr, "helix-fuzz: cannot write '%s'\n",
                   JsonPath.c_str());
    }
  }

  std::printf("cases: %u clean, %u divergent, %u inconclusive, %u static "
              "alarms (%.1fs)\n",
              S.Clean, S.Divergent, S.Inconclusive, S.StaticAlarms, Secs);
  std::printf("static check: %llu loops verified, %llu finding(s); %u cases "
              "flagged (%u confirmed by the oracle, %u static-only)\n",
              (unsigned long long)S.StaticLoopsChecked,
              (unsigned long long)S.StaticFindings, S.StaticFlagged,
              S.StaticConfirmed, S.StaticOnly);
  if (Opt.Diff.AuditDeps)
    std::printf("dep audit: %llu loops audited, %llu deps witnessed "
                "(%llu covered, %llu uncovered); %llu static mem deps, "
                "%llu never witnessed\n",
                (unsigned long long)S.DepLoopsAudited,
                (unsigned long long)S.DepWitnessed,
                (unsigned long long)S.DepCovered,
                (unsigned long long)S.DepUncovered,
                (unsigned long long)S.DepStaticMemDeps,
                (unsigned long long)S.DepStaticUnwitnessed);
  if (Opt.Diff.Inject != BugInjection::None)
    std::printf("injection: applied in %u case(s), %u flagged statically\n",
                S.InjectedCases, S.InjectedStaticFlagged);
  std::printf("coverage: %llu loops offered, %llu parallelized, "
              "%u cases with no transformed loop\n",
              (unsigned long long)S.LoopsAttempted,
              (unsigned long long)S.LoopsTransformed, S.Untransformed);
  if (Opt.CoverageGuided) {
    std::printf("schedule:");
    for (const FuzzSummary::VariantStats &V : S.Variants)
      if (V.Cases)
        std::printf(" %s=%u(%u untransformed)", V.Name.c_str(), V.Cases,
                    V.Untransformed);
    std::printf("\n");
  }
  if (!S.PassTimings.empty()) {
    std::printf("transform pass time:");
    for (const LoopPassTiming &T : S.PassTimings)
      std::printf(" %s=%.0fms", T.Pass.c_str(), T.Millis);
    std::printf("\n");
  }
  printAnalysisCounters(S.AnalysisCounters);
  for (const FuzzFailure &F : S.Failures) {
    std::printf("%s case %u (case seed 0x%llx, replay with "
                "--case-seed 0x%llx%s): %s\n",
                F.Inconclusive    ? "INCONCLUSIVE"
                : F.StaticAlarm   ? "STATIC-ALARM"
                : F.DepUnsound    ? "DEP-UNSOUND"
                                  : "DIVERGENCE",
                F.CaseIndex,
                (unsigned long long)F.CaseSeed,
                (unsigned long long)F.CaseSeed,
                F.Variant ? formatStr(" --gen-variant %u", F.Variant).c_str()
                          : "",
                F.Detail.c_str());
    if (!F.ReproPath.empty())
      std::printf("  repro: %s\n", F.ReproPath.c_str());
    if (F.ShrunkInstrs)
      std::printf("  shrunk to %u instructions%s%s\n", F.ShrunkInstrs,
                  F.ShrunkPath.empty() ? "" : ": ", F.ShrunkPath.c_str());
  }
  if (RequireStaticCatch) {
    // Injected-bug validation mode: the injected divergences are the
    // expected outcome; what's on trial is the static checker catching
    // every one of them before execution.
    if (Opt.Diff.Inject == BugInjection::None) {
      std::fprintf(stderr,
                   "helix-fuzz: --require-static-catch needs --inject-bug\n");
      return 2;
    }
    unsigned Missed = S.InjectedCases - S.InjectedStaticFlagged;
    if (Missed || S.InjectedCases == 0) {
      std::printf("static catch: FAILED (%u/%u injected cases flagged)\n",
                  S.InjectedStaticFlagged, S.InjectedCases);
      return 1;
    }
    std::printf("static catch: OK (%u/%u injected cases flagged)\n",
                S.InjectedStaticFlagged, S.InjectedCases);
    return 0;
  }
  if (RequireDepSound) {
    // CI soundness gate: an audit that never ran (audit disabled, or no
    // loop ever transformed *and invoked*) proves nothing — fail loudly
    // instead of certifying vacuous soundness.
    if (!Opt.Diff.AuditDeps) {
      std::fprintf(stderr, "helix-fuzz: --require-dep-sound conflicts with "
                           "--no-dep-audit\n");
      return 2;
    }
    if (S.DepUncovered || S.DepLoopsAudited == 0) {
      std::printf("dep soundness: FAILED (%llu loops audited, %llu "
                  "uncovered witnesses)\n",
                  (unsigned long long)S.DepLoopsAudited,
                  (unsigned long long)S.DepUncovered);
      return 1;
    }
    std::printf("dep soundness: OK (%llu loops audited, every witnessed "
                "dependence covered)\n",
                (unsigned long long)S.DepLoopsAudited);
  }
  if (S.Divergent || S.StaticAlarms)
    return 1;
  return S.Inconclusive ? 3 : 0;
}
