#!/usr/bin/env python3
"""Regenerate bench/BENCH_baseline.json from a directory of BENCH_*.json.

Usage:
    tools/make-bench-baseline.py DIR [-o bench/BENCH_baseline.json]

Run the bench binaries with HELIX_BENCH_JSON_DIR=DIR first (see the
README's Observability section), then point this script at DIR. Every
series found is pinned with a (direction, gate, tolerance_pct) chosen by
the policy table below:

  - deterministic simulated-cycle series (fig9/fig10/... geomeans, loop
    counts, signal-latency model constants) gate *hard* with a tight
    tolerance — they only move when behavior changes;
  - wall-clock times gate *warn* with generous tolerance — CI runners
    are noisy;
  - thread-scaling rows (BM_ModelProfileStageThreads) gate *warn*: the
    recorded machine's core count is in the baseline meta, and a 1-core
    CI runner cannot reproduce multicore scaling.

The policy is first-match-wins over (bench, series) regexes.
"""

import argparse
import glob
import json
import os
import re
import sys

# (bench_regex, series_regex, direction, gate, tolerance_pct)
POLICY = [
    # Exact machine-model constants: any drift is a model change.
    (r"signal_latency", r".*", "lower", "hard", 1),
    # Deterministic simulated-cycle speedup geomeans and loop counts.
    (r"fig9_speedups", r".*", "higher", "hard", 5),
    (r"fig10_ablation", r"geomean_HELIX", "higher", "hard", 5),
    (r"fig10_ablation", r".*", "higher", "warn", 10),
    (r"fig11_time_breakdown", r"mean_parallel_pct_H", "higher", "hard", 5),
    (r"fig11_time_breakdown", r".*", "higher", "warn", 15),
    (r"fig12_latency_misestimate", r"geomean_helix", "higher", "hard", 5),
    (r"fig12_latency_misestimate", r".*", "higher", "warn", 10),
    (r"fig13_nesting_levels", r".*", "higher", "warn", 25),
    (r"table1_loop_characteristics", r"loops_.*|loop_.*", "higher", "hard", 5),
    # Dependence precision (deterministic static counts): carried deps and
    # sequential segments must only shrink, range-pruned pairs must only
    # grow — a silent precision regression fails the gate.
    (r"table1_loop_characteristics", r"dep_loop_carried|dep_segments|dep_alias_pairs",
     "lower", "hard", 5),
    (r"table1_loop_characteristics", r"dep_pruned_by_range", "higher", "hard", 5),
    (r"table1_loop_characteristics", r".*", "higher", "warn", 15),
    (r"doacross_baseline", r"geomean_helix", "higher", "hard", 5),
    (r"doacross_baseline", r".*", "higher", "warn", 15),
    (r"data_transfer_fraction", r".*", "lower", "warn", 10),
    (r"model_validation", r"worst_error_pct", "lower", "hard", 25),
    # Compiler microbenchmarks. Deterministic work counters gate hard;
    # the single-thread dispatch-throughput acceptance gate is hard with
    # a generous band (different CI silicon, same order of magnitude);
    # wall-clock and thread-scaling rows only warn.
    (r"pass_performance", r"BM_AnalysisPreservation_0_dom_built",
     "lower", "hard", 10),
    (r"pass_performance", r".*_instrs$", "higher", "hard", 5),
    # Superinstruction fusion is deterministic: the number of fused pairs
    # in the suite decode only changes when the decoder (or the workload
    # generator) changes — gate it hard and tight.
    (r"pass_performance", r".*_fused_pairs$", "higher", "hard", 5),
    (r"pass_performance", r"BM_ExecEngineVsTreeWalk_1_items_per_second",
     "higher", "hard", 60),
    (r"pass_performance", r".*_items_per_second", "higher", "warn", 60),
    (r"pass_performance", r"BM_ModelProfileStageThreads_.*",
     "lower", "warn", 100),
    (r"pass_performance", r".*_time$", "lower", "warn", 75),
    (r"pass_performance", r".*", "higher", "warn", 50),
    # Anything new defaults to a warn gate until someone pins it.
    (r".*", r".*", "higher", "warn", 25),
]


def classify(bench, series):
    for bench_re, series_re, direction, gate, tol in POLICY:
        if re.fullmatch(bench_re, bench) and re.fullmatch(series_re, series):
            return direction, gate, tol
    raise AssertionError("POLICY must end with a catch-all")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("dir", help="directory holding BENCH_*.json")
    ap.add_argument("-o", "--output", default="bench/BENCH_baseline.json")
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    paths = [p for p in paths if not p.endswith("BENCH_baseline.json")]
    if not paths:
        sys.exit(f"no BENCH_*.json under {args.dir}")

    meta = {}
    series = []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        bench = doc["bench"]
        # The newest document's machine metadata wins; good enough — the
        # baseline is refreshed from one machine in one sitting.
        meta = doc.get("meta", meta) or meta
        for s in doc.get("series", []):
            direction, gate, tol = classify(bench, s["name"])
            series.append({
                "bench": bench,
                "name": s["name"],
                "value": s["value"],
                "unit": s.get("unit", ""),
                "direction": direction,
                "gate": gate,
                "tolerance_pct": tol,
            })

    if any(s["bench"] == "pass_performance" and
           s["name"].startswith("BM_ModelProfileStageThreads") for s in series):
        meta = dict(meta)
        meta["scaling_note"] = (
            f"BM_ModelProfileStageThreads rows recorded on a "
            f"cores={meta.get('cores', '?')} machine; the near-linear "
            f"model-profile scaling claim needs a refresh on real "
            f"multicore hardware (ROADMAP item 5)")
    baseline = {"schema": 1, "meta": meta, "series": series}
    with open(args.output, "w") as f:
        json.dump(baseline, f, indent=1)
        f.write("\n")
    hard = sum(1 for s in series if s["gate"] == "hard")
    print(f"{args.output}: {len(series)} series from {len(paths)} benches "
          f"({hard} hard-gated)")


if __name__ == "__main__":
    main()
