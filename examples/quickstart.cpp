//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a small loop with the IR builder, parallelize it with
/// HELIX, inspect the sequential segments the transformation created, and
/// compare sequential vs simulated-parallel execution time.
///
/// Run: ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "ir/IRBuilder.h"
#include "pipeline/PipelineBuilder.h"
#include "sim/TraceCollector.h"

#include <cstdio>

using namespace helix;

namespace {

/// for (i = 0; i < 4096; ++i) { sum += a[i]; a[i] = f(a[i]); }
/// One tiny register-carried dependence (sum) inside a big parallel body.
std::unique_ptr<Module> buildProgram() {
  auto M = std::make_unique<Module>();
  unsigned A = M->createGlobal("a", 4096);

  Function *F = M->createFunction("main", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *InitHdr = F->createBlock("inithdr");
  BasicBlock *InitBody = F->createBlock("initbody");
  BasicBlock *Hdr = F->createBlock("hdr");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  using Op = Operand;

  B.setInsertPoint(Entry);
  unsigned I0 = B.mov(Op::immInt(0));
  B.br(InitHdr);
  B.setInsertPoint(InitHdr);
  unsigned C0 = B.cmpLT(Op::reg(I0), Op::immInt(4096));
  B.condBr(Op::reg(C0), InitBody, Hdr);
  B.setInsertPoint(InitBody);
  unsigned Addr0 = B.add(Op::global(A), Op::reg(I0));
  unsigned V0 = B.mul(Op::reg(I0), Op::immInt(2654435761));
  B.store(Op::reg(V0), Op::reg(Addr0));
  B.binaryTo(I0, Opcode::Add, Op::reg(I0), Op::immInt(1));
  B.br(InitHdr);

  B.setInsertPoint(Hdr);
  // Loop variables live in fixed registers.
  // Loop registers I and Sum start at zero (fresh registers are
  // zero-initialized by the interpreter).
  unsigned I = F->allocReg(), Sum = F->allocReg();
  unsigned C = B.cmpLT(Op::reg(I), Op::immInt(4096));
  B.condBr(Op::reg(C), Body, Exit);
  B.setInsertPoint(Body);
  unsigned Addr = B.add(Op::global(A), Op::reg(I));
  unsigned V = B.load(Op::reg(Addr));
  B.binaryTo(Sum, Opcode::Add, Op::reg(Sum), Op::reg(V)); // carried dep
  unsigned T1 = B.binary(Opcode::Xor, Op::reg(V), Op::immInt(0x5bd1e995));
  unsigned T2 = B.mul(Op::reg(T1), Op::immInt(31));
  unsigned T3 = B.binary(Opcode::Shr, Op::reg(T2), Op::immInt(3));
  unsigned T4 = B.add(Op::reg(T3), Op::reg(I));
  B.store(Op::reg(T4), Op::reg(Addr));
  B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
  B.br(Hdr);
  B.setInsertPoint(Exit);
  B.ret(Op::reg(Sum));
  return M;
}

} // namespace

int main() {
  std::unique_ptr<Module> M = buildProgram();
  std::printf("== HELIX quickstart ==\n\n");

  // Parallelize the summation loop directly (low-level API).
  {
    auto Clone = cloneModule(*M);
    AnalysisManager AM(*Clone);
    Function *F = Clone->findFunction("main");
    BasicBlock *Header = F->findBlock("hdr");
    HelixOptions Opts;
    std::optional<ParallelLoopInfo> PLI =
        parallelizeLoop(AM, F, Header, Opts);
    if (!PLI) {
      std::printf("loop not parallelizable\n");
      return 1;
    }
    std::printf("loop @main/hdr parallelized:\n");
    std::printf("  dependences to synchronize : %u (of %u found)\n",
                PLI->NumDepsCarried, PLI->NumDepsTotal);
    std::printf("  sequential segments        : %zu\n",
                PLI->Segments.size());
    std::printf("  waits  inserted -> kept    : %u -> %u\n",
                PLI->NumWaitsInserted, PLI->NumWaitsKept);
    std::printf("  signals inserted -> kept   : %u -> %u\n",
                PLI->NumSignalsInserted, PLI->NumSignalsKept);
    std::printf("  boundary slots             : %zu\n\n",
                PLI->SlotOfReg.size());

    // Execute the transformed program sequentially and replay its trace on
    // the simulated 6-core machine.
    std::vector<const ParallelLoopInfo *> PLIs = {&*PLI};
    TraceCollector TC(PLIs);
    Interpreter Interp(*Clone);
    Interp.setObserver(&TC);
    ExecResult R = Interp.run();
    std::printf("transformed run: ok=%d checksum=%lld seqCycles=%llu\n",
                R.Ok, (long long)R.ReturnValue.asInt(),
                (unsigned long long)R.Cycles);

    SimConfig SC;
    SimStats Stats = simulateLoop(TC.traces()[0], SC);
    std::printf("simulated on %u cores: loop %llu -> %llu cycles "
                "(%.2fx), %llu signals, %llu data transfers\n\n",
                SC.NumCores, (unsigned long long)Stats.SeqCycles,
                (unsigned long long)Stats.ParallelCycles,
                double(Stats.SeqCycles) / double(Stats.ParallelCycles),
                (unsigned long long)Stats.SignalsSent,
                (unsigned long long)Stats.DataTransfers);
  }

  // The same thing through the composable pipeline (high-level API): build
  // the standard stage sequence from a pipeline string, instrument it, and
  // run it against a reusable context.
  std::string Err;
  Pipeline P =
      PipelineBuilder()
          .parse("profile,candidates,model-profile,select,transform,"
                 "validate,simulate")
          .instrument([](const PipelineContext::StageRun &R) {
            if (R.Cached)
              std::printf("  stage %-13s : cached\n", R.Name.c_str());
            else
              std::printf("  stage %-13s : %7.2f ms  %9llu interp instrs\n",
                          R.Name.c_str(), R.WallMillis,
                          (unsigned long long)R.InterpretedInstructions);
          })
          .build(&Err);
  if (!Err.empty()) {
    std::printf("pipeline build error: %s\n", Err.c_str());
    return 1;
  }

  PipelineContext Ctx(*M);
  std::printf("pipeline '%s':\n", P.str().c_str());
  PipelineReport Report = P.run(Ctx);
  std::printf("pipeline: ok=%d outputsMatch=%d chosen=%zu "
              "speedup=%.2fx (model %.2fx)\n\n",
              Report.Ok, Report.OutputsMatch, Report.Loops.size(),
              Report.Speedup, Report.ModelSpeedup);

  // Re-running after changing only a selection knob reuses the cached
  // profiling stages (the expensive part) and re-runs selection onward.
  PipelineConfig Sweep;
  Sweep.Selection.SignalCycles = 110.0;
  Ctx.setConfig(Sweep);
  std::printf("re-run with Selection.SignalCycles=110:\n");
  PipelineReport R110 = P.run(Ctx);
  std::printf("pipeline: ok=%d outputsMatch=%d chosen=%zu speedup=%.2fx "
              "(profile executed %ux, reused %ux)\n",
              R110.Ok, R110.OutputsMatch, R110.Loops.size(), R110.Speedup,
              Ctx.timesExecuted("profile"), Ctx.timesReused("profile"));

  return Report.Ok && Report.OutputsMatch && R110.Ok && R110.OutputsMatch
             ? 0
             : 1;
}
