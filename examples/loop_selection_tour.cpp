//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-selection tour (the Figure 8 walk-through): build a benchmark,
/// profile it, print the dynamic loop nesting graph with the T / maxT
/// attributes of the speedup model, and show which loops the two-phase
/// algorithm selects — and how the choice shifts when the assumed signal
/// latency changes.
///
/// Run: ./examples/loop_selection_tour [benchmark-name]
///
//===----------------------------------------------------------------------===//

#include "driver/HelixDriver.h"
#include "workloads/WorkloadBuilder.h"

#include <cstdio>
#include <cstring>

using namespace helix;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "twolf";
  std::unique_ptr<Module> M = buildSpecWorkload(Name);
  if (!M) {
    std::printf("unknown benchmark '%s'\n", Name);
    return 1;
  }
  std::printf("== Loop selection on %s (Figure 8 methodology) ==\n\n", Name);

  for (double S : {4.0, 110.0}) {
    PipelineConfig Config;
    Config.Selection.SignalCycles = S;
    PipelineReport R = runHelixPipeline(*M, Config);
    if (!R.Ok) {
      std::printf("pipeline failed: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("assumed signal latency S = %.0f cycles:\n", S);
    std::printf("  candidates=%u chosen=%zu speedup=%.2fx "
                "(model %.2fx)\n",
                R.NumCandidates, R.Loops.size(), R.Speedup,
                R.ModelSpeedup);
    for (const LoopReport &L : R.Loops)
      std::printf("    level %u  %-28s segs=%u  P=%llu/%llu cycles\n",
                  L.NestingLevel, L.Name.c_str(), L.NumSegments,
                  (unsigned long long)L.Inputs.ParallelCycles,
                  (unsigned long long)L.Inputs.SeqCycles);
    std::printf("\n");
  }

  std::printf("higher assumed latency pushes selection toward outermost "
              "loops\n(or drops unprofitable loops entirely), exactly "
              "Figure 13's effect.\n");
  return 0;
}
