//===----------------------------------------------------------------------===//
///
/// \file
/// Irregular-workload example: a linked-list traversal with a histogram
/// update — the kind of loop DOALL techniques cannot touch (irregular
/// control flow, irregular memory accesses). HELIX parallelizes it
/// non-speculatively and the example runs it three ways:
///   1. sequential interpretation (reference),
///   2. real std::thread execution through the HELIX runtime,
///   3. the CMP timing simulator, reporting the predicted speedup.
///
/// Run: ./examples/irregular_linked_list
///
//===----------------------------------------------------------------------===//

#include "driver/HelixDriver.h"
#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "runtime/ThreadedRuntime.h"
#include "sim/TraceCollector.h"
#include "workloads/WorkloadBuilder.h"

#include <cstdio>

using namespace helix;

int main() {
  std::printf("== HELIX on an irregular workload ==\n\n");

  // A program mixing a pointer chase (serial dependence chain) with a
  // histogram (irregular updates, parallel work per element).
  WorkloadSpec Spec;
  Spec.Name = "irregular";
  Spec.Seed = 12345;
  Spec.MainRepeat = 2;
  Spec.Phases = {{2,
                  false,
                  {{KernelIdiom::PointerChase, 400, 8},
                   {KernelIdiom::Histogram, 300, 120}}}};
  std::unique_ptr<Module> M = buildWorkload(Spec);

  Interpreter Ref(*M);
  ExecResult Seq = Ref.run();
  std::printf("sequential checksum : %lld (%llu cycles)\n",
              (long long)Seq.ReturnValue.asInt(),
              (unsigned long long)Seq.Cycles);

  // Parallelize both kernel loops in a clone.
  CloneMap Map;
  auto Par = cloneModule(*M, &Map);
  AnalysisManager AM(*Par);
  HelixOptions Opts;
  std::vector<ParallelLoopInfo> Loops;
  std::vector<std::pair<Function *, BasicBlock *>> Targets;
  for (Function *F : *Par) {
    if (F->name().find(".k") == std::string::npos)
      continue;
    for (Loop *L : AM.get<LoopInfo>(F).topLevelLoops())
      Targets.push_back({F, L->header()});
  }
  for (auto &[F, H] : Targets)
    if (auto PLI = parallelizeLoop(AM, F, H, Opts))
      Loops.push_back(std::move(*PLI));

  for (const ParallelLoopInfo &PLI : Loops)
    std::printf("loop @%s: %zu segment(s), %s prologue, %u->%u signals\n",
                PLI.F->name().c_str(), PLI.Segments.size(),
                PLI.SelfStartingPrologue ? "self-starting" : "chained",
                PLI.NumSignalsInserted, PLI.NumSignalsKept);

  // Real threads.
  std::vector<const ParallelLoopInfo *> Ptrs;
  for (auto &L : Loops)
    Ptrs.push_back(&L);
  RuntimeStats Stats;
  ExecResult Thr = runThreaded(*Par, Ptrs, 4, &Stats);
  std::printf("\nthreaded checksum   : %lld on 4 threads "
              "(%llu invocations, %llu iterations, %llu signals) -> %s\n",
              (long long)Thr.ReturnValue.asInt(),
              (unsigned long long)Stats.ParallelInvocations,
              (unsigned long long)Stats.ParallelIterations,
              (unsigned long long)Stats.SignalsSent,
              Thr.Ok && Thr.ReturnValue == Seq.ReturnValue ? "MATCH"
                                                           : "MISMATCH");

  // Timing: the full pipeline lets loop selection decide, and it rejects
  // the pointer chase (serial chain + per-signal latency) while keeping
  // the histogram.
  PipelineConfig Config;
  PipelineReport Report = runHelixPipeline(*M, Config);
  std::printf("pipeline (6 cores)  : speedup %.2fx, %zu of %u candidate "
              "loops chosen\n",
              Report.Speedup, Report.Loops.size(), Report.NumCandidates);
  for (const LoopReport &L : Report.Loops)
    std::printf("  chosen: %s\n", L.Name.c_str());
  std::printf("\nthe pointer chase is rejected by selection (serial "
              "dependence chain);\nthe histogram's parallel work "
              "dominates and speeds the program up.\n");
  return Thr.Ok && Thr.ReturnValue == Seq.ReturnValue && Report.Ok ? 0 : 1;
}
