//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.4, model validation: the Equation-1 speedup predicted from
/// profile data vs the speedup measured by the cycle-level simulation.
/// The paper reports an error below 4% for every benchmark.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Speedup model validation (Section 3.4)", "Section 3.4");
  std::printf("%-10s %10s %10s %8s\n", "benchmark", "model", "measured",
              "error");

  double WorstError = 0;
  sweepEachBenchmark(
      {PipelineConfig()},
      [&](const WorkloadSpec &Spec, unsigned, const PipelineReport &R) {
        double Err = R.Speedup > 0
                         ? 100.0 * std::fabs(R.ModelSpeedup - R.Speedup) /
                               R.Speedup
                         : 0.0;
        WorstError = std::max(WorstError, Err);
        std::printf("%-10s %9.2fx %9.2fx %7.1f%%\n", Spec.Name.c_str(),
                    R.ModelSpeedup, R.Speedup, Err);
      },
      [](const WorkloadSpec &, const PipelineContext &) {});
  std::printf("\npaper: error below 4%% on every benchmark\n");
  std::printf("here : worst-case error %.1f%%\n", WorstError);

  obs::BenchJsonWriter W("model_validation");
  W.add("worst_error_pct", WorstError, "pct");
  W.write();
  return 0;
}
