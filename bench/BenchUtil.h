//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark harnesses: suite iteration, geometric
/// mean, table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_BENCH_BENCHUTIL_H
#define HELIX_BENCH_BENCHUTIL_H

#include "driver/HelixDriver.h"
#include "pipeline/PipelineBuilder.h"
#include "workloads/WorkloadBuilder.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace helix {
namespace bench {

inline double geoMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(std::max(1e-9, V));
  return std::exp(LogSum / double(Values.size()));
}

/// Runs the pipeline over the whole suite with one configuration,
/// invoking \p PerBench for every (spec, report).
template <typename FnT>
void forEachBenchmark(const DriverConfig &Config, FnT PerBench) {
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    PipelineReport Report = runHelixPipeline(*M, Config);
    PerBench(Spec, Report);
  }
}

/// Sweeps several configurations over every suite benchmark through one
/// PipelineContext per benchmark, so stages whose configuration slice is
/// unchanged between points (typically the training-run profile) are
/// reused instead of recomputed. \p PerRun is invoked as
/// (spec, configIndex, report); \p PerBench (spec, context) after each
/// benchmark's sweep, e.g. to report cache reuse.
template <typename PerRunT, typename PerBenchT>
void sweepEachBenchmark(const std::vector<PipelineConfig> &Configs,
                        PerRunT PerRun, PerBenchT PerBench) {
  Pipeline P = PipelineBuilder::standard();
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    PipelineContext Ctx(*M);
    for (size_t K = 0; K != Configs.size(); ++K) {
      Ctx.setConfig(Configs[K]);
      PipelineReport Report = P.run(Ctx);
      PerRun(Spec, unsigned(K), Report);
    }
    PerBench(Spec, Ctx);
  }
}

inline void printHeader(const char *Title, const char *Reference) {
  std::printf("==========================================================\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of Campanoni et al., CGO 2012)\n", Reference);
  std::printf("==========================================================\n");
}

} // namespace bench
} // namespace helix

#endif // HELIX_BENCH_BENCHUTIL_H
