//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark harnesses: suite iteration with
/// stage-result reuse (in-memory across configuration points, on-disk
/// across invocations), geometric mean, table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_BENCH_BENCHUTIL_H
#define HELIX_BENCH_BENCHUTIL_H

#include "obs/BenchJson.h"
#include "pipeline/PipelineBuilder.h"
#include "pipeline/StageCache.h"
#include "workloads/WorkloadBuilder.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace helix {
namespace bench {

inline double geoMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(std::max(1e-9, V));
  return std::exp(LogSum / double(Values.size()));
}

/// The disk-persistent stage cache every bench harness shares. Directory:
/// $HELIX_STAGE_CACHE_DIR, defaulting to ".helix-stage-cache" under the
/// working directory; set it to "off" to disable. A second invocation of
/// any harness restores the training-run stages (profile, candidates,
/// model-profile) from here with zero interpreter instructions.
inline DiskStageCache *defaultStageCache() {
  static std::unique_ptr<DiskStageCache> Cache = [] {
    const char *Env = std::getenv("HELIX_STAGE_CACHE_DIR");
    std::string Dir = Env ? Env : ".helix-stage-cache";
    if (Dir.empty() || Dir == "off" || Dir == "0")
      return std::unique_ptr<DiskStageCache>();
    auto C = std::make_unique<DiskStageCache>(Dir);
    if (!C->ok()) {
      std::fprintf(stderr,
                   "warning: stage cache directory '%s' unusable; "
                   "running cold\n",
                   Dir.c_str());
      return std::unique_ptr<DiskStageCache>();
    }
    return C;
  }();
  return Cache.get();
}

/// Sweeps several configurations over one workload through a single
/// PipelineContext wired to the shared disk cache: stages whose
/// configuration slice is unchanged between points are reused in memory,
/// and training runs recorded by an earlier process are restored from
/// disk. \p PerRun is invoked as (configIndex, report); \p PerWorkload
/// (context) once afterwards, e.g. to report cache reuse.
template <typename PerRunT, typename PerWorkloadT>
void sweepWorkload(const std::string &Name, const Module &M,
                   const std::vector<PipelineConfig> &Configs, PerRunT PerRun,
                   PerWorkloadT PerWorkload) {
  Pipeline P = PipelineBuilder::standard();
  PipelineContext Ctx(M);
  Ctx.setDiskCache(defaultStageCache(), Name);
  for (size_t K = 0; K != Configs.size(); ++K) {
    Ctx.setConfig(Configs[K]);
    PipelineReport Report = P.run(Ctx);
    PerRun(unsigned(K), Report);
  }
  PerWorkload(Ctx);
}

/// Sweeps several configurations over every suite benchmark (one context
/// per benchmark, see sweepWorkload). \p PerRun is invoked as
/// (spec, configIndex, report); \p PerBench (spec, context) after each
/// benchmark's sweep.
template <typename PerRunT, typename PerBenchT>
void sweepEachBenchmark(const std::vector<PipelineConfig> &Configs,
                        PerRunT PerRun, PerBenchT PerBench) {
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    sweepWorkload(
        Spec.Name, *M, Configs,
        [&](unsigned K, const PipelineReport &R) { PerRun(Spec, K, R); },
        [&](const PipelineContext &Ctx) { PerBench(Spec, Ctx); });
  }
}

/// One-line summary of where a context's training work came from, for the
/// harnesses' per-benchmark "checks" column.
inline std::string trainingSourceNote(const PipelineContext &Ctx) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "profile ran %ux, reused %ux, disk %ux",
                Ctx.timesExecuted("profile"), Ctx.timesReused("profile"),
                Ctx.timesLoadedFromDisk("profile"));
  return Buf;
}

inline void printHeader(const char *Title, const char *Reference) {
  std::printf("==========================================================\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of Campanoni et al., CGO 2012)\n", Reference);
  std::printf("==========================================================\n");
}

} // namespace bench
} // namespace helix

#endif // HELIX_BENCH_BENCHUTIL_H
