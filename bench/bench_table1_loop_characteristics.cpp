//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: characteristics of the parallelized loops — how many loops were
/// chosen vs candidates, the fraction of loop-carried dependences, the
/// fraction of synchronization removed by Step 6, the fraction of data
/// actually forwarded between cores, and the maximum per-loop code size.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Table 1: characteristics of parallelized loops", "Table 1");
  std::printf("%-10s %6s %6s %9s %9s %9s %8s\n", "benchmark", "par",
              "cand", "carried%", "sigrem%", "xfer%", "code(KB)");

  uint64_t Parallelized = 0, Candidates = 0;
  uint64_t AliasPairs = 0, Carried = 0, PrunedByRange = 0, Segments = 0;
  std::vector<double> CarriedPcts, SigRemPcts;
  sweepEachBenchmark(
      {PipelineConfig()},
      [&](const WorkloadSpec &Spec, unsigned, const PipelineReport &R) {
        // Code size: ~8 bytes per IR instruction (one machine word each).
        double CodeKB = double(R.MaxCodeInstrs) * 8.0 / 1024.0;
        std::printf("%-10s %6zu %6u %8.1f%% %8.1f%% %8.2f%% %8.1f %s\n",
                    Spec.Name.c_str(), R.Loops.size(), R.NumCandidates,
                    R.LoopCarriedPct, R.SignalsRemovedPct, R.DataTransferPct,
                    CodeKB, R.OutputsMatch ? "" : "OUTPUT-MISMATCH");
        Parallelized += R.Loops.size();
        Candidates += R.NumCandidates;
        for (const LoopReport &L : R.Loops) {
          AliasPairs += L.NumDepsTotal;
          Carried += L.NumDepsCarried;
          PrunedByRange += L.NumDepsPrunedByRange;
          Segments += L.NumSegments;
        }
        if (!R.Loops.empty()) {
          CarriedPcts.push_back(R.LoopCarriedPct);
          SigRemPcts.push_back(R.SignalsRemovedPct);
        }
      },
      [](const WorkloadSpec &, const PipelineContext &) {});

  std::printf("\ndependences: %llu alias pairs, %llu loop-carried, "
              "%llu pruned by value range, %llu segments\n",
              (unsigned long long)AliasPairs, (unsigned long long)Carried,
              (unsigned long long)PrunedByRange,
              (unsigned long long)Segments);
  std::printf("\npaper ranges: carried 12-54%%, signals removed 80-98%%,\n"
              "              data transfers 0.1-12%%, code 30-100KB\n");

  obs::BenchJsonWriter W("table1_loop_characteristics");
  W.add("loops_parallelized", double(Parallelized), "loops");
  W.add("loop_candidates", double(Candidates), "loops");
  double CarriedSum = 0, SigRemSum = 0;
  for (double V : CarriedPcts)
    CarriedSum += V;
  for (double V : SigRemPcts)
    SigRemSum += V;
  if (!CarriedPcts.empty())
    W.add("mean_carried_pct", CarriedSum / double(CarriedPcts.size()), "pct");
  if (!SigRemPcts.empty())
    W.add("mean_sigrem_pct", SigRemSum / double(SigRemPcts.size()), "pct");
  W.add("dep_alias_pairs", double(AliasPairs), "deps");
  W.add("dep_loop_carried", double(Carried), "deps");
  W.add("dep_pruned_by_range", double(PrunedByRange), "deps");
  W.add("dep_segments", double(Segments), "segments");
  W.write();
  return 0;
}
