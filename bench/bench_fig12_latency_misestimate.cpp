//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 12: the impact of mis-estimating the signal latency during loop
/// selection. Selecting with an aggressive 0-cycle assumption picks deeply
/// nested loops whose synchronization then costs far more than predicted
/// (slowdowns); a 110-cycle overestimate deters the algorithm from
/// profitable loops and leaves speedup on the table.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 12: impact of mis-estimated signal latency in loop "
              "selection",
              "Figure 12");
  std::printf("%-10s %14s %14s %14s\n", "benchmark", "under (S=0)",
              "over (S=110)", "HELIX");

  std::vector<std::vector<double>> All(3);
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    double S[3];
    const double Latency[3] = {0.0, 110.0, -1.0};
    for (unsigned K = 0; K != 3; ++K) {
      DriverConfig Config;
      Config.SelectionSignalCycles = Latency[K];
      PipelineReport R = runHelixPipeline(*M, Config);
      S[K] = R.Speedup;
      if (R.Ok)
        All[K].push_back(R.Speedup);
    }
    std::printf("%-10s %13.2fx %13.2fx %13.2fx\n", Spec.Name.c_str(), S[0],
                S[1], S[2]);
  }
  std::printf("%-10s %13.2fx %13.2fx %13.2fx\n", "geoMean", geoMean(All[0]),
              geoMean(All[1]), geoMean(All[2]));
  std::printf("\npaper: underestimating S causes slowdowns (< 1x) on most "
              "benchmarks;\noverestimating forfeits speedup vs Figure 9\n");
  return 0;
}
