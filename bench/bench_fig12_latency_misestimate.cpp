//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 12: the impact of mis-estimating the signal latency during loop
/// selection. Selecting with an aggressive 0-cycle assumption picks deeply
/// nested loops whose synchronization then costs far more than predicted
/// (slowdowns); a 110-cycle overestimate deters the algorithm from
/// profitable loops and leaves speedup on the table.
///
/// Only the selection knob varies, so the shared-context sweep reuses the
/// training run AND the per-candidate model profiling across all three
/// points: each benchmark is profiled once instead of three times.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 12: impact of mis-estimated signal latency in loop "
              "selection",
              "Figure 12");
  std::printf("%-10s %14s %14s %14s   %s\n", "benchmark", "under (S=0)",
              "over (S=110)", "HELIX", "profile/model-profile runs");

  const double Latency[3] = {0.0, 110.0, -1.0};
  std::vector<PipelineConfig> Configs;
  for (double S : Latency) {
    PipelineConfig C;
    C.Selection.SignalCycles = S;
    Configs.push_back(C);
  }

  std::vector<std::vector<double>> All(3);
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &Spec, unsigned K, const PipelineReport &R) {
        if (K == 0)
          std::printf("%-10s", Spec.Name.c_str());
        std::printf(" %13.2fx", R.Speedup);
        if (R.Ok)
          All[K].push_back(R.Speedup);
      },
      [](const WorkloadSpec &, const PipelineContext &Ctx) {
        std::printf("   %ux / %ux\n", Ctx.timesExecuted("profile"),
                    Ctx.timesExecuted("model-profile"));
      });
  std::printf("%-10s %13.2fx %13.2fx %13.2fx\n", "geoMean", geoMean(All[0]),
              geoMean(All[1]), geoMean(All[2]));
  std::printf("\npaper: underestimating S causes slowdowns (< 1x) on most "
              "benchmarks;\noverestimating forfeits speedup vs Figure 9\n");

  obs::BenchJsonWriter W("fig12_latency_misestimate");
  W.add("geomean_under", geoMean(All[0]), "x");
  W.add("geomean_over", geoMean(All[1]), "x");
  W.add("geomean_helix", geoMean(All[2]), "x");
  W.write();
  return 0;
}
