//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 11: time breakdown of benchmark execution (Parallel /
/// Sequential-Data / Sequential-Control / Outside, single core) when loops
/// are forced to a fixed nesting level 1..7 versus HELIX's variable-level
/// selection (H). No fixed level maximizes parallel code across all
/// benchmarks; the selection algorithm consistently does.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 11: time breakdown by loop nesting level",
              "Figure 11");
  std::printf("(P = parallel, D = sequential-data, C = sequential-control, "
              "O = outside; percent of time)\n\n");

  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    std::printf("%-10s", Spec.Name.c_str());
    for (int Level = 1; Level <= 8; ++Level) {
      DriverConfig Config;
      // The paper assumes an optimistic 0-cycle communication latency for
      // this single-core breakdown analysis.
      Config.SelectionSignalCycles = Level == 8 ? -1.0 : 0.0;
      Config.ForceNestingLevel = Level == 8 ? -1 : Level;
      PipelineReport R = runHelixPipeline(*M, Config);
      if (Level == 8)
        std::printf(" | H");
      else
        std::printf(" | %d", Level);
      std::printf(" P%2.0f D%2.0f C%2.0f O%2.0f", R.PctParallel,
                  R.PctSeqData, R.PctSeqControl, R.PctOutside);
    }
    std::printf("\n");
  }
  std::printf("\npaper: no single fixed nesting level maximizes the "
              "parallel fraction on\nall benchmarks; HELIX's selection "
              "(H) consistently does\n");
  return 0;
}
