//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 11: time breakdown of benchmark execution (Parallel /
/// Sequential-Data / Sequential-Control / Outside, single core) when loops
/// are forced to a fixed nesting level 1..7 versus HELIX's variable-level
/// selection (H). No fixed level maximizes parallel code across all
/// benchmarks; the selection algorithm consistently does.
///
/// The eight configuration points differ only in selection knobs, so each
/// benchmark's training run executes once (or is restored from the disk
/// cache) and the sweep re-runs selection onward per point.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 11: time breakdown by loop nesting level",
              "Figure 11");
  std::printf("(P = parallel, D = sequential-data, C = sequential-control, "
              "O = outside; percent of time)\n\n");

  std::vector<PipelineConfig> Configs;
  for (int Level = 1; Level <= 8; ++Level) {
    PipelineConfig C;
    // The paper assumes an optimistic 0-cycle communication latency for
    // this single-core breakdown analysis.
    C.Selection.SignalCycles = Level == 8 ? -1.0 : 0.0;
    C.Selection.ForceNestingLevel = Level == 8 ? -1 : Level;
    Configs.push_back(C);
  }

  double ParallelSum[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  unsigned Benches = 0;
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &Spec, unsigned K, const PipelineReport &R) {
        if (K == 0)
          std::printf("%-10s", Spec.Name.c_str());
        if (K == 7)
          std::printf(" | H");
        else
          std::printf(" | %u", K + 1);
        std::printf(" P%2.0f D%2.0f C%2.0f O%2.0f", R.PctParallel,
                    R.PctSeqData, R.PctSeqControl, R.PctOutside);
        ParallelSum[K] += R.PctParallel;
      },
      [&](const WorkloadSpec &, const PipelineContext &) {
        std::printf("\n");
        ++Benches;
      });
  std::printf("\npaper: no single fixed nesting level maximizes the "
              "parallel fraction on\nall benchmarks; HELIX's selection "
              "(H) consistently does\n");

  obs::BenchJsonWriter W("fig11_time_breakdown");
  if (Benches) {
    W.add("mean_parallel_pct_l1", ParallelSum[0] / Benches, "pct");
    W.add("mean_parallel_pct_l2", ParallelSum[1] / Benches, "pct");
    W.add("mean_parallel_pct_H", ParallelSum[7] / Benches, "pct");
  }
  W.write();
  return 0;
}
