//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10: contribution of Step 6 (signal minimization) and Step 8
/// (helper-thread prefetching), plus the Figure-6 balancing scheduler.
/// Four configurations on six cores; loops are re-chosen for each
/// configuration from profiles of the code produced for that configuration,
/// exactly as in the paper. Only steps 6 and 8 together give significant
/// speedups; balancing adds on top.
///
/// The sweep runs through one PipelineContext per benchmark: the training
/// run (profile stage) executes once and is reused by every configuration
/// point, while model-profiling/transformation re-run per point because
/// the transform switches change the code being profiled.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 10: speedups with steps 6/8 disabled", "Figure 10");

  struct ConfigSpec {
    const char *Label;
    bool Step6, Step8, Balancing;
  };
  const ConfigSpec Specs[5] = {
      {"no6no8", false, false, false}, {"no8", true, false, false},
      {"no6", false, true, false},     {"no-balance", true, true, false},
      {"HELIX", true, true, true},
  };
  std::vector<PipelineConfig> Configs;
  for (const ConfigSpec &CS : Specs) {
    PipelineConfig C;
    C.Helix.EnableSignalOpt = CS.Step6;
    C.Helix.EnableHelperThreads = CS.Step8;
    C.Helix.EnableBalancing = CS.Balancing;
    Configs.push_back(C);
  }

  std::printf("%-10s", "benchmark");
  for (const ConfigSpec &CS : Specs)
    std::printf(" %10s", CS.Label);
  std::printf("   profile-stage\n");

  std::vector<std::vector<double>> All(5);
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &Spec, unsigned K, const PipelineReport &R) {
        if (K == 0)
          std::printf("%-10s", Spec.Name.c_str());
        std::printf(" %9.2fx", R.Speedup);
        if (R.Ok)
          All[K].push_back(R.Speedup);
      },
      [](const WorkloadSpec &, const PipelineContext &Ctx) {
        std::printf("   ran %ux, reused %ux\n",
                    Ctx.timesExecuted("profile"),
                    Ctx.timesReused("profile"));
      });
  std::printf("%-10s", "geoMean");
  for (unsigned K = 0; K != 5; ++K)
    std::printf(" %9.2fx", geoMean(All[K]));
  std::printf("\n\npaper: only steps 6 and 8 together yield significant "
              "speedups;\nthe Figure-6 balancing scheduler adds the final "
              "margin (vs Figure 9)\n");

  obs::BenchJsonWriter W("fig10_ablation");
  for (unsigned K = 0; K != 5; ++K)
    W.add(std::string("geomean_") + Specs[K].Label, geoMean(All[K]), "x");
  W.write();
  return 0;
}
