//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10: contribution of Step 6 (signal minimization) and Step 8
/// (helper-thread prefetching), plus the Figure-6 balancing scheduler.
/// Four configurations on six cores; loops are re-chosen for each
/// configuration from profiles of the code produced for that configuration,
/// exactly as in the paper. Only steps 6 and 8 together give significant
/// speedups; balancing adds on top.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 10: speedups with steps 6/8 disabled", "Figure 10");

  struct ConfigSpec {
    const char *Label;
    bool Step6, Step8, Balancing;
  };
  const ConfigSpec Configs[5] = {
      {"no6no8", false, false, false}, {"no8", true, false, false},
      {"no6", false, true, false},     {"no-balance", true, true, false},
      {"HELIX", true, true, true},
  };

  std::printf("%-10s", "benchmark");
  for (const ConfigSpec &CS : Configs)
    std::printf(" %10s", CS.Label);
  std::printf("\n");

  std::vector<std::vector<double>> All(5);
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    std::printf("%-10s", Spec.Name.c_str());
    for (unsigned K = 0; K != 5; ++K) {
      DriverConfig Config;
      Config.Helix.EnableSignalOpt = Configs[K].Step6;
      Config.Helix.EnableHelperThreads = Configs[K].Step8;
      Config.Helix.EnableBalancing = Configs[K].Balancing;
      PipelineReport R = runHelixPipeline(*M, Config);
      std::printf(" %9.2fx", R.Speedup);
      if (R.Ok)
        All[K].push_back(R.Speedup);
    }
    std::printf("\n");
  }
  std::printf("%-10s", "geoMean");
  for (unsigned K = 0; K != 5; ++K)
    std::printf(" %9.2fx", geoMean(All[K]));
  std::printf("\n\npaper: only steps 6 and 8 together yield significant "
              "speedups;\nthe Figure-6 balancing scheduler adds the final "
              "margin (vs Figure 9)\n");
  return 0;
}
