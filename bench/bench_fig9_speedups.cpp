//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 9: whole-program speedups of the 13 benchmarks on 2, 4 and 6
/// simulated cores, sequential execution = 1. The paper reports a
/// geometric mean of 2.25x and a maximum of 4.12x on six cores.
///
/// The three core counts sweep through one PipelineContext per benchmark:
/// the training run and the selection of each point reuse whatever their
/// configuration slice left unchanged, and a repeated invocation restores
/// the training stages from the disk cache.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 9: speedups achieved by HELIX", "Figure 9");
  std::printf("%-10s %10s %10s %10s   %s\n", "benchmark", "2 cores",
              "4 cores", "6 cores", "checks");

  const unsigned CoreCounts[3] = {2, 4, 6};
  std::vector<PipelineConfig> Configs;
  for (unsigned Cores : CoreCounts) {
    PipelineConfig C;
    C.NumCores = Cores;
    Configs.push_back(C);
  }

  std::vector<std::vector<double>> Speedups(3);
  double S[3] = {0, 0, 0};
  bool Match = true, Ok = true;
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &, unsigned K, const PipelineReport &R) {
        if (K == 0) {
          Match = Ok = true;
          S[0] = S[1] = S[2] = 0;
        }
        Ok &= R.Ok;
        Match &= R.OutputsMatch;
        S[K] = R.Speedup;
        if (R.Ok)
          Speedups[K].push_back(R.Speedup);
      },
      [&](const WorkloadSpec &Spec, const PipelineContext &Ctx) {
        std::printf("%-10s %9.2fx %9.2fx %9.2fx   %s%s (%s)\n",
                    Spec.Name.c_str(), S[0], S[1], S[2],
                    Ok ? "ok" : "FAILED", Match ? "" : " OUTPUT-MISMATCH",
                    trainingSourceNote(Ctx).c_str());
      });

  std::printf("%-10s %9.2fx %9.2fx %9.2fx\n", "geoMean",
              geoMean(Speedups[0]), geoMean(Speedups[1]),
              geoMean(Speedups[2]));
  double Max = 0;
  for (double V : Speedups[2])
    Max = std::max(Max, V);
  std::printf("\npaper: geoMean 2.25x, max 4.12x on 6 cores\n");
  std::printf("here : geoMean %.2fx, max %.2fx on 6 cores\n",
              geoMean(Speedups[2]), Max);

  obs::BenchJsonWriter W("fig9_speedups");
  W.add("geomean_c2", geoMean(Speedups[0]), "x");
  W.add("geomean_c4", geoMean(Speedups[1]), "x");
  W.add("geomean_c6", geoMean(Speedups[2]), "x");
  W.add("max_c6", Max, "x");
  W.write();
  return 0;
}
