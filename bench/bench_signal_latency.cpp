//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3's microbenchmark methodology: measure the latency of one
/// signal between cores inside the machine model, in three situations:
///
///   - unprefetched: the receiver queries the flag location itself; the
///     cost is two last-level-cache accesses (paper: 110 = 2 x 55 cycles);
///   - helper-prefetched with enough independent code in front of the Wait
///     for the pull to finish: the receiver hits its L1 (paper: 4 cycles);
///   - helper-prefetched but back-to-back: the transfer stays on the
///     critical path and nothing can be hidden (the Figure 7 "prefetching
///     without balancing" situation).
///
//===----------------------------------------------------------------------===//

#include "helix/ParallelLoopInfo.h"
#include "obs/BenchJson.h"
#include "sim/ParallelSim.h"

#include <cstdio>

using namespace helix;

namespace {

/// Two iterations on two cores. Iteration 0 computes for 1000 cycles and
/// signals; iteration 1 runs \p BusyCycles of independent work, waits,
/// then runs one final cycle. Returns the observed signal latency: how
/// long after max(signal sent, receiver arrival) the receiver resumed.
double measureOnce(PrefetchMode Mode, uint64_t BusyCycles) {
  ParallelLoopInfo PLI;
  PLI.Segments.push_back(SequentialSegment());
  PLI.SelfStartingPrologue = true; // isolate the *data* signal latency

  InvocationTrace Inv;
  {
    IterationTrace It0;
    It0.Events.push_back({IterEvent::Kind::IterStart, 0, 0});
    It0.Events.push_back({IterEvent::Kind::Cycles, 0, 1000});
    It0.Events.push_back({IterEvent::Kind::Signal, 0, 0});
    It0.TotalCycles = 1000;
    Inv.Iterations.push_back(It0);
    IterationTrace It1;
    It1.Events.push_back({IterEvent::Kind::IterStart, 0, 0});
    if (BusyCycles)
      It1.Events.push_back({IterEvent::Kind::Cycles, 0, BusyCycles});
    It1.Events.push_back({IterEvent::Kind::Wait, 0, 0});
    It1.Events.push_back({IterEvent::Kind::Cycles, 0, 1});
    It1.TotalCycles = BusyCycles + 1;
    Inv.Iterations.push_back(It1);
    Inv.SeqCycles = 1001 + BusyCycles;
  }

  SimConfig Config;
  Config.NumCores = 2;
  Config.Prefetch = Mode;
  SimStats Stats;
  uint64_t Span = simulateInvocation(Inv, PLI, Config, Stats);

  // Reconstruct the timeline: both iterations start at T0.
  double T0 = Config.Machine.LoopConfigCycles +
              (Config.NumCores - 1) * Config.Machine.UnprefetchedSignalCycles;
  double SignalAt = T0 + 1000;
  double Arrival = T0 + double(BusyCycles);
  double Resumed = double(Span) -
                   Config.Machine.UnprefetchedSignalCycles /*wind-down*/ - 1;
  return Resumed - std::max(SignalAt, Arrival);
}

} // namespace

int main() {
  std::printf("=========================================================\n");
  std::printf("Signal-latency microbenchmark (Section 3.3 methodology)\n");
  std::printf("=========================================================\n");

  double NoPrefetch = measureOnce(PrefetchMode::None, 0);
  double Ideal = measureOnce(PrefetchMode::Ideal, 0);
  double HelperSpaced = measureOnce(PrefetchMode::Helper, 1300);
  double HelperTight = measureOnce(PrefetchMode::Helper, 0);

  std::printf("unprefetched signal              : %6.0f cycles "
              "(paper: 110 = 2 x 55-cycle L3 accesses)\n",
              NoPrefetch);
  std::printf("ideal (always in L1)             : %6.0f cycles "
              "(paper: 4 = L1 hit)\n",
              Ideal);
  std::printf("helper thread, spaced segments   : %6.0f cycles "
              "(pull completed before the Wait)\n",
              HelperSpaced);
  std::printf("helper thread, back-to-back      : %6.0f cycles "
              "(transfer stays on the critical path)\n",
              HelperTight);

  obs::BenchJsonWriter W("signal_latency");
  W.add("unprefetched", NoPrefetch, "cycles");
  W.add("ideal", Ideal, "cycles");
  W.add("helper_spaced", HelperSpaced, "cycles");
  W.add("helper_tight", HelperTight, "cycles");
  W.write();
  return 0;
}
