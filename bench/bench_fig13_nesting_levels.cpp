//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 13: nesting-level distribution of the loops chosen by the
/// selection algorithm as the assumed signal latency grows from 4 to 110
/// cycles (six cores). Higher latency pushes the choice toward outermost
/// loops.
///
/// Both latency points share one context per benchmark: only the selection
/// stage's key differs, so the training stages run once per benchmark (or
/// come from the disk cache).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Figure 13: nesting levels of chosen loops vs signal latency",
              "Figure 13");
  std::printf("(distribution of chosen loops across dynamic nesting "
              "levels; level 1 = outermost)\n\n");
  std::printf("%-10s %-30s %-30s\n", "benchmark", "S=4 cycles",
              "S=110 cycles");

  const double Latency[2] = {4.0, 110.0};
  std::vector<PipelineConfig> Configs;
  for (double S : Latency) {
    PipelineConfig C;
    C.Selection.SignalCycles = S;
    Configs.push_back(C);
  }

  std::string Cols[2];
  uint64_t LoopCount[2] = {0, 0};
  uint64_t LevelSum[2] = {0, 0};
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &, unsigned K, const PipelineReport &R) {
        unsigned Hist[8] = {0};
        for (const LoopReport &L : R.Loops) {
          ++Hist[std::min(7u, L.NestingLevel)];
          ++LoopCount[K];
          LevelSum[K] += L.NestingLevel;
        }
        std::string Col;
        for (unsigned Lv = 1; Lv <= 6; ++Lv)
          Col += formatStr("L%u:%u ", Lv, Hist[Lv]);
        Cols[K] = Col;
      },
      [&](const WorkloadSpec &Spec, const PipelineContext &) {
        std::printf("%-10s %-30s %-30s\n", Spec.Name.c_str(), Cols[0].c_str(),
                    Cols[1].c_str());
      });
  std::printf("\npaper: as latency grows 4 -> 110 cycles, selection "
              "shifts toward outermost\nlevels (and drops loops entirely "
              "where nothing profits, e.g. twolf)\n");

  obs::BenchJsonWriter W("fig13_nesting_levels");
  W.add("loops_s4", double(LoopCount[0]), "loops");
  W.add("loops_s110", double(LoopCount[1]), "loops");
  if (LoopCount[0])
    W.add("mean_level_s4", double(LevelSum[0]) / double(LoopCount[0]),
          "level");
  if (LoopCount[1])
    W.add("mean_level_s110", double(LevelSum[1]) / double(LoopCount[1]),
          "level");
  W.write();
  return 0;
}
