//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX vs a DOACROSS baseline (Section 4, Figure 1's point): classic
/// DOACROSS executes the sequential segments of an iteration without
/// exploiting TLP between distinct segments — every Wait of an iteration
/// blocks on the predecessor's *last* signal. HELIX overlaps independent
/// segments in time, which is where its edge on multi-segment loops comes
/// from.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("HELIX vs DOACROSS-style serialization of segments",
              "Section 4 / Figure 1");
  std::printf("%-10s %12s %12s %10s\n", "benchmark", "DOACROSS", "HELIX",
              "ratio");

  std::vector<double> DA, HE;
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    DriverConfig Da;
    Da.DoAcross = true;
    // DOACROSS also has no helper-thread prefetching.
    Da.Helix.EnableHelperThreads = false;
    PipelineReport RDa = runHelixPipeline(*M, Da);
    DriverConfig He;
    PipelineReport RHe = runHelixPipeline(*M, He);
    if (RDa.Ok && RHe.Ok) {
      DA.push_back(RDa.Speedup);
      HE.push_back(RHe.Speedup);
    }
    std::printf("%-10s %11.2fx %11.2fx %9.2f\n", Spec.Name.c_str(),
                RDa.Speedup, RHe.Speedup, RHe.Speedup / RDa.Speedup);
  }
  std::printf("%-10s %11.2fx %11.2fx\n", "geoMean", geoMean(DA),
              geoMean(HE));
  std::printf("\npaper: HELIX generalizes DOACROSS; overlapping distinct "
              "sequential segments\nand prefetching signals is where the "
              "advantage comes from\n");
  return 0;
}
