//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX vs a DOACROSS baseline (Section 4, Figure 1's point): classic
/// DOACROSS executes the sequential segments of an iteration without
/// exploiting TLP between distinct segments — every Wait of an iteration
/// blocks on the predecessor's *last* signal. HELIX overlaps independent
/// segments in time, which is where its edge on multi-segment loops comes
/// from.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("HELIX vs DOACROSS-style serialization of segments",
              "Section 4 / Figure 1");
  std::printf("%-10s %12s %12s %10s\n", "benchmark", "DOACROSS", "HELIX",
              "ratio");

  PipelineConfig Da;
  Da.DoAcross = true;
  // DOACROSS also has no helper-thread prefetching.
  Da.Helix.EnableHelperThreads = false;
  PipelineConfig He;

  std::vector<double> DA, HE;
  PipelineReport Point[2];
  sweepEachBenchmark(
      {Da, He},
      [&](const WorkloadSpec &, unsigned K, const PipelineReport &R) {
        Point[K] = R;
      },
      [&](const WorkloadSpec &Spec, const PipelineContext &) {
        if (Point[0].Ok && Point[1].Ok) {
          DA.push_back(Point[0].Speedup);
          HE.push_back(Point[1].Speedup);
        }
        std::printf("%-10s %11.2fx %11.2fx %9.2f\n", Spec.Name.c_str(),
                    Point[0].Speedup, Point[1].Speedup,
                    Point[1].Speedup / Point[0].Speedup);
      });
  std::printf("%-10s %11.2fx %11.2fx\n", "geoMean", geoMean(DA),
              geoMean(HE));
  std::printf("\npaper: HELIX generalizes DOACROSS; overlapping distinct "
              "sequential segments\nand prefetching signals is where the "
              "advantage comes from\n");

  obs::BenchJsonWriter W("doacross_baseline");
  W.add("geomean_doacross", geoMean(DA), "x");
  W.add("geomean_helix", geoMean(HE), "x");
  if (geoMean(DA) > 0)
    W.add("helix_vs_doacross", geoMean(HE) / geoMean(DA), "ratio");
  W.write();
  return 0;
}
