//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3's signal prefetching limit study: HELIX (balanced helper
/// prefetching) vs matched prefetching (helper threads without the
/// balancing scheduler) vs ideal prefetching (every signal already in L1)
/// vs no prefetching. The paper reports geomean gaps of ~0.1x between
/// HELIX and matched, and ~0.4x between matched and ideal.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Signal prefetching limit study (Section 3.3)",
              "Section 3.3");
  std::printf("%-10s %10s %10s %10s %10s\n", "benchmark", "none",
              "matched", "HELIX", "ideal");

  std::vector<std::vector<double>> All(4);
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    std::unique_ptr<Module> M = buildWorkload(Spec);
    double S[4];
    for (unsigned K = 0; K != 4; ++K) {
      DriverConfig Config;
      switch (K) {
      case 0: // no prefetching at all
        Config.Helix.EnableHelperThreads = false;
        break;
      case 1: // matched: helper threads, no Figure-6 balancing
        Config.Helix.EnableBalancing = false;
        break;
      case 2: // full HELIX
        break;
      case 3: // ideal: all signals fully prefetched
        Config.Prefetch = PrefetchMode::Ideal;
        break;
      }
      PipelineReport R = runHelixPipeline(*M, Config);
      S[K] = R.Speedup;
      if (R.Ok)
        All[K].push_back(R.Speedup);
    }
    std::printf("%-10s %9.2fx %9.2fx %9.2fx %9.2fx\n", Spec.Name.c_str(),
                S[0], S[1], S[2], S[3]);
  }
  std::printf("%-10s %9.2fx %9.2fx %9.2fx %9.2fx\n", "geoMean",
              geoMean(All[0]), geoMean(All[1]), geoMean(All[2]),
              geoMean(All[3]));
  std::printf("\npaper: |HELIX - matched| ~ 0.1, |ideal - matched| ~ 0.4 "
              "(geomean)\n");
  return 0;
}
