//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3's signal prefetching limit study: HELIX (balanced helper
/// prefetching) vs matched prefetching (helper threads without the
/// balancing scheduler) vs ideal prefetching (every signal already in L1)
/// vs no prefetching. The paper reports geomean gaps of ~0.1x between
/// HELIX and matched, and ~0.4x between matched and ideal.
///
/// HELIX and ideal differ only in the simulator's prefetch mode, so they
/// share the whole compilation through the per-benchmark context; the
/// other two points change transform switches and re-run from
/// model-profiling onward.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace helix;
using namespace helix::bench;

int main() {
  printHeader("Signal prefetching limit study (Section 3.3)",
              "Section 3.3");
  std::printf("%-10s %10s %10s %10s %10s\n", "benchmark", "none",
              "matched", "HELIX", "ideal");

  std::vector<PipelineConfig> Configs(4);
  Configs[0].Helix.EnableHelperThreads = false; // no prefetching at all
  Configs[1].Helix.EnableBalancing = false; // matched: no Figure-6 balance
  // Configs[2]: full HELIX.
  Configs[3].Prefetch = PrefetchMode::Ideal; // all signals fully prefetched

  std::vector<std::vector<double>> All(4);
  double S[4] = {0, 0, 0, 0};
  sweepEachBenchmark(
      Configs,
      [&](const WorkloadSpec &, unsigned K, const PipelineReport &R) {
        S[K] = R.Speedup;
        if (R.Ok)
          All[K].push_back(R.Speedup);
      },
      [&](const WorkloadSpec &Spec, const PipelineContext &) {
        std::printf("%-10s %9.2fx %9.2fx %9.2fx %9.2fx\n", Spec.Name.c_str(),
                    S[0], S[1], S[2], S[3]);
      });
  std::printf("%-10s %9.2fx %9.2fx %9.2fx %9.2fx\n", "geoMean",
              geoMean(All[0]), geoMean(All[1]), geoMean(All[2]),
              geoMean(All[3]));
  std::printf("\npaper: |HELIX - matched| ~ 0.1, |ideal - matched| ~ 0.4 "
              "(geomean)\n");

  obs::BenchJsonWriter W("prefetch_limit_study");
  W.add("geomean_none", geoMean(All[0]), "x");
  W.add("geomean_matched", geoMean(All[1]), "x");
  W.add("geomean_helix", geoMean(All[2]), "x");
  W.add("geomean_ideal", geoMean(All[3]), "x");
  W.write();
  return 0;
}
