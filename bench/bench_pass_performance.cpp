//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the compiler itself: analysis and
/// transformation throughput on suite-sized programs. Not a paper figure —
/// this guards the compile-time cost of the HELIX passes.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "analysis/DataDependence.h"
#include "analysis/LoopNestGraph.h"
#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "workloads/WorkloadBuilder.h"

#include <benchmark/benchmark.h>

using namespace helix;

namespace {

std::unique_ptr<Module> suiteModule() { return buildSpecWorkload("vpr"); }

void BM_CloneModule(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State)
    benchmark::DoNotOptimize(cloneModule(*M));
}
BENCHMARK(BM_CloneModule);

void BM_FunctionAnalyses(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    ModuleAnalyses AM(*M);
    for (Function *F : *M)
      benchmark::DoNotOptimize(&AM.on(F));
  }
}
BENCHMARK(BM_FunctionAnalyses);

void BM_PointsTo(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    ModuleAnalyses AM(*M);
    benchmark::DoNotOptimize(&AM.pointsTo());
  }
}
BENCHMARK(BM_PointsTo);

void BM_LoopNestGraph(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    ModuleAnalyses AM(*M);
    LoopNestGraph LNG(*M, AM);
    benchmark::DoNotOptimize(LNG.numNodes());
  }
}
BENCHMARK(BM_LoopNestGraph);

void BM_DependenceAnalysis(benchmark::State &State) {
  auto M = suiteModule();
  ModuleAnalyses AM(*M);
  Function *F = nullptr;
  Loop *L = nullptr;
  for (Function *Cand : *M) {
    LoopInfo &LI = AM.on(Cand).LI;
    if (LI.numLoops() > 0) {
      F = Cand;
      L = LI.loop(0);
    }
  }
  for (auto _ : State) {
    FunctionAnalyses &FA = AM.on(F);
    LoopVarAnalysis Vars(F, L, FA.DT);
    LoopDependenceAnalysis DDA(F, L, FA.CFG, FA.DT, FA.LV, Vars,
                               AM.pointsTo(), AM.memEffects());
    benchmark::DoNotOptimize(DDA.toSynchronize().size());
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ParallelizeLoop(benchmark::State &State) {
  auto M = suiteModule();
  // Find a loop header in a kernel function.
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = cloneModule(*M);
    ModuleAnalyses AM(*Clone);
    Function *F = nullptr;
    BasicBlock *Header = nullptr;
    for (Function *Cand : *Clone) {
      LoopInfo &LI = AM.on(Cand).LI;
      if (LI.numLoops() > 0) {
        F = Cand;
        Header = LI.loop(0)->header();
        break;
      }
    }
    State.ResumeTiming();
    HelixOptions Opts;
    benchmark::DoNotOptimize(parallelizeLoop(AM, F, Header, Opts));
  }
}
BENCHMARK(BM_ParallelizeLoop);

} // namespace

BENCHMARK_MAIN();
