//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the compiler itself: analysis and
/// transformation throughput on suite-sized programs. Not a paper figure —
/// this guards the compile-time cost of the HELIX passes.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "analysis/DataDependence.h"
#include "analysis/LoopNestGraph.h"
#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "obs/BenchJson.h"
#include "pipeline/PipelineBuilder.h"
#include "sim/Interpreter.h"
#include "sim/TreeWalkInterpreter.h"
#include "workloads/WorkloadBuilder.h"

#include <benchmark/benchmark.h>

using namespace helix;

namespace {

std::unique_ptr<Module> suiteModule() { return buildSpecWorkload("vpr"); }

void BM_CloneModule(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State)
    benchmark::DoNotOptimize(cloneModule(*M));
}
BENCHMARK(BM_CloneModule);

void BM_FunctionAnalyses(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    AnalysisManager AM(*M);
    for (Function *F : *M) {
      benchmark::DoNotOptimize(&AM.get<LoopInfo>(F));
      benchmark::DoNotOptimize(&AM.get<Liveness>(F));
    }
  }
}
BENCHMARK(BM_FunctionAnalyses);

void BM_PointsTo(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    AnalysisManager AM(*M);
    benchmark::DoNotOptimize(&AM.get<PointsToAnalysis>());
  }
}
BENCHMARK(BM_PointsTo);

void BM_LoopNestGraph(benchmark::State &State) {
  auto M = suiteModule();
  for (auto _ : State) {
    AnalysisManager AM(*M);
    LoopNestGraph LNG(*M, AM);
    benchmark::DoNotOptimize(LNG.numNodes());
  }
}
BENCHMARK(BM_LoopNestGraph);

void BM_DependenceAnalysis(benchmark::State &State) {
  auto M = suiteModule();
  AnalysisManager AM(*M);
  Function *F = nullptr;
  Loop *L = nullptr;
  for (Function *Cand : *M) {
    LoopInfo &LI = AM.get<LoopInfo>(Cand);
    if (LI.numLoops() > 0) {
      F = Cand;
      L = LI.loop(0);
    }
  }
  for (auto _ : State) {
    LoopVarAnalysis Vars(F, L, AM.get<DominatorTree>(F));
    LoopDependenceAnalysis DDA(F, L, AM.get<CFGInfo>(F),
                               AM.get<DominatorTree>(F), AM.get<Liveness>(F),
                               Vars, AM.get<PointsToAnalysis>(),
                               AM.get<MemEffects>());
    benchmark::DoNotOptimize(DDA.toSynchronize().size());
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ParallelizeLoop(benchmark::State &State) {
  auto M = suiteModule();
  // Find a loop header in a kernel function.
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = cloneModule(*M);
    AnalysisManager AM(*Clone);
    Function *F = nullptr;
    BasicBlock *Header = nullptr;
    for (Function *Cand : *Clone) {
      LoopInfo &LI = AM.get<LoopInfo>(Cand);
      if (LI.numLoops() > 0) {
        F = Cand;
        Header = LI.loop(0)->header();
        break;
      }
    }
    State.ResumeTiming();
    HelixOptions Opts;
    benchmark::DoNotOptimize(parallelizeLoop(AM, F, Header, Opts));
  }
}
BENCHMARK(BM_ParallelizeLoop);

/// The analysis-preservation acceptance gate, benchmark edition: transform
/// every top-level loop of the suite module through one shared
/// AnalysisManager, in preservation-aware mode (Arg 0) and in the
/// conservative invalidate-everything baseline (Arg 1). The exported
/// counters show the contract's effect — dom_built must be strictly lower
/// with preservation on, since transforming one function no longer drops
/// the dominator trees of the others. CI runs this with a filter and
/// prints the counters, so a pass silently regressing to invalidate-all
/// is visible in PR logs as a dom_built jump.
void BM_AnalysisPreservation(benchmark::State &State) {
  auto M = suiteModule();
  bool Conservative = State.range(0) != 0;
  uint64_t DomBuilt = 0, DomHits = 0, PtBuilt = 0, Loops = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = cloneModule(*M);
    State.ResumeTiming();
    AnalysisManager AM(*Clone);
    AM.setConservativeInvalidation(Conservative);
    std::vector<std::pair<Function *, BasicBlock *>> Targets;
    for (Function *F : *Clone)
      for (Loop *L : AM.get<LoopInfo>(F).topLevelLoops())
        Targets.push_back({F, L->header()});
    HelixOptions Opts;
    unsigned Done = 0;
    for (auto &[F, H] : Targets)
      Done += parallelizeLoop(AM, F, H, Opts).has_value();
    DomBuilt = AM.stats(AnalysisKind::DomTree).Built;
    DomHits = AM.stats(AnalysisKind::DomTree).Hits;
    PtBuilt = AM.stats(AnalysisKind::PointsTo).Built;
    Loops = Done;
  }
  State.counters["dom_built"] = double(DomBuilt);
  State.counters["dom_hits"] = double(DomHits);
  State.counters["pt_built"] = double(PtBuilt);
  State.counters["loops"] = double(Loops);
}
BENCHMARK(BM_AnalysisPreservation)
    ->Arg(0) // preservation-aware (the shipping configuration)
    ->Arg(1) // conservative invalidate-all baseline
    ->Unit(benchmark::kMillisecond);

void BM_ExecEngineDecode(benchmark::State &State) {
  // Cost of lowering the suite module into the flat pre-resolved
  // instruction stream — what the decode cache saves on every reuse.
  auto M = suiteModule();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    ExecProgram Prog(*M);
    Instrs = 0;
    for (unsigned F = 0; F != Prog.numFunctions(); ++F)
      Instrs += Prog.function(F).code().size();
    benchmark::DoNotOptimize(Instrs);
  }
  State.counters["instrs"] = double(Instrs);
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Instrs));
}
BENCHMARK(BM_ExecEngineDecode);

/// The engine acceptance gate: per-instruction dispatch cost of the
/// decoded engine (Arg 1) against the retained tree-walk reference
/// (Arg 0), executing the whole suite module sequentially with no
/// observer. items_per_second is executed instructions per second — the
/// decoded row must beat the tree-walk row. CI prints both.
void BM_ExecEngineVsTreeWalk(benchmark::State &State) {
  auto M = suiteModule();
  // 0 = tree-walk reference, 1 = decoded engine (superinstruction fusion
  // on, the shipping configuration), 2 = decoded engine with fusion off —
  // the delta between 1 and 2 is the fusion win in isolation.
  const int Mode = int(State.range(0));
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecResult R;
    if (Mode == 1) {
      Interpreter I(*M); // decode served from the cache after run one
      R = I.run();
    } else if (Mode == 2) {
      auto Prog = DecodeCache::global().get(*M, DecodeOptions{false});
      PrivateExecMemory Mem(*Prog);
      ExecContext Ctx;
      Ctx.pushFrame(*Prog->findFunction("main"));
      ExecStop Stop = runEngine(*Prog, Mem, Ctx, DefaultExecHooks());
      R.Ok = Stop == ExecStop::Returned;
      R.ReturnValue = Ctx.Returned;
      R.Instructions = Ctx.Steps;
    } else {
      TreeWalkInterpreter I(*M);
      R = I.run();
    }
    if (!R.Ok)
      State.SkipWithError("suite module failed to execute");
    Instructions = R.Instructions;
    benchmark::DoNotOptimize(R.ReturnValue.asInt());
  }
  State.counters["instrs"] = double(Instructions);
  if (Mode == 1)
    State.counters["fused_pairs"] =
        double(DecodeCache::global().get(*M)->fusedPairs());
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Instructions));
}
BENCHMARK(BM_ExecEngineVsTreeWalk)
    ->Arg(0) // tree-walk baseline
    ->Arg(1) // decoded engine, fused
    ->Arg(2) // decoded engine, fusion disabled
    ->Unit(benchmark::kMillisecond);

void BM_PipelineStringParse(benchmark::State &State) {
  for (auto _ : State) {
    Pipeline P = PipelineBuilder()
                     .parse("profile,candidates,model-profile,select,"
                            "transform,validate,simulate")
                     .build();
    benchmark::DoNotOptimize(P.str());
  }
}
BENCHMARK(BM_PipelineStringParse);

void BM_FullPipelineCold(benchmark::State &State) {
  // The end-to-end cost a fresh context pays: every stage executes.
  auto M = suiteModule();
  Pipeline P = PipelineBuilder::standard();
  for (auto _ : State) {
    PipelineContext Ctx(*M);
    benchmark::DoNotOptimize(P.run(Ctx).Speedup);
  }
}
BENCHMARK(BM_FullPipelineCold)->Unit(benchmark::kMillisecond);

void BM_ModelProfileStageThreads(benchmark::State &State) {
  // Wall-clock of the model-profile stage alone at 1/2/4/8 worker
  // threads, aggregated over the whole spec2000 suite. The per-candidate
  // evaluations are independent, so this should scale near-linearly until
  // the suite's candidate counts (or the machine) run out — the
  // "parallelize model-profile" acceptance gate.
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<std::unique_ptr<PipelineContext>> Contexts;
  Pipeline Warm = PipelineBuilder().parse("candidates").build();
  PipelineConfig C;
  C.ModelProfileThreads = unsigned(State.range(0));
  for (const WorkloadSpec &Spec : spec2000Suite()) {
    Modules.push_back(buildWorkload(Spec));
    Contexts.push_back(
        std::make_unique<PipelineContext>(*Modules.back(), C));
    Warm.run(*Contexts.back()); // profile+candidates cached once, outside
  }
  Pipeline P = PipelineBuilder().parse("model-profile").build();
  for (auto _ : State) {
    for (auto &Ctx : Contexts) {
      Ctx->clearStageResult("model-profile"); // force re-execution
      benchmark::DoNotOptimize(P.run(*Ctx).Ok);
    }
  }
}
BENCHMARK(BM_ModelProfileStageThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SelectionSweepPointCached(benchmark::State &State) {
  // The per-point cost of a Figure-12/13 style sweep on a warm context:
  // profiling stages are cached, only selection onward re-runs. Compare
  // against BM_FullPipelineCold for the caching win.
  auto M = suiteModule();
  Pipeline P = PipelineBuilder::standard();
  PipelineContext Ctx(*M);
  PipelineConfig C;
  P.run(Ctx); // warm up: populate the profile/model-profile caches
  double S = 0.0;
  for (auto _ : State) {
    S = S >= 110.0 ? 0.0 : S + 1.0; // new key each point, like a sweep
    C.Selection.SignalCycles = S;
    Ctx.setConfig(C);
    benchmark::DoNotOptimize(P.run(Ctx).Speedup);
  }
}
BENCHMARK(BM_SelectionSweepPointCached)->Unit(benchmark::kMillisecond);

/// The usual console output plus one BENCH_pass_performance.json series
/// per run: the adjusted real time (in the benchmark's declared unit) and
/// every user counter (items_per_second, dom_built, ...). Series names are
/// the benchmark names with '/' flattened to '_' so the baseline file can
/// address them.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonCapturingReporter(obs::BenchJsonWriter &W) : Writer(W) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      std::string Name = R.benchmark_name();
      for (char &Ch : Name)
        if (Ch == '/')
          Ch = '_';
      Writer.add(Name + "_time", R.GetAdjustedRealTime(),
                 benchmark::GetTimeUnitString(R.time_unit));
      for (const auto &KV : R.counters) {
        const char *Unit =
            KV.first == "items_per_second" ? "items/s" : "count";
        Writer.add(Name + "_" + KV.first, double(KV.second), Unit);
      }
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  obs::BenchJsonWriter &Writer;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  obs::BenchJsonWriter W("pass_performance");
  JsonCapturingReporter Reporter(W);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  W.write();
  return 0;
}
