//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2's claim: with a conditional producer and a conditional
/// consumer, an actual data transfer between cores happens only when the
/// producing iteration executed `a` and the consuming iteration executes
/// `b` — under 50/50 branches roughly 6.25% of Wait entries (both specific
/// iterations take their branch and land on different cores). This harness
/// sweeps the branch probability on a Figure-2-shaped kernel and reports
/// the measured transfer fraction.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/IRBuilder.h"

#include <cstdio>

using namespace helix;
using namespace helix::bench;

namespace {

/// for i in [0,N): v=a[i]; if (v % M == 0) x = f(x, v);  — the Figure 2
/// shape; taking probability ~ 1/M.
std::unique_ptr<Module> buildConditional(unsigned N, unsigned Mod) {
  auto M = std::make_unique<Module>();
  unsigned A = M->createGlobal("a", N);
  using Op = Operand;

  Function *Init = M->createFunction("init", 0);
  {
    IRBuilder B(Init);
    BasicBlock *Entry = Init->createBlock("entry");
    BasicBlock *Hdr = Init->createBlock("hdr");
    BasicBlock *Body = Init->createBlock("body");
    BasicBlock *Done = Init->createBlock("done");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    B.br(Hdr);
    B.setInsertPoint(Hdr);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(N));
    B.condBr(Op::reg(C), Body, Done);
    B.setInsertPoint(Body);
    unsigned V = B.mul(Op::reg(I), Op::immInt(2654435761));
    unsigned V2 = B.binary(Opcode::Shr, Op::reg(V), Op::immInt(5));
    unsigned Addr = B.add(Op::global(A), Op::reg(I));
    B.store(Op::reg(V2), Op::reg(Addr));
    B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
    B.br(Hdr);
    B.setInsertPoint(Done);
    B.ret(Op::immInt(0));
  }

  Function *F = M->createFunction("main", 0);
  IRBuilder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Hdr = F->createBlock("hdr");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Cont = F->createBlock("cont");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.callVoid(Init, {});
  unsigned I = F->allocReg(), X = F->allocReg();
  B.br(Hdr);
  B.setInsertPoint(Hdr);
  unsigned C = B.cmpLT(Op::reg(I), Op::immInt(N));
  B.condBr(Op::reg(C), Body, Exit);
  B.setInsertPoint(Body);
  unsigned Addr = B.add(Op::global(A), Op::reg(I));
  unsigned V = B.load(Op::reg(Addr));
  // Several hundred cycles of parallel work per iteration so the loop is
  // worth parallelizing despite the conditional data transfers.
  unsigned T = V;
  for (unsigned K = 0; K != 300; ++K)
    T = B.binary(K % 2 ? Opcode::Add : Opcode::Xor, Op::reg(T),
                 Op::immInt(K + 3));
  unsigned R = B.binary(Opcode::Rem, Op::reg(V), Op::immInt(Mod));
  unsigned Take = B.cmpEQ(Op::reg(R), Op::immInt(0));
  B.condBr(Op::reg(Take), Then, Cont);
  B.setInsertPoint(Then);
  B.binaryTo(X, Opcode::Add, Op::reg(X), Op::reg(T));
  B.br(Cont);
  B.setInsertPoint(Cont);
  B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
  B.br(Hdr);
  B.setInsertPoint(Exit);
  B.ret(Op::reg(X));
  return M;
}

} // namespace

int main() {
  std::printf("=========================================================\n");
  std::printf("Data-transfer fraction vs branch probability (Figure 2)\n");
  std::printf("=========================================================\n");
  std::printf("%-12s %12s %14s %14s\n", "P(branch)", "slot reads",
              "transfers", "xfer/sync");

  const unsigned Mods[4] = {2, 4, 8, 16};
  obs::BenchJsonWriter W("data_transfer_fraction");
  PipelineConfig Config;
  Config.Selection.MinLoopCycleFraction = 0.0;
  for (unsigned Mod : Mods) {
    std::unique_ptr<Module> M = buildConditional(4000, Mod);
    // One single-point sweep per kernel shape, each its own disk-cache
    // workload: a repeated invocation skips all four training runs.
    sweepWorkload(
        "cond-mod" + std::to_string(Mod), *M, {Config},
        [&](unsigned, const PipelineReport &R) {
          uint64_t Reads = 0, Transfers = 0, Iters = 0;
          for (const LoopReport &L : R.Loops) {
            Reads += L.Sim.SlotReads;
            Transfers += L.Sim.DataTransfers;
            Iters += L.Sim.Iterations;
          }
          // Denominator: synchronizations (one Wait per iteration). The
          // paper's point is that the Wait always runs but data rarely
          // moves.
          double XferPct =
              Iters ? 100.0 * double(Transfers) / double(Iters) : 0.0;
          std::printf("1/%-11u %12llu %14llu %13.2f%%\n", Mod,
                      (unsigned long long)Reads,
                      (unsigned long long)Transfers, XferPct);
          W.add("xfer_pct_mod" + std::to_string(Mod), XferPct, "pct");
        },
        [](const PipelineContext &) {});
  }
  std::printf("\npaper (Figure 2): synchronization runs every iteration "
              "but data moves only when\nthe conditional endpoints "
              "execute (~6.25%% under its idealized 50/50 pattern);\n"
              "here the transfer-per-synchronization fraction equals the "
              "branch probability\nand falls with it — synchronization "
              "dominates transfers, the paper's claim.\n");
  W.write();
  return 0;
}
