#include "sim/Interpreter.h"

#include "support/Compiler.h"

using namespace helix;

Interpreter::Interpreter(Module &M)
    : Prog(DecodeCache::global().get(M)), Mem(*Prog) {}

const Function *Interpreter::currentFunction() const {
  return Ctx.Frames.empty() ? nullptr : Ctx.Frames.back().F->Src;
}

Value Interpreter::operandValue(const Operand &O) const {
  assert(!Ctx.Frames.empty() && "no active frame");
  switch (O.kind()) {
  case Operand::Kind::Reg:
    assert(O.regId() < Ctx.Frames.back().Regs.size() &&
           "register out of range");
    return Ctx.Frames.back().Regs[O.regId()];
  case Operand::Kind::ImmInt:
    return Value::ofInt(O.intValue());
  case Operand::Kind::ImmFloat:
    return Value::ofFloat(O.floatValue());
  case Operand::Kind::Global:
    return Value::ofInt(int64_t(Prog->globalBase(O.globalIndex())));
  }
  HELIX_UNREACHABLE("unknown operand kind");
}

Value Interpreter::regValue(unsigned Reg) const {
  assert(!Ctx.Frames.empty() && "no active frame");
  assert(Reg < Ctx.Frames.back().Regs.size() && "register out of range");
  return Ctx.Frames.back().Regs[Reg];
}

Value Interpreter::loadSlot(uint64_t Addr) const {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    return Idx < Ctx.Stack.size() ? Ctx.Stack[Idx] : Value();
  }
  return Mem.load(Addr);
}

void Interpreter::storeSlot(uint64_t Addr, Value V) {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    if (Idx >= Ctx.Stack.size())
      Ctx.Stack.resize(Idx + 1);
    Ctx.Stack[Idx] = V;
    return;
  }
  Mem.store(Addr, V);
}

ExecResult Interpreter::run(const std::string &Name,
                            const std::vector<Value> &Args) {
  ExecResult R;
  const DecodedFunction *DF = Prog->findFunction(Name);
  if (!DF) {
    R.Error = "no function @" + Name;
    return R;
  }
  if (Args.size() != DF->NumParams) {
    R.Error = "argument count mismatch for @" + Name;
    return R;
  }

  Ctx.Frames.clear();
  Ctx.Steps = 0;
  Ctx.Cycles = 0;
  Ctx.Error.clear();
  Ctx.BudgetExhausted = false;
  Ctx.MaxSteps = MaxInstructions;
  ExecContext::Frame &Fr = Ctx.pushFrame(*DF);
  for (size_t K = 0; K != Args.size(); ++K)
    Fr.Regs[K] = Args[K];

  ExecStop Stop;
  if (Obs) {
    ObserverExecHooks Hooks(*Obs, *this);
    Stop = runEngine(*Prog, Mem, Ctx, Hooks);
  } else {
    Stop = runEngine(*Prog, Mem, Ctx, DefaultExecHooks());
  }

  R.Cycles = Ctx.Cycles;
  R.Instructions = Ctx.Steps;
  if (Stop == ExecStop::Returned) {
    R.Ok = true;
    R.ReturnValue = Ctx.Returned;
  } else {
    R.Error = Ctx.Error;
    R.BudgetExhausted = Ctx.BudgetExhausted;
  }
  return R;
}
