#include "sim/Interpreter.h"

#include "support/Compiler.h"

using namespace helix;

Interpreter::Interpreter(Module &M)
    : M(&M), Prog(DecodeCache::global().get(M)), Mem(*Prog) {}

const ExecProgram &Interpreter::activeProgram() {
  if (!Obs)
    return *Prog;
  if (!UnfusedProg)
    UnfusedProg = DecodeCache::global().get(*M, DecodeOptions{false});
  return *UnfusedProg;
}

const Function *Interpreter::currentFunction() const {
  return Ctx.Frames.empty() ? nullptr : Ctx.Frames.back().F->Src;
}

Value Interpreter::operandValue(const Operand &O) const {
  assert(!Ctx.Frames.empty() && "no active frame");
  switch (O.kind()) {
  case Operand::Kind::Reg: {
    const ExecContext::Frame &Fr = Ctx.Frames.back();
    assert(O.regId() < Fr.F->NumRegs && "register out of range");
    return Ctx.frameRegs(Fr)[O.regId()];
  }
  case Operand::Kind::ImmInt:
    return Value::ofInt(O.intValue());
  case Operand::Kind::ImmFloat:
    return Value::ofFloat(O.floatValue());
  case Operand::Kind::Global:
    return Value::ofInt(int64_t(Prog->globalBase(O.globalIndex())));
  }
  HELIX_UNREACHABLE("unknown operand kind");
}

Value Interpreter::regValue(unsigned Reg) const {
  assert(!Ctx.Frames.empty() && "no active frame");
  const ExecContext::Frame &Fr = Ctx.Frames.back();
  assert(Reg < Fr.F->NumRegs && "register out of range");
  return Ctx.frameRegs(Fr)[Reg];
}

Value Interpreter::loadSlot(uint64_t Addr) const {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    return Idx < Ctx.Stack.size() ? Ctx.Stack[Idx] : Value();
  }
  return Mem.load(Addr);
}

void Interpreter::storeSlot(uint64_t Addr, Value V) {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    if (Idx >= Ctx.Stack.size())
      Ctx.Stack.resize(Idx + 1);
    Ctx.Stack[Idx] = V;
    return;
  }
  Mem.store(Addr, V);
}

ExecResult Interpreter::run(const std::string &Name,
                            const std::vector<Value> &Args) {
  ExecResult R;
  const ExecProgram &P = activeProgram();
  const DecodedFunction *DF = P.findFunction(Name);
  if (!DF) {
    R.Error = "no function @" + Name;
    return R;
  }
  if (Args.size() != DF->NumParams) {
    R.Error = "argument count mismatch for @" + Name;
    return R;
  }

  Ctx.Frames.clear();
  Ctx.RegTop = 0;
  Ctx.Steps = 0;
  Ctx.Cycles = 0;
  Ctx.StepsFused = 0;
  Ctx.Error.clear();
  Ctx.BudgetExhausted = false;
  Ctx.MaxSteps = MaxInstructions;
  ExecContext::Frame &Fr = Ctx.pushFrame(*DF);
  Value *Regs = Ctx.frameRegs(Fr);
  for (size_t K = 0; K != Args.size(); ++K)
    Regs[K] = Args[K];

  ExecStop Stop;
  if (Obs) {
    ObserverExecHooks Hooks(*Obs, *this);
    Stop = runEngine(P, Mem, Ctx, Hooks);
  } else {
    Stop = runEngine(P, Mem, Ctx, DefaultExecHooks());
  }

  R.Cycles = Ctx.Cycles;
  R.Instructions = Ctx.Steps;
  if (Stop == ExecStop::Returned) {
    R.Ok = true;
    R.ReturnValue = Ctx.Returned;
  } else {
    R.Error = Ctx.Error;
    R.BudgetExhausted = Ctx.BudgetExhausted;
  }
  return R;
}
