//===----------------------------------------------------------------------===//
///
/// \file
/// The retained tree-walking reference interpreter. Before the decoded
/// execution engine (src/exec/) existed, this loop — walking BasicBlock
/// instruction lists and re-resolving operands, successors and call
/// targets per executed instruction — *was* sim/Interpreter. It is kept,
/// semantics frozen, for two jobs:
///
///   - the differential suite (tests/ExecEngineTest.cpp) asserts that
///     decoded execution matches it instruction-for-instruction: results,
///     cycle/instruction counts, observer event streams and traces;
///   - BM_ExecEngineVsTreeWalk measures the decoded engine's dispatch
///     speedup against it.
///
/// It implements the same ExecState/ExecObserver contract as the decoded
/// driver, so one observer (profiler, trace collector) serves both.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_TREEWALKINTERPRETER_H
#define HELIX_SIM_TREEWALKINTERPRETER_H

#include "exec/ExecEngine.h"
#include "ir/Module.h"
#include "sim/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

/// Interprets a module by walking the IR tree. Memory layout is identical
/// to the decoded engine's: address 0 reserved, globals from 1, heap after
/// the globals, stack (Alloca) addresses in a disjoint high range.
class TreeWalkInterpreter : public ExecState {
public:
  explicit TreeWalkInterpreter(Module &M);

  void setMaxInstructions(uint64_t Max) { MaxInstructions = Max; }
  void setObserver(ExecObserver *O) { Obs = O; }

  /// Runs function \p Name (default signature: no args) to completion.
  ExecResult run(const std::string &Name = "main",
                 const std::vector<Value> &Args = {});

  // --- Introspection for observers (ExecState) ---------------------------
  unsigned callDepth() const override { return unsigned(Frames.size()); }
  const Function *currentFunction() const override;
  Value operandValue(const Operand &O) const override;
  uint64_t globalBase(unsigned Idx) const override { return GlobalBase[Idx]; }

  /// Direct memory access (used by tests to inspect final state).
  Value loadSlot(uint64_t Addr) const;
  void storeSlot(uint64_t Addr, Value V);

  /// Reads register \p Reg of the current frame.
  Value regValue(unsigned Reg) const;

private:
  struct Frame {
    const Function *F = nullptr;
    std::vector<Value> Regs;
    const BasicBlock *BB = nullptr;
    unsigned Pos = 0;
    uint64_t SavedStackPtr = 0;
    unsigned DestRegInCaller = NoReg;
    bool WantsResult = false;
  };

  bool step(ExecResult &R); // executes one instruction
  Value evalOperand(const Frame &Fr, const Operand &O) const;

  Module &M;
  ExecObserver *Obs = nullptr;
  uint64_t MaxInstructions = ExecLimits::DefaultMaxSteps;

  std::vector<Value> Low;   ///< globals + heap
  std::vector<Value> Stack; ///< alloca region
  uint64_t HeapPtr = 0;
  uint64_t StackPtr = 0;
  std::vector<uint64_t> GlobalBase;

  std::vector<Frame> Frames;
  Value Returned;
  bool HasReturned = false;
};

} // namespace helix

#endif // HELIX_SIM_TREEWALKINTERPRETER_H
