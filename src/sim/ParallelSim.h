//===----------------------------------------------------------------------===//
///
/// \file
/// The chip-multiprocessor timing simulator: replays loop-invocation traces
/// on N simulated cores executing iterations round-robin, resolving Wait
/// stalls against predecessor Signal times under one of four signal-latency
/// models:
///
///   - None:   no helper threads; every signal costs the full unprefetched
///             latency (110 cycles on the modeled i7-980X).
///   - Helper: an SMT helper thread per core prefetches signals one at a
///             time in segment order (HELIX Step 8); the observed latency
///             depends on how much parallel code separates the segments
///             (Figure 7).
///   - Ideal:  every signal is already in the L1 (limit study, §3.3).
///
/// A DoAcross flag models the classic DOACROSS baseline in which distinct
/// sequential segments do not overlap: every Wait of an iteration waits for
/// the predecessor's *last* signal (Section 4's comparison, Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_PARALLELSIM_H
#define HELIX_SIM_PARALLELSIM_H

#include "helix/HelixOptions.h"
#include "helix/ParallelLoopInfo.h"
#include "sim/TraceCollector.h"

namespace helix {

enum class PrefetchMode { None, Helper, Ideal };

struct SimConfig {
  unsigned NumCores = 6;
  MachineModel Machine;
  PrefetchMode Prefetch = PrefetchMode::Helper;
  bool DoAcross = false;
};

/// Timing and traffic statistics of the simulated parallel execution.
struct SimStats {
  uint64_t ParallelCycles = 0;  ///< simulated wall-clock of the invocations
  uint64_t SeqCycles = 0;       ///< same work executed sequentially
  uint64_t WaitStallCycles = 0; ///< cycles lost blocking in Wait
  uint64_t SignalsSent = 0;     ///< dynamic signal count (D-Sig + C-Sig)
  uint64_t DataTransfers = 0;   ///< cross-core boundary-slot transfers
  uint64_t SlotReads = 0;       ///< all boundary-slot reads
  uint64_t ProgramLoads = 0;    ///< program loads inside the loop
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
};

/// Simulates one invocation; returns its wall-clock cycles and accumulates
/// statistics into \p Stats.
uint64_t simulateInvocation(const InvocationTrace &Inv,
                            const ParallelLoopInfo &PLI,
                            const SimConfig &Config, SimStats &Stats);

/// Simulates every invocation of \p Traces, returning aggregated stats.
SimStats simulateLoop(const LoopTraces &Traces, const SimConfig &Config);

/// Whole-program simulated time: outside cycles plus the simulated parallel
/// time of every invocation of every parallelized loop.
uint64_t simulateProgram(const TraceCollector &TC, const SimConfig &Config,
                         std::vector<SimStats> *PerLoop = nullptr);

} // namespace helix

#endif // HELIX_SIM_PARALLELSIM_H
