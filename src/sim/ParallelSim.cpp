#include "sim/ParallelSim.h"

#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

uint64_t helix::simulateInvocation(const InvocationTrace &Inv,
                                   const ParallelLoopInfo &PLI,
                                   const SimConfig &Config, SimStats &Stats) {
  const unsigned N = std::max(1u, Config.NumCores);
  const unsigned NumSegs = unsigned(PLI.Segments.size());
  const double Unpref = Config.Machine.UnprefetchedSignalCycles;
  const double Pref = Config.Machine.PrefetchedSignalCycles;
  const double PullTime = std::max(0.0, Unpref - Pref);
  const uint64_t M = uint64_t(Config.Machine.WordTransferCycles);

  // Thread start/stop control signals: (N-1) to start the pool, (N-1) to
  // stop it, at unprefetched latency each (Equation 1's 2*(N-1) term),
  // plus the per-invocation configuration cost Conf.
  uint64_t T0 = uint64_t(Config.Machine.LoopConfigCycles) +
                uint64_t((N - 1) * Unpref);
  Stats.SignalsSent += 2 * (N - 1);

  std::vector<uint64_t> CoreFree(N, T0);
  std::vector<double> PrevSignal(NumSegs, 0.0); // predecessor's signal times
  bool HavePred = false;
  uint64_t StartGate = T0; // when the next iteration's prologue may begin
  std::map<uint32_t, uint64_t> SlotWriter; // slot -> writing iteration
  uint64_t LastEnd = T0;

  for (uint64_t I = 0, K = Inv.Iterations.size(); I != K; ++I) {
    const IterationTrace &It = Inv.Iterations[I];
    unsigned Core = unsigned(I % N);
    // The control signal (the predecessor's store to IterationFlag) must
    // reach this core before the iteration can start. Helper threads
    // prefetch it like any other signal, so its latency hides behind the
    // core draining its previous iteration.
    double Free = double(CoreFree[Core]);
    double T;
    if (PLI.SelfStartingPrologue) {
      // Counted loop (Step 3): iterations start as soon as their core is
      // free; the prologue is locally computable.
      T = std::max(Free, double(T0));
    } else if (I == 0) {
      T = std::max(Free, double(StartGate));
    } else {
      double Gate = double(StartGate);
      double CtrlArrival = 0.0;
      switch (Config.Prefetch) {
      case PrefetchMode::None:
        CtrlArrival = std::max(Free, Gate) + Unpref;
        break;
      case PrefetchMode::Ideal:
        CtrlArrival = std::max(Free, Gate) + Pref;
        break;
      case PrefetchMode::Helper: {
        double NoHelp = std::max(Free, Gate) + Unpref;
        double WithHelp = std::max(Free, Gate + PullTime) + Pref;
        CtrlArrival = std::min(NoHelp, WithHelp);
        break;
      }
      }
      if (Config.DoAcross)
        CtrlArrival = std::max(Free, Gate) + Unpref;
      T = std::max(Free, CtrlArrival);
    }

    // Helper-thread prefetch completion times for this iteration: the
    // helper pulls signals one at a time, in segment order, starting as
    // soon as the predecessor sent each signal (Figure 7).
    std::vector<double> PrefetchDone(NumSegs, 0.0);
    if (Config.Prefetch == PrefetchMode::Helper && HavePred) {
      double HelperClock = T;
      for (unsigned S = 0; S != NumSegs; ++S) {
        double Begin = std::max(HelperClock, PrevSignal[S]);
        PrefetchDone[S] = Begin + PullTime;
        HelperClock = PrefetchDone[S];
      }
    }

    std::vector<double> CurSignal(NumSegs, -1.0);
    bool SawIterStart = false;
    uint64_t NextGate = 0;
    double PrevLast = 0.0;
    for (unsigned S = 0; S != NumSegs; ++S)
      PrevLast = std::max(PrevLast, PrevSignal[S]);

    for (const IterEvent &E : It.Events) {
      switch (E.K) {
      case IterEvent::Kind::Cycles:
        T += double(E.C);
        break;
      case IterEvent::Kind::IterStart:
        if (!SawIterStart) {
          SawIterStart = true;
          NextGate = uint64_t(T);
        }
        break;
      case IterEvent::Kind::Wait: {
        if (!HavePred)
          break; // first iteration: buffers were initialized at config time
        unsigned S = E.A;
        if (S >= NumSegs)
          break;
        double Ts = Config.DoAcross ? PrevLast : PrevSignal[S];
        double Resume = 0.0;
        switch (Config.Prefetch) {
        case PrefetchMode::None:
          Resume = std::max(T, Ts) + Unpref;
          break;
        case PrefetchMode::Ideal:
          Resume = std::max(T, Ts) + Pref;
          break;
        case PrefetchMode::Helper: {
          double NoHelp = std::max(T, Ts) + Unpref;
          double WithHelp = std::max(T, PrefetchDone[S]) + Pref;
          Resume = std::min(NoHelp, WithHelp);
          break;
        }
        }
        if (Config.DoAcross)
          Resume = std::max(T, Ts) + Unpref; // no prefetch overlap either
        if (Resume > T) {
          Stats.WaitStallCycles += uint64_t(Resume - T);
          T = Resume;
        }
        break;
      }
      case IterEvent::Kind::Signal: {
        unsigned S = E.A;
        if (S < NumSegs && CurSignal[S] < 0.0) {
          CurSignal[S] = T;
          ++Stats.SignalsSent;
        }
        break;
      }
      case IterEvent::Kind::SlotWrite:
        SlotWriter[E.A] = I;
        break;
      case IterEvent::Kind::SlotRead: {
        ++Stats.SlotReads;
        auto W = SlotWriter.find(E.A);
        if (W != SlotWriter.end() && W->second != I &&
            (I - W->second) % N != 0) {
          ++Stats.DataTransfers;
          T += double(M);
        }
        break;
      }
      }
    }
    Stats.ProgramLoads += It.NumLoads;

    // Segments the iteration never signalled (it took the exit, or the
    // path had no occurrence): successors may proceed at iteration end.
    for (unsigned S = 0; S != NumSegs; ++S)
      PrevSignal[S] = CurSignal[S] < 0.0 ? T : CurSignal[S];
    HavePred = true;

    if (!SawIterStart)
      NextGate = uint64_t(T);
    StartGate = NextGate;
    CoreFree[Core] = uint64_t(T);
    LastEnd = std::max(LastEnd, uint64_t(T));
  }

  ++Stats.Invocations;
  Stats.Iterations += Inv.Iterations.size();
  Stats.SeqCycles += Inv.SeqCycles;
  // Wind-down: the main thread collects the exit value after the last
  // iteration; one more control signal round.
  uint64_t Span = LastEnd + uint64_t(Unpref);
  Stats.ParallelCycles += Span;
  return Span;
}

SimStats helix::simulateLoop(const LoopTraces &Traces,
                             const SimConfig &Config) {
  SimStats Stats;
  for (const InvocationTrace &Inv : Traces.Invocations)
    simulateInvocation(Inv, *Traces.PLI, Config, Stats);
  return Stats;
}

uint64_t helix::simulateProgram(const TraceCollector &TC,
                                const SimConfig &Config,
                                std::vector<SimStats> *PerLoop) {
  uint64_t Total = TC.outsideCycles();
  if (PerLoop)
    PerLoop->clear();
  for (const LoopTraces &T : TC.traces()) {
    SimStats S = simulateLoop(T, Config);
    Total += S.ParallelCycles;
    if (PerLoop)
      PerLoop->push_back(S);
  }
  return Total;
}
