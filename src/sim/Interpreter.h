//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential driver of the decoded execution engine (src/exec/): a
/// thin wrapper that decodes its module once (through the process-wide
/// DecodeCache) and runs the shared dispatch loop over private memory. The
/// profiler, the trace collector feeding the CMP timing simulator, and the
/// differential-correctness tests all attach here as ExecObservers.
/// Wait/Signal/IterStart execute as (cheap) no-ops in sequential
/// interpretation, which is exactly the sequential-version semantics that
/// HELIX Step 9 relies on.
///
/// The original tree-walking implementation is retained as
/// sim/TreeWalkInterpreter.h — the reference the differential tests and
/// the BM_ExecEngineVsTreeWalk benchmark compare against.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_INTERPRETER_H
#define HELIX_SIM_INTERPRETER_H

#include "exec/ExecEngine.h"
#include "ir/Module.h"
#include "sim/Value.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace helix {

/// Interprets a module over the decoded program representation. Memory
/// layout: address 0 is reserved; globals get consecutive base addresses
/// from 1; the heap grows after the globals; stack (Alloca) addresses live
/// in a disjoint high range.
class Interpreter : public ExecState {
public:
  /// Decodes \p M (or reuses the process-wide decode cache). The module
  /// must not be mutated for the interpreter's lifetime.
  explicit Interpreter(Module &M);

  /// Caps run length (defence against accidental endless loops).
  void setMaxInstructions(uint64_t Max) { MaxInstructions = Max; }
  /// Attaching an observer switches run() to the unfused decode of the
  /// module (cached like the fused one), so the observer sees a strictly
  /// per-instruction event stream with no superinstruction boundaries.
  void setObserver(ExecObserver *O) { Obs = O; }

  /// Runs function \p Name (default signature: no args) to completion.
  ExecResult run(const std::string &Name = "main",
                 const std::vector<Value> &Args = {});

  // --- Introspection for observers (ExecState) ---------------------------
  unsigned callDepth() const override { return unsigned(Ctx.Frames.size()); }
  const Function *currentFunction() const override;
  /// Value of an operand in the current (innermost) frame.
  Value operandValue(const Operand &O) const override;
  /// Base address of global \p Idx.
  uint64_t globalBase(unsigned Idx) const override {
    return Prog->globalBase(Idx);
  }

  /// Direct memory access (used by tests to inspect final state).
  Value loadSlot(uint64_t Addr) const;
  void storeSlot(uint64_t Addr, Value V);

  /// Reads register \p Reg of the current frame.
  Value regValue(unsigned Reg) const;

  /// The decoded program this interpreter runs.
  const ExecProgram &program() const { return *Prog; }

private:
  /// The program run() executes: the fused decode normally, the unfused
  /// one (decoded lazily, same cache) while an observer is attached. Both
  /// share the module's memory layout, so Mem serves either.
  const ExecProgram &activeProgram();

  Module *M;
  std::shared_ptr<const ExecProgram> Prog;
  std::shared_ptr<const ExecProgram> UnfusedProg;
  PrivateExecMemory Mem;
  ExecContext Ctx;
  ExecObserver *Obs = nullptr;
  uint64_t MaxInstructions = ExecLimits::DefaultMaxSteps;
};

} // namespace helix

#endif // HELIX_SIM_INTERPRETER_H
