//===----------------------------------------------------------------------===//
///
/// \file
/// A sequential interpreter for the HELIX IR with a cycle cost model and an
/// observer interface. The profiler, the trace collector feeding the CMP
/// timing simulator, and the differential-correctness tests are all built
/// on it. Wait/Signal/IterStart execute as (cheap) no-ops in sequential
/// interpretation, which is exactly the sequential-version semantics that
/// HELIX Step 9 relies on.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_INTERPRETER_H
#define HELIX_SIM_INTERPRETER_H

#include "ir/Module.h"
#include "sim/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

class Interpreter;

/// Receives execution events. All callbacks are invoked synchronously
/// during Interpreter::run.
class ExecObserver {
public:
  virtual ~ExecObserver();
  /// After \p I executed, costing \p Cycles. The interpreter argument can
  /// be queried for current register values and call depth.
  virtual void onInstruction(const Instruction *I, unsigned Cycles,
                             Interpreter &Interp) {
    (void)I;
    (void)Cycles;
    (void)Interp;
  }
  /// Control transferred along the CFG edge \p From -> \p To (same frame).
  virtual void onEdge(const BasicBlock *From, const BasicBlock *To,
                      Interpreter &Interp) {
    (void)From;
    (void)To;
    (void)Interp;
  }
};

/// Outcome of a run.
struct ExecResult {
  bool Ok = false;
  std::string Error;      ///< set when Ok is false
  /// The run stopped on an instruction/step cap rather than a trap.
  /// Structural (not derived from Error text): the differential oracle
  /// classifies hang-shaped failures through this flag.
  bool BudgetExhausted = false;
  Value ReturnValue;      ///< main's return value
  uint64_t Cycles = 0;    ///< accumulated cost-model cycles
  uint64_t Instructions = 0;
};

/// Interprets a module. Memory layout: address 0 is reserved; globals get
/// consecutive base addresses from 1; the heap grows after the globals;
/// stack (Alloca) addresses live in a disjoint high range.
class Interpreter {
public:
  explicit Interpreter(Module &M);

  /// Caps run length (defence against accidental endless loops).
  void setMaxInstructions(uint64_t Max) { MaxInstructions = Max; }
  void setObserver(ExecObserver *O) { Obs = O; }

  /// Runs function \p Name (default signature: no args) to completion.
  ExecResult run(const std::string &Name = "main",
                 const std::vector<Value> &Args = {});

  // --- Introspection for observers --------------------------------------
  unsigned callDepth() const { return unsigned(Frames.size()); }
  const Function *currentFunction() const;
  /// Value of an operand in the current (innermost) frame.
  Value operandValue(const Operand &O) const;
  /// Base address of global \p Idx.
  uint64_t globalBase(unsigned Idx) const { return GlobalBase[Idx]; }
  /// Direct memory access (used by tests to inspect final state).
  Value loadSlot(uint64_t Addr) const;
  void storeSlot(uint64_t Addr, Value V);

  /// Reads register \p Reg of the current frame.
  Value regValue(unsigned Reg) const;

private:
  struct Frame {
    const Function *F = nullptr;
    std::vector<Value> Regs;
    const BasicBlock *BB = nullptr;
    unsigned Pos = 0;
    uint64_t SavedStackPtr = 0;
    unsigned DestRegInCaller = NoReg;
    bool WantsResult = false;
  };

  bool step(ExecResult &R); // executes one instruction
  Value evalOperand(const Frame &Fr, const Operand &O) const;

  Module &M;
  ExecObserver *Obs = nullptr;
  uint64_t MaxInstructions = 200ull * 1000 * 1000;

  static constexpr uint64_t StackBase = uint64_t(1) << 40;
  std::vector<Value> Low;   ///< globals + heap
  std::vector<Value> Stack; ///< alloca region
  uint64_t HeapPtr = 0;
  uint64_t StackPtr = 0;
  std::vector<uint64_t> GlobalBase;

  std::vector<Frame> Frames;
  Value Returned;
  bool HasReturned = false;
};

} // namespace helix

#endif // HELIX_SIM_INTERPRETER_H
