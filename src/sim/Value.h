//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the IR interpreter: tagged 64-bit integer or double.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_VALUE_H
#define HELIX_SIM_VALUE_H

#include <cstdint>

namespace helix {

/// A dynamically-typed machine word.
struct Value {
  bool IsFloat = false;
  union {
    int64_t I;
    double F;
  };

  Value() : I(0) {}
  static Value ofInt(int64_t V) {
    Value X;
    X.IsFloat = false;
    X.I = V;
    return X;
  }
  static Value ofFloat(double V) {
    Value X;
    X.IsFloat = true;
    X.F = V;
    return X;
  }

  int64_t asInt() const { return IsFloat ? int64_t(F) : I; }
  double asFloat() const { return IsFloat ? F : double(I); }

  bool operator==(const Value &O) const {
    if (IsFloat != O.IsFloat)
      return false;
    return IsFloat ? F == O.F : I == O.I;
  }
};

} // namespace helix

#endif // HELIX_SIM_VALUE_H
