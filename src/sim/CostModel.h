//===----------------------------------------------------------------------===//
///
/// \file
/// Per-opcode cycle costs of the simulated machine. One shared table keeps
/// the profiler, the code-scheduling heuristics (Steps 5 and 8) and the
/// timing simulator consistent with each other.
///
/// The values model a simple in-order core: single-cycle ALU, multi-cycle
/// multiply/divide, L1-hit latency for memory operations. Inter-core costs
/// (signal and data-transfer latency) are *not* here; they live in
/// MachineModel and are applied by the parallel simulator.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_COSTMODEL_H
#define HELIX_SIM_COSTMODEL_H

#include "ir/Opcode.h"

namespace helix {

/// \returns the cycle cost of executing one instance of \p Op locally.
inline unsigned opcodeCycles(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::FMul:
    return 3;
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::FDiv:
    return 12;
  case Opcode::FAdd:
  case Opcode::FSub:
    return 2;
  case Opcode::Load:
  case Opcode::Store:
    return 4; // first-level cache hit
  case Opcode::Call:
    return 2; // call overhead; the callee body is costed separately
  case Opcode::HeapAlloc:
  case Opcode::Alloca:
    return 2;
  case Opcode::Wait:
  case Opcode::SignalOp:
    return 1; // local cost; stall cycles are added by the simulator
  case Opcode::IterStart:
  case Opcode::MemFence:
  case Opcode::Nop:
    return 1;
  default:
    return 1; // ALU, compares, moves, branches
  }
}

} // namespace helix

#endif // HELIX_SIM_COSTMODEL_H
