//===----------------------------------------------------------------------===//
///
/// \file
/// Execution traces of parallelized loops. The sequential interpreter
/// produces one trace per loop invocation; the CMP timing simulator replays
/// it on N cores, resolving Wait/Signal times and signal-prefetch latencies.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_TRACE_H
#define HELIX_SIM_TRACE_H

#include <cstdint>
#include <vector>

namespace helix {

/// One event inside an iteration, in program order.
struct IterEvent {
  enum class Kind : uint8_t {
    Cycles,    ///< C cycles of straight-line work
    Wait,      ///< enter sequential segment A
    Signal,    ///< leave sequential segment A (signal successor)
    IterStart, ///< next iteration may begin (Step 3 control signal)
    SlotWrite, ///< boundary-variable slot A written
    SlotRead,  ///< boundary-variable slot A read (possible data transfer)
  };
  Kind K = Kind::Cycles;
  uint32_t A = 0;
  uint64_t C = 0;
};

/// One loop iteration as the sequential interpreter saw it.
struct IterationTrace {
  std::vector<IterEvent> Events;
  uint64_t TotalCycles = 0;    ///< local work (excludes cross-core stalls)
  uint64_t PrologueCycles = 0; ///< cycles before the IterStart marker
  uint64_t SegmentCycles = 0;  ///< cycles spent inside Wait..Signal regions
  uint64_t NumLoads = 0;       ///< program loads (excluding slot traffic)
};

/// One dynamic invocation of a parallelized loop.
struct InvocationTrace {
  std::vector<IterationTrace> Iterations;
  uint64_t SeqCycles = 0; ///< sum of iteration TotalCycles
};

} // namespace helix

#endif // HELIX_SIM_TRACE_H
