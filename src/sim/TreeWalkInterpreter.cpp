#include "sim/TreeWalkInterpreter.h"

#include "sim/CostModel.h"
#include "support/Compiler.h"
#include "support/Format.h"

using namespace helix;

TreeWalkInterpreter::TreeWalkInterpreter(Module &M) : M(M) {
  // Lay out globals from address 1 (0 stays an always-invalid "null").
  uint64_t Next = 1;
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    GlobalBase.push_back(Next);
    Next += M.global(I).Size;
  }
  HeapPtr = Next;
  Low.assign(Next, Value());
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M.global(I);
    for (size_t K = 0; K != G.Init.size(); ++K)
      Low[GlobalBase[I] + K] = Value::ofInt(G.Init[K]);
  }
}

const Function *TreeWalkInterpreter::currentFunction() const {
  return Frames.empty() ? nullptr : Frames.back().F;
}

Value TreeWalkInterpreter::operandValue(const Operand &O) const {
  assert(!Frames.empty() && "no active frame");
  return evalOperand(Frames.back(), O);
}

Value TreeWalkInterpreter::regValue(unsigned Reg) const {
  assert(!Frames.empty() && "no active frame");
  assert(Reg < Frames.back().Regs.size() && "register out of range");
  return Frames.back().Regs[Reg];
}

Value TreeWalkInterpreter::loadSlot(uint64_t Addr) const {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    return Idx < Stack.size() ? Stack[Idx] : Value();
  }
  return Addr < Low.size() ? Low[Addr] : Value();
}

void TreeWalkInterpreter::storeSlot(uint64_t Addr, Value V) {
  if (Addr >= ExecStackBase) {
    uint64_t Idx = Addr - ExecStackBase;
    if (Idx >= Stack.size())
      Stack.resize(Idx + 1);
    Stack[Idx] = V;
    return;
  }
  if (Addr >= Low.size())
    Low.resize(Addr + 1);
  Low[Addr] = V;
}

Value TreeWalkInterpreter::evalOperand(const Frame &Fr,
                                       const Operand &O) const {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    assert(O.regId() < Fr.Regs.size() && "register out of range");
    return Fr.Regs[O.regId()];
  case Operand::Kind::ImmInt:
    return Value::ofInt(O.intValue());
  case Operand::Kind::ImmFloat:
    return Value::ofFloat(O.floatValue());
  case Operand::Kind::Global:
    return Value::ofInt(int64_t(GlobalBase[O.globalIndex()]));
  }
  HELIX_UNREACHABLE("unknown operand kind");
}

ExecResult TreeWalkInterpreter::run(const std::string &Name,
                                    const std::vector<Value> &Args) {
  ExecResult R;
  Function *F = M.findFunction(Name);
  if (!F) {
    R.Error = "no function @" + Name;
    return R;
  }
  if (Args.size() != F->numParams()) {
    R.Error = "argument count mismatch for @" + Name;
    return R;
  }

  Frames.clear();
  HasReturned = false;
  Frame Fr;
  Fr.F = F;
  Fr.Regs.assign(F->numRegs(), Value());
  for (size_t K = 0; K != Args.size(); ++K)
    Fr.Regs[K] = Args[K];
  Fr.BB = F->entry();
  Fr.SavedStackPtr = StackPtr;
  Frames.push_back(std::move(Fr));

  while (!Frames.empty()) {
    if (R.Instructions >= MaxInstructions) {
      R.Error = formatStr("instruction budget exhausted (%llu)",
                          (unsigned long long)MaxInstructions);
      R.BudgetExhausted = true;
      return R;
    }
    if (!step(R))
      return R;
  }
  R.Ok = true;
  R.ReturnValue = Returned;
  return R;
}

bool TreeWalkInterpreter::step(ExecResult &R) {
  Frame &Fr = Frames.back();
  assert(Fr.Pos < Fr.BB->size() && "fell off the end of a block");
  Instruction *I = Fr.BB->instr(Fr.Pos);
  unsigned Cost = opcodeCycles(I->opcode());
  R.Cycles += Cost;
  ++R.Instructions;

  auto Val = [&](unsigned K) { return evalOperand(Fr, I->operand(K)); };
  auto SetDest = [&](Value V) {
    assert(I->hasDest() && "destination expected");
    Fr.Regs[I->dest()] = V;
  };
  auto Fail = [&](const std::string &Msg) {
    R.Error = formatStr("@%s/%s: %s", Fr.F->name().c_str(),
                        Fr.BB->name().c_str(), Msg.c_str());
    return false;
  };

  Opcode Op = I->opcode();
  bool Advance = true;

  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr: {
    int64_t A = Val(0).asInt(), B = Val(1).asInt();
    int64_t Out = 0;
    switch (Op) {
    case Opcode::Add:
      Out = int64_t(uint64_t(A) + uint64_t(B));
      break;
    case Opcode::Sub:
      Out = int64_t(uint64_t(A) - uint64_t(B));
      break;
    case Opcode::Mul:
      Out = int64_t(uint64_t(A) * uint64_t(B));
      break;
    case Opcode::Div:
      if (B == 0)
        return Fail("integer division by zero");
      Out = A / B;
      break;
    case Opcode::Rem:
      if (B == 0)
        return Fail("integer remainder by zero");
      Out = A % B;
      break;
    case Opcode::And:
      Out = A & B;
      break;
    case Opcode::Or:
      Out = A | B;
      break;
    case Opcode::Xor:
      Out = A ^ B;
      break;
    case Opcode::Shl:
      Out = int64_t(uint64_t(A) << (uint64_t(B) & 63));
      break;
    case Opcode::Shr:
      Out = int64_t(uint64_t(A) >> (uint64_t(B) & 63));
      break;
    default:
      HELIX_UNREACHABLE("not an integer binop");
    }
    SetDest(Value::ofInt(Out));
    break;
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    double A = Val(0).asFloat(), B = Val(1).asFloat();
    double Out = 0;
    switch (Op) {
    case Opcode::FAdd:
      Out = A + B;
      break;
    case Opcode::FSub:
      Out = A - B;
      break;
    case Opcode::FMul:
      Out = A * B;
      break;
    case Opcode::FDiv:
      Out = A / B;
      break;
    default:
      HELIX_UNREACHABLE("not a float binop");
    }
    SetDest(Value::ofFloat(Out));
    break;
  }
  case Opcode::IntToFP:
    SetDest(Value::ofFloat(Val(0).asFloat()));
    break;
  case Opcode::FPToInt:
    SetDest(Value::ofInt(Val(0).asInt()));
    break;
  case Opcode::CmpEQ:
    SetDest(Value::ofInt(Val(0).asInt() == Val(1).asInt()));
    break;
  case Opcode::CmpNE:
    SetDest(Value::ofInt(Val(0).asInt() != Val(1).asInt()));
    break;
  case Opcode::CmpLT:
    SetDest(Value::ofInt(Val(0).asInt() < Val(1).asInt()));
    break;
  case Opcode::CmpLE:
    SetDest(Value::ofInt(Val(0).asInt() <= Val(1).asInt()));
    break;
  case Opcode::CmpGT:
    SetDest(Value::ofInt(Val(0).asInt() > Val(1).asInt()));
    break;
  case Opcode::CmpGE:
    SetDest(Value::ofInt(Val(0).asInt() >= Val(1).asInt()));
    break;
  case Opcode::FCmpEQ:
    SetDest(Value::ofInt(Val(0).asFloat() == Val(1).asFloat()));
    break;
  case Opcode::FCmpNE:
    SetDest(Value::ofInt(Val(0).asFloat() != Val(1).asFloat()));
    break;
  case Opcode::FCmpLT:
    SetDest(Value::ofInt(Val(0).asFloat() < Val(1).asFloat()));
    break;
  case Opcode::FCmpLE:
    SetDest(Value::ofInt(Val(0).asFloat() <= Val(1).asFloat()));
    break;
  case Opcode::FCmpGT:
    SetDest(Value::ofInt(Val(0).asFloat() > Val(1).asFloat()));
    break;
  case Opcode::FCmpGE:
    SetDest(Value::ofInt(Val(0).asFloat() >= Val(1).asFloat()));
    break;
  case Opcode::Mov:
    SetDest(Val(0));
    break;
  case Opcode::Load: {
    int64_t Addr = Val(0).asInt();
    if (Addr <= 0)
      return Fail("load from null/negative address");
    SetDest(loadSlot(uint64_t(Addr)));
    break;
  }
  case Opcode::Store: {
    int64_t Addr = Val(1).asInt();
    if (Addr <= 0)
      return Fail("store to null/negative address");
    storeSlot(uint64_t(Addr), Val(0));
    break;
  }
  case Opcode::Alloca: {
    uint64_t Base = ExecStackBase + StackPtr;
    StackPtr += uint64_t(I->imm());
    if (Stack.size() < StackPtr)
      Stack.resize(StackPtr);
    SetDest(Value::ofInt(int64_t(Base)));
    break;
  }
  case Opcode::HeapAlloc: {
    int64_t N = Val(0).asInt();
    if (N <= 0)
      return Fail("heap allocation of non-positive size");
    uint64_t Base = HeapPtr;
    HeapPtr += uint64_t(N);
    if (Low.size() < HeapPtr)
      Low.resize(HeapPtr);
    SetDest(Value::ofInt(int64_t(Base)));
    break;
  }
  case Opcode::Br: {
    if (Obs)
      Obs->onInstruction(I, Cost, *this);
    const BasicBlock *From = Fr.BB;
    Fr.BB = I->target1();
    Fr.Pos = 0;
    if (Obs)
      Obs->onEdge(From, Fr.BB, *this);
    return true;
  }
  case Opcode::CondBr: {
    if (Obs)
      Obs->onInstruction(I, Cost, *this);
    const BasicBlock *From = Fr.BB;
    Fr.BB = Val(0).asInt() != 0 ? I->target1() : I->target2();
    Fr.Pos = 0;
    if (Obs)
      Obs->onEdge(From, Fr.BB, *this);
    return true;
  }
  case Opcode::Call: {
    if (Obs)
      Obs->onInstruction(I, Cost, *this);
    Frame NewFr;
    NewFr.F = I->callee();
    NewFr.Regs.assign(I->callee()->numRegs(), Value());
    for (unsigned K = 0, E = I->numOperands(); K != E; ++K)
      NewFr.Regs[K] = Val(K);
    NewFr.BB = I->callee()->entry();
    NewFr.SavedStackPtr = StackPtr;
    NewFr.DestRegInCaller = I->hasDest() ? I->dest() : NoReg;
    NewFr.WantsResult = I->hasDest();
    ++Fr.Pos; // resume after the call upon return
    Frames.push_back(std::move(NewFr));
    return true;
  }
  case Opcode::Ret: {
    if (Obs)
      Obs->onInstruction(I, Cost, *this);
    Value RV = I->numOperands() == 1 ? Val(0) : Value();
    StackPtr = Fr.SavedStackPtr;
    unsigned DestReg = Fr.DestRegInCaller;
    bool Wants = Fr.WantsResult;
    Frames.pop_back();
    if (Frames.empty()) {
      Returned = RV;
      HasReturned = true;
    } else if (Wants && DestReg != NoReg) {
      Frames.back().Regs[DestReg] = RV;
    }
    return true;
  }
  case Opcode::Wait:
  case Opcode::SignalOp:
  case Opcode::IterStart:
  case Opcode::MemFence:
  case Opcode::Nop:
    // Sequentially these are no-ops; the parallel engines give them their
    // synchronization semantics.
    break;
  }

  if (Obs)
    Obs->onInstruction(I, Cost, *this);
  if (Advance)
    ++Fr.Pos;
  return true;
}
