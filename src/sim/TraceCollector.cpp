#include "sim/TraceCollector.h"

#include "support/Compiler.h"

using namespace helix;

TraceCollector::TraceCollector(
    const std::vector<const ParallelLoopInfo *> &Loops) {
  for (const ParallelLoopInfo *PLI : Loops) {
    LoopTraces T;
    T.PLI = PLI;
    Traces.push_back(std::move(T));
  }
}

uint64_t TraceCollector::totalCycles() const {
  uint64_t Sum = OutsideCycles;
  for (const LoopTraces &T : Traces)
    Sum += T.totalSeqCycles();
  return Sum;
}

IterationTrace &TraceCollector::iter() {
  assert(Active >= 0 && "no active invocation");
  return Traces[Active].Invocations.back().Iterations.back();
}

void TraceCollector::flushCycles() {
  if (PendingCycles == 0)
    return;
  IterationTrace &It = iter();
  It.Events.push_back({IterEvent::Kind::Cycles, 0, PendingCycles});
  It.TotalCycles += PendingCycles;
  // Prologue time is Sequential-Control even when a segment is open there;
  // the two categories partition the iteration (Figure 11).
  if (InPrologue)
    It.PrologueCycles += PendingCycles;
  else if (OpenSegments > 0)
    It.SegmentCycles += PendingCycles;
  PendingCycles = 0;
}

void TraceCollector::endIteration() {
  flushCycles();
  InPrologue = true;
  OpenSegments = 0;
  Traces[Active].Invocations.back().SeqCycles += iter().TotalCycles;
}

void TraceCollector::endInvocation() {
  endIteration();
  Active = -1;
}

void TraceCollector::onInstruction(const Instruction *I, unsigned Cycles,
                                   ExecState &State) {
  if (Active < 0) {
    OutsideCycles += Cycles;
    return;
  }
  PendingCycles += Cycles;

  // Structured events only fire in the loop's own frame.
  const ParallelLoopInfo *PLI = Traces[Active].PLI;
  if (State.callDepth() != ActiveDepth ||
      State.currentFunction() != PLI->F)
    return;

  switch (I->opcode()) {
  case Opcode::Wait: {
    flushCycles();
    iter().Events.push_back(
        {IterEvent::Kind::Wait, uint32_t(I->imm()), 0});
    ++OpenSegments;
    break;
  }
  case Opcode::SignalOp: {
    flushCycles();
    iter().Events.push_back(
        {IterEvent::Kind::Signal, uint32_t(I->imm()), 0});
    if (OpenSegments > 0)
      --OpenSegments;
    break;
  }
  case Opcode::IterStart: {
    flushCycles();
    iter().Events.push_back({IterEvent::Kind::IterStart, 0, 0});
    InPrologue = false;
    break;
  }
  case Opcode::Load: {
    uint64_t Addr = uint64_t(State.operandValue(I->operand(0)).asInt());
    if (StorageBase && Addr >= StorageBase && Addr < StorageEnd) {
      flushCycles();
      iter().Events.push_back(
          {IterEvent::Kind::SlotRead, uint32_t(Addr - StorageBase), 0});
    } else {
      ++iter().NumLoads;
    }
    break;
  }
  case Opcode::Store: {
    uint64_t Addr = uint64_t(State.operandValue(I->operand(1)).asInt());
    if (StorageBase && Addr >= StorageBase && Addr < StorageEnd) {
      flushCycles();
      iter().Events.push_back(
          {IterEvent::Kind::SlotWrite, uint32_t(Addr - StorageBase), 0});
    }
    break;
  }
  default:
    break;
  }
}

void TraceCollector::onEdge(const BasicBlock *From, const BasicBlock *To,
                            ExecState &State) {
  if (Active >= 0) {
    const ParallelLoopInfo *PLI = Traces[Active].PLI;
    if (State.callDepth() != ActiveDepth ||
        State.currentFunction() != PLI->F)
      return;
    if (From == PLI->Latch && To == PLI->Header) {
      // Back edge: next iteration of the active invocation.
      endIteration();
      Traces[Active].Invocations.back().Iterations.emplace_back();
      return;
    }
    if (PLI->contains(From) && !PLI->contains(To)) {
      endInvocation();
      return;
    }
    return;
  }

  // No active invocation: does this edge enter a parallelized loop?
  for (unsigned K = 0, E = unsigned(Traces.size()); K != E; ++K) {
    const ParallelLoopInfo *PLI = Traces[K].PLI;
    if (State.currentFunction() != PLI->F)
      continue;
    if (To != PLI->Header || PLI->contains(From))
      continue;
    Active = int(K);
    ActiveDepth = State.callDepth();
    Traces[K].Invocations.emplace_back();
    Traces[K].Invocations.back().Iterations.emplace_back();
    PendingCycles = 0;
    InPrologue = true;
    OpenSegments = 0;
    if (PLI->StorageGlobal != ~0u) {
      StorageBase = State.globalBase(PLI->StorageGlobal);
      StorageEnd =
          StorageBase +
          PLI->F->parent()->global(PLI->StorageGlobal).Size;
    } else {
      StorageBase = StorageEnd = 0;
    }
    return;
  }
}

// PendingCycles that were attributed to an invocation but never flushed
// (e.g. the program ends inside a loop) are dropped; parallelizable
// workloads always leave their loops, so this does not occur in practice.
