//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing driver of the execution engine: an ExecObserver that
/// extracts per-invocation traces for a set of HELIX-parallelized loops
/// during one whole-program run, attributing every cycle either to an
/// active parallel-loop invocation or to "outside" time. It attaches to
/// any engine implementing the ExecState contract — the decoded
/// sequential driver in production, the tree-walk reference in the
/// differential tests.
///
/// Only the *outermost* active parallelized loop collects a trace at any
/// moment: invocations dynamically nested inside it run sequentially within
/// an iteration thread (HELIX Step 9 — one loop in parallel at a time), so
/// their cycles simply count as parallel-code cycles of the outer iteration.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SIM_TRACECOLLECTOR_H
#define HELIX_SIM_TRACECOLLECTOR_H

#include "helix/ParallelLoopInfo.h"
#include "sim/Interpreter.h"
#include "sim/Trace.h"

#include <vector>

namespace helix {

/// All traces of one parallelized loop across the run.
struct LoopTraces {
  const ParallelLoopInfo *PLI = nullptr;
  std::vector<InvocationTrace> Invocations;

  uint64_t totalSeqCycles() const {
    uint64_t Sum = 0;
    for (const InvocationTrace &Inv : Invocations)
      Sum += Inv.SeqCycles;
    return Sum;
  }
  uint64_t totalIterations() const {
    uint64_t Sum = 0;
    for (const InvocationTrace &Inv : Invocations)
      Sum += Inv.Iterations.size();
    return Sum;
  }
};

class TraceCollector : public ExecObserver {
public:
  explicit TraceCollector(const std::vector<const ParallelLoopInfo *> &Loops);

  void onInstruction(const Instruction *I, unsigned Cycles,
                     ExecState &State) override;
  void onEdge(const BasicBlock *From, const BasicBlock *To,
              ExecState &State) override;

  const std::vector<LoopTraces> &traces() const { return Traces; }
  /// Cycles spent outside any parallel-loop invocation.
  uint64_t outsideCycles() const { return OutsideCycles; }
  uint64_t totalCycles() const;

private:
  void flushCycles();
  void endIteration();
  void endInvocation();
  IterationTrace &iter();

  std::vector<LoopTraces> Traces;
  uint64_t OutsideCycles = 0;

  // Active invocation state.
  int Active = -1; ///< index into Traces, or -1
  unsigned ActiveDepth = 0;
  uint64_t PendingCycles = 0;
  bool InPrologue = true;
  unsigned OpenSegments = 0;
  uint64_t StorageBase = 0, StorageEnd = 0;
};

} // namespace helix

#endif // HELIX_SIM_TRACECOLLECTOR_H
