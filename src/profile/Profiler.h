//===----------------------------------------------------------------------===//
///
/// \file
/// Loop profiler (Section 2.2): runs the program once under the interpreter
/// and collects, per loop of the program-wide loop nesting graph,
///   - invocation and iteration counts (Invoc_i and the C-Sig count),
///   - cycles spent inside the loop (including nested code),
/// plus the set of nesting-graph edges actually traversed — the *dynamic*
/// loop nesting graph used by loop selection.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PROFILE_PROFILER_H
#define HELIX_PROFILE_PROFILER_H

#include "analysis/LoopNestGraph.h"
#include "sim/Interpreter.h"

#include <set>
#include <vector>

namespace helix {

/// Dynamic statistics of one loop-nest node.
struct LoopProfile {
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
  /// Cycles spent while this loop was on the dynamic loop stack (includes
  /// nested loops and called functions).
  uint64_t Cycles = 0;
};

/// Result of a profiling run.
struct ProgramProfile {
  uint64_t TotalCycles = 0;
  std::vector<LoopProfile> Loops; ///< indexed by LoopNestGraph node id
  /// Nesting-graph edges (parent node, child node) observed at run time.
  std::set<std::pair<unsigned, unsigned>> DynamicEdges;

  /// True if the node was ever executed.
  bool executed(unsigned Node) const {
    return Loops[Node].Invocations > 0;
  }
};

/// Interprets @main and profiles every loop of \p LNG. The run executes
/// at most \p MaxInstructions interpreter instructions (0 keeps the
/// interpreter's built-in default) — without a cap a runaway workload
/// would hang the pipeline at its very first stage.
/// \returns the profile; Ok is false in \p ResultOut on interpreter error.
ProgramProfile profileProgram(Module &M, const LoopNestGraph &LNG,
                              AnalysisManager &AM, ExecResult *ResultOut,
                              uint64_t MaxInstructions = 0);

} // namespace helix

#endif // HELIX_PROFILE_PROFILER_H
