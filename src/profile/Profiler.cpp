#include "profile/Profiler.h"

#include "support/Compiler.h"

using namespace helix;

namespace {

/// Observer maintaining the dynamic loop stack.
class LoopProfiler : public ExecObserver {
public:
  LoopProfiler(const LoopNestGraph &LNG, AnalysisManager &AM,
               ProgramProfile &Out)
      : LNG(LNG), AM(AM), Out(Out) {}

  void onInstruction(const Instruction *I, unsigned Cycles,
                     ExecState &State) override {
    Out.TotalCycles += Cycles;
    for (const StackEntry &E : Stack)
      Out.Loops[E.Node].Cycles += Cycles;
    if (I->opcode() == Opcode::Ret) {
      unsigned Depth = State.callDepth();
      while (!Stack.empty() && Stack.back().Depth == Depth)
        Stack.pop_back();
    }
  }

  void onEdge(const BasicBlock *From, const BasicBlock *To,
              ExecState &State) override {
    const Function *F = State.currentFunction();
    LoopInfo &LI = AM.get<LoopInfo>(const_cast<Function *>(F));
    unsigned Depth = State.callDepth();

    // Pop loops of this frame that the edge leaves.
    while (!Stack.empty() && Stack.back().Depth == Depth) {
      Loop *L = LNG.node(Stack.back().Node).L;
      if (L->contains(To))
        break;
      Stack.pop_back();
    }

    // Back edge of the innermost active loop?
    if (!Stack.empty() && Stack.back().Depth == Depth) {
      Loop *L = LNG.node(Stack.back().Node).L;
      if (To == L->header() && L->contains(From)) {
        ++Out.Loops[Stack.back().Node].Iterations;
        return;
      }
    }

    // Entering loops: walk from the outermost newly-entered loop inward.
    // (A single edge can enter at most the chain of loops sharing To as
    // header; entering a header enters exactly the loops headed there.)
    Loop *Inner = LI.loopFor(To);
    std::vector<Loop *> Entered;
    for (Loop *L = Inner; L; L = L->parent()) {
      if (L->header() != To)
        continue;
      if (L->contains(From))
        continue; // not an entry for this loop
      Entered.push_back(L);
    }
    for (auto It = Entered.rbegin(); It != Entered.rend(); ++It) {
      unsigned Node = LNG.nodeFor(*It);
      if (Node == ~0u)
        continue;
      if (!Stack.empty())
        Out.DynamicEdges.insert({Stack.back().Node, Node});
      Stack.push_back({Node, Depth});
      ++Out.Loops[Node].Invocations;
      ++Out.Loops[Node].Iterations; // the entering edge begins iteration 0
    }
  }

private:
  struct StackEntry {
    unsigned Node;
    unsigned Depth;
  };
  const LoopNestGraph &LNG;
  AnalysisManager &AM;
  ProgramProfile &Out;
  std::vector<StackEntry> Stack;
};

} // namespace

ProgramProfile helix::profileProgram(Module &M, const LoopNestGraph &LNG,
                                     AnalysisManager &AM, ExecResult *ResultOut,
                                     uint64_t MaxInstructions) {
  ProgramProfile P;
  P.Loops.assign(LNG.numNodes(), LoopProfile());

  LoopProfiler Obs(LNG, AM, P);
  Interpreter Interp(M);
  if (MaxInstructions != 0)
    Interp.setMaxInstructions(MaxInstructions);
  Interp.setObserver(&Obs);
  ExecResult R = Interp.run("main");
  if (ResultOut)
    *ResultOut = R;
  return P;
}
