//===----------------------------------------------------------------------===//
///
/// \file
/// Generic directed-graph algorithms over adjacency-list graphs with dense
/// integer node ids: Tarjan strongly-connected components and topological
/// ordering of the SCC condensation. Used by the Step-6 dependence-redundance
/// graph (Theorem 1), the call graph, and the points-to solver.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_GRAPH_H
#define HELIX_SUPPORT_GRAPH_H

#include <cstdint>
#include <vector>

namespace helix {

/// A directed graph over nodes 0..N-1 stored as adjacency lists.
class DenseGraph {
public:
  explicit DenseGraph(unsigned NumNodes) : Succs(NumNodes) {}

  unsigned numNodes() const { return unsigned(Succs.size()); }

  void addEdge(unsigned From, unsigned To) { Succs[From].push_back(To); }

  const std::vector<unsigned> &successors(unsigned Node) const {
    return Succs[Node];
  }

private:
  std::vector<std::vector<unsigned>> Succs;
};

/// Result of a strongly-connected-component decomposition.
///
/// Components are numbered in reverse topological order of the condensation
/// (Tarjan's property): if there is an edge from component A to component B
/// with A != B, then the id of A is greater than the id of B.
struct SCCResult {
  /// Component id for each node.
  std::vector<unsigned> ComponentOf;
  /// Members of each component.
  std::vector<std::vector<unsigned>> Components;

  unsigned numComponents() const { return unsigned(Components.size()); }

  /// \returns true if \p Node belongs to a component that is a genuine cycle
  /// (more than one member, or a self loop recorded by the caller).
  bool isInCycle(unsigned Node) const {
    return Components[ComponentOf[Node]].size() > 1;
  }
};

/// Computes strongly connected components with Tarjan's algorithm
/// (iterative, so deep graphs do not overflow the stack).
SCCResult computeSCCs(const DenseGraph &G);

/// \returns the node ids of \p G in some topological order. The graph must be
/// acyclic; cycles trigger an assertion in debug builds and an arbitrary
/// order otherwise.
std::vector<unsigned> topologicalOrder(const DenseGraph &G);

} // namespace helix

#endif // HELIX_SUPPORT_GRAPH_H
