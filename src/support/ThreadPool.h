//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool for fan-out/join parallelism inside the
/// pipeline. Tasks are plain std::function<void()>; wait() blocks until
/// every submitted task finished. parallelForEach() is the common shape:
/// N independent index-addressed work items distributed over the workers
/// through a shared atomic cursor, so results land wherever the caller's
/// closure writes them (typically a pre-sized per-index slot, which keeps
/// merging deterministic regardless of completion order).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_THREADPOOL_H
#define HELIX_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace helix {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means std::thread::hardware_concurrency
  /// (clamped to at least 1).
  explicit ThreadPool(unsigned NumThreads = 0);
  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return unsigned(Workers.size()); }

  /// Enqueues one task. Tasks must not throw — the pool has no channel to
  /// report an exception and std::terminate would follow.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is executing. The pool is
  /// reusable afterwards.
  void wait();

  /// The normalized worker count a request of \p Requested maps to
  /// (0 -> hardware concurrency, always >= 1).
  static unsigned effectiveThreads(unsigned Requested);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< signalled on submit/shutdown
  std::condition_variable AllIdle;       ///< signalled when work drains
  size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

/// Applies \p Body(I) for every I in [0, N), distributed over \p Threads
/// workers (see ThreadPool::effectiveThreads for 0). Threads == 1 runs
/// inline on the caller's thread with no pool at all — the forced
/// single-thread mode the determinism tests compare against. Blocks until
/// every index completed. \p Body must not throw.
void parallelForEach(unsigned Threads, size_t N,
                     const std::function<void(size_t)> &Body);

} // namespace helix

#endif // HELIX_SUPPORT_THREADPOOL_H
