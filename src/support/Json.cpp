#include "support/Json.h"

#include "support/Format.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace helix;

Json Json::boolean(bool V) {
  Json J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

Json Json::integer(int64_t V) {
  Json J;
  J.K = Kind::Int;
  J.I = V;
  return J;
}

Json Json::number(double V) {
  Json J;
  J.K = Kind::Double;
  J.D = V;
  return J;
}

Json Json::str(std::string V) {
  Json J;
  J.K = Kind::String;
  J.S = std::move(V);
  return J;
}

Json Json::array() {
  Json J;
  J.K = Kind::Array;
  return J;
}

Json Json::object() {
  Json J;
  J.K = Kind::Object;
  return J;
}

int64_t Json::asInt() const {
  if (K == Kind::Int)
    return I;
  if (K == Kind::Double)
    return int64_t(D);
  return 0;
}

double Json::asDouble() const {
  if (K == Kind::Int)
    return double(I);
  if (K == Kind::Double)
    return D;
  return 0.0;
}

Json &Json::push(Json V) {
  Elems.push_back(std::move(V));
  return *this;
}

Json &Json::set(const std::string &Key, Json V) {
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return *this;
    }
  Members.emplace_back(Key, std::move(V));
  return *this;
}

const Json *Json::find(const std::string &Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

int64_t Json::getInt(const std::string &Key, int64_t Default) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asInt() : Default;
}

double Json::getDouble(const std::string &Key, double Default) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asDouble() : Default;
}

bool Json::getBool(const std::string &Key, bool Default) const {
  const Json *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Default) const {
  const Json *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

void printEscaped(const std::string &S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += formatStr("\\u%04x", C);
      else
        Out += char(C);
    }
  }
  Out += '"';
}

std::string printDouble(double V) {
  if (std::isnan(V) || std::isinf(V))
    return "null"; // JSON has no literal for these
  std::string S = formatStr("%.17g", V);
  // Keep doubles distinguishable from ints on re-parse.
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

} // namespace

void Json::print(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += B ? "true" : "false";
    return;
  case Kind::Int:
    Out += formatStr("%lld", (long long)I);
    return;
  case Kind::Double:
    Out += printDouble(D);
    return;
  case Kind::String:
    printEscaped(S, Out);
    return;
  case Kind::Array: {
    Out += '[';
    for (size_t Idx = 0; Idx != Elems.size(); ++Idx) {
      if (Idx)
        Out += ',';
      Elems[Idx].print(Out);
    }
    Out += ']';
    return;
  }
  case Kind::Object: {
    Out += '{';
    for (size_t Idx = 0; Idx != Members.size(); ++Idx) {
      if (Idx)
        Out += ',';
      printEscaped(Members[Idx].first, Out);
      Out += ':';
      Members[Idx].second.print(Out);
    }
    Out += '}';
    return;
  }
  }
}

std::string Json::toString() const {
  std::string Out;
  print(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const char *P, *End;
  std::string Err;
  unsigned Depth = 0;
  static constexpr unsigned MaxDepth = 64; // recursion bound: hostile input
                                           // must not smash the stack

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    const char *Q = P;
    while (*Lit) {
      if (Q == End || *Q != *Lit)
        return false;
      ++Q;
      ++Lit;
    }
    P = Q;
    return true;
  }

  bool parseString(std::string &Out) {
    if (P == End || *P != '"')
      return fail("expected string");
    ++P;
    Out.clear();
    while (P != End && *P != '"') {
      unsigned char C = (unsigned char)*P;
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += char(C);
        ++P;
        continue;
      }
      ++P;
      if (P == End)
        return fail("dangling escape");
      char E = *P++;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (End - P < 4)
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = *P++;
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= unsigned(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // Encode the code point as UTF-8 (surrogate pairs are passed
        // through as two 3-byte sequences — the protocol never emits
        // them, this just keeps parse total).
        if (V < 0x80) {
          Out += char(V);
        } else if (V < 0x800) {
          Out += char(0xC0 | (V >> 6));
          Out += char(0x80 | (V & 0x3F));
        } else {
          Out += char(0xE0 | (V >> 12));
          Out += char(0x80 | ((V >> 6) & 0x3F));
          Out += char(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseValue(Json &Out) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (P == End)
      return fail("unexpected end of input");
    bool Ok = parseValueInner(Out);
    --Depth;
    return Ok;
  }

  bool parseValueInner(Json &Out) {
    switch (*P) {
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::str(std::move(S));
      return true;
    }
    case '[': {
      ++P;
      Out = Json::array();
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      for (;;) {
        Json Elem;
        if (!parseValue(Elem))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (P == End)
          return fail("unterminated array");
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == ']') {
          ++P;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '{': {
      ++P;
      Out = Json::object();
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (P == End || *P != ':')
          return fail("expected ':' after object key");
        ++P;
        Json Val;
        if (!parseValue(Val))
          return false;
        Out.set(Key, std::move(Val));
        skipWs();
        if (P == End)
          return fail("unterminated object");
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == '}') {
          ++P;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    default:
      return parseNumber(Out);
    }
  }

  bool parseNumber(Json &Out) {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    bool AnyDigit = false;
    while (P != End && std::isdigit((unsigned char)*P)) {
      ++P;
      AnyDigit = true;
    }
    bool IsInt = true;
    if (P != End && *P == '.') {
      IsInt = false;
      ++P;
      while (P != End && std::isdigit((unsigned char)*P))
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      IsInt = false;
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      while (P != End && std::isdigit((unsigned char)*P))
        ++P;
    }
    if (!AnyDigit)
      return fail("expected value");
    std::string Text(Start, P);
    if (IsInt) {
      errno = 0;
      char *EndPtr = nullptr;
      long long V = std::strtoll(Text.c_str(), &EndPtr, 10);
      if (errno == 0 && EndPtr && *EndPtr == '\0') {
        Out = Json::integer(V);
        return true;
      }
      // Out-of-int64-range integers degrade to double.
    }
    char *EndPtr = nullptr;
    double V = std::strtod(Text.c_str(), &EndPtr);
    if (!EndPtr || *EndPtr != '\0')
      return fail("malformed number");
    Out = Json::number(V);
    return true;
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string *Err) {
  Parser P{Text.data(), Text.data() + Text.size(), std::string(), 0};
  Json V;
  if (!P.parseValue(V)) {
    if (Err)
      *Err = P.Err.empty() ? "parse error" : P.Err;
    return false;
  }
  P.skipWs();
  if (P.P != P.End) {
    if (Err)
      *Err = "trailing garbage after JSON value";
    return false;
  }
  Out = std::move(V);
  if (Err)
    Err->clear();
  return true;
}
