#include "support/Graph.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

SCCResult helix::computeSCCs(const DenseGraph &G) {
  unsigned N = G.numNodes();
  SCCResult Result;
  Result.ComponentOf.assign(N, ~0u);

  std::vector<unsigned> Index(N, ~0u), LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;

  // Explicit DFS stack: (node, next successor position).
  struct Frame {
    unsigned Node;
    unsigned SuccPos;
  };
  std::vector<Frame> DFS;

  for (unsigned Root = 0; Root != N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    DFS.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!DFS.empty()) {
      Frame &F = DFS.back();
      const auto &Succs = G.successors(F.Node);
      if (F.SuccPos < Succs.size()) {
        unsigned S = Succs[F.SuccPos++];
        if (Index[S] == ~0u) {
          Index[S] = LowLink[S] = NextIndex++;
          Stack.push_back(S);
          OnStack[S] = true;
          DFS.push_back({S, 0});
        } else if (OnStack[S]) {
          LowLink[F.Node] = std::min(LowLink[F.Node], Index[S]);
        }
        continue;
      }

      unsigned Node = F.Node;
      DFS.pop_back();
      if (!DFS.empty())
        LowLink[DFS.back().Node] = std::min(LowLink[DFS.back().Node],
                                            LowLink[Node]);
      if (LowLink[Node] != Index[Node])
        continue;

      // Node is the root of an SCC; pop the component off the stack.
      unsigned CompId = Result.numComponents();
      Result.Components.emplace_back();
      while (true) {
        unsigned Member = Stack.back();
        Stack.pop_back();
        OnStack[Member] = false;
        Result.ComponentOf[Member] = CompId;
        Result.Components[CompId].push_back(Member);
        if (Member == Node)
          break;
      }
    }
  }
  return Result;
}

std::vector<unsigned> helix::topologicalOrder(const DenseGraph &G) {
  unsigned N = G.numNodes();
  std::vector<unsigned> InDegree(N, 0);
  for (unsigned U = 0; U != N; ++U)
    for (unsigned V : G.successors(U))
      ++InDegree[V];

  std::vector<unsigned> Order;
  Order.reserve(N);
  std::vector<unsigned> Ready;
  for (unsigned U = 0; U != N; ++U)
    if (InDegree[U] == 0)
      Ready.push_back(U);

  while (!Ready.empty()) {
    unsigned U = Ready.back();
    Ready.pop_back();
    Order.push_back(U);
    for (unsigned V : G.successors(U))
      if (--InDegree[V] == 0)
        Ready.push_back(V);
  }
  assert(Order.size() == N && "topologicalOrder called on a cyclic graph");
  return Order;
}
