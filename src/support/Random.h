//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation (SplitMix64). All workload
/// generation and property-based testing is seeded so every run of every
/// experiment is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_RANDOM_H
#define HELIX_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace helix {

/// A small, fast, deterministic RNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return double(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability \p P of returning true.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace helix

#endif // HELIX_SUPPORT_RANDOM_H
