#include "support/Socket.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace helix;

namespace {

/// Fills \p Addr for \p Path; false when the path exceeds sun_path.
bool makeAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    FD = O.FD;
    Buffer = std::move(O.Buffer);
    O.FD = -1;
  }
  return *this;
}

void Socket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
  Buffer.clear();
}

Socket Socket::connectTo(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    if (Err)
      *Err = "socket path empty or too long: '" + Path + "'";
    return Socket();
  }
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::string("socket(): ") + std::strerror(errno);
    return Socket();
  }
  if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = "connect('" + Path + "'): " + std::strerror(errno);
    ::close(FD);
    return Socket();
  }
  if (Err)
    Err->clear();
  return Socket(FD);
}

bool Socket::sendAll(const std::string &Data) {
  if (FD < 0)
    return false;
  size_t Sent = 0;
  while (Sent < Data.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error return, not
    // kill the daemon with SIGPIPE.
    ssize_t N = ::send(FD, Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += size_t(N);
  }
  return true;
}

bool Socket::recvLine(std::string &LineOut) {
  if (FD < 0)
    return false;
  for (;;) {
    size_t NL = Buffer.find('\n');
    if (NL != std::string::npos) {
      LineOut.assign(Buffer, 0, NL);
      Buffer.erase(0, NL + 1);
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::recv(FD, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF with no complete line
    Buffer.append(Chunk, size_t(N));
  }
}

//===----------------------------------------------------------------------===//
// ListenSocket
//===----------------------------------------------------------------------===//

void ListenSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
    if (!Path.empty())
      ::unlink(Path.c_str());
  }
}

ListenSocket ListenSocket::listenOn(const std::string &Path, int Backlog,
                                    std::string *Err) {
  ListenSocket L;
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    if (Err)
      *Err = "socket path empty or too long: '" + Path + "'";
    return L;
  }
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::string("socket(): ") + std::strerror(errno);
    return L;
  }
  ::unlink(Path.c_str()); // the daemon owns its path; drop a stale file
  if (::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = "bind('" + Path + "'): " + std::strerror(errno);
    ::close(FD);
    return L;
  }
  if (::listen(FD, Backlog) != 0) {
    if (Err)
      *Err = "listen('" + Path + "'): " + std::strerror(errno);
    ::close(FD);
    ::unlink(Path.c_str());
    return L;
  }
  L.FD = FD;
  L.Path = Path;
  if (Err)
    Err->clear();
  return L;
}

Socket ListenSocket::acceptWithTimeout(int TimeoutMillis) {
  if (FD < 0)
    return Socket();
  pollfd PFD{FD, POLLIN, 0};
  int R = ::poll(&PFD, 1, TimeoutMillis);
  if (R <= 0 || !(PFD.revents & POLLIN))
    return Socket();
  int C = ::accept(FD, nullptr, nullptr);
  return C < 0 ? Socket() : Socket(C);
}
