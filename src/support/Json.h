//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value: build, print on one line, parse.
/// Backs the serve protocol (newline-delimited JSON over a local socket)
/// and the report serialization — no external dependency, no streaming,
/// documents the subset it supports:
///
///   - objects keep insertion order (printing is deterministic, so printed
///     messages are byte-stable and usable as coalescing keys);
///   - numbers are either int64 ("Int", printed without a decimal point)
///     or double ("Double"); a parsed literal becomes Int when it has no
///     fraction/exponent and fits, else Double;
///   - strings are uninterpreted bytes; control characters and '"'/'\\'
///     are escaped on print, \uXXXX escapes decode to UTF-8 on parse;
///   - parse rejects trailing garbage, so one line is one message.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_JSON_H
#define HELIX_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace helix {

class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool V);
  static Json integer(int64_t V);
  static Json number(double V);
  static Json str(std::string V);
  static Json array();
  static Json object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  /// Ints return their value; Doubles truncate. 0 for non-numbers.
  int64_t asInt() const;
  /// Ints widen; 0.0 for non-numbers.
  double asDouble() const;
  const std::string &asString() const { return S; }

  // --- Arrays -------------------------------------------------------------
  size_t size() const { return Elems.size(); }
  const Json &at(size_t I) const { return Elems[I]; }
  const std::vector<Json> &elements() const { return Elems; }
  /// Appends to an array (the value must be an array).
  Json &push(Json V);

  // --- Objects ------------------------------------------------------------
  /// Sets \p Key (replacing an existing value, keeping its position).
  Json &set(const std::string &Key, Json V);
  /// \returns the member or null when absent / not an object.
  const Json *find(const std::string &Key) const;
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  // Typed member lookups: value when present and of the right kind, else
  // the fallback. The Found flag (when non-null) distinguishes "absent"
  // from "present with the fallback value" for strict parsers.
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  double getDouble(const std::string &Key, double Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = std::string()) const;

  /// Prints the value on one line (no newline). Deterministic: object
  /// members print in insertion order.
  void print(std::string &Out) const;
  std::string toString() const;

  /// Parses exactly one JSON value from \p Text (surrounding whitespace
  /// tolerated, trailing non-whitespace rejected). On failure returns
  /// false and describes the problem in \p Err (when non-null).
  static bool parse(const std::string &Text, Json &Out,
                    std::string *Err = nullptr);

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

} // namespace helix

#endif // HELIX_SUPPORT_JSON_H
