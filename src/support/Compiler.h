//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability helpers used across the HELIX libraries.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_COMPILER_H
#define HELIX_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace helix {

/// Aborts with a diagnostic. Used to mark points in the code that must never
/// be reached if the program invariants hold.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal internal error even in builds without assertions.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

} // namespace helix

#define HELIX_UNREACHABLE(MSG)                                                 \
  ::helix::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // HELIX_SUPPORT_COMPILER_H
