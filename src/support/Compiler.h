//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability helpers used across the HELIX libraries.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_COMPILER_H
#define HELIX_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace helix {

/// Aborts with a diagnostic. Used to mark points in the code that must never
/// be reached if the program invariants hold.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal internal error even in builds without assertions.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

} // namespace helix

#define HELIX_UNREACHABLE(MSG)                                                 \
  ::helix::unreachableInternal(MSG, __FILE__, __LINE__)

/// Branch-probability hints for hot loops; no-ops off GCC/Clang.
#if defined(__GNUC__) || defined(__clang__)
#define HELIX_LIKELY(X) __builtin_expect(!!(X), 1)
#define HELIX_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define HELIX_LIKELY(X) (X)
#define HELIX_UNLIKELY(X) (X)
#endif

/// Keeps a rarely-taken exit path (trap/stop handling, error formatting)
/// out of line and out of the caller's register-allocation problem — on a
/// hot interpreter loop the inlined cold code otherwise forces spills of
/// loop-carried state. Applies to lambdas after the parameter list.
#if defined(__GNUC__) || defined(__clang__)
#define HELIX_NOINLINE_COLD __attribute__((noinline, cold))
#else
#define HELIX_NOINLINE_COLD
#endif

/// Tells the optimizer a point is unreachable WITHOUT the diagnostic
/// machinery of HELIX_UNREACHABLE — e.g. the default arm of a fully-covered
/// hot switch, where it deletes the jump-table bounds check. Pair with an
/// assert so debug builds still catch violations.
#if defined(__GNUC__) || defined(__clang__)
#define HELIX_UNREACHABLE_HINT() __builtin_unreachable()
#elif defined(_MSC_VER)
#define HELIX_UNREACHABLE_HINT() __assume(0)
#else
#define HELIX_UNREACHABLE_HINT() ::std::abort()
#endif

#endif // HELIX_SUPPORT_COMPILER_H
