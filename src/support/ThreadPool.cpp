#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace helix;

unsigned ThreadPool::effectiveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned N = effectiveThreads(NumThreads);
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && ActiveTasks == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Task = std::move(Queue.front());
      Queue.pop();
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Queue.empty() && ActiveTasks == 0)
        AllIdle.notify_all();
    }
  }
}

void helix::parallelForEach(unsigned Threads, size_t N,
                            const std::function<void(size_t)> &Body) {
  unsigned Effective = ThreadPool::effectiveThreads(Threads);
  if (Effective == 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  // One shared cursor instead of pre-partitioned ranges: work items can be
  // wildly uneven (one candidate loop may dominate the whole program run),
  // so idle workers steal whatever index comes next.
  std::atomic<size_t> Next{0};
  ThreadPool Pool(std::min<size_t>(Effective, N));
  for (unsigned W = 0; W != Pool.numThreads(); ++W)
    Pool.submit([&] {
      for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
        Body(I);
    });
  Pool.wait();
}
