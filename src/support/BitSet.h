//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, resizable bitset used as the transfer domain of the dataflow
/// framework and throughout the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_BITSET_H
#define HELIX_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace helix {

/// Fixed-universe bitset with the set-algebra operations needed by
/// iterative dataflow (union, intersection, difference, equality).
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(unsigned NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  void resize(unsigned NewNumBits) {
    NumBits = NewNumBits;
    Words.resize((NumBits + 63) / 64, 0);
    clearPadding();
  }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearPadding();
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Set union; returns true if this set changed.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    bool Changed = false;
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set intersection; returns true if this set changed.
  bool intersectWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    bool Changed = false;
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set difference (this \ Other); returns true if this set changed.
  bool subtract(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    bool Changed = false;
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  bool intersects(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "universe mismatch");
    for (std::size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  /// \returns true if this set contains every element of \p Other.
  bool contains(const BitSet &Other) const {
    assert(NumBits == Other.NumBits && "universe mismatch");
    for (std::size_t I = 0, E = Words.size(); I != E; ++I)
      if (Other.Words[I] & ~Words[I])
        return false;
    return true;
  }

  bool operator==(const BitSet &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitSet &Other) const { return !(*this == Other); }

  /// Invokes \p Fn for every set bit, in increasing index order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        Fn(unsigned(I * 64 + Bit));
        W &= W - 1;
      }
    }
  }

private:
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace helix

#endif // HELIX_SUPPORT_BITSET_H
