//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over local (AF_UNIX) stream sockets — the transport
/// of the resident serve daemon. Two classes:
///
///   - Socket: one connected byte stream with sendAll() and a buffered
///     recvLine() (the protocol is newline-delimited, so "one line" is the
///     receive unit);
///   - ListenSocket: a bound+listening server socket whose accept takes a
///     timeout, so an accept loop can poll a stop flag without relying on
///     close()-from-another-thread semantics.
///
/// All operations are quiet on error (return false / invalid) — the serve
/// layer turns failures into structured responses or log lines; nothing
/// here exits or throws.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_SOCKET_H
#define HELIX_SUPPORT_SOCKET_H

#include <string>

namespace helix {

class Socket {
public:
  Socket() = default;
  /// Adopts a connected file descriptor.
  explicit Socket(int FD) : FD(FD) {}
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : FD(O.FD), Buffer(std::move(O.Buffer)) {
    O.FD = -1;
  }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return FD >= 0; }
  int fd() const { return FD; }
  void close();

  /// Connects to the local socket at \p Path. On failure the returned
  /// socket is invalid and \p Err (when non-null) describes why.
  static Socket connectTo(const std::string &Path, std::string *Err = nullptr);

  /// Writes all of \p Data (retrying short writes). \returns false when
  /// the peer is gone or the descriptor is invalid.
  bool sendAll(const std::string &Data);

  /// Reads until one full '\n'-terminated line is buffered and returns it
  /// without the newline. \returns false on EOF/error with no complete
  /// line. Bytes after the newline stay buffered for the next call.
  bool recvLine(std::string &LineOut);

private:
  int FD = -1;
  std::string Buffer;
};

class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }

  ListenSocket(ListenSocket &&O) noexcept : FD(O.FD), Path(std::move(O.Path)) {
    O.FD = -1;
  }
  ListenSocket &operator=(ListenSocket &&O) noexcept {
    if (this != &O) {
      close();
      FD = O.FD;
      Path = std::move(O.Path);
      O.FD = -1;
    }
    return *this;
  }
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  bool valid() const { return FD >= 0; }
  const std::string &path() const { return Path; }

  /// Binds and listens on \p Path (removing a stale socket file first —
  /// the daemon owns its path). Invalid on failure, \p Err says why.
  static ListenSocket listenOn(const std::string &Path, int Backlog = 64,
                               std::string *Err = nullptr);

  /// Waits up to \p TimeoutMillis for a connection. The returned socket is
  /// invalid on timeout or error — callers poll this in a loop and check
  /// their own stop flag between calls.
  Socket acceptWithTimeout(int TimeoutMillis);

  /// Closes the descriptor and unlinks the socket file.
  void close();

private:
  int FD = -1;
  std::string Path;
};

} // namespace helix

#endif // HELIX_SUPPORT_SOCKET_H
