//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, used by printers and the
/// benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SUPPORT_FORMAT_H
#define HELIX_SUPPORT_FORMAT_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace helix {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Len > 0) {
    Out.resize(size_t(Len));
    std::vsnprintf(Out.data(), size_t(Len) + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Out;
}

} // namespace helix

#endif // HELIX_SUPPORT_FORMAT_H
