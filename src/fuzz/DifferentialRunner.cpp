#include "fuzz/DifferentialRunner.h"

#include "analysis/LoopInfo.h"
#include "check/DepAudit.h"
#include "check/SyncChecker.h"
#include "exec/ExecLimits.h"
#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "runtime/ThreadedRuntime.h"
#include "sim/ParallelSim.h"
#include "sim/TraceCollector.h"
#include "support/Format.h"

#include <set>

using namespace helix;

namespace {

/// Transforms every top-level loop of every function of \p M in place.
/// \returns the metadata of the loops HELIX accepted.
std::vector<ParallelLoopInfo> transformAll(Module &M, const DiffConfig &C,
                                           DiffOutcome &Out) {
  AnalysisManager AM(M);
  std::vector<std::pair<Function *, BasicBlock *>> Targets;
  for (Function *F : M) {
    if (!C.TransformMainLoops && F->name() == "main")
      continue;
    for (Loop *L : AM.get<LoopInfo>(F).topLevelLoops())
      Targets.push_back({F, L->header()});
  }
  std::vector<ParallelLoopInfo> Loops;
  for (auto &[F, H] : Targets) {
    ++Out.LoopsAttempted;
    std::optional<ParallelLoopInfo> PLI =
        parallelizeLoop(AM, F, H, C.Helix, &Out.PassTimings);
    if (PLI) {
      ++Out.LoopsTransformed;
      Loops.push_back(std::move(*PLI));
    }
  }
  // One AM serves every loop above; transforming F no longer drops the
  // analyses of untouched functions, which these counters demonstrate
  // campaign-wide once the driver aggregates them.
  Out.AnalysisCounters = AM.counterReport();
  return Loops;
}

/// Functions reachable from @main through direct calls. Transforming
/// @main's loop can inline the kernels it calls (Step 5a), leaving the
/// original kernel functions dead — a corruption planted there would never
/// execute.
std::set<const Function *> reachableFromMain(const Module &M) {
  std::set<const Function *> Seen;
  std::vector<const Function *> Queue;
  if (const Function *Main = M.findFunction("main")) {
    Seen.insert(Main);
    Queue.push_back(Main);
  }
  while (!Queue.empty()) {
    const Function *F = Queue.back();
    Queue.pop_back();
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->isCall() && I->callee() && Seen.insert(I->callee()).second)
          Queue.push_back(I->callee());
  }
  return Seen;
}

/// Applies the requested deterministic corruption to the transformed
/// module. \returns true when a target was found and mutated.
bool injectBug(const Module &M, BugInjection Inject,
               std::vector<ParallelLoopInfo> &Loops) {
  std::set<const Function *> Live = reachableFromMain(M);
  switch (Inject) {
  case BugInjection::None:
    return false;
  case BugInjection::FlipFirstBodyOp: {
    // Prefer a carried self-update `r = r op t` with a register t: its
    // value feeds the checksum (accumulator) or the trip count (IV), so
    // the flip is practically never dead. Fall back to any Add/Sub whose
    // operands are not a literal zero (flipping `x + 0` is a no-op).
    Instruction *Fallback = nullptr;
    for (ParallelLoopInfo &PLI : Loops) {
      if (!Live.count(PLI.F))
        continue;
      for (BasicBlock *BB : PLI.BodyBlocks)
        for (Instruction *I : *BB) {
          if ((I->opcode() != Opcode::Add && I->opcode() != Opcode::Sub) ||
              !I->hasDest() || I->numOperands() != 2)
            continue;
          auto IsDest = [&](const Operand &O) {
            return O.isReg() && O.regId() == I->dest();
          };
          bool SelfUpdate = (IsDest(I->operand(0)) && I->operand(1).isReg()) ||
                            (IsDest(I->operand(1)) && I->operand(0).isReg());
          if (SelfUpdate) {
            I->setOpcode(I->opcode() == Opcode::Add ? Opcode::Sub
                                                    : Opcode::Add);
            return true;
          }
          bool HasZeroImm =
              (I->operand(0).isImmInt() && I->operand(0).intValue() == 0) ||
              (I->operand(1).isImmInt() && I->operand(1).intValue() == 0);
          if (!Fallback && !HasZeroImm)
            Fallback = I;
        }
    }
    if (Fallback) {
      Fallback->setOpcode(Fallback->opcode() == Opcode::Add ? Opcode::Sub
                                                            : Opcode::Add);
      return true;
    }
    return false;
  }
  case BugInjection::DropFirstSegmentWaits:
    for (ParallelLoopInfo &PLI : Loops) {
      if (!Live.count(PLI.F))
        continue;
      for (SequentialSegment &S : PLI.Segments)
        if (!S.Waits.empty()) {
          for (Instruction *W : S.Waits)
            W->setOpcode(Opcode::Nop);
          return true;
        }
    }
    return false;
  }
  return false;
}

bool budgetExhausted(const ExecResult &R) {
  return !R.Ok && R.BudgetExhausted;
}

/// Checks one leg against the sequential reference. \returns true when the
/// outcome judgement should stop (divergence or inconclusive recorded).
bool compareLeg(const char *Leg, const ExecResult &Ref, const ExecResult &R,
                DiffOutcome &Out) {
  if (budgetExhausted(R)) {
    // The reference completed but this leg ran out of budget: with the 4x
    // headroom that is a hang-shaped divergence, not noise.
    Out.Divergence = true;
    Out.DivergentKind = DiffOutcome::Kind::Hang;
    Out.Detail = formatStr("%s leg exhausted its instruction budget while "
                           "the sequential leg finished",
                           Leg);
    return true;
  }
  if (Ref.Ok != R.Ok) {
    Out.Divergence = true;
    Out.DivergentKind = DiffOutcome::Kind::Trap;
    Out.Detail = formatStr(
        "%s leg %s but the sequential leg %s (%s)", Leg,
        R.Ok ? "succeeded" : ("trapped: " + R.Error).c_str(),
        Ref.Ok ? "succeeded" : "trapped", Ref.Ok ? "" : Ref.Error.c_str());
    return true;
  }
  if (!Ref.Ok)
    return false; // both trapped: consistent (messages may rename blocks)
  if (!(R.ReturnValue == Ref.ReturnValue)) {
    Out.Divergence = true;
    Out.DivergentKind = DiffOutcome::Kind::Checksum;
    Out.Detail = formatStr("%s checksum %lld != sequential checksum %lld",
                           Leg, (long long)R.ReturnValue.asInt(),
                           (long long)Ref.ReturnValue.asInt());
    return true;
  }
  return false;
}

} // namespace

DiffOutcome helix::runDifferential(const Module &M, const DiffConfig &C) {
  DiffOutcome Out;

  // --- Leg 1: plain sequential reference. --------------------------------
  std::unique_ptr<Module> SeqM = cloneModule(M);
  Interpreter SeqI(*SeqM);
  SeqI.setMaxInstructions(C.MaxInstructions);
  ExecResult Seq = SeqI.run();
  Out.SeqOk = Seq.Ok;
  Out.SeqChecksum = Seq.Ok ? Seq.ReturnValue.asInt() : 0;
  Out.SeqCycles = Seq.Cycles;
  Out.SeqInstructions = Seq.Instructions;
  if (budgetExhausted(Seq)) {
    // The generator produced a longer-running program than the budget
    // covers; nothing can be compared.
    Out.Inconclusive = true;
    Out.Detail = "sequential leg exhausted the instruction budget";
    return Out;
  }

  // --- Transform (Steps 1-8) on a private clone. -------------------------
  std::unique_ptr<Module> TM = cloneModule(M);
  std::vector<ParallelLoopInfo> Loops = transformAll(*TM, C, Out);
  Out.InjectionApplied = injectBug(*TM, C.Inject, Loops);

  // --- Static leg: verify the synchronization contract before executing
  // --- anything. A fresh manager keeps the transform leg's analysis
  // --- counters (asserted by tests) untouched. ----------------------------
  {
    AnalysisManager CheckAM(*TM);
    std::vector<const ParallelLoopInfo *> CheckPLIs;
    for (ParallelLoopInfo &L : Loops)
      CheckPLIs.push_back(&L);
    SyncCheckResult SC = checkModuleSync(CheckAM, CheckPLIs);
    Out.StaticFindings = unsigned(SC.Diags.size());
    Out.StaticLoopsChecked = SC.LoopsChecked;
    for (const SyncDiag &D : SC.Diags)
      Out.StaticDiags.push_back(D.str());
  }

  // The hang classifier's leg budget: 4x headroom over the sequential
  // budget (shared formula in exec/ExecLimits.h — saturating, so a huge
  // --max-instrs "unlimited" does not wrap into a tiny leg budget and
  // report clean programs as hangs).
  uint64_t LegBudget = ExecLimits::hangBudget(C.MaxInstructions);

  // --- Leg 2: transformed module, sequential semantics (Step 9), with
  // --- traces for the simulator sanity check and dependence witnesses
  // --- for the soundness audit. ------------------------------------------
  std::vector<const ParallelLoopInfo *> PLIs;
  for (ParallelLoopInfo &L : Loops)
    PLIs.push_back(&L);
  TraceCollector TC(PLIs);
  DepWitnessObserver DW(PLIs);
  FanoutObserver Both(TC, DW);
  Interpreter TI(*TM);
  TI.setMaxInstructions(LegBudget);
  TI.setObserver(C.AuditDeps ? static_cast<ExecObserver *>(&Both) : &TC);
  ExecResult TRun = TI.run();
  if (compareLeg("transformed-sequential", Seq, TRun, Out)) {
    Out.DivergentLeg = DiffOutcome::Leg::TransformedSeq;
    return Out;
  }

  // --- Dependence-soundness audit, before any threaded leg: a witnessed
  // --- loop-carried dependence the transform never synchronized is a DDG
  // --- soundness bug even when a lucky schedule hides it dynamically. ----
  if (C.AuditDeps) {
    DepAuditResult AR = auditDependences(DW);
    Out.DepLoopsAudited = AR.LoopsAudited;
    Out.DepWitnessed = AR.WitnessedDeps;
    Out.DepCovered = AR.CoveredDeps;
    Out.DepUncovered = AR.UncoveredDeps;
    Out.DepStaticMemDeps = AR.StaticMemDeps;
    Out.DepStaticUnwitnessed = AR.StaticUnwitnessed;
    Out.DepDiags = std::move(AR.Diags);
    if (AR.UncoveredDeps > 0) {
      Out.Divergence = true;
      Out.DivergentLeg = DiffOutcome::Leg::DepAudit;
      Out.DivergentKind = DiffOutcome::Kind::DepUnsound;
      Out.Detail = Out.DepDiags.front();
      return Out;
    }
  }

  // --- Leg 3: true concurrency across the configured thread counts. -----
  for (unsigned Threads : C.ThreadCounts) {
    RuntimeStats Stats;
    ExecResult R = runThreaded(*TM, PLIs, Threads, &Stats, LegBudget);
    if (compareLeg(formatStr("threaded(%u)", Threads).c_str(), Seq, R, Out)) {
      Out.DivergentLeg = DiffOutcome::Leg::Threaded;
      return Out;
    }
  }

  // --- Simulator sanity: predicted parallel time must not blow up. -------
  if (TRun.Ok && !Loops.empty()) {
    SimConfig SC;
    SC.NumCores = C.SimCores;
    SC.Machine = C.Helix.Machine;
    Out.SimParCycles = simulateProgram(TC, SC);
    uint64_t Traced = TC.totalCycles();
    double Bound =
        double(Traced) * C.SimSlackFactor + double(C.SimSlackCycles);
    if (double(Out.SimParCycles) > Bound) {
      Out.Divergence = true;
      Out.DivergentLeg = DiffOutcome::Leg::Sim;
      Out.DivergentKind = DiffOutcome::Kind::SimBlowup;
      Out.Detail = formatStr(
          "sim sanity: simulated ParallelCycles %llu exceeds traced "
          "sequential cycles %llu by more than %gx + %llu",
          (unsigned long long)Out.SimParCycles, (unsigned long long)Traced,
          C.SimSlackFactor, (unsigned long long)C.SimSlackCycles);
      return Out;
    }
  }

  return Out;
}
