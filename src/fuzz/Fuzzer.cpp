#include "fuzz/Fuzzer.h"

#include "exec/ExecLimits.h"
#include "fuzz/TestCaseReducer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <fstream>

using namespace helix;

uint64_t helix::fuzzCaseSeed(uint64_t Seed, unsigned Index) {
  // One SplitMix64 step over a (seed, index) mix: cases are independent of
  // each other and of the worker schedule.
  return Rng(Seed ^ (0x9E3779B97F4A7C15ull * (uint64_t(Index) + 1))).next();
}

std::vector<FuzzVariant>
helix::fuzzScheduleVariants(const GeneratorConfig &Base) {
  std::vector<FuzzVariant> Out;
  auto Add = [&](const char *Name, auto Tweak) {
    FuzzVariant V;
    V.Name = Name;
    V.Config = Base;
    Tweak(V.Config);
    Out.push_back(std::move(V));
  };
  Add("base", [](GeneratorConfig &) {});
  Add("flat", [](GeneratorConfig &C) { C.MaxLoopDepth = 1; });
  Add("deep-nest", [](GeneratorConfig &C) { C.MaxLoopDepth += 1; });
  Add("many-kernels", [](GeneratorConfig &C) { C.MinKernels = C.MaxKernels; });
  Add("short-trip", [](GeneratorConfig &C) {
    C.MinTrip = 2;
    C.MaxTrip = 4;
  });
  Add("long-trip", [](GeneratorConfig &C) {
    C.MinTrip = 12;
    C.MaxTrip = 30;
  });
  Add("buffers", [](GeneratorConfig &C) { C.LocalBufferProb = 0.9; });
  Add("plain", [](GeneratorConfig &C) {
    C.LocalBufferProb = 0.0;
    C.MaxLeafFuncs = 0;
  });
  return Out;
}

std::vector<uint64_t>
helix::fuzzVariantWeights(const std::vector<uint64_t> &Cases,
                          const std::vector<uint64_t> &Untransformed) {
  assert(Cases.size() == Untransformed.size() && "count vectors disagree");
  // Weight ~ the variant's historical Untransformed *rate* (+1 smoothing
  // keeps every variant explorable): shapes HELIX declines to parallelize
  // mark the accept/reject boundary the campaign should keep pushing on.
  std::vector<uint64_t> Weights(Cases.size());
  for (size_t V = 0; V != Cases.size(); ++V)
    Weights[V] = 1000 * (1 + Untransformed[V]) / (1 + Cases[V]) + 1;
  return Weights;
}

namespace {

/// Everything one worker records about its case; merged in index order.
struct CaseResult {
  DiffOutcome Outcome;
  std::string ReproText;  ///< filled on divergence/inconclusive
  std::string ShrunkText; ///< filled when shrinking succeeded
  unsigned ShrunkInstrs = 0;
};

void writeRepro(const std::string &Dir, const std::string &Name,
                uint64_t CaseSeed, const std::string &Detail,
                const std::string &Text, std::string &PathOut) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Path = Dir + "/" + Name;
  std::ofstream OS(Path);
  if (!OS)
    return;
  // '#' starts a comment in the IR grammar: the repro stays parseable.
  OS << "# helix-fuzz repro; case seed 0x" << std::hex << CaseSeed
     << std::dec << "\n";
  OS << "# " << Detail << "\n";
  OS << Text;
  PathOut = Path;
}

} // namespace

FuzzSummary helix::runFuzzCampaign(const FuzzOptions &Options) {
  FuzzSummary Summary;
  std::vector<FuzzVariant> Variants = fuzzScheduleVariants(Options.Gen);
  unsigned Runs = Options.CaseSeeds.empty()
                      ? Options.Runs
                      : unsigned(Options.CaseSeeds.size());
  auto CaseSeedOf = [&](unsigned Index) {
    return Options.CaseSeeds.empty() ? fuzzCaseSeed(Options.Seed, Index)
                                     : Options.CaseSeeds[Index];
  };
  Summary.Runs = Runs;
  Summary.Variants.resize(Variants.size());
  for (size_t V = 0; V != Variants.size(); ++V)
    Summary.Variants[V].Name = Variants[V].Name;

  std::vector<CaseResult> Results(Runs);
  std::vector<unsigned> VariantOf(Runs, 0);
  if (!Options.CaseSeeds.empty() && Options.ReplayVariant < Variants.size())
    std::fill(VariantOf.begin(), VariantOf.end(), Options.ReplayVariant);
  // Coverage-guided scheduling: the variant draw happens at deterministic
  // round boundaries from a dedicated RNG stream, using only the verdicts
  // of completed rounds — so for a fixed (Seed, Runs) the schedule (and
  // with it every module and verdict) is identical regardless of Jobs.
  bool Guided = Options.CoverageGuided && Options.CaseSeeds.empty() &&
                Variants.size() > 1;
  Rng Sched(Options.Seed ^ 0xC07E6A6EDB1A5ull);
  std::vector<uint64_t> GuideCases(Variants.size(), 0);
  std::vector<uint64_t> GuideUntransformed(Variants.size(), 0);

  unsigned Step = Guided ? std::max(1u, Options.RoundSize)
                         : std::max(1u, Runs);
  for (unsigned Begin = 0; Begin < Runs; Begin += Step) {
    unsigned End = std::min(Runs, Begin + Step);
    if (Guided) {
      std::vector<uint64_t> Weights =
          fuzzVariantWeights(GuideCases, GuideUntransformed);
      uint64_t Total = 0;
      for (uint64_t W : Weights)
        Total += W;
      for (unsigned I = Begin; I != End; ++I) {
        uint64_t Pick = Sched.nextBelow(Total);
        unsigned V = 0;
        while (Pick >= Weights[V]) {
          Pick -= Weights[V];
          ++V;
        }
        VariantOf[I] = V;
      }
    }

    parallelForEach(Options.Jobs, End - Begin, [&](size_t K) {
      unsigned Index = Begin + unsigned(K);
      obs::TraceSpan CaseSpan("fuzz.case", "fuzz");
      obs::MetricsRegistry::global().counter("fuzz.cases").add();
      CaseResult &R = Results[Index];
      uint64_t CaseSeed = CaseSeedOf(Index);
      std::unique_ptr<Module> M =
          generateProgram(CaseSeed, Variants[VariantOf[Index]].Config);
      R.Outcome = runDifferential(*M, Options.Diff);
      // On an uninjected campaign a static finding fails the case even
      // when every dynamic leg was clean, so its repro is needed too.
      bool StaticAlarm = Options.Diff.Inject == BugInjection::None &&
                         R.Outcome.StaticFindings != 0;
      if (!R.Outcome.Divergence && !R.Outcome.Inconclusive && !StaticAlarm)
        return;
      R.ReproText = M->toString();
      if (R.Outcome.Divergence && Options.Shrink) {
        // The shrink oracle replays the divergence hundreds of times; make
        // each replay as cheap as the original failure allows. A candidate
        // whose edit created an endless loop dies on the tightened budget
        // instead of burning the full campaign budget, and the threaded
        // legs only run when the divergence actually needed threads.
        DiffConfig Replay = Options.Diff;
        Replay.MaxInstructions =
            ExecLimits::hangBudget(R.Outcome.SeqInstructions);
        if (R.Outcome.DivergentLeg != DiffOutcome::Leg::Threaded)
          Replay.ThreadCounts.clear();
        DiffOutcome::Kind Kind = R.Outcome.DivergentKind;
        ReduceResult Reduced = reduceTestCase(*M, [&](const Module &Cand) {
          DiffOutcome O = runDifferential(Cand, Replay);
          return O.Divergence && O.DivergentKind == Kind;
        });
        R.ShrunkText = Reduced.Text;
        R.ShrunkInstrs = Reduced.InstrsAfter;
      }
    });

    // Fold this round's coverage signal into the guide, in index order.
    for (unsigned I = Begin; I != End; ++I) {
      ++GuideCases[VariantOf[I]];
      if (Results[I].Outcome.LoopsTransformed == 0)
        ++GuideUntransformed[VariantOf[I]];
    }
  }

  for (unsigned Index = 0; Index != Runs; ++Index) {
    const CaseResult &R = Results[Index];
    Summary.LoopsAttempted += R.Outcome.LoopsAttempted;
    Summary.LoopsTransformed += R.Outcome.LoopsTransformed;
    FuzzSummary::VariantStats &VS = Summary.Variants[VariantOf[Index]];
    ++VS.Cases;
    if (R.Outcome.LoopsTransformed == 0) {
      ++Summary.Untransformed;
      ++VS.Untransformed;
    }
    if (R.Outcome.Divergence)
      ++VS.Divergent;
    mergePassTimings(Summary.PassTimings, R.Outcome.PassTimings);
    mergeAnalysisCounters(Summary.AnalysisCounters, R.Outcome.AnalysisCounters);

    Summary.StaticLoopsChecked += R.Outcome.StaticLoopsChecked;
    Summary.StaticFindings += R.Outcome.StaticFindings;
    if (R.Outcome.StaticFindings) {
      ++Summary.StaticFlagged;
      if (R.Outcome.Divergence)
        ++Summary.StaticConfirmed;
      else
        ++Summary.StaticOnly;
    }
    if (R.Outcome.InjectionApplied) {
      ++Summary.InjectedCases;
      if (R.Outcome.StaticFindings)
        ++Summary.InjectedStaticFlagged;
    }

    Summary.DepLoopsAudited += R.Outcome.DepLoopsAudited;
    Summary.DepWitnessed += R.Outcome.DepWitnessed;
    Summary.DepCovered += R.Outcome.DepCovered;
    Summary.DepUncovered += R.Outcome.DepUncovered;
    Summary.DepStaticMemDeps += R.Outcome.DepStaticMemDeps;
    Summary.DepStaticUnwitnessed += R.Outcome.DepStaticUnwitnessed;
    if (R.Outcome.DivergentKind == DiffOutcome::Kind::DepUnsound)
      ++Summary.DepUnsoundCases;

    bool StaticAlarm = Options.Diff.Inject == BugInjection::None &&
                       R.Outcome.StaticFindings != 0 &&
                       !R.Outcome.Divergence && !R.Outcome.Inconclusive;
    if (!R.Outcome.Divergence && !R.Outcome.Inconclusive && !StaticAlarm) {
      ++Summary.Clean;
      continue;
    }
    FuzzFailure F;
    F.CaseIndex = Index;
    F.CaseSeed = CaseSeedOf(Index);
    F.Variant = VariantOf[Index];
    F.Inconclusive = R.Outcome.Inconclusive;
    F.StaticAlarm = StaticAlarm;
    F.DepUnsound =
        R.Outcome.DivergentKind == DiffOutcome::Kind::DepUnsound;
    F.Detail = R.Outcome.Detail;
    if (StaticAlarm) {
      F.Detail = formatStr("static sync check: %s",
                           R.Outcome.StaticDiags.empty()
                               ? "finding"
                               : R.Outcome.StaticDiags.front().c_str());
      if (R.Outcome.StaticDiags.size() > 1)
        F.Detail +=
            formatStr(" (+%zu more)", R.Outcome.StaticDiags.size() - 1);
    }
    F.ReproText = R.ReproText;
    F.ShrunkText = R.ShrunkText;
    F.ShrunkInstrs = R.ShrunkInstrs;
    if (R.Outcome.Inconclusive)
      ++Summary.Inconclusive;
    else if (StaticAlarm)
      ++Summary.StaticAlarms;
    else
      ++Summary.Divergent;

    // Inconclusive cases are persisted too: they make the run non-clean
    // (the CLI exits nonzero), so CI's artifact upload must have the
    // module, not just a case seed in the log.
    if (!Options.CorpusDir.empty()) {
      std::string Base = formatStr(
          "%s-%04u-%016llx",
          F.DepUnsound        ? "dep"
          : R.Outcome.Divergence ? "div"
          : F.StaticAlarm        ? "static"
                                 : "inc",
          Index, (unsigned long long)F.CaseSeed);
      writeRepro(Options.CorpusDir, Base + ".ir", F.CaseSeed, F.Detail,
                 F.ReproText, F.ReproPath);
      if (!F.ShrunkText.empty())
        writeRepro(Options.CorpusDir, Base + ".shrunk.ir", F.CaseSeed,
                   F.Detail, F.ShrunkText, F.ShrunkPath);
    }
    Summary.Failures.push_back(std::move(F));
  }
  obs::MetricsRegistry &MR = obs::MetricsRegistry::global();
  MR.counter("fuzz.divergent").add(Summary.Divergent);
  MR.counter("fuzz.inconclusive").add(Summary.Inconclusive);
  MR.counter("fuzz.static_alarms").add(Summary.StaticAlarms);
  MR.counter("fuzz.dep_unsound").add(Summary.DepUnsoundCases);
  MR.counter("fuzz.dep_witnessed").add(Summary.DepWitnessed);
  MR.counter("fuzz.dep_uncovered").add(Summary.DepUncovered);
  return Summary;
}
