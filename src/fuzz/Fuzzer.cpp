#include "fuzz/Fuzzer.h"

#include "fuzz/TestCaseReducer.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <fstream>

using namespace helix;

uint64_t helix::fuzzCaseSeed(uint64_t Seed, unsigned Index) {
  // One SplitMix64 step over a (seed, index) mix: cases are independent of
  // each other and of the worker schedule.
  return Rng(Seed ^ (0x9E3779B97F4A7C15ull * (uint64_t(Index) + 1))).next();
}

namespace {

/// Everything one worker records about its case; merged in index order.
struct CaseResult {
  DiffOutcome Outcome;
  std::string ReproText;  ///< filled on divergence/inconclusive
  std::string ShrunkText; ///< filled when shrinking succeeded
  unsigned ShrunkInstrs = 0;
};

void writeRepro(const std::string &Dir, const std::string &Name,
                uint64_t CaseSeed, const std::string &Detail,
                const std::string &Text, std::string &PathOut) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Path = Dir + "/" + Name;
  std::ofstream OS(Path);
  if (!OS)
    return;
  // '#' starts a comment in the IR grammar: the repro stays parseable.
  OS << "# helix-fuzz repro; case seed 0x" << std::hex << CaseSeed
     << std::dec << "\n";
  OS << "# " << Detail << "\n";
  OS << Text;
  PathOut = Path;
}

} // namespace

FuzzSummary helix::runFuzzCampaign(const FuzzOptions &Options) {
  FuzzSummary Summary;
  unsigned Runs = Options.CaseSeeds.empty()
                      ? Options.Runs
                      : unsigned(Options.CaseSeeds.size());
  auto CaseSeedOf = [&](unsigned Index) {
    return Options.CaseSeeds.empty() ? fuzzCaseSeed(Options.Seed, Index)
                                     : Options.CaseSeeds[Index];
  };
  Summary.Runs = Runs;

  std::vector<CaseResult> Results(Runs);
  parallelForEach(Options.Jobs, Runs, [&](size_t Index) {
    CaseResult &R = Results[Index];
    uint64_t CaseSeed = CaseSeedOf(unsigned(Index));
    std::unique_ptr<Module> M = generateProgram(CaseSeed, Options.Gen);
    R.Outcome = runDifferential(*M, Options.Diff);
    if (!R.Outcome.Divergence && !R.Outcome.Inconclusive)
      return;
    R.ReproText = M->toString();
    if (R.Outcome.Divergence && Options.Shrink) {
      // The shrink oracle replays the divergence hundreds of times; make
      // each replay as cheap as the original failure allows. A candidate
      // whose edit created an endless loop dies on the tightened budget
      // instead of burning the full campaign budget, and the threaded
      // legs only run when the divergence actually needed threads.
      DiffConfig Replay = Options.Diff;
      Replay.MaxInstructions =
          std::max<uint64_t>(10000, R.Outcome.SeqInstructions * 4);
      if (R.Outcome.DivergentLeg != DiffOutcome::Leg::Threaded)
        Replay.ThreadCounts.clear();
      DiffOutcome::Kind Kind = R.Outcome.DivergentKind;
      ReduceResult Reduced = reduceTestCase(*M, [&](const Module &Cand) {
        DiffOutcome O = runDifferential(Cand, Replay);
        return O.Divergence && O.DivergentKind == Kind;
      });
      R.ShrunkText = Reduced.Text;
      R.ShrunkInstrs = Reduced.InstrsAfter;
    }
  });

  for (unsigned Index = 0; Index != Runs; ++Index) {
    const CaseResult &R = Results[Index];
    Summary.LoopsAttempted += R.Outcome.LoopsAttempted;
    Summary.LoopsTransformed += R.Outcome.LoopsTransformed;
    if (R.Outcome.LoopsTransformed == 0)
      ++Summary.Untransformed;
    mergePassTimings(Summary.PassTimings, R.Outcome.PassTimings);
    mergeAnalysisCounters(Summary.AnalysisCounters, R.Outcome.AnalysisCounters);

    if (!R.Outcome.Divergence && !R.Outcome.Inconclusive) {
      ++Summary.Clean;
      continue;
    }
    FuzzFailure F;
    F.CaseIndex = Index;
    F.CaseSeed = CaseSeedOf(Index);
    F.Inconclusive = R.Outcome.Inconclusive;
    F.Detail = R.Outcome.Detail;
    F.ReproText = R.ReproText;
    F.ShrunkText = R.ShrunkText;
    F.ShrunkInstrs = R.ShrunkInstrs;
    if (R.Outcome.Inconclusive)
      ++Summary.Inconclusive;
    else
      ++Summary.Divergent;

    // Inconclusive cases are persisted too: they make the run non-clean
    // (the CLI exits nonzero), so CI's artifact upload must have the
    // module, not just a case seed in the log.
    if (!Options.CorpusDir.empty()) {
      std::string Base =
          formatStr("%s-%04u-%016llx", R.Outcome.Divergence ? "div" : "inc",
                    Index, (unsigned long long)F.CaseSeed);
      writeRepro(Options.CorpusDir, Base + ".ir", F.CaseSeed, F.Detail,
                 F.ReproText, F.ReproPath);
      if (!F.ShrunkText.empty())
        writeRepro(Options.CorpusDir, Base + ".shrunk.ir", F.CaseSeed,
                   F.Detail, F.ShrunkText, F.ShrunkPath);
    }
    Summary.Failures.push_back(std::move(F));
  }
  return Summary;
}
