//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of Verifier-clean IR programs for differential
/// fuzzing of the HELIX pipeline.
///
/// Where src/workloads/ builds nine hand-shaped kernel idioms, the
/// generator *composes* the structures HELIX cares about at random: nested
/// natural loops, register-carried reductions, memory-carried stencils,
/// histogram-style indirect updates, pointer chains, multi-exit loops,
/// calls from loop bodies, branchy control flow and floating-point chains.
/// Every generated program is deterministic for its seed, terminates
/// (bounded trip counts, statically linked pointer chains), traps at most
/// through the interpreter's checked operations, and returns a checksum
/// from @main — the value the differential oracle compares across
/// sequential, transformed-sequential and threaded executions.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_PROGRAMGENERATOR_H
#define HELIX_FUZZ_PROGRAMGENERATOR_H

#include "ir/Module.h"

#include <cstdint>
#include <memory>

namespace helix {

/// Size/shape bounds of generated programs. The defaults keep one
/// differential run in the low milliseconds so CI can afford hundreds of
/// iterations.
struct GeneratorConfig {
  unsigned MinKernels = 1; ///< loop-nest functions called from @main
  unsigned MaxKernels = 3;
  unsigned MaxLoopDepth = 3; ///< loop nesting inside one kernel
  /// Trip-count bounds of counted loops. Clamped to [2, 30] by the
  /// generator: the smallest array has 32 slots and the stencil shape
  /// writes a[i+1], so larger trips would index out of bounds.
  unsigned MinTrip = 3;
  unsigned MaxTrip = 20;
  unsigned MaxLeafFuncs = 2; ///< straight-line helpers callable from bodies
  unsigned MaxMainRepeat = 3; ///< @main's repeat loop around the kernels
  /// Probability that a kernel allocates a HeapAlloc-backed scratch buffer
  /// at entry and lets its loop bodies read/write it like a global, and
  /// that a leaf helper spills its parameters through an Alloca-backed
  /// buffer. Exercises the Stack/Heap abstract locations of the points-to
  /// analysis (and their invalidation paths), which global-only programs
  /// never touch. Heap buffers live in shared memory, so the threaded
  /// legs see them; Alloca traffic stays call-local by construction
  /// (worker stacks are thread-private in the runtime).
  double LocalBufferProb = 0.4;
};

/// Builds the program for \p Seed. The module verifies cleanly; @main
/// takes no arguments and returns the checksum. Aborts (fatal error) if
/// the generator ever emits malformed IR — that is a generator bug, not an
/// input condition.
std::unique_ptr<Module> generateProgram(uint64_t Seed,
                                        const GeneratorConfig &Config = {});

} // namespace helix

#endif // HELIX_FUZZ_PROGRAMGENERATOR_H
