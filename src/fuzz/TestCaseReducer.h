//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinking of failing fuzz cases. The reducer works on the *textual* IR
/// (the same form repro files are stored in): each candidate edit is
/// re-parsed, re-verified, and re-judged by the caller's oracle, so every
/// accepted step keeps a well-formed module that still exhibits the
/// original divergence. Edits, from coarse to fine: drop whole functions,
/// drop blocks, drop instruction windows (ddmin-style), collapse
/// conditional branches, and halve integer literals (trip counts,
/// immediates).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_TESTCASEREDUCER_H
#define HELIX_FUZZ_TESTCASEREDUCER_H

#include "ir/Module.h"

#include <functional>
#include <memory>
#include <string>

namespace helix {

/// \returns true when the candidate module is still "interesting" (i.e.
/// still diverges). Must be deterministic, or reduction will thrash.
using ReduceOracle = std::function<bool(const Module &)>;

struct ReducerConfig {
  /// A round applies every edit pass once; reduction stops after a round
  /// that accepts nothing, or after this many rounds.
  unsigned MaxRounds = 12;
  /// Hard cap on oracle invocations: reduction is best-effort and stops
  /// mid-pass when the budget is spent (every oracle call replays the
  /// divergence, which is the expensive part).
  unsigned MaxAttempts = 3000;
};

struct ReduceResult {
  /// Reduced program text: parses, verifies, and satisfies the oracle.
  /// Equal to the input's text when nothing could be removed.
  std::string Text;
  std::unique_ptr<Module> M; ///< parsed form of Text
  unsigned InstrsBefore = 0;
  unsigned InstrsAfter = 0;
  unsigned EditsAccepted = 0;
  unsigned Rounds = 0;
};

/// Shrinks \p M while \p StillFails holds. \p M itself is not modified.
ReduceResult reduceTestCase(const Module &M, const ReduceOracle &StillFails,
                            const ReducerConfig &Config = {});

} // namespace helix

#endif // HELIX_FUZZ_TESTCASEREDUCER_H
