//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz campaign driver: generate -> differential -> (on divergence)
/// shrink -> persist, fanned out over the shared ThreadPool. Per-case
/// seeds are derived from (campaign seed, case index) alone, so a
/// campaign's modules and verdicts are identical for a given seed no
/// matter how many workers run it or how the scheduler interleaves them.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_FUZZER_H
#define HELIX_FUZZ_FUZZER_H

#include "fuzz/DifferentialRunner.h"
#include "fuzz/ProgramGenerator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Runs = 100;
  /// When non-empty, run exactly these *generator* seeds (one case each);
  /// Seed/Runs are ignored. This is the replay path for a failing case:
  /// pass the case seed a campaign printed.
  std::vector<uint64_t> CaseSeeds;
  /// Worker threads the cases fan out over (0 = hardware concurrency,
  /// 1 = inline). Execution policy only; results are seed-deterministic.
  unsigned Jobs = 0;
  /// Shrink failing cases with the TestCaseReducer.
  bool Shrink = true;
  /// Directory for repro files of failing cases; empty = don't persist.
  std::string CorpusDir;
  GeneratorConfig Gen;
  DiffConfig Diff;
};

/// One failing (or inconclusive) case of a campaign.
struct FuzzFailure {
  unsigned CaseIndex = 0;
  uint64_t CaseSeed = 0;
  bool Inconclusive = false;
  std::string Detail;
  std::string ReproText;        ///< original failing module
  std::string ShrunkText;       ///< reduced module ("" when not shrunk)
  unsigned ShrunkInstrs = 0;
  std::string ReproPath;        ///< original repro on disk (CorpusDir set)
  std::string ShrunkPath;       ///< shrunk repro on disk (CorpusDir set)
};

struct FuzzSummary {
  unsigned Runs = 0;
  unsigned Clean = 0;
  unsigned Divergent = 0;
  unsigned Inconclusive = 0;
  /// Cases where HELIX accepted no loop at all (coverage signal).
  unsigned Untransformed = 0;
  uint64_t LoopsAttempted = 0;
  uint64_t LoopsTransformed = 0;
  std::vector<FuzzFailure> Failures;
  /// Transform pass timing aggregated over every case.
  std::vector<LoopPassTiming> PassTimings;
  /// Analysis-cache counters aggregated over every case's transform leg.
  std::vector<AnalysisCounterReport> AnalysisCounters;
};

/// Derives the generator seed of case \p Index of campaign \p Seed.
uint64_t fuzzCaseSeed(uint64_t Seed, unsigned Index);

/// Runs the campaign. Deterministic for (Options.Seed, Options.Runs,
/// generator/differential configs); Jobs only changes the schedule.
FuzzSummary runFuzzCampaign(const FuzzOptions &Options);

} // namespace helix

#endif // HELIX_FUZZ_FUZZER_H
