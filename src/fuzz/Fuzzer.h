//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz campaign driver: generate -> differential -> (on divergence)
/// shrink -> persist, fanned out over the shared ThreadPool. Per-case
/// seeds are derived from (campaign seed, case index) alone, so a
/// campaign's modules and verdicts are identical for a given seed no
/// matter how many workers run it or how the scheduler interleaves them.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_FUZZER_H
#define HELIX_FUZZ_FUZZER_H

#include "fuzz/DifferentialRunner.h"
#include "fuzz/ProgramGenerator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Runs = 100;
  /// When non-empty, run exactly these *generator* seeds (one case each);
  /// Seed/Runs are ignored. This is the replay path for a failing case:
  /// pass the case seed a campaign printed (and its variant, below).
  std::vector<uint64_t> CaseSeeds;
  /// Generator variant (index into fuzzScheduleVariants) applied to
  /// CaseSeeds replays. Coverage-guided campaigns report each failure's
  /// variant so replays reproduce the exact generator configuration.
  unsigned ReplayVariant = 0;
  /// Coverage-guided scheduling: pick each case's generator-configuration
  /// variant by a weighted draw biased toward variants that historically
  /// produced `Untransformed` cases (loops HELIX declined to parallelize —
  /// the shapes the transform's accept/reject boundary is least exercised
  /// on). Weights update at deterministic round boundaries, so campaigns
  /// stay reproducible for (Seed, Runs) regardless of Jobs.
  bool CoverageGuided = false;
  /// Cases per scheduling round (weights update between rounds).
  unsigned RoundSize = 32;
  /// Worker threads the cases fan out over (0 = hardware concurrency,
  /// 1 = inline). Execution policy only; results are seed-deterministic.
  unsigned Jobs = 0;
  /// Shrink failing cases with the TestCaseReducer.
  bool Shrink = true;
  /// Directory for repro files of failing cases; empty = don't persist.
  std::string CorpusDir;
  GeneratorConfig Gen;
  DiffConfig Diff;
};

/// One generator-configuration variant of the coverage-guided schedule.
struct FuzzVariant {
  std::string Name;
  GeneratorConfig Config;
};

/// The deterministic variant table derived from \p Base. Index 0 is Base
/// itself; the others push individual knobs toward shapes that stress the
/// transform's accept/reject boundary (deep nests, flat loops, many
/// kernels, short/long trips, heavy/no local buffers, no leaf calls).
/// Stable across runs of the same binary, so a printed variant index
/// replays the same configuration.
std::vector<FuzzVariant> fuzzScheduleVariants(const GeneratorConfig &Base);

/// The coverage-guided draw weights: one weight per variant, proportional
/// to the variant's +1-smoothed historical `Untransformed` rate given
/// per-variant case and Untransformed counts (same length, Untransformed
/// <= Cases elementwise). Every weight is >= 1, so no variant is ever
/// starved. Exposed so the bias itself is testable.
std::vector<uint64_t>
fuzzVariantWeights(const std::vector<uint64_t> &Cases,
                   const std::vector<uint64_t> &Untransformed);

/// One failing (or inconclusive) case of a campaign.
struct FuzzFailure {
  unsigned CaseIndex = 0;
  uint64_t CaseSeed = 0;
  unsigned Variant = 0; ///< generator variant the case was built with
  bool Inconclusive = false;
  /// The dynamic legs were clean but the static SyncChecker reported
  /// findings on an *uninjected* campaign — either a transform bug the
  /// oracle's schedules missed or a checker false positive; both demand a
  /// look, so the case fails the campaign.
  bool StaticAlarm = false;
  /// The divergence is a dependence-soundness violation: the transformed
  /// sequential leg witnessed a loop-carried memory dependence the static
  /// DDG never synchronized (DiffOutcome::Kind::DepUnsound).
  bool DepUnsound = false;
  std::string Detail;
  std::string ReproText;        ///< original failing module
  std::string ShrunkText;       ///< reduced module ("" when not shrunk)
  unsigned ShrunkInstrs = 0;
  std::string ReproPath;        ///< original repro on disk (CorpusDir set)
  std::string ShrunkPath;       ///< shrunk repro on disk (CorpusDir set)
};

struct FuzzSummary {
  unsigned Runs = 0;
  unsigned Clean = 0;
  unsigned Divergent = 0;
  unsigned Inconclusive = 0;
  /// Cases where HELIX accepted no loop at all (coverage signal).
  unsigned Untransformed = 0;
  uint64_t LoopsAttempted = 0;
  uint64_t LoopsTransformed = 0;

  /// Static-checker leg (runs before any dynamic execution, per case).
  uint64_t StaticLoopsChecked = 0; ///< loops the SyncChecker verified
  uint64_t StaticFindings = 0;     ///< diagnostics across all cases
  unsigned StaticFlagged = 0;      ///< cases with >= 1 static finding
  unsigned StaticConfirmed = 0;    ///< flagged cases the oracle also caught
  unsigned StaticOnly = 0;         ///< flagged cases the oracle missed
  unsigned StaticAlarms = 0;       ///< StaticOnly cases on an uninjected
                                   ///< campaign (reported as failures)
  unsigned InjectedCases = 0;      ///< cases where the injection applied
  unsigned InjectedStaticFlagged = 0; ///< of those, flagged statically

  /// Dependence-soundness audit (check/DepAudit), aggregated over every
  /// case's transformed-sequential leg. DepUnsoundCases are counted in
  /// Divergent too — this splits out the DDG-soundness class.
  uint64_t DepLoopsAudited = 0;
  uint64_t DepWitnessed = 0;        ///< witnessed cross-iteration deps
  uint64_t DepCovered = 0;          ///< of those, synchronized (sound)
  uint64_t DepUncovered = 0;        ///< of those, missed by D_data
  uint64_t DepStaticMemDeps = 0;    ///< static memory deps of audited loops
  uint64_t DepStaticUnwitnessed = 0; ///< never witnessed (precision gap)
  unsigned DepUnsoundCases = 0;     ///< cases failing with DEP-UNSOUND

  std::vector<FuzzFailure> Failures;
  /// Transform pass timing aggregated over every case.
  std::vector<LoopPassTiming> PassTimings;
  /// Analysis-cache counters aggregated over every case's transform leg.
  std::vector<AnalysisCounterReport> AnalysisCounters;

  /// Per-variant coverage of the schedule (one entry per
  /// fuzzScheduleVariants element; all cases land on variant 0 when
  /// coverage-guided scheduling is off).
  struct VariantStats {
    std::string Name;
    unsigned Cases = 0;
    unsigned Untransformed = 0;
    unsigned Divergent = 0;
  };
  std::vector<VariantStats> Variants;
};

/// Derives the generator seed of case \p Index of campaign \p Seed.
uint64_t fuzzCaseSeed(uint64_t Seed, unsigned Index);

/// Runs the campaign. Deterministic for (Options.Seed, Options.Runs,
/// generator/differential configs); Jobs only changes the schedule.
FuzzSummary runFuzzCampaign(const FuzzOptions &Options);

} // namespace helix

#endif // HELIX_FUZZ_FUZZER_H
