#include "fuzz/TestCaseReducer.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

using namespace helix;

namespace {

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::istringstream SS(Text);
  std::string Line;
  while (std::getline(SS, Line))
    Lines.push_back(Line);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

unsigned countInstrs(const Module &M) {
  unsigned N = 0;
  for (Function *F : M)
    N += F->numInstrs();
  return N;
}

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

/// An instruction line: inside a function, not a label, not structure.
bool isInstrLine(const std::string &Raw) {
  std::string S = trimmed(Raw);
  if (S.empty() || S[0] == '#' || S[0] == '}')
    return false;
  if (startsWith(S, "func ") || startsWith(S, "global "))
    return false;
  // Label lines are "name:" only.
  if (S.back() == ':' && S.find(' ') == std::string::npos)
    return false;
  return true;
}

bool isGlobalLine(const std::string &Raw) {
  return startsWith(trimmed(Raw), "global ");
}

/// Half-open [Begin, End) line spans of every function definition.
struct Span {
  size_t Begin, End;
  bool IsMain;
};
std::vector<Span> functionSpans(const std::vector<std::string> &Lines) {
  std::vector<Span> Spans;
  for (size_t I = 0; I != Lines.size(); ++I) {
    std::string S = trimmed(Lines[I]);
    if (!startsWith(S, "func "))
      continue;
    size_t End = I + 1;
    while (End != Lines.size() && trimmed(Lines[End]) != "}")
      ++End;
    if (End == Lines.size())
      break; // malformed; leave it alone
    Spans.push_back({I, End + 1, S.find("@main(") != std::string::npos});
    I = End;
  }
  return Spans;
}

/// Half-open spans of non-entry blocks (label line through the last line
/// before the next label or '}').
std::vector<Span> blockSpans(const std::vector<std::string> &Lines) {
  std::vector<Span> Spans;
  for (const Span &F : functionSpans(Lines)) {
    size_t BlockBegin = 0; ///< 0 = no droppable block open
    bool FirstLabel = true;
    for (size_t I = F.Begin + 1; I != F.End; ++I) {
      std::string S = trimmed(Lines[I]);
      bool IsLabel = !S.empty() && S.back() == ':' &&
                     S.find(' ') == std::string::npos;
      bool IsEnd = S == "}";
      if ((IsLabel || IsEnd) && BlockBegin != 0)
        Spans.push_back({BlockBegin, I, false});
      if (IsLabel) {
        // Skip the first (entry) block: removing its label would turn the
        // next block into the entry, changing semantics wholesale.
        BlockBegin = FirstLabel ? 0 : I;
        FirstLabel = false;
      }
    }
  }
  return Spans;
}

/// The reduction engine: owns the current accepted text and tries edits.
class Reducer {
public:
  Reducer(std::string Text, const ReduceOracle &Oracle, unsigned MaxAttempts)
      : Lines(splitLines(std::move(Text))), Oracle(Oracle),
        MaxAttempts(MaxAttempts) {}

  const std::vector<std::string> &lines() const { return Lines; }
  unsigned accepted() const { return Accepted; }
  bool exhausted() const { return Attempts >= MaxAttempts; }

  /// Tries the candidate line set; on success adopts it.
  bool tryLines(std::vector<std::string> Candidate) {
    if (exhausted())
      return false;
    std::string Text = joinLines(Candidate);
    ParseResult P = parseModule(Text);
    if (!P.succeeded() || !verifyModule(*P.M).empty())
      return false; // free: structurally invalid, the oracle never ran
    ++Attempts;
    if (!Oracle(*P.M))
      return false;
    Lines = std::move(Candidate);
    ++Accepted;
    return true;
  }

  bool removeSpan(size_t Begin, size_t End) {
    std::vector<std::string> C(Lines.begin(), Lines.begin() + Begin);
    C.insert(C.end(), Lines.begin() + End, Lines.end());
    return tryLines(std::move(C));
  }

  bool replaceLine(size_t I, std::string NewLine) {
    std::vector<std::string> C = Lines;
    C[I] = std::move(NewLine);
    return tryLines(std::move(C));
  }

  // --- Edit passes (each returns true if anything was accepted) ---------

  bool dropFunctions() {
    bool Any = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (const Span &S : functionSpans(Lines)) {
        if (S.IsMain)
          continue;
        if (removeSpan(S.Begin, S.End)) {
          Any = Progress = true;
          break; // spans shifted; rescan
        }
      }
    }
    return Any;
  }

  bool dropBlocks() {
    bool Any = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (const Span &S : blockSpans(Lines)) {
        if (removeSpan(S.Begin, S.End)) {
          Any = Progress = true;
          break;
        }
      }
    }
    return Any;
  }

  bool dropInstructionWindows() {
    bool Any = false;
    for (size_t Window : {8u, 4u, 2u, 1u}) {
      size_t I = 0;
      while (I < Lines.size()) {
        // Collect a run of up to Window removable lines starting at I.
        size_t End = I;
        size_t Count = 0;
        while (End < Lines.size() && Count < Window &&
               (isInstrLine(Lines[End]) || isGlobalLine(Lines[End]))) {
          ++End;
          ++Count;
        }
        if (Count == 0) {
          ++I;
          continue;
        }
        if (removeSpan(I, End))
          Any = true; // stay at I: new content shifted in
        else
          ++I;
      }
    }
    return Any;
  }

  bool collapseCondBrs() {
    bool Any = false;
    for (size_t I = 0; I != Lines.size(); ++I) {
      std::string S = trimmed(Lines[I]);
      if (!startsWith(S, "condbr "))
        continue;
      // condbr <operand>, L1, L2
      size_t C1 = S.find(',');
      if (C1 == std::string::npos)
        continue;
      size_t C2 = S.find(',', C1 + 1);
      if (C2 == std::string::npos)
        continue;
      std::string L1 = trimmed(S.substr(C1 + 1, C2 - C1 - 1));
      std::string L2 = trimmed(S.substr(C2 + 1));
      if (replaceLine(I, "  br " + L1) || replaceLine(I, "  br " + L2))
        Any = true;
    }
    return Any;
  }

  bool shrinkIntegers() {
    bool Any = false;
    for (size_t I = 0; I != Lines.size(); ++I) {
      if (!isInstrLine(Lines[I]) || isGlobalLine(Lines[I]))
        continue;
      const std::string &L = Lines[I];
      for (size_t P = 0; P < L.size(); ++P) {
        if (!std::isdigit((unsigned char)L[P]))
          continue;
        // Part of an identifier or register (r12, b3.hdr)? Skip the run.
        char Prev = P ? L[P - 1] : ' ';
        bool Signed = Prev == '-' &&
                      (P < 2 || !std::isalnum((unsigned char)L[P - 2]));
        size_t TokBegin = Signed ? P - 1 : P;
        if (!Signed && (std::isalnum((unsigned char)Prev) || Prev == '_' ||
                        Prev == '.')) {
          while (P < L.size() && std::isdigit((unsigned char)L[P]))
            ++P;
          continue;
        }
        size_t E = P;
        while (E < L.size() && std::isdigit((unsigned char)L[E]))
          ++E;
        // Float literal? Leave it alone.
        if (E < L.size() && (L[E] == '.' || L[E] == 'e' || L[E] == 'E')) {
          P = E;
          continue;
        }
        long long V = std::strtoll(L.c_str() + TokBegin, nullptr, 10);
        if (V >= -3 && V <= 3) {
          P = E;
          continue;
        }
        std::string Candidate = L.substr(0, TokBegin) +
                                std::to_string(V / 2) + L.substr(E);
        if (replaceLine(I, Candidate)) {
          Any = true;
          break; // line changed; move on to the next line
        }
        P = E;
      }
    }
    return Any;
  }

private:
  std::vector<std::string> Lines;
  const ReduceOracle &Oracle;
  unsigned MaxAttempts;
  unsigned Attempts = 0;
  unsigned Accepted = 0;
};

} // namespace

ReduceResult helix::reduceTestCase(const Module &M,
                                   const ReduceOracle &StillFails,
                                   const ReducerConfig &Config) {
  ReduceResult Out;
  Out.InstrsBefore = countInstrs(M);
  Reducer R(M.toString(), StillFails, Config.MaxAttempts);

  for (unsigned Round = 0; Round != Config.MaxRounds && !R.exhausted();
       ++Round) {
    ++Out.Rounds;
    bool Any = false;
    Any |= R.dropFunctions();
    Any |= R.dropBlocks();
    Any |= R.dropInstructionWindows();
    Any |= R.collapseCondBrs();
    Any |= R.shrinkIntegers();
    if (!Any)
      break;
  }

  Out.Text = joinLines(R.lines());
  ParseResult P = parseModule(Out.Text);
  // The engine only ever adopts parseable, verified text; a final parse
  // failure would mean the reducer itself is broken.
  if (!P.succeeded()) {
    Out.Text = M.toString();
    P = parseModule(Out.Text);
  }
  Out.M = std::move(P.M);
  Out.InstrsAfter = Out.M ? countInstrs(*Out.M) : Out.InstrsBefore;
  Out.EditsAccepted = R.accepted();
  return Out;
}
