#include "fuzz/ProgramGenerator.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"
#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace helix;

namespace {

using Op = Operand;

/// One addressable data region a kernel may touch: a module global or a
/// locally allocated (Alloca/HeapAlloc) buffer whose base lives in a
/// register. The base operand never enters the value pool — raw addresses
/// must not leak into checksums, whose values the legs compare.
struct ArrayRef {
  Operand Base;
  uint64_t Size;
};

/// Everything one kernel's emission threads through its loop levels.
struct KernelCtx {
  Function *F = nullptr;
  IRBuilder *B = nullptr;
  Rng *R = nullptr;
  /// Registers holding recently computed integer values; operand pool.
  std::vector<unsigned> Vals;
  /// Carried accumulators (register-carried dependences when updated in a
  /// loop body).
  std::vector<unsigned> Accs;
  /// The data regions this kernel may touch.
  std::vector<ArrayRef> Arrays;
  /// Straight-line helper functions callable from loop bodies.
  std::vector<Function *> Leaves;
  unsigned BlockCounter = 0;
  unsigned Depth = 0; ///< current loop depth (0 = outside loops)
};

unsigned pickVal(KernelCtx &C) {
  return C.Vals[C.R->nextBelow(C.Vals.size())];
}

void pushVal(KernelCtx &C, unsigned Reg) {
  C.Vals.push_back(Reg);
  // Keep the pool bounded and biased toward recent values.
  if (C.Vals.size() > 12)
    C.Vals.erase(C.Vals.begin());
}

std::string blockName(KernelCtx &C, const char *Tag) {
  return formatStr("b%u.%s", C.BlockCounter++, Tag);
}

/// One random integer ALU instruction over pool values; pushes the result.
void emitAluOp(KernelCtx &C) {
  IRBuilder &B = *C.B;
  unsigned A = pickVal(C);
  switch (C.R->nextBelow(8)) {
  case 0:
    pushVal(C, B.binary(Opcode::Add, Op::reg(A), Op::reg(pickVal(C))));
    break;
  case 1:
    pushVal(C, B.binary(Opcode::Sub, Op::reg(A),
                        Op::immInt(C.R->nextInRange(-64, 64))));
    break;
  case 2:
    pushVal(C, B.binary(Opcode::Mul, Op::reg(A),
                        Op::immInt(C.R->nextInRange(1, 9))));
    break;
  case 3:
    pushVal(C, B.binary(Opcode::Xor, Op::reg(A), Op::reg(pickVal(C))));
    break;
  case 4:
    pushVal(C, B.binary(Opcode::And, Op::reg(A),
                        Op::immInt(int64_t(C.R->next() & 0xFFFFFF))));
    break;
  case 5:
    pushVal(C, B.binary(Opcode::Or, Op::reg(A),
                        Op::immInt(C.R->nextInRange(0, 255))));
    break;
  case 6:
    pushVal(C, B.binary(Opcode::Shr, Op::reg(A),
                        Op::immInt(C.R->nextInRange(1, 11))));
    break;
  default: {
    // Checked division: the |1 keeps the divisor nonzero.
    unsigned D = B.binary(Opcode::Or, Op::reg(pickVal(C)), Op::immInt(1));
    pushVal(C, B.binary(C.R->nextBool(0.5) ? Opcode::Div : Opcode::Rem,
                        Op::reg(A), Op::reg(D)));
    break;
  }
  }
}

/// Floating-point chain: mask to a small int first so FPToInt never sees a
/// double outside int64 range (that conversion would be UB host-side).
void emitFpChain(KernelCtx &C) {
  IRBuilder &B = *C.B;
  unsigned V = B.binary(Opcode::And, Op::reg(pickVal(C)), Op::immInt(0xFFFFF));
  unsigned FV = B.conv(Opcode::IntToFP, Op::reg(V));
  unsigned FM = B.binary(Opcode::FMul, Op::reg(FV),
                         Op::immFloat(0.5 + C.R->nextDouble() * 3.0));
  unsigned FA = B.binary(C.R->nextBool(0.5) ? Opcode::FAdd : Opcode::FSub,
                         Op::reg(FM),
                         Op::immFloat(double(C.R->nextInRange(-99, 99))));
  if (C.R->nextBool(0.3)) {
    unsigned Cmp = B.binary(Opcode::FCmpLT, Op::reg(FA), Op::immFloat(1000.0));
    pushVal(C, Cmp);
  }
  pushVal(C, B.conv(Opcode::FPToInt, Op::reg(FA)));
}

/// a[idx & (Size-1)] load (histogram-style indirect read).
void emitIndirectLoad(KernelCtx &C) {
  if (C.Arrays.empty())
    return;
  IRBuilder &B = *C.B;
  const ArrayRef &A = C.Arrays[C.R->nextBelow(C.Arrays.size())];
  unsigned Idx = B.binary(Opcode::And, Op::reg(pickVal(C)),
                          Op::immInt(int64_t(A.Size - 1)));
  unsigned Addr = B.add(A.Base, Op::reg(Idx));
  pushVal(C, B.load(Op::reg(Addr)));
}

/// h[idx & (Size-1)] += delta: the unprovable carried memory dependence of
/// the histogram idiom.
void emitIndirectUpdate(KernelCtx &C) {
  if (C.Arrays.empty())
    return;
  IRBuilder &B = *C.B;
  const ArrayRef &A = C.Arrays[C.R->nextBelow(C.Arrays.size())];
  unsigned Idx = B.binary(Opcode::And, Op::reg(pickVal(C)),
                          Op::immInt(int64_t(A.Size - 1)));
  unsigned Addr = B.add(A.Base, Op::reg(Idx));
  unsigned Old = B.load(Op::reg(Addr));
  unsigned New = B.binary(C.R->nextBool(0.7) ? Opcode::Add : Opcode::Xor,
                          Op::reg(Old),
                          C.R->nextBool(0.5) ? Op::immInt(1)
                                             : Op::reg(pickVal(C)));
  B.store(Op::reg(New), Op::reg(Addr));
}

/// Register-carried reduction on a random accumulator.
void emitReduction(KernelCtx &C) {
  IRBuilder &B = *C.B;
  unsigned Acc = C.Accs[C.R->nextBelow(C.Accs.size())];
  Opcode Ops[] = {Opcode::Add, Opcode::Xor, Opcode::Sub};
  B.binaryTo(Acc, Ops[C.R->nextBelow(3)], Op::reg(Acc),
             Op::reg(pickVal(C)));
}

/// Call into a straight-line helper from the loop body.
void emitCall(KernelCtx &C) {
  if (C.Leaves.empty())
    return;
  IRBuilder &B = *C.B;
  Function *Leaf = C.Leaves[C.R->nextBelow(C.Leaves.size())];
  std::vector<Op> Args;
  for (unsigned K = 0; K != Leaf->numParams(); ++K)
    Args.push_back(Op::reg(pickVal(C)));
  pushVal(C, B.call(Leaf, Args));
}

/// if ((v & m) == c) acc op= t — the Figure-2 conditional carried update.
void emitBranchy(KernelCtx &C) {
  IRBuilder &B = *C.B;
  Function *F = C.F;
  BasicBlock *Then = F->createBlock(blockName(C, "then"));
  BasicBlock *Cont = F->createBlock(blockName(C, "cont"));
  unsigned Low = B.binary(Opcode::And, Op::reg(pickVal(C)),
                          Op::immInt(C.R->nextInRange(1, 7)));
  unsigned Bit = B.cmpEQ(Op::reg(Low), Op::immInt(C.R->nextInRange(0, 3)));
  B.condBr(Op::reg(Bit), Then, Cont);
  B.setInsertPoint(Then);
  unsigned Acc = C.Accs[C.R->nextBelow(C.Accs.size())];
  B.binaryTo(Acc, C.R->nextBool(0.5) ? Opcode::Add : Opcode::Xor,
             Op::reg(Acc), Op::reg(pickVal(C)));
  B.br(Cont);
  B.setInsertPoint(Cont);
}

struct LoopShape {
  bool Stencil = false;   ///< emit a distance-1 carried a[i+1] = f(a[i], .)
  bool DoAllStore = false;///< emit a disjoint a[i] = t store
  bool MultiExit = false; ///< emit a conditional break to the loop exit
};

void emitLoopNest(KernelCtx &C, const GeneratorConfig &Cfg,
                  unsigned DepthBudget);

/// One randomly composed counted loop: `for i in [0, Trip)` with a body
/// drawn from the feature menu, optionally multi-exit, optionally wrapping
/// a nested loop.
void emitCountedLoop(KernelCtx &C, const GeneratorConfig &Cfg,
                     unsigned DepthBudget) {
  IRBuilder &B = *C.B;
  Function *F = C.F;
  ++C.Depth;
  // Outer loops get the full trip range; inner ones stay small so the
  // dynamic instruction count of a nest stays bounded.
  unsigned Trip =
      C.Depth == 1
          ? unsigned(C.R->nextInRange(std::max(2u, Cfg.MinTrip), Cfg.MaxTrip))
          : unsigned(C.R->nextInRange(2, 7));

  BasicBlock *Hdr = F->createBlock(blockName(C, "hdr"));
  BasicBlock *Body = F->createBlock(blockName(C, "body"));
  BasicBlock *Exit = F->createBlock(blockName(C, "exit"));

  LoopShape Shape;
  Shape.Stencil = C.R->nextBool(0.35) && !C.Arrays.empty();
  Shape.DoAllStore = C.R->nextBool(0.45) && !C.Arrays.empty();
  Shape.MultiExit = C.R->nextBool(0.25);

  unsigned I = B.mov(Op::immInt(0));
  B.br(Hdr);
  B.setInsertPoint(Hdr);
  unsigned Cmp = B.cmpLT(Op::reg(I), Op::immInt(Trip));
  B.condBr(Op::reg(Cmp), Body, Exit);
  B.setInsertPoint(Body);
  pushVal(C, I);

  // The conditional break makes the loop multi-exit (Step 1 must cope or
  // conservatively refuse; either way the oracle checks the result).
  if (Shape.MultiExit) {
    BasicBlock *Brk = F->createBlock(blockName(C, "brk"));
    BasicBlock *Cont = F->createBlock(blockName(C, "cont"));
    unsigned T = B.binary(Opcode::And, Op::reg(pickVal(C)), Op::immInt(63));
    unsigned Hit = B.cmpEQ(Op::reg(T), Op::immInt(C.R->nextInRange(0, 60)));
    B.condBr(Op::reg(Hit), Brk, Cont);
    B.setInsertPoint(Brk);
    unsigned Acc = C.Accs[C.R->nextBelow(C.Accs.size())];
    B.binaryTo(Acc, Opcode::Xor, Op::reg(Acc), Op::reg(I));
    B.br(Exit);
    B.setInsertPoint(Cont);
  }

  // Straight-line feature mix.
  unsigned Features = unsigned(C.R->nextInRange(2, 5));
  for (unsigned K = 0; K != Features; ++K) {
    switch (C.R->nextBelow(8)) {
    case 0:
    case 1:
      emitAluOp(C);
      break;
    case 2:
      emitFpChain(C);
      break;
    case 3:
      emitIndirectLoad(C);
      break;
    case 4:
      emitIndirectUpdate(C);
      break;
    case 5:
      emitReduction(C);
      break;
    case 6:
      emitCall(C);
      break;
    default:
      emitBranchy(C);
      break;
    }
  }

  if (Shape.Stencil) {
    // a[i+1] = f(a[i], t): needs Trip + 1 <= Size, which MaxTrip and the
    // minimum array size of 32 guarantee.
    const ArrayRef &A = C.Arrays[C.R->nextBelow(C.Arrays.size())];
    unsigned I1 = B.add(Op::reg(I), Op::immInt(1));
    unsigned PrevAddr = B.add(A.Base, Op::reg(I));
    unsigned CurAddr = B.add(A.Base, Op::reg(I1));
    unsigned Prev = B.load(Op::reg(PrevAddr));
    unsigned Mixed = B.binary(Opcode::Xor, Op::reg(Prev), Op::reg(pickVal(C)));
    unsigned Scaled = B.binary(Opcode::Shr, Op::reg(Mixed), Op::immInt(1));
    B.store(Op::reg(Scaled), Op::reg(CurAddr));
  }

  // Nested loop (recursion); the builder continues in the inner exit.
  if (DepthBudget > 1 && C.R->nextBool(0.5))
    emitLoopNest(C, Cfg, DepthBudget - 1);

  if (Shape.DoAllStore) {
    const ArrayRef &A = C.Arrays[C.R->nextBelow(C.Arrays.size())];
    unsigned Addr = B.add(A.Base, Op::reg(I));
    B.store(Op::reg(pickVal(C)), Op::reg(Addr));
  }

  B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
  B.br(Hdr);
  B.setInsertPoint(Exit);
  pushVal(C, I); // exit value of the induction register
  --C.Depth;
}

/// Relocatable pointer-chase loop: offsets within the list global, slot 0
/// holding the head offset and each node holding [next-offset, value].
void emitChaseLoop(KernelCtx &C, unsigned ListGlobal) {
  IRBuilder &B = *C.B;
  Function *F = C.F;
  BasicBlock *Hdr = F->createBlock(blockName(C, "chdr"));
  BasicBlock *Body = F->createBlock(blockName(C, "cbody"));
  BasicBlock *Exit = F->createBlock(blockName(C, "cexit"));

  unsigned Offset = B.load(Op::global(ListGlobal));
  B.br(Hdr);
  B.setInsertPoint(Hdr);
  unsigned Cmp = B.binary(Opcode::CmpNE, Op::reg(Offset), Op::immInt(0));
  B.condBr(Op::reg(Cmp), Body, Exit);
  B.setInsertPoint(Body);
  unsigned NodeAddr = B.add(Op::global(ListGlobal), Op::reg(Offset));
  unsigned VAddr = B.add(Op::reg(NodeAddr), Op::immInt(1));
  unsigned V = B.load(Op::reg(VAddr));
  pushVal(C, V);
  emitAluOp(C);
  emitReduction(C);
  B.loadTo(Offset, Op::reg(NodeAddr)); // offset = node->next
  B.br(Hdr);
  B.setInsertPoint(Exit);
}

void emitLoopNest(KernelCtx &C, const GeneratorConfig &Cfg,
                  unsigned DepthBudget) {
  emitCountedLoop(C, Cfg, DepthBudget);
}

/// Straight-line helper function: a short ALU/FP mix over its parameters.
/// With probability \p AllocaProb (drawn from the dedicated buffer stream
/// \p R2) the leaf spills its parameters through an Alloca-backed scratch
/// buffer and reloads one of them — a Stack abstract location the
/// points-to analysis must model, with strictly call-local traffic so the
/// thread-private stacks of the runtime cannot diverge.
Function *buildLeaf(Module &M, Rng &R, Rng &R2, double AllocaProb,
                    unsigned Idx) {
  unsigned NumParams = unsigned(R.nextInRange(1, 2));
  Function *F = M.createFunction(formatStr("leaf%u", Idx), NumParams);
  IRBuilder B(F);
  B.setInsertPoint(F->createBlock("entry"));
  KernelCtx C;
  C.F = F;
  C.B = &B;
  C.R = &R;
  for (unsigned K = 0; K != NumParams; ++K)
    C.Vals.push_back(K);
  if (R2.nextBool(AllocaProb)) {
    int64_t Slots = R2.nextInRange(2, 8);
    unsigned Buf = B.allocaSlots(Slots);
    for (unsigned K = 0; K != NumParams; ++K) {
      unsigned Addr = B.add(Op::reg(Buf), Op::immInt(int64_t(K) % Slots));
      B.store(Op::reg(K), Op::reg(Addr));
    }
    unsigned Back = B.add(
        Op::reg(Buf), Op::immInt(R2.nextInRange(0, int64_t(NumParams) - 1)));
    pushVal(C, B.load(Op::reg(Back)));
  }
  unsigned Ops = unsigned(R.nextInRange(2, 6));
  for (unsigned K = 0; K != Ops; ++K) {
    if (R.nextBool(0.2))
      emitFpChain(C);
    else
      emitAluOp(C);
  }
  B.ret(Op::reg(C.Vals.back()));
  return F;
}

} // namespace

std::unique_ptr<Module> helix::generateProgram(uint64_t Seed,
                                               const GeneratorConfig &Raw) {
  // Sanitize the caller's bounds: the smallest array has 32 slots and the
  // stencil writes a[i+1], so trip counts above 30 would index out of
  // bounds — the program would trap identically in every leg and the
  // "clean" verdict would be vacuous.
  GeneratorConfig Cfg = Raw;
  Cfg.MaxTrip = std::min(std::max(Cfg.MaxTrip, 2u), 30u);
  Cfg.MinTrip = std::min(std::max(Cfg.MinTrip, 2u), Cfg.MaxTrip);

  Rng R(Seed ^ 0xC0FFEE123456789Bull);
  // Dedicated stream for the Alloca/HeapAlloc scratch-buffer decisions:
  // keeping them off the main stream leaves the rest of a seed's draw
  // sequence (loop shapes, feature mix, trip counts) unperturbed.
  Rng R2(Seed ^ 0xA110CA7E4DA7A5ull);
  auto M = std::make_unique<Module>();

  // --- Globals: power-of-two arrays with static random contents, plus an
  // --- optional statically-threaded offset list for pointer chasing. -----
  unsigned NumArrays = unsigned(R.nextInRange(1, 3));
  std::vector<ArrayRef> Arrays;
  for (unsigned K = 0; K != NumArrays; ++K) {
    uint64_t Size = R.nextBool(0.5) ? 32 : 64;
    unsigned G = M->createGlobal(formatStr("a%u", K), Size);
    GlobalVariable &GV = M->global(G);
    for (uint64_t S = 0; S != Size; ++S)
      GV.Init.push_back(int64_t(R.next() & 0xFFFF));
    Arrays.push_back({Op::global(G), Size});
  }
  int ListGlobal = -1;
  if (R.nextBool(0.4)) {
    uint64_t Nodes = uint64_t(R.nextInRange(3, 14));
    unsigned G = M->createGlobal("list", 2 * Nodes + 2);
    GlobalVariable &GV = M->global(G);
    GV.Init.assign(2 * Nodes + 2, 0);
    GV.Init[0] = 1; // head offset: first node
    for (uint64_t N = 0; N != Nodes; ++N) {
      GV.Init[1 + 2 * N] = N + 1 == Nodes ? 0 : int64_t(1 + 2 * (N + 1));
      GV.Init[2 + 2 * N] = int64_t(R.next() & 0x7FFF);
    }
    ListGlobal = int(G);
  }

  // --- Leaf helpers. -----------------------------------------------------
  std::vector<Function *> Leaves;
  unsigned NumLeaves = unsigned(R.nextBelow(Cfg.MaxLeafFuncs + 1));
  for (unsigned K = 0; K != NumLeaves; ++K)
    Leaves.push_back(buildLeaf(*M, R, R2, Cfg.LocalBufferProb, K));

  // --- Kernels: one loop nest each. --------------------------------------
  unsigned NumKernels =
      unsigned(R.nextInRange(std::max(1u, Cfg.MinKernels), Cfg.MaxKernels));
  std::vector<Function *> Kernels;
  for (unsigned K = 0; K != NumKernels; ++K) {
    Function *F = M->createFunction(formatStr("kernel%u", K), 1);
    IRBuilder B(F);
    B.setInsertPoint(F->createBlock("entry"));
    KernelCtx C;
    C.F = F;
    C.B = &B;
    C.R = &R;
    C.Arrays = Arrays;
    C.Leaves = Leaves;
    C.Vals.push_back(0); // the parameter
    unsigned NumAccs = unsigned(R.nextInRange(1, 3));
    for (unsigned A = 0; A != NumAccs; ++A)
      C.Accs.push_back(
          B.mov(A == 0 ? Op::reg(0)
                       : Op::immInt(int64_t(R.next() & 0xFFFFFF))));

    // HeapAlloc-backed scratch buffer: allocated once per invocation in
    // the kernel entry (outside every loop, so allocation order stays
    // deterministic across the threaded legs), seeded with a few stores,
    // then addressable by the loop bodies exactly like a global. Heap
    // slots live in the shared arena, so workers of a parallelized loop
    // see each other's writes — unlike Alloca, which is thread-private
    // in the runtime and therefore confined to leaf helpers.
    if (R2.nextBool(Cfg.LocalBufferProb)) {
      uint64_t Size = R2.nextBool(0.5) ? 32 : 64;
      unsigned Base = B.heapAlloc(Op::immInt(int64_t(Size)));
      for (unsigned S = 0; S != 4; ++S) {
        unsigned Addr =
            B.add(Op::reg(Base), Op::immInt(int64_t(S * (Size / 4))));
        B.store(Op::immInt(int64_t(R2.next() & 0xFFFF)), Op::reg(Addr));
      }
      C.Arrays.push_back({Op::reg(Base), Size});
    }

    unsigned Depth =
        unsigned(R.nextInRange(1, int64_t(std::max(1u, Cfg.MaxLoopDepth))));
    if (ListGlobal >= 0 && R.nextBool(0.35))
      emitChaseLoop(C, unsigned(ListGlobal));
    else
      emitLoopNest(C, Cfg, Depth);

    // Checksum: accumulators, last pool value, and one array slot.
    unsigned Sum = C.Accs[0];
    for (unsigned A = 1; A < C.Accs.size(); ++A)
      Sum = B.add(Op::reg(Sum), Op::reg(C.Accs[A]));
    Sum = B.binary(Opcode::Xor, Op::reg(Sum), Op::reg(C.Vals.back()));
    if (!Arrays.empty()) {
      const ArrayRef &A = Arrays[R.nextBelow(Arrays.size())];
      unsigned Addr =
          B.add(A.Base, Op::immInt(R.nextInRange(0, int64_t(A.Size) - 1)));
      unsigned V = B.load(Op::reg(Addr));
      Sum = B.add(Op::reg(Sum), Op::reg(V));
    }
    B.ret(Op::reg(Sum));
    Kernels.push_back(F);
  }

  // --- main: repeat loop over the kernels, then fold a few array reads. --
  {
    Function *F = M->createFunction("main", 0);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Hdr = F->createBlock("mhdr");
    BasicBlock *Body = F->createBlock("mbody");
    BasicBlock *Exit = F->createBlock("mexit");
    B.setInsertPoint(Entry);
    unsigned Repeat =
        unsigned(R.nextInRange(1, int64_t(std::max(1u, Cfg.MaxMainRepeat))));
    unsigned Rr = B.mov(Op::immInt(0));
    unsigned Sum = B.mov(Op::immInt(int64_t(R.next() & 0xFFFF)));
    B.br(Hdr);
    B.setInsertPoint(Hdr);
    unsigned Cmp = B.cmpLT(Op::reg(Rr), Op::immInt(Repeat));
    B.condBr(Op::reg(Cmp), Body, Exit);
    B.setInsertPoint(Body);
    unsigned Mix = B.add(Op::reg(Sum), Op::reg(Rr));
    for (Function *K : Kernels) {
      unsigned V = B.call(K, {Op::reg(Mix)});
      B.binaryTo(Sum, Opcode::Add, Op::reg(Sum), Op::reg(V));
    }
    B.binaryTo(Rr, Opcode::Add, Op::reg(Rr), Op::immInt(1));
    B.br(Hdr);
    B.setInsertPoint(Exit);
    for (const ArrayRef &A : Arrays) {
      unsigned Addr =
          B.add(A.Base, Op::immInt(R.nextInRange(0, int64_t(A.Size) - 1)));
      unsigned V = B.load(Op::reg(Addr));
      B.binaryTo(Sum, Opcode::Xor, Op::reg(Sum), Op::reg(V));
    }
    unsigned Final =
        B.binary(Opcode::And, Op::reg(Sum), Op::immInt(0x3FFFFFFFFFFFll));
    B.ret(Op::reg(Final));
  }

  std::string Err = verifyModule(*M);
  if (!Err.empty())
    reportFatalError(
        ("generated program failed verification: " + Err).c_str());
  return M;
}
