//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle of the fuzzing subsystem. One module is
/// executed three independent ways:
///
///   1. sequential:   the plain Interpreter on an untouched clone;
///   2. transformed:  every top-level loop HELIX can parallelize is
///                    transformed, then the module runs *sequentially*
///                    again — exactly the Step-9 claim that sync ops are
///                    no-ops in single-threaded execution;
///   3. threaded:     the transformed module under runThreaded at several
///                    thread counts — true concurrency on std::threads.
///
/// Any checksum or trap divergence between the three is a bug in the
/// transform or in one of the execution engines. A cheap simulator sanity
/// check rides along: the CMP timing simulation of the transformed program
/// must not exceed its traced sequential time by more than a generous
/// slack (catching pathological blow-ups and accounting bugs, not mere
/// unprofitability).
///
/// Bug injection deliberately breaks the transformed module so tests (and
/// `helix-fuzz --inject-bug`) can prove the oracle and the reducer work.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_DIFFERENTIALRUNNER_H
#define HELIX_FUZZ_DIFFERENTIALRUNNER_H

#include "helix/LoopPasses.h"
#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

/// Deliberate, deterministic corruptions of the transformed module.
enum class BugInjection {
  None,
  /// Flips the first commutative ALU op in a parallelized loop body
  /// (Add<->Sub). Breaks sequential equivalence deterministically; the
  /// transformed-sequential leg catches it.
  FlipFirstBodyOp,
  /// Turns the Waits of the first sequential segment into Nops. Sequential
  /// legs still agree (Wait is a no-op there); only true concurrency can
  /// expose the lost synchronization.
  DropFirstSegmentWaits,
};

struct DiffConfig {
  /// Worker counts for the threaded leg (paper Figure 9: 2/4/6 cores).
  std::vector<unsigned> ThreadCounts = {2, 4, 6};
  /// Interpreter budget of the sequential leg; the transformed and
  /// threaded legs get four times this (sync ops add instructions).
  uint64_t MaxInstructions = 20ull * 1000 * 1000;
  /// Sim sanity: simulated ParallelCycles <= traced seq cycles *
  /// SimSlackFactor + SimSlackCycles. Generous by design — loops are
  /// transformed without profitability selection here, so honest
  /// slowdowns (serial chains paying per-signal latency) are expected;
  /// only pathological blow-ups should trip it.
  double SimSlackFactor = 16.0;
  uint64_t SimSlackCycles = 200 * 1000;
  unsigned SimCores = 6;
  /// Transform @main's own loops too (Step-9 nesting through calls).
  bool TransformMainLoops = true;
  /// Audit the static dependence graph against the cross-iteration memory
  /// dependences the transformed-sequential leg actually exhibits
  /// (check/DepAudit). An uncovered witness is a DEP-UNSOUND divergence —
  /// reported before any threaded leg runs, since a racing schedule may
  /// mask it dynamically.
  bool AuditDeps = true;
  HelixOptions Helix;
  BugInjection Inject = BugInjection::None;
};

/// What one differential execution observed.
struct DiffOutcome {
  /// Checksum/trap mismatch between the legs, or a sim-sanity violation.
  bool Divergence = false;
  /// Which leg diverged. Shrinking uses this to rerun only the legs that
  /// matter (a sequential-leg divergence needs no threaded runs).
  enum class Leg { None, TransformedSeq, DepAudit, Threaded, Sim };
  Leg DivergentLeg = Leg::None;
  /// How it diverged. Shrinking preserves the kind, so a checksum
  /// mismatch cannot degrade into, say, an unrelated endless loop.
  enum class Kind { None, Checksum, Trap, Hang, SimBlowup, DepUnsound };
  Kind DivergentKind = Kind::None;
  /// Human-readable description of the first divergence (empty if clean).
  std::string Detail;
  /// The run could not judge equivalence (e.g. the sequential leg blew
  /// the instruction budget). Not a divergence; the fuzzer counts these
  /// separately.
  bool Inconclusive = false;

  unsigned LoopsTransformed = 0; ///< parallelizeLoop successes
  unsigned LoopsAttempted = 0;   ///< top-level loops offered to HELIX
  bool InjectionApplied = false; ///< requested corruption found a target

  /// Pre-execution leg: SyncChecker findings on the transformed (and
  /// possibly bug-injected) module, before any dynamic leg runs. A static
  /// finding the dynamic oracle confirms is corroboration; one the oracle
  /// misses is the checker's value-add — the campaign counts both.
  unsigned StaticFindings = 0;
  unsigned StaticLoopsChecked = 0;
  std::vector<std::string> StaticDiags; ///< rendered findings, in order

  /// Dependence-soundness audit of the transformed-sequential leg
  /// (check/DepAudit): witnessed cross-iteration memory dependences
  /// checked against the synchronized D_data. Uncovered > 0 is a
  /// DEP-UNSOUND divergence; StaticUnwitnessed measures precision only.
  unsigned DepLoopsAudited = 0;
  unsigned DepWitnessed = 0;
  unsigned DepCovered = 0;
  unsigned DepUncovered = 0;
  unsigned DepStaticMemDeps = 0;
  unsigned DepStaticUnwitnessed = 0;
  std::vector<std::string> DepDiags; ///< rendered uncovered witnesses

  bool SeqOk = false;
  int64_t SeqChecksum = 0;
  uint64_t SeqCycles = 0;
  uint64_t SeqInstructions = 0;
  uint64_t SimParCycles = 0;

  /// Per-pass wall time of the HELIX transforms this run performed,
  /// aggregated over loops (LoopPassManager instrumentation).
  std::vector<LoopPassTiming> PassTimings;

  /// Analysis-cache counters of the transform leg's AnalysisManager
  /// (build/hit/invalidate per analysis). The campaign driver aggregates
  /// them so preservation regressions surface in `helix-fuzz` output.
  std::vector<AnalysisCounterReport> AnalysisCounters;
};

/// Runs the three-way differential on \p M. The module itself is never
/// mutated (all legs run on clones).
DiffOutcome runDifferential(const Module &M, const DiffConfig &Config = {});

} // namespace helix

#endif // HELIX_FUZZ_DIFFERENTIALRUNNER_H
