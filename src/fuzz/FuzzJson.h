//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable form of a fuzz campaign's FuzzSummary — what
/// `helix-fuzz --json FILE` writes alongside the human text. One
/// deterministic JSON object: verdict counts, the Static* checker
/// counters, pass timings, analysis counters, per-variant schedule stats
/// and one entry per failure (repro paths included, module text omitted —
/// the corpus dir owns the bytes).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_FUZZ_FUZZJSON_H
#define HELIX_FUZZ_FUZZJSON_H

#include "fuzz/Fuzzer.h"
#include "support/Json.h"

namespace helix {

Json fuzzSummaryToJson(const FuzzSummary &S);

} // namespace helix

#endif // HELIX_FUZZ_FUZZJSON_H
