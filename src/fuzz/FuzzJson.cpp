#include "fuzz/FuzzJson.h"

using namespace helix;

namespace {
Json u64(uint64_t V) { return Json::integer(int64_t(V)); }
} // namespace

Json helix::fuzzSummaryToJson(const FuzzSummary &S) {
  Json O = Json::object();
  O.set("runs", u64(S.Runs));
  O.set("clean", u64(S.Clean));
  O.set("divergent", u64(S.Divergent));
  O.set("inconclusive", u64(S.Inconclusive));
  O.set("untransformed", u64(S.Untransformed));
  O.set("loops_attempted", u64(S.LoopsAttempted));
  O.set("loops_transformed", u64(S.LoopsTransformed));

  Json St = Json::object();
  St.set("loops_checked", u64(S.StaticLoopsChecked));
  St.set("findings", u64(S.StaticFindings));
  St.set("flagged", u64(S.StaticFlagged));
  St.set("confirmed", u64(S.StaticConfirmed));
  St.set("static_only", u64(S.StaticOnly));
  St.set("alarms", u64(S.StaticAlarms));
  St.set("injected_cases", u64(S.InjectedCases));
  St.set("injected_flagged", u64(S.InjectedStaticFlagged));
  O.set("static_check", std::move(St));

  Json Dep = Json::object();
  Dep.set("loops_audited", u64(S.DepLoopsAudited));
  Dep.set("witnessed", u64(S.DepWitnessed));
  Dep.set("covered", u64(S.DepCovered));
  Dep.set("uncovered", u64(S.DepUncovered));
  Dep.set("static_mem_deps", u64(S.DepStaticMemDeps));
  Dep.set("static_unwitnessed", u64(S.DepStaticUnwitnessed));
  Dep.set("unsound_cases", u64(S.DepUnsoundCases));
  O.set("dep_audit", std::move(Dep));

  Json Timings = Json::array();
  for (const LoopPassTiming &T : S.PassTimings) {
    Json E = Json::object();
    E.set("pass", Json::str(T.Pass));
    E.set("millis", Json::number(T.Millis));
    E.set("invocations", u64(T.Invocations));
    Timings.push(std::move(E));
  }
  O.set("pass_timings", std::move(Timings));

  Json Counters = Json::array();
  for (const AnalysisCounterReport &C : S.AnalysisCounters) {
    Json E = Json::object();
    E.set("analysis", Json::str(C.Analysis));
    E.set("built", u64(C.Built));
    E.set("hits", u64(C.Hits));
    E.set("invalidated", u64(C.Invalidated));
    Counters.push(std::move(E));
  }
  O.set("analysis_counters", std::move(Counters));

  Json Variants = Json::array();
  for (const FuzzSummary::VariantStats &V : S.Variants) {
    Json E = Json::object();
    E.set("name", Json::str(V.Name));
    E.set("cases", u64(V.Cases));
    E.set("untransformed", u64(V.Untransformed));
    E.set("divergent", u64(V.Divergent));
    Variants.push(std::move(E));
  }
  O.set("variants", std::move(Variants));

  Json Failures = Json::array();
  for (const FuzzFailure &F : S.Failures) {
    Json E = Json::object();
    E.set("case_index", u64(F.CaseIndex));
    E.set("case_seed", u64(F.CaseSeed));
    E.set("variant", u64(F.Variant));
    E.set("kind", Json::str(F.Inconclusive  ? "inconclusive"
                            : F.StaticAlarm ? "static-alarm"
                            : F.DepUnsound  ? "dep-unsound"
                                            : "divergence"));
    E.set("detail", Json::str(F.Detail));
    if (!F.ReproPath.empty())
      E.set("repro", Json::str(F.ReproPath));
    if (!F.ShrunkPath.empty())
      E.set("shrunk", Json::str(F.ShrunkPath));
    if (F.ShrunkInstrs)
      E.set("shrunk_instrs", u64(F.ShrunkInstrs));
    Failures.push(std::move(E));
  }
  O.set("failures", std::move(Failures));
  return O;
}
