//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic-witness soundness audit for the HELIX dependence graph. The
/// static DDG (analysis/DataDependence + analysis/ValueRange) *prunes*
/// pairs it proves independent; every pruning decision is a soundness
/// bet. This audit collects the ground truth on the side: while the
/// transformed module runs its sequential leg, a DepWitnessObserver
/// records the cross-iteration memory dependences that *actually
/// happened* (last-writer / last-reader tables keyed on address), and
/// auditDependences then asserts that every witnessed loop-carried
/// dependence is covered by some ViaMemory dependence the transform
/// synchronized. An uncovered witness is a DDG soundness bug — the
/// parallel execution could race on that address pair.
///
/// The converse direction is reported as precision, not error: static
/// memory dependences never witnessed at runtime are the cost of
/// conservatism (they bought a sequential segment a sharper analysis
/// could have avoided).
///
/// Scope and exclusions (all make the audit *weaker*, never unsound —
/// skipping an access can only lose witnesses, not invent them):
///   - Only the outermost active parallelized loop is audited at any
///     moment, mirroring TraceCollector (HELIX Step 9 runs one loop in
///     parallel at a time; dynamically nested invocations execute
///     sequentially inside an iteration).
///   - Boundary-variable slots (the loop's StorageGlobal) are excluded:
///     those loads/stores materialize *register* dependences the
///     transform synchronizes separately (ViaMemory = false).
///   - Stack addresses touched by frames deeper than the loop's are
///     excluded: callee alloca regions are freed on return and reused by
///     the next call, so equal addresses across iterations are usually
///     different (dead) objects — and iteration threads have private
///     stacks in the threaded runtime anyway. Loop-frame stack accesses
///     (live across iterations by construction) are kept.
///   - Accesses inside callee frames are attributed to the loop-level
///     Call instruction currently executing — the same endpoint the
///     static analysis uses for callee effects.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_CHECK_DEPAUDIT_H
#define HELIX_CHECK_DEPAUDIT_H

#include "exec/ExecEngine.h"
#include "helix/ParallelLoopInfo.h"

#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace helix {

/// One witnessed cross-iteration memory dependence: \p Src executed in an
/// earlier iteration than \p Dst and both touched \p Addr (with at least
/// one writing). Deduplicated per (Src, Dst, Kind); the recorded
/// address/iterations are those of the first witness.
struct DepWitness {
  const Instruction *Src = nullptr;
  const Instruction *Dst = nullptr;
  DepKind Kind = DepKind::RAW; ///< RAW: Src wrote, Dst read. WAR: Src
                               ///< read, Dst wrote. WAW: both wrote.
  uint64_t Addr = 0;
  uint64_t SrcIter = 0;
  uint64_t DstIter = 0;
};

/// Everything witnessed for one parallelized loop across the run.
struct LoopWitnesses {
  const ParallelLoopInfo *PLI = nullptr;
  /// First-occurrence order — deterministic because the sequential leg is.
  std::vector<DepWitness> Witnesses;
  uint64_t Invocations = 0;
  uint64_t AccessesRecorded = 0;
  /// Accesses the audit declined to track (deeper-frame stack addresses,
  /// loads whose destination clobbered their own address register).
  uint64_t AccessesSkipped = 0;
};

/// ExecObserver recording actual cross-iteration memory dependences of a
/// set of parallelized loops during one sequential run. Attach to the
/// transformed-sequential leg (chain with the TraceCollector through
/// FanoutObserver — the interpreter holds a single observer slot).
class DepWitnessObserver : public ExecObserver {
public:
  explicit DepWitnessObserver(
      const std::vector<const ParallelLoopInfo *> &Loops);

  void onInstruction(const Instruction *I, unsigned Cycles,
                     ExecState &State) override;
  void onEdge(const BasicBlock *From, const BasicBlock *To,
              ExecState &State) override;

  const std::vector<LoopWitnesses> &witnesses() const { return Loops; }

private:
  void recordAccess(const Instruction *Endpoint, uint64_t Addr, bool IsWrite);
  void endInvocation();

  std::vector<LoopWitnesses> Loops;

  // Active invocation state (mirrors TraceCollector's state machine).
  int Active = -1; ///< index into Loops, or -1
  unsigned ActiveDepth = 0;
  uint64_t CurIter = 0;
  /// Loop-level Call currently executing; deeper-frame accesses attribute
  /// here. Cleared by the next loop-level instruction or edge.
  const Instruction *CurCall = nullptr;
  uint64_t StorageBase = 0, StorageEnd = 0;

  struct Access {
    uint64_t Iter = 0;
    const Instruction *I = nullptr;
  };
  /// Per-address last access tables of the active invocation.
  std::unordered_map<uint64_t, Access> LastWrite, LastRead;
  /// Membership-only dedupe of witnessed (Src, Dst, Kind) triples; never
  /// iterated, so pointer keys cannot perturb output order.
  std::set<std::tuple<const Instruction *, const Instruction *, DepKind>>
      SeenPairs;
};

/// Verdict of one audit pass over the witnesses of a run.
struct DepAuditResult {
  unsigned LoopsAudited = 0; ///< loops with at least one invocation
  uint64_t InvocationsSeen = 0;
  unsigned WitnessedDeps = 0; ///< distinct witnessed endpoint pairs
  unsigned CoveredDeps = 0;   ///< witnessed and synchronized — sound
  unsigned UncoveredDeps = 0; ///< witnessed but NOT in D_data — unsound
  unsigned StaticMemDeps = 0; ///< ViaMemory deps of the audited loops
  /// Static memory deps no witness ever hit: the precision gap (each is a
  /// sequential segment a sharper DDG could have avoided).
  unsigned StaticUnwitnessed = 0;
  /// Rendered uncovered witnesses, in witness order.
  std::vector<std::string> Diags;

  bool sound() const { return UncoveredDeps == 0; }
};

/// Audits every loop's witnesses against its synchronized dependence set.
DepAuditResult auditDependences(const DepWitnessObserver &Obs);

} // namespace helix

#endif // HELIX_CHECK_DEPAUDIT_H
