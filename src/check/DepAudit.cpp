#include "check/DepAudit.h"

#include "ir/Module.h"
#include "support/Format.h"

#include <algorithm>

using namespace helix;

DepWitnessObserver::DepWitnessObserver(
    const std::vector<const ParallelLoopInfo *> &PLIs) {
  for (const ParallelLoopInfo *PLI : PLIs) {
    LoopWitnesses LW;
    LW.PLI = PLI;
    Loops.push_back(std::move(LW));
  }
}

void DepWitnessObserver::endInvocation() {
  Active = -1;
  CurCall = nullptr;
  LastWrite.clear();
  LastRead.clear();
}

void DepWitnessObserver::recordAccess(const Instruction *Endpoint,
                                      uint64_t Addr, bool IsWrite) {
  // Boundary-variable slots carry *register* dependences (ViaMemory =
  // false), synchronized through their own segments — not D_data ground
  // truth.
  if (StorageBase && Addr >= StorageBase && Addr < StorageEnd)
    return;
  LoopWitnesses &LW = Loops[Active];
  ++LW.AccessesRecorded;

  auto Witness = [&](const Access &Prev, DepKind Kind) {
    if (Prev.Iter == CurIter)
      return; // intra-iteration: no synchronization required
    if (!SeenPairs.insert({Prev.I, Endpoint, Kind}).second)
      return;
    DepWitness W;
    W.Src = Prev.I;
    W.Dst = Endpoint;
    W.Kind = Kind;
    W.Addr = Addr;
    W.SrcIter = Prev.Iter;
    W.DstIter = CurIter;
    LW.Witnesses.push_back(W);
  };

  if (IsWrite) {
    auto WIt = LastWrite.find(Addr);
    if (WIt != LastWrite.end())
      Witness(WIt->second, DepKind::WAW);
    auto RIt = LastRead.find(Addr);
    if (RIt != LastRead.end())
      Witness(RIt->second, DepKind::WAR);
    LastWrite[Addr] = {CurIter, Endpoint};
  } else {
    auto WIt = LastWrite.find(Addr);
    if (WIt != LastWrite.end())
      Witness(WIt->second, DepKind::RAW);
    LastRead[Addr] = {CurIter, Endpoint};
  }
}

void DepWitnessObserver::onInstruction(const Instruction *I, unsigned Cycles,
                                       ExecState &State) {
  (void)Cycles;
  if (Active < 0)
    return;
  const ParallelLoopInfo *PLI = Loops[Active].PLI;
  unsigned Depth = State.callDepth();

  if (Depth == ActiveDepth) {
    if (State.currentFunction() != PLI->F)
      return;
    CurCall = nullptr; // any pending loop-level call has returned
    switch (I->opcode()) {
    case Opcode::Ret:
      // The loop's frame returns from inside the loop (no exit edge will
      // fire in this frame). Reported before transferring, so close now.
      endInvocation();
      return;
    case Opcode::Load: {
      // Non-control instructions report after executing: a load that
      // clobbers its own address register loses the address.
      const Operand &AddrOp = I->operand(0);
      if (I->hasDest() && AddrOp.isReg() && AddrOp.regId() == I->dest()) {
        ++Loops[Active].AccessesSkipped;
        return;
      }
      recordAccess(I, uint64_t(State.operandValue(AddrOp).asInt()), false);
      return;
    }
    case Opcode::Store:
      recordAccess(I, uint64_t(State.operandValue(I->operand(1)).asInt()),
                   true);
      return;
    default:
      if (I->isCall())
        CurCall = I; // reported before transferring: deeper events follow
      return;
    }
  }

  // Deeper frame: attribute to the loop-level call being executed. Callee
  // stack addresses are excluded — those alloca regions are freed on
  // return and reused, so equal addresses across iterations are usually
  // different (dead) objects.
  if (Depth > ActiveDepth && CurCall) {
    uint64_t Addr;
    bool IsWrite;
    if (I->opcode() == Opcode::Load) {
      const Operand &AddrOp = I->operand(0);
      if (I->hasDest() && AddrOp.isReg() && AddrOp.regId() == I->dest()) {
        ++Loops[Active].AccessesSkipped;
        return;
      }
      Addr = uint64_t(State.operandValue(AddrOp).asInt());
      IsWrite = false;
    } else if (I->opcode() == Opcode::Store) {
      Addr = uint64_t(State.operandValue(I->operand(1)).asInt());
      IsWrite = true;
    } else {
      return;
    }
    if (Addr >= ExecStackBase) {
      ++Loops[Active].AccessesSkipped;
      return;
    }
    recordAccess(CurCall, Addr, IsWrite);
  }
}

void DepWitnessObserver::onEdge(const BasicBlock *From, const BasicBlock *To,
                                ExecState &State) {
  if (Active >= 0) {
    const ParallelLoopInfo *PLI = Loops[Active].PLI;
    if (State.callDepth() != ActiveDepth ||
        State.currentFunction() != PLI->F)
      return;
    CurCall = nullptr;
    if (From == PLI->Latch && To == PLI->Header) {
      ++CurIter;
      return;
    }
    if (PLI->contains(From) && !PLI->contains(To))
      endInvocation();
    return;
  }

  // No active invocation: does this edge enter a parallelized loop?
  for (unsigned K = 0, E = unsigned(Loops.size()); K != E; ++K) {
    const ParallelLoopInfo *PLI = Loops[K].PLI;
    if (State.currentFunction() != PLI->F)
      continue;
    if (To != PLI->Header || PLI->contains(From))
      continue;
    Active = int(K);
    ActiveDepth = State.callDepth();
    CurIter = 0;
    CurCall = nullptr;
    LastWrite.clear();
    LastRead.clear();
    ++Loops[K].Invocations;
    if (PLI->StorageGlobal != ~0u) {
      StorageBase = State.globalBase(PLI->StorageGlobal);
      StorageEnd = StorageBase +
                   PLI->F->parent()->global(PLI->StorageGlobal).Size;
    } else {
      StorageBase = StorageEnd = 0;
    }
    return;
  }
}

namespace {

const char *depKindName(DepKind K) {
  switch (K) {
  case DepKind::RAW:
    return "RAW";
  case DepKind::WAR:
    return "WAR";
  case DepKind::WAW:
    return "WAW";
  }
  return "?";
}

/// "opcode@block#idx" — stable across runs (block names and instruction
/// positions survive cloning; addresses do not participate).
std::string locate(const Instruction *I) {
  const BasicBlock *BB = I->parent();
  return formatStr("%s@%s#%u", opcodeName(I->opcode()), BB->name().c_str(),
                   BB->indexOf(I));
}

bool containsI(const std::vector<Instruction *> &V, const Instruction *I) {
  return std::find(V.begin(), V.end(), I) != V.end();
}

} // namespace

DepAuditResult helix::auditDependences(const DepWitnessObserver &Obs) {
  DepAuditResult R;
  for (const LoopWitnesses &LW : Obs.witnesses()) {
    if (LW.Invocations == 0)
      continue; // never ran: nothing witnessed, nothing judgeable
    const ParallelLoopInfo *PLI = LW.PLI;
    ++R.LoopsAudited;
    R.InvocationsSeen += LW.Invocations;

    std::vector<const DataDependence *> MemDeps;
    for (const DataDependence &D : PLI->Deps)
      if (D.ViaMemory)
        MemDeps.push_back(&D);
    R.StaticMemDeps += unsigned(MemDeps.size());
    std::vector<bool> Hit(MemDeps.size(), false);

    for (const DepWitness &W : LW.Witnesses) {
      ++R.WitnessedDeps;
      // Covered iff some synchronized memory dependence has the witnessed
      // endpoints — in either orientation: the static pair loop emits each
      // unordered pair once, while the runtime orientation depends on
      // which endpoint ran in the earlier iteration.
      bool Covered = false;
      for (unsigned K = 0, E = unsigned(MemDeps.size()); K != E; ++K) {
        const DataDependence &D = *MemDeps[K];
        if ((containsI(D.Srcs, W.Src) && containsI(D.Dsts, W.Dst)) ||
            (containsI(D.Srcs, W.Dst) && containsI(D.Dsts, W.Src))) {
          Covered = true;
          Hit[K] = true; // keep scanning: credit every covering dep
        }
      }
      if (Covered) {
        ++R.CoveredDeps;
      } else {
        ++R.UncoveredDeps;
        R.Diags.push_back(formatStr(
            "dep-unsound @%s: witnessed %s %s (iter %llu) -> %s (iter "
            "%llu) at addr %llu not covered by any synchronized memory "
            "dependence",
            PLI->F->name().c_str(), depKindName(W.Kind),
            locate(W.Src).c_str(), (unsigned long long)W.SrcIter,
            locate(W.Dst).c_str(), (unsigned long long)W.DstIter,
            (unsigned long long)W.Addr));
      }
    }
    for (bool H : Hit)
      if (!H)
        ++R.StaticUnwitnessed;
  }
  return R;
}
