#include "check/SyncChecker.h"

#include "analysis/DataDependence.h"
#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace helix;

const char *helix::syncDiagKindName(SyncDiagKind K) {
  switch (K) {
  case SyncDiagKind::CoverageNoWait:
    return "coverage-no-wait";
  case SyncDiagKind::CoverageNoSignal:
    return "coverage-no-signal";
  case SyncDiagKind::DeadlockSignalSkipped:
    return "deadlock-signal-skipped";
  case SyncDiagKind::DuplicateSignal:
    return "duplicate-signal";
  case SyncDiagKind::WaitWithoutSignal:
    return "wait-without-signal";
  case SyncDiagKind::SignalWithoutWait:
    return "signal-without-wait";
  case SyncDiagKind::SharedAccessOutsideSegment:
    return "shared-access-outside-segment";
  case SyncDiagKind::UnknownSegmentId:
    return "unknown-segment-id";
  case SyncDiagKind::IVStrideMismatch:
    return "iv-stride-mismatch";
  case SyncDiagKind::BodyMutated:
    return "body-mutated";
  }
  return "unknown";
}

std::string SyncDiag::str() const {
  std::string S = syncDiagKindName(Kind);
  S += formatStr(" @%s/%s", Function.c_str(),
                 Block.empty() ? "<loop>" : Block.c_str());
  if (InstrIndex != ~0u)
    S += formatStr("#%u", InstrIndex);
  if (SegmentId >= 0)
    S += formatStr(" seg=%lld", (long long)SegmentId);
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

unsigned SyncCheckResult::count(SyncDiagKind K) const {
  unsigned N = 0;
  for (const SyncDiag &D : Diags)
    N += D.Kind == K;
  return N;
}

void SyncCheckResult::merge(const SyncCheckResult &Other) {
  Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  LoopsChecked += Other.LoopsChecked;
  DepsChecked += Other.DepsChecked;
  EndpointsChecked += Other.EndpointsChecked;
  SegmentsChecked += Other.SegmentsChecked;
  SharedAccessesChecked += Other.SharedAccessesChecked;
}

namespace {

/// The loop-local CFG view every dataflow below runs on: membership and
/// in-loop edges with the back edge cut. The back edge (marked HasBack on
/// the latch) ends the iteration; edges leaving the loop are exits — the
/// runtime tears the parallel loop down there, so the synchronization
/// contract only binds paths that complete the iteration.
struct LoopGraph {
  const ParallelLoopInfo &PLI;
  unsigned NumIds;
  std::vector<char> InLoop;                    // by block id
  std::vector<std::vector<BasicBlock *>> Preds; // in-loop, back edge cut
  std::vector<std::vector<BasicBlock *>> Succs; // in-loop, back edge cut
  std::vector<char> HasBack;                    // sources of the back edge

  explicit LoopGraph(const ParallelLoopInfo &PLI)
      : PLI(PLI), NumIds(PLI.F->numBlockIds()), InLoop(NumIds, 0),
        Preds(NumIds), Succs(NumIds), HasBack(NumIds, 0) {
    for (BasicBlock *BB : PLI.LoopBlocks)
      if (BB->id() < NumIds)
        InLoop[BB->id()] = 1;
    for (BasicBlock *BB : PLI.LoopBlocks) {
      for (BasicBlock *Succ : BB->successors()) {
        if (BB == PLI.Latch && Succ == PLI.Header) {
          HasBack[BB->id()] = 1;
          continue;
        }
        if (!InLoop[Succ->id()])
          continue; // loop exit
        Succs[BB->id()].push_back(Succ);
        Preds[Succ->id()].push_back(BB);
      }
    }
  }
};

SyncDiag diagAt(SyncDiagKind K, const Instruction *I, int64_t Seg,
                std::string Detail) {
  SyncDiag D;
  D.Kind = K;
  D.SegmentId = Seg;
  D.Detail = std::move(Detail);
  if (I && I->parent()) {
    D.Block = I->parent()->name();
    D.InstrIndex = I->parent()->indexOf(I);
    if (I->parent()->parent())
      D.Function = I->parent()->parent()->name();
  }
  return D;
}

SyncDiag diagLoop(SyncDiagKind K, const ParallelLoopInfo &PLI, int64_t Seg,
                  std::string Detail) {
  SyncDiag D;
  D.Kind = K;
  D.SegmentId = Seg;
  D.Detail = std::move(Detail);
  D.Function = PLI.F ? PLI.F->name() : "";
  D.Block = PLI.Header ? PLI.Header->name() : "";
  return D;
}

} // namespace

SyncCheckResult helix::checkLoopSync(AnalysisManager &AM,
                                     const ParallelLoopInfo &PLI,
                                     bool CheckSeal) {
  SyncCheckResult R;
  Function *F = PLI.F;
  if (!F || !PLI.Header || !PLI.Latch || PLI.LoopBlocks.empty())
    return R;
  R.LoopsChecked = 1;
  R.SegmentsChecked = unsigned(PLI.Segments.size());

  // --- Integrity: the loop body must still hash to the transform's seal.
  if (CheckSeal && PLI.BodySeal != 0 &&
      computeLoopBodySeal(PLI) != PLI.BodySeal)
    R.Diags.push_back(diagLoop(
        SyncDiagKind::BodyMutated, PLI, -1,
        "loop-body hash differs from the seal recorded at transform time"));

  LoopGraph G(PLI);
  unsigned NumSegs = unsigned(PLI.Segments.size());

  // Ownership mirrors the runtime exactly: a sync op acts on this loop's
  // segments iff the loop's Segments lists record it (ThreadedRuntime's
  // OwnedSync set). Anything else in the body — e.g. sync ops the inliner
  // cloned in from an already-transformed callee — is inert there, so the
  // dataflows treat it as opaque.
  std::map<const Instruction *, unsigned> Owned;
  for (unsigned Idx = 0; Idx != NumSegs; ++Idx) {
    for (Instruction *W : PLI.Segments[Idx].Waits)
      Owned[W] = Idx;
    for (Instruction *Sig : PLI.Segments[Idx].Signals)
      Owned[Sig] = Idx;
  }
  auto OwnedSeg = [&](const Instruction *I) -> unsigned {
    if (!I->isSync())
      return ~0u;
    auto It = Owned.find(I);
    return It == Owned.end() ? ~0u : It->second;
  };

  // --- Pairing hygiene + IR/metadata id agreement, one IR scan. -----------
  std::vector<const Instruction *> FirstWait(NumSegs, nullptr),
      FirstSignal(NumSegs, nullptr);
  std::vector<unsigned> WaitCount(NumSegs, 0), SignalCount(NumSegs, 0);
  for (BasicBlock *BB : PLI.LoopBlocks)
    for (Instruction *I : *BB) {
      unsigned S = OwnedSeg(I);
      if (S == ~0u)
        continue;
      // The runtime publishes/awaits the bit named by the *instruction's*
      // immediate; ownership comes from the metadata. If the two disagree
      // the iteration synchronizes on the wrong segment.
      if (I->imm() != int64_t(PLI.Segments[S].Id))
        R.Diags.push_back(
            diagAt(SyncDiagKind::UnknownSegmentId, I, I->imm(),
                   formatStr("%s immediate disagrees with its recorded "
                             "segment id %lld",
                             opcodeName(I->opcode()),
                             (long long)PLI.Segments[S].Id)));
      if (I->opcode() == Opcode::Wait) {
        if (!FirstWait[S])
          FirstWait[S] = I;
        ++WaitCount[S];
      } else {
        if (!FirstSignal[S])
          FirstSignal[S] = I;
        ++SignalCount[S];
      }
    }
  for (unsigned S = 0; S != NumSegs; ++S) {
    if (WaitCount[S] && !SignalCount[S])
      R.Diags.push_back(diagAt(SyncDiagKind::WaitWithoutSignal, FirstWait[S],
                               PLI.Segments[S].Id,
                               "segment is waited on but never signaled"));
    if (SignalCount[S] && !WaitCount[S])
      R.Diags.push_back(diagAt(SyncDiagKind::SignalWithoutWait, FirstSignal[S],
                               PLI.Segments[S].Id,
                               "segment is signaled but never waited on"));
  }

  // --- Dataflow 1 (forward, intersection): must-open segments. ------------
  // Bit s at a point: Wait(s) executed on every path from the header with
  // no later Signal(s) — the point runs inside segment s.
  std::vector<BitSet> OpenIn(G.NumIds, BitSet(NumSegs));
  std::vector<BitSet> OpenOut(G.NumIds, BitSet(NumSegs));
  std::vector<char> OpenInit(G.NumIds, 0);
  auto OpenTransfer = [&](BasicBlock *BB, BitSet S) {
    for (Instruction *I : *BB) {
      unsigned Seg = OwnedSeg(I);
      if (Seg == ~0u)
        continue;
      if (I->opcode() == Opcode::Wait)
        S.set(Seg);
      else
        S.reset(Seg);
    }
    return S;
  };
  OpenInit[PLI.Header->id()] = 1;
  OpenOut[PLI.Header->id()] = OpenTransfer(PLI.Header, BitSet(NumSegs));
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (BasicBlock *BB : PLI.LoopBlocks) {
      if (BB == PLI.Header)
        continue;
      BitSet NewIn(NumSegs);
      bool First = true;
      for (BasicBlock *Pred : G.Preds[BB->id()]) {
        if (!OpenInit[Pred->id()])
          continue; // uninitialized = top
        if (First) {
          NewIn = OpenOut[Pred->id()];
          First = false;
        } else {
          NewIn.intersectWith(OpenOut[Pred->id()]);
        }
      }
      if (First)
        continue;
      if (!OpenInit[BB->id()] || NewIn != OpenIn[BB->id()]) {
        OpenIn[BB->id()] = NewIn;
        OpenOut[BB->id()] = OpenTransfer(BB, std::move(NewIn));
        OpenInit[BB->id()] = 1;
        Changed = true;
      }
    }
  }

  // --- Dataflow 2 (backward, intersection): must-signal-ahead. ------------
  // Bit s at a point: Signal(s) executes on every path from the point that
  // completes the iteration (reaches the back edge). Paths that exit the
  // loop are exempt — the transform never places Signals on exit edges;
  // the runtime tears the parallel loop down there instead.
  std::vector<BitSet> MSIn(G.NumIds, BitSet(NumSegs));
  std::vector<BitSet> MSOut(G.NumIds, BitSet(NumSegs));
  std::vector<char> MSInit(G.NumIds, 0);
  auto MSTransfer = [&](BasicBlock *BB, BitSet S) {
    for (unsigned Idx = BB->size(); Idx-- > 0;) {
      Instruction *I = BB->instr(Idx);
      unsigned Seg = OwnedSeg(I);
      if (Seg != ~0u && I->opcode() == Opcode::SignalOp)
        S.set(Seg);
    }
    return S;
  };
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (BasicBlock *BB : PLI.LoopBlocks) {
      BitSet NewOut(NumSegs);
      bool First = true;
      if (G.HasBack[BB->id()])
        First = false; // iteration completes here: meet with the empty set
      for (BasicBlock *Succ : G.Succs[BB->id()]) {
        if (!MSInit[Succ->id()])
          continue;
        if (First) {
          NewOut = MSIn[Succ->id()];
          First = false;
        } else {
          NewOut.intersectWith(MSIn[Succ->id()]);
        }
      }
      if (First) {
        if (!G.Succs[BB->id()].empty())
          continue; // in-loop successors not yet initialized
        // Every successor leaves the loop: no path completes the
        // iteration from here, so the obligation is vacuously met.
        NewOut.setAll();
      }
      if (!MSInit[BB->id()] || NewOut != MSOut[BB->id()]) {
        MSOut[BB->id()] = NewOut;
        MSIn[BB->id()] = MSTransfer(BB, std::move(NewOut));
        MSInit[BB->id()] = 1;
        Changed = true;
      }
    }
  }

  // --- Deadlock-freedom: every waited-on segment signals on all paths. ----
  for (unsigned S = 0; S != NumSegs; ++S) {
    if (!WaitCount[S] || !SignalCount[S])
      continue; // fully missing pairs already reported above
    if (MSInit[PLI.Header->id()] && !MSIn[PLI.Header->id()].test(S))
      R.Diags.push_back(diagAt(
          SyncDiagKind::DeadlockSignalSkipped, FirstWait[S], PLI.Segments[S].Id,
          "some path from the header through the back edge skips the Signal; "
          "the next iteration's Wait can block forever"));
  }

  // --- Dataflow 3 (forward, union): may-signaled-without-rearm. -----------
  // Bit s: some path already signaled s with no later Wait(s). A Signal
  // executing under that fact may release the successor iteration twice.
  std::vector<BitSet> SigIn(G.NumIds, BitSet(NumSegs));
  auto SigTransfer = [&](BasicBlock *BB, BitSet S) {
    for (Instruction *I : *BB) {
      unsigned Seg = OwnedSeg(I);
      if (Seg == ~0u)
        continue;
      if (I->opcode() == Opcode::SignalOp)
        S.set(Seg);
      else
        S.reset(Seg);
    }
    return S;
  };
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (BasicBlock *BB : PLI.LoopBlocks) {
      if (BB == PLI.Header)
        continue;
      BitSet NewIn(NumSegs);
      for (BasicBlock *Pred : G.Preds[BB->id()])
        NewIn.unionWith(SigTransfer(Pred, SigIn[Pred->id()]));
      if (NewIn != SigIn[BB->id()]) {
        SigIn[BB->id()] = std::move(NewIn);
        Changed = true;
      }
    }
  }
  for (BasicBlock *BB : PLI.LoopBlocks) {
    BitSet S = SigIn[BB->id()];
    for (Instruction *I : *BB) {
      unsigned Seg = OwnedSeg(I);
      if (Seg == ~0u)
        continue;
      if (I->opcode() == Opcode::SignalOp) {
        if (S.test(Seg))
          R.Diags.push_back(
              diagAt(SyncDiagKind::DuplicateSignal, I, PLI.Segments[Seg].Id,
                     "a path reaches this Signal having already signaled the "
                     "segment without an intervening Wait"));
        S.set(Seg);
      } else {
        S.reset(Seg);
      }
    }
  }

  // --- Coverage: re-derive the dependence set and verify each endpoint. ---
  LoopInfo &LI = AM.get<LoopInfo>(F);
  Loop *L = nullptr;
  for (unsigned Idx = 0, E = LI.numLoops(); Idx != E; ++Idx)
    if (LI.loop(Idx)->header() == PLI.Header)
      L = LI.loop(Idx);
  if (!L)
    return R; // header no longer heads a loop; the seal check saw any edit

  const CFGInfo &CFG = AM.get<CFGInfo>(F);
  const DominatorTree &DT = AM.get<DominatorTree>(F);
  const Liveness &LV = AM.get<Liveness>(F);
  LoopVarAnalysis Vars(F, L, DT);
  const PointsToAnalysis &PT = AM.get<PointsToAnalysis>();
  const MemEffects &ME = AM.get<MemEffects>();
  // The re-derived set must prune exactly like the transform's Step 2 did
  // (value-range refinement included), or pairs the transform legitimately
  // disproved would surface here as missing coverage.
  const ValueRangeAnalysis &VR = AM.get<ValueRangeAnalysis>(F);
  LoopDependenceAnalysis DDA(F, L, CFG, DT, LV, Vars, PT, ME, &VR);
  const std::vector<DataDependence> &Deps = DDA.toSynchronize();
  R.DepsChecked = unsigned(Deps.size());

  // Induction-variable strides must agree with the published metadata —
  // the engines materialize Reg = Base + i*Stride from it, so a body edit
  // that changes a stride desynchronizes every parallel iteration.
  for (const MaterializedIV &MIV : PLI.IVs)
    if (const InductionVar *IV = Vars.inductionVar(MIV.Reg))
      if (IV->Stride != MIV.Stride)
        R.Diags.push_back(diagAt(
            SyncDiagKind::IVStrideMismatch, IV->Update, -1,
            formatStr("induction r%u now steps by %lld, metadata says %lld",
                      MIV.Reg, (long long)IV->Stride,
                      (long long)MIV.Stride)));

  // Per-endpoint facts: segment-open before the endpoint, must-signal
  // after it. Gathered in one extra walk per loop block.
  std::map<const Instruction *, std::pair<BitSet, BitSet>> Facts;
  for (const DataDependence &D : Deps)
    for (Instruction *E : D.allEndpoints())
      if (E->parent() && E->parent()->id() < G.NumIds &&
          G.InLoop[E->parent()->id()])
        Facts.emplace(E, std::pair<BitSet, BitSet>(BitSet(NumSegs),
                                                   BitSet(NumSegs)));
  for (BasicBlock *BB : PLI.LoopBlocks) {
    bool Any = false;
    for (Instruction *I : *BB)
      Any |= Facts.count(I) != 0;
    if (!Any)
      continue;
    BitSet Open = OpenIn[BB->id()];
    for (Instruction *I : *BB) {
      auto It = Facts.find(I);
      if (It != Facts.end())
        It->second.first = Open;
      unsigned Seg = OwnedSeg(I);
      if (Seg != ~0u) {
        if (I->opcode() == Opcode::Wait)
          Open.set(Seg);
        else
          Open.reset(Seg);
      }
    }
    BitSet MS = MSOut[BB->id()];
    for (unsigned Idx = BB->size(); Idx-- > 0;) {
      Instruction *I = BB->instr(Idx);
      auto It = Facts.find(I);
      if (It != Facts.end())
        It->second.second = MS;
      unsigned Seg = OwnedSeg(I);
      if (Seg != ~0u && I->opcode() == Opcode::SignalOp)
        MS.set(Seg);
    }
  }

  // Does this endpoint touch memory the iterations actually share —
  // a heap or global abstract location (stack frames and registers are
  // per-core private)? Unknown addresses alias everything: shared.
  auto TouchesShared = [&](Instruction *E) {
    auto AnyShared = [&](const BitSet &Locs) {
      if (Locs.empty())
        return true; // no pointer information = may alias anything
      bool Shared = false;
      Locs.forEach([&](unsigned Loc) {
        AbstractLocation::Kind K = PT.location(Loc).K;
        Shared |= K == AbstractLocation::Kind::Global ||
                  K == AbstractLocation::Kind::Heap;
      });
      return Shared;
    };
    if (E->opcode() == Opcode::Load && E->numOperands() >= 1)
      return AnyShared(PT.operandPointsTo(F, E->operand(0)));
    if (E->opcode() == Opcode::Store && E->numOperands() >= 2)
      return AnyShared(PT.operandPointsTo(F, E->operand(1)));
    if (E->isCall()) {
      Function *Callee = E->callee();
      if (!Callee || ME.readsUnknown(Callee) || ME.writesUnknown(Callee))
        return true;
      BitSet Touched = ME.mayRead(Callee);
      Touched.unionWith(ME.mayWrite(Callee));
      return AnyShared(Touched);
    }
    return false;
  };

  const char *KindName[] = {"RAW", "WAR", "WAW"};
  for (const DataDependence &D : Deps) {
    BitSet CommonCover(NumSegs);
    CommonCover.setAll();
    bool AllCovered = true;
    unsigned InLoopEndpoints = 0;
    for (Instruction *E : D.allEndpoints()) {
      auto It = Facts.find(E);
      if (It == Facts.end())
        continue;
      ++R.EndpointsChecked;
      ++InLoopEndpoints;
      const BitSet &Open = It->second.first;
      BitSet Cover = Open;
      Cover.intersectWith(It->second.second);
      std::string Where =
          formatStr("%s %s endpoint of dep %u", KindName[unsigned(D.Kind)],
                    D.ViaMemory ? "memory" : formatStr("r%u", D.Reg).c_str(),
                    D.Id);
      if (Open.empty()) {
        AllCovered = false;
        R.Diags.push_back(diagAt(SyncDiagKind::CoverageNoWait, E, -1,
                                 Where + " is not dominated by any Wait"));
      } else if (Cover.empty()) {
        AllCovered = false;
        R.Diags.push_back(diagAt(
            SyncDiagKind::CoverageNoSignal, E, -1,
            Where + ": no open segment is signaled on every later path"));
      }
      CommonCover.intersectWith(Cover);
      if (D.ViaMemory) {
        ++R.SharedAccessesChecked;
        if (Open.empty() && TouchesShared(E))
          R.Diags.push_back(diagAt(
              SyncDiagKind::SharedAccessOutsideSegment, E, -1,
              Where + " touches heap/global memory outside every segment"));
      }
    }
    if (AllCovered && InLoopEndpoints > 1 && CommonCover.empty())
      R.Diags.push_back(diagLoop(
          SyncDiagKind::CoverageNoWait, PLI, -1,
          formatStr("no single segment covers all %u endpoints of dep %u",
                    InLoopEndpoints, D.Id)));
  }
  return R;
}

SyncCheckResult
helix::checkModuleSync(AnalysisManager &AM,
                       const std::vector<const ParallelLoopInfo *> &Loops) {
  SyncCheckResult R;
  for (const ParallelLoopInfo *PLI : Loops) {
    if (!PLI || !PLI->F)
      continue;
    bool Overlaps = false;
    for (const ParallelLoopInfo *Other : Loops) {
      if (!Other || Other == PLI || Other->F != PLI->F)
        continue;
      for (const BasicBlock *BB : Other->LoopBlocks)
        Overlaps |= PLI->contains(BB);
    }
    // Overlapping block sets would double-hash shared blocks into both
    // seals; loop selection never nests chosen loops, so this is purely
    // defensive for hand-built metadata.
    R.merge(checkLoopSync(AM, *PLI, /*CheckSeal=*/!Overlaps));
  }
  return R;
}
