//===----------------------------------------------------------------------===//
///
/// \file
/// Static Signal/Wait synchronization verifier for HELIX-transformed
/// parallel IR. Given a transformed function plus its ParallelLoopInfo,
/// the checker re-derives the loop-carried dependence set from the same
/// analyses the transform used (LoopDependenceAnalysis over points-to)
/// and proves three properties against the *actual* instructions:
///
///   1. Coverage — every loop-carried dependence endpoint executes inside
///      a sequential segment: some segment's Wait must have executed on
///      every path from the header to the endpoint (with no intervening
///      Signal of that segment), and that same segment's Signal must
///      execute on every path from the endpoint to the end of the
///      iteration.
///   2. Deadlock-freedom — every segment that is Waited on is Signaled on
///      every path from the header to the latch or a loop exit. A
///      conditionally-skipped Signal is a statically provable hang: the
///      next iteration's Wait can block forever.
///   3. Hygiene — duplicate Signals on a path without a re-arming Wait,
///      Waits never paired with any Signal (and vice versa), sync
///      operations whose immediate disagrees with their recorded segment
///      id, shared-memory dependence endpoints (heap/global points-to
///      locations) running outside any segment, induction-variable
///      strides disagreeing with the published metadata, and loop bodies
///      whose instructions no longer hash to the seal recorded at
///      transform time.
///
/// Sync-op ownership mirrors the runtime exactly: an instruction acts on
/// a loop's segments iff that loop's Segments lists record it (the
/// ThreadedRuntime's OwnedSync set). Sync ops in the body that no
/// metadata owns — e.g. clones the inliner copied in from an
/// already-transformed callee — are inert at runtime and opaque here.
///
/// All facts are computed by intersection/union dataflow over the loop
/// blocks with the back edge cut, mirroring the transform's own
/// SequentialSegments/SignalOpt machinery — so a clean transform is
/// checker-clean by construction, and any later mutation of the loop
/// (a dropped Wait, a flipped update, a skipped Signal) is refutable
/// without executing an instruction.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_CHECK_SYNCCHECKER_H
#define HELIX_CHECK_SYNCCHECKER_H

#include "analysis/AnalysisManager.h"
#include "helix/ParallelLoopInfo.h"

#include <string>
#include <vector>

namespace helix {

/// The distinct diagnostic classes the checker reports.
enum class SyncDiagKind : uint8_t {
  CoverageNoWait,      ///< dependence endpoint not dominated by any Wait
  CoverageNoSignal,    ///< endpoint's open segments never Signal after it
  DeadlockSignalSkipped, ///< some path header->latch/exit skips a Signal
  DuplicateSignal,     ///< Signal may re-fire without a re-arming Wait
  WaitWithoutSignal,   ///< segment is Waited on but never Signaled
  SignalWithoutWait,   ///< segment is Signaled but never Waited on
  SharedAccessOutsideSegment, ///< heap/global dep endpoint outside segments
  UnknownSegmentId,    ///< owned sync op's immediate != its segment's id
  IVStrideMismatch,    ///< recomputed induction stride != published stride
  BodyMutated,         ///< loop body hash != seal recorded by the transform
};

const char *syncDiagKindName(SyncDiagKind K);

/// One finding, located at instruction granularity.
struct SyncDiag {
  SyncDiagKind Kind = SyncDiagKind::CoverageNoWait;
  std::string Function;
  std::string Block;       ///< empty for loop-level findings
  unsigned InstrIndex = ~0u; ///< position within Block; ~0u for loop-level
  int64_t SegmentId = -1;  ///< offending segment, when one is implicated
  std::string Detail;

  /// "kind @func/block#idx seg=N: detail" human-readable line.
  std::string str() const;
};

/// Findings plus the work counters the pipeline/serve/fuzz layers report.
struct SyncCheckResult {
  std::vector<SyncDiag> Diags;
  unsigned LoopsChecked = 0;
  unsigned DepsChecked = 0;      ///< re-derived dependences verified
  unsigned EndpointsChecked = 0; ///< dependence endpoints verified
  unsigned SegmentsChecked = 0;
  unsigned SharedAccessesChecked = 0; ///< heap/global endpoints examined

  bool clean() const { return Diags.empty(); }
  unsigned count(SyncDiagKind K) const;
  void merge(const SyncCheckResult &Other);
};

/// Checks one transformed loop. \p AM must manage the module containing
/// PLI.F (any manager works; the checker only reads). With \p CheckSeal
/// the loop-body hash is compared against PLI.BodySeal (skipped when the
/// seal was never recorded, i.e. is zero).
SyncCheckResult checkLoopSync(AnalysisManager &AM, const ParallelLoopInfo &PLI,
                              bool CheckSeal = true);

/// Checks every loop. Seal checking is disabled defensively for loops
/// whose block sets overlap (loop selection never nests chosen loops, so
/// this only triggers on hand-built metadata).
SyncCheckResult
checkModuleSync(AnalysisManager &AM,
                const std::vector<const ParallelLoopInfo *> &Loops);

} // namespace helix

#endif // HELIX_CHECK_SYNCCHECKER_H
