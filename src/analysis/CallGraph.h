//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph of a module. HELIX uses it to build the program-wide loop
/// nesting graph (Section 2.2) and to propagate memory-effect summaries.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_CALLGRAPH_H
#define HELIX_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"
#include "support/Graph.h"

#include <vector>

namespace helix {

class CallGraph {
public:
  explicit CallGraph(Module &M);

  /// Call instructions appearing in \p F.
  const std::vector<Instruction *> &callSites(const Function *F) const {
    return Sites[indexOf(F)];
  }

  /// Distinct callees of \p F.
  const std::vector<Function *> &callees(const Function *F) const {
    return Callees[indexOf(F)];
  }

  /// Functions in bottom-up order (callees before callers); members of a
  /// recursive cycle appear in arbitrary relative order.
  const std::vector<Function *> &bottomUpOrder() const { return BottomUp; }

  /// \returns true if \p F participates in a call-graph cycle (including
  /// direct self recursion).
  bool isRecursive(const Function *F) const { return Recursive[indexOf(F)]; }

  unsigned indexOf(const Function *F) const;

private:
  Module &M;
  std::vector<std::vector<Instruction *>> Sites;
  std::vector<std::vector<Function *>> Callees;
  std::vector<Function *> BottomUp;
  std::vector<bool> Recursive;
};

} // namespace helix

#endif // HELIX_ANALYSIS_CALLGRAPH_H
