#include "analysis/LoopInfo.h"

#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

std::vector<std::pair<BasicBlock *, BasicBlock *>> Loop::exitEdges() const {
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Exits;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ))
        Exits.push_back({BB, Succ});
  return Exits;
}

LoopInfo::LoopInfo(Function *F, const CFGInfo &CFG, const DominatorTree &DT) {
  InnermostFor.assign(F->numBlockIds(), nullptr);

  // Find back edges: u -> h where h dominates u. Group by header. Headers
  // are processed in reverse post order, NOT in map (pointer) order:
  // pointer order varies with the heap layout, and loop numbering feeds
  // LoopNestGraph node ids, which must be identical across processes and
  // thread schedules (the stage cache persists them, and the parallel
  // model-profile stage merges results by them).
  std::vector<BasicBlock *> Headers;
  std::map<BasicBlock *, std::vector<BasicBlock *>> LatchesByHeader;
  for (BasicBlock *BB : CFG.reversePostOrder())
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB)) {
        std::vector<BasicBlock *> &Latches = LatchesByHeader[Succ];
        if (Latches.empty())
          Headers.push_back(Succ);
        Latches.push_back(BB);
      }

  // Build each loop body by backwards reachability from its latches.
  for (BasicBlock *Header : Headers) {
    const std::vector<BasicBlock *> &Latches = LatchesByHeader[Header];
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    L->BlockSet.resize(F->numBlockIds());
    L->BlockSet.set(Header->id());
    std::vector<BasicBlock *> Work;
    for (BasicBlock *Latch : Latches)
      if (!L->BlockSet.test(Latch->id())) {
        L->BlockSet.set(Latch->id());
        Work.push_back(Latch);
      }
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *Pred : CFG.predecessors(BB)) {
        if (!CFG.isReachable(Pred) || L->BlockSet.test(Pred->id()))
          continue;
        L->BlockSet.set(Pred->id());
        Work.push_back(Pred);
      }
    }
    // Collect member blocks in RPO for deterministic iteration.
    for (BasicBlock *BB : CFG.reversePostOrder())
      if (L->BlockSet.test(BB->id()))
        L->Blocks.push_back(BB);
    Loops.push_back(std::move(L));
  }

  // Establish nesting: L1 is an ancestor of L2 if L1 contains L2's header
  // and L1 != L2. Sort by block count so the innermost parent is found by
  // scanning smaller loops first; ties break on the header's block id (a
  // total order — headers are unique) so the final loop indices never
  // depend on allocation addresses.
  std::sort(Loops.begin(), Loops.end(), [](const auto &A, const auto &B) {
    if (A->Blocks.size() != B->Blocks.size())
      return A->Blocks.size() < B->Blocks.size();
    return A->Header->id() < B->Header->id();
  });
  for (unsigned I = 0; I != Loops.size(); ++I) {
    Loops[I]->Index = I;
    for (unsigned J = I + 1; J != Loops.size(); ++J) {
      if (Loops[J]->contains(Loops[I]->Header) &&
          Loops[J].get() != Loops[I].get()) {
        Loops[I]->Parent = Loops[J].get();
        Loops[J]->SubLoops.push_back(Loops[I].get());
        break;
      }
    }
  }
  for (auto &L : Loops) {
    if (!L->Parent)
      TopLevel.push_back(L.get());
    unsigned D = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++D;
    L->Depth = D;
  }

  // Innermost loop per block: smaller loops were assigned smaller indices,
  // so the first loop (in size order) containing a block is innermost.
  for (auto &L : Loops)
    for (BasicBlock *BB : L->Blocks)
      if (!InnermostFor[BB->id()])
        InnermostFor[BB->id()] = L.get();
}
