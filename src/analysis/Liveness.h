//===----------------------------------------------------------------------===//
///
/// \file
/// Register liveness (backward union dataflow). HELIX uses liveness to find
/// loop boundary live variables (Step 2) and to prune dead copies inserted
/// by lowering.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_LIVENESS_H
#define HELIX_ANALYSIS_LIVENESS_H

#include "analysis/DataFlow.h"

namespace helix {

/// Per-block live-in/live-out register sets.
class Liveness {
public:
  Liveness(Function *F, const CFGInfo &CFG);

  const BitSet &liveIn(const BasicBlock *BB) const {
    return Result.In[BB->id()];
  }
  const BitSet &liveOut(const BasicBlock *BB) const {
    return Result.Out[BB->id()];
  }

  /// \returns true if register \p Reg is live immediately before \p At.
  /// (Linear scan from \p At to the end of its block.)
  bool isLiveBefore(unsigned Reg, const Instruction *At) const;

private:
  DataFlowResult Result;
};

} // namespace helix

#endif // HELIX_ANALYSIS_LIVENESS_H
