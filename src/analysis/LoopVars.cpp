#include "analysis/LoopVars.h"

#include "support/Compiler.h"

using namespace helix;

LoopVarAnalysis::LoopVarAnalysis(Function *F, Loop *L, const DominatorTree &DT)
    : F(F), L(L) {
  // Collect in-loop definitions per register.
  for (BasicBlock *BB : L->blocks())
    for (Instruction *I : *BB)
      if (I->hasDest())
        Defs[I->dest()].push_back(I);

  // Basic induction variables: single update Reg = Reg +/- C whose block
  // dominates every latch (so it executes exactly once per iteration) and
  // which is not buried in a subloop.
  for (auto &[Reg, DefList] : Defs) {
    if (DefList.size() != 1)
      continue;
    Instruction *I = DefList.front();
    if (I->opcode() != Opcode::Add && I->opcode() != Opcode::Sub)
      continue;
    if (I->numOperands() != 2)
      continue;
    const Operand &A = I->operand(0);
    const Operand &B = I->operand(1);
    if (!(A.isReg() && A.regId() == Reg && B.isImmInt()))
      continue;
    bool DominatesLatches = true;
    for (BasicBlock *Latch : L->latches())
      DominatesLatches &= DT.dominates(I->parent(), Latch);
    if (!DominatesLatches)
      continue;
    // Must not execute multiple times per iteration of L.
    bool InSubLoop = false;
    for (Loop *Sub : L->subLoops())
      InSubLoop |= Sub->contains(I->parent());
    if (InSubLoop)
      continue;
    int64_t Stride = B.intValue();
    if (I->opcode() == Opcode::Sub)
      Stride = -Stride;
    IVs.push_back({Reg, I, Stride});
  }
}

bool LoopVarAnalysis::isInvariant(unsigned Reg) const {
  return Defs.find(Reg) == Defs.end();
}

const InductionVar *LoopVarAnalysis::inductionVar(unsigned Reg) const {
  for (const InductionVar &IV : IVs)
    if (IV.Reg == Reg)
      return &IV;
  return nullptr;
}

const std::vector<Instruction *> &LoopVarAnalysis::defsOf(unsigned Reg) const {
  auto It = Defs.find(Reg);
  return It == Defs.end() ? NoDefs : It->second;
}

AffineAddr LoopVarAnalysis::combine(const AffineAddr &A, const AffineAddr &B,
                                    bool Negate) {
  AffineAddr R;
  if (!A.Valid || !B.Valid)
    return R;
  // At most one base symbol may survive, and a negated base is not
  // representable.
  if (A.Base != AffineAddr::BaseKind::None &&
      B.Base != AffineAddr::BaseKind::None)
    return R;
  if (Negate && B.Base != AffineAddr::BaseKind::None)
    return R;
  // At most one induction variable.
  if (A.IVReg != NoReg && B.IVReg != NoReg && A.IVReg != B.IVReg)
    return R;
  R.Valid = true;
  if (A.Base != AffineAddr::BaseKind::None) {
    R.Base = A.Base;
    R.BaseId = A.BaseId;
  } else {
    R.Base = B.Base;
    R.BaseId = B.BaseId;
  }
  R.IVReg = A.IVReg != NoReg ? A.IVReg : B.IVReg;
  int64_t ScaleB = Negate ? -B.Scale : B.Scale;
  int64_t OffB = Negate ? -B.Offset : B.Offset;
  R.Scale = (A.IVReg != NoReg ? A.Scale : 0) +
            (B.IVReg != NoReg ? ScaleB : 0);
  R.Offset = A.Offset + OffB;
  return R;
}

AffineAddr LoopVarAnalysis::affineOfReg(unsigned Reg, unsigned Depth) const {
  AffineAddr R;
  if (Depth > 16)
    return R;

  if (const InductionVar *IV = inductionVar(Reg)) {
    R.Valid = true;
    R.IVReg = Reg;
    R.Scale = IV->Stride;
    // Offset relative position to the update is irrelevant for the
    // divisibility-based independence test (shifts by multiples of Scale).
    R.Offset = 0;
    (void)IV;
    return R;
  }
  if (isInvariant(Reg)) {
    R.Valid = true;
    R.Base = AffineAddr::BaseKind::Reg;
    R.BaseId = Reg;
    return R;
  }

  const std::vector<Instruction *> &DefList = defsOf(Reg);
  if (DefList.size() != 1)
    return R;
  const Instruction *I = DefList.front();

  auto OfOperand = [&](const Operand &O) -> AffineAddr {
    AffineAddr A;
    switch (O.kind()) {
    case Operand::Kind::ImmInt:
      A.Valid = true;
      A.Offset = O.intValue();
      return A;
    case Operand::Kind::Global:
      A.Valid = true;
      A.Base = AffineAddr::BaseKind::Global;
      A.BaseId = O.globalIndex();
      return A;
    case Operand::Kind::Reg:
      return affineOfReg(O.regId(), Depth + 1);
    case Operand::Kind::ImmFloat:
      return A;
    }
    return A;
  };

  switch (I->opcode()) {
  case Opcode::Mov:
    return OfOperand(I->operand(0));
  case Opcode::Add:
    return combine(OfOperand(I->operand(0)), OfOperand(I->operand(1)),
                   /*Negate=*/false);
  case Opcode::Sub:
    return combine(OfOperand(I->operand(0)), OfOperand(I->operand(1)),
                   /*Negate=*/true);
  case Opcode::Mul: {
    AffineAddr A = OfOperand(I->operand(0));
    AffineAddr B = OfOperand(I->operand(1));
    // Only Term * constant is representable, and scaled bases are not.
    const AffineAddr *Term = nullptr;
    int64_t K = 0;
    if (A.Valid && B.Valid && B.IVReg == NoReg &&
        B.Base == AffineAddr::BaseKind::None) {
      Term = &A;
      K = B.Offset;
    } else if (A.Valid && B.Valid && A.IVReg == NoReg &&
               A.Base == AffineAddr::BaseKind::None) {
      Term = &B;
      K = A.Offset;
    }
    if (!Term || Term->Base != AffineAddr::BaseKind::None)
      return R;
    R.Valid = true;
    R.IVReg = Term->IVReg;
    R.Scale = Term->Scale * K;
    R.Offset = Term->Offset * K;
    return R;
  }
  default:
    return R;
  }
}

AffineAddr LoopVarAnalysis::affineAddr(const Operand &O) const {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    return affineOfReg(O.regId(), 0);
  case Operand::Kind::Global: {
    AffineAddr A;
    A.Valid = true;
    A.Base = AffineAddr::BaseKind::Global;
    A.BaseId = O.globalIndex();
    return A;
  }
  case Operand::Kind::ImmInt: {
    AffineAddr A;
    A.Valid = true;
    A.Offset = O.intValue();
    return A;
  }
  case Operand::Kind::ImmFloat:
    return {};
  }
  HELIX_UNREACHABLE("unknown operand kind");
}
