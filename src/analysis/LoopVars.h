//===----------------------------------------------------------------------===//
///
/// \file
/// Per-loop scalar analyses: loop-invariant registers, basic induction
/// variables, and affine address expressions over a single induction
/// variable. HELIX Step 2 uses these to exclude invariant and induction
/// accesses from synchronization, and the dependence analysis uses the
/// affine forms for strided-access independence (ZIV/SIV) tests.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_LOOPVARS_H
#define HELIX_ANALYSIS_LOOPVARS_H

#include "analysis/LoopInfo.h"

#include <map>
#include <vector>

namespace helix {

/// A basic induction variable: exactly one in-loop update of the form
/// Reg = Reg +/- constant, executed once per iteration.
struct InductionVar {
  unsigned Reg = NoReg;
  Instruction *Update = nullptr;
  int64_t Stride = 0;
};

/// Affine decomposition of an address value within one loop:
///   address = Base + Scale * IV + Offset
/// where Base is a loop-invariant symbol (an invariant register or a global)
/// or absent.
struct AffineAddr {
  bool Valid = false;
  enum class BaseKind { None, Reg, Global } Base = BaseKind::None;
  unsigned BaseId = 0;  ///< register id or global index
  unsigned IVReg = NoReg;
  int64_t Scale = 0;
  int64_t Offset = 0;
};

/// Scalar classification of the registers of one loop.
class LoopVarAnalysis {
public:
  LoopVarAnalysis(Function *F, Loop *L, const DominatorTree &DT);

  /// True if \p Reg has no definition inside the loop.
  bool isInvariant(unsigned Reg) const;

  /// Non-null if \p Reg is a basic induction variable of this loop.
  const InductionVar *inductionVar(unsigned Reg) const;

  const std::vector<InductionVar> &inductionVars() const { return IVs; }

  /// All in-loop definitions of \p Reg.
  const std::vector<Instruction *> &defsOf(unsigned Reg) const;

  /// Attempts to express the address \p O as an affine function of a single
  /// induction variable. Returns an invalid AffineAddr when the pattern does
  /// not apply.
  AffineAddr affineAddr(const Operand &O) const;

private:
  AffineAddr affineOfReg(unsigned Reg, unsigned Depth) const;
  static AffineAddr combine(const AffineAddr &A, const AffineAddr &B,
                            bool Negate);

  Function *F;
  Loop *L;
  std::map<unsigned, std::vector<Instruction *>> Defs;
  std::vector<InductionVar> IVs;
  std::vector<Instruction *> NoDefs;
};

} // namespace helix

#endif // HELIX_ANALYSIS_LOOPVARS_H
