//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers enumerating the register uses and definitions of an instruction.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_REGUSE_H
#define HELIX_ANALYSIS_REGUSE_H

#include "ir/Instruction.h"

#include <vector>

namespace helix {

/// Registers read by \p I (data operands only; branch targets and callees
/// are not registers).
inline std::vector<unsigned> usedRegs(const Instruction &I) {
  std::vector<unsigned> Regs;
  for (unsigned K = 0, E = I.numOperands(); K != E; ++K)
    if (I.operand(K).isReg())
      Regs.push_back(I.operand(K).regId());
  return Regs;
}

/// The register defined by \p I, or NoReg.
inline unsigned definedReg(const Instruction &I) {
  return I.hasDest() ? I.dest() : NoReg;
}

} // namespace helix

#endif // HELIX_ANALYSIS_REGUSE_H
