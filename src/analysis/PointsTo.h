//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural, inclusion-based (Andersen-style) points-to analysis and
/// the per-function memory-effect summaries built on top of it.
///
/// This plays the role of the "practical and accurate low-level pointer
/// analysis" (Guo et al.) that HELIX applies to the whole program in Step 2:
/// it provides the conservative may-alias answers from which loop-carried
/// data dependences are derived.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_POINTSTO_H
#define HELIX_ANALYSIS_POINTSTO_H

#include "analysis/CallGraph.h"
#include "ir/Module.h"
#include "support/BitSet.h"

#include <vector>

namespace helix {

/// An abstract memory location: a global variable, a stack allocation site,
/// or a heap allocation site (field-insensitive: one location per object).
struct AbstractLocation {
  enum class Kind { Global, Stack, Heap };
  Kind K;
  unsigned GlobalIdx = ~0u;    ///< for Kind::Global
  Instruction *Site = nullptr; ///< for Stack/Heap
};

/// Flow-insensitive, field-insensitive, inclusion-based points-to analysis
/// over the whole module.
class PointsToAnalysis {
public:
  explicit PointsToAnalysis(Module &M, const CallGraph &CG);

  unsigned numLocations() const { return unsigned(Locations.size()); }
  const AbstractLocation &location(unsigned Idx) const {
    return Locations[Idx];
  }

  /// Points-to set of a register. An empty set means "no pointer
  /// information": callers must treat such a value used as an address as
  /// potentially aliasing everything.
  const BitSet &regPointsTo(const Function *F, unsigned Reg) const;

  /// Points-to set of the values stored in location \p Loc.
  const BitSet &contents(unsigned Loc) const { return Contents[Loc]; }

  /// Points-to set of an address operand (Reg, Global or immediate).
  /// Immediate addresses yield the empty ("unknown") set.
  BitSet operandPointsTo(const Function *F, const Operand &O) const;

  /// Conservative may-alias query between two address operands.
  bool mayAlias(const Function *FA, const Operand &A, const Function *FB,
                const Operand &B) const;

private:
  void addConstraintsAndSolve(Module &M, const CallGraph &CG);

  std::vector<AbstractLocation> Locations;
  // Per function (by module index), per register.
  std::vector<std::vector<BitSet>> RegSets;
  std::vector<BitSet> Contents;
  // Per function: points-to of its return value.
  std::vector<BitSet> ReturnSets;
  const CallGraph &CG;
  BitSet Empty;
};

/// Which abstract locations each function may read or write, transitively
/// through calls. Used to model calls as memory accesses in the dependence
/// analysis (calls that are not inlined by Step 5 remain opaque accesses).
class MemEffects {
public:
  MemEffects(Module &M, const CallGraph &CG, const PointsToAnalysis &PT);

  const BitSet &mayRead(const Function *F) const { return Reads[Index(F)]; }
  const BitSet &mayWrite(const Function *F) const { return Writes[Index(F)]; }
  /// True if the function may access an address the analysis cannot map to
  /// any abstract location (e.g. a computed immediate address).
  bool readsUnknown(const Function *F) const { return RUnknown[Index(F)]; }
  bool writesUnknown(const Function *F) const { return WUnknown[Index(F)]; }

private:
  unsigned Index(const Function *F) const { return CG.indexOf(F); }

  const CallGraph &CG;
  std::vector<BitSet> Reads, Writes;
  std::vector<bool> RUnknown, WUnknown;
};

} // namespace helix

#endif // HELIX_ANALYSIS_POINTSTO_H
