#include "analysis/ValueRange.h"

#include "analysis/LoopVars.h"

#include <cassert>
#include <numeric>

using namespace helix;

namespace {

constexpr int64_t Inf = INT64_MAX;
constexpr int64_t NegInf = INT64_MIN;

/// Mathematical residue of \p V in [0, M) for M >= 2; handles moduli above
/// INT64_MAX with unsigned arithmetic.
uint64_t mathMod(int64_t V, uint64_t M) {
  if (V >= 0)
    return uint64_t(V) % M;
  // -V as uint64 avoids overflow at INT64_MIN.
  uint64_t Neg = uint64_t(0) - uint64_t(V);
  uint64_t R = Neg % M;
  return R == 0 ? 0 : M - R;
}

/// Largest power-of-two divisor of \p M (M >= 1).
uint64_t pow2Part(uint64_t M) { return M & (uint64_t(0) - M); }

/// Residues mod 2^64 survive the runtime's wraparound only for power-of-two
/// moduli, so a fact whose interval no longer bounds the value (an infinite
/// end) must shed the non-power-of-two part of its congruence.
void normalizeForWrap(ValueFact &F) {
  if (F.Bottom || F.Mod == 0)
    return;
  if (F.Lo != NegInf && F.Hi != Inf)
    return;
  uint64_t M = pow2Part(F.Mod);
  if (M <= 1) {
    F.Mod = 1;
    F.Rem = 0;
    return;
  }
  F.Mod = M;
  F.Rem = int64_t(mathMod(F.Rem, M)); // < M <= 2^63, fits
}

/// Clamps a (Mod, Rem) pair into representable form.
void setCongruence(ValueFact &F, uint64_t Mod, int64_t Rem) {
  if (Mod == 0) {
    F.Mod = 0;
    F.Rem = Rem;
    return;
  }
  if (Mod == 1 || Mod > uint64_t(INT64_MAX)) {
    F.Mod = 1;
    F.Rem = 0;
    return;
  }
  F.Mod = Mod;
  F.Rem = int64_t(mathMod(Rem, Mod));
}

bool addOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}
bool subOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_sub_overflow(A, B, &Out);
}
bool mulOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

} // namespace

//===----------------------------------------------------------------------===//
// ValueFact lattice operations
//===----------------------------------------------------------------------===//

ValueFact ValueFact::join(const ValueFact &A, const ValueFact &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  if (!A.sameBase(B))
    return top();
  ValueFact R;
  R.Bottom = false;
  R.BaseKind = A.BaseKind;
  R.BaseId = A.BaseId;
  R.Lo = std::min(A.Lo, B.Lo);
  R.Hi = std::max(A.Hi, B.Hi);
  // gcd congruence join: the residues stay congruent modulo every common
  // divisor of both moduli and the residue difference.
  if (A.Mod == 0 && B.Mod == 0 && A.Rem == B.Rem) {
    R.Mod = 0;
    R.Rem = A.Rem;
  } else {
    uint64_t DiffMag = A.Rem >= B.Rem
                           ? uint64_t(A.Rem) - uint64_t(B.Rem)
                           : uint64_t(B.Rem) - uint64_t(A.Rem);
    uint64_t G = std::gcd(std::gcd(A.Mod, B.Mod), DiffMag);
    setCongruence(R, G == 0 ? 1 : G, A.Rem);
  }
  normalizeForWrap(R);
  return R;
}

ValueFact ValueFact::widen(const ValueFact &Old, const ValueFact &New,
                           int StrideDir) {
  if (Old.Bottom)
    return New;
  if (New.Bottom)
    return Old;
  ValueFact J = join(Old, New);
  if (J == Old)
    return Old;
  if (J.BaseKind != Old.BaseKind || J.BaseId != Old.BaseId)
    return J; // base already demoted; nothing finer to protect
  // Bounds that moved since the last visit jump to infinity, except in the
  // direction a known induction stride cannot move.
  if (J.Lo < Old.Lo && StrideDir <= 0)
    J.Lo = NegInf;
  if (J.Hi > Old.Hi && StrideDir >= 0)
    J.Hi = Inf;
  normalizeForWrap(J);
  return J;
}

ValueFact ValueFact::add(const ValueFact &A, const ValueFact &B) {
  if (A.Bottom || B.Bottom)
    return bottom();
  ValueFact R;
  R.Bottom = false;
  // Base combination: at most one side may carry a base.
  if (A.BaseKind != Base::None && B.BaseKind != Base::None)
    return top();
  R.BaseKind = A.BaseKind != Base::None ? A.BaseKind : B.BaseKind;
  R.BaseId = A.BaseKind != Base::None ? A.BaseId : B.BaseId;
  // Interval, treating the sentinels as infinities.
  if (A.Lo == NegInf || B.Lo == NegInf)
    R.Lo = NegInf;
  else if (addOverflows(A.Lo, B.Lo, R.Lo))
    return top();
  if (A.Hi == Inf || B.Hi == Inf)
    R.Hi = Inf;
  else if (addOverflows(A.Hi, B.Hi, R.Hi))
    return top();
  // Congruence.
  if (A.Mod == 0 && B.Mod == 0) {
    int64_t Sum;
    if (addOverflows(A.Rem, B.Rem, Sum))
      return top();
    R.Mod = 0;
    R.Rem = Sum;
  } else {
    uint64_t G = A.Mod == 0 ? B.Mod : B.Mod == 0 ? A.Mod
                                                 : std::gcd(A.Mod, B.Mod);
    int64_t Sum;
    if (G <= 1 || addOverflows(A.Rem, B.Rem, Sum))
      setCongruence(R, 1, 0);
    else
      setCongruence(R, G, Sum);
  }
  normalizeForWrap(R);
  return R;
}

ValueFact ValueFact::sub(const ValueFact &A, const ValueFact &B) {
  if (A.Bottom || B.Bottom)
    return bottom();
  ValueFact R;
  R.Bottom = false;
  if (B.BaseKind == Base::None) {
    R.BaseKind = A.BaseKind;
    R.BaseId = A.BaseId;
  } else if (A.sameBase(B)) {
    R.BaseKind = Base::None; // pointer difference: bases cancel
    R.BaseId = 0;
  } else {
    return top();
  }
  if (A.Lo == NegInf || B.Hi == Inf)
    R.Lo = NegInf;
  else if (subOverflows(A.Lo, B.Hi, R.Lo))
    return top();
  if (A.Hi == Inf || B.Lo == NegInf)
    R.Hi = Inf;
  else if (subOverflows(A.Hi, B.Lo, R.Hi))
    return top();
  if (A.Mod == 0 && B.Mod == 0) {
    int64_t Diff;
    if (subOverflows(A.Rem, B.Rem, Diff))
      return top();
    R.Mod = 0;
    R.Rem = Diff;
  } else {
    uint64_t G = A.Mod == 0 ? B.Mod : B.Mod == 0 ? A.Mod
                                                 : std::gcd(A.Mod, B.Mod);
    int64_t Diff;
    if (G <= 1 || subOverflows(A.Rem, B.Rem, Diff))
      setCongruence(R, 1, 0);
    else
      setCongruence(R, G, Diff);
  }
  normalizeForWrap(R);
  return R;
}

ValueFact ValueFact::mul(const ValueFact &A, const ValueFact &B) {
  if (A.Bottom || B.Bottom)
    return bottom();
  if (A.BaseKind != Base::None || B.BaseKind != Base::None)
    return top(); // scaling a pointer discards the base relationship
  // Only constant * fact keeps structure; anything else goes to top.
  const ValueFact *C = A.isConstant() ? &A : B.isConstant() ? &B : nullptr;
  const ValueFact *X = C == &A ? &B : &A;
  if (!C)
    return top();
  int64_t K = C->Lo;
  if (K == 0)
    return constant(0);
  ValueFact R;
  R.Bottom = false;
  int64_t P1, P2;
  if (X->Lo == NegInf || X->Hi == Inf) {
    R.Lo = NegInf;
    R.Hi = Inf;
  } else if (mulOverflows(K, X->Lo, P1) || mulOverflows(K, X->Hi, P2)) {
    return top();
  } else {
    R.Lo = std::min(P1, P2);
    R.Hi = std::max(P1, P2);
  }
  if (X->Mod == 0) {
    int64_t Prod;
    if (mulOverflows(K, X->Rem, Prod))
      return top();
    R.Mod = 0;
    R.Rem = Prod;
  } else {
    uint64_t KMag = K >= 0 ? uint64_t(K) : uint64_t(0) - uint64_t(K);
    uint64_t NewMod;
    int64_t NewRem;
    if (__builtin_mul_overflow(KMag, X->Mod, &NewMod) ||
        mulOverflows(K, X->Rem, NewRem))
      setCongruence(R, 1, 0);
    else
      setCongruence(R, NewMod, NewRem);
  }
  normalizeForWrap(R);
  return R;
}

bool ValueFact::disjointOffsets(const ValueFact &A, const ValueFact &B) {
  if (A.Bottom || B.Bottom)
    return true; // vacuous: one side is never executed
  if (A.Hi < B.Lo || B.Hi < A.Lo)
    return true;
  if (A.Mod == 0 && B.Mod == 0)
    return A.Rem != B.Rem;
  uint64_t G = A.Mod == 0 ? B.Mod : B.Mod == 0 ? A.Mod
                                               : std::gcd(A.Mod, B.Mod);
  if (G >= 2)
    return mathMod(A.Rem, G) != mathMod(B.Rem, G);
  return false;
}

//===----------------------------------------------------------------------===//
// ValueRangeAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// Meet for branch refinement: any over-approximation of the intersection
/// is sound, so intervals intersect and the stronger congruence wins.
ValueFact meetFacts(const ValueFact &A, const ValueFact &B) {
  ValueFact R = A;
  R.Lo = std::max(A.Lo, B.Lo);
  R.Hi = std::min(A.Hi, B.Hi);
  if (A.Mod == 1 && B.Mod != 1) {
    R.Mod = B.Mod;
    R.Rem = B.Rem;
  }
  return R;
}

bool isIntCmp(Opcode Op) {
  return Op == Opcode::CmpEQ || Op == Opcode::CmpNE || Op == Opcode::CmpLT ||
         Op == Opcode::CmpLE || Op == Opcode::CmpGT || Op == Opcode::CmpGE;
}

} // namespace

ValueRangeAnalysis::ValueRangeAnalysis(Function *F, const CFGInfo &CFG,
                                       const DominatorTree &DT,
                                       const LoopInfo &LI)
    : F(F), CFG(CFG), NumRegs(F->numRegs()) {
  EntryEnv.resize(F->numBlockIds());
  HeaderStrideDir.resize(F->numBlockIds());

  // Induction-variable stride directions per header, for directed widening.
  for (unsigned I = 0, E = LI.numLoops(); I != E; ++I) {
    Loop *L = LI.loop(I);
    std::vector<int8_t> &Dir = HeaderStrideDir[L->header()->id()];
    if (Dir.empty())
      Dir.assign(NumRegs, 0);
    LoopVarAnalysis Vars(F, L, DT);
    for (const InductionVar &IV : Vars.inductionVars())
      if (IV.Reg < NumRegs && IV.Stride != 0)
        Dir[IV.Reg] = IV.Stride > 0 ? 1 : -1;
  }

  const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
  if (RPO.empty())
    return;

  // Directed widening gets a few sweeps to look for stable bounds; after
  // FullWidenSweep every moving bound jumps to infinity, which caps the
  // chain. MaxSweeps is a safety net (fall back to all-top, still sound).
  constexpr unsigned FullWidenSweep = 6;
  constexpr unsigned MaxSweeps = 40;

  std::vector<unsigned> Visits(F->numBlockIds(), 0);
  bool Changed = true;
  while (Changed && Sweeps < MaxSweeps) {
    ++Sweeps;
    Changed = false;
    for (BasicBlock *BB : RPO) {
      Env In;
      if (BB == RPO.front()) {
        In.assign(NumRegs, ValueFact::top());
      } else {
        In.assign(NumRegs, ValueFact::bottom());
        for (BasicBlock *P : CFG.predecessors(BB)) {
          if (!CFG.isReachable(P) || EntryEnv[P->id()].empty())
            continue; // back edge not yet computed contributes bottom
          Env Out = EntryEnv[P->id()];
          for (Instruction *I : *P)
            applyInstr(Out, I);
          refineEdge(Out, P, BB);
          for (unsigned R = 0; R != NumRegs; ++R)
            In[R] = ValueFact::join(In[R], Out[R]);
        }
      }
      Env &Cur = EntryEnv[BB->id()];
      const std::vector<int8_t> &Dir = HeaderStrideDir[BB->id()];
      bool IsHeader = !Dir.empty();
      if (Cur.empty()) {
        Cur = std::move(In);
        Changed = true;
      } else if (IsHeader && Visits[BB->id()] >= 1) {
        for (unsigned R = 0; R != NumRegs; ++R) {
          int SD = Sweeps >= FullWidenSweep ? 0 : int(Dir[R]);
          ValueFact W = ValueFact::widen(Cur[R], In[R], SD);
          if (W != Cur[R]) {
            Cur[R] = W;
            Changed = true;
          }
        }
      } else {
        for (unsigned R = 0; R != NumRegs; ++R) {
          ValueFact J = ValueFact::join(Cur[R], In[R]);
          if (J != Cur[R]) {
            Cur[R] = J;
            Changed = true;
          }
        }
      }
      ++Visits[BB->id()];
    }
  }
  if (Changed) {
    // Did not converge within the sweep budget: give up soundly.
    for (BasicBlock *BB : RPO)
      EntryEnv[BB->id()].assign(NumRegs, ValueFact::top());
  }
}

ValueFact ValueRangeAnalysis::evalOperand(const Env &E,
                                          const Operand &O) const {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    return O.regId() < E.size() ? E[O.regId()] : ValueFact::top();
  case Operand::Kind::ImmInt:
    return ValueFact::constant(O.intValue());
  case Operand::Kind::ImmFloat:
    return ValueFact::top();
  case Operand::Kind::Global:
    return ValueFact::baseOnly(ValueFact::Base::Global, O.globalIndex());
  }
  return ValueFact::top();
}

void ValueRangeAnalysis::killBaseRefs(Env &E, unsigned Reg) const {
  for (ValueFact &F2 : E)
    if (!F2.Bottom && F2.BaseKind == ValueFact::Base::Reg && F2.BaseId == Reg)
      F2 = ValueFact::top();
}

void ValueRangeAnalysis::applyInstr(Env &E, const Instruction *I) const {
  if (!I->hasDest())
    return;
  unsigned Dst = I->dest();
  if (Dst >= E.size())
    return;
  ValueFact New = ValueFact::top();
  auto Op = [&](unsigned Idx) { return evalOperand(E, I->operand(Idx)); };
  switch (I->opcode()) {
  case Opcode::Mov:
    New = Op(0);
    break;
  case Opcode::Add:
    New = ValueFact::add(Op(0), Op(1));
    break;
  case Opcode::Sub:
    New = ValueFact::sub(Op(0), Op(1));
    break;
  case Opcode::Mul:
    New = ValueFact::mul(Op(0), Op(1));
    break;
  case Opcode::Shl: {
    ValueFact B = Op(1);
    if (B.isConstant() && B.Lo >= 0 && B.Lo < 63)
      New = ValueFact::mul(Op(0), ValueFact::constant(int64_t(1) << B.Lo));
    break;
  }
  case Opcode::Div: {
    ValueFact A = Op(0), B = Op(1);
    if (B.isConstant() && B.Lo > 0 && A.BaseKind == ValueFact::Base::None &&
        !A.Bottom && A.Lo != NegInf && A.Hi != Inf) {
      New.Bottom = false;
      New.Lo = A.Lo / B.Lo; // trunc division is monotone for B.Lo > 0
      New.Hi = A.Hi / B.Lo;
      New.Mod = 1;
      New.Rem = 0;
      if (New.Lo == New.Hi) {
        New.Mod = 0;
        New.Rem = New.Lo;
      }
    }
    break;
  }
  case Opcode::Rem: {
    ValueFact A = Op(0), B = Op(1);
    if (B.isConstant() && B.Lo > 0 && A.BaseKind == ValueFact::Base::None &&
        !A.Bottom) {
      New.Bottom = false;
      New.Lo = A.Lo >= 0 ? 0 : -(B.Lo - 1);
      New.Hi = B.Lo - 1;
      New.Mod = 1;
      New.Rem = 0;
      // If the divisor divides the dividend's modulus and the dividend is
      // non-negative, the remainder is exactly Rem mod divisor.
      if (A.Lo >= 0 && A.Mod % uint64_t(B.Lo) == 0) {
        New.Mod = 0;
        New.Rem = int64_t(mathMod(A.Rem, uint64_t(B.Lo)));
        New.Lo = New.Hi = New.Rem;
      }
    }
    break;
  }
  case Opcode::And: {
    ValueFact A = Op(0), B = Op(1);
    const ValueFact *Mask =
        A.isConstant() && A.Lo >= 0 ? &A : B.isConstant() && B.Lo >= 0 ? &B
                                                                       : nullptr;
    if (Mask) {
      const ValueFact &X = Mask == &A ? B : A;
      if (X.isConstant()) {
        New = ValueFact::constant(X.Lo & Mask->Lo);
      } else {
        New.Bottom = false;
        New.Lo = 0;
        New.Hi = Mask->Lo;
        New.Mod = 1;
        New.Rem = 0;
      }
    }
    break;
  }
  case Opcode::Or: {
    ValueFact A = Op(0), B = Op(1);
    if (A.isConstant() && B.isConstant())
      New = ValueFact::constant(A.Lo | B.Lo);
    break;
  }
  case Opcode::Xor: {
    ValueFact A = Op(0), B = Op(1);
    if (A.isConstant() && B.isConstant())
      New = ValueFact::constant(A.Lo ^ B.Lo);
    break;
  }
  case Opcode::Shr: {
    ValueFact A = Op(0), B = Op(1);
    if (A.isConstant() && B.isConstant() && B.Lo >= 0 && B.Lo < 64)
      New = ValueFact::constant(int64_t(uint64_t(A.Lo) >> B.Lo));
    break;
  }
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE: {
    ValueFact A = Op(0), B = Op(1);
    int Decided = -1;
    if (!A.Bottom && !B.Bottom && A.sameBase(B)) {
      bool AlwaysLT = A.Hi != Inf && B.Lo != NegInf && A.Hi < B.Lo;
      bool AlwaysGE = A.Lo >= B.Hi && A.Lo != NegInf && B.Hi != Inf;
      bool AlwaysLE = A.Hi <= B.Lo && A.Hi != Inf && B.Lo != NegInf;
      bool AlwaysGT = A.Lo != NegInf && B.Hi != Inf && A.Lo > B.Hi;
      bool NeverEQ = ValueFact::disjointOffsets(A, B);
      bool AlwaysEQ = A.isConstant() && B.isConstant() && A.Lo == B.Lo &&
                      A.BaseKind == ValueFact::Base::None;
      switch (I->opcode()) {
      case Opcode::CmpEQ:
        Decided = AlwaysEQ ? 1 : NeverEQ ? 0 : -1;
        break;
      case Opcode::CmpNE:
        Decided = AlwaysEQ ? 0 : NeverEQ ? 1 : -1;
        break;
      case Opcode::CmpLT:
        Decided = AlwaysLT ? 1 : AlwaysGE ? 0 : -1;
        break;
      case Opcode::CmpLE:
        Decided = AlwaysLE ? 1 : AlwaysGT ? 0 : -1;
        break;
      case Opcode::CmpGT:
        Decided = AlwaysGT ? 1 : AlwaysLE ? 0 : -1;
        break;
      case Opcode::CmpGE:
        Decided = AlwaysGE ? 1 : AlwaysLT ? 0 : -1;
        break;
      default:
        break;
      }
    }
    if (Decided >= 0) {
      New = ValueFact::constant(Decided);
    } else {
      New.Bottom = false;
      New.Lo = 0;
      New.Hi = 1;
      New.Mod = 1;
      New.Rem = 0;
    }
    break;
  }
  case Opcode::Load:
  case Opcode::Call:
  case Opcode::Alloca:
  case Opcode::HeapAlloc:
    // Opaque definition: the result becomes its own symbol, valid until
    // this register's next definition (the kill rule below).
    New = ValueFact::baseOnly(ValueFact::Base::Reg, Dst);
    break;
  default:
    break; // floating point, conversions: top
  }
  killBaseRefs(E, Dst);
  E[Dst] = New;
}

void ValueRangeAnalysis::refineEdge(Env &E, const BasicBlock *Pred,
                                    const BasicBlock *Succ) const {
  const Instruction *T = Pred->terminator();
  if (!T || T->opcode() != Opcode::CondBr || T->target1() == T->target2())
    return;
  if (T->numOperands() < 1 || !T->operand(0).isReg())
    return;
  unsigned CondReg = T->operand(0).regId();
  // Reaching definition of the condition inside this block.
  const Instruction *Cmp = nullptr;
  unsigned CmpIdx = 0;
  for (unsigned Idx = Pred->size(); Idx-- > 0;) {
    const Instruction *I = Pred->instr(Idx);
    if (I != T && I->hasDest() && I->dest() == CondReg) {
      Cmp = I;
      CmpIdx = Idx;
      break;
    }
  }
  if (!Cmp || !isIntCmp(Cmp->opcode()) || Cmp->numOperands() < 2)
    return;
  bool TrueEdge = Succ == T->target1();

  // Normalize to LT/LE/EQ/NE over (X, Y), flipping for the false edge.
  Opcode Op = Cmp->opcode();
  Operand X = Cmp->operand(0), Y = Cmp->operand(1);
  if (!TrueEdge) {
    switch (Op) {
    case Opcode::CmpEQ:
      Op = Opcode::CmpNE;
      break;
    case Opcode::CmpNE:
      Op = Opcode::CmpEQ;
      break;
    case Opcode::CmpLT:
      Op = Opcode::CmpGE;
      break;
    case Opcode::CmpLE:
      Op = Opcode::CmpGT;
      break;
    case Opcode::CmpGT:
      Op = Opcode::CmpLE;
      break;
    case Opcode::CmpGE:
      Op = Opcode::CmpLT;
      break;
    default:
      return;
    }
  }
  if (Op == Opcode::CmpGT) { // X > Y  <=>  Y < X
    std::swap(X, Y);
    Op = Opcode::CmpLT;
  } else if (Op == Opcode::CmpGE) { // X >= Y  <=>  Y <= X
    std::swap(X, Y);
    Op = Opcode::CmpLE;
  }

  // The constraint speaks about the values X and Y held *at the compare*;
  // a redefinition between the compare and the branch invalidates it.
  auto RedefinedAfterCmp = [&](const Operand &O) {
    if (!O.isReg())
      return false;
    for (unsigned Idx = CmpIdx + 1; Idx < Pred->size(); ++Idx) {
      const Instruction *I = Pred->instr(Idx);
      if (I->hasDest() && I->dest() == O.regId())
        return true;
    }
    return false;
  };
  if (RedefinedAfterCmp(X) || RedefinedAfterCmp(Y))
    return;

  ValueFact FX = evalOperand(E, X);
  ValueFact FY = evalOperand(E, Y);
  if (FX.Bottom || FY.Bottom || !FX.sameBase(FY))
    return;

  auto Refine = [&](const Operand &O, const ValueFact &NewF) {
    if (O.isReg() && O.regId() < E.size())
      E[O.regId()] = NewF;
  };

  switch (Op) {
  case Opcode::CmpLT: // X < Y
    if (FY.Hi != Inf && FY.Hi != NegInf) {
      ValueFact R = FX;
      R.Hi = std::min(FX.Hi, FY.Hi - 1);
      Refine(X, R);
    }
    if (FX.Lo != NegInf && FX.Lo != Inf) {
      ValueFact R = FY;
      R.Lo = std::max(FY.Lo, FX.Lo + 1);
      Refine(Y, R);
    }
    break;
  case Opcode::CmpLE: // X <= Y
    if (FY.Hi != Inf) {
      ValueFact R = FX;
      R.Hi = std::min(FX.Hi, FY.Hi);
      Refine(X, R);
    }
    if (FX.Lo != NegInf) {
      ValueFact R = FY;
      R.Lo = std::max(FY.Lo, FX.Lo);
      Refine(Y, R);
    }
    break;
  case Opcode::CmpEQ: // X == Y
    Refine(X, meetFacts(FX, FY));
    Refine(Y, meetFacts(FY, FX));
    break;
  case Opcode::CmpNE: // X != Y: trim matching endpoints
    if (FY.isConstant()) {
      ValueFact R = FX;
      if (R.Lo == FY.Lo && R.Lo != Inf)
        R.Lo += 1;
      if (R.Hi == FY.Lo && R.Hi != NegInf)
        R.Hi -= 1;
      Refine(X, R);
    }
    if (FX.isConstant()) {
      ValueFact R = FY;
      if (R.Lo == FX.Lo && R.Lo != Inf)
        R.Lo += 1;
      if (R.Hi == FX.Lo && R.Hi != NegInf)
        R.Hi -= 1;
      Refine(Y, R);
    }
    break;
  default:
    break;
  }
}

ValueFact ValueRangeAnalysis::factFor(const Instruction *I,
                                      const Operand &O) const {
  const BasicBlock *BB = I->parent();
  assert(BB && BB->parent() == F && "instruction outside analyzed function");
  if (BB->id() >= EntryEnv.size() || EntryEnv[BB->id()].empty())
    return ValueFact::top(); // unreachable block: no claims
  Env E = EntryEnv[BB->id()];
  for (const Instruction *J : *BB) {
    if (J == I)
      break;
    applyInstr(E, J);
  }
  return evalOperand(E, O);
}

ValueFact ValueRangeAnalysis::factAtEntry(const BasicBlock *BB,
                                          unsigned Reg) const {
  if (BB->id() >= EntryEnv.size() || EntryEnv[BB->id()].empty() ||
      Reg >= EntryEnv[BB->id()].size())
    return ValueFact::top();
  return EntryEnv[BB->id()][Reg];
}
