//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).
/// Used for natural-loop detection and by the HELIX normalization step.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_DOMINATORS_H
#define HELIX_ANALYSIS_DOMINATORS_H

#include "ir/CFG.h"

#include <vector>

namespace helix {

/// Dominator tree over the reachable blocks of a function.
class DominatorTree {
public:
  DominatorTree(Function *F, const CFGInfo &CFG);

  /// Immediate dominator; null for the entry block and unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const { return IDom[BB->id()]; }

  /// \returns true if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

private:
  Function *F;
  std::vector<BasicBlock *> IDom; // indexed by block id
  std::vector<unsigned> Depth;    // depth in the dominator tree
};

} // namespace helix

#endif // HELIX_ANALYSIS_DOMINATORS_H
