#include "analysis/DataDependence.h"

#include "analysis/RegUse.h"
#include "analysis/ValueRange.h"
#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

namespace {

/// One memory access inside the loop: a load, a store, or a call (which
/// accesses the location sets in its callee's memory-effect summary).
struct MemAccess {
  Instruction *I;
  bool IsWrite;
  bool IsCall;
};

/// Result of the pairwise dependence test.
enum class PairClass { Independent, IntraOnly, Carried };

bool sameBase(const AffineAddr &A, const AffineAddr &B) {
  return A.Base == B.Base && A.BaseId == B.BaseId &&
         A.Base != AffineAddr::BaseKind::None;
}

/// Strided-access test between two affine addresses of the same loop.
/// Falls back to Carried when nothing can be proven.
PairClass classifyAffine(const AffineAddr &A, const AffineAddr &B) {
  if (!A.Valid || !B.Valid || !sameBase(A, B))
    return PairClass::Carried;
  // Same induction variable (or none on both sides).
  if (A.IVReg != B.IVReg)
    return PairClass::Carried;
  if (A.IVReg == NoReg) {
    // Both constants relative to the base.
    return A.Offset == B.Offset ? PairClass::Carried : PairClass::Independent;
  }
  if (A.Scale != B.Scale || A.Scale == 0)
    return PairClass::Carried;
  int64_t Delta = A.Offset - B.Offset;
  // Residue is invariant under shifting either access by whole iterations,
  // so this divisibility test is robust to where the IV update sits.
  if (Delta % A.Scale != 0)
    return PairClass::Independent;
  return PairClass::Carried;
}

} // namespace

LoopDependenceAnalysis::LoopDependenceAnalysis(
    Function *F, Loop *L, const CFGInfo &CFG, const DominatorTree &DT,
    const Liveness &LV, const LoopVarAnalysis &Vars,
    const PointsToAnalysis &PT, const MemEffects &ME,
    const ValueRangeAnalysis *VR) {
  (void)DT;
  collectMemoryDeps(F, L, Vars, PT, ME, VR);
  collectRegisterDeps(F, L, CFG, LV, Vars);
  for (unsigned I = 0, E = unsigned(DData.size()); I != E; ++I) {
    DData[I].Id = I;
    // Endpoint vectors are deduplicated at construction, preserving
    // first-appearance order (allEndpoints then never sees duplicates).
    auto Dedupe = [](std::vector<Instruction *> &V) {
      std::vector<Instruction *> Seen;
      Seen.reserve(V.size());
      std::vector<Instruction *> Out;
      Out.reserve(V.size());
      for (Instruction *I2 : V) {
        auto It = std::lower_bound(Seen.begin(), Seen.end(), I2);
        if (It != Seen.end() && *It == I2)
          continue;
        Seen.insert(It, I2);
        Out.push_back(I2);
      }
      V = std::move(Out);
    };
    Dedupe(DData[I].Srcs);
    Dedupe(DData[I].Dsts);
  }
}

void LoopDependenceAnalysis::collectMemoryDeps(Function *F, Loop *L,
                                               const LoopVarAnalysis &Vars,
                                               const PointsToAnalysis &PT,
                                               const MemEffects &ME,
                                               const ValueRangeAnalysis *VR) {
  std::vector<MemAccess> Accesses;
  for (BasicBlock *BB : L->blocks())
    for (Instruction *I : *BB) {
      if (I->opcode() == Opcode::Load)
        Accesses.push_back({I, false, false});
      else if (I->opcode() == Opcode::Store)
        Accesses.push_back({I, true, false});
      else if (I->isCall()) {
        const Function *Callee = I->callee();
        bool Reads = ME.readsUnknown(Callee) || !ME.mayRead(Callee).empty();
        bool Writes = ME.writesUnknown(Callee) || !ME.mayWrite(Callee).empty();
        if (Reads || Writes)
          Accesses.push_back({I, Writes, true});
      }
    }

  auto AddrOperand = [](const MemAccess &A) -> const Operand & {
    return A.I->opcode() == Opcode::Load ? A.I->operand(0) : A.I->operand(1);
  };

  // May the two accesses touch a common location in *some* iteration pair?
  auto MayTouchCommon = [&](const MemAccess &A, const MemAccess &B) {
    if (A.IsCall || B.IsCall) {
      // Intersect one side's effect summary with the other's points-to.
      auto CallVsPlain = [&](const MemAccess &Call, const MemAccess &Plain) {
        const Function *Callee = Call.I->callee();
        if (ME.readsUnknown(Callee) || ME.writesUnknown(Callee))
          return true;
        BitSet Touched = ME.mayRead(Callee);
        Touched.unionWith(ME.mayWrite(Callee));
        BitSet Other = PT.operandPointsTo(F, AddrOperand(Plain));
        if (Other.empty())
          return true;
        return Touched.intersects(Other);
      };
      if (A.IsCall && B.IsCall) {
        const Function *CA = A.I->callee(), *CB = B.I->callee();
        if (ME.readsUnknown(CA) || ME.writesUnknown(CA) ||
            ME.readsUnknown(CB) || ME.writesUnknown(CB))
          return true;
        BitSet TA = ME.mayRead(CA);
        TA.unionWith(ME.mayWrite(CA));
        BitSet TB = ME.mayRead(CB);
        TB.unionWith(ME.mayWrite(CB));
        return TA.intersects(TB);
      }
      return A.IsCall ? CallVsPlain(A, B) : CallVsPlain(B, A);
    }
    return PT.mayAlias(F, AddrOperand(A), F, AddrOperand(B));
  };

  for (unsigned I = 0; I != Accesses.size(); ++I) {
    for (unsigned J = I; J != Accesses.size(); ++J) {
      const MemAccess &A = Accesses[I];
      const MemAccess &B = Accesses[J];
      if (I == J && !A.IsCall)
        if (!A.IsWrite)
          continue; // a lone load cannot depend on itself
      if (!A.IsWrite && !B.IsWrite)
        continue; // read-read pairs carry no dependence
      if (!MayTouchCommon(A, B))
        continue;
      ++Stats.NumAliasPairs;

      // Strided refinement (only meaningful for plain load/store pairs).
      PairClass Class = PairClass::Carried;
      if (!A.IsCall && !B.IsCall) {
        const Operand &OA = AddrOperand(A);
        const Operand &OB = AddrOperand(B);
        AffineAddr FA = Vars.affineAddr(OA);
        AffineAddr FB = Vars.affineAddr(OB);
        if (OA.isReg() && OB.isReg() && OA.regId() == OB.regId() &&
            FA.Valid) {
          // Same address register: both accesses see the identical address
          // within an iteration. If the value strides with the induction
          // variable, different iterations touch disjoint addresses and
          // only the (harmless) intra-iteration dependence remains.
          Class = (FA.IVReg != NoReg && FA.Scale != 0)
                      ? PairClass::Independent
                      : PairClass::Carried;
        } else {
          Class = classifyAffine(FA, FB);
        }
      }
      // Value-range refinement, only for pairs the ZIV/SIV tests kept:
      // addresses off the same base whose offset intervals or congruence
      // classes never meet cannot collide in any iteration pair (the
      // fixpoint fact at an access covers every execution of it). A
      // register base is only meaningful across iterations when it is
      // loop-invariant (same runtime value at both endpoints).
      if (Class == PairClass::Carried && !A.IsCall && !B.IsCall && VR) {
        ValueFact FA = VR->factFor(A.I, AddrOperand(A));
        ValueFact FB = VR->factFor(B.I, AddrOperand(B));
        bool BaseUsable =
            FA.sameBase(FB) && (FA.BaseKind != ValueFact::Base::Reg ||
                                Vars.isInvariant(FA.BaseId));
        if (BaseUsable && ValueFact::disjointOffsets(FA, FB)) {
          Class = PairClass::Independent;
          ++Stats.NumPrunedByRange;
        }
      }
      if (Class == PairClass::Independent) {
        --Stats.NumAliasPairs; // proven disjoint after all
        continue;
      }
      ++Stats.NumLoopCarried;

      DataDependence D;
      D.ViaMemory = true;
      D.LoopCarried = true;
      if (A.IsWrite && B.IsWrite)
        D.Kind = DepKind::WAW;
      else
        D.Kind = DepKind::RAW; // one side reads: synchronize as RAW/WAR pair
      D.Srcs = {A.I};
      if (B.I != A.I)
        D.Dsts = {B.I};
      else
        D.Dsts = {A.I};
      DData.push_back(std::move(D));
    }
  }
}

void LoopDependenceAnalysis::collectRegisterDeps(Function *F, Loop *L,
                                                 const CFGInfo &CFG,
                                                 const Liveness &LV,
                                                 const LoopVarAnalysis &Vars) {
  (void)CFG;
  (void)F;
  // A register r carries a loop-level RAW dependence when it is defined in
  // the loop and live into the header (some path from the header uses r
  // before any redefinition). WAW/WAR register dependences are false on
  // HELIX's execution model (private register files) and are discarded.
  const BitSet &HeaderLiveIn = LV.liveIn(L->header());
  HeaderLiveIn.forEach([&](unsigned Reg) {
    const std::vector<Instruction *> &Defs = Vars.defsOf(Reg);
    if (Defs.empty())
      return; // invariant: produced before the loop only
    if (Vars.inductionVar(Reg)) {
      ++Stats.NumExcludedInduction;
      return; // locally computable from the iteration number
    }
    DataDependence D;
    D.ViaMemory = false;
    D.LoopCarried = true;
    D.Kind = DepKind::RAW;
    D.Reg = Reg;
    D.Srcs = Defs;
    for (BasicBlock *BB : L->blocks())
      for (Instruction *I : *BB)
        for (unsigned Used : usedRegs(*I))
          if (Used == Reg) {
            D.Dsts.push_back(I);
            break;
          }
    if (D.Dsts.empty())
      return;
    ++Stats.NumRegCarried;
    DData.push_back(std::move(D));
  });

  // Count the register WAW pairs we deliberately ignored, for Table 1.
  std::map<unsigned, unsigned> DefCount;
  for (BasicBlock *BB : L->blocks())
    for (Instruction *I : *BB)
      if (I->hasDest())
        ++DefCount[I->dest()];
  for (auto &[Reg, Count] : DefCount) {
    (void)Reg;
    if (Count > 1)
      ++Stats.NumExcludedFalse;
  }
}
