//===----------------------------------------------------------------------===//
///
/// \file
/// Caches per-function analyses (CFG, dominators, loops, liveness) and
/// module-wide analyses (call graph, points-to, memory effects) so clients
/// do not recompute them. Invalidate per function after transforming it.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_ANALYSISMANAGER_H
#define HELIX_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/PointsTo.h"

#include <map>
#include <memory>

namespace helix {

/// All per-function structural analyses, built together.
struct FunctionAnalyses {
  explicit FunctionAnalyses(Function *F)
      : CFG(F), DT(F, CFG), LI(F, CFG, DT), LV(F, CFG) {}

  CFGInfo CFG;
  DominatorTree DT;
  LoopInfo LI;
  Liveness LV;
};

/// Lazy per-module analysis cache.
class ModuleAnalyses {
public:
  explicit ModuleAnalyses(Module &M) : M(M) {}

  Module &module() { return M; }

  FunctionAnalyses &on(Function *F) {
    auto It = PerFunction.find(F);
    if (It == PerFunction.end())
      It = PerFunction.emplace(F, std::make_unique<FunctionAnalyses>(F)).first;
    return *It->second;
  }

  /// Drops the cached analyses of \p F after a transformation.
  void invalidate(Function *F) {
    PerFunction.erase(F);
    ++Epoch;
  }

  /// Drops everything, including module-level analyses.
  void invalidateAll() {
    PerFunction.clear();
    CG.reset();
    PT.reset();
    ME.reset();
    ++Epoch;
  }

  // --- Introspection (tests, pass-manager assertions) --------------------
  size_t numCachedFunctionAnalyses() const { return PerFunction.size(); }
  bool isCached(const Function *F) const {
    return PerFunction.count(const_cast<Function *>(F)) != 0;
  }
  bool hasModuleAnalyses() const { return CG || PT || ME; }
  /// Bumped by every invalidation; lets clients assert that a
  /// transformation explicitly invalidated what it touched.
  uint64_t invalidationEpoch() const { return Epoch; }

  CallGraph &callGraph() {
    if (!CG)
      CG = std::make_unique<CallGraph>(M);
    return *CG;
  }

  PointsToAnalysis &pointsTo() {
    if (!PT)
      PT = std::make_unique<PointsToAnalysis>(M, callGraph());
    return *PT;
  }

  MemEffects &memEffects() {
    if (!ME)
      ME = std::make_unique<MemEffects>(M, callGraph(), pointsTo());
    return *ME;
  }

private:
  Module &M;
  std::map<Function *, std::unique_ptr<FunctionAnalyses>> PerFunction;
  uint64_t Epoch = 0;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<MemEffects> ME;
};

} // namespace helix

#endif // HELIX_ANALYSIS_ANALYSISMANAGER_H
