//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy, preservation-aware analysis manager. Each analysis is built
/// on first request through a typed accessor (`AM.get<DominatorTree>(F)`,
/// `AM.get<PointsToAnalysis>()`), caching the result until an invalidation
/// drops it. Invalidation is keyed by what a transformation *preserved*
/// (PreservedAnalyses, see AnalysisKinds.h) and cascades along the real
/// dependency graph: dropping CFG drops the dominator tree, loop info and
/// liveness built from it; dropping the call graph drops points-to and the
/// memory-effect summaries.
///
/// Per-analysis build/hit/invalidate counters make the cache behaviour
/// observable: tests assert that a pass which claims to preserve the
/// dominator tree really never forces a rebuild, and bench_pass_performance
/// reports the counters so preservation regressions show up in CI logs.
///
/// Determinism: per-function state lives in slots assigned in first-use
/// order and is never iterated by key, so no behaviour ever depends on
/// heap layout (the `std::map<Function *, ...>` of the former
/// ModuleAnalyses was address-ordered — the exact nondeterminism class the
/// parallel model-profile work had to root-cause in LoopInfo).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_ANALYSISMANAGER_H
#define HELIX_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/AnalysisKinds.h"
#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/PointsTo.h"
#include "analysis/ValueRange.h"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace helix {

/// Lazy per-module analysis cache with preservation-aware invalidation.
class AnalysisManager {
public:
  explicit AnalysisManager(Module &M) : M(M) {}

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  Module &module() { return M; }

  // --- Typed lazy accessors ----------------------------------------------
  // Function-scoped. Building an analysis first builds (or reuses) the
  // analyses it consumes, so a single get<LoopInfo> may count up to three
  // builds. References stay valid until the analysis is invalidated.

  template <typename T> T &get(Function *F) = delete;

  // Module-scoped.
  template <typename T> T &get() = delete;

  // --- Introspection (tests, pass-manager assertions) --------------------

  template <typename T> bool isCached(const Function *F) const {
    const FnEntry *E = findEntry(F);
    return E && isCachedKind(*E, AnalysisTraits<T>::Kind);
  }
  template <typename T> bool isCached() const {
    return isCachedModuleKind(AnalysisTraits<T>::Kind);
  }

  /// Functions with at least one cached analysis.
  size_t numCachedFunctionAnalyses() const {
    size_t N = 0;
    for (const auto &E : Entries)
      N += E->hasAny();
    return N;
  }
  bool hasModuleAnalyses() const { return CG || PT || ME; }

  /// Bumped by every invalidation; lets clients assert that a
  /// transformation explicitly invalidated what it touched.
  uint64_t invalidationEpoch() const { return Epoch; }

  // --- Invalidation ------------------------------------------------------

  /// Drops every analysis of \p F and every module-wide analysis: the
  /// conservative "F changed arbitrarily" call.
  void invalidate(Function *F) { invalidate(F, PreservedAnalyses::none()); }

  /// Drops the analyses of \p F that \p PA did not preserve, closed over
  /// the dependency graph, plus the non-preserved module-wide analyses
  /// (they read F's instructions). Analyses of other functions survive.
  void invalidate(Function *F, PreservedAnalyses PA);

  /// Drops everything, including module-level analyses.
  void invalidateAll();

  /// Baseline mode for A/B measurements: every invalidate() behaves like
  /// invalidateAll(), i.e. the pre-preservation world where any mutating
  /// pass nuked the whole cache. Counters keep recording, so the win of
  /// the preservation contract is measurable as a build-count delta on
  /// the same workload.
  void setConservativeInvalidation(bool V) { Conservative = V; }
  bool conservativeInvalidation() const { return Conservative; }

  // --- Counters ----------------------------------------------------------

  struct AnalysisStats {
    uint64_t Built = 0;       ///< constructor runs
    uint64_t Hits = 0;        ///< cache returns without building
    uint64_t Invalidated = 0; ///< cached instances dropped
  };
  const AnalysisStats &stats(AnalysisKind K) const {
    return Stats[unsigned(K)];
  }
  /// Snapshot of every kind's counters, named for reports.
  std::vector<AnalysisCounterReport> counterReport() const;

private:
  // One function's analyses. Heap-allocated behind a unique_ptr in
  // Entries, so references stay stable across cache growth.
  struct FnEntry {
    std::unique_ptr<CFGInfo> CFG;
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
    std::unique_ptr<ValueRangeAnalysis> VR;
    std::unique_ptr<Liveness> LV;
    bool hasAny() const { return CFG || DT || LI || VR || LV; }
  };

  static bool isCachedKind(const FnEntry &E, AnalysisKind K) {
    switch (K) {
    case AnalysisKind::CFG:
      return E.CFG != nullptr;
    case AnalysisKind::DomTree:
      return E.DT != nullptr;
    case AnalysisKind::Loops:
      return E.LI != nullptr;
    case AnalysisKind::ValueRange:
      return E.VR != nullptr;
    case AnalysisKind::Liveness:
      return E.LV != nullptr;
    default:
      return false;
    }
  }
  bool isCachedModuleKind(AnalysisKind K) const {
    switch (K) {
    case AnalysisKind::CallGraph:
      return CG != nullptr;
    case AnalysisKind::PointsTo:
      return PT != nullptr;
    case AnalysisKind::MemEffects:
      return ME != nullptr;
    default:
      return false;
    }
  }

  FnEntry &entry(Function *F);
  const FnEntry *findEntry(const Function *F) const {
    auto It = SlotOf.find(F);
    return It == SlotOf.end() ? nullptr : Entries[It->second].get();
  }

  void noteBuilt(AnalysisKind K) { ++Stats[unsigned(K)].Built; }
  void noteHit(AnalysisKind K) { ++Stats[unsigned(K)].Hits; }
  void noteDropped(AnalysisKind K) { ++Stats[unsigned(K)].Invalidated; }

  /// Kinds to drop for a preserved-set: the complement of \p PA closed
  /// over the dependency graph (a kind is dropped when not preserved or
  /// when any kind it consumes is dropped). Returns a bit per kind.
  static unsigned invalidationClosure(PreservedAnalyses PA);

  void dropFunctionKinds(FnEntry &E, unsigned DropMask);
  void dropModuleKinds(unsigned DropMask);

  Module &M;
  /// Iteration-free per-function storage: slots are assigned in first-use
  /// order; the pointer map is only ever used for point lookups. Nothing
  /// here may be iterated in key order.
  std::vector<std::unique_ptr<FnEntry>> Entries;
  std::unordered_map<const Function *, size_t> SlotOf;

  // Module-scoped analyses.
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<MemEffects> ME;

  std::array<AnalysisStats, NumAnalysisKinds> Stats;
  uint64_t Epoch = 0;
  bool Conservative = false;
};

// --- get<> specializations -----------------------------------------------
// The hit path is one cache lookup and one counter bump: the invalidation
// closure guarantees a cached analysis implies its dependencies are valid
// (dropping CFG always drops everything built from it), so dependencies
// are only walked — and counted — on the build path. This matters because
// the profiler queries get<LoopInfo> on every interpreted CFG edge.
// FnEntry references are stable across the nested get<> calls (entries
// live behind unique_ptrs).

template <> inline CFGInfo &AnalysisManager::get<CFGInfo>(Function *F) {
  FnEntry &E = entry(F);
  if (E.CFG) {
    noteHit(AnalysisKind::CFG);
    return *E.CFG;
  }
  E.CFG = std::make_unique<CFGInfo>(F);
  noteBuilt(AnalysisKind::CFG);
  return *E.CFG;
}

template <>
inline DominatorTree &AnalysisManager::get<DominatorTree>(Function *F) {
  FnEntry &E = entry(F);
  if (E.DT) {
    noteHit(AnalysisKind::DomTree);
    return *E.DT;
  }
  CFGInfo &CFG = get<CFGInfo>(F);
  E.DT = std::make_unique<DominatorTree>(F, CFG);
  noteBuilt(AnalysisKind::DomTree);
  return *E.DT;
}

template <> inline LoopInfo &AnalysisManager::get<LoopInfo>(Function *F) {
  FnEntry &E = entry(F);
  if (E.LI) {
    noteHit(AnalysisKind::Loops);
    return *E.LI;
  }
  CFGInfo &CFG = get<CFGInfo>(F);
  DominatorTree &DT = get<DominatorTree>(F);
  E.LI = std::make_unique<LoopInfo>(F, CFG, DT);
  noteBuilt(AnalysisKind::Loops);
  return *E.LI;
}

template <>
inline ValueRangeAnalysis &AnalysisManager::get<ValueRangeAnalysis>(Function *F) {
  FnEntry &E = entry(F);
  if (E.VR) {
    noteHit(AnalysisKind::ValueRange);
    return *E.VR;
  }
  CFGInfo &CFG = get<CFGInfo>(F);
  DominatorTree &DT = get<DominatorTree>(F);
  LoopInfo &LI = get<LoopInfo>(F);
  E.VR = std::make_unique<ValueRangeAnalysis>(F, CFG, DT, LI);
  noteBuilt(AnalysisKind::ValueRange);
  return *E.VR;
}

template <> inline Liveness &AnalysisManager::get<Liveness>(Function *F) {
  FnEntry &E = entry(F);
  if (E.LV) {
    noteHit(AnalysisKind::Liveness);
    return *E.LV;
  }
  CFGInfo &CFG = get<CFGInfo>(F);
  E.LV = std::make_unique<Liveness>(F, CFG);
  noteBuilt(AnalysisKind::Liveness);
  return *E.LV;
}

template <> inline CallGraph &AnalysisManager::get<CallGraph>() {
  if (CG) {
    noteHit(AnalysisKind::CallGraph);
    return *CG;
  }
  CG = std::make_unique<CallGraph>(M);
  noteBuilt(AnalysisKind::CallGraph);
  return *CG;
}

template <> inline PointsToAnalysis &AnalysisManager::get<PointsToAnalysis>() {
  if (PT) {
    noteHit(AnalysisKind::PointsTo);
    return *PT;
  }
  CallGraph &TheCG = get<CallGraph>();
  PT = std::make_unique<PointsToAnalysis>(M, TheCG);
  noteBuilt(AnalysisKind::PointsTo);
  return *PT;
}

template <> inline MemEffects &AnalysisManager::get<MemEffects>() {
  if (ME) {
    noteHit(AnalysisKind::MemEffects);
    return *ME;
  }
  CallGraph &TheCG = get<CallGraph>();
  PointsToAnalysis &ThePT = get<PointsToAnalysis>();
  ME = std::make_unique<MemEffects>(M, TheCG, ThePT);
  noteBuilt(AnalysisKind::MemEffects);
  return *ME;
}

} // namespace helix

#endif // HELIX_ANALYSIS_ANALYSISMANAGER_H
