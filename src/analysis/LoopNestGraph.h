//===----------------------------------------------------------------------===//
///
/// \file
/// The program-wide static loop nesting graph of Section 2.2: the classic
/// per-function loop nesting tree extended across calls. A loop inside a
/// function called from within a loop is a subloop of the caller loop, so
/// the structure is a graph (a function can have multiple callers), not a
/// tree. The *dynamic* loop nesting graph is the profiled subgraph; it is
/// produced by the profiler (src/profile) by filtering these edges.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_LOOPNESTGRAPH_H
#define HELIX_ANALYSIS_LOOPNESTGRAPH_H

#include "analysis/AnalysisManager.h"

#include <string>
#include <vector>

namespace helix {

/// A node of the loop nesting graph: one natural loop of one function.
struct LoopNestNode {
  unsigned Id = 0;
  Function *F = nullptr;
  Loop *L = nullptr;
  /// Children: directly nested loops, plus top-level loops of functions
  /// called from directly inside this loop.
  std::vector<unsigned> Children;
  /// Incoming edge count (0 => root).
  unsigned NumParents = 0;

  std::string name() const;
};

class LoopNestGraph {
public:
  /// Builds the static loop nesting graph of the whole program.
  LoopNestGraph(Module &M, AnalysisManager &AM);

  unsigned numNodes() const { return unsigned(Nodes.size()); }
  const LoopNestNode &node(unsigned Id) const { return Nodes[Id]; }
  LoopNestNode &node(unsigned Id) { return Nodes[Id]; }

  /// Nodes with no parents (outermost loops of the program).
  const std::vector<unsigned> &roots() const { return Roots; }

  /// The node id of loop \p L, or ~0u.
  unsigned nodeFor(const Loop *L) const;

  /// All node ids in an order where parents precede children when the graph
  /// is acyclic (recursion can introduce cycles; members of a cycle appear
  /// in arbitrary relative order).
  std::vector<unsigned> topDownOrder() const;

private:
  std::vector<LoopNestNode> Nodes;
  std::vector<unsigned> Roots;
};

} // namespace helix

#endif // HELIX_ANALYSIS_LOOPNESTGRAPH_H
