#include "analysis/CallGraph.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

unsigned CallGraph::indexOf(const Function *F) const {
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    if (M.function(I) == F)
      return I;
  HELIX_UNREACHABLE("function not in module");
}

CallGraph::CallGraph(Module &M) : M(M) {
  unsigned N = M.numFunctions();
  Sites.resize(N);
  Callees.resize(N);
  Recursive.assign(N, false);

  DenseGraph G(N);
  for (unsigned I = 0; I != N; ++I) {
    Function *F = M.function(I);
    for (BasicBlock *BB : *F)
      for (Instruction *Ins : *BB) {
        if (!Ins->isCall())
          continue;
        Sites[I].push_back(Ins);
        Function *Callee = Ins->callee();
        if (std::find(Callees[I].begin(), Callees[I].end(), Callee) ==
            Callees[I].end()) {
          Callees[I].push_back(Callee);
          G.addEdge(I, indexOf(Callee));
        }
        if (Callee == F)
          Recursive[I] = true;
      }
  }

  SCCResult SCCs = computeSCCs(G);
  for (unsigned I = 0; I != N; ++I)
    if (SCCs.isInCycle(I))
      Recursive[I] = true;

  // Tarjan numbers components in reverse topological order of the
  // condensation, so ascending component id == bottom-up (callees first).
  for (unsigned C = 0; C != SCCs.numComponents(); ++C)
    for (unsigned Member : SCCs.Components[C])
      BottomUp.push_back(M.function(Member));
}
