//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis identity layer shared by the analysis manager and every
/// client that talks *about* analyses without needing their types: the
/// AnalysisKind enumeration, the PreservedAnalyses set a loop pass returns,
/// and the per-analysis counter report surfaced through PipelineReport and
/// the fuzz campaign summary.
///
/// Dependency graph (an analysis is invalid whenever one of the analyses
/// it consumes is):
///
///   CFG ──────┬─> DominatorTree ──> LoopInfo ──> ValueRange
///             └─> Liveness
///   CallGraph ──> PointsTo ──> MemEffects
///
/// The first five are per-function; the last three are module-wide and
/// additionally read every function's instructions, so a function mutation
/// invalidates them unless the mutating pass explicitly preserves them.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_ANALYSISKINDS_H
#define HELIX_ANALYSIS_ANALYSISKINDS_H

#include <cstdint>
#include <string>
#include <vector>

namespace helix {

class CFGInfo;
class DominatorTree;
class LoopInfo;
class ValueRangeAnalysis;
class Liveness;
class CallGraph;
class PointsToAnalysis;
class MemEffects;

/// Every analysis the manager knows how to build, in dependency order
/// (an analysis only consumes analyses with a smaller kind value).
enum class AnalysisKind : uint8_t {
  CFG,        ///< CFGInfo — per function
  DomTree,    ///< DominatorTree — per function, consumes CFG
  Loops,      ///< LoopInfo — per function, consumes CFG + DomTree
  ValueRange, ///< ValueRangeAnalysis — per function, consumes CFG+DT+Loops
  Liveness,   ///< Liveness — per function, consumes CFG
  CallGraph,  ///< CallGraph — module-wide
  PointsTo,   ///< PointsToAnalysis — module-wide, consumes CallGraph
  MemEffects  ///< MemEffects — module-wide, consumes CallGraph + PointsTo
};

inline constexpr unsigned NumAnalysisKinds = 8;

/// Stable short name ("cfg", "dom-tree", ...) for reports and logs.
const char *analysisKindName(AnalysisKind K);

/// True for the per-function analyses (CFG..Liveness, incl. ValueRange).
inline constexpr bool isFunctionAnalysis(AnalysisKind K) {
  return unsigned(K) < unsigned(AnalysisKind::CallGraph);
}

/// Maps analysis result types to their kind; specialized below. Clients
/// use it through AnalysisManager::get<T> and PreservedAnalyses::preserve<T>.
template <typename T> struct AnalysisTraits;
// clang-format off
template <> struct AnalysisTraits<CFGInfo>         { static constexpr AnalysisKind Kind = AnalysisKind::CFG; };
template <> struct AnalysisTraits<DominatorTree>   { static constexpr AnalysisKind Kind = AnalysisKind::DomTree; };
template <> struct AnalysisTraits<LoopInfo>        { static constexpr AnalysisKind Kind = AnalysisKind::Loops; };
template <> struct AnalysisTraits<ValueRangeAnalysis> { static constexpr AnalysisKind Kind = AnalysisKind::ValueRange; };
template <> struct AnalysisTraits<Liveness>        { static constexpr AnalysisKind Kind = AnalysisKind::Liveness; };
template <> struct AnalysisTraits<CallGraph>       { static constexpr AnalysisKind Kind = AnalysisKind::CallGraph; };
template <> struct AnalysisTraits<PointsToAnalysis>{ static constexpr AnalysisKind Kind = AnalysisKind::PointsTo; };
template <> struct AnalysisTraits<MemEffects>      { static constexpr AnalysisKind Kind = AnalysisKind::MemEffects; };
// clang-format on

/// The set of analyses a transformation left intact. A loop pass returns
/// one of these; the manager drops exactly the complement (closed over the
/// dependency graph, so preserving LoopInfo while abandoning its CFG input
/// still drops LoopInfo).
class PreservedAnalyses {
public:
  /// Nothing was touched: the pass did not mutate the IR in a way any
  /// cached analysis can observe.
  static PreservedAnalyses all() { return PreservedAnalyses(AllMask); }
  /// Nothing survives: the conservative "I changed who-knows-what" answer.
  static PreservedAnalyses none() { return PreservedAnalyses(0); }

  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= bit(K);
    return *this;
  }
  PreservedAnalyses &abandon(AnalysisKind K) {
    Mask &= ~bit(K);
    return *this;
  }
  template <typename T> PreservedAnalyses &preserve() {
    return preserve(AnalysisTraits<T>::Kind);
  }
  template <typename T> PreservedAnalyses &abandon() {
    return abandon(AnalysisTraits<T>::Kind);
  }
  /// Preserves the three module-wide analyses (a pass that rewrote one
  /// function's code without touching calls, globals or memory behaviour).
  PreservedAnalyses &preserveModuleAnalyses() {
    return preserve(AnalysisKind::CallGraph)
        .preserve(AnalysisKind::PointsTo)
        .preserve(AnalysisKind::MemEffects);
  }

  bool preserved(AnalysisKind K) const { return Mask & bit(K); }
  bool preservesAll() const { return Mask == AllMask; }
  bool preservesNone() const { return Mask == 0; }

private:
  static constexpr uint8_t AllMask = uint8_t((1u << NumAnalysisKinds) - 1);
  static constexpr uint8_t bit(AnalysisKind K) {
    return uint8_t(1u << unsigned(K));
  }
  explicit PreservedAnalyses(uint8_t Mask) : Mask(Mask) {}
  uint8_t Mask;
};

/// One analysis's cache statistics, as reported by PipelineReport and the
/// fuzz campaign summary. Built counts constructor runs, Hits cache
/// returns, Invalidated cached instances dropped — so Built - Hits ratios
/// quantify how much recomputation the preservation contract avoided.
struct AnalysisCounterReport {
  std::string Analysis; ///< analysisKindName of the kind
  uint64_t Built = 0;
  uint64_t Hits = 0;
  uint64_t Invalidated = 0;
};

/// Folds \p From into \p Into by analysis name (aggregation across loops,
/// fuzz cases or pipeline runs).
void mergeAnalysisCounters(std::vector<AnalysisCounterReport> &Into,
                           const std::vector<AnalysisCounterReport> &From);

} // namespace helix

#endif // HELIX_ANALYSIS_ANALYSISKINDS_H
