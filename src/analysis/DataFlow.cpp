#include "analysis/DataFlow.h"

using namespace helix;

DataFlowResult helix::solveDataFlow(Function *F, const CFGInfo &CFG,
                                    DataFlowDir Dir, DataFlowMeet Meet,
                                    unsigned NumBits,
                                    const std::vector<BitSet> &Gen,
                                    const std::vector<BitSet> &Kill,
                                    const BitSet &Boundary) {
  unsigned NumIds = F->numBlockIds();
  DataFlowResult R;
  R.In.assign(NumIds, BitSet(NumBits));
  R.Out.assign(NumIds, BitSet(NumBits));

  // Initialize interior values: bottom is empty for union, full for
  // intersection.
  if (Meet == DataFlowMeet::Intersection) {
    for (unsigned I = 0; I != NumIds; ++I) {
      R.In[I].setAll();
      R.Out[I].setAll();
    }
  }

  const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    if (Dir == DataFlowDir::Forward) {
      for (BasicBlock *BB : RPO) {
        unsigned Id = BB->id();
        // Meet over predecessors.
        BitSet NewIn(NumBits);
        const auto &Preds = CFG.predecessors(BB);
        bool IsEntry = BB == F->entry();
        if (IsEntry) {
          NewIn = Boundary;
        } else if (Preds.empty()) {
          if (Meet == DataFlowMeet::Intersection)
            NewIn.setAll();
        } else {
          NewIn = R.Out[Preds.front()->id()];
          for (size_t K = 1; K < Preds.size(); ++K) {
            if (Meet == DataFlowMeet::Union)
              NewIn.unionWith(R.Out[Preds[K]->id()]);
            else
              NewIn.intersectWith(R.Out[Preds[K]->id()]);
          }
        }
        BitSet NewOut = NewIn;
        NewOut.subtract(Kill[Id]);
        NewOut.unionWith(Gen[Id]);
        if (NewIn != R.In[Id] || NewOut != R.Out[Id]) {
          R.In[Id] = std::move(NewIn);
          R.Out[Id] = std::move(NewOut);
          Changed = true;
        }
      }
    } else {
      for (auto It = RPO.rbegin(); It != RPO.rend(); ++It) {
        BasicBlock *BB = *It;
        unsigned Id = BB->id();
        BitSet NewOut(NumBits);
        std::vector<BasicBlock *> Succs = BB->successors();
        if (Succs.empty()) {
          NewOut = Boundary;
        } else {
          NewOut = R.In[Succs.front()->id()];
          for (size_t K = 1; K < Succs.size(); ++K) {
            if (Meet == DataFlowMeet::Union)
              NewOut.unionWith(R.In[Succs[K]->id()]);
            else
              NewOut.intersectWith(R.In[Succs[K]->id()]);
          }
        }
        BitSet NewIn = NewOut;
        NewIn.subtract(Kill[Id]);
        NewIn.unionWith(Gen[Id]);
        if (NewIn != R.In[Id] || NewOut != R.Out[Id]) {
          R.In[Id] = std::move(NewIn);
          R.Out[Id] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }
  return R;
}
