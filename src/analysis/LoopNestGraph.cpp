#include "analysis/LoopNestGraph.h"

#include "support/Compiler.h"
#include "support/Graph.h"

#include <algorithm>

using namespace helix;

std::string LoopNestNode::name() const {
  return F->name() + "/L" + std::to_string(L->index()) + "@" +
         L->header()->name();
}

LoopNestGraph::LoopNestGraph(Module &M, AnalysisManager &AM) {
  // Create one node per loop of every function.
  for (Function *F : M) {
    LoopInfo &LI = AM.get<LoopInfo>(F);
    for (unsigned I = 0, E = LI.numLoops(); I != E; ++I) {
      LoopNestNode N;
      N.Id = unsigned(Nodes.size());
      N.F = F;
      N.L = LI.loop(I);
      Nodes.push_back(N);
    }
  }

  auto AddChild = [&](unsigned Parent, unsigned Child) {
    LoopNestNode &P = Nodes[Parent];
    if (std::find(P.Children.begin(), P.Children.end(), Child) !=
        P.Children.end())
      return;
    P.Children.push_back(Child);
    ++Nodes[Child].NumParents;
  };

  // Intra-function nesting edges.
  for (unsigned I = 0, E = numNodes(); I != E; ++I)
    for (Loop *Sub : Nodes[I].L->subLoops())
      AddChild(I, nodeFor(Sub));

  // Cross-function edges: a call site inside loop L makes the loops that a
  // call to the callee can enter *first* (its top-level loops, plus those
  // reached through loop-free call chains) children of L.
  CallGraph &CG = AM.get<CallGraph>();

  // EntryLoops(F) = top-level loops of F, plus EntryLoops of callees whose
  // call sites sit outside every loop of F. Fixpoint handles recursion.
  std::vector<std::vector<unsigned>> EntryLoops(M.numFunctions());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Function *F : M) {
      unsigned FIdx = CG.indexOf(F);
      LoopInfo &LI = AM.get<LoopInfo>(F);
      auto AddEntry = [&](unsigned Node) {
        auto &V = EntryLoops[FIdx];
        if (std::find(V.begin(), V.end(), Node) == V.end()) {
          V.push_back(Node);
          Changed = true;
        }
      };
      for (Loop *Top : LI.topLevelLoops())
        AddEntry(nodeFor(Top));
      for (Instruction *Site : CG.callSites(F)) {
        if (LI.loopFor(Site->parent()))
          continue; // inside a loop: handled as that loop's child below
        for (unsigned Node : EntryLoops[CG.indexOf(Site->callee())])
          AddEntry(Node);
      }
    }
  }

  for (Function *F : M) {
    LoopInfo &LI = AM.get<LoopInfo>(F);
    for (Instruction *Site : CG.callSites(F)) {
      Loop *Enclosing = LI.loopFor(Site->parent());
      if (!Enclosing)
        continue;
      for (unsigned Node : EntryLoops[CG.indexOf(Site->callee())])
        AddChild(nodeFor(Enclosing), Node);
    }
  }

  for (const LoopNestNode &N : Nodes)
    if (N.NumParents == 0)
      Roots.push_back(N.Id);
}

unsigned LoopNestGraph::nodeFor(const Loop *L) const {
  for (const LoopNestNode &N : Nodes)
    if (N.L == L)
      return N.Id;
  return ~0u;
}

std::vector<unsigned> LoopNestGraph::topDownOrder() const {
  DenseGraph G(numNodes());
  for (const LoopNestNode &N : Nodes)
    for (unsigned C : N.Children)
      G.addEdge(N.Id, C);
  SCCResult SCCs = computeSCCs(G);
  // Tarjan components are numbered in reverse topological order, so walking
  // components from the highest id downward yields parents before children.
  std::vector<unsigned> Order;
  Order.reserve(numNodes());
  for (unsigned C = SCCs.numComponents(); C-- > 0;)
    for (unsigned Member : SCCs.Components[C])
      Order.push_back(Member);
  return Order;
}
