//===----------------------------------------------------------------------===//
///
/// \file
/// Value-range / congruence abstract interpretation over the registers of
/// one function. Each register is mapped, per program point, to a fact
///
///     value = Base + d,   d in [Lo, Hi],   d ≡ Rem (mod Mod)
///
/// where Base is absent (plain integer), a global's runtime base address,
/// or the (opaque) value a specific register held at its defining
/// instruction. The dependence analysis consumes these facts to disprove
/// aliasing pairs the ZIV/SIV strided tests keep: two addresses off the
/// same base whose offset intervals are disjoint, or whose congruence
/// classes never meet, can never collide — in *any* pair of iterations,
/// because a fixpoint fact at a program point covers every execution of
/// that point.
///
/// The interpretation runs forward over the reverse post order with
/// interval widening at loop headers. Widening is stride-directed: a
/// basic induction variable (seeded from LoopVars) only widens toward the
/// sign of its stride, so `i = 0; i += 2` keeps `i >= 0, i even` without
/// needing a guard. Branch refinement on conditional edges recovers upper
/// bounds the widening discarded (`i < 64` guards reconstruct [0,63]).
/// Congruence facts join by gcd and need no widening (gcd chains are
/// finite).
///
/// Soundness of symbolic bases: a Base of Reg(r) names the value r held
/// when the fact's defining instruction executed. Any redefinition of r
/// demotes every fact that references it (the "kill rule"), so two facts
/// over the same Reg base observed at the same program point always speak
/// about the same runtime value. Clients that compare facts *across*
/// program points (the dependence analysis compares two accesses of a
/// loop) must additionally check the base register is loop-invariant.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_VALUERANGE_H
#define HELIX_ANALYSIS_VALUERANGE_H

#include "analysis/LoopInfo.h"
#include "ir/CFG.h"

#include <cstdint>
#include <vector>

namespace helix {

/// One register's abstract value at a program point.
struct ValueFact {
  enum class Base : uint8_t { None, Reg, Global };

  /// No execution reaches this point with the register defined this way.
  bool Bottom = true;
  Base BaseKind = Base::None;
  unsigned BaseId = 0; ///< register id or global index
  /// Saturating interval of value - base.
  int64_t Lo = INT64_MIN;
  int64_t Hi = INT64_MAX;
  /// value - base ≡ Rem (mod Mod). Mod == 0: exactly Rem (singleton
  /// congruence); Mod == 1: no congruence information; Mod >= 2: a real
  /// residue class with Rem normalized into [0, Mod).
  uint64_t Mod = 1;
  int64_t Rem = 0;

  static ValueFact bottom() { return ValueFact(); }
  static ValueFact top() {
    ValueFact F;
    F.Bottom = false;
    return F;
  }
  static ValueFact constant(int64_t C) {
    ValueFact F;
    F.Bottom = false;
    F.Lo = F.Hi = C;
    F.Mod = 0;
    F.Rem = C;
    return F;
  }
  /// Base + 0 exactly (global bases, self-symbolic opaque definitions).
  static ValueFact baseOnly(Base B, unsigned Id) {
    ValueFact F = constant(0);
    F.BaseKind = B;
    F.BaseId = Id;
    return F;
  }

  bool isTop() const {
    return !Bottom && BaseKind == Base::None && Lo == INT64_MIN &&
           Hi == INT64_MAX && Mod == 1;
  }
  bool isConstant() const {
    return !Bottom && BaseKind == Base::None && Lo == Hi;
  }
  bool sameBase(const ValueFact &O) const {
    return BaseKind == O.BaseKind &&
           (BaseKind == Base::None || BaseId == O.BaseId);
  }

  bool operator==(const ValueFact &O) const {
    if (Bottom != O.Bottom)
      return false;
    if (Bottom)
      return true;
    return BaseKind == O.BaseKind && BaseId == O.BaseId && Lo == O.Lo &&
           Hi == O.Hi && Mod == O.Mod && Rem == O.Rem;
  }
  bool operator!=(const ValueFact &O) const { return !(*this == O); }

  /// Least upper bound (interval hull, gcd congruence). Joining facts over
  /// different bases loses everything (top).
  static ValueFact join(const ValueFact &A, const ValueFact &B);
  /// Widened join applied at loop headers: interval bounds that still move
  /// jump to ±inf. \p StrideDir biases the jump: > 0 widens only the upper
  /// bound, < 0 only the lower (induction-variable seeding), 0 both.
  static ValueFact widen(const ValueFact &Old, const ValueFact &New,
                         int StrideDir);

  // Transfer arithmetic (saturating; overflow demotes to top).
  static ValueFact add(const ValueFact &A, const ValueFact &B);
  static ValueFact sub(const ValueFact &A, const ValueFact &B);
  static ValueFact mul(const ValueFact &A, const ValueFact &B);

  /// True when no concrete (base + d) of A can equal one of B *given that
  /// both facts are relative to the same runtime base value*: disjoint
  /// offset intervals or incompatible congruence classes. The caller is
  /// responsible for base identity (see file comment).
  static bool disjointOffsets(const ValueFact &A, const ValueFact &B);
};

/// Function-scoped value-range analysis: block-entry environments for every
/// reachable block, with per-use queries replaying the block prefix.
class ValueRangeAnalysis {
public:
  ValueRangeAnalysis(Function *F, const CFGInfo &CFG, const DominatorTree &DT,
                     const LoopInfo &LI);

  Function *function() const { return F; }

  /// The abstract value operand \p O carries into instruction \p I (facts
  /// are observed immediately before \p I executes). \p I must belong to a
  /// reachable block of the analyzed function.
  ValueFact factFor(const Instruction *I, const Operand &O) const;

  /// Block-entry fact for a register (mostly for tests).
  ValueFact factAtEntry(const BasicBlock *BB, unsigned Reg) const;

  /// Number of fixpoint sweeps the construction took (determinism probes).
  unsigned sweepCount() const { return Sweeps; }

private:
  using Env = std::vector<ValueFact>;

  ValueFact evalOperand(const Env &E, const Operand &O) const;
  void applyInstr(Env &E, const Instruction *I) const;
  void killBaseRefs(Env &E, unsigned Reg) const;
  /// Refines \p E along the CFG edge Pred -> Succ using Pred's terminator.
  void refineEdge(Env &E, const BasicBlock *Pred, const BasicBlock *Succ) const;

  Function *F;
  const CFGInfo &CFG;
  unsigned NumRegs;
  /// Block-entry environments indexed by block id (empty = unreachable).
  std::vector<Env> EntryEnv;
  /// Stride direction per register for header widening: +1 / -1 for basic
  /// induction variables of the loop headed there, 0 otherwise. Indexed
  /// [block id][reg].
  std::vector<std::vector<int8_t>> HeaderStrideDir;
  unsigned Sweeps = 0;
};

} // namespace helix

#endif // HELIX_ANALYSIS_VALUERANGE_H
