#include "analysis/Dominators.h"

#include "support/Compiler.h"

using namespace helix;

DominatorTree::DominatorTree(Function *F, const CFGInfo &CFG) : F(F) {
  IDom.assign(F->numBlockIds(), nullptr);
  Depth.assign(F->numBlockIds(), 0);

  const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
  if (RPO.empty())
    return;
  BasicBlock *Entry = RPO.front();
  IDom[Entry->id()] = Entry;

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (CFG.rpoIndex(A) > CFG.rpoIndex(B))
        A = IDom[A->id()];
      while (CFG.rpoIndex(B) > CFG.rpoIndex(A))
        B = IDom[B->id()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : CFG.predecessors(BB)) {
        if (!CFG.isReachable(Pred) || !IDom[Pred->id()])
          continue;
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      if (IDom[BB->id()] != NewIDom) {
        IDom[BB->id()] = NewIDom;
        Changed = true;
      }
    }
  }

  // The entry's idom is conventionally null for clients.
  IDom[Entry->id()] = nullptr;

  // Compute depths for O(depth) dominance queries.
  for (BasicBlock *BB : RPO) {
    BasicBlock *D = IDom[BB->id()];
    Depth[BB->id()] = D ? Depth[D->id()] + 1 : 0;
  }
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (A == B)
    return true;
  const BasicBlock *Cur = B;
  while (Cur && Depth[Cur->id()] > Depth[A->id()])
    Cur = IDom[Cur->id()];
  return Cur == A;
}
