#include "analysis/PointsTo.h"

#include "support/Compiler.h"

using namespace helix;

//===----------------------------------------------------------------------===//
// PointsToAnalysis
//===----------------------------------------------------------------------===//

PointsToAnalysis::PointsToAnalysis(Module &M, const CallGraph &CG) : CG(CG) {
  // Enumerate abstract locations: globals first, then allocation sites.
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I)
    Locations.push_back({AbstractLocation::Kind::Global, I, nullptr});
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      for (Instruction *Ins : *BB) {
        if (Ins->opcode() == Opcode::Alloca)
          Locations.push_back({AbstractLocation::Kind::Stack, ~0u, Ins});
        else if (Ins->opcode() == Opcode::HeapAlloc)
          Locations.push_back({AbstractLocation::Kind::Heap, ~0u, Ins});
      }

  unsigned NumLocs = numLocations();
  Empty = BitSet(NumLocs);
  RegSets.resize(M.numFunctions());
  ReturnSets.assign(M.numFunctions(), BitSet(NumLocs));
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    RegSets[I].assign(M.function(I)->numRegs(), BitSet(NumLocs));
  Contents.assign(NumLocs, BitSet(NumLocs));

  addConstraintsAndSolve(M, CG);
}

const BitSet &PointsToAnalysis::regPointsTo(const Function *F,
                                            unsigned Reg) const {
  const std::vector<BitSet> &Sets = RegSets[CG.indexOf(F)];
  // Registers allocated after the analysis ran have no pointer info.
  if (Reg >= Sets.size())
    return Empty;
  return Sets[Reg];
}

BitSet PointsToAnalysis::operandPointsTo(const Function *F,
                                         const Operand &O) const {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    return regPointsTo(F, O.regId());
  case Operand::Kind::Global: {
    BitSet S(numLocations());
    S.set(O.globalIndex()); // globals occupy the first location indices
    return S;
  }
  case Operand::Kind::ImmInt:
  case Operand::Kind::ImmFloat:
    return Empty;
  }
  HELIX_UNREACHABLE("unknown operand kind");
}

bool PointsToAnalysis::mayAlias(const Function *FA, const Operand &A,
                                const Function *FB, const Operand &B) const {
  BitSet SA = operandPointsTo(FA, A);
  BitSet SB = operandPointsTo(FB, B);
  // No pointer information on either side: be conservative.
  if (SA.empty() || SB.empty())
    return true;
  return SA.intersects(SB);
}

void PointsToAnalysis::addConstraintsAndSolve(Module &M, const CallGraph &CG) {
  unsigned NumLocs = numLocations();

  // Map allocation sites to their location index.
  auto LocOfSite = [&](const Instruction *Site) -> unsigned {
    for (unsigned I = 0, E = NumLocs; I != E; ++I)
      if (Locations[I].Site == Site)
        return I;
    HELIX_UNREACHABLE("allocation site has no abstract location");
  };

  // Points-to set of an operand as currently known.
  auto PtsOf = [&](unsigned FIdx, const Operand &O) -> BitSet {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      if (O.regId() < RegSets[FIdx].size())
        return RegSets[FIdx][O.regId()];
      return Empty;
    case Operand::Kind::Global: {
      BitSet S(NumLocs);
      S.set(O.globalIndex());
      return S;
    }
    default:
      return Empty;
    }
  };

  // Iterate all constraints to a fixpoint. The rule set is the classic
  // Andersen system; the module sizes here make a worklist unnecessary.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned FIdx = 0, FE = M.numFunctions(); FIdx != FE; ++FIdx) {
      Function *F = M.function(FIdx);
      for (BasicBlock *BB : *F) {
        for (Instruction *Ins : *BB) {
          switch (Ins->opcode()) {
          case Opcode::Alloca:
          case Opcode::HeapAlloc: {
            unsigned Loc = LocOfSite(Ins);
            BitSet &D = RegSets[FIdx][Ins->dest()];
            if (!D.test(Loc)) {
              D.set(Loc);
              Changed = true;
            }
            break;
          }
          case Opcode::Mov:
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Mul: {
            // Copies and pointer arithmetic propagate pointerhood from all
            // register/global operands (field-insensitive).
            if (!Ins->hasDest())
              break;
            BitSet Acc(NumLocs);
            for (unsigned K = 0, E = Ins->numOperands(); K != E; ++K)
              Acc.unionWith(PtsOf(FIdx, Ins->operand(K)));
            Changed |= RegSets[FIdx][Ins->dest()].unionWith(Acc);
            break;
          }
          case Opcode::Load: {
            BitSet Addr = PtsOf(FIdx, Ins->operand(0));
            BitSet Acc(NumLocs);
            Addr.forEach([&](unsigned L) { Acc.unionWith(Contents[L]); });
            Changed |= RegSets[FIdx][Ins->dest()].unionWith(Acc);
            break;
          }
          case Opcode::Store: {
            BitSet Val = PtsOf(FIdx, Ins->operand(0));
            if (Val.empty())
              break;
            BitSet Addr = PtsOf(FIdx, Ins->operand(1));
            bool LocalChanged = false;
            Addr.forEach(
                [&](unsigned L) { LocalChanged |= Contents[L].unionWith(Val); });
            Changed |= LocalChanged;
            break;
          }
          case Opcode::Call: {
            Function *Callee = Ins->callee();
            unsigned CIdx = CG.indexOf(Callee);
            for (unsigned K = 0, E = Ins->numOperands(); K != E; ++K) {
              BitSet ArgPts = PtsOf(FIdx, Ins->operand(K));
              if (K < RegSets[CIdx].size())
                Changed |= RegSets[CIdx][K].unionWith(ArgPts);
            }
            if (Ins->hasDest())
              Changed |=
                  RegSets[FIdx][Ins->dest()].unionWith(ReturnSets[CIdx]);
            break;
          }
          case Opcode::Ret: {
            if (Ins->numOperands() == 1)
              Changed |= ReturnSets[FIdx].unionWith(
                  PtsOf(FIdx, Ins->operand(0)));
            break;
          }
          default:
            break;
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// MemEffects
//===----------------------------------------------------------------------===//

MemEffects::MemEffects(Module &M, const CallGraph &CG,
                       const PointsToAnalysis &PT)
    : CG(CG) {
  unsigned N = M.numFunctions();
  unsigned NumLocs = PT.numLocations();
  Reads.assign(N, BitSet(NumLocs));
  Writes.assign(N, BitSet(NumLocs));
  RUnknown.assign(N, false);
  WUnknown.assign(N, false);

  // Local effects, then transitive closure over the call graph. Recursion is
  // handled by iterating to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned FIdx = 0; FIdx != N; ++FIdx) {
      Function *F = M.function(FIdx);
      for (BasicBlock *BB : *F)
        for (Instruction *Ins : *BB) {
          if (Ins->opcode() == Opcode::Load) {
            BitSet Pts = PT.operandPointsTo(F, Ins->operand(0));
            if (Pts.empty()) {
              if (!RUnknown[FIdx]) {
                RUnknown[FIdx] = true;
                Changed = true;
              }
            } else {
              Changed |= Reads[FIdx].unionWith(Pts);
            }
          } else if (Ins->opcode() == Opcode::Store) {
            BitSet Pts = PT.operandPointsTo(F, Ins->operand(1));
            if (Pts.empty()) {
              if (!WUnknown[FIdx]) {
                WUnknown[FIdx] = true;
                Changed = true;
              }
            } else {
              Changed |= Writes[FIdx].unionWith(Pts);
            }
          } else if (Ins->isCall()) {
            unsigned CIdx = CG.indexOf(Ins->callee());
            Changed |= Reads[FIdx].unionWith(Reads[CIdx]);
            Changed |= Writes[FIdx].unionWith(Writes[CIdx]);
            if (RUnknown[CIdx] && !RUnknown[FIdx]) {
              RUnknown[FIdx] = true;
              Changed = true;
            }
            if (WUnknown[CIdx] && !WUnknown[FIdx]) {
              WUnknown[FIdx] = true;
              Changed = true;
            }
          }
        }
    }
  }
}
