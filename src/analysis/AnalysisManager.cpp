#include "analysis/AnalysisManager.h"

#include <cassert>

using namespace helix;

const char *helix::analysisKindName(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::CFG:
    return "cfg";
  case AnalysisKind::DomTree:
    return "dom-tree";
  case AnalysisKind::Loops:
    return "loops";
  case AnalysisKind::ValueRange:
    return "value-range";
  case AnalysisKind::Liveness:
    return "liveness";
  case AnalysisKind::CallGraph:
    return "call-graph";
  case AnalysisKind::PointsTo:
    return "points-to";
  case AnalysisKind::MemEffects:
    return "mem-effects";
  }
  return "?";
}

void helix::mergeAnalysisCounters(
    std::vector<AnalysisCounterReport> &Into,
    const std::vector<AnalysisCounterReport> &From) {
  for (const AnalysisCounterReport &F : From) {
    AnalysisCounterReport *Slot = nullptr;
    for (AnalysisCounterReport &I : Into)
      if (I.Analysis == F.Analysis)
        Slot = &I;
    if (!Slot) {
      Into.push_back({F.Analysis, 0, 0, 0});
      Slot = &Into.back();
    }
    Slot->Built += F.Built;
    Slot->Hits += F.Hits;
    Slot->Invalidated += F.Invalidated;
  }
}

AnalysisManager::FnEntry &AnalysisManager::entry(Function *F) {
  auto It = SlotOf.find(F);
  if (It != SlotOf.end())
    return *Entries[It->second];
  SlotOf.emplace(F, Entries.size());
  Entries.push_back(std::make_unique<FnEntry>());
  return *Entries.back();
}

unsigned AnalysisManager::invalidationClosure(PreservedAnalyses PA) {
  // Direct dependencies, one bitmask per kind (bit i = consumes kind i).
  static constexpr unsigned Deps[NumAnalysisKinds] = {
      /*CFG*/ 0u,
      /*DomTree*/ 1u << unsigned(AnalysisKind::CFG),
      /*Loops*/ (1u << unsigned(AnalysisKind::CFG)) |
          (1u << unsigned(AnalysisKind::DomTree)),
      /*ValueRange*/ (1u << unsigned(AnalysisKind::CFG)) |
          (1u << unsigned(AnalysisKind::DomTree)) |
          (1u << unsigned(AnalysisKind::Loops)),
      /*Liveness*/ 1u << unsigned(AnalysisKind::CFG),
      /*CallGraph*/ 0u,
      /*PointsTo*/ 1u << unsigned(AnalysisKind::CallGraph),
      /*MemEffects*/ (1u << unsigned(AnalysisKind::CallGraph)) |
          (1u << unsigned(AnalysisKind::PointsTo)),
  };
  unsigned Drop = 0;
  for (unsigned K = 0; K != NumAnalysisKinds; ++K)
    if (!PA.preserved(AnalysisKind(K)))
      Drop |= 1u << K;
  // Kinds are numbered in dependency order, so one forward sweep closes
  // the set (every dependency has a smaller kind value).
  for (unsigned K = 0; K != NumAnalysisKinds; ++K)
    if (Deps[K] & Drop)
      Drop |= 1u << K;
  return Drop;
}

void AnalysisManager::dropFunctionKinds(FnEntry &E, unsigned DropMask) {
  auto DropOne = [&](AnalysisKind K, auto &Ptr) {
    if (!(DropMask & (1u << unsigned(K))) || !Ptr)
      return;
    Ptr.reset();
    noteDropped(K);
  };
  DropOne(AnalysisKind::CFG, E.CFG);
  DropOne(AnalysisKind::DomTree, E.DT);
  DropOne(AnalysisKind::Loops, E.LI);
  DropOne(AnalysisKind::ValueRange, E.VR);
  DropOne(AnalysisKind::Liveness, E.LV);
}

void AnalysisManager::dropModuleKinds(unsigned DropMask) {
  auto DropOne = [&](AnalysisKind K, auto &Ptr) {
    if (!(DropMask & (1u << unsigned(K))) || !Ptr)
      return;
    Ptr.reset();
    noteDropped(K);
  };
  // MemEffects and PointsTo hold references into CallGraph; the closure
  // guarantees dependents are in the mask whenever a dependency is, and
  // destruction order here is dependents-first.
  DropOne(AnalysisKind::MemEffects, ME);
  DropOne(AnalysisKind::PointsTo, PT);
  DropOne(AnalysisKind::CallGraph, CG);
}

void AnalysisManager::invalidate(Function *F, PreservedAnalyses PA) {
  if (Conservative) {
    invalidateAll();
    return;
  }
  unsigned Drop = invalidationClosure(PA);
  if (FnEntry *E = const_cast<FnEntry *>(findEntry(F)))
    dropFunctionKinds(*E, Drop);
  dropModuleKinds(Drop);
  ++Epoch;
}

void AnalysisManager::invalidateAll() {
  constexpr unsigned All = (1u << NumAnalysisKinds) - 1;
  for (auto &E : Entries)
    dropFunctionKinds(*E, All);
  dropModuleKinds(All);
  ++Epoch;
}

std::vector<AnalysisCounterReport> AnalysisManager::counterReport() const {
  std::vector<AnalysisCounterReport> Report;
  Report.reserve(NumAnalysisKinds);
  for (unsigned K = 0; K != NumAnalysisKinds; ++K) {
    const AnalysisStats &S = Stats[K];
    Report.push_back(
        {analysisKindName(AnalysisKind(K)), S.Built, S.Hits, S.Invalidated});
  }
  return Report;
}
