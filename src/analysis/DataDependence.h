//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-carried data-dependence analysis (the DDG of HELIX Step 2).
///
/// For a chosen loop this computes D_data: the set of loop-carried data
/// dependences that must be synchronized. Excluded, per the paper:
///   - false (WAW/WAR) dependences through registers or the call stack,
///     because every iteration runs on its own core with private registers
///     and a private stack;
///   - dependences on loop-invariant reads and on induction variables
///     (locally computable from the iteration number).
/// Memory dependences are derived from the interprocedural points-to
/// analysis, refined by strided-access (ZIV/SIV) independence tests and —
/// when a ValueRangeAnalysis is supplied — by value-range/congruence
/// disjointness over the address expressions (disjoint offset windows off
/// the same base, incompatible residue classes).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_DATADEPENDENCE_H
#define HELIX_ANALYSIS_DATADEPENDENCE_H

#include "analysis/Liveness.h"
#include "analysis/LoopVars.h"
#include "analysis/PointsTo.h"

#include <algorithm>
#include <vector>

namespace helix {

class ValueRangeAnalysis;

enum class DepKind { RAW, WAR, WAW };

/// One data dependence d = (a, b) between (sets of) instructions of a loop.
/// Both endpoints lie inside the loop; the dependence crosses iterations
/// when LoopCarried is true.
struct DataDependence {
  unsigned Id = 0; ///< dense id within this loop's dependence set
  DepKind Kind = DepKind::RAW;
  bool ViaMemory = true;
  bool LoopCarried = false;
  /// For register dependences: the register carrying the value.
  unsigned Reg = NoReg;
  /// Producing side (writes).
  std::vector<Instruction *> Srcs;
  /// Consuming side (reads for RAW, writes for WAW/WAR).
  std::vector<Instruction *> Dsts;

  /// Every instruction that is an endpoint of this dependence, in first-
  /// appearance order (Srcs then Dsts). The sorted scratch set is used for
  /// membership only — the output order never depends on pointer values,
  /// because downstream consumers (the inliner's call-site choice) must be
  /// address-independent.
  std::vector<Instruction *> allEndpoints() const {
    std::vector<Instruction *> All;
    All.reserve(Srcs.size() + Dsts.size());
    std::vector<Instruction *> Seen;
    Seen.reserve(Srcs.size() + Dsts.size());
    auto Insert = [&](Instruction *I) {
      auto It = std::lower_bound(Seen.begin(), Seen.end(), I);
      if (It != Seen.end() && *It == I)
        return;
      Seen.insert(It, I);
      All.push_back(I);
    };
    for (Instruction *I : Srcs)
      Insert(I);
    for (Instruction *I : Dsts)
      Insert(I);
    return All;
  }
};

/// Summary counters reported by Table 1.
struct DependenceStats {
  unsigned NumAliasPairs = 0;   ///< all aliasing memory pairs (any distance)
  unsigned NumLoopCarried = 0;  ///< pairs classified loop-carried
  unsigned NumRegCarried = 0;   ///< register RAW dependences kept
  unsigned NumExcludedFalse = 0;    ///< register WAW/WAR discarded
  unsigned NumExcludedInduction = 0;
  /// Pairs the ZIV/SIV tests kept that value-range facts disproved.
  unsigned NumPrunedByRange = 0;
};

/// Computes the dependences of one loop.
class LoopDependenceAnalysis {
public:
  /// \p VR, when non-null, sharpens the memory-pair tests with value-range
  /// facts; passing null reproduces the points-to + ZIV/SIV-only result.
  LoopDependenceAnalysis(Function *F, Loop *L, const CFGInfo &CFG,
                         const DominatorTree &DT, const Liveness &LV,
                         const LoopVarAnalysis &Vars,
                         const PointsToAnalysis &PT, const MemEffects &ME,
                         const ValueRangeAnalysis *VR = nullptr);

  /// The dependences HELIX must synchronize (the paper's D_data).
  const std::vector<DataDependence> &toSynchronize() const { return DData; }

  const DependenceStats &stats() const { return Stats; }

private:
  void collectMemoryDeps(Function *F, Loop *L, const LoopVarAnalysis &Vars,
                         const PointsToAnalysis &PT, const MemEffects &ME,
                         const ValueRangeAnalysis *VR);
  void collectRegisterDeps(Function *F, Loop *L, const CFGInfo &CFG,
                           const Liveness &LV, const LoopVarAnalysis &Vars);

  std::vector<DataDependence> DData;
  DependenceStats Stats;
};

} // namespace helix

#endif // HELIX_ANALYSIS_DATADEPENDENCE_H
