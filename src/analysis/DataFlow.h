//===----------------------------------------------------------------------===//
///
/// \file
/// A small iterative bitvector dataflow framework over basic blocks.
/// Liveness, reaching definitions, Wait-availability (Step 6) and the
/// Signal-placement reachability analysis (Step 4) are all instances.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_DATAFLOW_H
#define HELIX_ANALYSIS_DATAFLOW_H

#include "ir/CFG.h"
#include "support/BitSet.h"

#include <vector>

namespace helix {

/// Per-block In/Out sets of a solved dataflow problem, indexed by block id.
struct DataFlowResult {
  std::vector<BitSet> In;
  std::vector<BitSet> Out;
};

enum class DataFlowDir { Forward, Backward };
enum class DataFlowMeet { Union, Intersection };

/// Solves an iterative gen/kill bitvector problem.
///
/// Transfer function per block B:
///   Forward:  Out[B] = Gen[B] | (In[B] & ~Kill[B]),  In[B] = meet of preds
///   Backward: In[B]  = Gen[B] | (Out[B] & ~Kill[B]), Out[B] = meet of succs
///
/// \p Boundary is the value at the entry (forward) or at every exit
/// (backward). With Intersection meet, interior blocks start from the full
/// set so the fixpoint is the greatest solution.
DataFlowResult solveDataFlow(Function *F, const CFGInfo &CFG,
                             DataFlowDir Dir, DataFlowMeet Meet,
                             unsigned NumBits,
                             const std::vector<BitSet> &Gen,
                             const std::vector<BitSet> &Kill,
                             const BitSet &Boundary);

} // namespace helix

#endif // HELIX_ANALYSIS_DATAFLOW_H
