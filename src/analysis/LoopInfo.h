//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and the loop nesting forest of one function.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_ANALYSIS_LOOPINFO_H
#define HELIX_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "support/BitSet.h"

#include <memory>
#include <vector>

namespace helix {

/// One natural loop: a header plus the blocks that can reach a back edge
/// to it without leaving the region it dominates. Back edges with the same
/// header are merged into a single loop, as is conventional.
class Loop {
public:
  BasicBlock *header() const { return Header; }
  const std::vector<BasicBlock *> &latches() const { return Latches; }
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }

  bool contains(const BasicBlock *BB) const {
    return BB->id() < BlockSet.size() && BlockSet.test(BB->id());
  }

  Loop *parent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  /// Nesting depth; top-level loops have depth 1.
  unsigned depth() const { return Depth; }
  /// Function-local loop index (dense, stable for this LoopInfo).
  unsigned index() const { return Index; }

  /// CFG edges leaving the loop, as (inside, outside) block pairs.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> exitEdges() const;

private:
  friend class LoopInfo;
  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Latches;
  std::vector<BasicBlock *> Blocks;
  BitSet BlockSet;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  unsigned Depth = 1;
  unsigned Index = 0;
};

/// All natural loops of a function, with their nesting relation.
class LoopInfo {
public:
  LoopInfo(Function *F, const CFGInfo &CFG, const DominatorTree &DT);

  unsigned numLoops() const { return unsigned(Loops.size()); }
  Loop *loop(unsigned Idx) const { return Loops[Idx].get(); }
  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// Innermost loop containing \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const {
    return BB->id() < InnermostFor.size() ? InnermostFor[BB->id()] : nullptr;
  }

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> InnermostFor; // indexed by block id
};

} // namespace helix

#endif // HELIX_ANALYSIS_LOOPINFO_H
