#include "analysis/Liveness.h"

#include "analysis/RegUse.h"

using namespace helix;

Liveness::Liveness(Function *F, const CFGInfo &CFG) {
  unsigned NumRegs = F->numRegs();
  std::vector<BitSet> Gen(F->numBlockIds(), BitSet(NumRegs));
  std::vector<BitSet> Kill(F->numBlockIds(), BitSet(NumRegs));

  for (BasicBlock *BB : *F) {
    BitSet &G = Gen[BB->id()];
    BitSet &K = Kill[BB->id()];
    for (Instruction *I : *BB) {
      // Upward-exposed uses first, then the definition.
      for (unsigned Reg : usedRegs(*I))
        if (!K.test(Reg))
          G.set(Reg);
      if (I->hasDest())
        K.set(I->dest());
    }
  }

  Result = solveDataFlow(F, CFG, DataFlowDir::Backward, DataFlowMeet::Union,
                         NumRegs, Gen, Kill, BitSet(NumRegs));
}

bool Liveness::isLiveBefore(unsigned Reg, const Instruction *At) const {
  const BasicBlock *BB = At->parent();
  bool Seen = false;
  for (Instruction *I : *BB) {
    if (I == At)
      Seen = true;
    if (!Seen)
      continue;
    for (unsigned Used : usedRegs(*I))
      if (Used == Reg)
        return true;
    if (I->hasDest() && I->dest() == Reg)
      return false;
  }
  return liveOut(BB).test(Reg);
}
