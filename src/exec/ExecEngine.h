//===----------------------------------------------------------------------===//
///
/// \file
/// The shared execution engine: one tight dispatch loop over the decoded
/// instruction stream (exec/ExecProgram.h), parameterized over a memory
/// model and a hook set so the three drivers stay thin:
///
///   - sim/Interpreter: private growable memory, optional observer hooks
///     (the profiler and the trace collector attach here);
///   - runtime/ThreadedRuntime: a pre-sized shared arena, edge-watch hooks
///     for loop entry/back-edge/exit detection and sync-op hooks for the
///     Signal/Wait release/acquire protocol;
///   - differential tests and benches drive all of the above against the
///     retained tree-walk reference (sim/TreeWalkInterpreter.h).
///
/// Hooks are compile-time: a driver that wants no observation instantiates
/// the engine with the default hooks and the callbacks (and the edge
/// bookkeeping feeding them) vanish entirely from the hot loop.
///
/// The loop dispatches on the decode-time XOpcode key, so superinstructions
/// (fused cmp+condbr, add+load, add+store, sync pairs) execute both halves
/// of a pair in one dispatch; every fused handler preserves the unfused
/// engine's step accounting, observer ordering and trap points exactly.
/// Dispatch is a portable switch by default; defining HELIX_COMPUTED_GOTO
/// (CMake option of the same name) selects token-threaded dispatch via
/// GCC/Clang computed goto — one jump table per handler so the branch
/// predictor sees per-opcode history. Both modes share the handler bodies
/// below; the flag is applied project-wide, so every translation unit
/// instantiates the same definition.
///
/// Registers live in one contiguous per-context register stack: a frame is
/// just a window [RegBase, RegBase + NumRegs) and call/return slide the
/// window — no per-call allocation, registers stay cache-hot.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_EXEC_EXECENGINE_H
#define HELIX_EXEC_EXECENGINE_H

#include "exec/ExecLimits.h"
#include "exec/ExecProgram.h"
#include "obs/Metrics.h"
#include "support/Compiler.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <type_traits>
#include <vector>

namespace helix {

//===----------------------------------------------------------------------===//
// Results and observation
//===----------------------------------------------------------------------===//

/// Outcome of a run.
struct ExecResult {
  bool Ok = false;
  std::string Error;      ///< set when Ok is false
  /// The run stopped on an instruction/step cap rather than a trap.
  /// Structural (not derived from Error text): the differential oracle
  /// classifies hang-shaped failures through this flag.
  bool BudgetExhausted = false;
  Value ReturnValue;      ///< main's return value
  uint64_t Cycles = 0;    ///< accumulated cost-model cycles
  uint64_t Instructions = 0;
};

/// Introspection handle observers receive. Implemented by every engine an
/// observer can attach to (the decoded sequential driver and the tree-walk
/// reference), so one observer — the profiler, the trace collector —
/// serves both.
class ExecState {
public:
  virtual unsigned callDepth() const = 0;
  virtual const Function *currentFunction() const = 0;
  /// Value of an operand in the current (innermost) frame.
  virtual Value operandValue(const Operand &O) const = 0;
  /// Base address of global \p Idx.
  virtual uint64_t globalBase(unsigned Idx) const = 0;

protected:
  ~ExecState() = default;
};

/// Receives execution events. All callbacks are invoked synchronously
/// during the run, in the same order the tree-walk interpreter always
/// used: non-control instructions report after executing, control
/// instructions report before transferring, edges report after the
/// transfer. Observers see one event per *original* instruction even when
/// the engine executes a fused superinstruction (drivers that need a
/// strictly sequential event stream run the unfused decode by convention —
/// sim/Interpreter selects it automatically when an observer attaches).
class ExecObserver {
public:
  virtual ~ExecObserver();
  /// After \p I executed, costing \p Cycles.
  virtual void onInstruction(const Instruction *I, unsigned Cycles,
                             ExecState &State) {
    (void)I;
    (void)Cycles;
    (void)State;
  }
  /// Control transferred along the CFG edge \p From -> \p To (same frame).
  virtual void onEdge(const BasicBlock *From, const BasicBlock *To,
                      ExecState &State) {
    (void)From;
    (void)To;
    (void)State;
  }
};

/// Forwards every event to two observers, in order. Engines hold a single
/// observer slot; legs that need both tracing and dependence-witness
/// collection chain through this.
class FanoutObserver : public ExecObserver {
public:
  FanoutObserver(ExecObserver &First, ExecObserver &Second)
      : A(First), B(Second) {}
  void onInstruction(const Instruction *I, unsigned Cycles,
                     ExecState &State) override {
    A.onInstruction(I, Cycles, State);
    B.onInstruction(I, Cycles, State);
  }
  void onEdge(const BasicBlock *From, const BasicBlock *To,
              ExecState &State) override {
    A.onEdge(From, To, State);
    B.onEdge(From, To, State);
  }

private:
  ExecObserver &A;
  ExecObserver &B;
};

//===----------------------------------------------------------------------===//
// Execution context and memory models
//===----------------------------------------------------------------------===//

/// Stack (Alloca) addresses live in a high range disjoint from the
/// globals+heap segment — the layout every engine shares.
inline constexpr uint64_t ExecStackBase = uint64_t(1) << 40;

/// One thread of execution: a frame stack, the frame-windowed register
/// file, and the private Alloca region. The globals+heap segment lives in
/// the memory model (private to the context for sequential runs, shared
/// across contexts for threaded ones).
///
/// Registers of all live frames sit back to back in RegStack; a frame's
/// window is [RegBase, RegBase + F->NumRegs) and RegTop is the watermark
/// the next call allocates from. pushFrame/Call only ever *grow* RegStack
/// (geometrically), so a window stays valid — though its data() pointer
/// must be re-derived after any call that may grow the stack.
struct ExecContext {
  struct Frame {
    const DecodedFunction *F = nullptr;
    uint32_t PC = 0;
    uint32_t RegBase = 0; ///< window start in the context's RegStack
    uint64_t SavedSP = 0;
    uint32_t DestRegInCaller = ~0u;
    bool WantsResult = false;
  };

  std::vector<Frame> Frames;
  std::vector<Value> RegStack; ///< frame-windowed register file
  uint64_t RegTop = 0;         ///< one past the innermost frame's window
  std::vector<Value> Stack;    ///< alloca region
  uint64_t StackPtr = 0;
  Value Returned;
  std::string Error;
  bool BudgetExhausted = false;
  uint64_t Steps = 0;
  uint64_t MaxSteps = ExecLimits::DefaultMaxSteps;
  uint64_t Cycles = 0;
  /// Instructions executed as halves of fused superinstructions (a subset
  /// of Steps; published as "exec.dispatch.steps_fused").
  uint64_t StepsFused = 0;

  /// The register window of \p Fr. Invalidated by RegStack growth
  /// (pushFrame or the engine's Call handler) — re-derive after either.
  Value *frameRegs(Frame &Fr) { return RegStack.data() + Fr.RegBase; }
  const Value *frameRegs(const Frame &Fr) const {
    return RegStack.data() + Fr.RegBase;
  }

  /// Grows the register stack geometrically to hold \p Needed slots.
  void ensureRegs(uint64_t Needed) {
    if (HELIX_UNLIKELY(Needed > RegStack.size())) {
      size_t NewSize = std::max<size_t>(size_t(256), RegStack.size());
      while (NewSize < Needed)
        NewSize *= 2;
      RegStack.resize(NewSize);
    }
  }

  /// Pushes a fresh base/call frame for \p DF starting at its entry PC,
  /// sliding the register window up. The window is zeroed (registers read
  /// 0 until written — windows are reused across calls).
  Frame &pushFrame(const DecodedFunction &DF) {
    assert(RegTop + DF.NumRegs <= ~0u && "register stack exceeds 2^32 slots");
    Frame Fr;
    Fr.F = &DF;
    Fr.RegBase = uint32_t(RegTop);
    Fr.SavedSP = StackPtr;
    ensureRegs(RegTop + DF.NumRegs);
    std::fill(RegStack.begin() + RegTop,
              RegStack.begin() + RegTop + DF.NumRegs, Value());
    RegTop += DF.NumRegs;
    Frames.push_back(Fr);
    return Frames.back();
  }
};

/// Growable private memory of a sequential execution. Loads outside the
/// populated region read zero; stores extend it (geometrically, so an
/// ascending store pattern re-copies O(log n) times, not per store).
class PrivateExecMemory {
public:
  explicit PrivateExecMemory(const ExecProgram &P) {
    Low.assign(P.globalEnd(), Value());
    P.initGlobals(Low);
    HeapPtr = P.globalEnd();
  }

  Value load(uint64_t Addr) const {
    return Addr < Low.size() ? Low[Addr] : Value();
  }
  void store(uint64_t Addr, Value V) {
    if (HELIX_UNLIKELY(Addr >= Low.size()))
      grow(Addr + 1);
    Low[Addr] = V;
  }
  uint64_t heapAlloc(uint64_t N) {
    uint64_t Base = HeapPtr;
    HeapPtr += N;
    if (Low.size() < HeapPtr)
      grow(HeapPtr);
    return Base;
  }

  std::vector<Value> Low; ///< globals + heap
  uint64_t HeapPtr = 0;

private:
  void grow(uint64_t Needed) {
    uint64_t NewSize = std::max<uint64_t>(64, Low.size());
    while (NewSize < Needed)
      NewSize *= 2;
    Low.resize(size_t(NewSize));
  }
};

/// Shared program memory of a threaded execution: globals + heap in one
/// pre-sized arena (so worker threads never race a reallocation), with an
/// atomic heap bump allocator. Per-context stacks live elsewhere.
class SharedExecMemory {
public:
  explicit SharedExecMemory(const ExecProgram &P,
                            uint64_t HeapHeadroom = uint64_t(1) << 22) {
    Low.assign(P.globalEnd() + HeapHeadroom, Value());
    P.initGlobals(Low);
    HeapPtr.store(P.globalEnd(), std::memory_order_relaxed);
  }

  Value load(uint64_t Addr) const {
    return Addr < Low.size() ? Low[Addr] : Value();
  }
  void store(uint64_t Addr, Value V) {
    if (Addr >= Low.size())
      reportFatalError("threaded runtime store out of arena");
    Low[Addr] = V;
  }
  uint64_t heapAlloc(uint64_t N) {
    uint64_t Base = HeapPtr.fetch_add(N);
    if (Base + N > Low.size())
      reportFatalError("threaded runtime heap exhausted");
    return Base;
  }

  std::vector<Value> Low;
  std::atomic<uint64_t> HeapPtr{0};
  /// Set by any context that hit the step cap, so the final ExecResult can
  /// report budget exhaustion structurally even when the failing context
  /// was a worker whose message is summarized away.
  std::atomic<bool> BudgetExhausted{false};
};

//===----------------------------------------------------------------------===//
// Hooks
//===----------------------------------------------------------------------===//

/// What stopped a runEngine call.
enum class ExecStop {
  Returned,    ///< base frame returned (ExecContext::Returned is set)
  EdgeStopped, ///< an edge hook stopped execution *before* the edge was
               ///< taken; the frame's PC stays on the terminator
  Abandoned,   ///< a sync hook asked to abandon the context (dead parallel
               ///< iteration); no error
  Trapped,     ///< runtime error or budget exhaustion (Error is set)
};

/// The no-op hook set: everything compiles away. Drivers derive from this
/// and override what they need; the two `Wants*` constants gate the edge
/// bookkeeping and the instruction callbacks at compile time.
struct DefaultExecHooks {
  static constexpr bool WantsInstruction = false;
  static constexpr bool WantsEdges = false;

  /// After the original instruction \p Src executed. Fires once per
  /// original instruction even inside fused superinstructions.
  void onInstruction(const Instruction *Src, unsigned Cycles) {
    (void)Src;
    (void)Cycles;
  }
  /// \returns false to stop execution before the edge is taken.
  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    (void)From;
    (void)To;
    return true;
  }
  /// Wait / SignalOp / IterStart; \p Src is the source instruction (sync
  /// ownership is identity-based). \returns false to abandon the context.
  bool sync(const DecodedInst &I, const Instruction *Src) {
    (void)I;
    (void)Src;
    return true;
  }
  void fence() {}
};

/// Hooks forwarding to an ExecObserver (sequential driver with observer).
struct ObserverExecHooks : DefaultExecHooks {
  static constexpr bool WantsInstruction = true;
  static constexpr bool WantsEdges = true;

  ObserverExecHooks(ExecObserver &Obs, ExecState &State)
      : Obs(Obs), State(State) {}

  void onInstruction(const Instruction *Src, unsigned Cycles) {
    Obs.onInstruction(Src, Cycles, State);
  }
  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    Obs.onEdge(From, To, State);
    return true;
  }

  ExecObserver &Obs;
  ExecState &State;
};

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

// Both dispatch modes share every handler body below; only how control
// reaches a handler differs. Handlers exit with `goto step_done` (ordinary
// instruction: post-report, PC+1), `goto dispatch` (control transfer, PC
// already set) or `goto reframe` (call/return: re-derive cached frame
// state) — all three labels are ordinary labels valid in both modes.
#if defined(HELIX_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define HELIX_ENGINE_THREADED 1
#define HELIX_DISPATCH_BEGIN(KEY) goto *JumpTable[uint8_t(KEY)];
#define HELIX_CASE(N) xop_##N:
#define HELIX_DISPATCH_END()
#else
#define HELIX_ENGINE_THREADED 0
#define HELIX_DISPATCH_BEGIN(KEY) switch (KEY) {
#define HELIX_CASE(N) case XOpcode::N:
// Every dispatch key is covered above: telling the optimizer so deletes
// the jump-table bounds check from the hottest branch in the process.
#define HELIX_DISPATCH_END()                                                   \
  default:                                                                     \
    assert(!"invalid dispatch key");                                           \
    HELIX_UNREACHABLE_HINT();                                                  \
    }
#endif

/// Runs \p Ctx until its base frame returns, a hook stops it, or it traps.
/// The context must have at least one frame. Instantiated per
/// (memory model, hook set) pair so unwanted observation costs nothing.
template <typename MemoryT, typename HooksT>
ExecStop runEngine(const ExecProgram &P, MemoryT &Mem, ExecContext &Ctx,
                   HooksT &&Hooks) {
  using HT = std::remove_reference_t<HooksT>;
  const Value *Consts = P.constants().data();

  // Publish this call's dispatched-instruction counts into the process-wide
  // metrics registry ("exec.dispatch.steps" / "exec.dispatch.steps_fused")
  // on every exit path: one relaxed atomic add per runEngine call, never
  // per instruction, so the hot loop below is untouched. The registry
  // lookups resolve once per template instantiation.
  static obs::Counter &DispatchSteps =
      obs::MetricsRegistry::global().counter("exec.dispatch.steps");
  static obs::Counter &DispatchStepsFused =
      obs::MetricsRegistry::global().counter("exec.dispatch.steps_fused");
  struct StepsPublisher {
    ExecContext &Ctx;
    uint64_t StartSteps, StartFused;
    ~StepsPublisher() {
      DispatchSteps.add(Ctx.Steps - StartSteps);
      DispatchStepsFused.add(Ctx.StepsFused - StartFused);
    }
  } Publish{Ctx, Ctx.Steps, Ctx.StepsFused};

  // Deferred step/cycle accounting. Within a straight-line segment the
  // engine touches no counters at all: each original instruction is one
  // step (fused pairs advance PC by 2 and spend 2 steps), so steps are the
  // PC distance from the segment start, and cycle costs come from the
  // decode-time prefix-sum table in one subtraction. Counters materialize
  // only at control transfers, traps, stops and frame changes — `Steps` and
  // `Cycles` below are "accounted through SegPC", and every exit path
  // flushes them back into the context. The budget check collapses to a
  // single PC-vs-precomputed-limit compare per dispatch.
  uint64_t Steps = Ctx.Steps;
  uint64_t Cycles = Ctx.Cycles;
  uint64_t StepsFused = Ctx.StepsFused;
  const uint64_t MaxSteps = Ctx.MaxSteps;
  auto Flush = [&] {
    Ctx.Steps = Steps;
    Ctx.Cycles = Cycles;
    Ctx.StepsFused = StepsFused;
  };

#if HELIX_ENGINE_THREADED
  static const void *const JumpTable[NumXOpcodes] = {
#define HELIX_LABEL_ADDR(N) &&xop_##N,
      HELIX_XOPCODE_LIST(HELIX_LABEL_ADDR)
#undef HELIX_LABEL_ADDR
  };
#endif

  while (!Ctx.Frames.empty()) {
    // Cache the hot frame state; re-acquired after every frame change.
    ExecContext::Frame &Fr = Ctx.Frames.back();
    const DecodedFunction *DF = Fr.F;
    const DecodedInst *Code = DF->code().data();
    const uint64_t *CycPfx = DF->Body->CyclePrefix.data();
    const uint32_t CodeSize = uint32_t(DF->code().size());
    Value *Regs = Ctx.frameRegs(Fr);
    // The loop walks an instruction pointer, not a PC index: the dispatch
    // fast path then needs no index-to-address arithmetic, and the budget
    // check is a plain pointer compare. PC indexes (frame resume points,
    // IR identity tables, the cycle-prefix table) are reconstructed as
    // Ip - Code only at control transfers and cold exits.
    const DecodedInst *Ip = Code + Fr.PC;
    auto PCOf = [&](const DecodedInst *At) { return uint32_t(At - Code); };

    // Charge the current segment [SegPC, EndExclusive): one step per
    // instruction, cycles from the prefix table. Callers reset the segment
    // (Reseg) when control moves, or stop right after.
    uint32_t SegPC = Fr.PC;
    auto Account = [&](const DecodedInst *EndExclusive) {
      uint32_t End = PCOf(EndExclusive);
      Steps += End - SegPC;
      Cycles += CycPfx[End] - CycPfx[SegPC];
    };
    // Start a segment at NewPC. LimitIp clamps to the code end: a segment
    // never runs past its block's terminator, so a limit at or beyond
    // CodeSize can never fire within the segment — the clamp keeps every
    // computed pointer inside [Code, Code + CodeSize] for any MaxSteps.
    const DecodedInst *LimitIp;
    auto Reseg = [&](uint32_t NewPC) {
      SegPC = NewPC;
      uint64_t Remaining = Steps < MaxSteps ? MaxSteps - Steps : 0;
      uint64_t End = uint64_t(NewPC) + Remaining;
      if (End > CodeSize)
        End = CodeSize;
      LimitIp = Code + End;
    };
    Reseg(Fr.PC);

    // Branchless operand fetch: select the pool base by the tag bit (the
    // compiler emits a cmov), then index. The tag pattern at a given
    // handler's fetch site varies across dynamic instructions, so a branch
    // here mispredicts heavily on mixed workloads.
    auto Val = [&](OperandRef R) -> Value {
      const Value *Base = (R & ConstOperandBit) ? Consts : Regs;
      return Base[R & ~ConstOperandBit];
    };
    auto CallArg = [&](const DecodedInst &I, unsigned K) -> Value {
      return Val(K < 2 ? I.Ops[K]
                       : DF->Body->ExtraOperands[I.ExtraOps + (K - 2)]);
    };
    auto Trap = [&](const DecodedInst *At, const char *Msg) HELIX_NOINLINE_COLD {
      // The trapping instruction's step and cycles are charged, exactly as
      // the eager engine counted them at dispatch before the handler ran.
      Account(At + 1);
      uint32_t AtPC = PCOf(At);
      Ctx.Error = formatStr("@%s/%s: %s", DF->Src->name().c_str(),
                            DF->BlockOf[AtPC]->name().c_str(), Msg);
      Fr.PC = AtPC;
      Flush();
      return ExecStop::Trapped;
    };
    // Budget exhausted with \p Stop not yet executed: everything before
    // it ran and is charged; execution resumes (if the driver raises the
    // cap) at Stop. Serves both the dispatch check and the fused-pair
    // straddle check (there Stop is the unexecuted tail).
    auto BudgetStop = [&](const DecodedInst *Stop) HELIX_NOINLINE_COLD {
      Account(Stop);
      Ctx.Error = formatStr("instruction budget exhausted (%llu)",
                            (unsigned long long)Ctx.MaxSteps);
      Ctx.BudgetExhausted = true;
      Fr.PC = PCOf(Stop);
      Flush();
      return ExecStop::Trapped;
    };

  dispatch:
    assert(Ip < Code + CodeSize && "ran off the decoded code");
    if (HELIX_UNLIKELY(Ip >= LimitIp))
      return BudgetStop(Ip);
    {
      const DecodedInst &I = *Ip;

      HELIX_DISPATCH_BEGIN(I.X)

      HELIX_CASE(Add)
      Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) +
                                          uint64_t(Val(I.Ops[1]).asInt())));
      goto step_done;
      HELIX_CASE(Sub)
      Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) -
                                          uint64_t(Val(I.Ops[1]).asInt())));
      goto step_done;
      HELIX_CASE(Mul)
      Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) *
                                          uint64_t(Val(I.Ops[1]).asInt())));
      goto step_done;
      HELIX_CASE(Div) {
        int64_t B = Val(I.Ops[1]).asInt();
        if (B == 0)
          return Trap(Ip, "integer division by zero");
        Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt() / B);
        goto step_done;
      }
      HELIX_CASE(Rem) {
        int64_t B = Val(I.Ops[1]).asInt();
        if (B == 0)
          return Trap(Ip, "integer remainder by zero");
        Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt() % B);
        goto step_done;
      }
      HELIX_CASE(And)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() & Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(Or)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() | Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(Xor)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() ^ Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(Shl)
      Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt())
                                          << (Val(I.Ops[1]).asInt() & 63)));
      goto step_done;
      HELIX_CASE(Shr)
      Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) >>
                                          (Val(I.Ops[1]).asInt() & 63)));
      goto step_done;
      HELIX_CASE(FAdd)
      Regs[I.Dest] =
          Value::ofFloat(Val(I.Ops[0]).asFloat() + Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FSub)
      Regs[I.Dest] =
          Value::ofFloat(Val(I.Ops[0]).asFloat() - Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FMul)
      Regs[I.Dest] =
          Value::ofFloat(Val(I.Ops[0]).asFloat() * Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FDiv)
      Regs[I.Dest] =
          Value::ofFloat(Val(I.Ops[0]).asFloat() / Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(IntToFP)
      Regs[I.Dest] = Value::ofFloat(Val(I.Ops[0]).asFloat());
      goto step_done;
      HELIX_CASE(FPToInt)
      Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt());
      goto step_done;
      HELIX_CASE(CmpEQ)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() == Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(CmpNE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() != Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(CmpLT)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() < Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(CmpLE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() <= Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(CmpGT)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() > Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(CmpGE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asInt() >= Val(I.Ops[1]).asInt());
      goto step_done;
      HELIX_CASE(FCmpEQ)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() == Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FCmpNE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() != Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FCmpLT)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() < Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FCmpLE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() <= Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FCmpGT)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() > Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(FCmpGE)
      Regs[I.Dest] =
          Value::ofInt(Val(I.Ops[0]).asFloat() >= Val(I.Ops[1]).asFloat());
      goto step_done;
      HELIX_CASE(Mov)
      Regs[I.Dest] = Val(I.Ops[0]);
      goto step_done;
      HELIX_CASE(Load) {
        int64_t Addr = Val(I.Ops[0]).asInt();
        if (Addr <= 0)
          return Trap(Ip, "load from null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          Regs[I.Dest] = Idx < Ctx.Stack.size() ? Ctx.Stack[Idx] : Value();
        } else {
          Regs[I.Dest] = Mem.load(A);
        }
        goto step_done;
      }
      HELIX_CASE(Store) {
        int64_t Addr = Val(I.Ops[1]).asInt();
        if (Addr <= 0)
          return Trap(Ip, "store to null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          if (Idx >= Ctx.Stack.size())
            Ctx.Stack.resize(Idx + 1);
          Ctx.Stack[Idx] = Val(I.Ops[0]);
        } else {
          Mem.store(A, Val(I.Ops[0]));
        }
        goto step_done;
      }
      HELIX_CASE(Alloca) {
        uint64_t Base = ExecStackBase + Ctx.StackPtr;
        Ctx.StackPtr += uint64_t(I.Imm);
        if (Ctx.Stack.size() < Ctx.StackPtr)
          Ctx.Stack.resize(Ctx.StackPtr);
        Regs[I.Dest] = Value::ofInt(int64_t(Base));
        goto step_done;
      }
      HELIX_CASE(HeapAlloc) {
        int64_t N = Val(I.Ops[0]).asInt();
        if (N <= 0)
          return Trap(Ip, "heap allocation of non-positive size");
        Regs[I.Dest] = Value::ofInt(int64_t(Mem.heapAlloc(uint64_t(N))));
        goto step_done;
      }
      HELIX_CASE(Br) {
        Account(Ip + 1); // the branch itself is charged, taken or stopped
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        if constexpr (HT::WantsEdges) {
          if (!Hooks.onEdge(DF->BlockOf[PCOf(Ip)], DF->BlockOf[I.Succ1])) {
            Fr.PC = PCOf(Ip);
            Flush();
            return ExecStop::EdgeStopped;
          }
        }
        Ip = Code + I.Succ1;
        Reseg(I.Succ1);
        goto dispatch;
      }
      HELIX_CASE(CondBr) {
        Account(Ip + 1);
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        uint32_t Target = Val(I.Ops[0]).asInt() != 0 ? I.Succ1 : I.Succ2;
        if constexpr (HT::WantsEdges) {
          if (!Hooks.onEdge(DF->BlockOf[PCOf(Ip)], DF->BlockOf[Target])) {
            Fr.PC = PCOf(Ip);
            Flush();
            return ExecStop::EdgeStopped;
          }
        }
        Ip = Code + Target;
        Reseg(Target);
        goto dispatch;
      }
      HELIX_CASE(Call) {
        Account(Ip + 1);
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        const DecodedFunction &CF = P.function(I.Callee);
        assert(I.NumOperands <= CF.NumRegs && "more call args than registers");
        uint64_t Base = Ctx.RegTop;
        Ctx.ensureRegs(Base + CF.NumRegs); // may move the register stack...
        Regs = Ctx.frameRegs(Fr);          // ...so re-derive our window
        Value *CalleeRegs = Ctx.RegStack.data() + Base;
        unsigned NArgs = I.NumOperands;
        for (unsigned K = 0; K != NArgs; ++K)
          CalleeRegs[K] = CallArg(I, K);
        std::fill(CalleeRegs + NArgs, CalleeRegs + CF.NumRegs, Value());
        Ctx.RegTop = Base + CF.NumRegs;
        Fr.PC = PCOf(Ip) + 1; // resume after the call upon return
        ExecContext::Frame NewFr;
        NewFr.F = &CF;
        NewFr.RegBase = uint32_t(Base);
        NewFr.SavedSP = Ctx.StackPtr;
        NewFr.DestRegInCaller = I.Dest;
        NewFr.WantsResult = I.Dest != ~0u;
        Ctx.Frames.push_back(NewFr);
        goto reframe;
      }
      HELIX_CASE(Ret) {
        Account(Ip + 1);
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        Value RV = I.NumOperands == 1 ? Val(I.Ops[0]) : Value();
        Ctx.StackPtr = Fr.SavedSP;
        uint32_t DestReg = Fr.DestRegInCaller;
        bool Wants = Fr.WantsResult;
        Ctx.RegTop = Fr.RegBase; // slide the register window back
        Ctx.Frames.pop_back();
        if (Ctx.Frames.empty()) {
          Ctx.Returned = RV;
          Flush();
          return ExecStop::Returned;
        }
        if (Wants && DestReg != ~0u)
          Ctx.frameRegs(Ctx.Frames.back())[DestReg] = RV;
        goto reframe;
      }
      HELIX_CASE(Wait)
      HELIX_CASE(SignalOp)
      HELIX_CASE(IterStart)
      // Sequentially these are no-ops; the threaded driver's hooks give
      // them their synchronization semantics.
      if (!Hooks.sync(I, DF->SrcOf[PCOf(Ip)])) {
        // An abandoned sync op is charged (and re-charged on resume),
        // matching the eager engine's count-at-dispatch behavior.
        Account(Ip + 1);
        Fr.PC = PCOf(Ip);
        Flush();
        return ExecStop::Abandoned;
      }
      goto step_done;
      HELIX_CASE(MemFence)
      Hooks.fence();
      goto step_done;
      HELIX_CASE(Nop)
      goto step_done;

      // --- Fused superinstructions ---------------------------------------
      // Each handler executes the head, then the untouched tail at PC+1,
      // replaying the unfused engine's step accounting, observer ordering
      // (non-control after executing, control before transferring, edges
      // after) and trap points instruction for instruction.

      // A fused pair spends two budget steps. Between the halves (head
      // executed and reported, its step charged) stop exactly where the
      // unfused engine would when the budget runs out: at the tail, which
      // has not run. Keeping this inside the fused handlers leaves the
      // per-dispatch fast path with a single budget compare. Ip+1 >= LimitIp
      // is precisely "the head was the last step the budget allowed".
#define HELIX_FUSED_TAIL_BUDGET_CHECK()                                        \
  if (HELIX_UNLIKELY(Ip + 1 >= LimitIp))                                       \
    return BudgetStop(Ip + 1);

#define HELIX_CMPBR_CASE(N, ACC, OP)                                           \
  HELIX_CASE(N) {                                                              \
    bool Cond = Val(I.Ops[0]).ACC() OP Val(I.Ops[1]).ACC();                    \
    Regs[I.Dest] = Value::ofInt(Cond); /* may be live across the branch */     \
    if constexpr (HT::WantsInstruction)                                        \
      Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);                      \
    HELIX_FUSED_TAIL_BUDGET_CHECK()                                            \
    const DecodedInst &T = Ip[1];                                              \
    StepsFused += 2;                                                           \
    Account(Ip + 2);                                                           \
    if constexpr (HT::WantsInstruction)                                        \
      Hooks.onInstruction(DF->SrcOf[PCOf(Ip) + 1], T.Cycles);                  \
    uint32_t Target = Cond ? T.Succ1 : T.Succ2;                                \
    if constexpr (HT::WantsEdges) {                                            \
      if (!Hooks.onEdge(DF->BlockOf[PCOf(Ip) + 1], DF->BlockOf[Target])) {     \
        Fr.PC = PCOf(Ip) + 1;                                                  \
        Flush();                                                               \
        return ExecStop::EdgeStopped;                                          \
      }                                                                        \
    }                                                                          \
    Ip = Code + Target;                                                        \
    Reseg(Target);                                                             \
    goto dispatch;                                                             \
  }

      HELIX_CMPBR_CASE(CmpEQBr, asInt, ==)
      HELIX_CMPBR_CASE(CmpNEBr, asInt, !=)
      HELIX_CMPBR_CASE(CmpLTBr, asInt, <)
      HELIX_CMPBR_CASE(CmpLEBr, asInt, <=)
      HELIX_CMPBR_CASE(CmpGTBr, asInt, >)
      HELIX_CMPBR_CASE(CmpGEBr, asInt, >=)
      HELIX_CMPBR_CASE(FCmpEQBr, asFloat, ==)
      HELIX_CMPBR_CASE(FCmpNEBr, asFloat, !=)
      HELIX_CMPBR_CASE(FCmpLTBr, asFloat, <)
      HELIX_CMPBR_CASE(FCmpLEBr, asFloat, <=)
      HELIX_CMPBR_CASE(FCmpGTBr, asFloat, >)
      HELIX_CMPBR_CASE(FCmpGEBr, asFloat, >=)
#undef HELIX_CMPBR_CASE

      HELIX_CASE(AddLoad) {
        uint64_t Sum =
            uint64_t(Val(I.Ops[0]).asInt()) + uint64_t(Val(I.Ops[1]).asInt());
        Regs[I.Dest] = Value::ofInt(int64_t(Sum));
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        HELIX_FUSED_TAIL_BUDGET_CHECK()
        const DecodedInst &T = Ip[1];
        StepsFused += 2;
        int64_t Addr = int64_t(Sum);
        if (Addr <= 0)
          return Trap(Ip + 1, "load from null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          Regs[T.Dest] = Idx < Ctx.Stack.size() ? Ctx.Stack[Idx] : Value();
        } else {
          Regs[T.Dest] = Mem.load(A);
        }
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip) + 1], T.Cycles);
        Ip += 2;
        goto dispatch;
      }
      HELIX_CASE(AddStore) {
        uint64_t Sum =
            uint64_t(Val(I.Ops[0]).asInt()) + uint64_t(Val(I.Ops[1]).asInt());
        // Write the sum before reading the store value: the stored operand
        // may name the add's destination register.
        Regs[I.Dest] = Value::ofInt(int64_t(Sum));
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        HELIX_FUSED_TAIL_BUDGET_CHECK()
        const DecodedInst &T = Ip[1];
        StepsFused += 2;
        int64_t Addr = int64_t(Sum);
        if (Addr <= 0)
          return Trap(Ip + 1, "store to null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          if (Idx >= Ctx.Stack.size())
            Ctx.Stack.resize(Idx + 1);
          Ctx.Stack[Idx] = Val(T.Ops[0]);
        } else {
          Mem.store(A, Val(T.Ops[0]));
        }
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip) + 1], T.Cycles);
        Ip += 2;
        goto dispatch;
      }
      HELIX_CASE(SyncPair) {
        if (!Hooks.sync(I, DF->SrcOf[PCOf(Ip)])) {
          Account(Ip + 1); // head abandoned: only its step was spent
          Fr.PC = PCOf(Ip);
          Flush();
          return ExecStop::Abandoned;
        }
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
        HELIX_FUSED_TAIL_BUDGET_CHECK()
        const DecodedInst &T = Ip[1];
        StepsFused += 2;
        if (!Hooks.sync(T, DF->SrcOf[PCOf(Ip) + 1])) {
          Account(Ip + 2); // tail abandoned: both halves charged
          Fr.PC = PCOf(Ip) + 1;
          Flush();
          return ExecStop::Abandoned;
        }
        if constexpr (HT::WantsInstruction)
          Hooks.onInstruction(DF->SrcOf[PCOf(Ip) + 1], T.Cycles);
        Ip += 2;
        goto dispatch;
      }

      // Generic ALU pair handlers: head and tail are trap-free integer ALU
      // ops, executed back to back in one dispatch. The head's destination
      // is written before the tail's operands are read, so a tail that
      // consumes the head's result (the common case) behaves exactly like
      // two sequential dispatches.
#define HELIX_ALU_Add(A, B) int64_t(uint64_t(A) + uint64_t(B))
#define HELIX_ALU_Sub(A, B) int64_t(uint64_t(A) - uint64_t(B))
#define HELIX_ALU_Mul(A, B) int64_t(uint64_t(A) * uint64_t(B))
#define HELIX_ALU_And(A, B) ((A) & (B))
#define HELIX_ALU_Or(A, B) ((A) | (B))
#define HELIX_ALU_Xor(A, B) ((A) ^ (B))
#define HELIX_ALU_Shl(A, B) int64_t(uint64_t(A) << ((B) & 63))
#define HELIX_ALU_Shr(A, B) int64_t(uint64_t(A) >> ((B) & 63))

#define HELIX_ALUPAIR_CASE(HD, TL)                                             \
  HELIX_CASE(HD##TL) {                                                         \
    Regs[I.Dest] = Value::ofInt(                                               \
        HELIX_ALU_##HD(Val(I.Ops[0]).asInt(), Val(I.Ops[1]).asInt()));         \
    if constexpr (HT::WantsInstruction)                                        \
      Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);                      \
    HELIX_FUSED_TAIL_BUDGET_CHECK()                                            \
    const DecodedInst &T = Ip[1];                                              \
    StepsFused += 2;                                                           \
    Regs[T.Dest] = Value::ofInt(                                               \
        HELIX_ALU_##TL(Val(T.Ops[0]).asInt(), Val(T.Ops[1]).asInt()));         \
    if constexpr (HT::WantsInstruction)                                        \
      Hooks.onInstruction(DF->SrcOf[PCOf(Ip) + 1], T.Cycles);                  \
    Ip += 2;                                                                   \
    goto dispatch;                                                             \
  }
#define HELIX_ALUPAIR_CASE_ROW(HD)                                             \
  HELIX_ALUPAIR_CASE(HD, Add)                                                  \
  HELIX_ALUPAIR_CASE(HD, Sub)                                                  \
  HELIX_ALUPAIR_CASE(HD, Mul)                                                  \
  HELIX_ALUPAIR_CASE(HD, And)                                                  \
  HELIX_ALUPAIR_CASE(HD, Or)                                                   \
  HELIX_ALUPAIR_CASE(HD, Xor)                                                  \
  HELIX_ALUPAIR_CASE(HD, Shl)                                                  \
  HELIX_ALUPAIR_CASE(HD, Shr)

      HELIX_ALUPAIR_CASE_ROW(Add)
      HELIX_ALUPAIR_CASE_ROW(Sub)
      HELIX_ALUPAIR_CASE_ROW(Mul)
      HELIX_ALUPAIR_CASE_ROW(And)
      HELIX_ALUPAIR_CASE_ROW(Or)
      HELIX_ALUPAIR_CASE_ROW(Xor)
      HELIX_ALUPAIR_CASE_ROW(Shl)
      HELIX_ALUPAIR_CASE_ROW(Shr)
#undef HELIX_ALUPAIR_CASE_ROW
#undef HELIX_ALUPAIR_CASE

      HELIX_DISPATCH_END()

    step_done:
      if constexpr (HT::WantsInstruction)
        Hooks.onInstruction(DF->SrcOf[PCOf(Ip)], I.Cycles);
      ++Ip;
      goto dispatch;
    }
  reframe:;
  }
  Flush();
  return ExecStop::Returned;
}

#undef HELIX_ALU_Add
#undef HELIX_ALU_Sub
#undef HELIX_ALU_Mul
#undef HELIX_ALU_And
#undef HELIX_ALU_Or
#undef HELIX_ALU_Xor
#undef HELIX_ALU_Shl
#undef HELIX_ALU_Shr
#undef HELIX_FUSED_TAIL_BUDGET_CHECK
#undef HELIX_DISPATCH_BEGIN
#undef HELIX_CASE
#undef HELIX_DISPATCH_END
#undef HELIX_ENGINE_THREADED

} // namespace helix

#endif // HELIX_EXEC_EXECENGINE_H
