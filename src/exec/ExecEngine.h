//===----------------------------------------------------------------------===//
///
/// \file
/// The shared execution engine: one tight dispatch loop over the decoded
/// instruction stream (exec/ExecProgram.h), parameterized over a memory
/// model and a hook set so the three drivers stay thin:
///
///   - sim/Interpreter: private growable memory, optional observer hooks
///     (the profiler and the trace collector attach here);
///   - runtime/ThreadedRuntime: a pre-sized shared arena, edge-watch hooks
///     for loop entry/back-edge/exit detection and sync-op hooks for the
///     Signal/Wait release/acquire protocol;
///   - differential tests and benches drive all of the above against the
///     retained tree-walk reference (sim/TreeWalkInterpreter.h).
///
/// Hooks are compile-time: a driver that wants no observation instantiates
/// the engine with the default hooks and the callbacks (and the edge
/// bookkeeping feeding them) vanish entirely from the hot loop.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_EXEC_EXECENGINE_H
#define HELIX_EXEC_EXECENGINE_H

#include "exec/ExecLimits.h"
#include "exec/ExecProgram.h"
#include "obs/Metrics.h"
#include "support/Compiler.h"
#include "support/Format.h"

#include <atomic>
#include <string>
#include <type_traits>
#include <vector>

namespace helix {

//===----------------------------------------------------------------------===//
// Results and observation
//===----------------------------------------------------------------------===//

/// Outcome of a run.
struct ExecResult {
  bool Ok = false;
  std::string Error;      ///< set when Ok is false
  /// The run stopped on an instruction/step cap rather than a trap.
  /// Structural (not derived from Error text): the differential oracle
  /// classifies hang-shaped failures through this flag.
  bool BudgetExhausted = false;
  Value ReturnValue;      ///< main's return value
  uint64_t Cycles = 0;    ///< accumulated cost-model cycles
  uint64_t Instructions = 0;
};

/// Introspection handle observers receive. Implemented by every engine an
/// observer can attach to (the decoded sequential driver and the tree-walk
/// reference), so one observer — the profiler, the trace collector —
/// serves both.
class ExecState {
public:
  virtual unsigned callDepth() const = 0;
  virtual const Function *currentFunction() const = 0;
  /// Value of an operand in the current (innermost) frame.
  virtual Value operandValue(const Operand &O) const = 0;
  /// Base address of global \p Idx.
  virtual uint64_t globalBase(unsigned Idx) const = 0;

protected:
  ~ExecState() = default;
};

/// Receives execution events. All callbacks are invoked synchronously
/// during the run, in the same order the tree-walk interpreter always
/// used: non-control instructions report after executing, control
/// instructions report before transferring, edges report after the
/// transfer.
class ExecObserver {
public:
  virtual ~ExecObserver();
  /// After \p I executed, costing \p Cycles.
  virtual void onInstruction(const Instruction *I, unsigned Cycles,
                             ExecState &State) {
    (void)I;
    (void)Cycles;
    (void)State;
  }
  /// Control transferred along the CFG edge \p From -> \p To (same frame).
  virtual void onEdge(const BasicBlock *From, const BasicBlock *To,
                      ExecState &State) {
    (void)From;
    (void)To;
    (void)State;
  }
};

/// Forwards every event to two observers, in order. Engines hold a single
/// observer slot; legs that need both tracing and dependence-witness
/// collection chain through this.
class FanoutObserver : public ExecObserver {
public:
  FanoutObserver(ExecObserver &First, ExecObserver &Second)
      : A(First), B(Second) {}
  void onInstruction(const Instruction *I, unsigned Cycles,
                     ExecState &State) override {
    A.onInstruction(I, Cycles, State);
    B.onInstruction(I, Cycles, State);
  }
  void onEdge(const BasicBlock *From, const BasicBlock *To,
              ExecState &State) override {
    A.onEdge(From, To, State);
    B.onEdge(From, To, State);
  }

private:
  ExecObserver &A;
  ExecObserver &B;
};

//===----------------------------------------------------------------------===//
// Execution context and memory models
//===----------------------------------------------------------------------===//

/// Stack (Alloca) addresses live in a high range disjoint from the
/// globals+heap segment — the layout every engine shares.
inline constexpr uint64_t ExecStackBase = uint64_t(1) << 40;

/// One thread of execution: a frame stack plus the private Alloca region.
/// The globals+heap segment lives in the memory model (private to the
/// context for sequential runs, shared across contexts for threaded ones).
struct ExecContext {
  struct Frame {
    const DecodedFunction *F = nullptr;
    uint32_t PC = 0;
    uint64_t SavedSP = 0;
    uint32_t DestRegInCaller = ~0u;
    bool WantsResult = false;
    std::vector<Value> Regs;
  };

  std::vector<Frame> Frames;
  std::vector<Value> Stack; ///< alloca region
  uint64_t StackPtr = 0;
  Value Returned;
  std::string Error;
  bool BudgetExhausted = false;
  uint64_t Steps = 0;
  uint64_t MaxSteps = ExecLimits::DefaultMaxSteps;
  uint64_t Cycles = 0;

  /// Pushes a fresh base/call frame for \p DF starting at its entry PC.
  Frame &pushFrame(const DecodedFunction &DF) {
    Frame Fr;
    Fr.F = &DF;
    Fr.SavedSP = StackPtr;
    Fr.Regs.assign(DF.NumRegs, Value());
    Frames.push_back(std::move(Fr));
    return Frames.back();
  }
};

/// Growable private memory of a sequential execution. Loads outside the
/// populated region read zero; stores extend it.
class PrivateExecMemory {
public:
  explicit PrivateExecMemory(const ExecProgram &P) {
    Low.assign(P.globalEnd(), Value());
    P.initGlobals(Low);
    HeapPtr = P.globalEnd();
  }

  Value load(uint64_t Addr) const {
    return Addr < Low.size() ? Low[Addr] : Value();
  }
  void store(uint64_t Addr, Value V) {
    if (Addr >= Low.size())
      Low.resize(Addr + 1);
    Low[Addr] = V;
  }
  uint64_t heapAlloc(uint64_t N) {
    uint64_t Base = HeapPtr;
    HeapPtr += N;
    if (Low.size() < HeapPtr)
      Low.resize(HeapPtr);
    return Base;
  }

  std::vector<Value> Low; ///< globals + heap
  uint64_t HeapPtr = 0;
};

/// Shared program memory of a threaded execution: globals + heap in one
/// pre-sized arena (so worker threads never race a reallocation), with an
/// atomic heap bump allocator. Per-context stacks live elsewhere.
class SharedExecMemory {
public:
  explicit SharedExecMemory(const ExecProgram &P,
                            uint64_t HeapHeadroom = uint64_t(1) << 22) {
    Low.assign(P.globalEnd() + HeapHeadroom, Value());
    P.initGlobals(Low);
    HeapPtr.store(P.globalEnd(), std::memory_order_relaxed);
  }

  Value load(uint64_t Addr) const {
    return Addr < Low.size() ? Low[Addr] : Value();
  }
  void store(uint64_t Addr, Value V) {
    if (Addr >= Low.size())
      reportFatalError("threaded runtime store out of arena");
    Low[Addr] = V;
  }
  uint64_t heapAlloc(uint64_t N) {
    uint64_t Base = HeapPtr.fetch_add(N);
    if (Base + N > Low.size())
      reportFatalError("threaded runtime heap exhausted");
    return Base;
  }

  std::vector<Value> Low;
  std::atomic<uint64_t> HeapPtr{0};
  /// Set by any context that hit the step cap, so the final ExecResult can
  /// report budget exhaustion structurally even when the failing context
  /// was a worker whose message is summarized away.
  std::atomic<bool> BudgetExhausted{false};
};

//===----------------------------------------------------------------------===//
// Hooks
//===----------------------------------------------------------------------===//

/// What stopped a runEngine call.
enum class ExecStop {
  Returned,    ///< base frame returned (ExecContext::Returned is set)
  EdgeStopped, ///< an edge hook stopped execution *before* the edge was
               ///< taken; the frame's PC stays on the terminator
  Abandoned,   ///< a sync hook asked to abandon the context (dead parallel
               ///< iteration); no error
  Trapped,     ///< runtime error or budget exhaustion (Error is set)
};

/// The no-op hook set: everything compiles away. Drivers derive from this
/// and override what they need; the two `Wants*` constants gate the edge
/// bookkeeping and the instruction callbacks at compile time.
struct DefaultExecHooks {
  static constexpr bool WantsInstruction = false;
  static constexpr bool WantsEdges = false;

  void onInstruction(const DecodedInst &I, unsigned Cycles) {
    (void)I;
    (void)Cycles;
  }
  /// \returns false to stop execution before the edge is taken.
  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    (void)From;
    (void)To;
    return true;
  }
  /// Wait / SignalOp / IterStart. \returns false to abandon the context.
  bool sync(const DecodedInst &I) {
    (void)I;
    return true;
  }
  void fence() {}
};

/// Hooks forwarding to an ExecObserver (sequential driver with observer).
struct ObserverExecHooks : DefaultExecHooks {
  static constexpr bool WantsInstruction = true;
  static constexpr bool WantsEdges = true;

  ObserverExecHooks(ExecObserver &Obs, ExecState &State)
      : Obs(Obs), State(State) {}

  void onInstruction(const DecodedInst &I, unsigned Cycles) {
    Obs.onInstruction(I.Src, Cycles, State);
  }
  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    Obs.onEdge(From, To, State);
    return true;
  }

  ExecObserver &Obs;
  ExecState &State;
};

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

/// Runs \p Ctx until its base frame returns, a hook stops it, or it traps.
/// The context must have at least one frame. Instantiated per
/// (memory model, hook set) pair so unwanted observation costs nothing.
template <typename MemoryT, typename HooksT>
ExecStop runEngine(const ExecProgram &P, MemoryT &Mem, ExecContext &Ctx,
                   HooksT &&Hooks) {
  const Value *Consts = P.constants().data();

  // Publish this call's dispatched-instruction count into the process-wide
  // metrics registry ("exec.dispatch.steps") on every exit path: one
  // relaxed atomic add per runEngine call, never per instruction, so the
  // hot loop below is untouched. The registry lookup resolves once per
  // template instantiation.
  static obs::Counter &DispatchSteps =
      obs::MetricsRegistry::global().counter("exec.dispatch.steps");
  struct StepsPublisher {
    ExecContext &Ctx;
    uint64_t Start;
    obs::Counter &C;
    ~StepsPublisher() { C.add(Ctx.Steps - Start); }
  } Publish{Ctx, Ctx.Steps, DispatchSteps};

  while (!Ctx.Frames.empty()) {
    // Cache the hot frame state; re-acquired after every frame change.
    ExecContext::Frame &Fr = Ctx.Frames.back();
    const DecodedFunction *DF = Fr.F;
    const DecodedInst *Code = DF->Code.data();
    Value *Regs = Fr.Regs.data();
    uint32_t PC = Fr.PC;

    auto Val = [&](OperandRef R) -> Value {
      return (R & ConstOperandBit) ? Consts[R & ~ConstOperandBit] : Regs[R];
    };
    auto CallArg = [&](const DecodedInst &I, unsigned K) -> Value {
      return Val(K < 2 ? I.Ops[K] : DF->ExtraOperands[I.ExtraOps + (K - 2)]);
    };
    auto Trap = [&](const char *Msg) {
      Ctx.Error = formatStr("@%s/%s: %s", DF->Src->name().c_str(),
                            DF->BlockOf[PC]->name().c_str(), Msg);
      Fr.PC = PC;
      return ExecStop::Trapped;
    };

    bool FrameChanged = false;
    while (!FrameChanged) {
      assert(PC < DF->Code.size() && "ran off the decoded code");
      if (Ctx.Steps >= Ctx.MaxSteps) {
        Ctx.Error = formatStr("instruction budget exhausted (%llu)",
                              (unsigned long long)Ctx.MaxSteps);
        Ctx.BudgetExhausted = true;
        Fr.PC = PC;
        return ExecStop::Trapped;
      }
      ++Ctx.Steps;
      const DecodedInst &I = Code[PC];
      Ctx.Cycles += I.Cycles;

      switch (I.Op) {
      case Opcode::Add:
        Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) +
                                            uint64_t(Val(I.Ops[1]).asInt())));
        break;
      case Opcode::Sub:
        Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) -
                                            uint64_t(Val(I.Ops[1]).asInt())));
        break;
      case Opcode::Mul:
        Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) *
                                            uint64_t(Val(I.Ops[1]).asInt())));
        break;
      case Opcode::Div: {
        int64_t B = Val(I.Ops[1]).asInt();
        if (B == 0)
          return Trap("integer division by zero");
        Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt() / B);
        break;
      }
      case Opcode::Rem: {
        int64_t B = Val(I.Ops[1]).asInt();
        if (B == 0)
          return Trap("integer remainder by zero");
        Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt() % B);
        break;
      }
      case Opcode::And:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() & Val(I.Ops[1]).asInt());
        break;
      case Opcode::Or:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() | Val(I.Ops[1]).asInt());
        break;
      case Opcode::Xor:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() ^ Val(I.Ops[1]).asInt());
        break;
      case Opcode::Shl:
        Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt())
                                            << (Val(I.Ops[1]).asInt() & 63)));
        break;
      case Opcode::Shr:
        Regs[I.Dest] = Value::ofInt(int64_t(uint64_t(Val(I.Ops[0]).asInt()) >>
                                            (Val(I.Ops[1]).asInt() & 63)));
        break;
      case Opcode::FAdd:
        Regs[I.Dest] =
            Value::ofFloat(Val(I.Ops[0]).asFloat() + Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FSub:
        Regs[I.Dest] =
            Value::ofFloat(Val(I.Ops[0]).asFloat() - Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FMul:
        Regs[I.Dest] =
            Value::ofFloat(Val(I.Ops[0]).asFloat() * Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FDiv:
        Regs[I.Dest] =
            Value::ofFloat(Val(I.Ops[0]).asFloat() / Val(I.Ops[1]).asFloat());
        break;
      case Opcode::IntToFP:
        Regs[I.Dest] = Value::ofFloat(Val(I.Ops[0]).asFloat());
        break;
      case Opcode::FPToInt:
        Regs[I.Dest] = Value::ofInt(Val(I.Ops[0]).asInt());
        break;
      case Opcode::CmpEQ:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() == Val(I.Ops[1]).asInt());
        break;
      case Opcode::CmpNE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() != Val(I.Ops[1]).asInt());
        break;
      case Opcode::CmpLT:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() < Val(I.Ops[1]).asInt());
        break;
      case Opcode::CmpLE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() <= Val(I.Ops[1]).asInt());
        break;
      case Opcode::CmpGT:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() > Val(I.Ops[1]).asInt());
        break;
      case Opcode::CmpGE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asInt() >= Val(I.Ops[1]).asInt());
        break;
      case Opcode::FCmpEQ:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() == Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FCmpNE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() != Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FCmpLT:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() < Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FCmpLE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() <= Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FCmpGT:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() > Val(I.Ops[1]).asFloat());
        break;
      case Opcode::FCmpGE:
        Regs[I.Dest] =
            Value::ofInt(Val(I.Ops[0]).asFloat() >= Val(I.Ops[1]).asFloat());
        break;
      case Opcode::Mov:
        Regs[I.Dest] = Val(I.Ops[0]);
        break;
      case Opcode::Load: {
        int64_t Addr = Val(I.Ops[0]).asInt();
        if (Addr <= 0)
          return Trap("load from null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          Regs[I.Dest] = Idx < Ctx.Stack.size() ? Ctx.Stack[Idx] : Value();
        } else {
          Regs[I.Dest] = Mem.load(A);
        }
        break;
      }
      case Opcode::Store: {
        int64_t Addr = Val(I.Ops[1]).asInt();
        if (Addr <= 0)
          return Trap("store to null/negative address");
        uint64_t A = uint64_t(Addr);
        if (A >= ExecStackBase) {
          uint64_t Idx = A - ExecStackBase;
          if (Idx >= Ctx.Stack.size())
            Ctx.Stack.resize(Idx + 1);
          Ctx.Stack[Idx] = Val(I.Ops[0]);
        } else {
          Mem.store(A, Val(I.Ops[0]));
        }
        break;
      }
      case Opcode::Alloca: {
        uint64_t Base = ExecStackBase + Ctx.StackPtr;
        Ctx.StackPtr += uint64_t(I.Imm);
        if (Ctx.Stack.size() < Ctx.StackPtr)
          Ctx.Stack.resize(Ctx.StackPtr);
        Regs[I.Dest] = Value::ofInt(int64_t(Base));
        break;
      }
      case Opcode::HeapAlloc: {
        int64_t N = Val(I.Ops[0]).asInt();
        if (N <= 0)
          return Trap("heap allocation of non-positive size");
        Regs[I.Dest] = Value::ofInt(int64_t(Mem.heapAlloc(uint64_t(N))));
        break;
      }
      case Opcode::Br: {
        if constexpr (std::remove_reference_t<HooksT>::WantsInstruction)
          Hooks.onInstruction(I, I.Cycles);
        if constexpr (std::remove_reference_t<HooksT>::WantsEdges) {
          if (!Hooks.onEdge(DF->BlockOf[PC], DF->BlockOf[I.Succ1])) {
            Fr.PC = PC;
            return ExecStop::EdgeStopped;
          }
        }
        PC = I.Succ1;
        continue;
      }
      case Opcode::CondBr: {
        if constexpr (std::remove_reference_t<HooksT>::WantsInstruction)
          Hooks.onInstruction(I, I.Cycles);
        uint32_t Target = Val(I.Ops[0]).asInt() != 0 ? I.Succ1 : I.Succ2;
        if constexpr (std::remove_reference_t<HooksT>::WantsEdges) {
          if (!Hooks.onEdge(DF->BlockOf[PC], DF->BlockOf[Target])) {
            Fr.PC = PC;
            return ExecStop::EdgeStopped;
          }
        }
        PC = Target;
        continue;
      }
      case Opcode::Call: {
        if constexpr (std::remove_reference_t<HooksT>::WantsInstruction)
          Hooks.onInstruction(I, I.Cycles);
        const DecodedFunction &CF = P.function(I.Callee);
        ExecContext::Frame NewFr;
        NewFr.F = &CF;
        NewFr.SavedSP = Ctx.StackPtr;
        NewFr.DestRegInCaller = I.Dest;
        NewFr.WantsResult = I.Dest != ~0u;
        NewFr.Regs.assign(CF.NumRegs, Value());
        for (unsigned K = 0, E = I.NumOperands; K != E; ++K)
          NewFr.Regs[K] = CallArg(I, K);
        Fr.PC = PC + 1; // resume after the call upon return
        Ctx.Frames.push_back(std::move(NewFr));
        FrameChanged = true;
        continue;
      }
      case Opcode::Ret: {
        if constexpr (std::remove_reference_t<HooksT>::WantsInstruction)
          Hooks.onInstruction(I, I.Cycles);
        Value RV = I.NumOperands == 1 ? Val(I.Ops[0]) : Value();
        Ctx.StackPtr = Fr.SavedSP;
        uint32_t DestReg = Fr.DestRegInCaller;
        bool Wants = Fr.WantsResult;
        Ctx.Frames.pop_back();
        if (Ctx.Frames.empty()) {
          Ctx.Returned = RV;
          return ExecStop::Returned;
        }
        if (Wants && DestReg != ~0u)
          Ctx.Frames.back().Regs[DestReg] = RV;
        FrameChanged = true;
        continue;
      }
      case Opcode::Wait:
      case Opcode::SignalOp:
      case Opcode::IterStart:
        // Sequentially these are no-ops; the threaded driver's hooks give
        // them their synchronization semantics.
        if (!Hooks.sync(I)) {
          Fr.PC = PC;
          return ExecStop::Abandoned;
        }
        break;
      case Opcode::MemFence:
        Hooks.fence();
        break;
      case Opcode::Nop:
        break;
      }

      if constexpr (std::remove_reference_t<HooksT>::WantsInstruction)
        Hooks.onInstruction(I, I.Cycles);
      ++PC;
    }
  }
  return ExecStop::Returned;
}

} // namespace helix

#endif // HELIX_EXEC_EXECENGINE_H
