//===----------------------------------------------------------------------===//
///
/// \file
/// Shared execution-budget constants. Every execution engine (the decoded
/// ExecEngine drivers, the retained tree-walk reference interpreter and the
/// threaded runtime) defends against runaway programs with the same default
/// step cap, and the fuzz hang classifier derives its per-leg budgets from
/// the same headroom formula — one definition instead of a value restated
/// per call site.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_EXEC_EXECLIMITS_H
#define HELIX_EXEC_EXECLIMITS_H

#include <cstdint>

namespace helix {

struct ExecLimits {
  /// Default per-context instruction/step cap: defence against accidental
  /// endless loops when the caller did not choose a budget.
  static constexpr uint64_t DefaultMaxSteps = 400ull * 1000 * 1000;

  /// Budget of a non-reference leg of a differential run whose sequential
  /// reference used \p SeqBudget instructions (or was budgeted at it):
  /// 4x headroom for the sync ops the transform adds, plus a floor so
  /// tiny references don't starve their legs. Saturating — an effectively
  /// unlimited reference budget must not wrap into a tiny leg budget and
  /// classify clean programs as hangs.
  static constexpr uint64_t hangBudget(uint64_t SeqBudget) {
    return SeqBudget > (UINT64_MAX - 10000) / 4 ? UINT64_MAX
                                                : SeqBudget * 4 + 10000;
  }
};

} // namespace helix

#endif // HELIX_EXEC_EXECLIMITS_H
