#include "exec/ExecEngine.h"

using namespace helix;

ExecObserver::~ExecObserver() = default;
