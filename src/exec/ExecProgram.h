//===----------------------------------------------------------------------===//
///
/// \file
/// The decode-once program representation of the execution engine.
///
/// A Module is lowered exactly once into a flat, pre-resolved instruction
/// stream per function: operands are pre-bound to virtual-register slots or
/// constant-pool entries (immediates and global base addresses resolve at
/// decode time), branch targets become flat code indices, and call targets
/// become direct decoded-function indices. The drivers in sim/ (sequential
/// interpretation, trace collection) and runtime/ (the threaded runtime)
/// all dispatch over this one representation — the IR tree is never walked
/// again after decode.
///
/// The IR carries cross-iteration values in registers and storage slots
/// rather than phi nodes, so no phi-move tables are needed: the successor
/// table alone fully describes control flow.
///
/// Decoded programs keep pointers into their source Module (instruction
/// identity for observers and sync-op ownership, block identity for loop
/// metadata), so the Module must outlive the ExecProgram and must not be
/// mutated while one is in use. DecodeCache enforces that contract with a
/// structural fingerprint: a cached decode is only served while the module
/// still hashes to the value it was decoded at.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_EXEC_EXECPROGRAM_H
#define HELIX_EXEC_EXECPROGRAM_H

#include "ir/Module.h"
#include "sim/Value.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace helix {

/// A pre-bound data operand: either a frame register slot or an index into
/// the program's constant pool (bit 31). Decode resolves immediates *and*
/// global addresses into pool constants, so the dispatch loop never
/// switches over operand kinds.
using OperandRef = uint32_t;
inline constexpr OperandRef ConstOperandBit = OperandRef(1) << 31;

/// One pre-decoded instruction. Fixed two inline operand slots cover every
/// opcode except wide calls, whose extra arguments spill into the owning
/// function's side table.
struct DecodedInst {
  Opcode Op = Opcode::Nop;
  uint8_t NumOperands = 0;
  uint16_t Cycles = 1;    ///< opcodeCycles(Op), resolved at decode time
  uint32_t Dest = ~0u;    ///< NoReg when the instruction has no destination
  OperandRef Ops[2] = {0, 0};
  uint32_t ExtraOps = 0;  ///< index into DecodedFunction::ExtraOperands for
                          ///< operands beyond the inline two (calls only)
  uint32_t Succ1 = 0;     ///< flat PC of target1 (Br, CondBr)
  uint32_t Succ2 = 0;     ///< flat PC of target2 (CondBr)
  uint32_t Callee = ~0u;  ///< decoded-function index (Call)
  int64_t Imm = 0;        ///< Alloca size, Wait/Signal segment id
  const Instruction *Src = nullptr; ///< identity for observers / sync sets
};

/// One decoded function: its blocks' instructions laid out back to back in
/// block-layout order (the entry block first, so the entry PC is 0).
struct DecodedFunction {
  const Function *Src = nullptr;
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  std::vector<DecodedInst> Code;
  /// Owning basic block per PC (for edge hooks and trap diagnostics).
  std::vector<const BasicBlock *> BlockOf;
  /// First PC of each block, indexed by BasicBlock::id(); ~0u for ids of
  /// erased blocks.
  std::vector<uint32_t> BlockStart;
  /// Spill area for call operands beyond the two inline slots.
  std::vector<OperandRef> ExtraOperands;

  uint32_t startOf(const BasicBlock *BB) const { return BlockStart[BB->id()]; }
};

/// A fully decoded module plus the memory layout every engine shares:
/// address 0 reserved, globals from address 1, heap after the globals,
/// stack addresses in a disjoint high range.
class ExecProgram {
public:
  explicit ExecProgram(const Module &M);

  const Module &module() const { return *M; }

  unsigned numFunctions() const { return unsigned(Functions.size()); }
  const DecodedFunction &function(uint32_t Idx) const {
    return Functions[Idx];
  }
  /// \returns the decoded function for \p F, or null for foreign functions.
  const DecodedFunction *function(const Function *F) const;
  /// \returns the decoded function named \p Name, or null.
  const DecodedFunction *findFunction(const std::string &Name) const;

  // --- Memory layout ------------------------------------------------------
  uint64_t globalBase(unsigned Idx) const { return GlobalBase[Idx]; }
  /// One past the last global slot == the initial heap pointer.
  uint64_t globalEnd() const { return GlobalEnd; }
  /// Writes the global initializers into \p Low (which must have at least
  /// globalEnd() slots).
  void initGlobals(std::vector<Value> &Low) const;

  const std::vector<Value> &constants() const { return Consts; }

  /// The structural fingerprint of the module at decode time.
  uint64_t fingerprint() const { return Fingerprint; }

  /// Hashes everything execution semantics depend on: globals (sizes,
  /// initializers), function signatures, block layout, and per instruction
  /// the opcode, destination, immediate, operands, branch targets and
  /// callee. Cheap relative to a decode — no allocation, one linear walk.
  static uint64_t fingerprintModule(const Module &M);

private:
  const Module *M;
  std::vector<DecodedFunction> Functions;
  std::unordered_map<const Function *, uint32_t> FunctionIndex;
  std::vector<Value> Consts;
  std::vector<uint64_t> GlobalBase;
  uint64_t GlobalEnd = 1;
  uint64_t Fingerprint = 0;
};

/// Process-wide decode cache: one decoded program per live Module. Keyed on
/// the module's address *and* unique id (so a recycled allocation never
/// resurrects a stale decode) and guarded by the structural fingerprint (so
/// in-place mutation forces a re-decode). Bounded; eviction only drops the
/// cache's own reference — running engines keep their program alive through
/// the shared_ptr.
class DecodeCache {
public:
  /// Counter snapshot: decodes are misses that built a program, hits
  /// served an existing decode, evictions dropped the cache's reference to
  /// make room (running engines keep theirs). Monotonic over the cache's
  /// lifetime; subtract two snapshots for a per-run delta.
  struct Counters {
    uint64_t Decodes = 0;
    uint64_t Hits = 0;
    uint64_t Evictions = 0;
  };

  /// The process-wide instance every driver uses by default.
  static DecodeCache &global();

  /// \returns the decoded program of \p M, decoding at most once per
  /// (module, fingerprint). Thread-safe.
  std::shared_ptr<const ExecProgram> get(const Module &M);

  /// Drops any entry for \p M (call after mutating a module an engine ran).
  void invalidate(const Module &M);
  void clear();

  uint64_t decodes() const { return Decodes.load(std::memory_order_relaxed); }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  Counters counters() const { return {decodes(), hits(), evictions()}; }

private:
  struct Entry {
    uint64_t Uid = 0;
    uint64_t Fingerprint = 0;
    std::shared_ptr<const ExecProgram> Prog;
  };
  static constexpr size_t MaxEntries = 64;

  mutable std::mutex Mutex;
  std::unordered_map<const Module *, Entry> Entries;
  std::atomic<uint64_t> Decodes{0}, Hits{0}, Evictions{0};
};

} // namespace helix

#endif // HELIX_EXEC_EXECPROGRAM_H
