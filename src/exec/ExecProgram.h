//===----------------------------------------------------------------------===//
///
/// \file
/// The decode-once program representation of the execution engine.
///
/// A Module is lowered exactly once into a flat, pre-resolved instruction
/// stream per function: operands are pre-bound to virtual-register slots or
/// constant-pool entries (immediates and global base addresses resolve at
/// decode time), branch targets become flat code indices, and call targets
/// become direct decoded-function indices. The drivers in sim/ (sequential
/// interpretation, trace collection) and runtime/ (the threaded runtime)
/// all dispatch over this one representation — the IR tree is never walked
/// again after decode.
///
/// The representation is split into two layers:
///
///   - ExecCodeBody: the pointer-free, shareable part — the decoded
///     instruction streams, constant pool and memory layout. Content
///     addressed: two structurally identical modules (same fingerprint)
///     share one body, so sweeps and fuzz campaigns that clone-and-
///     transform per point decode each distinct shape once.
///   - ExecProgram: a thin per-module instance binding the body back to
///     IR identity (Instruction/BasicBlock/Function pointers for
///     observers, sync-op ownership and trap diagnostics).
///
/// Decode optionally peephole-fuses hot instruction pairs (cmp+condbr,
/// add+load, add+store, adjacent sync ops) into superinstructions: the
/// fused head gets a fused XOpcode dispatch key while every original
/// field — including the untouched pair tail at PC+1 — stays in place, so
/// PCs, block boundaries and branch targets are unchanged and the fused
/// and unfused programs are layout-identical.
///
/// Program instances keep pointers into their source Module, so the Module
/// must outlive the ExecProgram and must not be mutated while one is in
/// use. DecodeCache enforces that contract with a structural fingerprint:
/// a cached decode is only served while the module still hashes to the
/// value it was decoded at.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_EXEC_EXECPROGRAM_H
#define HELIX_EXEC_EXECPROGRAM_H

#include "ir/Module.h"
#include "sim/Value.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace helix {

/// A pre-bound data operand: either a frame register slot or an index into
/// the program's constant pool (bit 31). Decode resolves immediates *and*
/// global addresses into pool constants, so the dispatch loop never
/// switches over operand kinds.
using OperandRef = uint32_t;
inline constexpr OperandRef ConstOperandBit = OperandRef(1) << 31;

/// The dispatch keys of the engine: every Opcode (numerically mirrored, so
/// an unfused instruction's key is just its opcode) plus the fused
/// superinstructions decode synthesizes. The X-macro also generates the
/// computed-goto jump table in ExecEngine.h — keep the two lists and the
/// Opcode enum order in lock step.
#define HELIX_XOPCODE_PLAIN_LIST(X)                                            \
  X(Add) X(Sub) X(Mul) X(Div) X(Rem) X(And) X(Or) X(Xor) X(Shl) X(Shr)         \
  X(FAdd) X(FSub) X(FMul) X(FDiv) X(IntToFP) X(FPToInt)                        \
  X(CmpEQ) X(CmpNE) X(CmpLT) X(CmpLE) X(CmpGT) X(CmpGE)                        \
  X(FCmpEQ) X(FCmpNE) X(FCmpLT) X(FCmpLE) X(FCmpGT) X(FCmpGE)                  \
  X(Mov) X(Load) X(Store) X(Alloca) X(HeapAlloc)                               \
  X(Br) X(CondBr) X(Call) X(Ret) X(Wait) X(SignalOp) X(IterStart)              \
  X(MemFence) X(Nop)

/// The eight trap-free integer ALU opcodes eligible for generic pair
/// fusion, in the index order aluPairIndex() assigns. Any adjacent pair of
/// these fuses into one dispatch (HeadTail key = AddAdd + head*8 + tail) —
/// interpreter loop bodies are dominated by short ALU chains, so this is
/// where superinstruction fusion buys the most.
#define HELIX_ALUPAIR_OPS(X) \
  X(Add) X(Sub) X(Mul) X(And) X(Or) X(Xor) X(Shl) X(Shr)

#define HELIX_ALUPAIR_ROW(X, H)                                                \
  X(H##Add) X(H##Sub) X(H##Mul) X(H##And) X(H##Or) X(H##Xor) X(H##Shl)         \
      X(H##Shr)

#define HELIX_XOPCODE_ALUPAIR_LIST(X)                                          \
  HELIX_ALUPAIR_ROW(X, Add) HELIX_ALUPAIR_ROW(X, Sub)                          \
  HELIX_ALUPAIR_ROW(X, Mul) HELIX_ALUPAIR_ROW(X, And)                          \
  HELIX_ALUPAIR_ROW(X, Or) HELIX_ALUPAIR_ROW(X, Xor)                           \
  HELIX_ALUPAIR_ROW(X, Shl) HELIX_ALUPAIR_ROW(X, Shr)

#define HELIX_XOPCODE_FUSED_LIST(X)                                            \
  X(CmpEQBr) X(CmpNEBr) X(CmpLTBr) X(CmpLEBr) X(CmpGTBr) X(CmpGEBr)            \
  X(FCmpEQBr) X(FCmpNEBr) X(FCmpLTBr) X(FCmpLEBr) X(FCmpGTBr) X(FCmpGEBr)      \
  X(AddLoad) X(AddStore) X(SyncPair) HELIX_XOPCODE_ALUPAIR_LIST(X)

#define HELIX_XOPCODE_LIST(X)                                                  \
  HELIX_XOPCODE_PLAIN_LIST(X) HELIX_XOPCODE_FUSED_LIST(X)

enum class XOpcode : uint8_t {
#define HELIX_DEFINE_XOPCODE(N) N,
  HELIX_XOPCODE_LIST(HELIX_DEFINE_XOPCODE)
#undef HELIX_DEFINE_XOPCODE
};

inline constexpr unsigned NumXOpcodes = []() constexpr {
  unsigned N = 0;
#define HELIX_COUNT_XOPCODE(X) ++N;
  HELIX_XOPCODE_LIST(HELIX_COUNT_XOPCODE)
#undef HELIX_COUNT_XOPCODE
  return N;
}();

/// The plain block mirrors Opcode numerically: XOpcode(uint8_t(Op)) is the
/// unfused dispatch key of Op.
static_assert(uint8_t(XOpcode::Add) == uint8_t(Opcode::Add) &&
                  uint8_t(XOpcode::CondBr) == uint8_t(Opcode::CondBr) &&
                  uint8_t(XOpcode::Nop) == uint8_t(Opcode::Nop),
              "XOpcode plain block must mirror Opcode");

inline constexpr XOpcode plainKey(Opcode Op) { return XOpcode(uint8_t(Op)); }
inline constexpr bool isFusedKey(XOpcode X) {
  return uint8_t(X) > uint8_t(XOpcode::Nop);
}

/// Index of \p Op in the HELIX_ALUPAIR_OPS grid, or -1 when the opcode is
/// not eligible for generic ALU pair fusion (it may trap, or is not an
/// integer ALU operation).
inline constexpr int aluPairIndex(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return 0;
  case Opcode::Sub:
    return 1;
  case Opcode::Mul:
    return 2;
  case Opcode::And:
    return 3;
  case Opcode::Or:
    return 4;
  case Opcode::Xor:
    return 5;
  case Opcode::Shl:
    return 6;
  case Opcode::Shr:
    return 7;
  default:
    return -1;
  }
}

/// Dispatch key of the fused pair (head, tail); both must be pair-eligible.
inline constexpr XOpcode aluPairKey(Opcode Head, Opcode Tail) {
  return XOpcode(unsigned(XOpcode::AddAdd) + unsigned(aluPairIndex(Head)) * 8 +
                 unsigned(aluPairIndex(Tail)));
}

static_assert(uint8_t(XOpcode::ShrShr) == uint8_t(XOpcode::AddAdd) + 63 &&
                  aluPairKey(Opcode::Add, Opcode::Add) == XOpcode::AddAdd &&
                  aluPairKey(Opcode::Xor, Opcode::Shr) == XOpcode::XorShr &&
                  aluPairKey(Opcode::Shr, Opcode::Shr) == XOpcode::ShrShr,
              "ALU pair key grid out of step with the XOpcode list");

/// One pre-decoded instruction. Fixed two inline operand slots cover every
/// opcode except wide calls, whose extra arguments spill into the owning
/// function body's side table. Pointer-free — shared across structurally
/// identical modules. 40 bytes (Succ2 and Callee overlap: an instruction
/// has either branch targets or a callee, never both).
struct DecodedInst {
  Opcode Op = Opcode::Nop;
  XOpcode X = XOpcode::Nop; ///< dispatch key; == plainKey(Op) unless fused
  uint8_t NumOperands = 0;
  uint32_t Dest = ~0u;      ///< NoReg when the instruction has no destination
  OperandRef Ops[2] = {0, 0};
  uint32_t Succ1 = 0;       ///< flat PC of target1 (Br, CondBr)
  union {
    uint32_t Succ2 = 0;     ///< flat PC of target2 (CondBr)
    uint32_t Callee;        ///< decoded-function index (Call)
  };
  uint32_t ExtraOps = 0;    ///< index into the body's ExtraOperands for
                            ///< operands beyond the inline two (calls only)
  uint16_t Cycles = 1;      ///< opcodeCycles(Op), resolved at decode time
  int64_t Imm = 0;          ///< Alloca size, Wait/Signal segment id
};

/// Decode-time options. Part of the content-addressed cache key: fused and
/// unfused bodies of the same module coexist.
struct DecodeOptions {
  /// Peephole-fuse hot instruction pairs into superinstructions. The fused
  /// program is layout-identical to the unfused one and fires observer
  /// callbacks once per original instruction, but drivers that need a
  /// strictly per-instruction event stream (trace collection, profiling,
  /// dependence witnessing) run the unfused program by convention.
  bool Fuse = true;

  bool operator==(const DecodeOptions &O) const { return Fuse == O.Fuse; }
};

/// The shareable decoded code of one function: instructions laid out back
/// to back in block-layout order (the entry block first, so the entry PC
/// is 0). No IR pointers.
struct DecodedFunctionBody {
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  std::vector<DecodedInst> Code;
  /// First PC of each block, indexed by BasicBlock::id(); ~0u for ids of
  /// erased blocks. Block ids are structural (fingerprinted), so the table
  /// is valid for every module sharing this body.
  std::vector<uint32_t> BlockStart;
  /// Spill area for call operands beyond the two inline slots.
  std::vector<OperandRef> ExtraOperands;
  /// CyclePrefix[K] = sum of Code[0..K) cycle costs (size Code.size()+1).
  /// Lets the engine account a straight-line run [A, B) of instructions as
  /// CyclePrefix[B] - CyclePrefix[A] at the segment's end rather than
  /// per dispatch.
  std::vector<uint64_t> CyclePrefix;
};

/// The pointer-free decoded module: everything execution semantics depend
/// on and nothing tied to one Module allocation. Content addressed by the
/// structural fingerprint plus the decode options.
struct ExecCodeBody {
  ExecCodeBody(const Module &M, DecodeOptions Opts);

  std::vector<DecodedFunctionBody> Functions;
  std::vector<Value> Consts;
  std::vector<uint64_t> GlobalBase;
  uint64_t GlobalEnd = 1;
  uint64_t Fingerprint = 0;
  DecodeOptions Opts;
  /// Instruction pairs fused into superinstructions at decode time.
  uint64_t FusedPairs = 0;
};

/// One decoded function as the engine sees it: the shared body plus this
/// module's IR identity per PC (for observers, sync-op ownership and trap
/// diagnostics).
struct DecodedFunction {
  const Function *Src = nullptr;
  const DecodedFunctionBody *Body = nullptr;
  uint32_t NumRegs = 0;   ///< mirrored from the body for hot access
  uint32_t NumParams = 0;
  /// Owning basic block per PC (for edge hooks and trap diagnostics).
  std::vector<const BasicBlock *> BlockOf;
  /// Source instruction per PC (observer identity, sync-op ownership).
  std::vector<const Instruction *> SrcOf;

  const std::vector<DecodedInst> &code() const { return Body->Code; }
  uint32_t startOf(const BasicBlock *BB) const {
    return Body->BlockStart[BB->id()];
  }
};

/// A fully decoded module plus the memory layout every engine shares:
/// address 0 reserved, globals from address 1, heap after the globals,
/// stack addresses in a disjoint high range.
class ExecProgram {
public:
  /// Decodes \p M from scratch (body + instance tables).
  explicit ExecProgram(const Module &M, DecodeOptions Opts = {});
  /// Binds an existing (content-addressed) body to \p M. \p Body must have
  /// been decoded from a module with the same structural fingerprint.
  ExecProgram(const Module &M, std::shared_ptr<const ExecCodeBody> Body);

  const Module &module() const { return *M; }
  const ExecCodeBody &body() const { return *Body; }
  std::shared_ptr<const ExecCodeBody> sharedBody() const { return Body; }

  unsigned numFunctions() const { return unsigned(Functions.size()); }
  const DecodedFunction &function(uint32_t Idx) const {
    return Functions[Idx];
  }
  /// \returns the decoded function for \p F, or null for foreign functions.
  const DecodedFunction *function(const Function *F) const;
  /// \returns the decoded function named \p Name, or null.
  const DecodedFunction *findFunction(const std::string &Name) const;

  // --- Memory layout ------------------------------------------------------
  uint64_t globalBase(unsigned Idx) const { return Body->GlobalBase[Idx]; }
  /// One past the last global slot == the initial heap pointer.
  uint64_t globalEnd() const { return Body->GlobalEnd; }
  /// Writes the global initializers into \p Low (which must have at least
  /// globalEnd() slots).
  void initGlobals(std::vector<Value> &Low) const;

  const std::vector<Value> &constants() const { return Body->Consts; }

  /// The structural fingerprint of the module at decode time.
  uint64_t fingerprint() const { return Body->Fingerprint; }
  const DecodeOptions &options() const { return Body->Opts; }
  /// Instruction pairs fused into superinstructions at decode time.
  uint64_t fusedPairs() const { return Body->FusedPairs; }

  /// Hashes everything execution semantics depend on: globals (sizes,
  /// initializers), function signatures, block layout, and per instruction
  /// the opcode, destination, immediate, operands, branch targets and
  /// callee. Cheap relative to a decode — no allocation, one linear walk.
  static uint64_t fingerprintModule(const Module &M);

private:
  void bindInstanceTables();

  const Module *M;
  std::shared_ptr<const ExecCodeBody> Body;
  std::vector<DecodedFunction> Functions;
  std::unordered_map<const Function *, uint32_t> FunctionIndex;
};

/// Process-wide decode cache, content addressed on two levels:
///
///   - program instances keyed on (module address, decode options), with
///     the module's unique id and structural fingerprint as guards (a
///     recycled allocation never resurrects a stale decode; in-place
///     mutation forces a re-decode);
///   - code bodies keyed on (structural fingerprint, decode options), so a
///     *different* module with the same shape reuses the heavy decode and
///     only rebuilds the thin instance tables (a BodyHit).
///
/// Bounded; eviction only drops the cache's own reference — running
/// engines keep their program (and through it the body) alive.
class DecodeCache {
public:
  /// Counter snapshot: Decodes built a code body from scratch, BodyHits
  /// rebuilt instance tables around a content-addressed body, Hits served
  /// a fully cached program, Evictions dropped a cache reference to make
  /// room. Monotonic over the cache's lifetime; subtract two snapshots for
  /// a per-run delta.
  struct Counters {
    uint64_t Decodes = 0;
    uint64_t Hits = 0;
    uint64_t Evictions = 0;
    uint64_t BodyHits = 0;
  };

  /// The process-wide instance every driver uses by default.
  static DecodeCache &global();

  /// \returns the decoded program of \p M under \p Opts, decoding the code
  /// body at most once per (fingerprint, options). Thread-safe.
  std::shared_ptr<const ExecProgram> get(const Module &M,
                                         DecodeOptions Opts = {});

  /// Drops any entry for \p M (call after mutating a module an engine ran).
  void invalidate(const Module &M);
  void clear();

  uint64_t decodes() const { return Decodes.load(std::memory_order_relaxed); }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  uint64_t bodyHits() const {
    return BodyHits.load(std::memory_order_relaxed);
  }
  Counters counters() const {
    return {decodes(), hits(), evictions(), bodyHits()};
  }

private:
  struct Entry {
    uint64_t Uid = 0;
    uint64_t Fingerprint = 0;
    std::shared_ptr<const ExecProgram> Prog;
  };
  static constexpr size_t MaxEntries = 64;

  /// Per decode-option variant (index: Opts.Fuse), so fused and unfused
  /// decodes of one module coexist.
  mutable std::mutex Mutex;
  std::unordered_map<const Module *, Entry> Entries[2];
  std::unordered_map<uint64_t, std::shared_ptr<const ExecCodeBody>> Bodies[2];
  std::atomic<uint64_t> Decodes{0}, Hits{0}, Evictions{0}, BodyHits{0};
};

} // namespace helix

#endif // HELIX_EXEC_EXECPROGRAM_H
