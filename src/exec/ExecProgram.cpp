#include "exec/ExecProgram.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/CostModel.h"
#include "support/Compiler.h"

#include <map>

using namespace helix;

//===----------------------------------------------------------------------===//
// Body decode
//===----------------------------------------------------------------------===//

namespace {

/// Interns constants so repeated immediates share one pool slot.
class ConstPool {
public:
  explicit ConstPool(std::vector<Value> &Out) : Out(Out) {}

  OperandRef intern(Value V) {
    uint64_t Bits = 0;
    static_assert(sizeof(V.I) == sizeof(Bits), "value payload is 8 bytes");
    __builtin_memcpy(&Bits, &V.I, sizeof(Bits));
    auto [It, Inserted] =
        Index.try_emplace({V.IsFloat, Bits}, uint32_t(Out.size()));
    if (Inserted)
      Out.push_back(V);
    assert(It->second < ConstOperandBit && "constant pool overflow");
    return OperandRef(It->second) | ConstOperandBit;
  }

private:
  std::vector<Value> &Out;
  std::map<std::pair<bool, uint64_t>, uint32_t> Index;
};

bool isAnyCmp(Opcode Op) {
  return Op >= Opcode::CmpEQ && Op <= Opcode::FCmpGE;
}
bool isSyncOpcode(Opcode Op) {
  return Op == Opcode::Wait || Op == Opcode::SignalOp ||
         Op == Opcode::IterStart;
}

/// True when operand \p R names register \p Reg (not a pool constant).
bool isReg(OperandRef R, uint32_t Reg) {
  return !(R & ConstOperandBit) && R == Reg;
}

/// Peephole superinstruction fusion over one block's PC range
/// [Begin, End). Layout preserving: the head instruction's dispatch key
/// becomes a fused XOpcode and the tail at PC+1 stays fully intact (the
/// fused handler reads it), so PCs, block boundaries and branch targets
/// are unchanged. Pairs are disjoint; a pair tail is mid-block and thus
/// never a branch target. \returns the number of pairs fused.
uint64_t fuseBlock(DecodedInst *Code, uint32_t Begin, uint32_t End) {
  uint64_t Fused = 0;
  for (uint32_t PC = Begin; PC + 1 < End; ++PC) {
    DecodedInst &A = Code[PC];
    const DecodedInst &B = Code[PC + 1];

    // cmp + condbr on the comparison result. The fused handler still
    // writes the cmp's destination (it may be live across the branch).
    if (isAnyCmp(A.Op) && B.Op == Opcode::CondBr && isReg(B.Ops[0], A.Dest)) {
      unsigned Rel = unsigned(A.Op) - unsigned(Opcode::CmpEQ);
      A.X = XOpcode(unsigned(XOpcode::CmpEQBr) + Rel);
      ++Fused;
      ++PC; // pairs are disjoint
      continue;
    }
    // add + load/store through the freshly computed address.
    if (A.Op == Opcode::Add && B.Op == Opcode::Load &&
        isReg(B.Ops[0], A.Dest)) {
      A.X = XOpcode::AddLoad;
      ++Fused;
      ++PC;
      continue;
    }
    if (A.Op == Opcode::Add && B.Op == Opcode::Store &&
        isReg(B.Ops[1], A.Dest)) {
      A.X = XOpcode::AddStore;
      ++Fused;
      ++PC;
      continue;
    }
    // Adjacent synchronization operations (Signal/Wait sequences emitted
    // back to back by the parallelizer).
    if (isSyncOpcode(A.Op) && isSyncOpcode(B.Op)) {
      A.X = XOpcode::SyncPair;
      ++Fused;
      ++PC;
      continue;
    }
    // Generic trap-free integer ALU pair: any adjacency qualifies (the
    // fused handler writes the head's destination before reading the
    // tail's operands, exactly like two sequential dispatches), so the
    // dominant short ALU chains of loop bodies pair off greedily.
    if (aluPairIndex(A.Op) >= 0 && aluPairIndex(B.Op) >= 0) {
      A.X = aluPairKey(A.Op, B.Op);
      ++Fused;
      ++PC;
      continue;
    }
  }
  return Fused;
}

} // namespace

ExecCodeBody::ExecCodeBody(const Module &M, DecodeOptions Options)
    : Opts(Options) {
  Fingerprint = ExecProgram::fingerprintModule(M);

  // Memory layout: identical for every engine — address 0 reserved,
  // globals from 1, heap after the globals.
  uint64_t Next = 1;
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    GlobalBase.push_back(Next);
    Next += M.global(I).Size;
  }
  GlobalEnd = Next;

  // Function index first, so calls bind directly even when the callee
  // appears later in the module.
  Functions.resize(M.numFunctions());
  std::unordered_map<const Function *, uint32_t> FunctionIndex;
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    FunctionIndex[M.function(I)] = I;

  ConstPool Pool(Consts);
  auto Bind = [&](const Operand &O) -> OperandRef {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      return OperandRef(O.regId());
    case Operand::Kind::ImmInt:
      return Pool.intern(Value::ofInt(O.intValue()));
    case Operand::Kind::ImmFloat:
      return Pool.intern(Value::ofFloat(O.floatValue()));
    case Operand::Kind::Global:
      return Pool.intern(Value::ofInt(int64_t(GlobalBase[O.globalIndex()])));
    }
    HELIX_UNREACHABLE("unknown operand kind");
  };

  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    DecodedFunctionBody &DF = Functions[FI];
    DF.NumRegs = F->numRegs();
    DF.NumParams = F->numParams();

    // Pass 1: block start PCs (entry block is laid out first, so its
    // start — the function entry PC — is 0).
    DF.BlockStart.assign(F->numBlockIds(), ~0u);
    uint32_t PC = 0;
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      assert(BB->terminator() && "decoding an unterminated block");
      DF.BlockStart[BB->id()] = PC;
      PC += BB->size();
    }
    DF.Code.reserve(PC);

    // Pass 2: the instructions themselves.
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (const Instruction *I : *BB) {
        DecodedInst D;
        D.Op = I->opcode();
        D.X = plainKey(D.Op);
        D.Cycles = uint16_t(opcodeCycles(D.Op));
        D.Dest = I->hasDest() ? I->dest() : ~0u;
        D.Imm = I->imm();
        D.NumOperands = uint8_t(I->numOperands());
        for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
          OperandRef R = Bind(I->operand(K));
          if (K < 2) {
            D.Ops[K] = R;
          } else {
            if (K == 2)
              D.ExtraOps = uint32_t(DF.ExtraOperands.size());
            DF.ExtraOperands.push_back(R);
          }
        }
        if (I->target1())
          D.Succ1 = DF.BlockStart[I->target1()->id()];
        if (I->target2())
          D.Succ2 = DF.BlockStart[I->target2()->id()];
        if (I->opcode() == Opcode::Call) {
          assert(I->callee() && "call without callee");
          D.Callee = FunctionIndex.at(I->callee());
        }
        DF.Code.push_back(D);
      }
    }

    // Pass 3: superinstruction fusion, block by block (a pair never
    // crosses a block boundary, so a pair tail is never a branch target).
    if (Opts.Fuse) {
      uint32_t Begin = 0;
      for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
        uint32_t End = Begin + uint32_t(F->block(BI)->size());
        FusedPairs += fuseBlock(DF.Code.data(), Begin, End);
        Begin = End;
      }
    }

    // Pass 4: cycle prefix sums over the flat code array. Fusion rewrites
    // dispatch keys only, never per-instruction cycle costs, so one table
    // serves both decode variants. The engine charges a straight-line
    // segment [A, B) in a single subtraction at the segment's end instead
    // of accumulating per instruction in the dispatch loop.
    DF.CyclePrefix.resize(DF.Code.size() + 1);
    uint64_t Sum = 0;
    for (size_t K = 0, E = DF.Code.size(); K != E; ++K) {
      DF.CyclePrefix[K] = Sum;
      Sum += DF.Code[K].Cycles;
    }
    DF.CyclePrefix[DF.Code.size()] = Sum;
  }

  obs::MetricsRegistry::global()
      .counter("exec.decode.fused_pairs")
      .add(FusedPairs);
}

//===----------------------------------------------------------------------===//
// Program instances
//===----------------------------------------------------------------------===//

ExecProgram::ExecProgram(const Module &M, DecodeOptions Opts)
    : M(&M), Body(std::make_shared<const ExecCodeBody>(M, Opts)) {
  bindInstanceTables();
}

ExecProgram::ExecProgram(const Module &M,
                         std::shared_ptr<const ExecCodeBody> SharedBody)
    : M(&M), Body(std::move(SharedBody)) {
  assert(Body->Fingerprint == fingerprintModule(M) &&
         "body does not match the module's structural fingerprint");
  bindInstanceTables();
}

void ExecProgram::bindInstanceTables() {
  Functions.resize(M->numFunctions());
  for (unsigned FI = 0, FE = M->numFunctions(); FI != FE; ++FI) {
    const Function *F = M->function(FI);
    FunctionIndex[F] = FI;
    DecodedFunction &DF = Functions[FI];
    DF.Src = F;
    DF.Body = &Body->Functions[FI];
    DF.NumRegs = DF.Body->NumRegs;
    DF.NumParams = DF.Body->NumParams;
    DF.BlockOf.reserve(DF.Body->Code.size());
    DF.SrcOf.reserve(DF.Body->Code.size());
    // Same block-layout walk as the body decode, so PC i names the same
    // instruction in both tables.
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (const Instruction *I : *BB) {
        DF.BlockOf.push_back(BB);
        DF.SrcOf.push_back(I);
      }
    }
    assert(DF.BlockOf.size() == DF.Body->Code.size() &&
           "instance tables out of step with the decoded body");
  }
}

const DecodedFunction *ExecProgram::function(const Function *F) const {
  auto It = FunctionIndex.find(F);
  return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
}

const DecodedFunction *
ExecProgram::findFunction(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  return F ? function(F) : nullptr;
}

void ExecProgram::initGlobals(std::vector<Value> &Low) const {
  assert(Low.size() >= globalEnd() && "arena smaller than the global segment");
  for (unsigned I = 0, E = M->numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M->global(I);
    for (size_t K = 0; K != G.Init.size(); ++K)
      Low[Body->GlobalBase[I] + K] = Value::ofInt(G.Init[K]);
  }
}

//===----------------------------------------------------------------------===//
// Structural fingerprint
//===----------------------------------------------------------------------===//

namespace {

struct Fnv1a {
  uint64_t H = 1469598103934665603ull;
  void mix(uint64_t V) {
    for (unsigned K = 0; K != 8; ++K) {
      H ^= (V >> (K * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  void mix(const std::string &S) {
    mix(S.size());
    for (char C : S) {
      H ^= uint8_t(C);
      H *= 1099511628211ull;
    }
  }
};

} // namespace

uint64_t ExecProgram::fingerprintModule(const Module &M) {
  Fnv1a H;
  H.mix(M.numGlobals());
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M.global(I);
    H.mix(G.Size);
    H.mix(G.Init.size());
    for (int64_t V : G.Init)
      H.mix(uint64_t(V));
  }

  std::unordered_map<const Function *, uint64_t> FuncId;
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    FuncId[M.function(I)] = I;

  H.mix(M.numFunctions());
  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    H.mix(F->name());
    H.mix(F->numParams());
    H.mix(F->numRegs());
    H.mix(F->numBlocks());
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      H.mix(BB->id());
      H.mix(BB->size());
      for (const Instruction *I : *BB) {
        H.mix(uint64_t(I->opcode()));
        H.mix(I->hasDest() ? I->dest() : ~0ull);
        H.mix(uint64_t(I->imm()));
        H.mix(I->numOperands());
        for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
          const Operand &O = I->operand(K);
          H.mix(uint64_t(O.kind()));
          switch (O.kind()) {
          case Operand::Kind::Reg:
            H.mix(O.regId());
            break;
          case Operand::Kind::ImmInt:
            H.mix(uint64_t(O.intValue()));
            break;
          case Operand::Kind::ImmFloat: {
            double D = O.floatValue();
            uint64_t Bits = 0;
            __builtin_memcpy(&Bits, &D, sizeof(Bits));
            H.mix(Bits);
            break;
          }
          case Operand::Kind::Global:
            H.mix(O.globalIndex());
            break;
          }
        }
        H.mix(I->target1() ? I->target1()->id() : ~0ull);
        H.mix(I->target2() ? I->target2()->id() : ~0ull);
        H.mix(I->callee() ? FuncId.at(I->callee()) : ~0ull);
      }
    }
  }
  return H.H;
}

//===----------------------------------------------------------------------===//
// DecodeCache
//===----------------------------------------------------------------------===//

DecodeCache &DecodeCache::global() {
  static DecodeCache Cache;
  return Cache;
}

std::shared_ptr<const ExecProgram> DecodeCache::get(const Module &M,
                                                    DecodeOptions Opts) {
  uint64_t FP = ExecProgram::fingerprintModule(M);
  const unsigned V = Opts.Fuse ? 1 : 0;
  std::shared_ptr<const ExecCodeBody> Body;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries[V].find(&M);
    if (It != Entries[V].end() && It->second.Uid == M.uid() &&
        It->second.Fingerprint == FP) {
      ++Hits;
      return It->second.Prog;
    }
    auto BIt = Bodies[V].find(FP);
    if (BIt != Bodies[V].end())
      Body = BIt->second;
  }

  // Decode/bind outside the lock: concurrent fuzz workers decode distinct
  // modules in parallel; a racing duplicate decode of the same module is
  // harmless (last writer wins). The span covers both miss flavours — a
  // full body decode and an instance rebind around a shared body.
  obs::TraceSpan DecodeSpan("decode", "exec");
  bool BuiltBody = false;
  if (!Body) {
    Body = std::make_shared<const ExecCodeBody>(M, Opts);
    BuiltBody = true;
  }
  auto Prog = std::make_shared<const ExecProgram>(M, Body);

  std::lock_guard<std::mutex> Lock(Mutex);
  if (BuiltBody) {
    ++Decodes;
    if (Bodies[V].size() >= MaxEntries && !Bodies[V].count(FP)) {
      Bodies[V].erase(Bodies[V].begin()); // arbitrary victim
      ++Evictions;
    }
    Bodies[V][FP] = Body;
  } else {
    ++BodyHits;
  }
  if (Entries[V].size() >= MaxEntries && !Entries[V].count(&M)) {
    Entries[V].erase(Entries[V].begin()); // users hold shared_ptrs
    ++Evictions;
  }
  Entries[V][&M] = {M.uid(), FP, Prog};
  return Prog;
}

void DecodeCache::invalidate(const Module &M) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (unsigned V = 0; V != 2; ++V) {
    auto It = Entries[V].find(&M);
    if (It == Entries[V].end())
      continue;
    // Drop the body decoded from this module too: invalidate means the
    // module mutated, and a later get() must re-decode rather than rebind
    // the stale shape. Other modules sharing the shape simply re-decode.
    Bodies[V].erase(It->second.Fingerprint);
    Entries[V].erase(It);
  }
}

void DecodeCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &Map : Entries)
    Map.clear();
  for (auto &Map : Bodies)
    Map.clear();
}
