#include "exec/ExecProgram.h"

#include "obs/Trace.h"
#include "sim/CostModel.h"
#include "support/Compiler.h"

#include <map>

using namespace helix;

//===----------------------------------------------------------------------===//
// Decode
//===----------------------------------------------------------------------===//

namespace {

/// Interns constants so repeated immediates share one pool slot.
class ConstPool {
public:
  explicit ConstPool(std::vector<Value> &Out) : Out(Out) {}

  OperandRef intern(Value V) {
    uint64_t Bits = 0;
    static_assert(sizeof(V.I) == sizeof(Bits), "value payload is 8 bytes");
    __builtin_memcpy(&Bits, &V.I, sizeof(Bits));
    auto [It, Inserted] =
        Index.try_emplace({V.IsFloat, Bits}, uint32_t(Out.size()));
    if (Inserted)
      Out.push_back(V);
    assert(It->second < ConstOperandBit && "constant pool overflow");
    return OperandRef(It->second) | ConstOperandBit;
  }

private:
  std::vector<Value> &Out;
  std::map<std::pair<bool, uint64_t>, uint32_t> Index;
};

} // namespace

ExecProgram::ExecProgram(const Module &M) : M(&M) {
  Fingerprint = fingerprintModule(M);

  // Memory layout: identical for every engine — address 0 reserved,
  // globals from 1, heap after the globals.
  uint64_t Next = 1;
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    GlobalBase.push_back(Next);
    Next += M.global(I).Size;
  }
  GlobalEnd = Next;

  // Function index first, so calls bind directly even when the callee
  // appears later in the module.
  Functions.resize(M.numFunctions());
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    FunctionIndex[M.function(I)] = I;

  ConstPool Pool(Consts);
  auto Bind = [&](const Operand &O) -> OperandRef {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      return OperandRef(O.regId());
    case Operand::Kind::ImmInt:
      return Pool.intern(Value::ofInt(O.intValue()));
    case Operand::Kind::ImmFloat:
      return Pool.intern(Value::ofFloat(O.floatValue()));
    case Operand::Kind::Global:
      return Pool.intern(Value::ofInt(int64_t(GlobalBase[O.globalIndex()])));
    }
    HELIX_UNREACHABLE("unknown operand kind");
  };

  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    DecodedFunction &DF = Functions[FI];
    DF.Src = F;
    DF.NumRegs = F->numRegs();
    DF.NumParams = F->numParams();

    // Pass 1: block start PCs (entry block is laid out first, so its
    // start — the function entry PC — is 0).
    DF.BlockStart.assign(F->numBlockIds(), ~0u);
    uint32_t PC = 0;
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      assert(BB->terminator() && "decoding an unterminated block");
      DF.BlockStart[BB->id()] = PC;
      PC += BB->size();
    }
    DF.Code.reserve(PC);
    DF.BlockOf.reserve(PC);

    // Pass 2: the instructions themselves.
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (const Instruction *I : *BB) {
        DecodedInst D;
        D.Op = I->opcode();
        D.Cycles = uint16_t(opcodeCycles(D.Op));
        D.Dest = I->hasDest() ? I->dest() : ~0u;
        D.Imm = I->imm();
        D.Src = I;
        D.NumOperands = uint8_t(I->numOperands());
        for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
          OperandRef R = Bind(I->operand(K));
          if (K < 2) {
            D.Ops[K] = R;
          } else {
            if (K == 2)
              D.ExtraOps = uint32_t(DF.ExtraOperands.size());
            DF.ExtraOperands.push_back(R);
          }
        }
        if (I->target1())
          D.Succ1 = DF.BlockStart[I->target1()->id()];
        if (I->target2())
          D.Succ2 = DF.BlockStart[I->target2()->id()];
        if (I->opcode() == Opcode::Call) {
          assert(I->callee() && "call without callee");
          D.Callee = FunctionIndex.at(I->callee());
        }
        DF.Code.push_back(D);
        DF.BlockOf.push_back(BB);
      }
    }
  }
}

const DecodedFunction *ExecProgram::function(const Function *F) const {
  auto It = FunctionIndex.find(F);
  return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
}

const DecodedFunction *
ExecProgram::findFunction(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  return F ? function(F) : nullptr;
}

void ExecProgram::initGlobals(std::vector<Value> &Low) const {
  assert(Low.size() >= GlobalEnd && "arena smaller than the global segment");
  for (unsigned I = 0, E = M->numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M->global(I);
    for (size_t K = 0; K != G.Init.size(); ++K)
      Low[GlobalBase[I] + K] = Value::ofInt(G.Init[K]);
  }
}

//===----------------------------------------------------------------------===//
// Structural fingerprint
//===----------------------------------------------------------------------===//

namespace {

struct Fnv1a {
  uint64_t H = 1469598103934665603ull;
  void mix(uint64_t V) {
    for (unsigned K = 0; K != 8; ++K) {
      H ^= (V >> (K * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  void mix(const std::string &S) {
    mix(S.size());
    for (char C : S) {
      H ^= uint8_t(C);
      H *= 1099511628211ull;
    }
  }
};

} // namespace

uint64_t ExecProgram::fingerprintModule(const Module &M) {
  Fnv1a H;
  H.mix(M.numGlobals());
  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M.global(I);
    H.mix(G.Size);
    H.mix(G.Init.size());
    for (int64_t V : G.Init)
      H.mix(uint64_t(V));
  }

  std::unordered_map<const Function *, uint64_t> FuncId;
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    FuncId[M.function(I)] = I;

  H.mix(M.numFunctions());
  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    H.mix(F->name());
    H.mix(F->numParams());
    H.mix(F->numRegs());
    H.mix(F->numBlocks());
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      H.mix(BB->id());
      H.mix(BB->size());
      for (const Instruction *I : *BB) {
        H.mix(uint64_t(I->opcode()));
        H.mix(I->hasDest() ? I->dest() : ~0ull);
        H.mix(uint64_t(I->imm()));
        H.mix(I->numOperands());
        for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
          const Operand &O = I->operand(K);
          H.mix(uint64_t(O.kind()));
          switch (O.kind()) {
          case Operand::Kind::Reg:
            H.mix(O.regId());
            break;
          case Operand::Kind::ImmInt:
            H.mix(uint64_t(O.intValue()));
            break;
          case Operand::Kind::ImmFloat: {
            double D = O.floatValue();
            uint64_t Bits = 0;
            __builtin_memcpy(&Bits, &D, sizeof(Bits));
            H.mix(Bits);
            break;
          }
          case Operand::Kind::Global:
            H.mix(O.globalIndex());
            break;
          }
        }
        H.mix(I->target1() ? I->target1()->id() : ~0ull);
        H.mix(I->target2() ? I->target2()->id() : ~0ull);
        H.mix(I->callee() ? FuncId.at(I->callee()) : ~0ull);
      }
    }
  }
  return H.H;
}

//===----------------------------------------------------------------------===//
// DecodeCache
//===----------------------------------------------------------------------===//

DecodeCache &DecodeCache::global() {
  static DecodeCache Cache;
  return Cache;
}

std::shared_ptr<const ExecProgram> DecodeCache::get(const Module &M) {
  uint64_t FP = ExecProgram::fingerprintModule(M);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(&M);
    if (It != Entries.end() && It->second.Uid == M.uid() &&
        It->second.Fingerprint == FP) {
      ++Hits;
      return It->second.Prog;
    }
  }
  // Decode outside the lock: concurrent fuzz workers decode distinct
  // modules in parallel; a racing duplicate decode of the same module is
  // harmless (last writer wins).
  obs::TraceSpan DecodeSpan("decode", "exec");
  auto Prog = std::make_shared<const ExecProgram>(M);
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Decodes;
  if (Entries.size() >= MaxEntries && !Entries.count(&M)) {
    Entries.erase(Entries.begin()); // arbitrary victim; users hold shared_ptrs
    ++Evictions;
  }
  Entries[&M] = {M.uid(), FP, Prog};
  return Prog;
}

void DecodeCache::invalidate(const Module &M) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.erase(&M);
}

void DecodeCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}
