//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide, thread-safe metrics registry: counters, gauges and
/// fixed-bucket histograms under hierarchical dotted names
/// ("exec.dispatch.steps", "cache.stage.hits", "check.findings").
///
/// Design rules:
///   - instruments have stable addresses for the life of the registry, so
///     hot paths hold a `Counter &` and bump an atomic without ever
///     touching the registry lock again;
///   - the registry itself is only locked on first registration and on
///     snapshot — never per increment;
///   - process-lifetime instruments become per-run numbers via snapshot
///     deltas: take a `MetricsSnapshot` before and after a run and call
///     `deltaFrom` (counters and histograms subtract, gauges keep their
///     current value).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_OBS_METRICS_H
#define HELIX_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace helix {

class Json;

namespace obs {

/// Monotonic counter. Bumps are relaxed atomics: totals are exact, but a
/// snapshot taken while other threads are mid-run is only guaranteed to be
/// some value each counter actually held.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins instantaneous value (queue depths, cache bytes).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed-bucket histogram: bucket I counts observations <= Bounds[I], the
/// implicit final bucket counts the rest. Bounds are set at registration
/// and immutable afterwards.
class Histogram {
public:
  explicit Histogram(std::vector<int64_t> UpperBounds);

  void observe(int64_t Value);
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  int64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  const std::vector<int64_t> &bounds() const { return Bounds; }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  std::vector<int64_t> Bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets; // Bounds.size() + 1
  std::atomic<uint64_t> N{0};
  std::atomic<int64_t> Sum{0};
};

/// One instrument's value at snapshot time — also the unit the report
/// serialization round-trips.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  /// Histogram bucket: observations <= UpperBound (UpperBound < 0 means
  /// +inf, the overflow bucket).
  struct Bucket {
    int64_t UpperBound = 0;
    uint64_t Count = 0;
  };

  std::string Name;
  Kind K = Kind::Counter;
  int64_t Value = 0; ///< counter total / gauge value / histogram count
  int64_t Sum = 0;   ///< histogram only
  std::vector<Bucket> Buckets; ///< histogram only

  bool operator==(const MetricSample &O) const;
};

/// A consistent-by-name, point-in-time copy of every registered
/// instrument, sorted by name.
class MetricsSnapshot {
public:
  std::vector<MetricSample> Samples;

  /// Per-run view: counters and histograms subtract \p Before (clamped at
  /// zero; instruments unknown to \p Before keep their full value), gauges
  /// keep their current value. Samples that end up all-zero are dropped so
  /// reports only carry what the run actually touched.
  MetricsSnapshot deltaFrom(const MetricsSnapshot &Before) const;

  const MetricSample *find(const std::string &Name) const;
  int64_t value(const std::string &Name, int64_t Default = 0) const;

  /// Array of one object per sample:
  ///   {"name":N,"kind":"counter","value":V}
  ///   {"name":N,"kind":"gauge","value":V}
  ///   {"name":N,"kind":"histogram","count":C,"sum":S,
  ///    "buckets":[[le,count],...]}   (le -1 = +inf)
  Json toJson() const;
  static bool fromJson(const Json &V, MetricsSnapshot &Out,
                       std::string *Err = nullptr);
};

/// Name -> instrument map. `global()` is the process-wide registry every
/// subsystem bumps into; separate instances exist for tests.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// Returns the instrument registered under \p Name, creating it on first
  /// use. A name registered as one kind stays that kind: asking for it as
  /// another kind returns a distinct unregistered sink (so a naming clash
  /// can't alias two subsystems' data or crash a hot path).
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p UpperBounds is used on first registration only and must be
  /// strictly increasing; later calls return the existing histogram.
  Histogram &histogram(const std::string &Name,
                       std::vector<int64_t> UpperBounds);

  MetricsSnapshot snapshot() const;

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace obs
} // namespace helix

#endif // HELIX_OBS_METRICS_H
