//===----------------------------------------------------------------------===//
///
/// \file
/// Structured trace spans: scoped RAII timing of pipeline stages, loop
/// passes, decode, fuzz cases and serve requests, recorded into a bounded
/// in-memory ring buffer and drained to Chrome `trace_event`-format JSON
/// (the format chrome://tracing and https://ui.perfetto.dev load
/// directly).
///
/// Recording is off by default: a disabled `TraceSpan` is two relaxed
/// atomic loads and no allocation, so spans are safe to leave in hot-ish
/// paths permanently. Enable via `TraceRecorder::global().setEnabled(true)`
/// — the `--trace-out FILE` tool flags and the `PipelineConfig` knob do
/// exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_OBS_TRACE_H
#define HELIX_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace helix {

class Json;

namespace obs {

/// One completed span. Times are microseconds on the steady clock,
/// relative to process start (Chrome's viewer only cares about relative
/// ts values).
struct TraceEvent {
  std::string Name;
  std::string Cat;
  uint32_t Tid = 0;
  uint64_t StartMicros = 0;
  uint64_t DurMicros = 0;
};

/// Bounded ring buffer of trace events. When full, the oldest event is
/// overwritten and `droppedCount` grows — a long fuzz campaign can't eat
/// the heap. All methods are thread-safe.
class TraceRecorder {
public:
  static TraceRecorder &global();

  explicit TraceRecorder(size_t Capacity = 1 << 16);

  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  void record(TraceEvent E);

  /// Removes and returns all buffered events, oldest first.
  std::vector<TraceEvent> drain();

  /// Drains into `{"traceEvents":[...],"displayTimeUnit":"ms"}` with one
  /// `"ph":"X"` complete event per span (plus `"droppedEvents"` when the
  /// ring wrapped).
  Json drainToChromeJson();

  /// Drains to \p Path as one JSON document. Returns false (and sets
  /// \p Err) when the file can't be written.
  bool drainToFile(const std::string &Path, std::string *Err = nullptr);

  uint64_t droppedCount() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Microseconds since process start on the steady clock.
  static uint64_t nowMicros();
  /// Small dense id for the calling thread (1, 2, ... in first-use order).
  static uint32_t currentThreadId();

private:
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Dropped{0};
  mutable std::mutex M;
  std::vector<TraceEvent> Ring; // capacity-bounded
  size_t Head = 0;              // next write position once the ring is full
  size_t Capacity;
};

/// RAII span: measures construction-to-destruction on the recorder. The
/// enabled check happens at construction; a span that began while tracing
/// was on records even if tracing is switched off mid-span (cheap, and
/// keeps drain order sane).
class TraceSpan {
public:
  TraceSpan(std::string Name, const char *Cat,
            TraceRecorder &R = TraceRecorder::global());
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceRecorder *Rec = nullptr; // null when disabled at construction
  std::string Name;
  const char *Cat = "";
  uint64_t Start = 0;
};

} // namespace obs
} // namespace helix

#endif // HELIX_OBS_TRACE_H
