//===----------------------------------------------------------------------===//
///
/// \file
/// BENCH_*.json emission and the baseline comparison. See BenchJson.h for
/// the schemas.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchJson.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

using namespace helix;
using namespace helix::obs;

std::string helix::obs::gitDescribe() {
#if defined(_WIN32)
  return std::string();
#else
  std::FILE *P =
      ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (!P)
    return std::string();
  char Buf[128];
  std::string Out;
  while (std::fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  if (::pclose(P) != 0)
    return std::string();
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return Out;
#endif
}

BenchJsonWriter::BenchJsonWriter(std::string Name)
    : BenchName(std::move(Name)), Meta(Json::object()) {
  unsigned HW = std::thread::hardware_concurrency();
  Meta.set("threads", Json::integer(int64_t(HW)));
  Meta.set("cores", Json::integer(int64_t(HW)));
  Meta.set("git", Json::str(gitDescribe()));
  Meta.set("unix_time", Json::integer(int64_t(std::time(nullptr))));
}

void BenchJsonWriter::setMeta(const std::string &Key, Json V) {
  Meta.set(Key, std::move(V));
}

void BenchJsonWriter::add(const std::string &Name, double Value,
                          const std::string &Unit) {
  All.push_back({Name, Value, Unit});
}

Json BenchJsonWriter::toJson() const {
  Json Doc = Json::object();
  Doc.set("schema", Json::integer(1));
  Doc.set("bench", Json::str(BenchName));
  Doc.set("meta", Meta);
  Json Arr = Json::array();
  for (const Series &S : All) {
    Json O = Json::object();
    O.set("name", Json::str(S.Name));
    O.set("value", Json::number(S.Value));
    O.set("unit", Json::str(S.Unit));
    Arr.push(std::move(O));
  }
  Doc.set("series", std::move(Arr));
  return Doc;
}

bool BenchJsonWriter::write(std::string Dir) const {
  if (Dir.empty()) {
    const char *Env = std::getenv("HELIX_BENCH_JSON_DIR");
    Dir = Env ? Env : ".";
  }
  if (Dir == "off" || Dir == "0")
    return true;
  std::string Path = Dir + "/BENCH_" + BenchName + ".json";
  std::string Text = toJson().toString();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fputc('\n', F) != EOF;
  Ok &= std::fclose(F) == 0;
  if (Ok)
    std::printf("\n[wrote %s: %zu series]\n", Path.c_str(), All.size());
  else
    std::fprintf(stderr, "warning: short write to %s\n", Path.c_str());
  return Ok;
}

BenchDiffResult helix::obs::benchDiff(const Json &Baseline,
                                      const std::vector<Json> &Current,
                                      const BenchDiffOptions &Opts) {
  BenchDiffResult R;
  const Json *Series = Baseline.find("series");
  if (!Baseline.isObject() || !Series || !Series->isArray()) {
    R.Error = "baseline: expected an object with a 'series' array";
    return R;
  }

  // (bench, name) -> value from the current run's documents.
  auto FindCurrent = [&](const std::string &Bench, const std::string &Name,
                         double &Out) {
    for (const Json &Doc : Current) {
      if (Doc.getString("bench") != Bench)
        continue;
      const Json *S = Doc.find("series");
      if (!S || !S->isArray())
        continue;
      for (const Json &E : S->elements())
        if (E.getString("name") == Name) {
          const Json *V = E.find("value");
          if (V && V->isNumber()) {
            Out = V->asDouble();
            return true;
          }
        }
    }
    return false;
  };

  for (const Json &B : Series->elements()) {
    BenchDiffFinding F;
    F.Bench = B.getString("bench");
    F.Series = B.getString("name");
    F.Gate = B.getString("gate", "warn");
    F.Baseline = B.getDouble("value");
    F.TolerancePct = B.getDouble("tolerance_pct", Opts.DefaultTolerancePct);
    std::string Direction = B.getString("direction", "higher");
    if (F.Bench.empty() || F.Series.empty()) {
      R.Error = "baseline: series entry without bench/name";
      return R;
    }

    if (!FindCurrent(F.Bench, F.Series, F.Current)) {
      F.Missing = true;
      ++R.MissingSeries;
      if (Opts.MissingIsHard && F.Gate == "hard") {
        F.Regression = true;
        ++R.HardRegressions;
      }
      R.Findings.push_back(std::move(F));
      continue;
    }

    F.DeltaPct = F.Baseline != 0
                     ? 100.0 * (F.Current - F.Baseline) / std::fabs(F.Baseline)
                     : (F.Current == 0 ? 0.0 : 100.0);
    bool Worse = Direction == "lower" ? F.DeltaPct > F.TolerancePct
                                      : F.DeltaPct < -F.TolerancePct;
    if (Worse) {
      F.Regression = true;
      if (F.Gate == "hard")
        ++R.HardRegressions;
      else
        ++R.WarnRegressions;
    }
    R.Findings.push_back(std::move(F));
  }
  return R;
}
