//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable bench output and the regression gate over it.
///
/// Every `bench_*` binary emits a `BENCH_<name>.json`:
///
///   {"schema":1,"bench":"fig9_speedups",
///    "meta":{"threads":8,"cores":8,"git":"78cab49","unix_time":...},
///    "series":[{"name":"geomean_c6","value":2.31,"unit":"x"},...]}
///
/// `bench/BENCH_baseline.json` pins expected values per series:
///
///   {"schema":1,"meta":{...},
///    "series":[{"bench":"fig9_speedups","name":"geomean_c6","value":2.31,
///               "unit":"x","direction":"higher","gate":"hard",
///               "tolerance_pct":5},...]}
///
/// `direction` says which way is better; `gate` is "hard" (CI fails) or
/// "warn" (logged only — thread-scaling series on a 1-core runner, noisy
/// wall-clock series). `benchDiff` is the comparison as a library so the
/// gate logic itself is unit-tested; `tools/bench-diff` is a thin CLI over
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_OBS_BENCHJSON_H
#define HELIX_OBS_BENCHJSON_H

#include "support/Json.h"

#include <string>
#include <vector>

namespace helix {
namespace obs {

/// `git describe --always --dirty` of the working tree, or "" when git is
/// unavailable. Best-effort; never fails.
std::string gitDescribe();

/// Collects named series for one bench binary and writes
/// `BENCH_<name>.json`. Meta starts with threads (hardware_concurrency),
/// cores, git describe and a unix timestamp; `setMeta` adds or overrides.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string BenchName);

  void setMeta(const std::string &Key, Json V);
  void add(const std::string &Series, double Value, const std::string &Unit);

  Json toJson() const;
  /// Writes `<Dir>/BENCH_<name>.json` (one line + newline). The directory
  /// defaults to $HELIX_BENCH_JSON_DIR, else the working directory; set
  /// the variable to "off" to suppress emission (returns true, writes
  /// nothing). Prints a note to stdout on success.
  bool write(std::string Dir = std::string()) const;

private:
  std::string BenchName;
  Json Meta;
  struct Series {
    std::string Name;
    double Value;
    std::string Unit;
  };
  std::vector<Series> All;
};

/// One baseline-vs-current comparison.
struct BenchDiffFinding {
  std::string Bench;
  std::string Series;
  std::string Gate;      ///< "hard" or "warn"
  double Baseline = 0;
  double Current = 0;
  double DeltaPct = 0;   ///< signed, positive = current above baseline
  double TolerancePct = 0;
  bool Missing = false;   ///< series absent from the current run
  bool Regression = false;
};

struct BenchDiffResult {
  std::vector<BenchDiffFinding> Findings;
  unsigned HardRegressions = 0;
  unsigned WarnRegressions = 0;
  unsigned MissingSeries = 0;
  std::string Error; ///< non-empty when the baseline itself is malformed

  bool ok() const { return Error.empty() && HardRegressions == 0; }
};

struct BenchDiffOptions {
  /// Used when a baseline series carries no tolerance_pct of its own.
  double DefaultTolerancePct = 10.0;
  /// When set, a series missing from the current documents counts as a
  /// hard regression (default: counted and reported, but not failing —
  /// CI legitimately runs a subset of the benches).
  bool MissingIsHard = false;
};

/// Compares \p Baseline (the BENCH_baseline.json document) against the
/// current run's BENCH_*.json documents.
BenchDiffResult benchDiff(const Json &Baseline,
                          const std::vector<Json> &Current,
                          const BenchDiffOptions &Opts = BenchDiffOptions());

} // namespace obs
} // namespace helix

#endif // HELIX_OBS_BENCHJSON_H
