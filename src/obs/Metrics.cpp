//===----------------------------------------------------------------------===//
///
/// \file
/// Metrics registry implementation. See Metrics.h for the locking rules.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <cassert>

using namespace helix;
using namespace helix::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<int64_t> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Buckets(new std::atomic<uint64_t>[Bounds.size() + 1]) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must be increasing");
  for (size_t I = 0; I != Bounds.size() + 1; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(int64_t Value) {
  size_t I = std::lower_bound(Bounds.begin(), Bounds.end(), Value) -
             Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricSample / MetricsSnapshot
//===----------------------------------------------------------------------===//

bool MetricSample::operator==(const MetricSample &O) const {
  if (Name != O.Name || K != O.K || Value != O.Value || Sum != O.Sum ||
      Buckets.size() != O.Buckets.size())
    return false;
  for (size_t I = 0; I != Buckets.size(); ++I)
    if (Buckets[I].UpperBound != O.Buckets[I].UpperBound ||
        Buckets[I].Count != O.Buckets[I].Count)
      return false;
  return true;
}

const MetricSample *MetricsSnapshot::find(const std::string &Name) const {
  for (const MetricSample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

int64_t MetricsSnapshot::value(const std::string &Name,
                               int64_t Default) const {
  const MetricSample *S = find(Name);
  return S ? S->Value : Default;
}

MetricsSnapshot MetricsSnapshot::deltaFrom(const MetricsSnapshot &Before) const {
  auto Clamped = [](int64_t After, int64_t Prior) {
    return After > Prior ? After - Prior : 0;
  };
  auto ClampedU = [](uint64_t After, uint64_t Prior) {
    return After > Prior ? After - Prior : 0;
  };

  MetricsSnapshot Out;
  for (const MetricSample &S : Samples) {
    MetricSample D = S;
    const MetricSample *B = Before.find(S.Name);
    if (B && B->K == S.K && S.K != MetricSample::Kind::Gauge) {
      D.Value = Clamped(S.Value, B->Value);
      D.Sum = Clamped(S.Sum, B->Sum);
      if (B->Buckets.size() == S.Buckets.size())
        for (size_t I = 0; I != D.Buckets.size(); ++I)
          D.Buckets[I].Count = ClampedU(S.Buckets[I].Count,
                                        B->Buckets[I].Count);
    }
    bool AllZero = D.Value == 0 && D.Sum == 0;
    for (const MetricSample::Bucket &Bk : D.Buckets)
      AllZero &= Bk.Count == 0;
    if (!AllZero)
      Out.Samples.push_back(std::move(D));
  }
  return Out;
}

Json MetricsSnapshot::toJson() const {
  Json Arr = Json::array();
  for (const MetricSample &S : Samples) {
    Json O = Json::object();
    O.set("name", Json::str(S.Name));
    switch (S.K) {
    case MetricSample::Kind::Counter:
      O.set("kind", Json::str("counter"));
      O.set("value", Json::integer(S.Value));
      break;
    case MetricSample::Kind::Gauge:
      O.set("kind", Json::str("gauge"));
      O.set("value", Json::integer(S.Value));
      break;
    case MetricSample::Kind::Histogram: {
      O.set("kind", Json::str("histogram"));
      O.set("count", Json::integer(S.Value));
      O.set("sum", Json::integer(S.Sum));
      Json Bs = Json::array();
      for (const MetricSample::Bucket &B : S.Buckets) {
        Json Pair = Json::array();
        Pair.push(Json::integer(B.UpperBound));
        Pair.push(Json::integer(int64_t(B.Count)));
        Bs.push(std::move(Pair));
      }
      O.set("buckets", std::move(Bs));
      break;
    }
    }
    Arr.push(std::move(O));
  }
  return Arr;
}

bool MetricsSnapshot::fromJson(const Json &V, MetricsSnapshot &Out,
                               std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!V.isArray())
    return Fail("metrics: expected array");
  Out.Samples.clear();
  for (const Json &E : V.elements()) {
    if (!E.isObject())
      return Fail("metrics: expected object element");
    MetricSample S;
    S.Name = E.getString("name");
    if (S.Name.empty())
      return Fail("metrics: element without name");
    std::string Kind = E.getString("kind");
    if (Kind == "counter" || Kind == "gauge") {
      S.K = Kind == "counter" ? MetricSample::Kind::Counter
                              : MetricSample::Kind::Gauge;
      const Json *Val = E.find("value");
      if (!Val || !Val->isInt())
        return Fail("metrics: '" + S.Name + "' missing integer value");
      S.Value = Val->asInt();
    } else if (Kind == "histogram") {
      S.K = MetricSample::Kind::Histogram;
      S.Value = E.getInt("count");
      S.Sum = E.getInt("sum");
      const Json *Bs = E.find("buckets");
      if (!Bs || !Bs->isArray())
        return Fail("metrics: '" + S.Name + "' missing buckets");
      for (const Json &P : Bs->elements()) {
        if (!P.isArray() || P.size() != 2 || !P.at(0).isInt() ||
            !P.at(1).isInt())
          return Fail("metrics: '" + S.Name + "' malformed bucket");
        MetricSample::Bucket B;
        B.UpperBound = P.at(0).asInt();
        B.Count = uint64_t(P.at(1).asInt());
        S.Buckets.push_back(B);
      }
    } else {
      return Fail("metrics: '" + S.Name + "' has unknown kind '" + Kind +
                  "'");
    }
    Out.Samples.push_back(std::move(S));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  // A name already claimed by another kind gets a private sink: the bump
  // still has somewhere to go, but never aliases the other instrument.
  if (Gauges.count(Name) || Histograms.count(Name)) {
    static Counter Sink;
    return Sink;
  }
  std::unique_ptr<Counter> &C = Counters[Name];
  if (!C)
    C = std::make_unique<Counter>();
  return *C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  if (Counters.count(Name) || Histograms.count(Name)) {
    static Gauge Sink;
    return Sink;
  }
  std::unique_ptr<Gauge> &G = Gauges[Name];
  if (!G)
    G = std::make_unique<Gauge>();
  return *G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<int64_t> UpperBounds) {
  std::lock_guard<std::mutex> Lock(M);
  if (Counters.count(Name) || Gauges.count(Name)) {
    static Histogram Sink({});
    return Sink;
  }
  std::unique_ptr<Histogram> &H = Histograms[Name];
  if (!H)
    H = std::make_unique<Histogram>(std::move(UpperBounds));
  return *H;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  MetricsSnapshot Snap;
  // The three maps are each name-sorted; merge keeps the whole snapshot
  // sorted without a second pass.
  auto CI = Counters.begin();
  auto GI = Gauges.begin();
  auto HI = Histograms.begin();
  auto NextName = [&]() -> const std::string * {
    const std::string *Best = nullptr;
    if (CI != Counters.end())
      Best = &CI->first;
    if (GI != Gauges.end() && (!Best || GI->first < *Best))
      Best = &GI->first;
    if (HI != Histograms.end() && (!Best || HI->first < *Best))
      Best = &HI->first;
    return Best;
  };
  while (const std::string *Name = NextName()) {
    MetricSample S;
    S.Name = *Name;
    if (CI != Counters.end() && CI->first == *Name) {
      S.K = MetricSample::Kind::Counter;
      S.Value = int64_t(CI->second->value());
      ++CI;
    } else if (GI != Gauges.end() && GI->first == *Name) {
      S.K = MetricSample::Kind::Gauge;
      S.Value = GI->second->value();
      ++GI;
    } else {
      const Histogram &H = *HI->second;
      S.K = MetricSample::Kind::Histogram;
      S.Value = int64_t(H.count());
      S.Sum = H.sum();
      for (size_t I = 0; I != H.bounds().size() + 1; ++I) {
        MetricSample::Bucket B;
        B.UpperBound = I < H.bounds().size() ? H.bounds()[I] : -1;
        B.Count = H.bucketCount(I);
        S.Buckets.push_back(B);
      }
      ++HI;
    }
    Snap.Samples.push_back(std::move(S));
  }
  return Snap;
}
