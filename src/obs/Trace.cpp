//===----------------------------------------------------------------------===//
///
/// \file
/// Trace recorder implementation: bounded ring, Chrome trace_event JSON.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace helix;
using namespace helix::obs;

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder R;
  return R;
}

TraceRecorder::TraceRecorder(size_t Cap) : Capacity(Cap ? Cap : 1) {}

uint64_t TraceRecorder::nowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - Epoch)
                      .count());
}

uint32_t TraceRecorder::currentThreadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

void TraceRecorder::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(M);
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(E));
    return;
  }
  Ring[Head] = std::move(E);
  Head = (Head + 1) % Capacity;
  Dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(M);
    // Unroll the ring: [Head, end) is older than [0, Head).
    Out.reserve(Ring.size());
    for (size_t I = 0; I != Ring.size(); ++I)
      Out.push_back(std::move(Ring[(Head + I) % Ring.size()]));
    Ring.clear();
    Head = 0;
  }
  // Spans finish (and record) in nesting order, not start order; the
  // viewer doesn't care, but tests and humans reading the JSON do.
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.StartMicros < B.StartMicros;
                   });
  return Out;
}

Json TraceRecorder::drainToChromeJson() {
  std::vector<TraceEvent> Events = drain();
  Json Arr = Json::array();
  for (const TraceEvent &E : Events) {
    Json O = Json::object();
    O.set("name", Json::str(E.Name));
    O.set("cat", Json::str(E.Cat));
    O.set("ph", Json::str("X"));
    O.set("ts", Json::integer(int64_t(E.StartMicros)));
    O.set("dur", Json::integer(int64_t(E.DurMicros)));
    O.set("pid", Json::integer(1));
    O.set("tid", Json::integer(int64_t(E.Tid)));
    Arr.push(std::move(O));
  }
  Json Doc = Json::object();
  Doc.set("traceEvents", std::move(Arr));
  Doc.set("displayTimeUnit", Json::str("ms"));
  if (uint64_t N = Dropped.exchange(0, std::memory_order_relaxed))
    Doc.set("droppedEvents", Json::integer(int64_t(N)));
  return Doc;
}

bool TraceRecorder::drainToFile(const std::string &Path, std::string *Err) {
  std::string Text = drainToChromeJson().toString();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fputc('\n', F) != EOF;
  Ok &= std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

TraceSpan::TraceSpan(std::string SpanName, const char *SpanCat,
                     TraceRecorder &R) {
  if (!R.enabled())
    return;
  Rec = &R;
  Name = std::move(SpanName);
  Cat = SpanCat;
  Start = TraceRecorder::nowMicros();
}

TraceSpan::~TraceSpan() {
  if (!Rec)
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Tid = TraceRecorder::currentThreadId();
  E.StartMicros = Start;
  E.DurMicros = TraceRecorder::nowMicros() - Start;
  Rec->record(std::move(E));
}
