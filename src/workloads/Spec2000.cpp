//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic SPEC CPU2000 suite: thirteen programs shaped after the
/// C benchmarks the paper evaluates. Idiom mixes follow each benchmark's
/// published character — `art`/`equake`/`mesa` are dominated by regular
/// floating-point sweeps (high parallel fraction), `mcf`/`parser` by
/// pointer chasing (long serial dependence chains), `crafty`/`twolf` by
/// branchy integer code with irregular updates, and so on. Iteration
/// bodies carry SPEC-like work (tens to hundreds of cycles), which is what
/// makes the 110-cycle inter-core signal latency amortizable for the loops
/// HELIX should pick — and fatal for the ones it should reject. See
/// DESIGN.md's substitution table.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadBuilder.h"

using namespace helix;

namespace {

using KI = KernelIdiom;

std::vector<WorkloadSpec> makeSuite() {
  std::vector<WorkloadSpec> Suite;

  auto Add = [&](const char *Name, uint64_t Seed, unsigned MainRepeat,
                 std::vector<PhaseSpec> Phases) {
    WorkloadSpec S;
    S.Name = Name;
    S.Seed = Seed;
    S.MainRepeat = MainRepeat;
    S.Phases = std::move(Phases);
    Suite.push_back(std::move(S));
  };

  // 164.gzip: compression — array sweeps, hash-table updates, conditional
  // match loops.
  Add("gzip", 164, 3,
      {{2, false, {{KI::DoAll, 300, 130}, {KI::WindowSlide, 280, 130}, {KI::Histogram, 240, 130}}},
       {2, false, {{KI::Branchy, 280, 120}, {KI::TwoAccum, 150, 700}, {KI::Histogram, 1200, 10}}}});

  // 175.vpr: placement & routing — regular cost sweeps plus irregular
  // grid updates.
  Add("vpr", 175, 3,
      {{2, false, {{KI::DoAll, 320, 150}, {KI::Nested2D, 20, 24, 90}}},
       {2, false, {{KI::Stencil, 240, 160}, {KI::TwoAccum, 150, 800}, {KI::Histogram, 1100, 10}}}});

  // 177.mesa: 3D rasterization — wide floating-point pixel pipelines.
  Add("mesa", 177, 3,
      {{2, false, {{KI::DoAllFP, 340, 160}, {KI::DoAll, 300, 140}}},
       {2, false, {{KI::DoAllFP, 300, 150}, {KI::TwoAccum, 140, 900}}}});

  // 179.art: neural-network image recognition — almost entirely parallel
  // floating-point array scans (the paper's Figure 8 example).
  Add("art", 179, 3,
      {{2, false, {{KI::DoAllFP, 400, 180}, {KI::DoAllFP, 380, 170}}},
       {2, false, {{KI::DoAllFP, 370, 170}, {KI::DoAll, 320, 150}}}});

  // 181.mcf: minimum-cost flow — pointer-chasing over node/arc lists
  // dominates everything.
  Add("mcf", 181, 3,
      {{2, false, {{KI::PointerChase, 1500, 6}, {KI::DoAll, 160, 110}}},
       {2, false, {{KI::PointerChase, 1100, 5}}}});

  // 183.equake: earthquake simulation — sparse FP kernels, mostly
  // parallel with a small serial assembly step.
  Add("equake", 183, 3,
      {{2, false, {{KI::DoAllFP, 340, 160}, {KI::DoAllFP, 320, 160}}},
       {2, false, {{KI::Stencil, 230, 170}, {KI::TwoAccum, 140, 850}}}});

  // 186.crafty: chess — deeply nested, branchy integer search with
  // hash-table updates; much irreducibly serial evaluation.
  Add("crafty", 186, 3,
      {{2, true, {{KI::Branchy, 280, 80}, {KI::Histogram, 240, 90}}},
       {2, false, {{KI::PointerChase, 700, 6}, {KI::DoAll, 200, 110}, {KI::Histogram, 1000, 8}}}});

  // 188.ammp: molecular dynamics — FP neighbor sweeps plus serial
  // integration updates.
  Add("ammp", 188, 3,
      {{2, false, {{KI::DoAllFP, 320, 160}, {KI::Stencil, 230, 150}}},
       {2, false, {{KI::TwoAccum, 150, 800}, {KI::DoAll, 220, 120}}}});

  // 197.parser: link grammar — linked-list walks and dictionary updates.
  Add("parser", 197, 3,
      {{2, false, {{KI::PointerChase, 1300, 6}, {KI::Histogram, 220, 100}}},
       {2, false, {{KI::PointerChase, 800, 5}, {KI::TwoAccum, 120, 600}}}});

  // 254.gap: computer algebra — big-number reductions and list scans.
  Add("gap", 254, 3,
      {{2, false, {{KI::Reduction, 160, 800}, {KI::DoAll, 260, 130}}},
       {2, false, {{KI::PointerChase, 600, 6}, {KI::Reduction, 140, 700}}}});

  // 255.vortex: object database — pointer-heavy lookups with table scans.
  Add("vortex", 255, 3,
      {{2, true, {{KI::Histogram, 250, 110}, {KI::DoAll, 240, 130}}},
       {2, false, {{KI::PointerChase, 650, 5}, {KI::Branchy, 210, 100}, {KI::Histogram, 1000, 8}}}});

  // 256.bzip2: block compression — sorting-like carried dependences and
  // counting tables.
  Add("bzip2", 256, 3,
      {{2, false, {{KI::Stencil, 280, 140}, {KI::WindowSlide, 260, 120}, {KI::Histogram, 250, 100}}},
       {2, false, {{KI::Reduction, 130, 650}, {KI::DoAll, 200, 110}, {KI::Histogram, 1100, 10}}}});

  // 300.twolf: place & route — branchy cost evaluation over grids.
  Add("twolf", 300, 3,
      {{2, false, {{KI::Branchy, 300, 110}, {KI::Nested2D, 18, 24, 80}}},
       {2, false, {{KI::DoAll, 240, 130}, {KI::Histogram, 210, 110}, {KI::Histogram, 1200, 8}}}});

  return Suite;
}

} // namespace

const std::vector<WorkloadSpec> &helix::spec2000Suite() {
  static const std::vector<WorkloadSpec> Suite = makeSuite();
  return Suite;
}
