//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic workload construction.
///
/// SPEC CPU2000 sources are proprietary, so the evaluation programs are
/// synthesized from the loop idioms that dominate each benchmark (array
/// sweeps, reductions, pointer chasing, histogramming, stencils, branchy
/// conditional updates, loop nests), parameterized per benchmark to match
/// the published loop characteristics (Table 1) — see DESIGN.md's
/// substitution table. Every program is deterministic and returns a
/// checksum, which the differential tests compare across sequential,
/// transformed-sequential and threaded-parallel executions.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_WORKLOADS_WORKLOADBUILDER_H
#define HELIX_WORKLOADS_WORKLOADBUILDER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace helix {

/// The loop idioms out of which workloads are composed.
enum class KernelIdiom {
  DoAll,        ///< disjoint strided integer sweep (fully parallel)
  DoAllFP,      ///< disjoint strided floating-point sweep
  Reduction,    ///< accumulator: small register-carried segment
  PointerChase, ///< linked-list traversal: serial dependence chain
  Histogram,    ///< indirect updates: unprovable carried memory dependence
  Stencil,      ///< a[i] = f(a[i-1], b[i]): distance-1 carried dependence
  Branchy,      ///< conditional carried update (the Figure-2 shape)
  Nested2D,     ///< row loop over a provably-parallel column loop
  TwoAccum,     ///< two independent carried accumulators: two distinct
                ///< sequential segments that HELIX overlaps (Figure 1)
  WindowSlide,  ///< w[i] = f(w[i+N]) over a 2N window (gzip fill_window):
                ///< SIV keeps the distance-N pair as carried, value-range
                ///< facts prove the halves disjoint — actually DOALL
};

struct KernelSpec {
  KernelIdiom Idiom = KernelIdiom::DoAll;
  unsigned N = 256;    ///< iteration count (rows for Nested2D)
  unsigned Work = 8;   ///< extra parallel ALU operations per iteration
  unsigned Inner = 64; ///< inner iteration count (Nested2D only)
};

/// One phase: a function with a repeat loop invoking its kernels. Phases
/// give the program-wide loop nesting graph its depth.
struct PhaseSpec {
  unsigned Repeat = 2;
  bool ExtraCallLevel = false; ///< interpose one more function+loop level
  std::vector<KernelSpec> Kernels;
};

struct WorkloadSpec {
  std::string Name;
  uint64_t Seed = 1;
  unsigned MainRepeat = 2;
  std::vector<PhaseSpec> Phases;
};

/// Builds the IR program for \p Spec. The resulting module verifies and
/// its @main takes no arguments and returns the checksum.
std::unique_ptr<Module> buildWorkload(const WorkloadSpec &Spec);

/// The 13 C benchmarks of SPEC CPU2000 that the paper evaluates, as
/// synthetic equivalents (gzip, vpr, mesa, art, mcf, equake, crafty, ammp,
/// parser, gap, vortex, bzip2, twolf).
const std::vector<WorkloadSpec> &spec2000Suite();

/// Convenience: builds one suite workload by name; null if unknown.
std::unique_ptr<Module> buildSpecWorkload(const std::string &Name);

} // namespace helix

#endif // HELIX_WORKLOADS_WORKLOADBUILDER_H
