#include "workloads/WorkloadBuilder.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"
#include "support/Format.h"

using namespace helix;

namespace {

using Op = Operand;

/// Emits `Dest (+)= chain of Work cheap ALU ops over Seed operands`,
/// returning the final value register. Pure parallel work.
unsigned emitAluChain(IRBuilder &B, unsigned Start, unsigned Work,
                      unsigned Salt) {
  unsigned T = Start;
  for (unsigned K = 0; K != Work; ++K) {
    unsigned Next;
    switch (K % 3) {
    case 0:
      Next = B.binary(Opcode::Xor, Op::reg(T), Op::immInt(Salt + K));
      break;
    case 1:
      Next = B.binary(Opcode::Add, Op::reg(T), Op::immInt(K * 7 + 1));
      break;
    default:
      Next = B.binary(Opcode::And, Op::reg(T),
                      Op::immInt(0x7FFFFFFFFFFFll));
      break;
    }
    T = Next;
  }
  return T;
}

/// Emits \p Cycles worth of parallel per-iteration work. Small amounts
/// become a straight-line ALU chain; larger amounts become a nested inner
/// loop (as in SPEC's heavyweight loop bodies), keeping static code size
/// bounded. Returns the result register. May create blocks; the builder is
/// left positioned in the block where straight-line emission can continue.
unsigned emitWork(Function *F, IRBuilder &B, unsigned Seed, unsigned Cycles,
                  unsigned Salt, unsigned &WorkLoopCounter) {
  if (Cycles <= 48)
    return emitAluChain(B, Seed, Cycles, Salt);
  // t = seed; for (j = 0; j < K; ++j) t = (t ^ (salt+j)) + (t >> 7)
  unsigned K = Cycles / 5;
  std::string Tag = "w" + std::to_string(WorkLoopCounter++);
  BasicBlock *Hdr = F->createBlock(Tag + ".hdr");
  BasicBlock *Body = F->createBlock(Tag + ".body");
  BasicBlock *Done = F->createBlock(Tag + ".done");
  unsigned T = B.mov(Op::reg(Seed));
  unsigned J = B.mov(Op::immInt(0));
  B.br(Hdr);
  B.setInsertPoint(Hdr);
  unsigned C = B.cmpLT(Op::reg(J), Op::immInt(K));
  B.condBr(Op::reg(C), Body, Done);
  B.setInsertPoint(Body);
  unsigned SJ = B.add(Op::reg(J), Op::immInt(Salt));
  unsigned X = B.binary(Opcode::Xor, Op::reg(T), Op::reg(SJ));
  unsigned Sh = B.binary(Opcode::Shr, Op::reg(T), Op::immInt(7));
  B.binaryTo(T, Opcode::Add, Op::reg(X), Op::reg(Sh));
  B.binaryTo(J, Opcode::Add, Op::reg(J), Op::immInt(1));
  B.br(Hdr);
  B.setInsertPoint(Done);
  return T;
}

/// Builds one kernel as a function `@<name>(1)` whose parameter perturbs
/// the computation; returns an int checksum.
class KernelBuilder {
public:
  KernelBuilder(Module &M, std::string Name, const KernelSpec &Spec,
                unsigned Salt)
      : M(M), Name(std::move(Name)), Spec(Spec), Salt(Salt) {}

  Function *build() {
    switch (Spec.Idiom) {
    case KernelIdiom::DoAll:
      return buildDoAll(/*FP=*/false);
    case KernelIdiom::DoAllFP:
      return buildDoAll(/*FP=*/true);
    case KernelIdiom::Reduction:
      return buildReduction();
    case KernelIdiom::PointerChase:
      return buildPointerChase();
    case KernelIdiom::Histogram:
      return buildHistogram();
    case KernelIdiom::Stencil:
      return buildStencil();
    case KernelIdiom::Branchy:
      return buildBranchy();
    case KernelIdiom::Nested2D:
      return buildNested2D();
    case KernelIdiom::TwoAccum:
      return buildTwoAccum();
    case KernelIdiom::WindowSlide:
      return buildWindowSlide();
    }
    HELIX_UNREACHABLE("unknown kernel idiom");
  }

  /// Globals this kernel needs initialized: (global index, size, list?).
  struct ArrayReq {
    unsigned Global;
    uint64_t Size;
    bool IsList; ///< initialize as a linked list of [next, value] nodes
  };
  const std::vector<ArrayReq> &arrays() const { return Arrays; }

private:
  unsigned newArray(const char *Suffix, uint64_t Size, bool IsList = false) {
    unsigned G = M.createGlobal(Name + "." + Suffix, Size);
    Arrays.push_back({G, Size, IsList});
    return G;
  }

  /// Creates func/entry/header/body/exit skeleton for `for i in [0, N)`.
  /// Leaves the builder positioned in the body; the caller finishes the
  /// body, then calls finishCountedLoop to close it.
  struct CountedLoop {
    Function *F;
    IRBuilder B;
    BasicBlock *Header, *Body, *Exit;
    unsigned I; ///< induction register
  };
  CountedLoop startCountedLoop(unsigned N) {
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    B.br(Header);
    B.setInsertPoint(Header);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(N));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    return {F, B, Header, Body, Exit, I};
  }
  void finishCountedLoop(CountedLoop &L) {
    L.B.binaryTo(L.I, Opcode::Add, Op::reg(L.I), Op::immInt(1));
    L.B.br(L.Header);
  }

  Function *buildDoAll(bool FP) {
    unsigned A = newArray("A", Spec.N);
    unsigned Bv = newArray("B", Spec.N);
    CountedLoop L = startCountedLoop(Spec.N);
    IRBuilder &B = L.B;
    // One address register per array, reused by load and store so the
    // strided-independence test applies.
    unsigned AddrA = B.add(Op::global(A), Op::reg(L.I));
    unsigned AddrB = B.add(Op::global(Bv), Op::reg(L.I));
    unsigned V = B.load(Op::reg(AddrA));
    unsigned W = B.load(Op::reg(AddrB));
    unsigned T;
    if (FP) {
      unsigned FV = B.conv(Opcode::IntToFP, Op::reg(V));
      unsigned FW = B.conv(Opcode::IntToFP, Op::reg(W));
      unsigned FM = B.binary(Opcode::FMul, Op::reg(FV), Op::immFloat(1.0009765625));
      unsigned FA = B.binary(Opcode::FAdd, Op::reg(FM), Op::reg(FW));
      unsigned IT = B.conv(Opcode::FPToInt, Op::reg(FA));
      T = emitAluChain(B, IT, Spec.Work, Salt);
    } else {
      unsigned S = B.add(Op::reg(V), Op::reg(W));
      T = emitAluChain(B, S, Spec.Work, Salt);
    }
    // Mix in the invocation parameter so repeats differ.
    unsigned T2 = B.binary(Opcode::Xor, Op::reg(T), Op::reg(0));
    B.store(Op::reg(T2), Op::reg(AddrA));
    finishCountedLoop(L);
    B.setInsertPoint(L.Exit);
    unsigned Addr = B.add(Op::global(A), Op::immInt(int64_t(Spec.N) - 1));
    unsigned Sum = B.load(Op::reg(Addr));
    B.ret(Op::reg(Sum));
    return L.F;
  }

  Function *buildReduction() {
    unsigned A = newArray("A", Spec.N);
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    unsigned Acc = B.mov(Op::reg(0)); // start from the parameter
    B.br(Header);
    B.setInsertPoint(Header);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(Spec.N));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    unsigned Addr = B.add(Op::global(A), Op::reg(I));
    unsigned V = B.load(Op::reg(Addr));
    unsigned T = emitWork(F, B, V, Spec.Work, Salt, WorkLoops);
    B.binaryTo(Acc, Opcode::Add, Op::reg(Acc), Op::reg(T));
    B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
    B.br(Header);
    B.setInsertPoint(Exit);
    B.ret(Op::reg(Acc));
    return F;
  }

  Function *buildPointerChase() {
    // Node layout: [next, value]; the list occupies 2*N+2 slots.
    unsigned A = newArray("list", 2 * uint64_t(Spec.N) + 2, /*IsList=*/true);
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned Node = B.load(Op::global(A)); // head pointer in slot 0
    unsigned Acc = B.mov(Op::reg(0));
    B.br(Header);
    B.setInsertPoint(Header);
    unsigned C = B.binary(Opcode::CmpNE, Op::reg(Node), Op::immInt(0));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    unsigned VAddr = B.add(Op::reg(Node), Op::immInt(1));
    unsigned V = B.load(Op::reg(VAddr));
    unsigned T = emitAluChain(B, V, Spec.Work, Salt);
    B.binaryTo(Acc, Opcode::Add, Op::reg(Acc), Op::reg(T));
    B.loadTo(Node, Op::reg(Node)); // node = node->next (slot 0)
    B.br(Header);
    B.setInsertPoint(Exit);
    B.ret(Op::reg(Acc));
    return F;
  }

  Function *buildHistogram() {
    unsigned A = newArray("A", Spec.N);
    unsigned H = newArray("H", 64);
    CountedLoop L = startCountedLoop(Spec.N);
    IRBuilder &B = L.B;
    unsigned Addr = B.add(Op::global(A), Op::reg(L.I));
    unsigned V = B.load(Op::reg(Addr));
    unsigned T = emitAluChain(B, V, Spec.Work, Salt);
    unsigned Hash = B.binary(Opcode::And, Op::reg(T), Op::immInt(63));
    unsigned HAddr = B.add(Op::global(H), Op::reg(Hash));
    unsigned Old = B.load(Op::reg(HAddr));
    unsigned New = B.add(Op::reg(Old), Op::immInt(1));
    B.store(Op::reg(New), Op::reg(HAddr));
    finishCountedLoop(L);
    B.setInsertPoint(L.Exit);
    unsigned H0 = B.load(Op::global(H));
    unsigned H1Addr = B.add(Op::global(H), Op::immInt(17));
    unsigned H1 = B.load(Op::reg(H1Addr));
    unsigned Sum = B.add(Op::reg(H0), Op::reg(H1));
    B.ret(Op::reg(Sum));
    return L.F;
  }

  Function *buildStencil() {
    unsigned A = newArray("A", Spec.N + 1);
    unsigned Bv = newArray("B", Spec.N + 1);
    CountedLoop L = startCountedLoop(Spec.N);
    IRBuilder &B = L.B;
    unsigned I1 = B.add(Op::reg(L.I), Op::immInt(1));
    unsigned PrevAddr = B.add(Op::global(A), Op::reg(L.I));
    unsigned CurAddr = B.add(Op::global(A), Op::reg(I1));
    unsigned BAddr = B.add(Op::global(Bv), Op::reg(I1));
    unsigned W = B.load(Op::reg(BAddr));
    unsigned T = emitAluChain(B, W, Spec.Work, Salt); // parallel part
    unsigned Prev = B.load(Op::reg(PrevAddr));
    unsigned Mixed = B.binary(Opcode::Xor, Op::reg(Prev), Op::reg(T));
    unsigned Scaled = B.binary(Opcode::Shr, Op::reg(Mixed), Op::immInt(1));
    B.store(Op::reg(Scaled), Op::reg(CurAddr));
    finishCountedLoop(L);
    B.setInsertPoint(L.Exit);
    unsigned Addr = B.add(Op::global(A), Op::immInt(int64_t(Spec.N)));
    unsigned Sum = B.load(Op::reg(Addr));
    B.ret(Op::reg(Sum));
    return L.F;
  }

  Function *buildWindowSlide() {
    // gzip's fill_window: the upper half of a 2N sliding window is
    // processed into the lower half. The SIV distance test keeps the
    // distance-N pair as loop-carried; only the value-range facts
    // (i in [0, N) vs i + N in [N, 2N)) prove the halves disjoint and
    // the loop DOALL.
    unsigned W = newArray("W", 2 * uint64_t(Spec.N));
    CountedLoop L = startCountedLoop(Spec.N);
    IRBuilder &B = L.B;
    unsigned LoAddr = B.add(Op::global(W), Op::reg(L.I));
    unsigned HiIdx = B.add(Op::reg(L.I), Op::immInt(int64_t(Spec.N)));
    unsigned HiAddr = B.add(Op::global(W), Op::reg(HiIdx));
    unsigned V = B.load(Op::reg(HiAddr));
    unsigned T = emitAluChain(B, V, Spec.Work, Salt);
    unsigned T2 = B.binary(Opcode::Xor, Op::reg(T), Op::reg(0));
    B.store(Op::reg(T2), Op::reg(LoAddr));
    finishCountedLoop(L);
    B.setInsertPoint(L.Exit);
    unsigned Addr = B.add(Op::global(W), Op::immInt(int64_t(Spec.N) - 1));
    unsigned Sum = B.load(Op::reg(Addr));
    B.ret(Op::reg(Sum));
    return L.F;
  }

  Function *buildBranchy() {
    unsigned A = newArray("A", Spec.N);
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Then = F->createBlock("then");
    BasicBlock *Cont = F->createBlock("cont");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    unsigned X = B.mov(Op::reg(0)); // conditionally-updated carried state
    B.br(Header);
    B.setInsertPoint(Header);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(Spec.N));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    unsigned Addr = B.add(Op::global(A), Op::reg(I));
    unsigned V = B.load(Op::reg(Addr));
    unsigned T = emitAluChain(B, V, Spec.Work, Salt);
    unsigned Low = B.binary(Opcode::And, Op::reg(V), Op::immInt(3));
    unsigned Bit = B.cmpEQ(Op::reg(Low), Op::immInt(0));
    B.condBr(Op::reg(Bit), Then, Cont);
    B.setInsertPoint(Then);
    B.binaryTo(X, Opcode::Add, Op::reg(X), Op::reg(T));
    B.br(Cont);
    B.setInsertPoint(Cont);
    B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
    B.br(Header);
    B.setInsertPoint(Exit);
    B.ret(Op::reg(X));
    return F;
  }

  Function *buildTwoAccum() {
    unsigned A = newArray("A", Spec.N);
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    unsigned X = B.mov(Op::reg(0));
    unsigned Y = B.mov(Op::immInt(0x9E3779B9));
    B.br(Header);
    B.setInsertPoint(Header);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(Spec.N));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    unsigned Addr = B.add(Op::global(A), Op::reg(I));
    unsigned V = B.load(Op::reg(Addr));
    // First parallel region, then accumulator X (segment 1), then a second
    // parallel region, then accumulator Y (segment 2). The two segments are
    // independent, so successive iterations overlap them (Figure 1).
    unsigned T1 = emitWork(F, B, V, Spec.Work / 2, Salt, WorkLoops);
    B.binaryTo(X, Opcode::Add, Op::reg(X), Op::reg(T1));
    unsigned V2 = B.binary(Opcode::Xor, Op::reg(V), Op::immInt(Salt));
    unsigned T2 = emitWork(F, B, V2, Spec.Work - Spec.Work / 2, Salt + 1,
                           WorkLoops);
    B.binaryTo(Y, Opcode::Xor, Op::reg(Y), Op::reg(T2));
    B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
    B.br(Header);
    B.setInsertPoint(Exit);
    unsigned Sum = B.add(Op::reg(X), Op::reg(Y));
    B.ret(Op::reg(Sum));
    return F;
  }

  Function *buildNested2D() {
    uint64_t Rows = Spec.N, Cols = Spec.Inner;
    unsigned A = newArray("A", Rows * Cols);
    unsigned Bv = newArray("B", Cols);
    Function *F = M.createFunction(Name, 1);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *RowHdr = F->createBlock("rowhdr");
    BasicBlock *RowBody = F->createBlock("rowbody");
    BasicBlock *ColHdr = F->createBlock("colhdr");
    BasicBlock *ColBody = F->createBlock("colbody");
    BasicBlock *RowLatch = F->createBlock("rowlatch");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    unsigned I = B.mov(Op::immInt(0));
    B.br(RowHdr);
    B.setInsertPoint(RowHdr);
    unsigned CI = B.cmpLT(Op::reg(I), Op::immInt(int64_t(Rows)));
    B.condBr(Op::reg(CI), RowBody, Exit);
    B.setInsertPoint(RowBody);
    unsigned RowBase = B.mul(Op::reg(I), Op::immInt(int64_t(Cols)));
    unsigned RowAddr = B.add(Op::global(A), Op::reg(RowBase));
    unsigned J = B.mov(Op::immInt(0));
    B.br(ColHdr);
    B.setInsertPoint(ColHdr);
    unsigned CJ = B.cmpLT(Op::reg(J), Op::immInt(int64_t(Cols)));
    B.condBr(Op::reg(CJ), ColBody, RowLatch);
    B.setInsertPoint(ColBody);
    unsigned Addr = B.add(Op::reg(RowAddr), Op::reg(J));
    unsigned BAddr = B.add(Op::global(Bv), Op::reg(J));
    unsigned V = B.load(Op::reg(Addr));
    unsigned W = B.load(Op::reg(BAddr));
    unsigned S = B.add(Op::reg(V), Op::reg(W));
    unsigned T = emitAluChain(B, S, Spec.Work, Salt);
    B.store(Op::reg(T), Op::reg(Addr));
    B.binaryTo(J, Opcode::Add, Op::reg(J), Op::immInt(1));
    B.br(ColHdr);
    B.setInsertPoint(RowLatch);
    B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
    B.br(RowHdr);
    B.setInsertPoint(Exit);
    unsigned Addr2 = B.add(Op::global(A), Op::immInt(int64_t(Rows * Cols) - 1));
    unsigned Sum = B.load(Op::reg(Addr2));
    B.ret(Op::reg(Sum));
    return F;
  }

  Module &M;
  std::string Name;
  KernelSpec Spec;
  unsigned Salt;
  unsigned WorkLoops = 0;
  std::vector<ArrayReq> Arrays;
};

/// Emits @init filling every kernel array deterministically (LCG) and
/// threading the linked lists.
void buildInit(Module &M,
               const std::vector<KernelBuilder::ArrayReq> &Arrays) {
  Function *F = M.createFunction("init", 0);
  IRBuilder B(F);
  BasicBlock *Cur = F->createBlock("entry");
  B.setInsertPoint(Cur);
  unsigned Seed = B.mov(Op::immInt(88172645463325252ll));

  unsigned Counter = 0;
  for (const auto &A : Arrays) {
    std::string Tag = "a" + std::to_string(Counter++);
    BasicBlock *Hdr = F->createBlock(Tag + ".hdr");
    BasicBlock *Body = F->createBlock(Tag + ".body");
    BasicBlock *Done = F->createBlock(Tag + ".done");
    uint64_t Count = A.IsList ? (A.Size - 2) / 2 : A.Size;
    unsigned I = B.mov(Op::immInt(0));
    B.br(Hdr);
    B.setInsertPoint(Hdr);
    unsigned C = B.cmpLT(Op::reg(I), Op::immInt(int64_t(Count)));
    B.condBr(Op::reg(C), Body, Done);
    B.setInsertPoint(Body);
    // xorshift-ish LCG step.
    unsigned S1 = B.mul(Op::reg(Seed), Op::immInt(6364136223846793005ll));
    unsigned S2 = B.add(Op::reg(S1), Op::immInt(1442695040888963407ll));
    B.movTo(Seed, Op::reg(S2));
    unsigned V = B.binary(Opcode::Shr, Op::reg(Seed), Op::immInt(33));
    if (A.IsList) {
      // Node i at slots [1 + 2i, 2 + 2i]; slot 0 holds the head pointer.
      unsigned Two = B.mul(Op::reg(I), Op::immInt(2));
      unsigned NodeAddr = B.add(Op::global(A.Global), Op::reg(Two));
      unsigned Node = B.add(Op::reg(NodeAddr), Op::immInt(1));
      unsigned ValAddr = B.add(Op::reg(Node), Op::immInt(1));
      unsigned Masked = B.binary(Opcode::And, Op::reg(V),
                                 Op::immInt(0xFFFF));
      B.store(Op::reg(Masked), Op::reg(ValAddr));
      // next = this + 2, or 0 for the last node.
      unsigned IsLast = B.cmpEQ(Op::reg(I), Op::immInt(int64_t(Count) - 1));
      unsigned NextCand = B.add(Op::reg(Node), Op::immInt(2));
      unsigned NotLast = B.binary(Opcode::Xor, Op::reg(IsLast), Op::immInt(1));
      unsigned Next = B.mul(Op::reg(NextCand), Op::reg(NotLast));
      B.store(Op::reg(Next), Op::reg(Node));
      B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
      B.br(Hdr);
      B.setInsertPoint(Done);
      // Head pointer = first node (base + 1).
      unsigned Head = B.add(Op::global(A.Global), Op::immInt(1));
      B.store(Op::reg(Head), Op::global(A.Global));
    } else {
      unsigned Addr = B.add(Op::global(A.Global), Op::reg(I));
      unsigned Masked =
          B.binary(Opcode::And, Op::reg(V), Op::immInt(0xFFFFFF));
      B.store(Op::reg(Masked), Op::reg(Addr));
      B.binaryTo(I, Opcode::Add, Op::reg(I), Op::immInt(1));
      B.br(Hdr);
      B.setInsertPoint(Done);
    }
    Cur = Done;
  }
  B.ret(Op::immInt(0));
}

const char *idiomTag(KernelIdiom K) {
  switch (K) {
  case KernelIdiom::DoAll:
    return "doall";
  case KernelIdiom::DoAllFP:
    return "fdoall";
  case KernelIdiom::Reduction:
    return "reduce";
  case KernelIdiom::PointerChase:
    return "chase";
  case KernelIdiom::Histogram:
    return "hist";
  case KernelIdiom::Stencil:
    return "stencil";
  case KernelIdiom::Branchy:
    return "branchy";
  case KernelIdiom::Nested2D:
    return "nest2d";
  case KernelIdiom::TwoAccum:
    return "twoacc";
  case KernelIdiom::WindowSlide:
    return "slide";
  }
  return "k";
}

} // namespace

std::unique_ptr<Module> helix::buildWorkload(const WorkloadSpec &Spec) {
  auto M = std::make_unique<Module>();
  std::vector<KernelBuilder::ArrayReq> AllArrays;

  // Kernels first (so phases can call them).
  std::vector<std::vector<Function *>> PhaseKernels;
  unsigned Salt = unsigned(Spec.Seed * 2654435761u);
  unsigned KId = 0;
  for (const PhaseSpec &Phase : Spec.Phases) {
    PhaseKernels.emplace_back();
    for (const KernelSpec &KS : Phase.Kernels) {
      std::string Name =
          formatStr("%s.k%u.%s", Spec.Name.c_str(), KId++, idiomTag(KS.Idiom));
      KernelBuilder KB(*M, Name, KS, Salt + KId * 17);
      PhaseKernels.back().push_back(KB.build());
      for (const auto &A : KB.arrays())
        AllArrays.push_back(A);
    }
  }

  buildInit(*M, AllArrays);

  // Phase functions: a repeat loop invoking the phase's kernels.
  std::vector<Function *> PhaseFns;
  for (unsigned P = 0; P != Spec.Phases.size(); ++P) {
    const PhaseSpec &PS = Spec.Phases[P];
    auto BuildLoopCalling =
        [&](const std::string &Name, unsigned Repeat,
            const std::vector<Function *> &Callees) -> Function * {
      Function *F = M->createFunction(Name, 1);
      IRBuilder B(F);
      BasicBlock *Entry = F->createBlock("entry");
      BasicBlock *Hdr = F->createBlock("hdr");
      BasicBlock *Body = F->createBlock("body");
      BasicBlock *Exit = F->createBlock("exit");
      B.setInsertPoint(Entry);
      unsigned R = B.mov(Op::immInt(0));
      unsigned Acc = B.mov(Op::reg(0));
      B.br(Hdr);
      B.setInsertPoint(Hdr);
      unsigned C = B.cmpLT(Op::reg(R), Op::immInt(Repeat));
      B.condBr(Op::reg(C), Body, Exit);
      B.setInsertPoint(Body);
      unsigned Mix = B.add(Op::reg(Acc), Op::reg(R));
      for (Function *K : Callees) {
        unsigned V = B.call(K, {Op::reg(Mix)});
        B.binaryTo(Acc, Opcode::Add, Op::reg(Acc), Op::reg(V));
      }
      B.binaryTo(R, Opcode::Add, Op::reg(R), Op::immInt(1));
      B.br(Hdr);
      B.setInsertPoint(Exit);
      B.ret(Op::reg(Acc));
      return F;
    };

    std::string PhaseName = formatStr("%s.phase%u", Spec.Name.c_str(), P);
    if (PS.ExtraCallLevel) {
      Function *Inner = BuildLoopCalling(PhaseName + ".sub", PS.Repeat,
                                         PhaseKernels[P]);
      PhaseFns.push_back(
          BuildLoopCalling(PhaseName, PS.Repeat, {Inner}));
    } else {
      PhaseFns.push_back(
          BuildLoopCalling(PhaseName, PS.Repeat, PhaseKernels[P]));
    }
  }

  // main: init, then the outer repeat loop over all phases.
  {
    Function *F = M->createFunction("main", 0);
    IRBuilder B(F);
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Hdr = F->createBlock("hdr");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertPoint(Entry);
    B.callVoid(M->findFunction("init"), {});
    unsigned R = B.mov(Op::immInt(0));
    unsigned Sum = B.mov(Op::immInt(0));
    B.br(Hdr);
    B.setInsertPoint(Hdr);
    unsigned C = B.cmpLT(Op::reg(R), Op::immInt(Spec.MainRepeat));
    B.condBr(Op::reg(C), Body, Exit);
    B.setInsertPoint(Body);
    for (Function *P : PhaseFns) {
      unsigned V = B.call(P, {Op::reg(R)});
      B.binaryTo(Sum, Opcode::Add, Op::reg(Sum), Op::reg(V));
    }
    B.binaryTo(R, Opcode::Add, Op::reg(R), Op::immInt(1));
    B.br(Hdr);
    B.setInsertPoint(Exit);
    unsigned Final = B.binary(Opcode::And, Op::reg(Sum),
                              Op::immInt(0xFFFFFFFFFFFFll));
    B.ret(Op::reg(Final));
  }

  std::string Err = verifyModule(*M);
  if (!Err.empty())
    reportFatalError(("workload failed verification: " + Err).c_str());
  return M;
}

std::unique_ptr<Module> helix::buildSpecWorkload(const std::string &Name) {
  for (const WorkloadSpec &Spec : spec2000Suite())
    if (Spec.Name == Name)
      return buildWorkload(Spec);
  return nullptr;
}
