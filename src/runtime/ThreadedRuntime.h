//===----------------------------------------------------------------------===//
///
/// \file
/// A real multi-threaded runtime for HELIX-parallelized loops — the
/// threaded driver of the decoded execution engine (src/exec/).
///
/// Where the timing simulator (src/sim) predicts performance, this runtime
/// validates *correctness under true concurrency*: iterations of a
/// parallelized loop execute in actual std::thread workers over the shared
/// decoded program, round-robin as in the paper (Figure 3(b)),
/// communicating through
///   - per-iteration segment flags (the thread memory buffers): Signal is
///     a release store, Wait an acquire spin — the load/store
///     implementation Section 2.3 describes for a TSO machine, expressed
///     with C++ atomics;
///   - the boundary-variable storage global in shared memory (Step 7);
///   - the IterationFlag control chain: iteration i+1 starts only after
///     iteration i executes IterStart (or finishes, if the body is empty).
///
/// Induction variables are materialized per iteration from the loop-entry
/// snapshot (Reg = snapshot + i * stride), which is what makes private
/// per-thread register files sufficient: everything else that crosses
/// iterations travels through the storage slots under synchronization.
///
/// The runtime executes one parallelized loop at a time; parallel loops
/// reached from inside an iteration run sequentially (Step 9's dynamic
/// check). Results must match the sequential interpreter exactly — the
/// differential tests run every workload through both.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_RUNTIME_THREADEDRUNTIME_H
#define HELIX_RUNTIME_THREADEDRUNTIME_H

#include "helix/ParallelLoopInfo.h"
#include "sim/Interpreter.h"

#include <vector>

namespace helix {

/// Statistics of one threaded execution.
struct RuntimeStats {
  uint64_t ParallelInvocations = 0;
  uint64_t ParallelIterations = 0;
  uint64_t SignalsSent = 0;
};

/// Executes @main of \p M with the loops in \p Loops running on
/// \p NumThreads worker threads. \returns the result (return value must
/// equal the sequential interpretation of the same module).
/// \p MaxSteps caps the instruction steps of each execution context
/// (defence against endless loops, e.g. fuzz-reduced candidates);
/// 0 keeps the shared default cap (ExecLimits::DefaultMaxSteps).
ExecResult runThreaded(Module &M,
                       const std::vector<const ParallelLoopInfo *> &Loops,
                       unsigned NumThreads, RuntimeStats *Stats = nullptr,
                       uint64_t MaxSteps = 0);

} // namespace helix

#endif // HELIX_RUNTIME_THREADEDRUNTIME_H
