#include "runtime/ThreadedRuntime.h"

#include "exec/ExecEngine.h"
#include "support/Compiler.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace helix;

namespace {

/// Per-iteration synchronization row (the thread memory buffer).
struct IterRow {
  std::atomic<uint64_t> SegMask{0};
  std::atomic<uint32_t> IterStartDone{0};
};

/// Book-keeping of one parallel-loop invocation.
struct Invocation {
  const ParallelLoopInfo *PLI = nullptr;
  /// Sync/IterStart instructions belonging to this loop (a nested
  /// parallelized loop's operations are sequential no-ops here). Decoded
  /// instructions keep their Instruction identity, so membership tests
  /// work unchanged on the engine.
  std::unordered_set<const Instruction *> OwnedSync;
  std::deque<IterRow> Rows; // deque: growth never moves existing rows
  std::mutex RowsMutex;
  std::atomic<int64_t> ExitIter{-1};
  std::atomic<bool> Failed{false};
  // Exit continuation (filled by the exiting iteration's worker).
  const BasicBlock *ExitBlock = nullptr;
  std::vector<Value> ExitRegs;
  std::atomic<uint64_t> Signals{0};

  IterRow &row(uint64_t I) {
    std::lock_guard<std::mutex> Lock(RowsMutex);
    while (Rows.size() <= I)
      Rows.emplace_back();
    return Rows[I];
  }
};

/// Engine hooks of one worker iteration: detect the back edge and loop
/// exits in the base frame, and give Wait/Signal/IterStart the
/// release/acquire semantics of Section 2.3 (Signal is a release store,
/// Wait an acquire spin on the predecessor iteration's segment flags).
struct WorkerHooks : DefaultExecHooks {
  static constexpr bool WantsEdges = true;

  WorkerHooks(ExecContext &Ctx, Invocation &Inv, uint64_t IterIdx)
      : Ctx(Ctx), Inv(Inv), IterIdx(IterIdx) {}

  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    if (Ctx.Frames.size() != 1)
      return true; // edges inside called functions are opaque
    const ParallelLoopInfo *PLI = Inv.PLI;
    if (From == PLI->Latch && To == PLI->Header) {
      IterationEnded = true;
      return false; // back edge: this iteration is done
    }
    if (PLI->contains(From) && !PLI->contains(To)) {
      TookExit = true;
      ExitTo = To;
      return false;
    }
    return true;
  }

  bool sync(const DecodedInst &I, const Instruction *Src) {
    // Only meaningful in the base frame for sync ops this loop owns.
    if (Ctx.Frames.size() != 1 || !Inv.OwnedSync.count(Src))
      return true;
    switch (I.Op) {
    case Opcode::Wait: {
      if (IterIdx == 0)
        break;
      uint64_t Bit = uint64_t(1) << (I.Imm & 63);
      IterRow &Prev = Inv.row(IterIdx - 1);
      while (!(Prev.SegMask.load(std::memory_order_acquire) & Bit)) {
        // A predecessor that trapped or exited will never publish this
        // flag; abandoning here (instead of spinning forever) is how dead
        // iterations past the exit unwind.
        int64_t Exit = Inv.ExitIter.load(std::memory_order_acquire);
        if ((Exit >= 0 && int64_t(IterIdx) > Exit) ||
            Inv.Failed.load(std::memory_order_relaxed))
          return false;
        std::this_thread::yield();
      }
      break;
    }
    case Opcode::SignalOp: {
      uint64_t Bit = uint64_t(1) << (I.Imm & 63);
      Inv.row(IterIdx).SegMask.fetch_or(Bit, std::memory_order_release);
      Inv.Signals.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case Opcode::IterStart:
      Inv.row(IterIdx).IterStartDone.store(1, std::memory_order_release);
      break;
    default:
      break;
    }
    return true;
  }

  void fence() { std::atomic_thread_fence(std::memory_order_seq_cst); }

  ExecContext &Ctx;
  Invocation &Inv;
  uint64_t IterIdx;
  bool IterationEnded = false;
  bool TookExit = false;
  const BasicBlock *ExitTo = nullptr;
};

/// Engine hooks of the main context between invocations: watch for edges
/// entering a parallelized loop's header from outside it.
struct LoopEntryHooks : DefaultExecHooks {
  static constexpr bool WantsEdges = true;

  LoopEntryHooks(ExecContext &Ctx,
                 const std::vector<const ParallelLoopInfo *> &Loops)
      : Ctx(Ctx), Loops(Loops) {}

  bool onEdge(const BasicBlock *From, const BasicBlock *To) {
    for (const ParallelLoopInfo *PLI : Loops) {
      if (PLI->F == Ctx.Frames.back().F->Src && To == PLI->Header &&
          !PLI->contains(From)) {
        Entered = PLI;
        return false;
      }
    }
    return true;
  }

  void fence() { std::atomic_thread_fence(std::memory_order_seq_cst); }

  ExecContext &Ctx;
  const std::vector<const ParallelLoopInfo *> &Loops;
  const ParallelLoopInfo *Entered = nullptr;
};

/// Runs iterations Worker, Worker+N, ... of one invocation over the
/// decoded program.
void workerMain(const ExecProgram &Prog, SharedExecMemory &Mem,
                Invocation &Inv, const std::vector<Value> &Snapshot,
                unsigned Worker, unsigned NumThreads, uint64_t MaxSteps) {
  const ParallelLoopInfo *PLI = Inv.PLI;
  const DecodedFunction *DF = Prog.function(PLI->F);
  assert(DF && "parallel loop in an undecoded function");
  uint32_t HeaderPC = DF->startOf(PLI->Header);

  // One context per worker, reset per iteration: the register stack and
  // alloca arena keep their capacity across iterations, so steady-state
  // iterations allocate nothing.
  ExecContext Ctx;
  Ctx.MaxSteps = MaxSteps;

  for (uint64_t Iter = Worker;; Iter += NumThreads) {
    // Control chain: iteration Iter may start once its predecessor passed
    // IterStart (or finished). The exiting iteration never sets its flag,
    // which is how later iterations learn to stop.
    if (Iter > 0) {
      IterRow &Prev = Inv.row(Iter - 1);
      while (!Prev.IterStartDone.load(std::memory_order_acquire)) {
        int64_t Exit = Inv.ExitIter.load(std::memory_order_acquire);
        if ((Exit >= 0 && int64_t(Iter) > Exit) ||
            Inv.Failed.load(std::memory_order_relaxed))
          return;
        std::this_thread::yield();
      }
    }

    Ctx.Frames.clear();
    Ctx.RegTop = 0;
    Ctx.Stack.clear();
    Ctx.StackPtr = 0;
    Ctx.Error.clear();
    Ctx.BudgetExhausted = false;
    Ctx.Steps = 0;
    Ctx.Cycles = 0;
    Ctx.StepsFused = 0;
    ExecContext::Frame &Fr = Ctx.pushFrame(*DF);
    Fr.PC = HeaderPC;
    assert(Snapshot.size() == DF->NumRegs && "snapshot/frame width mismatch");
    Value *Regs = Ctx.frameRegs(Fr);
    std::copy(Snapshot.begin(), Snapshot.end(), Regs);
    // Materialize induction variables: Reg = snapshot + Iter * stride.
    for (const MaterializedIV &IV : PLI->IVs)
      Regs[IV.Reg] =
          Value::ofInt(Snapshot[IV.Reg].asInt() + int64_t(Iter) * IV.Stride);

    WorkerHooks Hooks(Ctx, Inv, Iter);
    ExecStop R = runEngine(Prog, Mem, Ctx, Hooks);

    if (Ctx.BudgetExhausted)
      Mem.BudgetExhausted.store(true, std::memory_order_relaxed);
    if (R == ExecStop::Abandoned)
      return; // dead iteration past the exit (or after a failure)
    if (R == ExecStop::Trapped || R == ExecStop::Returned) {
      // Returning out of the loop's function mid-iteration would be a
      // malformed loop; treat as failure.
      Inv.Failed.store(true, std::memory_order_relaxed);
      Inv.ExitIter.store(int64_t(Iter), std::memory_order_release);
      return;
    }

    if (Hooks.TookExit) {
      // First (and only) exit: Step 9's exit bookkeeping.
      Inv.ExitBlock = Hooks.ExitTo;
      const Value *BaseRegs = Ctx.frameRegs(Ctx.Frames[0]);
      Inv.ExitRegs.assign(BaseRegs, BaseRegs + Ctx.Frames[0].F->NumRegs);
      Inv.ExitIter.store(int64_t(Iter), std::memory_order_release);
      return;
    }

    // Completed an iteration; defensively publish all segment flags (every
    // path signalled every segment already, by construction).
    Inv.row(Iter).SegMask.store(~uint64_t(0), std::memory_order_release);
    if (Inv.Failed.load(std::memory_order_relaxed))
      return;
  }
}

} // namespace

ExecResult helix::runThreaded(
    Module &M, const std::vector<const ParallelLoopInfo *> &Loops,
    unsigned NumThreads, RuntimeStats *Stats, uint64_t MaxSteps) {
  ExecResult Result;
  std::shared_ptr<const ExecProgram> Prog = DecodeCache::global().get(M);
  SharedExecMemory Mem(*Prog);
  uint64_t StepCap = MaxSteps ? MaxSteps : ExecLimits::DefaultMaxSteps;
  RuntimeStats LocalStats;

  const DecodedFunction *Main = Prog->findFunction("main");
  if (!Main) {
    Result.Error = "no @main";
    return Result;
  }

  ExecContext Ctx;
  Ctx.MaxSteps = StepCap;
  Ctx.pushFrame(*Main);

  while (true) {
    LoopEntryHooks Hooks(Ctx, Loops);
    ExecStop R = runEngine(*Prog, Mem, Ctx, Hooks);

    if (Ctx.BudgetExhausted)
      Mem.BudgetExhausted.store(true, std::memory_order_relaxed);
    if (R == ExecStop::Returned) {
      Result.Ok = true;
      Result.ReturnValue = Ctx.Returned;
      break;
    }
    if (R == ExecStop::Trapped) {
      Result.Error = Ctx.Error;
      break;
    }
    assert(R == ExecStop::EdgeStopped && Hooks.Entered &&
           "engine stopped without reason");
    const ParallelLoopInfo *Entered = Hooks.Entered;

    // ----- Parallel invocation (Figure 3(b)). ---------------------------
    Invocation Inv;
    Inv.PLI = Entered;
    for (const SequentialSegment &Seg : Entered->Segments) {
      Inv.OwnedSync.insert(Seg.Waits.begin(), Seg.Waits.end());
      Inv.OwnedSync.insert(Seg.Signals.begin(), Seg.Signals.end());
    }
    Inv.OwnedSync.insert(Entered->IterStarts.begin(),
                         Entered->IterStarts.end());
    const ExecContext::Frame &Base = Ctx.Frames.back();
    std::vector<Value> Snapshot(Ctx.frameRegs(Base),
                                Ctx.frameRegs(Base) + Base.F->NumRegs);

    {
      std::vector<std::thread> Workers;
      for (unsigned W = 0; W != NumThreads; ++W)
        Workers.emplace_back(workerMain, std::cref(*Prog), std::ref(Mem),
                             std::ref(Inv), std::cref(Snapshot), W,
                             NumThreads, StepCap);
      for (std::thread &T : Workers)
        T.join();
    }

    if (Inv.Failed.load() || Inv.ExitIter.load() < 0) {
      Result.Error = "parallel invocation failed or never exited";
      break;
    }
    ++LocalStats.ParallelInvocations;
    LocalStats.ParallelIterations += uint64_t(Inv.ExitIter.load()) + 1;
    LocalStats.SignalsSent += Inv.Signals.load();

    // Continue after the loop with the exiting iteration's registers
    // (boundary values are re-loaded from storage by the exit-edge blocks).
    ExecContext::Frame &Fr = Ctx.Frames.back();
    assert(Inv.ExitRegs.size() == Fr.F->NumRegs && "exit-regs width mismatch");
    std::copy(Inv.ExitRegs.begin(), Inv.ExitRegs.end(), Ctx.frameRegs(Fr));
    Fr.PC = Fr.F->startOf(Inv.ExitBlock);
  }

  Result.BudgetExhausted = Mem.BudgetExhausted.load();
  if (Stats)
    *Stats = LocalStats;
  return Result;
}
