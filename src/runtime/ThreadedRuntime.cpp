#include "runtime/ThreadedRuntime.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

using namespace helix;

namespace {

constexpr uint64_t StackBase = uint64_t(1) << 40;

/// Shared program memory: globals + heap in one pre-sized arena (so worker
/// threads never race a reallocation), per-context stacks elsewhere.
struct SharedMemory {
  std::vector<Value> Low;
  std::atomic<uint64_t> HeapPtr{0};
  std::vector<uint64_t> GlobalBase;
  /// Per-context step cap (defence against endless loops); every Context
  /// created against this memory inherits it.
  uint64_t MaxSteps = 400ull * 1000 * 1000;
  /// Set by any context (main or worker) that hit the step cap, so the
  /// final ExecResult can report budget exhaustion structurally even when
  /// the failing context was a worker whose message is summarized away.
  std::atomic<bool> BudgetExhausted{false};

  explicit SharedMemory(Module &M) {
    uint64_t Next = 1;
    for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
      GlobalBase.push_back(Next);
      Next += M.global(I).Size;
    }
    HeapPtr = Next;
    Low.assign(Next + (1u << 22), Value()); // 4M heap slots headroom
    for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
      const GlobalVariable &G = M.global(I);
      for (size_t K = 0; K != G.Init.size(); ++K)
        Low[GlobalBase[I] + K] = Value::ofInt(G.Init[K]);
    }
  }

  uint64_t heapAlloc(uint64_t N) {
    uint64_t Base = HeapPtr.fetch_add(N);
    if (Base + N > Low.size())
      reportFatalError("threaded runtime heap exhausted");
    return Base;
  }
};

/// Per-iteration synchronization row (the thread memory buffer).
struct IterRow {
  std::atomic<uint64_t> SegMask{0};
  std::atomic<uint32_t> IterStartDone{0};
};

/// Book-keeping of one parallel-loop invocation.
struct Invocation {
  const ParallelLoopInfo *PLI = nullptr;
  /// Sync/IterStart instructions belonging to this loop (a nested
  /// parallelized loop's operations are sequential no-ops here).
  std::set<const Instruction *> OwnedSync;
  std::deque<IterRow> Rows; // deque: growth never moves existing rows
  std::mutex RowsMutex;
  std::atomic<int64_t> ExitIter{-1};
  // Exit continuation (filled by the exiting iteration's worker).
  const BasicBlock *ExitBlock = nullptr;
  unsigned ExitPos = 0;
  std::vector<Value> ExitRegs;
  std::atomic<uint64_t> Signals{0};

  IterRow &row(uint64_t I) {
    std::lock_guard<std::mutex> Lock(RowsMutex);
    while (Rows.size() <= I)
      Rows.emplace_back();
    return Rows[I];
  }
};

/// One execution context (main thread, or one loop iteration).
struct Context {
  SharedMemory *Mem = nullptr;
  std::vector<Value> Stack;
  uint64_t StackPtr = 0;

  struct Frame {
    const Function *F;
    std::vector<Value> Regs;
    const BasicBlock *BB;
    unsigned Pos;
    uint64_t SavedSP;
    unsigned DestRegInCaller;
    bool WantsResult;
  };
  std::vector<Frame> Frames;
  Value Returned;
  std::string Error;
  uint64_t Steps = 0, MaxSteps = 400ull * 1000 * 1000;

  Value load(uint64_t Addr) {
    if (Addr >= StackBase) {
      uint64_t Idx = Addr - StackBase;
      return Idx < Stack.size() ? Stack[Idx] : Value();
    }
    return Addr < Mem->Low.size() ? Mem->Low[Addr] : Value();
  }
  void store(uint64_t Addr, Value V) {
    if (Addr >= StackBase) {
      uint64_t Idx = Addr - StackBase;
      if (Idx >= Stack.size())
        Stack.resize(Idx + 1);
      Stack[Idx] = V;
      return;
    }
    if (Addr >= Mem->Low.size())
      reportFatalError("threaded runtime store out of arena");
    Mem->Low[Addr] = V;
  }
};

/// What stopped a stepInstruction/runContext call.
enum class StopReason {
  Running,      ///< keep going
  Returned,     ///< base frame returned
  EdgeTaken,    ///< control moved along an edge the caller watches
  Failed,
};

/// The worker/main instruction engine. Edge watching: before following a
/// branch in the *base frame*, the supplied callback may redirect or stop
/// execution (used to detect loop entry, back edges and exits).
class Engine {
public:
  Engine(Module &M, SharedMemory &Mem) : M(M), Mem(Mem) {}

  /// Runs \p Ctx until the base frame returns or EdgeWatch stops it.
  /// EdgeWatch(from, to) is consulted for every same-frame control edge;
  /// returning false stops execution *before* the edge is taken (the
  /// frame's position stays on the terminator).
  template <typename EdgeWatchT>
  StopReason run(Context &Ctx, EdgeWatchT EdgeWatch,
                 Invocation *Inv = nullptr, uint64_t IterIdx = 0) {
    while (true) {
      if (Ctx.Frames.empty())
        return StopReason::Returned;
      if (++Ctx.Steps > Ctx.MaxSteps) {
        Ctx.Error = "threaded runtime step budget exhausted";
        Mem.BudgetExhausted.store(true, std::memory_order_relaxed);
        return StopReason::Failed;
      }
      Context::Frame &Fr = Ctx.Frames.back();
      assert(Fr.Pos < Fr.BB->size() && "fell off block end");
      Instruction *I =
          const_cast<BasicBlock *>(Fr.BB)->instr(Fr.Pos);
      StopReason R = step(Ctx, Fr, I, EdgeWatch, Inv, IterIdx);
      if (R != StopReason::Running)
        return R;
    }
  }

private:
  template <typename EdgeWatchT>
  StopReason step(Context &Ctx, Context::Frame &Fr, Instruction *I,
                  EdgeWatchT &EdgeWatch, Invocation *Inv, uint64_t IterIdx) {
    auto Val = [&](unsigned K) -> Value {
      const Operand &O = I->operand(K);
      switch (O.kind()) {
      case Operand::Kind::Reg:
        return Fr.Regs[O.regId()];
      case Operand::Kind::ImmInt:
        return Value::ofInt(O.intValue());
      case Operand::Kind::ImmFloat:
        return Value::ofFloat(O.floatValue());
      case Operand::Kind::Global:
        return Value::ofInt(int64_t(Mem.GlobalBase[O.globalIndex()]));
      }
      HELIX_UNREACHABLE("unknown operand");
    };
    auto SetDest = [&](Value V) { Fr.Regs[I->dest()] = V; };
    auto TakeEdge = [&](const BasicBlock *To) -> StopReason {
      if (!EdgeWatch(Fr.BB, To))
        return StopReason::EdgeTaken;
      Fr.BB = To;
      Fr.Pos = 0;
      return StopReason::Running;
    };

    switch (I->opcode()) {
    case Opcode::Add:
      SetDest(Value::ofInt(int64_t(uint64_t(Val(0).asInt()) +
                                   uint64_t(Val(1).asInt()))));
      break;
    case Opcode::Sub:
      SetDest(Value::ofInt(int64_t(uint64_t(Val(0).asInt()) -
                                   uint64_t(Val(1).asInt()))));
      break;
    case Opcode::Mul:
      SetDest(Value::ofInt(int64_t(uint64_t(Val(0).asInt()) *
                                   uint64_t(Val(1).asInt()))));
      break;
    case Opcode::Div: {
      int64_t B = Val(1).asInt();
      if (B == 0) {
        Ctx.Error = "division by zero";
        return StopReason::Failed;
      }
      SetDest(Value::ofInt(Val(0).asInt() / B));
      break;
    }
    case Opcode::Rem: {
      int64_t B = Val(1).asInt();
      if (B == 0) {
        Ctx.Error = "remainder by zero";
        return StopReason::Failed;
      }
      SetDest(Value::ofInt(Val(0).asInt() % B));
      break;
    }
    case Opcode::And:
      SetDest(Value::ofInt(Val(0).asInt() & Val(1).asInt()));
      break;
    case Opcode::Or:
      SetDest(Value::ofInt(Val(0).asInt() | Val(1).asInt()));
      break;
    case Opcode::Xor:
      SetDest(Value::ofInt(Val(0).asInt() ^ Val(1).asInt()));
      break;
    case Opcode::Shl:
      SetDest(Value::ofInt(
          int64_t(uint64_t(Val(0).asInt()) << (Val(1).asInt() & 63))));
      break;
    case Opcode::Shr:
      SetDest(Value::ofInt(
          int64_t(uint64_t(Val(0).asInt()) >> (Val(1).asInt() & 63))));
      break;
    case Opcode::FAdd:
      SetDest(Value::ofFloat(Val(0).asFloat() + Val(1).asFloat()));
      break;
    case Opcode::FSub:
      SetDest(Value::ofFloat(Val(0).asFloat() - Val(1).asFloat()));
      break;
    case Opcode::FMul:
      SetDest(Value::ofFloat(Val(0).asFloat() * Val(1).asFloat()));
      break;
    case Opcode::FDiv:
      SetDest(Value::ofFloat(Val(0).asFloat() / Val(1).asFloat()));
      break;
    case Opcode::IntToFP:
      SetDest(Value::ofFloat(Val(0).asFloat()));
      break;
    case Opcode::FPToInt:
      SetDest(Value::ofInt(Val(0).asInt()));
      break;
    case Opcode::CmpEQ:
      SetDest(Value::ofInt(Val(0).asInt() == Val(1).asInt()));
      break;
    case Opcode::CmpNE:
      SetDest(Value::ofInt(Val(0).asInt() != Val(1).asInt()));
      break;
    case Opcode::CmpLT:
      SetDest(Value::ofInt(Val(0).asInt() < Val(1).asInt()));
      break;
    case Opcode::CmpLE:
      SetDest(Value::ofInt(Val(0).asInt() <= Val(1).asInt()));
      break;
    case Opcode::CmpGT:
      SetDest(Value::ofInt(Val(0).asInt() > Val(1).asInt()));
      break;
    case Opcode::CmpGE:
      SetDest(Value::ofInt(Val(0).asInt() >= Val(1).asInt()));
      break;
    case Opcode::FCmpEQ:
      SetDest(Value::ofInt(Val(0).asFloat() == Val(1).asFloat()));
      break;
    case Opcode::FCmpNE:
      SetDest(Value::ofInt(Val(0).asFloat() != Val(1).asFloat()));
      break;
    case Opcode::FCmpLT:
      SetDest(Value::ofInt(Val(0).asFloat() < Val(1).asFloat()));
      break;
    case Opcode::FCmpLE:
      SetDest(Value::ofInt(Val(0).asFloat() <= Val(1).asFloat()));
      break;
    case Opcode::FCmpGT:
      SetDest(Value::ofInt(Val(0).asFloat() > Val(1).asFloat()));
      break;
    case Opcode::FCmpGE:
      SetDest(Value::ofInt(Val(0).asFloat() >= Val(1).asFloat()));
      break;
    case Opcode::Mov:
      SetDest(Val(0));
      break;
    case Opcode::Load: {
      int64_t Addr = Val(0).asInt();
      if (Addr <= 0) {
        Ctx.Error = "load from null address";
        return StopReason::Failed;
      }
      SetDest(Ctx.load(uint64_t(Addr)));
      break;
    }
    case Opcode::Store: {
      int64_t Addr = Val(1).asInt();
      if (Addr <= 0) {
        Ctx.Error = "store to null address";
        return StopReason::Failed;
      }
      Ctx.store(uint64_t(Addr), Val(0));
      break;
    }
    case Opcode::Alloca: {
      uint64_t Base = StackBase + Ctx.StackPtr;
      Ctx.StackPtr += uint64_t(I->imm());
      if (Ctx.Stack.size() < Ctx.StackPtr)
        Ctx.Stack.resize(Ctx.StackPtr);
      SetDest(Value::ofInt(int64_t(Base)));
      break;
    }
    case Opcode::HeapAlloc: {
      int64_t N = Val(0).asInt();
      if (N <= 0) {
        Ctx.Error = "bad heap allocation size";
        return StopReason::Failed;
      }
      SetDest(Value::ofInt(int64_t(Mem.heapAlloc(uint64_t(N)))));
      break;
    }
    case Opcode::Br:
      return TakeEdge(I->target1());
    case Opcode::CondBr:
      return TakeEdge(Val(0).asInt() != 0 ? I->target1() : I->target2());
    case Opcode::Call: {
      Context::Frame NewFr;
      NewFr.F = I->callee();
      NewFr.Regs.assign(I->callee()->numRegs(), Value());
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K)
        NewFr.Regs[K] = Val(K);
      NewFr.BB = I->callee()->entry();
      NewFr.Pos = 0;
      NewFr.SavedSP = Ctx.StackPtr;
      NewFr.DestRegInCaller = I->hasDest() ? I->dest() : NoReg;
      NewFr.WantsResult = I->hasDest();
      ++Fr.Pos;
      Ctx.Frames.push_back(std::move(NewFr));
      return StopReason::Running;
    }
    case Opcode::Ret: {
      Value RV = I->numOperands() == 1 ? Val(0) : Value();
      Ctx.StackPtr = Fr.SavedSP;
      unsigned DestReg = Fr.DestRegInCaller;
      bool Wants = Fr.WantsResult;
      Ctx.Frames.pop_back();
      if (Ctx.Frames.empty()) {
        Ctx.Returned = RV;
        return StopReason::Returned;
      }
      if (Wants && DestReg != NoReg)
        Ctx.Frames.back().Regs[DestReg] = RV;
      return StopReason::Running;
    }
    case Opcode::Wait: {
      // Only meaningful inside a parallel iteration in the base frame.
      if (Inv && Ctx.Frames.size() == 1 && Inv->OwnedSync.count(I) &&
          IterIdx > 0) {
        uint64_t Bit = uint64_t(1) << (I->imm() & 63);
        IterRow &Prev = Inv->row(IterIdx - 1);
        while (!(Prev.SegMask.load(std::memory_order_acquire) & Bit))
          std::this_thread::yield();
      }
      break;
    }
    case Opcode::SignalOp: {
      if (Inv && Ctx.Frames.size() == 1 && Inv->OwnedSync.count(I)) {
        uint64_t Bit = uint64_t(1) << (I->imm() & 63);
        Inv->row(IterIdx).SegMask.fetch_or(Bit, std::memory_order_release);
        Inv->Signals.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case Opcode::IterStart: {
      if (Inv && Ctx.Frames.size() == 1 && Inv->OwnedSync.count(I))
        Inv->row(IterIdx).IterStartDone.store(1, std::memory_order_release);
      break;
    }
    case Opcode::MemFence:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      break;
    case Opcode::Nop:
      break;
    }
    ++Fr.Pos;
    return StopReason::Running;
  }

  Module &M;
  SharedMemory &Mem;
};

/// Runs iterations Worker, Worker+N, ... of one invocation.
void workerMain(Module &M, SharedMemory &Mem, Invocation &Inv,
                const std::vector<Value> &Snapshot, unsigned Worker,
                unsigned NumThreads, std::atomic<bool> &Failed) {
  const ParallelLoopInfo *PLI = Inv.PLI;
  Engine Eng(M, Mem);

  for (uint64_t Iter = Worker;; Iter += NumThreads) {
    // Control chain: iteration Iter may start once its predecessor passed
    // IterStart (or finished). The exiting iteration never sets its flag,
    // which is how later iterations learn to stop.
    if (Iter > 0) {
      IterRow &Prev = Inv.row(Iter - 1);
      while (!Prev.IterStartDone.load(std::memory_order_acquire)) {
        int64_t Exit = Inv.ExitIter.load(std::memory_order_acquire);
        if ((Exit >= 0 && int64_t(Iter) > Exit) ||
            Failed.load(std::memory_order_relaxed))
          return;
        std::this_thread::yield();
      }
    }

    Context Ctx;
    Ctx.Mem = &Mem;
    Ctx.MaxSteps = Mem.MaxSteps;
    Context::Frame Fr;
    Fr.F = PLI->F;
    Fr.Regs = Snapshot;
    Fr.BB = PLI->Header;
    Fr.Pos = 0;
    Fr.SavedSP = 0;
    Fr.DestRegInCaller = NoReg;
    Fr.WantsResult = false;
    Ctx.Frames.push_back(std::move(Fr));
    // Materialize induction variables: Reg = snapshot + Iter * stride.
    for (const MaterializedIV &IV : PLI->IVs)
      Ctx.Frames[0].Regs[IV.Reg] = Value::ofInt(
          Snapshot[IV.Reg].asInt() + int64_t(Iter) * IV.Stride);

    bool IterationEnded = false;
    bool TookExit = false;
    const BasicBlock *ExitTo = nullptr;
    StopReason R = Eng.run(
        Ctx,
        [&](const BasicBlock *From, const BasicBlock *To) {
          if (Ctx.Frames.size() != 1)
            return true; // edges inside called functions are opaque
          if (From == PLI->Latch && To == PLI->Header) {
            IterationEnded = true;
            return false; // back edge: this iteration is done
          }
          if (PLI->contains(From) && !PLI->contains(To)) {
            TookExit = true;
            ExitTo = To;
            return false;
          }
          return true;
        },
        &Inv, Iter);

    if (R == StopReason::Failed || R == StopReason::Returned) {
      // Returning out of the loop's function mid-iteration would be a
      // malformed loop; treat as failure.
      Failed.store(true, std::memory_order_relaxed);
      Inv.ExitIter.store(int64_t(Iter), std::memory_order_release);
      return;
    }
    (void)IterationEnded;

    if (TookExit) {
      // First (and only) exit: Step 9's exit bookkeeping.
      Inv.ExitBlock = ExitTo;
      Inv.ExitPos = 0;
      Inv.ExitRegs = Ctx.Frames[0].Regs;
      Inv.ExitIter.store(int64_t(Iter), std::memory_order_release);
      return;
    }

    // Completed an iteration; defensively publish all segment flags (every
    // path signalled every segment already, by construction).
    Inv.row(Iter).SegMask.store(~uint64_t(0), std::memory_order_release);
    if (Failed.load(std::memory_order_relaxed))
      return;
  }
}

} // namespace

ExecResult helix::runThreaded(
    Module &M, const std::vector<const ParallelLoopInfo *> &Loops,
    unsigned NumThreads, RuntimeStats *Stats, uint64_t MaxSteps) {
  ExecResult Result;
  SharedMemory Mem(M);
  if (MaxSteps)
    Mem.MaxSteps = MaxSteps;
  Engine Eng(M, Mem);
  RuntimeStats LocalStats;

  Function *Main = M.findFunction("main");
  if (!Main) {
    Result.Error = "no @main";
    return Result;
  }

  Context Ctx;
  Ctx.Mem = &Mem;
  Ctx.MaxSteps = Mem.MaxSteps;
  Context::Frame Fr;
  Fr.F = Main;
  Fr.Regs.assign(Main->numRegs(), Value());
  Fr.BB = Main->entry();
  Fr.Pos = 0;
  Fr.SavedSP = 0;
  Fr.DestRegInCaller = NoReg;
  Fr.WantsResult = false;
  Ctx.Frames.push_back(std::move(Fr));

  while (true) {
    const ParallelLoopInfo *Entered = nullptr;
    StopReason R = Eng.run(Ctx, [&](const BasicBlock *From,
                                    const BasicBlock *To) {
      for (const ParallelLoopInfo *PLI : Loops) {
        if (PLI->F == Ctx.Frames.back().F && To == PLI->Header &&
            !PLI->contains(From)) {
          Entered = PLI;
          return false;
        }
      }
      return true;
    });

    if (R == StopReason::Returned) {
      Result.Ok = true;
      Result.ReturnValue = Ctx.Returned;
      break;
    }
    if (R == StopReason::Failed) {
      Result.Error = Ctx.Error;
      break;
    }
    assert(Entered && "engine stopped without reason");

    // ----- Parallel invocation (Figure 3(b)). ---------------------------
    Invocation Inv;
    Inv.PLI = Entered;
    for (const SequentialSegment &Seg : Entered->Segments) {
      Inv.OwnedSync.insert(Seg.Waits.begin(), Seg.Waits.end());
      Inv.OwnedSync.insert(Seg.Signals.begin(), Seg.Signals.end());
    }
    Inv.OwnedSync.insert(Entered->IterStarts.begin(),
                         Entered->IterStarts.end());
    std::vector<Value> Snapshot = Ctx.Frames.back().Regs;
    std::atomic<bool> Failed{false};

    {
      std::vector<std::thread> Workers;
      for (unsigned W = 0; W != NumThreads; ++W)
        Workers.emplace_back(workerMain, std::ref(M), std::ref(Mem),
                             std::ref(Inv), std::cref(Snapshot), W,
                             NumThreads, std::ref(Failed));
      for (std::thread &T : Workers)
        T.join();
    }

    if (Failed.load() || Inv.ExitIter.load() < 0) {
      Result.Error = "parallel invocation failed or never exited";
      break;
    }
    ++LocalStats.ParallelInvocations;
    LocalStats.ParallelIterations += uint64_t(Inv.ExitIter.load()) + 1;
    LocalStats.SignalsSent += Inv.Signals.load();

    // Continue after the loop with the exiting iteration's registers
    // (boundary values are re-loaded from storage by the exit-edge blocks).
    Ctx.Frames.back().Regs = Inv.ExitRegs;
    Ctx.Frames.back().BB = Inv.ExitBlock;
    Ctx.Frames.back().Pos = 0;
  }

  Result.BudgetExhausted = Mem.BudgetExhausted.load();
  if (Stats)
    *Stats = LocalStats;
  return Result;
}
