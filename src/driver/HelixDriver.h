//===----------------------------------------------------------------------===//
///
/// \file
/// Backwards-compatible one-call driver over the composable pipeline API
/// (pipeline/PipelineBuilder.h). runHelixPipeline(Original, Config) is
/// exactly equivalent to running PipelineBuilder::standard() on a fresh
/// PipelineContext configured with Config.toPipelineConfig():
///
///   profile -> candidates -> model-profile -> select -> transform
///           -> validate -> simulate
///
/// New code (and anything that sweeps configurations) should use the
/// pipeline API directly: a reused PipelineContext caches stage results
/// across configuration points.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_DRIVER_HELIXDRIVER_H
#define HELIX_DRIVER_HELIXDRIVER_H

#include "pipeline/PipelineConfig.h"
#include "pipeline/PipelineReport.h"

namespace helix {

/// Flat legacy configuration, kept for source compatibility with the
/// original monolithic driver. The layered PipelineConfig is the single
/// source of truth; this struct merely maps onto it.
struct DriverConfig {
  HelixOptions Helix;
  unsigned NumCores = 6;
  PrefetchMode Prefetch = PrefetchMode::Helper;
  bool DoAcross = false;
  /// Signal latency S assumed by the selection model. Negative (default)
  /// = per-loop gap-based estimate (Section 3.3). Explicit values
  /// reproduce Figures 12/13 — see SelectionConfig::SignalCycles for the
  /// full override semantics.
  double SelectionSignalCycles = -1.0;
  /// When >= 1, skip model-driven selection and pick every executed loop at
  /// this dynamic nesting level (1 = outermost), as in Figures 11 and 13.
  int ForceNestingLevel = -1;
  /// Candidate filter: loops below this fraction of program time are not
  /// evaluated.
  double MinLoopCycleFraction = 0.002;
  uint64_t MaxInterpInstructions = 400ull * 1000 * 1000;

  /// The equivalent layered configuration.
  PipelineConfig toPipelineConfig() const {
    PipelineConfig P;
    P.NumCores = NumCores;
    P.Helix = Helix;
    P.Selection.SignalCycles = SelectionSignalCycles;
    P.Selection.ForceNestingLevel = ForceNestingLevel;
    P.Selection.MinLoopCycleFraction = MinLoopCycleFraction;
    P.Prefetch = Prefetch;
    P.DoAcross = DoAcross;
    P.MaxInterpInstructions = MaxInterpInstructions;
    return P;
  }
};

/// Runs the whole standard pipeline on (a clone of) \p Original.
PipelineReport runHelixPipeline(const Module &Original,
                                const DriverConfig &Config);

/// Same, from a layered configuration.
PipelineReport runHelixPipeline(const Module &Original,
                                const PipelineConfig &Config);

} // namespace helix

#endif // HELIX_DRIVER_HELIXDRIVER_H
