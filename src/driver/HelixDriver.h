//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end HELIX pipeline used by the benchmark harnesses and the
/// examples:
///
///   1. profile the original program (training run), building the dynamic
///      loop nesting graph;
///   2. for every candidate loop, transform a clone of the program and
///      profile the HELIX-optimized form, yielding the model inputs
///      (Section 3.1's "subsequent profiling runs");
///   3. select the loops to parallelize with the analytical model (or at a
///      forced nesting level for the Figure 11/13 experiments);
///   4. transform the chosen set, re-run it sequentially to both validate
///      the transformation (outputs must match) and collect traces;
///   5. replay the traces on the CMP timing simulator.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_DRIVER_HELIXDRIVER_H
#define HELIX_DRIVER_HELIXDRIVER_H

#include "helix/HelixOptions.h"
#include "helix/LoopSelection.h"
#include "sim/ParallelSim.h"

#include <string>
#include <vector>

namespace helix {

struct DriverConfig {
  HelixOptions Helix;
  unsigned NumCores = 6;
  PrefetchMode Prefetch = PrefetchMode::Helper;
  bool DoAcross = false;
  /// Signal latency S assumed by the selection model. Negative (default)
  /// = per-loop gap-based estimate (Section 3.3): the latency a signal
  /// actually costs given how much parallel code separates consecutive
  /// segments. Explicit values reproduce Figures 12/13 (0 under-, 110
  /// over-estimate, 4 = always fully prefetched).
  double SelectionSignalCycles = -1.0;
  /// When >= 1, skip model-driven selection and pick every executed loop at
  /// this dynamic nesting level (1 = outermost), as in Figures 11 and 13.
  int ForceNestingLevel = -1;
  /// Candidate filter: loops below this fraction of program time are not
  /// evaluated.
  double MinLoopCycleFraction = 0.002;
  uint64_t MaxInterpInstructions = 400ull * 1000 * 1000;
};

/// Per chosen loop results.
struct LoopReport {
  std::string Name;
  unsigned Node = 0;
  unsigned NestingLevel = 1; ///< dynamic level, 1 = outermost
  LoopModelInputs Inputs;
  SimStats Sim;
  // Static transform statistics (from ParallelLoopInfo).
  unsigned NumDepsTotal = 0, NumDepsCarried = 0;
  unsigned SignalsInserted = 0, SignalsKept = 0;
  unsigned WaitsInserted = 0, WaitsKept = 0;
  unsigned CodeSizeInstrs = 0;
  unsigned NumSegments = 0;
};

struct PipelineReport {
  bool Ok = false;
  std::string Error;

  uint64_t SeqCycles = 0; ///< original sequential program time
  uint64_t ParCycles = 0; ///< simulated parallel program time
  double Speedup = 1.0;
  double ModelSpeedup = 1.0; ///< Equation-1 estimate for the chosen set
  bool OutputsMatch = false; ///< transformed program computes same result

  unsigned NumCandidates = 0;
  unsigned NumLoopsInProgram = 0;
  std::vector<LoopReport> Loops;

  // Figure 11 breakdown, percent of sequential execution time.
  double PctParallel = 0, PctSeqData = 0, PctSeqControl = 0, PctOutside = 100;

  // Table 1 aggregates.
  double LoopCarriedPct = 0;   ///< carried deps / all dependences
  double SignalsRemovedPct = 0;///< removed by Step 6 (static)
  double DataTransferPct = 0;  ///< forwarded words / loads executed in loops
  unsigned MaxCodeInstrs = 0;
};

/// Runs the whole pipeline on (a clone of) \p Original.
PipelineReport runHelixPipeline(const Module &Original,
                                const DriverConfig &Config);

} // namespace helix

#endif // HELIX_DRIVER_HELIXDRIVER_H
