//===----------------------------------------------------------------------===//
///
/// \file
/// Backwards-compatible one-call driver over the composable pipeline API
/// (pipeline/PipelineBuilder.h). runHelixPipeline(Original, Config) is
/// exactly equivalent to running PipelineBuilder::standard() on a fresh
/// PipelineContext configured with Config:
///
///   profile -> candidates -> model-profile -> select -> transform
///           -> validate -> simulate
///
/// New code (and anything that sweeps configurations) should use the
/// pipeline API directly: a reused PipelineContext caches stage results
/// across configuration points. The flat legacy DriverConfig is gone; the
/// layered PipelineConfig is the single source of truth for every knob.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_DRIVER_HELIXDRIVER_H
#define HELIX_DRIVER_HELIXDRIVER_H

#include "pipeline/PipelineConfig.h"
#include "pipeline/PipelineReport.h"

namespace helix {

/// Runs the whole standard pipeline on (a clone of) \p Original.
PipelineReport runHelixPipeline(const Module &Original,
                                const PipelineConfig &Config);

} // namespace helix

#endif // HELIX_DRIVER_HELIXDRIVER_H
