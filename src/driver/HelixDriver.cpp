#include "driver/HelixDriver.h"

#include "helix/HelixTransform.h"
#include "ir/Clone.h"
#include "profile/Profiler.h"
#include "sim/TraceCollector.h"
#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

namespace {

/// Model inputs extracted from the traces of one loop, with data-forwarding
/// words counted under round-robin placement on \p NumCores cores.
LoopModelInputs inputsFromTraces(const LoopTraces &T, unsigned NumCores,
                                 const MachineModel &Machine,
                                 bool HelperThreads) {
  LoopModelInputs In;
  In.SelfStarting = T.PLI && T.PLI->SelfStartingPrologue;
  In.Invocations = T.Invocations.size();
  for (const InvocationTrace &Inv : T.Invocations) {
    std::map<uint32_t, uint64_t> SlotWriter;
    for (uint64_t I = 0; I != Inv.Iterations.size(); ++I) {
      const IterationTrace &It = Inv.Iterations[I];
      ++In.Iterations;
      In.SeqCycles += It.TotalCycles;
      In.PrologueCycles += It.PrologueCycles;
      In.SegmentCycles += It.SegmentCycles;
      In.ParallelCycles +=
          It.TotalCycles - It.PrologueCycles - It.SegmentCycles;
      uint64_t SignalMask = 0;
      for (const IterEvent &E : It.Events) {
        if (E.K == IterEvent::Kind::Signal) {
          if (E.A < 64 && !(SignalMask & (uint64_t(1) << E.A))) {
            SignalMask |= uint64_t(1) << E.A;
            ++In.DataSignals;
          }
        } else if (E.K == IterEvent::Kind::SlotWrite) {
          SlotWriter[E.A] = I;
        } else if (E.K == IterEvent::Kind::SlotRead) {
          auto W = SlotWriter.find(E.A);
          if (W != SlotWriter.end() && W->second != I &&
              (I - W->second) % NumCores != 0)
            ++In.WordsForwarded;
        }
      }
    }
  }
  // Section 3.3: per-loop effective signal latency. The helper thread can
  // hide (gap) cycles of the unprefetched latency, where gap is the average
  // run of non-segment code between consecutive sequential segments.
  if (!HelperThreads) {
    In.EffSignalCycles = Machine.UnprefetchedSignalCycles;
  } else if (In.Iterations > 0) {
    // Signals the helper must hide per iteration: the data signals, plus
    // the control signal unless the prologue is self-starting (Step 3's
    // counted-loop case needs no control signals at all).
    uint64_t SignalsPerRun =
        In.DataSignals + (In.SelfStarting ? 0 : In.Iterations);
    if (SignalsPerRun == 0) {
      In.EffSignalCycles = Machine.PrefetchedSignalCycles;
    } else {
      double Gap =
          double(In.SeqCycles - In.SegmentCycles) / double(SignalsPerRun);
      In.EffSignalCycles = std::max(Machine.PrefetchedSignalCycles,
                                    Machine.UnprefetchedSignalCycles - Gap);
    }
  }
  return In;
}

ModelParams makeModelParams(const DriverConfig &Config, double SignalCycles) {
  ModelParams P;
  P.NumCores = Config.NumCores;
  P.SignalCycles = SignalCycles;
  P.StartStopSignalCycles = Config.Helix.Machine.UnprefetchedSignalCycles;
  P.WordTransferCycles = Config.Helix.Machine.WordTransferCycles;
  P.ConfCycles = Config.Helix.Machine.LoopConfigCycles;
  return P;
}

/// Dynamic nesting level of every node (1 = outermost), from the profiled
/// edges (shortest distance from a dynamic root).
std::vector<unsigned> dynamicLevels(const LoopNestGraph &LNG,
                                    const ProgramProfile &Profile) {
  unsigned N = LNG.numNodes();
  std::vector<std::vector<unsigned>> Children(N);
  std::vector<unsigned> Parents(N, 0);
  for (auto &[From, To] : Profile.DynamicEdges) {
    Children[From].push_back(To);
    ++Parents[To];
  }
  std::vector<unsigned> Level(N, 0);
  std::vector<unsigned> Queue;
  for (unsigned I = 0; I != N; ++I)
    if (Profile.executed(I) && Parents[I] == 0) {
      Level[I] = 1;
      Queue.push_back(I);
    }
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    unsigned Node = Queue[Head];
    for (unsigned C : Children[Node])
      if (Level[C] == 0) {
        Level[C] = Level[Node] + 1;
        Queue.push_back(C);
      }
  }
  return Level;
}

/// Clones the original module and parallelizes the loops named by
/// \p Nodes there. \returns the clone and the per-node metadata (nodes
/// whose transformation failed are dropped).
struct TransformedProgram {
  std::unique_ptr<Module> M;
  std::vector<std::pair<unsigned, ParallelLoopInfo>> Loops;
};

TransformedProgram transformChosen(const Module &Original,
                                   const LoopNestGraph &LNG,
                                   const std::vector<unsigned> &Nodes,
                                   const HelixOptions &Opts) {
  TransformedProgram Out;
  CloneMap Map;
  Out.M = cloneModule(Original, &Map);
  ModuleAnalyses AM(*Out.M);
  for (unsigned Node : Nodes) {
    const LoopNestNode &N = LNG.node(Node);
    Function *F = Map.Functions.at(N.F);
    BasicBlock *Header = Map.Blocks.at(N.L->header());
    std::optional<ParallelLoopInfo> PLI =
        parallelizeLoop(AM, F, Header, Opts);
    if (PLI)
      Out.Loops.push_back({Node, std::move(*PLI)});
  }
  return Out;
}

} // namespace

PipelineReport helix::runHelixPipeline(const Module &Original,
                                       const DriverConfig &Config) {
  PipelineReport Report;

  // ----- 1. Profile the original program. --------------------------------
  auto Pristine = cloneModule(Original);
  ModuleAnalyses AM(*Pristine);
  LoopNestGraph LNG(*Pristine, AM);
  Report.NumLoopsInProgram = LNG.numNodes();

  ExecResult SeqRun;
  ProgramProfile Profile = profileProgram(*Pristine, LNG, AM, &SeqRun);
  if (!SeqRun.Ok) {
    Report.Error = "sequential profiling run failed: " + SeqRun.Error;
    return Report;
  }
  Report.SeqCycles = SeqRun.Cycles;
  std::vector<unsigned> Levels = dynamicLevels(LNG, Profile);

  // ----- 2. Candidate loops and their HELIX-optimized profiles. ----------
  std::vector<std::optional<LoopModelInputs>> Inputs(LNG.numNodes());
  std::vector<unsigned> Candidates;
  for (unsigned Node = 0; Node != LNG.numNodes(); ++Node) {
    const LoopProfile &LP = Profile.Loops[Node];
    if (LP.Invocations == 0 || LP.Iterations <= LP.Invocations)
      continue;
    if (double(LP.Cycles) <
        Config.MinLoopCycleFraction * double(Profile.TotalCycles))
      continue;
    Candidates.push_back(Node);
  }
  Report.NumCandidates = unsigned(Candidates.size());

  bool NeedModel = Config.ForceNestingLevel < 1;
  if (NeedModel) {
    for (unsigned Node : Candidates) {
      TransformedProgram TP =
          transformChosen(*Pristine, LNG, {Node}, Config.Helix);
      if (TP.Loops.empty())
        continue;
      std::vector<const ParallelLoopInfo *> PLIs = {&TP.Loops[0].second};
      TraceCollector TC(PLIs);
      Interpreter Interp(*TP.M);
      Interp.setMaxInstructions(Config.MaxInterpInstructions);
      Interp.setObserver(&TC);
      ExecResult R = Interp.run("main");
      if (!R.Ok)
        continue; // candidate profiling failed: leave it unmodeled
      Inputs[Node] = inputsFromTraces(
          TC.traces()[0], Config.NumCores, Config.Helix.Machine,
          Config.Helix.EnableHelperThreads);
    }
  }

  // ----- 3. Loop selection. ----------------------------------------------
  std::vector<unsigned> Chosen;
  if (Config.ForceNestingLevel >= 1) {
    for (unsigned Node : Candidates)
      if (int(Levels[Node]) == Config.ForceNestingLevel)
        Chosen.push_back(Node);
  } else {
    double S = Config.SelectionSignalCycles;
    bool Explicit = S >= 0;
    if (Explicit) {
      // Explicit S (Figure 12/13 experiments) overrides the per-loop
      // gap-based estimates.
      for (auto &In : Inputs)
        if (In)
          In->EffSignalCycles = -1.0;
    } else {
      S = Config.Helix.Machine.PrefetchedSignalCycles; // unused fallback
    }
    ModelParams Params = makeModelParams(Config, S);
    if (Explicit) {
      // The experiment models a compiler that *believes* every signal
      // costs S, including on the segment chain.
      Params.ChainSignalCycles = S;
    }
    SelectionResult Sel = selectLoops(LNG, Profile, Inputs, Params);
    Chosen = Sel.Chosen;
  }

  // ----- 4. Transform the chosen set and validate sequentially. ----------
  TransformedProgram Final =
      transformChosen(*Pristine, LNG, Chosen, Config.Helix);
  std::vector<const ParallelLoopInfo *> PLIs;
  for (auto &[Node, PLI] : Final.Loops)
    PLIs.push_back(&PLI);
  TraceCollector TC(PLIs);
  Interpreter Interp(*Final.M);
  Interp.setMaxInstructions(Config.MaxInterpInstructions);
  Interp.setObserver(&TC);
  ExecResult ParRun = Interp.run("main");
  if (!ParRun.Ok) {
    Report.Error = "transformed program failed: " + ParRun.Error;
    return Report;
  }
  Report.OutputsMatch = ParRun.ReturnValue == SeqRun.ReturnValue;

  // ----- 5. Timing simulation. --------------------------------------------
  SimConfig SC;
  SC.NumCores = Config.NumCores;
  SC.Machine = Config.Helix.Machine;
  SC.Prefetch =
      Config.Helix.EnableHelperThreads ? Config.Prefetch : PrefetchMode::None;
  SC.DoAcross = Config.DoAcross;
  std::vector<SimStats> PerLoop;
  Report.ParCycles = simulateProgram(TC, SC, &PerLoop);
  Report.Speedup =
      Report.ParCycles ? double(Report.SeqCycles) / double(Report.ParCycles)
                       : 1.0;

  // ----- Reports. ----------------------------------------------------------
  uint64_t TransformedTotal = TC.totalCycles();
  double TPar = 0, TSeqData = 0, TSeqControl = 0;
  double ModelParTime = double(TransformedTotal);
  ModelParams ModelP = makeModelParams(
      Config, Config.Helix.EnableHelperThreads
                  ? Config.Helix.Machine.PrefetchedSignalCycles
                  : Config.Helix.Machine.UnprefetchedSignalCycles);

  uint64_t SumTransfers = 0, SumLoads = 0;
  uint64_t SumDepsTotal = 0, SumDepsCarried = 0;
  uint64_t SumSignalsInserted = 0, SumSignalsKept = 0;

  for (unsigned K = 0; K != PLIs.size(); ++K) {
    const ParallelLoopInfo &PLI = *PLIs[K];
    unsigned Node = Final.Loops[K].first;
    LoopReport LR;
    LR.Name = LNG.node(Node).name();
    LR.Node = Node;
    LR.NestingLevel = std::max(1u, Levels[Node]);
    LR.Inputs = inputsFromTraces(TC.traces()[K], Config.NumCores,
                                 Config.Helix.Machine,
                                 Config.Helix.EnableHelperThreads);
    LR.Sim = PerLoop[K];
    LR.NumDepsTotal = PLI.NumDepsTotal;
    LR.NumDepsCarried = PLI.NumDepsCarried;
    LR.SignalsInserted = PLI.NumSignalsInserted;
    LR.SignalsKept = PLI.NumSignalsKept;
    LR.WaitsInserted = PLI.NumWaitsInserted;
    LR.WaitsKept = PLI.NumWaitsKept;
    LR.CodeSizeInstrs = PLI.CodeSizeInstrs;
    LR.NumSegments = unsigned(PLI.Segments.size());

    TPar += double(LR.Inputs.ParallelCycles);
    TSeqData += double(LR.Inputs.SegmentCycles);
    TSeqControl += double(LR.Inputs.PrologueCycles);
    ModelParTime -= double(LR.Inputs.SeqCycles);
    ModelParTime += modelLoopParallelCycles(LR.Inputs, ModelP);

    SumTransfers += LR.Sim.DataTransfers;
    SumLoads += LR.Sim.ProgramLoads;
    SumDepsTotal += LR.NumDepsTotal;
    SumDepsCarried += LR.NumDepsCarried;
    SumSignalsInserted += LR.WaitsInserted + LR.SignalsInserted;
    SumSignalsKept += LR.WaitsKept + LR.SignalsKept;
    Report.MaxCodeInstrs = std::max(Report.MaxCodeInstrs, LR.CodeSizeInstrs);

    Report.Loops.push_back(std::move(LR));
  }

  double T = double(std::max<uint64_t>(1, TransformedTotal));
  Report.PctParallel = 100.0 * TPar / T;
  Report.PctSeqData = 100.0 * TSeqData / T;
  Report.PctSeqControl = 100.0 * TSeqControl / T;
  Report.PctOutside =
      100.0 - Report.PctParallel - Report.PctSeqData - Report.PctSeqControl;

  Report.ModelSpeedup = double(Report.SeqCycles) / std::max(1.0, ModelParTime);
  Report.LoopCarriedPct =
      SumDepsTotal ? 100.0 * double(SumDepsCarried) / double(SumDepsTotal)
                   : 0.0;
  Report.SignalsRemovedPct =
      SumSignalsInserted
          ? 100.0 * double(SumSignalsInserted - SumSignalsKept) /
                double(SumSignalsInserted)
          : 0.0;
  Report.DataTransferPct =
      SumLoads ? 100.0 * double(SumTransfers) / double(SumLoads) : 0.0;

  Report.Ok = true;
  return Report;
}
