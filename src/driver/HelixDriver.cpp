#include "driver/HelixDriver.h"

#include "pipeline/PipelineBuilder.h"

using namespace helix;

PipelineReport helix::runHelixPipeline(const Module &Original,
                                       const PipelineConfig &Config) {
  return PipelineBuilder::standard().run(Original, Config);
}

PipelineReport helix::runHelixPipeline(const Module &Original,
                                       const DriverConfig &Config) {
  return runHelixPipeline(Original, Config.toPipelineConfig());
}
