#include "driver/HelixDriver.h"

#include "pipeline/PipelineBuilder.h"

using namespace helix;

PipelineReport helix::runHelixPipeline(const Module &Original,
                                       const PipelineConfig &Config) {
  return PipelineBuilder::standard().run(Original, Config);
}
