//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the HELIX transformation and of the machine model.
/// The ablation switches correspond to the experiments of Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_HELIXOPTIONS_H
#define HELIX_HELIX_HELIXOPTIONS_H

namespace helix {

/// Machine-model constants measured on the paper's testbed (Intel Core
/// i7-980X, Section 3): an unprefetched inter-core signal costs 110 cycles
/// (two last-level-cache accesses of 55 cycles each); a fully prefetched
/// signal hits the first-level cache in 4 cycles; forwarding one CPU word
/// between cores costs 110 cycles.
/// Latencies only: the core count is *not* part of the machine model — it
/// is a top-level pipeline knob (PipelineConfig::NumCores, single source of
/// truth) because the paper sweeps it independently (Figure 9's 2/4/6-core
/// bars) while the latencies stay fixed.
struct MachineModel {
  bool HasSMT = true; ///< helper threads require SMT contexts
  double UnprefetchedSignalCycles = 110.0;
  double PrefetchedSignalCycles = 4.0;
  double WordTransferCycles = 110.0;
  /// Cost of configuring one parallel-loop invocation (thread buffer init,
  /// Conf_i in Equation 1), per started invocation.
  double LoopConfigCycles = 250.0;
};

/// Switches for the HELIX algorithm steps (Section 2.1).
struct HelixOptions {
  bool EnableInlining = true;    ///< Step 5: method inlining
  bool EnableScheduling = true;  ///< Step 5: segment-shrinking scheduling
  bool EnableSignalOpt = true;   ///< Step 6: signal minimization
  bool EnableHelperThreads = true; ///< Step 8: SMT signal prefetching
  bool EnableBalancing = true;     ///< Step 8: Figure-6 spacing scheduler
  /// Step 2 sharpening: value-range/congruence refinement of the
  /// dependence set (src/analysis/ValueRange). Off reproduces the
  /// points-to + ZIV/SIV-only DDG.
  bool EnableRangeRefinement = true;
  // Note: the signal latency assumed by the loop-*selection* model is not a
  // transform knob; it lives in SelectionConfig::SignalCycles
  // (pipeline/PipelineConfig.h), the single source of truth.

  MachineModel Machine;
};

} // namespace helix

#endif // HELIX_HELIX_HELIXOPTIONS_H
