#include "helix/ParallelLoopInfo.h"

#include <cstring>

using namespace helix;

namespace {

struct Fnv1a {
  uint64_t H = 0xcbf29ce484222325ull;
  void bytes(const void *P, size_t N) {
    const unsigned char *C = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I != N; ++I) {
      H ^= C[I];
      H *= 0x100000001b3ull;
    }
  }
  void u64(uint64_t V) { bytes(&V, sizeof V); }
  void u32(uint32_t V) { bytes(&V, sizeof V); }
  void str(const std::string &S) {
    bytes(S.data(), S.size());
    u32(0); // length terminator, so "ab"+"c" != "a"+"bc"
  }
};

} // namespace

uint64_t helix::computeLoopBodySeal(const ParallelLoopInfo &PLI) {
  Fnv1a H;
  for (const BasicBlock *BB : PLI.LoopBlocks) {
    H.str(BB->name());
    for (const Instruction *I : *BB) {
      H.u32(uint32_t(I->opcode()));
      H.u64(uint64_t(I->imm()));
      H.u32(I->hasDest() ? I->dest() : ~0u);
      H.u32(I->numOperands());
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
        const Operand &O = I->operand(K);
        H.u32(uint32_t(O.kind()));
        switch (O.kind()) {
        case Operand::Kind::Reg:
          H.u32(O.regId());
          break;
        case Operand::Kind::Global:
          H.u32(O.globalIndex());
          break;
        case Operand::Kind::ImmInt:
          H.u64(uint64_t(O.intValue()));
          break;
        case Operand::Kind::ImmFloat: {
          double D = O.floatValue();
          uint64_t Bits;
          std::memcpy(&Bits, &D, sizeof Bits);
          H.u64(Bits);
          break;
        }
        }
      }
      H.str(I->target1() ? I->target1()->name() : std::string());
      H.str(I->target2() ? I->target2()->name() : std::string());
      H.str(I->callee() ? I->callee()->name() : std::string());
    }
  }
  // A seal of zero means "never recorded"; remap the (astronomically
  // unlikely) real zero so recorded seals are always checkable.
  return H.H ? H.H : 1;
}
