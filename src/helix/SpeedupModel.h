//===----------------------------------------------------------------------===//
///
/// \file
/// The HELIX analytical speedup model (Section 2.2).
///
/// Amdahl's law with parallelization overhead:
///   Speedup(P, N, O) = 1 / (1 - P + P/N + O)
/// where P is the fraction of program time in parallel code of the chosen
/// loops, N the core count, and O the normalized overhead
///   O_i = Conf_i + Sig_i * S + ceil(Bytes_i / CPUword) * M       (Eq. 1)
/// with Sig_i = C-Sig_i + D-Sig_i + 2*(N-1)*Invoc_i. Start/stop signals
/// cannot be prefetched, so they are charged at the unprefetched latency
/// (the simulator does the same, keeping model validation apples-to-apples).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_SPEEDUPMODEL_H
#define HELIX_HELIX_SPEEDUPMODEL_H

#include <cstdint>
#include <vector>

namespace helix {

/// Profile inputs of one candidate loop, in absolute cycles of the
/// HELIX-transformed program's sequential interpretation.
struct LoopModelInputs {
  uint64_t SeqCycles = 0;      ///< total time inside the loop
  uint64_t ParallelCycles = 0; ///< body time outside sequential segments (P_i)
  uint64_t PrologueCycles = 0; ///< Sequential-Control (Figure 11)
  uint64_t SegmentCycles = 0;  ///< Sequential-Data (Figure 11)
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;   ///< C-Sig: one control signal per iteration
  uint64_t DataSignals = 0;  ///< D-Sig: dynamic Signal executions
  uint64_t WordsForwarded = 0; ///< boundary words moved between cores
  /// Per-loop effective signal latency (Section 3.3's gap-based estimate:
  /// how much of the unprefetched latency the helper thread can hide given
  /// the code between consecutive segments). Negative = use the global
  /// ModelParams::SignalCycles.
  double EffSignalCycles = -1.0;
  /// Counted loop whose prologue needs no control signals (Step 3):
  /// drops the C-Sig term of Equation 1.
  bool SelfStarting = false;
};

struct ModelParams {
  unsigned NumCores = 6;
  double SignalCycles = 4.0;        ///< S (per data/control signal)
  double StartStopSignalCycles = 110.0; ///< latency of start/stop signals
  double WordTransferCycles = 110.0;    ///< M
  double ConfCycles = 250.0;            ///< Conf_i per invocation
  /// Latency a signal costs when the sequential-segment chain itself is
  /// the critical path: prefetching cannot help a consumer that is already
  /// blocked when the signal is sent, so the full unprefetched latency
  /// applies (the chain lower bound below Equation 1).
  double ChainSignalCycles = 110.0;
};

/// Lower bound on a loop's parallel execution time: the cross-iteration
/// chain of sequential segments, each link paying its segment code, an
/// unprefetched signal, and any forwarded words. Equation 1's Amdahl form
/// cannot see this; taking the max keeps selection away from chain-bound
/// loops (the failure mode Figure 12's S=0 bars demonstrate).
double modelLoopChainCycles(const LoopModelInputs &In,
                            const ModelParams &Params);

/// Absolute overhead O_i of loop i, in cycles.
double modelLoopOverheadCycles(const LoopModelInputs &In,
                               const ModelParams &Params);

/// Estimated parallel execution time of the loop alone, in cycles.
double modelLoopParallelCycles(const LoopModelInputs &In,
                               const ModelParams &Params);

/// Estimated saved time T_i = max(0, SeqCycles - parallel estimate).
double modelLoopSavedCycles(const LoopModelInputs &In,
                            const ModelParams &Params);

/// Whole-program speedup for a chosen set of loops, Equation 1 composed
/// over \p Loops with total sequential program time \p TotalCycles.
double modelProgramSpeedup(uint64_t TotalCycles,
                           const std::vector<LoopModelInputs> &Loops,
                           const ModelParams &Params);

} // namespace helix

#endif // HELIX_HELIX_SPEEDUPMODEL_H
