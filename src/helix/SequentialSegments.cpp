#include "helix/SequentialSegments.h"

#include "ir/CFG.h"
#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

bool DepReachability::reachableAfter(
    const BasicBlock *BB, unsigned Idx, unsigned Dep,
    const std::vector<DataDependence> &Deps) const {
  // Any endpoint later in this block?
  const std::vector<Instruction *> Endpoints = Deps[Dep].allEndpoints();
  for (unsigned K = Idx + 1, E = BB->size(); K != E; ++K)
    if (std::find(Endpoints.begin(), Endpoints.end(), BB->instr(K)) !=
        Endpoints.end())
      return true;
  return Out[BB->id()].test(Dep);
}

DepReachability helix::computeDepReachability(
    const std::vector<BasicBlock *> &LoopBlocks, BasicBlock *Header,
    BasicBlock *Latch, const std::vector<DataDependence> &Deps,
    unsigned NumBlockIds) {
  unsigned NumDeps = unsigned(Deps.size());
  DepReachability R;
  R.In.assign(NumBlockIds, BitSet(NumDeps));
  R.Out.assign(NumBlockIds, BitSet(NumDeps));
  R.HasEndpoint.assign(NumBlockIds, BitSet(NumDeps));

  auto InLoop = [&](const BasicBlock *BB) {
    return std::find(LoopBlocks.begin(), LoopBlocks.end(), BB) !=
           LoopBlocks.end();
  };

  for (unsigned D = 0; D != NumDeps; ++D)
    for (Instruction *I : Deps[D].allEndpoints()) {
      assert(InLoop(I->parent()) && "dependence endpoint outside loop");
      R.HasEndpoint[I->parent()->id()].set(D);
    }

  // Backward union dataflow over the loop subgraph, back edge cut.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : LoopBlocks) {
      BitSet NewOut(NumDeps);
      for (BasicBlock *Succ : BB->successors()) {
        if (!InLoop(Succ))
          continue;
        if (BB == Latch && Succ == Header)
          continue; // the back edge ends the iteration
        NewOut.unionWith(R.In[Succ->id()]);
      }
      BitSet NewIn = NewOut;
      NewIn.unionWith(R.HasEndpoint[BB->id()]);
      if (NewOut != R.Out[BB->id()] || NewIn != R.In[BB->id()]) {
        R.Out[BB->id()] = std::move(NewOut);
        R.In[BB->id()] = std::move(NewIn);
        Changed = true;
      }
    }
  }
  return R;
}

WaitSignalInsertion
helix::insertWaitSignals(Function *F, NormalizedLoop &NL,
                         const std::vector<DataDependence> &Deps) {
  unsigned NumDeps = unsigned(Deps.size());
  WaitSignalInsertion WS;
  WS.WaitsOf.resize(NumDeps);
  WS.SignalsOf.resize(NumDeps);

  DepReachability R = computeDepReachability(NL.LoopBlocks, NL.Header,
                                             NL.Latch, Deps, F->numBlockIds());

  auto InLoop = [&](const BasicBlock *BB) { return NL.contains(BB); };

  // ----- Collect placement decisions first (CFG edits come after). -----
  // Waits go immediately before each endpoint occurrence.
  // In-block signals go after the last endpoint in a block whose Out bit is
  // clear (or just before the endpoint when the endpoint is the block
  // terminator; consumers have already copied their inputs at Wait time, so
  // signalling before a consuming terminator is safe).
  struct InBlockSignal {
    Instruction *Anchor;
    unsigned Dep;
    bool Before; // insert before (terminator case) instead of after
  };
  std::vector<InBlockSignal> BlockSignals;
  struct EdgeSignal {
    BasicBlock *From;
    BasicBlock *To;
    unsigned Dep;
  };
  std::vector<EdgeSignal> EdgeSignals;
  std::vector<unsigned> HeaderSignals; // dep ids signalled at header entry

  for (unsigned D = 0; D != NumDeps; ++D) {
    std::vector<Instruction *> Endpoints = Deps[D].allEndpoints();

    for (BasicBlock *BB : NL.LoopBlocks) {
      if (!R.HasEndpoint[BB->id()].test(D))
        continue;
      if (R.Out[BB->id()].test(D))
        continue;
      // Find the last endpoint occurrence in this block.
      Instruction *Last = nullptr;
      for (Instruction *I : *BB)
        if (std::find(Endpoints.begin(), Endpoints.end(), I) !=
            Endpoints.end())
          Last = I;
      assert(Last && "endpoint bit set but no endpoint found");
      BlockSignals.push_back({Last, D, Last->isTerminator()});
    }

    for (BasicBlock *BB : NL.LoopBlocks)
      for (BasicBlock *Succ : BB->successors()) {
        if (!InLoop(Succ) || (BB == NL.Latch && Succ == NL.Header))
          continue;
        if (R.Out[BB->id()].test(D) && !R.In[Succ->id()].test(D))
          EdgeSignals.push_back({BB, Succ, D});
      }

    if (!R.In[NL.Header->id()].test(D))
      HeaderSignals.push_back(D);
  }

  // ----- Apply: Waits before endpoints. -----
  for (unsigned D = 0; D != NumDeps; ++D)
    for (Instruction *Endpoint : Deps[D].allEndpoints()) {
      Instruction *W =
          Endpoint->parent()->insertBefore(Endpoint, Opcode::Wait);
      W->setImm(D);
      WS.WaitsOf[D].push_back(W);
      ++WS.NumWaits;
    }

  // ----- Apply: in-block signals (with a guarding Wait just before). -----
  for (const InBlockSignal &S : BlockSignals) {
    BasicBlock *BB = S.Anchor->parent();
    Instruction *Sig = S.Before ? BB->insertBefore(S.Anchor, Opcode::SignalOp)
                                : BB->insertAfter(S.Anchor, Opcode::SignalOp);
    Sig->setImm(S.Dep);
    Instruction *W = BB->insertBefore(Sig, Opcode::Wait);
    W->setImm(S.Dep);
    WS.SignalsOf[S.Dep].push_back(Sig);
    WS.WaitsOf[S.Dep].push_back(W);
    ++WS.NumSignals;
    ++WS.NumWaits;
  }

  // ----- Apply: edge signals (splitting each edge once). -----
  std::map<std::pair<BasicBlock *, BasicBlock *>, BasicBlock *> SplitOf;
  for (const EdgeSignal &S : EdgeSignals) {
    auto Key = std::make_pair(S.From, S.To);
    auto It = SplitOf.find(Key);
    if (It == SplitOf.end()) {
      BasicBlock *Mid = splitEdge(F, S.From, S.To);
      It = SplitOf.emplace(Key, Mid).first;
      WS.NewBlocks.push_back(Mid);
      NL.LoopBlocks.push_back(Mid);
      // The split block inherits the prologue/body classification of the
      // edge target (it executes strictly before it).
      if (NL.inPrologue(S.To))
        NL.Prologue.push_back(Mid);
      else
        NL.Body.push_back(Mid);
    }
    BasicBlock *Mid = It->second;
    Instruction *Term = Mid->terminator();
    Instruction *Sig = Mid->insertBefore(Term, Opcode::SignalOp);
    Sig->setImm(S.Dep);
    Instruction *W = Mid->insertBefore(Sig, Opcode::Wait);
    W->setImm(S.Dep);
    WS.SignalsOf[S.Dep].push_back(Sig);
    WS.WaitsOf[S.Dep].push_back(W);
    ++WS.NumSignals;
    ++WS.NumWaits;
  }

  // ----- Apply: header-entry signals for never-reachable dependences. -----
  for (unsigned D : HeaderSignals) {
    Instruction *First = NL.Header->front();
    Instruction *W = NL.Header->insertBefore(First, Opcode::Wait);
    W->setImm(D);
    Instruction *Sig = NL.Header->insertAfter(W, Opcode::SignalOp);
    Sig->setImm(D);
    WS.WaitsOf[D].push_back(W);
    WS.SignalsOf[D].push_back(Sig);
    ++WS.NumSignals;
    ++WS.NumWaits;
  }

  return WS;
}
