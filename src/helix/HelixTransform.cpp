#include "helix/HelixTransform.h"

#include "helix/LoopPasses.h"

using namespace helix;

std::optional<ParallelLoopInfo>
helix::parallelizeLoop(AnalysisManager &AM, Function *F, BasicBlock *Header,
                       const HelixOptions &Opts,
                       std::vector<LoopPassTiming> *Timings) {
  // One manager serves every configuration: the step switches in Opts are
  // honoured inside the passes.
  static const LoopPassManager PM = [] {
    LoopPassManager M;
    addStandardHelixLoopPasses(M);
    return M;
  }();
  return PM.run(AM, F, Header, Opts, Timings);
}
