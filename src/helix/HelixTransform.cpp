#include "helix/HelixTransform.h"

#include "analysis/DataDependence.h"
#include "helix/Inliner.h"
#include "helix/Lowering.h"
#include "helix/Normalize.h"
#include "helix/Scheduler.h"
#include "helix/SequentialSegments.h"
#include "helix/SignalOpt.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"

#include <algorithm>
#include <set>

using namespace helix;

namespace {

/// Recomputes the dependence set of the (already normalized) loop, and
/// filters out dependences that need no synchronization because every
/// endpoint sits in the prologue of an earlier-or-equal iteration: the
/// prologues themselves execute sequentially, ordered by the IterStart
/// control signal, so only data forwarding (Step 7) is needed for them.
std::vector<DataDependence> computeDeps(ModuleAnalyses &AM, Function *F,
                                        Loop *L, DependenceStats &StatsOut) {
  FunctionAnalyses &FA = AM.on(F);
  LoopVarAnalysis Vars(F, L, FA.DT);
  LoopDependenceAnalysis DDA(F, L, FA.CFG, FA.DT, FA.LV, Vars,
                             AM.pointsTo(), AM.memEffects());
  StatsOut = DDA.stats();
  return DDA.toSynchronize();
}

Loop *findLoop(LoopInfo &LI, BasicBlock *Header) {
  for (unsigned I = 0, E = LI.numLoops(); I != E; ++I)
    if (LI.loop(I)->header() == Header)
      return LI.loop(I);
  return nullptr;
}

/// Induction variables the engines materialize per iteration.
std::vector<MaterializedIV> collectIVs(ModuleAnalyses &AM, Function *F,
                                       Loop *L) {
  LoopVarAnalysis Vars(F, L, AM.on(F).DT);
  std::vector<MaterializedIV> IVs;
  for (const InductionVar &IV : Vars.inductionVars())
    IVs.push_back({IV.Reg, IV.Stride});
  return IVs;
}

/// Step 3's counted-loop test: true when no dependence endpoint sits in
/// the prologue and every register the prologue reads is invariant, an
/// induction variable, or defined earlier in the prologue itself. Such a
/// prologue is locally computable from the iteration number, so iterations
/// start without inter-thread control signals.
bool prologueIsSelfStarting(ModuleAnalyses &AM, Function *F, Loop *L,
                            const NormalizedLoop &NL,
                            const std::vector<DataDependence> &Deps) {
  for (const DataDependence &D : Deps)
    for (Instruction *E : D.allEndpoints())
      if (NL.inPrologue(E->parent()))
        return false;

  LoopVarAnalysis Vars(F, L, AM.on(F).DT);
  std::set<unsigned> DefinedInPrologue;
  for (BasicBlock *BB : NL.Prologue)
    for (Instruction *I : *BB) {
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
        const Operand &O = I->operand(K);
        if (!O.isReg())
          continue;
        unsigned R = O.regId();
        if (Vars.isInvariant(R) || Vars.inductionVar(R) ||
            DefinedInPrologue.count(R))
          continue;
        return false;
      }
      if (I->hasDest())
        DefinedInPrologue.insert(I->dest());
      // Calls may read loop-varying memory; be conservative.
      if (I->isCall() || I->mayReadMemory())
        return false;
    }
  return true;
}

} // namespace

std::optional<ParallelLoopInfo>
helix::parallelizeLoop(ModuleAnalyses &AM, Function *F, BasicBlock *Header,
                       const HelixOptions &Opts) {
  // ----- Step 1: normalization. ------------------------------------------
  NormalizedLoop NL = normalizeLoop(AM, F, Header);
  if (!NL.Valid)
    return std::nullopt;

  ParallelLoopInfo PLI;
  PLI.F = F;
  PLI.Header = NL.Header;

  // ----- Step 2: dependences to satisfy. ----------------------------------
  DependenceStats Stats;
  Loop *L = findLoop(AM.on(F).LI, Header);
  assert(L && "normalized loop vanished");
  std::vector<DataDependence> Deps = computeDeps(AM, F, L, Stats);

  // ----- Step 5a: method inlining. ----------------------------------------
  // Calls that are endpoints of a dependence are inlined (unless inside a
  // subloop, which would prevent shrinking the segment), then dependences
  // are recomputed. Bounded to avoid code blow-up, per the paper's
  // conservative heuristic.
  if (Opts.EnableInlining) {
    for (unsigned Round = 0; Round != 4; ++Round) {
      Instruction *ToInline = nullptr;
      for (const DataDependence &D : Deps) {
        for (Instruction *E : D.allEndpoints()) {
          if (!E->isCall() || E->callee() == F)
            continue;
          // Skip calls inside subloops of L.
          bool InSubLoop = false;
          for (Loop *Sub : L->subLoops())
            InSubLoop |= Sub->contains(E->parent());
          if (InSubLoop)
            continue;
          if (AM.callGraph().isRecursive(E->callee()))
            continue;
          ToInline = E;
          break;
        }
        if (ToInline)
          break;
      }
      if (!ToInline)
        break;
      if (!inlineCall(F, ToInline))
        break;
      ++PLI.InlinedCalls;
      AM.invalidateAll();
      NL = normalizeLoop(AM, F, Header);
      assert(NL.Valid && "inlining destroyed the loop");
      L = findLoop(AM.on(F).LI, Header);
      Deps = computeDeps(AM, F, L, Stats);
    }
  }

  PLI.NumDepsTotal = Stats.NumAliasPairs + Stats.NumRegCarried +
                     Stats.NumExcludedFalse + Stats.NumExcludedInduction;
  PLI.NumDepsCarried = unsigned(Deps.size());
  PLI.Deps = Deps;

  // Induction variables (collected before lowering adds new code).
  PLI.IVs = collectIVs(AM, F, L);
  PLI.SelfStartingPrologue = prologueIsSelfStarting(AM, F, L, NL, Deps);

  // ----- Step 4: Wait/Signal insertion. -----------------------------------
  WaitSignalInsertion WS = insertWaitSignals(F, NL, Deps);
  PLI.NumWaitsInserted = WS.NumWaits;
  PLI.NumSignalsInserted = WS.NumSignals;

  // ----- Step 5b: shrink sequential segments by scheduling. ---------------
  if (Opts.EnableScheduling)
    compactSegments(NL, Deps);

  // ----- Step 6: minimize signals. ----------------------------------------
  SignalOptResult SO =
      optimizeSignals(F, NL, Deps, WS, Opts.EnableSignalOpt);
  PLI.NumWaitsKept = SO.NumWaitsKept;
  PLI.NumSignalsKept = SO.NumSignalsKept;

  // ----- Steps 3 and 7: iteration starts and communication. ---------------
  LoweringResult LR = lowerParallelLoop(F, NL, Deps, SO, PLI.IVs);
  PLI.IterStarts = LR.IterStarts;
  PLI.StorageGlobal = LR.StorageGlobal;
  PLI.SlotOfReg = LR.SlotOfReg;

  // ----- Step 8: space segments for helper-thread prefetching. ------------
  if (Opts.EnableHelperThreads && Opts.EnableBalancing) {
    unsigned Delta = unsigned(Opts.Machine.UnprefetchedSignalCycles -
                              Opts.Machine.PrefetchedSignalCycles);
    balanceSegmentSpacing(NL, Deps, Delta);
  }

  // ----- Publish metadata. -------------------------------------------------
  PLI.Latch = NL.Latch;
  PLI.LoopBlocks = NL.LoopBlocks;
  PLI.PrologueBlocks = NL.Prologue;
  PLI.BodyBlocks = NL.Body;
  PLI.Segments = SO.Segments;
  for (auto &[SegId, Slots] : LR.SlotsReadOfSegment)
    PLI.Segments[SegId].SlotsRead = Slots;
  for (BasicBlock *BB : NL.LoopBlocks)
    PLI.CodeSizeInstrs += BB->size();

  AM.invalidateAll();
  assert(verifyFunction(*F).empty() && "transformed function is malformed");
  return PLI;
}
