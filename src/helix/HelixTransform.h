//===----------------------------------------------------------------------===//
///
/// \file
/// The HELIX loop parallelization pipeline (Section 2.1, Steps 1-9).
///
/// Given a loop, this driver normalizes it, computes the dependences to
/// satisfy, inlines calls participating in dependences, inserts and
/// optimizes Wait/Signal synchronization, schedules code to shrink and
/// space sequential segments, lowers boundary-variable communication, and
/// returns the ParallelLoopInfo metadata the execution engines consume.
///
/// Step 9 note (merging parallel loops): only one loop runs in parallel at
/// a time. The lowered loop remains sequentially executable (sync ops are
/// no-ops in single-threaded interpretation), so instead of cloning a
/// sequential copy of every loop, the runtime executes the same code
/// sequentially when another parallel loop is already active — the dynamic
/// check the paper implements with a pre-header branch on a global flag.
/// Exit dispatch (unique value per exit path) falls out of the engines'
/// direct interpretation of the exit edges.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_HELIXTRANSFORM_H
#define HELIX_HELIX_HELIXTRANSFORM_H

#include "analysis/AnalysisManager.h"
#include "helix/HelixOptions.h"
#include "helix/ParallelLoopInfo.h"
#include "helix/PassTiming.h"

#include <optional>
#include <vector>

namespace helix {

/// Parallelizes the loop with header \p Header of \p F in place.
/// \returns the loop metadata, or nullopt when the loop cannot be
/// normalized (e.g. the header no longer heads a loop). When \p Timings
/// is non-null, per-pass wall time is accumulated into it (see
/// LoopPassManager::run).
std::optional<ParallelLoopInfo>
parallelizeLoop(AnalysisManager &AM, Function *F, BasicBlock *Header,
                const HelixOptions &Opts,
                std::vector<LoopPassTiming> *Timings = nullptr);

} // namespace helix

#endif // HELIX_HELIX_HELIXTRANSFORM_H
