#include "helix/SignalOpt.h"

#include "support/Compiler.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace helix;

namespace {

/// Forward intersection dataflow: which dependences' Waits have certainly
/// executed at each block entry, within one iteration (back edge cut).
/// \p Owned filters out Wait/Signal operations belonging to a different
/// (e.g. nested) parallelized loop in the same function.
std::vector<BitSet> computeWaitAvailability(const NormalizedLoop &NL,
                                            unsigned NumDeps,
                                            unsigned NumBlockIds,
                                            const std::set<Instruction *> &Owned) {
  std::vector<BitSet> GenOf(NumBlockIds, BitSet(NumDeps));
  for (BasicBlock *BB : NL.LoopBlocks)
    for (Instruction *I : *BB)
      if (I->opcode() == Opcode::Wait && Owned.count(I))
        GenOf[BB->id()].set(unsigned(I->imm()));

  std::vector<BitSet> In(NumBlockIds, BitSet(NumDeps));
  std::vector<bool> Initialized(NumBlockIds, false);
  // Header starts with nothing available; interior blocks start at top
  // (full set) and are lowered by the meet.
  Initialized[NL.Header->id()] = true;

  auto InLoop = [&](const BasicBlock *BB) { return NL.contains(BB); };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : NL.LoopBlocks) {
      if (BB == NL.Header)
        continue;
      BitSet NewIn(NumDeps);
      bool First = true;
      for (BasicBlock *Pred : NL.LoopBlocks) {
        bool IsPred = false;
        for (BasicBlock *Succ : Pred->successors())
          if (Succ == BB && !(Pred == NL.Latch && BB == NL.Header))
            IsPred = true;
        if (!IsPred || !InLoop(Pred))
          continue;
        if (!Initialized[Pred->id()])
          continue; // treat uninitialized as top
        BitSet PredOut = In[Pred->id()];
        PredOut.unionWith(GenOf[Pred->id()]);
        if (First) {
          NewIn = PredOut;
          First = false;
        } else {
          NewIn.intersectWith(PredOut);
        }
      }
      if (First) {
        // No initialized intra-loop predecessor yet: leave at top.
        continue;
      }
      if (!Initialized[BB->id()] || NewIn != In[BB->id()]) {
        In[BB->id()] = std::move(NewIn);
        Initialized[BB->id()] = true;
        Changed = true;
      }
    }
  }
  return In;
}

} // namespace

SignalOptResult helix::optimizeSignals(Function *F, NormalizedLoop &NL,
                                       const std::vector<DataDependence> &Deps,
                                       WaitSignalInsertion &WS, bool Enabled) {
  unsigned NumDeps = unsigned(Deps.size());
  SignalOptResult R;

  std::vector<bool> Dropped(NumDeps, false);
  std::vector<unsigned> CoveredBy(NumDeps, ~0u);

  // Sync operations this transform inserted; anything else (nested
  // parallelized loops) is opaque code to Step 6.
  std::set<Instruction *> Owned;
  for (auto &List : WS.WaitsOf)
    Owned.insert(List.begin(), List.end());
  for (auto &List : WS.SignalsOf)
    Owned.insert(List.begin(), List.end());

  if (Enabled && NumDeps > 0) {
    // --- 1. Redundant Wait elimination. ---------------------------------
    std::vector<BitSet> AvailIn =
        computeWaitAvailability(NL, NumDeps, F->numBlockIds(), Owned);
    std::vector<Instruction *> ToErase;
    for (BasicBlock *BB : NL.LoopBlocks) {
      BitSet Avail = AvailIn[BB->id()];
      for (Instruction *I : *BB) {
        if (I->opcode() != Opcode::Wait || !Owned.count(I))
          continue;
        unsigned D = unsigned(I->imm());
        if (Avail.test(D))
          ToErase.push_back(I);
        else
          Avail.set(D);
      }
    }
    for (Instruction *I : ToErase) {
      unsigned D = unsigned(I->imm());
      auto &List = WS.WaitsOf[D];
      auto It = std::find(List.begin(), List.end(), I);
      assert(It != List.end() && "erasing a Wait we do not own");
      List.erase(It);
      Owned.erase(I);
      I->parent()->erase(I);
    }

    // --- 3. Cross-dependence redundancy (Theorem 1). --------------------
    // (Run before merging: merged groups inherit the surviving ops.)
    AvailIn = computeWaitAvailability(NL, NumDeps, F->numBlockIds(), Owned);
    DepReachability CR = computeDepReachability(
        NL.LoopBlocks, NL.Header, NL.Latch, Deps, F->numBlockIds());

    // AvailAtWait[i] = set of deps whose Wait is available at *every*
    // remaining Wait(d_i).
    std::vector<BitSet> AvailAtWait(NumDeps, BitSet(NumDeps));
    for (unsigned D = 0; D != NumDeps; ++D)
      AvailAtWait[D].setAll();
    std::vector<bool> HasWait(NumDeps, false);
    for (BasicBlock *BB : NL.LoopBlocks) {
      BitSet Avail = AvailIn[BB->id()];
      for (Instruction *I : *BB) {
        if (I->opcode() != Opcode::Wait || !Owned.count(I))
          continue;
        unsigned D = unsigned(I->imm());
        AvailAtWait[D].intersectWith(Avail);
        HasWait[D] = true;
        Avail.set(D);
      }
    }

    // SafeSignals[j][i]: no endpoint of i reachable after any Signal(j).
    auto SignalsSafeFor = [&](unsigned J, unsigned I) {
      for (Instruction *Sig : WS.SignalsOf[J]) {
        BasicBlock *BB = Sig->parent();
        if (CR.reachableAfter(BB, BB->indexOf(Sig), I, Deps))
          return false;
      }
      return true;
    };

    // Greedy cover in code order: drop d when a kept dependence directly
    // covers it. A dependence that already covers others must stay kept,
    // or the cover chain would dangle.
    std::vector<bool> IsCoverer(NumDeps, false);
    for (unsigned DI = 0; DI != NumDeps; ++DI) {
      if (!HasWait[DI] || IsCoverer[DI])
        continue;
      for (unsigned DJ = 0; DJ != NumDeps; ++DJ) {
        if (DJ == DI || Dropped[DJ] || !HasWait[DJ])
          continue;
        if (!AvailAtWait[DI].test(DJ))
          continue;
        if (!SignalsSafeFor(DJ, DI))
          continue;
        Dropped[DI] = true;
        CoveredBy[DI] = DJ;
        IsCoverer[DJ] = true;
        break;
      }
    }

    // Delete the synchronization of dropped dependences.
    for (unsigned D = 0; D != NumDeps; ++D) {
      if (!Dropped[D])
        continue;
      for (Instruction *I : WS.WaitsOf[D]) {
        Owned.erase(I);
        I->parent()->erase(I);
      }
      for (Instruction *I : WS.SignalsOf[D]) {
        Owned.erase(I);
        I->parent()->erase(I);
      }
      WS.WaitsOf[D].clear();
      WS.SignalsOf[D].clear();
    }
  }

  // --- 2. Segment formation & adjacency merging. ------------------------
  // Union-find over kept dependences.
  std::vector<unsigned> Rep(NumDeps);
  for (unsigned D = 0; D != NumDeps; ++D)
    Rep[D] = D;
  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    while (Rep[X] != X)
      X = Rep[X] = Rep[Rep[X]];
    return X;
  };

  if (Enabled) {
    // Two kept dependences merge when, in every maximal run of consecutive
    // sync operations, ops of one appear iff ops of the other do (no
    // parallel code can separate them anywhere).
    std::vector<std::vector<BitSet>> Runs; // one BitSet of dep ids per run
    for (BasicBlock *BB : NL.LoopBlocks) {
      BitSet Current(NumDeps);
      bool InRun = false;
      for (Instruction *I : *BB) {
        if (I->isSync() && Owned.count(I)) {
          if (!InRun) {
            Current = BitSet(NumDeps);
            InRun = true;
          }
          Current.set(unsigned(I->imm()));
        } else if (InRun) {
          Runs.emplace_back().push_back(Current);
          InRun = false;
        }
      }
      if (InRun)
        Runs.emplace_back().push_back(Current);
    }
    // Deps D1, D2 mergeable iff they always co-occur across runs.
    for (unsigned D1 = 0; D1 != NumDeps; ++D1) {
      if (Dropped[D1] || WS.WaitsOf[D1].empty())
        continue;
      for (unsigned D2 = D1 + 1; D2 != NumDeps; ++D2) {
        if (Dropped[D2] || WS.WaitsOf[D2].empty())
          continue;
        bool CoOccur = true;
        for (auto &Run : Runs)
          for (BitSet &S : Run)
            if (S.test(D1) != S.test(D2))
              CoOccur = false;
        if (CoOccur)
          Rep[Find(D2)] = Find(D1);
      }
    }
  }

  // --- Assign final segment ids in code order of the first Wait. --------
  CFGInfo CFG(F);
  auto PositionKey = [&](Instruction *I) {
    return std::make_pair(CFG.rpoIndex(I->parent()),
                          I->parent()->indexOf(I));
  };

  std::map<unsigned, unsigned> SegIdOfGroup; // group rep -> segment id
  std::vector<std::pair<std::pair<unsigned, unsigned>, unsigned>> GroupOrder;
  for (unsigned D = 0; D != NumDeps; ++D) {
    if (Dropped[D] || WS.WaitsOf[D].empty())
      continue;
    unsigned G = Find(D);
    std::pair<unsigned, unsigned> Best{~0u, ~0u};
    for (Instruction *W : WS.WaitsOf[D])
      Best = std::min(Best, PositionKey(W));
    bool Seen = false;
    for (auto &[Key, Group] : GroupOrder)
      if (Group == G) {
        Key = std::min(Key, Best);
        Seen = true;
      }
    if (!Seen)
      GroupOrder.push_back({Best, G});
  }
  std::sort(GroupOrder.begin(), GroupOrder.end());
  for (auto &[Key, Group] : GroupOrder) {
    (void)Key;
    if (!SegIdOfGroup.count(Group)) {
      unsigned Id = unsigned(SegIdOfGroup.size());
      SegIdOfGroup[Group] = Id;
      R.Segments.push_back(SequentialSegment());
      R.Segments.back().Id = Id;
    }
  }

  // Fill segments; rewrite sync Imms from dep ids to segment ids.
  for (unsigned D = 0; D != NumDeps; ++D) {
    unsigned SegId;
    if (Dropped[D]) {
      unsigned Coverer = CoveredBy[D];
      // Follow the cover chain in case the coverer itself merged.
      SegId = SegIdOfGroup.at(Find(Coverer));
    } else if (WS.WaitsOf[D].empty()) {
      continue; // dependence with no synchronization (should not happen)
    } else {
      SegId = SegIdOfGroup.at(Find(D));
    }
    R.SegmentOfDep[D] = SegId;
    R.Segments[SegId].DepIds.push_back(D);
    for (Instruction *I : WS.WaitsOf[D]) {
      I->setImm(SegId);
      R.Segments[SegId].Waits.push_back(I);
      ++R.NumWaitsKept;
    }
    for (Instruction *I : WS.SignalsOf[D]) {
      I->setImm(SegId);
      R.Segments[SegId].Signals.push_back(I);
      ++R.NumSignalsKept;
    }
  }

  // Cleanup: delete immediately-adjacent duplicate syncs of one segment
  // (artifacts of merging), keeping the first Wait and the last Signal.
  if (Enabled) {
    for (BasicBlock *BB : NL.LoopBlocks) {
      std::vector<Instruction *> ToErase;
      for (unsigned Idx = 0; Idx + 1 < BB->size(); ++Idx) {
        Instruction *A = BB->instr(Idx);
        Instruction *B = BB->instr(Idx + 1);
        if (!Owned.count(A) || !Owned.count(B))
          continue;
        if (A->opcode() == Opcode::Wait && B->opcode() == Opcode::Wait &&
            A->imm() == B->imm())
          ToErase.push_back(B);
        if (A->opcode() == Opcode::SignalOp &&
            B->opcode() == Opcode::SignalOp && A->imm() == B->imm())
          ToErase.push_back(A);
      }
      for (Instruction *I : ToErase) {
        for (SequentialSegment &S : R.Segments) {
          auto EraseFrom = [&](std::vector<Instruction *> &V) {
            auto It = std::find(V.begin(), V.end(), I);
            if (It != V.end()) {
              V.erase(It);
              if (I->opcode() == Opcode::Wait)
                --R.NumWaitsKept;
              else
                --R.NumSignalsKept;
            }
          };
          EraseFrom(S.Waits);
          EraseFrom(S.Signals);
        }
        I->parent()->erase(I);
      }
    }
  }

  return R;
}
