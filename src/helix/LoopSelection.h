//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback-directed loop selection algorithm of Section 2.2.
///
/// Each node of the *dynamic* loop nesting graph carries two attributes:
///   T    — time saved by parallelizing this loop alone (from the speedup
///          model applied to its HELIX-optimized profile), and
///   maxT — the best saving achievable by this loop *or* the best
///          combination of its subloops.
/// Phase 1 propagates maxT from inner to outer loops to a fixed point.
/// Phase 2 searches top-down from the outermost loops and selects the
/// shallowest nodes whose own T matches maxT: below such a node no subloop
/// combination can save more time.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_LOOPSELECTION_H
#define HELIX_HELIX_LOOPSELECTION_H

#include "analysis/LoopNestGraph.h"
#include "helix/SpeedupModel.h"
#include "profile/Profiler.h"

#include <optional>
#include <vector>

namespace helix {

struct SelectionResult {
  /// Chosen loop-nest node ids, in deterministic order.
  std::vector<unsigned> Chosen;
  /// Per node: T and maxT attributes (0 for unprofiled/unmodeled nodes).
  std::vector<double> T;
  std::vector<double> MaxT;
};

/// Runs the two-phase selection over the dynamic loop nesting graph.
/// \p Inputs[node] is the model input of the candidate (nullopt for loops
/// not considered, e.g. never executed or too cold).
SelectionResult
selectLoops(const LoopNestGraph &LNG, const ProgramProfile &Profile,
            const std::vector<std::optional<LoopModelInputs>> &Inputs,
            const ModelParams &Params);

} // namespace helix

#endif // HELIX_HELIX_LOOPSELECTION_H
