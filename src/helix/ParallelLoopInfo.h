//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata describing a HELIX-parallelized loop. Produced by
/// HelixTransform; consumed by the timing simulator (src/sim), the threaded
/// runtime (src/runtime) and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_PARALLELLOOPINFO_H
#define HELIX_HELIX_PARALLELLOOPINFO_H

#include "analysis/DataDependence.h"

#include <map>
#include <vector>

namespace helix {

/// One sequential segment after Step 6: a set of dependences synchronized
/// together through a single Wait/Signal pair per iteration.
struct SequentialSegment {
  unsigned Id = 0;
  /// Dependence ids (into ParallelLoopInfo::Deps) covered by this segment.
  std::vector<unsigned> DepIds;
  std::vector<Instruction *> Waits;
  std::vector<Instruction *> Signals;
  /// Boundary-variable slots loaded under this segment's Wait (data is
  /// actually transferred only when the producing store ran in an earlier
  /// iteration; see Figure 2's 6.25% discussion).
  std::vector<unsigned> SlotsRead;
};

/// An induction variable materialized per iteration (Reg = Base + i*Stride,
/// where Base is the register's value when the loop is entered).
struct MaterializedIV {
  unsigned Reg = NoReg;
  int64_t Stride = 0;
};

/// Everything the execution engines need to run one parallelized loop.
struct ParallelLoopInfo {
  Function *F = nullptr;
  /// Loop structure (block lists are stable after the transform).
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr; ///< unique latch after normalization
  std::vector<BasicBlock *> LoopBlocks;
  std::vector<BasicBlock *> PrologueBlocks; ///< not post-dominated by the
                                            ///< back edge (Step 1)
  std::vector<BasicBlock *> BodyBlocks;
  /// IterStart markers (Step 3), one per prologue->body boundary.
  std::vector<Instruction *> IterStarts;
  /// Step 3's counted-loop special case: the prologue consumes only
  /// loop-invariant values and induction variables and contains no
  /// dependence endpoint, so every iteration can start without waiting for
  /// its predecessor's control signal (no C-Sig cost at all).
  bool SelfStartingPrologue = false;

  /// D_data (Step 2) as finally synchronized.
  std::vector<DataDependence> Deps;
  std::vector<SequentialSegment> Segments;
  std::vector<MaterializedIV> IVs;

  /// Module global holding the loop-boundary live variables (Step 7's
  /// "allocation frame of the main thread"); slot index per register.
  unsigned StorageGlobal = ~0u;
  std::map<unsigned, unsigned> SlotOfReg;

  /// Content hash of LoopBlocks recorded when the transform finished
  /// (see computeLoopBodySeal). The static checker recomputes it to prove
  /// nothing rewrote the parallelized body after the fact; zero = never
  /// recorded.
  uint64_t BodySeal = 0;

  /// Statistics for Table 1.
  unsigned NumWaitsInserted = 0;   ///< after naive Step 4 insertion
  unsigned NumWaitsKept = 0;       ///< after Step 6
  unsigned NumSignalsInserted = 0; ///< after naive Step 4 insertion
  unsigned NumSignalsKept = 0;     ///< after Step 6
  unsigned NumDepsTotal = 0;       ///< aliasing pairs (any distance)
  unsigned NumDepsCarried = 0;     ///< loop-carried subset
  /// Pairs ZIV/SIV kept that value-range facts disproved (Step 2
  /// sharpening; each avoided pair is a sequential segment not emitted).
  unsigned NumDepsPrunedByRange = 0;
  unsigned CodeSizeInstrs = 0;     ///< static size of the loop
  unsigned InlinedCalls = 0;

  bool contains(const BasicBlock *BB) const {
    for (const BasicBlock *B : LoopBlocks)
      if (B == BB)
        return true;
    return false;
  }

  bool inPrologue(const BasicBlock *BB) const {
    for (const BasicBlock *B : PrologueBlocks)
      if (B == BB)
        return true;
    return false;
  }

  const SequentialSegment *segmentOf(int64_t SegId) const {
    for (const SequentialSegment &S : Segments)
      if (S.Id == uint64_t(SegId))
        return &S;
    return nullptr;
  }
};

/// Deterministic, pointer-free FNV-1a hash of the loop body: per block its
/// name, per instruction the opcode, immediate, destination, operands
/// (kind + payload) and the names of branch targets / callees. Stable
/// across runs and across module clones (names and register numbering
/// survive cloning; instruction ids and addresses do not participate).
uint64_t computeLoopBodySeal(const ParallelLoopInfo &PLI);

} // namespace helix

#endif // HELIX_HELIX_PARALLELLOOPINFO_H
