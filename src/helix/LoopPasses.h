//===----------------------------------------------------------------------===//
///
/// \file
/// A uniform loop-pass interface over the HELIX transformation steps
/// (Section 2.1). parallelizeLoop() is a LoopPassManager running the
/// standard sequence:
///
///   normalize    Step 1: Figure-3(a) normal form (prologue/body split)
///   dependence   Step 2: loop-carried dependences to satisfy
///   inline       Step 5a: inline calls participating in dependences
///   characterize metadata: IVs, self-starting prologue, dep statistics
///   wait-signal  Step 4: naive Wait/Signal insertion (sequential-segment
///                construction)
///   schedule     Step 5b: segment-shrinking code scheduling
///   signal-opt   Step 6: signal minimization
///   lower        Steps 3+7: iteration starts and boundary communication
///   balance      Step 8: Figure-6 segment spacing for helper threads
///   finalize     publish ParallelLoopInfo, verify
///
/// Every pass runs against a shared LoopPassState and returns, alongside
/// its continue/abort decision, the PreservedAnalyses set describing what
/// it left intact. The manager invalidates exactly the complement for the
/// touched function (closed over the analysis dependency graph), so a pass
/// that rewrote instructions but kept the CFG does not force the next
/// pass — or the next *loop* — to rebuild dominators and loop structure.
/// Passes that must see analyses consistent with pointers they re-derive
/// (normalize and inline refresh the Loop object) invalidate and recompute
/// internally and report all-preserved. Either way no pass ever consumes
/// stale analyses.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_LOOPPASSES_H
#define HELIX_HELIX_LOOPPASSES_H

#include "analysis/AnalysisManager.h"
#include "analysis/DataDependence.h"
#include "helix/HelixOptions.h"
#include "helix/Lowering.h"
#include "helix/Normalize.h"
#include "helix/ParallelLoopInfo.h"
#include "helix/PassTiming.h"
#include "helix/SequentialSegments.h"
#include "helix/SignalOpt.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace helix {

/// The working state threaded through the loop passes. Passes read the
/// artifacts earlier passes produced and append their own.
struct LoopPassState {
  LoopPassState(Function *F, BasicBlock *Header, const HelixOptions &Opts)
      : F(F), Header(Header), Opts(Opts) {}

  Function *F;
  BasicBlock *Header;
  const HelixOptions &Opts;

  NormalizedLoop NL;                 ///< normalize
  Loop *L = nullptr;                 ///< normalize (refreshed by inline;
                                     ///< dead once a pass drops LoopInfo)
  DependenceStats Stats;             ///< dependence
  std::vector<DataDependence> Deps;  ///< dependence (refreshed by inline)
  WaitSignalInsertion WS;            ///< wait-signal
  SignalOptResult SO;                ///< signal-opt
  LoweringResult LR;                 ///< lower
  ParallelLoopInfo PLI;              ///< accumulated result
};

class LoopPass {
public:
  virtual ~LoopPass() = default;

  virtual const char *name() const = 0;

  /// What one pass execution decided and what it left intact.
  struct PassResult {
    enum class Action {
      Continue, ///< proceed to the next pass
      Abort,    ///< loop is not parallelizable; manager returns nullopt
    };
    Action Act = Action::Continue;
    /// Honoured only on Continue. all() declares "no cached analysis can
    /// observe what I did"; anything else marks the function mutated and
    /// the manager drops the complement (dependency-closed).
    PreservedAnalyses Preserved = PreservedAnalyses::all();
  };

  static PassResult abort() {
    return {PassResult::Action::Abort, PreservedAnalyses::all()};
  }
  static PassResult preservingAll() {
    return {PassResult::Action::Continue, PreservedAnalyses::all()};
  }
  static PassResult preserving(PreservedAnalyses PA) {
    return {PassResult::Action::Continue, PA};
  }

  virtual PassResult run(AnalysisManager &AM, LoopPassState &S) = 0;
};

/// Runs a sequence of loop passes over one loop, invalidating after each
/// pass exactly the analyses the pass did not preserve.
class LoopPassManager {
public:
  LoopPassManager &add(std::unique_ptr<LoopPass> P) {
    Passes.push_back(std::move(P));
    return *this;
  }

  std::vector<std::string> passNames() const {
    std::vector<std::string> Names;
    for (const auto &P : Passes)
      Names.push_back(P->name());
    return Names;
  }

  size_t size() const { return Passes.size(); }

  /// Runs every pass in order against the loop with header \p Header of
  /// \p F. \returns the accumulated ParallelLoopInfo, or nullopt when a
  /// pass aborted. When \p Timings is non-null, each pass's wall time is
  /// folded into it (by pass name), so one vector accumulates timing
  /// across every loop a caller transforms — that is what attributes a
  /// slow transform (e.g. a fuzz-found pathological module) to a specific
  /// Step.
  std::optional<ParallelLoopInfo>
  run(AnalysisManager &AM, Function *F, BasicBlock *Header,
      const HelixOptions &Opts,
      std::vector<LoopPassTiming> *Timings = nullptr) const;

private:
  std::vector<std::unique_ptr<LoopPass>> Passes;
};

/// Appends the standard HELIX Step 1-8 pass sequence. Step switches in
/// HelixOptions are honoured by the passes themselves, so one manager
/// serves every configuration.
void addStandardHelixLoopPasses(LoopPassManager &PM);

} // namespace helix

#endif // HELIX_HELIX_LOOPPASSES_H
