//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX Step 4: computing sequential segments. For every data dependence
/// d = (a, b) in D_data this inserts:
///   - Wait(d) immediately before every occurrence of an endpoint of d,
///   - Signal(d) at the earliest points along every path through the
///     iteration at which neither endpoint can execute any more (found by
///     dataflow on "can-reach-endpoint" facts),
///   - Wait(d) immediately before every Signal(d), so the next iteration is
///     unblocked only when no previous iteration can still execute a or b.
/// The result is one Wait/Signal region per dependence per iteration; Step 6
/// (SignalOpt) later removes the redundancy this naive insertion creates.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_SEQUENTIALSEGMENTS_H
#define HELIX_HELIX_SEQUENTIALSEGMENTS_H

#include "helix/Normalize.h"
#include "helix/ParallelLoopInfo.h"

namespace helix {

/// "Can an endpoint of dependence d still execute from this point within
/// the current iteration?" — block-level In/Out bitsets over the loop
/// subgraph with the back edge removed. Reused by Step 6's safety check.
struct DepReachability {
  /// In[block id], Out[block id]; bit d set = some endpoint of dependence d
  /// is reachable from that program point without crossing the back edge.
  std::vector<BitSet> In, Out;
  /// HasEndpoint[block id]: endpoints of d inside the block.
  std::vector<BitSet> HasEndpoint;

  /// CR just after instruction \p Idx of \p BB for dependence \p Dep:
  /// true if an endpoint can still execute later in the iteration.
  bool reachableAfter(const BasicBlock *BB, unsigned Idx, unsigned Dep,
                      const std::vector<DataDependence> &Deps) const;
};

/// Computes endpoint reachability for \p Deps over the normalized loop.
/// \p LoopBlocks may include blocks added after normalization (edge splits).
DepReachability computeDepReachability(
    const std::vector<BasicBlock *> &LoopBlocks, BasicBlock *Header,
    BasicBlock *Latch, const std::vector<DataDependence> &Deps,
    unsigned NumBlockIds);

/// Results of the naive Wait/Signal insertion.
struct WaitSignalInsertion {
  /// Per dependence id: the inserted operations (Imm = dependence id).
  std::vector<std::vector<Instruction *>> WaitsOf;
  std::vector<std::vector<Instruction *>> SignalsOf;
  /// Blocks created by splitting edges for Signal placement; these belong
  /// to the loop.
  std::vector<BasicBlock *> NewBlocks;
  unsigned NumWaits = 0;
  unsigned NumSignals = 0;
};

/// Performs Step 4 on a normalized loop, mutating \p F.
WaitSignalInsertion insertWaitSignals(Function *F, NormalizedLoop &NL,
                                      const std::vector<DataDependence> &Deps);

} // namespace helix

#endif // HELIX_HELIX_SEQUENTIALSEGMENTS_H
