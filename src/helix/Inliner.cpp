#include "helix/Inliner.h"

#include "support/Compiler.h"

#include <map>

using namespace helix;

bool helix::inlineCall(Function *Caller, Instruction *Call) {
  assert(Call->isCall() && "not a call instruction");
  Function *Callee = Call->callee();
  if (Callee == Caller)
    return false; // direct recursion is never inlined

  BasicBlock *CallBB = Call->parent();
  unsigned CallIdx = CallBB->indexOf(Call);

  // Split the caller block: everything after the call moves to Cont.
  BasicBlock *Cont = Caller->createBlock(CallBB->name() + ".cont");
  {
    std::vector<std::unique_ptr<Instruction>> Moved;
    while (CallBB->size() > CallIdx + 1)
      Moved.push_back(CallBB->take(CallBB->instr(CallIdx + 1)));
    for (auto &I : Moved)
      Cont->insertOwned(Cont->size(), std::move(I));
  }

  // Map callee registers to fresh caller registers.
  std::map<unsigned, unsigned> RegMap;
  auto MapReg = [&](unsigned R) {
    auto It = RegMap.find(R);
    if (It == RegMap.end())
      It = RegMap.emplace(R, Caller->allocReg()).first;
    return It->second;
  };

  // Clone callee blocks.
  std::map<BasicBlock *, BasicBlock *> BlockMap;
  for (BasicBlock *BB : *Callee)
    BlockMap[BB] = Caller->createBlock(Callee->name() + "." + BB->name());

  for (BasicBlock *BB : *Callee) {
    BasicBlock *NewBB = BlockMap[BB];
    for (Instruction *I : *BB) {
      if (I->opcode() == Opcode::Ret) {
        // ret V  =>  [dest = mov V;] br Cont
        if (Call->hasDest() && I->numOperands() == 1) {
          Instruction *Mov = NewBB->append(Opcode::Mov);
          Operand O = I->operand(0);
          if (O.isReg())
            O.setReg(MapReg(O.regId()));
          Mov->addOperand(O);
          Mov->setDest(Call->dest());
        } else if (Call->hasDest()) {
          // Callee returns no value but the call expects one: define 0 so
          // the register is never read uninitialized.
          Instruction *Mov = NewBB->append(Opcode::Mov);
          Mov->addOperand(Operand::immInt(0));
          Mov->setDest(Call->dest());
        }
        Instruction *Br = NewBB->append(Opcode::Br);
        Br->setTarget1(Cont);
        continue;
      }
      Instruction *NI = NewBB->append(I->opcode());
      NI->setImm(I->imm());
      NI->setCallee(I->callee());
      if (I->hasDest())
        NI->setDest(MapReg(I->dest()));
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
        Operand O = I->operand(K);
        if (O.isReg())
          O.setReg(MapReg(O.regId()));
        NI->addOperand(O);
      }
      if (I->target1())
        NI->setTarget1(BlockMap[I->target1()]);
      if (I->target2())
        NI->setTarget2(BlockMap[I->target2()]);
    }
  }

  // Replace the call with argument copies and a branch to the callee entry.
  BasicBlock *CalleeEntry = BlockMap[Callee->entry()];
  std::vector<Operand> Args;
  for (unsigned K = 0, E = Call->numOperands(); K != E; ++K)
    Args.push_back(Call->operand(K));
  CallBB->erase(Call);
  for (unsigned K = 0, E = unsigned(Args.size()); K != E; ++K) {
    Instruction *Mov = CallBB->append(Opcode::Mov);
    Mov->addOperand(Args[K]);
    Mov->setDest(MapReg(K)); // parameter K occupies callee register K
  }
  Instruction *Br = CallBB->append(Opcode::Br);
  Br->setTarget1(CalleeEntry);
  return true;
}
