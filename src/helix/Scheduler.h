//===----------------------------------------------------------------------===//
///
/// \file
/// Intra-block code scheduling for HELIX.
///
/// Step 5 ("Minimizing sequential segments"): inside each loop block,
/// instructions that are not needed by a sequential segment are moved below
/// its Signal, and segment code is percolated upwards, shrinking the
/// region executed in iteration order (Figure 5).
///
/// Step 8 ("balancing", Figure 6): parallel code is redistributed between
/// consecutive sequential segments so each signal has at least
/// delta = unprefetched - prefetched latency of parallel cycles in front of
/// its Wait, giving the helper thread time to prefetch every signal
/// (Figure 7).
///
/// Both passes reorder instructions only within a basic block and only in
/// ways permitted by a conservative local dependence DAG, so they are
/// semantics-preserving by construction.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_SCHEDULER_H
#define HELIX_HELIX_SCHEDULER_H

#include "helix/Normalize.h"
#include "helix/ParallelLoopInfo.h"

namespace helix {

/// Step 5: percolate sequential segments upward and sink independent code
/// below their Signals, in every loop block. \p Deps provides the segment
/// endpoint instructions.
void compactSegments(const NormalizedLoop &NL,
                     const std::vector<DataDependence> &Deps);

/// Step 8 (Figure 6): space the sequential segments of each loop block so
/// every inter-segment gap reaches \p DeltaCycles of parallel code where
/// possible.
void balanceSegmentSpacing(const NormalizedLoop &NL,
                           const std::vector<DataDependence> &Deps,
                           unsigned DeltaCycles);

} // namespace helix

#endif // HELIX_HELIX_SCHEDULER_H
