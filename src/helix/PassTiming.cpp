#include "helix/PassTiming.h"

using namespace helix;

void helix::accumulatePassTiming(std::vector<LoopPassTiming> &Timings,
                                 const std::string &Name, double Millis) {
  for (LoopPassTiming &T : Timings)
    if (T.Pass == Name) {
      T.Millis += Millis;
      ++T.Invocations;
      return;
    }
  Timings.push_back({Name, Millis, 1});
}

void helix::mergePassTimings(std::vector<LoopPassTiming> &Into,
                             const std::vector<LoopPassTiming> &From) {
  for (const LoopPassTiming &T : From) {
    LoopPassTiming *Hit = nullptr;
    for (LoopPassTiming &I : Into)
      if (I.Pass == T.Pass) {
        Hit = &I;
        break;
      }
    if (Hit) {
      Hit->Millis += T.Millis;
      Hit->Invocations += T.Invocations;
    } else {
      Into.push_back(T);
    }
  }
}
