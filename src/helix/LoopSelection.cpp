#include "helix/LoopSelection.h"

#include "support/Compiler.h"

#include <algorithm>
#include <set>

using namespace helix;

SelectionResult helix::selectLoops(
    const LoopNestGraph &LNG, const ProgramProfile &Profile,
    const std::vector<std::optional<LoopModelInputs>> &Inputs,
    const ModelParams &Params) {
  unsigned N = LNG.numNodes();
  SelectionResult R;
  R.T.assign(N, 0.0);
  R.MaxT.assign(N, 0.0);

  // Dynamic children / parents from the profiled edge set.
  std::vector<std::vector<unsigned>> Children(N);
  std::vector<unsigned> NumDynParents(N, 0);
  for (auto &[From, To] : Profile.DynamicEdges) {
    Children[From].push_back(To);
    ++NumDynParents[To];
  }

  // Attributes.
  for (unsigned I = 0; I != N; ++I)
    if (Inputs[I])
      R.T[I] = modelLoopSavedCycles(*Inputs[I], Params);
  R.MaxT = R.T;

  // Phase 1: propagate maxT inner -> outer until a fixed point (the graph
  // can contain cycles through recursion; iteration count is bounded).
  for (unsigned Round = 0; Round != N + 2; ++Round) {
    bool Changed = false;
    for (unsigned I = 0; I != N; ++I) {
      double Sum = 0.0;
      for (unsigned C : Children[I])
        Sum += R.MaxT[C];
      double New = std::max(R.T[I], Sum);
      if (New > R.MaxT[I] + 1e-9) {
        R.MaxT[I] = New;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Phase 2: top-down search. Dynamic roots are executed nodes without
  // dynamic parents.
  std::set<unsigned> Visited;
  std::vector<unsigned> Work;
  for (unsigned I = 0; I != N; ++I)
    if (Profile.executed(I) && NumDynParents[I] == 0)
      Work.push_back(I);

  std::set<unsigned> ChosenSet;
  while (!Work.empty()) {
    unsigned Node = Work.back();
    Work.pop_back();
    if (!Visited.insert(Node).second)
      continue;
    if (R.MaxT[Node] <= 0.0)
      continue; // nothing to gain below here
    if (R.T[Node] + 1e-9 >= R.MaxT[Node]) {
      // No combination of subloops beats this loop: select it and stop
      // descending on this path.
      ChosenSet.insert(Node);
      continue;
    }
    for (unsigned C : Children[Node])
      Work.push_back(C);
  }

  R.Chosen.assign(ChosenSet.begin(), ChosenSet.end());
  std::sort(R.Chosen.begin(), R.Chosen.end());
  return R;
}
