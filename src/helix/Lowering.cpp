#include "helix/Lowering.h"

#include "ir/CFG.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

LoweringResult helix::lowerParallelLoop(Function *F, NormalizedLoop &NL,
                                        const std::vector<DataDependence> &Deps,
                                        const SignalOptResult &Segments,
                                        const std::vector<MaterializedIV> &IVs) {
  (void)IVs;
  LoweringResult R;
  Module *M = F->parent();

  // ----- Step 3: IterStart at the beginning of the body. ----------------
  // A body block whose intra-loop predecessors include a prologue block is
  // a body entry; the marker is idempotent per iteration, so bodies with
  // multiple entry blocks are handled too.
  {
    CFGInfo CFG(F);
    for (BasicBlock *BB : NL.Body) {
      bool IsEntry = false;
      for (BasicBlock *Pred : CFG.predecessors(BB))
        if (NL.contains(Pred) && NL.inPrologue(Pred))
          IsEntry = true;
      if (!IsEntry)
        continue;
      Instruction *Marker = BB->insertAt(0, Opcode::IterStart);
      R.IterStarts.push_back(Marker);
    }
  }

  // ----- Step 7: boundary live variables. --------------------------------
  // One slot per register carried across iterations by a register
  // dependence. Memory dependences need no forwarding (memory is shared).
  std::vector<unsigned> BoundaryRegs;
  for (const DataDependence &D : Deps) {
    if (D.ViaMemory)
      continue;
    if (std::find(BoundaryRegs.begin(), BoundaryRegs.end(), D.Reg) ==
        BoundaryRegs.end())
      BoundaryRegs.push_back(D.Reg);
  }

  if (!BoundaryRegs.empty()) {
    std::string Name = F->name() + "." + NL.Header->name() + ".storage";
    // Make the name unique if the loop is transformed more than once.
    while (M->findGlobal(Name) != ~0u)
      Name += "x";
    R.StorageGlobal = M->createGlobal(Name, BoundaryRegs.size());
    for (unsigned K = 0; K != BoundaryRegs.size(); ++K)
      R.SlotOfReg[BoundaryRegs[K]] = K;
  }

  auto SlotAddr = [&](BasicBlock *BB, unsigned InsertIdx,
                      unsigned Slot) -> unsigned {
    Instruction *Addr = BB->insertAt(InsertIdx, Opcode::Add);
    Addr->addOperand(Operand::global(R.StorageGlobal));
    Addr->addOperand(Operand::immInt(Slot));
    Addr->setDest(F->allocReg());
    return Addr->dest();
  };

  auto InsertStoreAfter = [&](Instruction *Def, unsigned Reg, unsigned Slot) {
    BasicBlock *BB = Def->parent();
    unsigned Idx = BB->indexOf(Def) + 1;
    unsigned AddrReg = SlotAddr(BB, Idx, Slot);
    Instruction *St = BB->insertAt(Idx + 1, Opcode::Store);
    St->addOperand(Operand::reg(Reg));
    St->addOperand(Operand::reg(AddrReg));
  };

  auto InsertLoadAt = [&](BasicBlock *BB, unsigned Idx, unsigned Reg,
                          unsigned Slot) {
    unsigned AddrReg = SlotAddr(BB, Idx, Slot);
    Instruction *Ld = BB->insertAt(Idx + 1, Opcode::Load);
    Ld->addOperand(Operand::reg(AddrReg));
    Ld->setDest(Reg);
  };

  // Stores after every in-loop definition of a boundary register.
  for (const DataDependence &D : Deps) {
    if (D.ViaMemory)
      continue;
    unsigned Slot = R.SlotOfReg.at(D.Reg);
    for (Instruction *Def : D.Srcs)
      InsertStoreAfter(Def, D.Reg, Slot);
  }

  // Loads immediately before every consuming use. This is what makes the
  // actual data transfer *conditional* (Figure 2): the synchronization
  // always runs, but the value only moves between cores when the consumer
  // is reached — and the Wait inserted in front of every endpoint
  // guarantees the producer's store is visible by then. A use preceded by
  // a local redefinition is also safe: the store after that definition
  // keeps the slot equal to the register.
  for (const DataDependence &D : Deps) {
    if (D.ViaMemory)
      continue;
    unsigned Slot = R.SlotOfReg.at(D.Reg);
    for (Instruction *Use : D.Dsts) {
      BasicBlock *BB = Use->parent();
      InsertLoadAt(BB, BB->indexOf(Use), D.Reg, Slot);
    }
    auto SegIt = Segments.SegmentOfDep.find(D.Id);
    if (SegIt != Segments.SegmentOfDep.end())
      R.SlotsReadOfSegment[Segments.Segments[SegIt->second].Id].push_back(
          Slot);
  }

  // ----- Preheader: initialize slots with the pre-loop register values. --
  if (!BoundaryRegs.empty() || true) {
    CFGInfo CFG(F);
    // Collect outside-loop predecessors of the header.
    std::vector<BasicBlock *> OutsidePreds;
    for (BasicBlock *Pred : CFG.predecessors(NL.Header))
      if (!NL.contains(Pred))
        OutsidePreds.push_back(Pred);
    BasicBlock *Pre = nullptr;
    if (OutsidePreds.size() == 1 &&
        OutsidePreds.front()->successors().size() == 1) {
      Pre = OutsidePreds.front();
    } else {
      Pre = F->createBlock(NL.Header->name() + ".pre");
      Instruction *Br = Pre->append(Opcode::Br);
      Br->setTarget1(NL.Header);
      for (BasicBlock *Pred : OutsidePreds)
        Pred->terminator()->replaceTarget(NL.Header, Pre);
    }
    R.Preheader = Pre;
    unsigned InsertIdx = Pre->indexOf(Pre->terminator());
    for (unsigned Reg : BoundaryRegs) {
      unsigned Slot = R.SlotOfReg.at(Reg);
      unsigned AddrReg = SlotAddr(Pre, InsertIdx, Slot);
      Instruction *St = Pre->insertAt(InsertIdx + 1, Opcode::Store);
      St->addOperand(Operand::reg(Reg));
      St->addOperand(Operand::reg(AddrReg));
      InsertIdx += 2;
    }
  }

  // ----- Exit edges: reload final boundary values for the code after the
  // ----- loop (the main thread continues from the storage area). --------
  if (!BoundaryRegs.empty()) {
    std::vector<std::pair<BasicBlock *, BasicBlock *>> ExitEdges;
    for (BasicBlock *BB : NL.LoopBlocks)
      for (BasicBlock *Succ : BB->successors())
        if (!NL.contains(Succ))
          ExitEdges.push_back({BB, Succ});
    for (auto &[From, To] : ExitEdges) {
      BasicBlock *Mid = splitEdge(F, From, To);
      unsigned Idx = 0;
      for (unsigned Reg : BoundaryRegs) {
        InsertLoadAt(Mid, Idx, Reg, R.SlotOfReg.at(Reg));
        Idx += 2;
      }
    }
  }

  return R;
}
