#include "helix/Normalize.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

namespace {

Loop *findLoopWithHeader(LoopInfo &LI, BasicBlock *Header) {
  for (unsigned I = 0, E = LI.numLoops(); I != E; ++I)
    if (LI.loop(I)->header() == Header)
      return LI.loop(I);
  return nullptr;
}

} // namespace

NormalizedLoop helix::normalizeLoop(AnalysisManager &AM, Function *F,
                                    BasicBlock *Header) {
  NormalizedLoop N;

  Loop *L = findLoopWithHeader(AM.get<LoopInfo>(F), Header);
  if (!L)
    return N;

  // Merge multiple latches into a unique one so the loop has exactly one
  // back edge (the Figure-3(a) shape).
  if (L->latches().size() > 1) {
    BasicBlock *Merged = F->createBlock(Header->name() + ".latch");
    Instruction *Br = Merged->append(Opcode::Br);
    Br->setTarget1(Header);
    for (BasicBlock *Latch : L->latches())
      Latch->terminator()->replaceTarget(Header, Merged);
    AM.invalidate(F,
                  PreservedAnalyses::none().preserveModuleAnalyses());
    L = findLoopWithHeader(AM.get<LoopInfo>(F), Header);
    assert(L && L->latches().size() == 1 && "latch merge failed");
  }

  N.Header = Header;
  N.Latch = L->latches().front();
  N.LoopBlocks = L->blocks();

  // Prologue = blocks that can reach a loop exit without traversing the
  // back edge; equivalently, not post-dominated by the back edge. Computed
  // by reverse reachability from the exiting blocks inside the loop
  // subgraph with the back edge removed.
  std::vector<bool> CanExit(F->numBlockIds(), false);
  std::vector<BasicBlock *> Work;
  for (auto &[From, To] : L->exitEdges()) {
    (void)To;
    if (!CanExit[From->id()]) {
      CanExit[From->id()] = true;
      Work.push_back(From);
    }
  }
  const CFGInfo &CFG = AM.get<CFGInfo>(F);
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *Pred : CFG.predecessors(BB)) {
      if (!L->contains(Pred) || CanExit[Pred->id()])
        continue;
      // Skip the (unique) back edge Latch -> Header.
      if (Pred == N.Latch && BB == Header)
        continue;
      CanExit[Pred->id()] = true;
      Work.push_back(Pred);
    }
  }

  for (BasicBlock *BB : N.LoopBlocks) {
    if (CanExit[BB->id()])
      N.Prologue.push_back(BB);
    else
      N.Body.push_back(BB);
  }

  // An endless loop (no exits) has an empty prologue; a bottom-test loop
  // degenerates to an empty body. Both are valid normal forms; the latter
  // simply offers no parallel code and is rejected by loop selection.
  N.Valid = true;
  return N;
}
