//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX Step 1: loop normalization. Puts a loop into the Figure-3(a)
/// normal form: a unique latch (single back edge), a prologue (the
/// instructions *not* post-dominated by the back edge, i.e. the blocks that
/// can reach a loop exit without traversing the back edge) and a body (the
/// rest). All loop exits originate in the prologue by construction.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_NORMALIZE_H
#define HELIX_HELIX_NORMALIZE_H

#include "analysis/AnalysisManager.h"

#include <vector>

namespace helix {

/// Result of normalizing one loop. Block pointers remain valid for the
/// lifetime of the function.
struct NormalizedLoop {
  bool Valid = false;
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;
  std::vector<BasicBlock *> LoopBlocks; ///< in RPO
  std::vector<BasicBlock *> Prologue;   ///< subset of LoopBlocks
  std::vector<BasicBlock *> Body;       ///< LoopBlocks minus Prologue

  bool contains(const BasicBlock *BB) const {
    for (const BasicBlock *B : LoopBlocks)
      if (B == BB)
        return true;
    return false;
  }
  bool inPrologue(const BasicBlock *BB) const {
    for (const BasicBlock *B : Prologue)
      if (B == BB)
        return true;
    return false;
  }
};

/// Normalizes the loop with header \p Header in \p F.
///
/// Merges multiple latches into one (adding a block), then classifies
/// blocks into prologue and body. Invalidates and recomputes the cached
/// analyses of \p F when the CFG changes (the module-wide analyses are
/// preserved: merging latches adds a block and a branch, nothing a call
/// graph or points-to result can observe).
NormalizedLoop normalizeLoop(AnalysisManager &AM, Function *F,
                             BasicBlock *Header);

} // namespace helix

#endif // HELIX_HELIX_NORMALIZE_H
