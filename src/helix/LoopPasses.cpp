#include "helix/LoopPasses.h"

#include "helix/Inliner.h"
#include "helix/Scheduler.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"

#include <chrono>
#include <set>

using namespace helix;

//===----------------------------------------------------------------------===//
// Shared helpers.
//===----------------------------------------------------------------------===//

namespace {

/// Recomputes the dependence set of the (already normalized) loop, and
/// filters out dependences that need no synchronization because every
/// endpoint sits in the prologue of an earlier-or-equal iteration: the
/// prologues themselves execute sequentially, ordered by the IterStart
/// control signal, so only data forwarding (Step 7) is needed for them.
std::vector<DataDependence> computeDeps(ModuleAnalyses &AM, Function *F,
                                        Loop *L, DependenceStats &StatsOut) {
  FunctionAnalyses &FA = AM.on(F);
  LoopVarAnalysis Vars(F, L, FA.DT);
  LoopDependenceAnalysis DDA(F, L, FA.CFG, FA.DT, FA.LV, Vars,
                             AM.pointsTo(), AM.memEffects());
  StatsOut = DDA.stats();
  return DDA.toSynchronize();
}

Loop *findLoop(LoopInfo &LI, BasicBlock *Header) {
  for (unsigned I = 0, E = LI.numLoops(); I != E; ++I)
    if (LI.loop(I)->header() == Header)
      return LI.loop(I);
  return nullptr;
}

/// Induction variables the engines materialize per iteration.
std::vector<MaterializedIV> collectIVs(ModuleAnalyses &AM, Function *F,
                                       Loop *L) {
  LoopVarAnalysis Vars(F, L, AM.on(F).DT);
  std::vector<MaterializedIV> IVs;
  for (const InductionVar &IV : Vars.inductionVars())
    IVs.push_back({IV.Reg, IV.Stride});
  return IVs;
}

/// Step 3's counted-loop test: true when no dependence endpoint sits in
/// the prologue and every register the prologue reads is invariant, an
/// induction variable, or defined earlier in the prologue itself. Such a
/// prologue is locally computable from the iteration number, so iterations
/// start without inter-thread control signals.
bool prologueIsSelfStarting(ModuleAnalyses &AM, Function *F, Loop *L,
                            const NormalizedLoop &NL,
                            const std::vector<DataDependence> &Deps) {
  for (const DataDependence &D : Deps)
    for (Instruction *E : D.allEndpoints())
      if (NL.inPrologue(E->parent()))
        return false;

  LoopVarAnalysis Vars(F, L, AM.on(F).DT);
  std::set<unsigned> DefinedInPrologue;
  for (BasicBlock *BB : NL.Prologue)
    for (Instruction *I : *BB) {
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
        const Operand &O = I->operand(K);
        if (!O.isReg())
          continue;
        unsigned R = O.regId();
        if (Vars.isInvariant(R) || Vars.inductionVar(R) ||
            DefinedInPrologue.count(R))
          continue;
        return false;
      }
      if (I->hasDest())
        DefinedInPrologue.insert(I->dest());
      // Calls may read loop-varying memory; be conservative.
      if (I->isCall() || I->mayReadMemory())
        return false;
    }
  return true;
}

//===----------------------------------------------------------------------===//
// The standard passes.
//===----------------------------------------------------------------------===//

/// Step 1: normalization. Aborts when the header no longer heads a loop.
class NormalizePass : public LoopPass {
public:
  const char *name() const override { return "normalize"; }
  // Mutates the CFG (may add a latch) but performs its own invalidation
  // inside normalizeLoop and re-derives S.L from the fresh analyses; a
  // manager-level invalidation here would destroy the LoopInfo that owns
  // S.L while later passes still hold it.
  Result run(ModuleAnalyses &AM, LoopPassState &S) override {
    S.NL = normalizeLoop(AM, S.F, S.Header);
    if (!S.NL.Valid)
      return Result::Abort;
    S.PLI.F = S.F;
    S.PLI.Header = S.NL.Header;
    S.L = findLoop(AM.on(S.F).LI, S.Header);
    assert(S.L && "normalized loop vanished");
    return Result::Continue;
  }
};

/// Step 2: the dependences to satisfy.
class DependencePass : public LoopPass {
public:
  const char *name() const override { return "dependence"; }
  Result run(ModuleAnalyses &AM, LoopPassState &S) override {
    S.Deps = computeDeps(AM, S.F, S.L, S.Stats);
    return Result::Continue;
  }
};

/// Step 5a: method inlining. Calls that are endpoints of a dependence are
/// inlined (unless inside a subloop, which would prevent shrinking the
/// segment), then dependences are recomputed. Bounded to avoid code
/// blow-up, per the paper's conservative heuristic.
class InlinePass : public LoopPass {
public:
  const char *name() const override { return "inline"; }
  // Like normalize: invalidates and re-derives internally (see below), so
  // the analyses, S.L and S.Deps leave this pass mutually consistent.
  Result run(ModuleAnalyses &AM, LoopPassState &S) override {
    if (!S.Opts.EnableInlining)
      return Result::Continue;
    for (unsigned Round = 0; Round != 4; ++Round) {
      Instruction *ToInline = nullptr;
      for (const DataDependence &D : S.Deps) {
        for (Instruction *E : D.allEndpoints()) {
          if (!E->isCall() || E->callee() == S.F)
            continue;
          // Skip calls inside subloops of L.
          bool InSubLoop = false;
          for (Loop *Sub : S.L->subLoops())
            InSubLoop |= Sub->contains(E->parent());
          if (InSubLoop)
            continue;
          if (AM.callGraph().isRecursive(E->callee()))
            continue;
          ToInline = E;
          break;
        }
        if (ToInline)
          break;
      }
      if (!ToInline)
        break;
      if (!inlineCall(S.F, ToInline))
        break;
      ++S.PLI.InlinedCalls;
      // Inlining splinters the CFG of S.F and can grow the call graph's
      // edge set: invalidate everything, then rebuild the normal form and
      // the dependence set from scratch.
      AM.invalidateAll();
      S.NL = normalizeLoop(AM, S.F, S.Header);
      assert(S.NL.Valid && "inlining destroyed the loop");
      S.L = findLoop(AM.on(S.F).LI, S.Header);
      S.Deps = computeDeps(AM, S.F, S.L, S.Stats);
    }
    return Result::Continue;
  }
};

/// Metadata between analysis and transformation: dependence statistics,
/// induction variables (collected before lowering adds new code), and the
/// Step-3 counted-loop test.
class CharacterizePass : public LoopPass {
public:
  const char *name() const override { return "characterize"; }
  Result run(ModuleAnalyses &AM, LoopPassState &S) override {
    S.PLI.NumDepsTotal = S.Stats.NumAliasPairs + S.Stats.NumRegCarried +
                         S.Stats.NumExcludedFalse +
                         S.Stats.NumExcludedInduction;
    S.PLI.NumDepsCarried = unsigned(S.Deps.size());
    S.PLI.Deps = S.Deps;
    S.PLI.IVs = collectIVs(AM, S.F, S.L);
    S.PLI.SelfStartingPrologue =
        prologueIsSelfStarting(AM, S.F, S.L, S.NL, S.Deps);
    return Result::Continue;
  }
};

/// Step 4: naive Wait/Signal insertion — sequential-segment construction.
class WaitSignalPass : public LoopPass {
public:
  const char *name() const override { return "wait-signal"; }
  bool modifiesFunction() const override { return true; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    S.WS = insertWaitSignals(S.F, S.NL, S.Deps);
    S.PLI.NumWaitsInserted = S.WS.NumWaits;
    S.PLI.NumSignalsInserted = S.WS.NumSignals;
    return Result::Continue;
  }
};

/// Step 5b: shrink sequential segments by scheduling.
class SchedulePass : public LoopPass {
public:
  const char *name() const override { return "schedule"; }
  bool modifiesFunction() const override { return true; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    if (S.Opts.EnableScheduling)
      compactSegments(S.NL, S.Deps);
    return Result::Continue;
  }
};

/// Step 6: minimize signals. Runs even when disabled — it also computes
/// the final segment list the later passes and the engines consume.
class SignalOptPass : public LoopPass {
public:
  const char *name() const override { return "signal-opt"; }
  bool modifiesFunction() const override { return true; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    S.SO = optimizeSignals(S.F, S.NL, S.Deps, S.WS, S.Opts.EnableSignalOpt);
    S.PLI.NumWaitsKept = S.SO.NumWaitsKept;
    S.PLI.NumSignalsKept = S.SO.NumSignalsKept;
    return Result::Continue;
  }
};

/// Steps 3 and 7: iteration starts and boundary-variable communication.
class LowerPass : public LoopPass {
public:
  const char *name() const override { return "lower"; }
  bool modifiesFunction() const override { return true; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    S.LR = lowerParallelLoop(S.F, S.NL, S.Deps, S.SO, S.PLI.IVs);
    S.PLI.IterStarts = S.LR.IterStarts;
    S.PLI.StorageGlobal = S.LR.StorageGlobal;
    S.PLI.SlotOfReg = S.LR.SlotOfReg;
    return Result::Continue;
  }
};

/// Step 8: space segments so the helper thread can prefetch signals.
class BalancePass : public LoopPass {
public:
  const char *name() const override { return "balance"; }
  bool modifiesFunction() const override { return true; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    if (S.Opts.EnableHelperThreads && S.Opts.EnableBalancing) {
      unsigned Delta = unsigned(S.Opts.Machine.UnprefetchedSignalCycles -
                                S.Opts.Machine.PrefetchedSignalCycles);
      balanceSegmentSpacing(S.NL, S.Deps, Delta);
    }
    return Result::Continue;
  }
};

/// Publishes the remaining ParallelLoopInfo metadata and verifies the
/// transformed function.
class FinalizePass : public LoopPass {
public:
  const char *name() const override { return "finalize"; }
  Result run(ModuleAnalyses &, LoopPassState &S) override {
    S.PLI.Latch = S.NL.Latch;
    S.PLI.LoopBlocks = S.NL.LoopBlocks;
    S.PLI.PrologueBlocks = S.NL.Prologue;
    S.PLI.BodyBlocks = S.NL.Body;
    S.PLI.Segments = S.SO.Segments;
    for (auto &[SegId, Slots] : S.LR.SlotsReadOfSegment)
      S.PLI.Segments[SegId].SlotsRead = Slots;
    for (BasicBlock *BB : S.NL.LoopBlocks)
      S.PLI.CodeSizeInstrs += BB->size();
    // The verifier always runs. Malformed IR is a compiler bug: debug
    // builds stop on it immediately (assert); release builds degrade
    // gracefully by aborting the pass sequence — the loop is dropped, and
    // the mutated code stays sequentially correct since sync ops are
    // no-ops in sequential execution.
    if (!verifyFunction(*S.F).empty()) {
      assert(false && "transformed function malformed");
      return Result::Abort;
    }
    return Result::Continue;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Manager.
//===----------------------------------------------------------------------===//

std::optional<ParallelLoopInfo>
LoopPassManager::run(ModuleAnalyses &AM, Function *F, BasicBlock *Header,
                     const HelixOptions &Opts,
                     std::vector<LoopPassTiming> *Timings) const {
  LoopPassState S(F, Header, Opts);
  bool MutatedSinceStart = false;
  for (const auto &P : Passes) {
    auto Start = std::chrono::steady_clock::now();
    LoopPass::Result Res = P->run(AM, S);
    if (Timings)
      accumulatePassTiming(
          *Timings, P->name(),
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - Start)
              .count());
    if (Res == LoopPass::Result::Abort) {
      // An abort after a mutating pass (e.g. the finalize verifier gate in
      // release builds) leaves the module changed; module-level analyses
      // (points-to, mem-effects) must not survive it, or the next loop
      // transformed with this ModuleAnalyses would consume stale facts. A
      // pre-mutation abort (normalize: header heads no loop) keeps the
      // caches, which self-invalidating passes left coherent.
      if (MutatedSinceStart)
        AM.invalidateAll();
      return std::nullopt;
    }
    // Explicit invalidation discipline: a pass that touched the function
    // leaves no stale analyses behind. (NormalizedLoop block lists stay
    // valid — blocks are never deleted — but dominator/liveness/loop info
    // must be recomputed on next use.)
    if (P->modifiesFunction()) {
      AM.invalidate(F);
      MutatedSinceStart = true;
    }
  }
  // The transformation is module-visible (new globals, call-graph changes
  // from inlining): drop module-level analyses too.
  AM.invalidateAll();
  return std::move(S.PLI);
}

void helix::addStandardHelixLoopPasses(LoopPassManager &PM) {
  PM.add(std::make_unique<NormalizePass>())
      .add(std::make_unique<DependencePass>())
      .add(std::make_unique<InlinePass>())
      .add(std::make_unique<CharacterizePass>())
      .add(std::make_unique<WaitSignalPass>())
      .add(std::make_unique<SchedulePass>())
      .add(std::make_unique<SignalOptPass>())
      .add(std::make_unique<LowerPass>())
      .add(std::make_unique<BalancePass>())
      .add(std::make_unique<FinalizePass>());
}
