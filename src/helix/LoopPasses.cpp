#include "helix/LoopPasses.h"

#include "helix/Inliner.h"
#include "helix/Scheduler.h"
#include "ir/Verifier.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <chrono>
#include <set>

using namespace helix;

//===----------------------------------------------------------------------===//
// Shared helpers.
//===----------------------------------------------------------------------===//

namespace {

/// Recomputes the dependence set of the (already normalized) loop, and
/// filters out dependences that need no synchronization because every
/// endpoint sits in the prologue of an earlier-or-equal iteration: the
/// prologues themselves execute sequentially, ordered by the IterStart
/// control signal, so only data forwarding (Step 7) is needed for them.
std::vector<DataDependence> computeDeps(AnalysisManager &AM, Function *F,
                                        Loop *L, DependenceStats &StatsOut,
                                        bool UseRanges) {
  const CFGInfo &CFG = AM.get<CFGInfo>(F);
  const DominatorTree &DT = AM.get<DominatorTree>(F);
  const Liveness &LV = AM.get<Liveness>(F);
  const ValueRangeAnalysis *VR =
      UseRanges ? &AM.get<ValueRangeAnalysis>(F) : nullptr;
  LoopVarAnalysis Vars(F, L, DT);
  LoopDependenceAnalysis DDA(F, L, CFG, DT, LV, Vars,
                             AM.get<PointsToAnalysis>(),
                             AM.get<MemEffects>(), VR);
  StatsOut = DDA.stats();
  return DDA.toSynchronize();
}

Loop *findLoop(LoopInfo &LI, BasicBlock *Header) {
  for (unsigned I = 0, E = LI.numLoops(); I != E; ++I)
    if (LI.loop(I)->header() == Header)
      return LI.loop(I);
  return nullptr;
}

/// Induction variables the engines materialize per iteration.
std::vector<MaterializedIV> collectIVs(AnalysisManager &AM, Function *F,
                                       Loop *L) {
  LoopVarAnalysis Vars(F, L, AM.get<DominatorTree>(F));
  std::vector<MaterializedIV> IVs;
  for (const InductionVar &IV : Vars.inductionVars())
    IVs.push_back({IV.Reg, IV.Stride});
  return IVs;
}

/// Step 3's counted-loop test: true when no dependence endpoint sits in
/// the prologue and every register the prologue reads is invariant, an
/// induction variable, or defined earlier in the prologue itself. Such a
/// prologue is locally computable from the iteration number, so iterations
/// start without inter-thread control signals.
bool prologueIsSelfStarting(AnalysisManager &AM, Function *F, Loop *L,
                            const NormalizedLoop &NL,
                            const std::vector<DataDependence> &Deps) {
  for (const DataDependence &D : Deps)
    for (Instruction *E : D.allEndpoints())
      if (NL.inPrologue(E->parent()))
        return false;

  LoopVarAnalysis Vars(F, L, AM.get<DominatorTree>(F));
  std::set<unsigned> DefinedInPrologue;
  for (BasicBlock *BB : NL.Prologue)
    for (Instruction *I : *BB) {
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K) {
        const Operand &O = I->operand(K);
        if (!O.isReg())
          continue;
        unsigned R = O.regId();
        if (Vars.isInvariant(R) || Vars.inductionVar(R) ||
            DefinedInPrologue.count(R))
          continue;
        return false;
      }
      if (I->hasDest())
        DefinedInPrologue.insert(I->dest());
      // Calls may read loop-varying memory; be conservative.
      if (I->isCall() || I->mayReadMemory())
        return false;
    }
  return true;
}

//===----------------------------------------------------------------------===//
// The standard passes.
//===----------------------------------------------------------------------===//

/// Step 1: normalization. Aborts when the header no longer heads a loop.
class NormalizePass : public LoopPass {
public:
  const char *name() const override { return "normalize"; }
  // Mutates the CFG (may add a latch) but performs its own invalidation
  // inside normalizeLoop and re-derives S.L from the fresh analyses; it
  // must report all-preserved — a manager-level invalidation here would
  // destroy the LoopInfo that owns S.L while later passes still hold it.
  PassResult run(AnalysisManager &AM, LoopPassState &S) override {
    S.NL = normalizeLoop(AM, S.F, S.Header);
    if (!S.NL.Valid)
      return abort();
    S.PLI.F = S.F;
    S.PLI.Header = S.NL.Header;
    S.L = findLoop(AM.get<LoopInfo>(S.F), S.Header);
    assert(S.L && "normalized loop vanished");
    return preservingAll();
  }
};

/// Step 2: the dependences to satisfy.
class DependencePass : public LoopPass {
public:
  const char *name() const override { return "dependence"; }
  PassResult run(AnalysisManager &AM, LoopPassState &S) override {
    S.Deps = computeDeps(AM, S.F, S.L, S.Stats, S.Opts.EnableRangeRefinement);
    return preservingAll();
  }
};

/// Step 5a: method inlining. Calls that are endpoints of a dependence are
/// inlined (unless inside a subloop, which would prevent shrinking the
/// segment), then dependences are recomputed. Bounded to avoid code
/// blow-up, per the paper's conservative heuristic.
class InlinePass : public LoopPass {
public:
  const char *name() const override { return "inline"; }
  // Like normalize: invalidates and re-derives internally (see below), so
  // the analyses, S.L and S.Deps leave this pass mutually consistent.
  PassResult run(AnalysisManager &AM, LoopPassState &S) override {
    if (!S.Opts.EnableInlining)
      return preservingAll();
    for (unsigned Round = 0; Round != 4; ++Round) {
      Instruction *ToInline = nullptr;
      for (const DataDependence &D : S.Deps) {
        for (Instruction *E : D.allEndpoints()) {
          if (!E->isCall() || E->callee() == S.F)
            continue;
          // Skip calls inside subloops of L.
          bool InSubLoop = false;
          for (Loop *Sub : S.L->subLoops())
            InSubLoop |= Sub->contains(E->parent());
          if (InSubLoop)
            continue;
          if (AM.get<CallGraph>().isRecursive(E->callee()))
            continue;
          ToInline = E;
          break;
        }
        if (ToInline)
          break;
      }
      if (!ToInline)
        break;
      if (!inlineCall(S.F, ToInline))
        break;
      ++S.PLI.InlinedCalls;
      // Inlining splinters the CFG of S.F and can grow the call graph's
      // edge set: invalidate everything, then rebuild the normal form and
      // the dependence set from scratch.
      AM.invalidateAll();
      S.NL = normalizeLoop(AM, S.F, S.Header);
      assert(S.NL.Valid && "inlining destroyed the loop");
      S.L = findLoop(AM.get<LoopInfo>(S.F), S.Header);
      S.Deps = computeDeps(AM, S.F, S.L, S.Stats, S.Opts.EnableRangeRefinement);
    }
    return preservingAll();
  }
};

/// Metadata between analysis and transformation: dependence statistics,
/// induction variables (collected before lowering adds new code), and the
/// Step-3 counted-loop test.
class CharacterizePass : public LoopPass {
public:
  const char *name() const override { return "characterize"; }
  PassResult run(AnalysisManager &AM, LoopPassState &S) override {
    S.PLI.NumDepsTotal = S.Stats.NumAliasPairs + S.Stats.NumRegCarried +
                         S.Stats.NumExcludedFalse +
                         S.Stats.NumExcludedInduction;
    S.PLI.NumDepsCarried = unsigned(S.Deps.size());
    S.PLI.NumDepsPrunedByRange = S.Stats.NumPrunedByRange;
    S.PLI.Deps = S.Deps;
    S.PLI.IVs = collectIVs(AM, S.F, S.L);
    S.PLI.SelfStartingPrologue =
        prologueIsSelfStarting(AM, S.F, S.L, S.NL, S.Deps);
    return preservingAll();
  }
};

/// Step 4: naive Wait/Signal insertion — sequential-segment construction.
/// Splits edges for landing pads, so the whole CFG family of F goes; the
/// module-wide analyses survive (no calls, globals or memory operations
/// are added — Wait/Signal carry only a segment id).
class WaitSignalPass : public LoopPass {
public:
  const char *name() const override { return "wait-signal"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    S.WS = insertWaitSignals(S.F, S.NL, S.Deps);
    S.PLI.NumWaitsInserted = S.WS.NumWaits;
    S.PLI.NumSignalsInserted = S.WS.NumSignals;
    // S.L points into the LoopInfo the invalidation below drops; null it
    // so a composed custom pass that reads it crashes loudly instead of
    // dereferencing freed memory.
    S.L = nullptr;
    return preserving(PreservedAnalyses::none().preserveModuleAnalyses());
  }
};

/// Step 5b: shrink sequential segments by scheduling. Reorders
/// instructions within blocks only: block set, edges, dominators and loop
/// structure are untouched, and no instruction is added or removed, so
/// the flow-insensitive module analyses hold too. Only liveness — whose
/// point queries are position-sensitive — is abandoned.
class SchedulePass : public LoopPass {
public:
  const char *name() const override { return "schedule"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    if (!S.Opts.EnableScheduling)
      return preservingAll();
    compactSegments(S.NL, S.Deps);
    // Position-sensitive analyses go: liveness point queries, and the
    // value-range facts (factFor replays a block prefix whose instruction
    // order just changed).
    return preserving(PreservedAnalyses::all()
                          .abandon<Liveness>()
                          .abandon<ValueRangeAnalysis>());
  }
};

/// Step 6: minimize signals. Runs even when disabled — it also computes
/// the final segment list the later passes and the engines consume.
/// Rewrites and erases Wait/Signal operations in place; those touch no
/// registers and no memory, so everything but (position-sensitive)
/// liveness is preserved — the counters proving this is what the
/// AnalysisManagerTest preservation assertions pin down.
class SignalOptPass : public LoopPass {
public:
  const char *name() const override { return "signal-opt"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    S.SO = optimizeSignals(S.F, S.NL, S.Deps, S.WS, S.Opts.EnableSignalOpt);
    S.PLI.NumWaitsKept = S.SO.NumWaitsKept;
    S.PLI.NumSignalsKept = S.SO.NumSignalsKept;
    return preserving(PreservedAnalyses::all()
                          .abandon<Liveness>()
                          .abandon<ValueRangeAnalysis>());
  }
};

/// Steps 3 and 7: iteration starts and boundary-variable communication.
/// Creates the storage global and new loads/stores (points-to and memory
/// effects change), splits edges and adds blocks (CFG family changes);
/// only the call graph survives — no call site is created or destroyed.
class LowerPass : public LoopPass {
public:
  const char *name() const override { return "lower"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    S.LR = lowerParallelLoop(S.F, S.NL, S.Deps, S.SO, S.PLI.IVs);
    S.PLI.IterStarts = S.LR.IterStarts;
    S.PLI.StorageGlobal = S.LR.StorageGlobal;
    S.PLI.SlotOfReg = S.LR.SlotOfReg;
    return preserving(PreservedAnalyses::none().preserve<CallGraph>());
  }
};

/// Step 8: space segments so the helper thread can prefetch signals.
/// Same scheduling machinery as Step 5b, same preservation.
class BalancePass : public LoopPass {
public:
  const char *name() const override { return "balance"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    if (!(S.Opts.EnableHelperThreads && S.Opts.EnableBalancing))
      return preservingAll();
    unsigned Delta = unsigned(S.Opts.Machine.UnprefetchedSignalCycles -
                              S.Opts.Machine.PrefetchedSignalCycles);
    balanceSegmentSpacing(S.NL, S.Deps, Delta);
    return preserving(PreservedAnalyses::all()
                          .abandon<Liveness>()
                          .abandon<ValueRangeAnalysis>());
  }
};

/// Publishes the remaining ParallelLoopInfo metadata and verifies the
/// transformed function.
class FinalizePass : public LoopPass {
public:
  const char *name() const override { return "finalize"; }
  PassResult run(AnalysisManager &, LoopPassState &S) override {
    S.PLI.Latch = S.NL.Latch;
    S.PLI.LoopBlocks = S.NL.LoopBlocks;
    S.PLI.PrologueBlocks = S.NL.Prologue;
    S.PLI.BodyBlocks = S.NL.Body;
    S.PLI.Segments = S.SO.Segments;
    for (auto &[SegId, Slots] : S.LR.SlotsReadOfSegment)
      S.PLI.Segments[SegId].SlotsRead = Slots;
    for (BasicBlock *BB : S.NL.LoopBlocks)
      S.PLI.CodeSizeInstrs += BB->size();
    // Seal the finished body so the static checker (src/check) can prove
    // later that nothing rewrote the parallelized code behind its back.
    S.PLI.BodySeal = computeLoopBodySeal(S.PLI);
    // The verifier always runs. Malformed IR is a compiler bug: debug
    // builds stop on it immediately (assert); release builds degrade
    // gracefully by aborting the pass sequence — the loop is dropped, and
    // the mutated code stays sequentially correct since sync ops are
    // no-ops in sequential execution.
    if (!verifyFunction(*S.F).empty()) {
      assert(false && "transformed function malformed");
      return abort();
    }
    return preservingAll();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Manager.
//===----------------------------------------------------------------------===//

std::optional<ParallelLoopInfo>
LoopPassManager::run(AnalysisManager &AM, Function *F, BasicBlock *Header,
                     const HelixOptions &Opts,
                     std::vector<LoopPassTiming> *Timings) const {
  LoopPassState S(F, Header, Opts);
  bool MutatedSinceStart = false;
  for (const auto &P : Passes) {
    auto Start = std::chrono::steady_clock::now();
    LoopPass::PassResult Res;
    {
      obs::TraceSpan PassSpan(std::string("pass:") + P->name(), "pass");
      Res = P->run(AM, S);
    }
    if (Timings)
      accumulatePassTiming(
          *Timings, P->name(),
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - Start)
              .count());
    if (Res.Act == LoopPass::PassResult::Action::Abort) {
      // An abort after a mutating pass (e.g. the finalize verifier gate in
      // release builds) means the IR may be malformed mid-transformation;
      // nothing cached over it can be trusted. A pre-mutation abort
      // (normalize: header heads no loop) keeps the caches, which
      // self-invalidating passes left coherent.
      if (MutatedSinceStart)
        AM.invalidateAll();
      return std::nullopt;
    }
    // Preservation-aware invalidation: drop exactly what the pass did not
    // keep intact, dependency-closed, for this function plus the
    // non-preserved module-wide analyses. Analyses of other functions
    // survive the whole sequence — that is the compile-time win over the
    // old invalidate-everything discipline, and the per-kind counters
    // make it assertable.
    if (!Res.Preserved.preservesAll()) {
      AM.invalidate(F, Res.Preserved);
      MutatedSinceStart = true;
    }
  }
  return std::move(S.PLI);
}

void helix::addStandardHelixLoopPasses(LoopPassManager &PM) {
  PM.add(std::make_unique<NormalizePass>())
      .add(std::make_unique<DependencePass>())
      .add(std::make_unique<InlinePass>())
      .add(std::make_unique<CharacterizePass>())
      .add(std::make_unique<WaitSignalPass>())
      .add(std::make_unique<SchedulePass>())
      .add(std::make_unique<SignalOptPass>())
      .add(std::make_unique<LowerPass>())
      .add(std::make_unique<BalancePass>())
      .add(std::make_unique<FinalizePass>());
}
