#include "helix/Scheduler.h"

#include "analysis/RegUse.h"
#include "sim/CostModel.h"
#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace helix;

namespace {

/// Conservative intra-block dependence DAG. Wait/Signal/Call/IterStart are
/// treated as memory barriers, so reordering can never break a sequential
/// segment; only provably independent local computation moves.
struct LocalDAG {
  std::vector<Instruction *> Instrs;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<std::vector<unsigned>> Succs;

  explicit LocalDAG(BasicBlock *BB) {
    for (Instruction *I : *BB)
      Instrs.push_back(I);
    unsigned N = unsigned(Instrs.size());
    Preds.resize(N);
    Succs.resize(N);

    auto IsMemBarrier = [](const Instruction *I) {
      return I->isSync() || I->isCall() || I->opcode() == Opcode::IterStart ||
             I->opcode() == Opcode::MemFence;
    };
    auto TouchesMemory = [&](const Instruction *I) {
      return I->mayReadMemory() || I->mayWriteMemory() || IsMemBarrier(I);
    };
    auto WritesMemory = [&](const Instruction *I) {
      return I->mayWriteMemory() || IsMemBarrier(I);
    };

    auto AddEdge = [&](unsigned From, unsigned To) {
      Preds[To].push_back(From);
      Succs[From].push_back(To);
    };

    for (unsigned J = 0; J != N; ++J) {
      Instruction *B = Instrs[J];
      for (unsigned I = 0; I != J; ++I) {
        Instruction *A = Instrs[I];
        bool Dep = false;
        // Register RAW / WAR / WAW.
        if (A->hasDest()) {
          for (unsigned R : usedRegs(*B))
            Dep |= R == A->dest();
          Dep |= B->hasDest() && B->dest() == A->dest();
        }
        if (B->hasDest())
          for (unsigned R : usedRegs(*A))
            Dep |= R == B->dest();
        // Memory and barrier ordering.
        if ((WritesMemory(A) && TouchesMemory(B)) ||
            (TouchesMemory(A) && WritesMemory(B)))
          Dep = true;
        // The terminator stays last.
        if (B->isTerminator())
          Dep = true;
        if (Dep)
          AddEdge(I, J);
      }
    }
  }
};

/// Instructions needed by sequential segments: the sync operations, the
/// dependence endpoints, and all their DAG ancestors.
std::vector<bool> computeNeeded(const LocalDAG &DAG,
                                const std::vector<DataDependence> &Deps) {
  unsigned N = unsigned(DAG.Instrs.size());
  std::vector<bool> Needed(N, false);
  std::vector<unsigned> Work;
  for (unsigned I = 0; I != N; ++I) {
    Instruction *Ins = DAG.Instrs[I];
    bool Seed = Ins->isSync() || Ins->isTerminator();
    for (const DataDependence &D : Deps)
      for (Instruction *E : D.allEndpoints())
        Seed |= E == Ins;
    if (Seed) {
      Needed[I] = true;
      Work.push_back(I);
    }
  }
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    for (unsigned P : DAG.Preds[I])
      if (!Needed[P]) {
        Needed[P] = true;
        Work.push_back(P);
      }
  }
  return Needed;
}

/// List-schedules one block. With DeltaCycles == 0 this compacts segments
/// (Step 5): segment chains percolate upward and independent code sinks
/// below the Signals. With DeltaCycles > 0 it additionally reserves that
/// many cycles of independent code in front of every Wait (Figure 6).
void scheduleBlock(BasicBlock *BB, const std::vector<DataDependence> &Deps,
                   unsigned DeltaCycles) {
  bool HasSync = false;
  for (Instruction *I : *BB)
    HasSync |= I->isSync();
  if (!HasSync)
    return;

  LocalDAG DAG(BB);
  unsigned N = unsigned(DAG.Instrs.size());
  std::vector<bool> Needed = computeNeeded(DAG, Deps);

  std::vector<unsigned> RemainingPreds(N);
  for (unsigned I = 0; I != N; ++I)
    RemainingPreds[I] = unsigned(DAG.Preds[I].size());

  std::vector<bool> Emitted(N, false);
  std::vector<unsigned> Order;
  Order.reserve(N);
  unsigned Gap = ~0u / 2; // block entry counts as a large initial gap

  auto FirstReady = [&](bool WantNeeded) -> int {
    for (unsigned I = 0; I != N; ++I)
      if (!Emitted[I] && RemainingPreds[I] == 0 && Needed[I] == WantNeeded)
        return int(I);
    return -1;
  };

  auto Emit = [&](unsigned I) {
    Emitted[I] = true;
    Order.push_back(I);
    for (unsigned S : DAG.Succs[I]) {
      assert(RemainingPreds[S] > 0 && "pred count underflow");
      --RemainingPreds[S];
    }
    Instruction *Ins = DAG.Instrs[I];
    if (Ins->opcode() == Opcode::SignalOp)
      Gap = 0;
    else if (!Ins->isSync())
      Gap += opcodeCycles(Ins->opcode());
  };

  while (Order.size() != N) {
    int NextNeeded = FirstReady(/*WantNeeded=*/true);
    int NextPool = FirstReady(/*WantNeeded=*/false);
    if (NextNeeded < 0) {
      assert(NextPool >= 0 && "DAG deadlock");
      Emit(unsigned(NextPool));
      continue;
    }
    Instruction *Ins = DAG.Instrs[unsigned(NextNeeded)];
    // Figure 6: before entering the next sequential segment, pad the gap
    // with independent code so the helper thread can finish prefetching.
    if (Ins->opcode() == Opcode::Wait && Gap < DeltaCycles && NextPool >= 0) {
      Emit(unsigned(NextPool));
      continue;
    }
    Emit(unsigned(NextNeeded));
  }

  // Apply the new order.
  std::map<Instruction *, std::unique_ptr<Instruction>> Owned;
  std::vector<Instruction *> Pointers = DAG.Instrs;
  for (Instruction *I : Pointers)
    Owned[I] = BB->take(I);
  for (unsigned K = 0; K != N; ++K)
    BB->insertOwned(K, std::move(Owned[DAG.Instrs[Order[K]]]));
}

} // namespace

void helix::compactSegments(const NormalizedLoop &NL,
                            const std::vector<DataDependence> &Deps) {
  for (BasicBlock *BB : NL.LoopBlocks)
    scheduleBlock(BB, Deps, /*DeltaCycles=*/0);
}

void helix::balanceSegmentSpacing(const NormalizedLoop &NL,
                                  const std::vector<DataDependence> &Deps,
                                  unsigned DeltaCycles) {
  for (BasicBlock *BB : NL.LoopBlocks)
    scheduleBlock(BB, Deps, DeltaCycles);
}
