#include "helix/SpeedupModel.h"

#include <algorithm>
#include <cmath>

using namespace helix;

double helix::modelLoopOverheadCycles(const LoopModelInputs &In,
                                      const ModelParams &Params) {
  double S = In.EffSignalCycles >= 0 ? In.EffSignalCycles
                                     : Params.SignalCycles;
  uint64_t CSig = In.SelfStarting ? 0 : In.Iterations;
  double Sig = double(CSig + In.DataSignals) * S;
  double StartStop = 2.0 * double(Params.NumCores - 1) *
                     double(In.Invocations) * Params.StartStopSignalCycles;
  double Conf = double(In.Invocations) * Params.ConfCycles;
  double Data = double(In.WordsForwarded) * Params.WordTransferCycles;
  return Conf + Sig + StartStop + Data;
}

double helix::modelLoopChainCycles(const LoopModelInputs &In,
                                   const ModelParams &Params) {
  double Chain = double(In.SegmentCycles) +
                 double(In.DataSignals) * Params.ChainSignalCycles +
                 double(In.WordsForwarded) * Params.WordTransferCycles;
  if (!In.SelfStarting)
    Chain += double(In.PrologueCycles) +
             double(In.Iterations) * Params.ChainSignalCycles;
  return Chain;
}

double helix::modelLoopParallelCycles(const LoopModelInputs &In,
                                      const ModelParams &Params) {
  double Seq = double(In.SeqCycles);
  // A self-starting prologue (counted loop) executes concurrently on all
  // cores like the rest of the body; otherwise it is serialized by the
  // control-signal chain.
  uint64_t ParCycles = In.ParallelCycles;
  if (In.SelfStarting)
    ParCycles += In.PrologueCycles;
  double Par = double(std::min(ParCycles, In.SeqCycles));
  double Serial = Seq - Par;
  double Amdahl = Serial + Par / double(Params.NumCores) +
                  modelLoopOverheadCycles(In, Params);
  return std::max(Amdahl, modelLoopChainCycles(In, Params));
}

double helix::modelLoopSavedCycles(const LoopModelInputs &In,
                                   const ModelParams &Params) {
  double Saved = double(In.SeqCycles) - modelLoopParallelCycles(In, Params);
  return std::max(0.0, Saved);
}

double helix::modelProgramSpeedup(uint64_t TotalCycles,
                                  const std::vector<LoopModelInputs> &Loops,
                                  const ModelParams &Params) {
  if (TotalCycles == 0)
    return 1.0;
  double T = double(TotalCycles);
  double P = 0.0, O = 0.0;
  for (const LoopModelInputs &In : Loops) {
    uint64_t ParCycles = In.ParallelCycles;
    if (In.SelfStarting)
      ParCycles += In.PrologueCycles;
    P += double(std::min(ParCycles, In.SeqCycles)) / T;
    O += modelLoopOverheadCycles(In, Params) / T;
  }
  P = std::min(P, 1.0);
  double Denominator = (1.0 - P) + P / double(Params.NumCores) + O;
  return 1.0 / std::max(1e-9, Denominator);
}
