//===----------------------------------------------------------------------===//
///
/// \file
/// Per-loop-pass timing record. Kept in its own header so the pipeline
/// report can carry timings without pulling in the whole loop-pass
/// machinery.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_PASSTIMING_H
#define HELIX_HELIX_PASSTIMING_H

#include <string>
#include <vector>

namespace helix {

/// Accumulated wall-clock of one loop pass (normalize, dependence, ...)
/// across every loop a LoopPassManager::run caller transformed.
struct LoopPassTiming {
  std::string Pass;
  double Millis = 0.0;
  unsigned Invocations = 0;
};

/// Folds \p Millis for pass \p Name into \p Timings (matching by name,
/// appending in first-seen order). Shared by the pass manager and by
/// consumers that merge timing vectors from several transforms.
void accumulatePassTiming(std::vector<LoopPassTiming> &Timings,
                          const std::string &Name, double Millis);

/// Merges every entry of \p From into \p Into.
void mergePassTimings(std::vector<LoopPassTiming> &Into,
                      const std::vector<LoopPassTiming> &From);

} // namespace helix

#endif // HELIX_HELIX_PASSTIMING_H
