//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX Step 6: minimizing signals.
///
/// Three optimizations, per Section 2.1:
///   1. Redundant Wait elimination: a Wait(d) is removed when every control
///      path leading to it already contains another Wait(d) (forward
///      intersection "availability" dataflow).
///   2. Segment merging: dependences whose Wait/Signal operations are
///      adjacent everywhere (no parallel code between them) share one
///      sequential segment, i.e. one wait stall and one signal send per
///      iteration.
///   3. Cross-dependence redundancy (Theorem 1): d_i is redundant due to
///      d_j when Wait(d_j) is available at every Wait(d_i) *and* — our
///      runtime-safety strengthening — no endpoint of d_i is reachable
///      after any Signal(d_j), so releasing d_i's consumers on d_j's signal
///      is correct. The dependence redundance graph is condensed and only a
///      covering subset (sources plus one node per cycle) keeps its
///      synchronization; the rest is deleted.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_SIGNALOPT_H
#define HELIX_HELIX_SIGNALOPT_H

#include "helix/SequentialSegments.h"

#include <map>

namespace helix {

struct SignalOptResult {
  /// Final segments, ordered by position of their first Wait (this is also
  /// the helper-thread prefetch order of Step 8).
  std::vector<SequentialSegment> Segments;
  /// Which segment synchronizes each dependence.
  std::map<unsigned, unsigned> SegmentOfDep;
  unsigned NumWaitsKept = 0;
  unsigned NumSignalsKept = 0;
};

/// Runs Step 6 and assigns final segment ids (rewriting the Imm field of
/// every surviving Wait/Signal from dependence id to segment id). With
/// \p Enabled false (Figure 10 ablation) no optimization is applied: every
/// dependence becomes its own segment.
SignalOptResult optimizeSignals(Function *F, NormalizedLoop &NL,
                                const std::vector<DataDependence> &Deps,
                                WaitSignalInsertion &WS, bool Enabled);

} // namespace helix

#endif // HELIX_HELIX_SIGNALOPT_H
