//===----------------------------------------------------------------------===//
///
/// \file
/// Function inlining. Step 5 of the HELIX algorithm inlines calls that
/// participate in data dependences so that sequential segments can be
/// shrunk by code scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_INLINER_H
#define HELIX_HELIX_INLINER_H

#include "ir/Module.h"

namespace helix {

/// Inlines \p Call (which must be a Call instruction inside \p Caller whose
/// callee is non-recursive) into the caller.
///
/// The caller block is split after the call; the callee's blocks are cloned
/// with registers remapped; argument copies and return-value copies are
/// inserted. Alloca semantics are preserved because Alloca allocates fresh
/// slots on every execution.
///
/// \returns true on success; false if the call is not inlinable (recursive
/// callee).
bool inlineCall(Function *Caller, Instruction *Call);

} // namespace helix

#endif // HELIX_HELIX_INLINER_H
