//===----------------------------------------------------------------------===//
///
/// \file
/// HELIX Steps 3 and 7: starting next iterations and inserting inter-thread
/// communication.
///
/// Step 3 places an IterStart marker at the beginning of the loop body (the
/// point at which it is certain the next iteration's prologue executes);
/// the engines start iteration i+1's thread when iteration i passes it.
///
/// Step 7 allocates the loop-boundary live variables in a storage area
/// owned by the main thread (a module global standing in for the paper's
/// "allocation frame of the main thread"), inserts stores after every
/// in-loop definition of a boundary register, loads under the Wait of the
/// segment that synchronizes each register dependence (or at iteration
/// entry for dependences ordered by the sequential prologue), initializes
/// the slots in a preheader, and reloads final values on the exit edges.
/// Wait/Signal themselves lower to plain loads/stores of per-thread memory
/// buffers inside the runtime (Section 2.3: TSO makes fences unnecessary;
/// the threaded runtime uses acquire/release atomics).
///
/// The lowered loop remains sequentially executable (sync operations are
/// no-ops in a single-threaded interpretation and the slot traffic is then
/// identity), which the differential tests exploit.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_HELIX_LOWERING_H
#define HELIX_HELIX_LOWERING_H

#include "helix/Normalize.h"
#include "helix/ParallelLoopInfo.h"
#include "helix/SignalOpt.h"

namespace helix {

struct LoweringResult {
  std::vector<Instruction *> IterStarts;
  unsigned StorageGlobal = ~0u;
  std::map<unsigned, unsigned> SlotOfReg;
  /// Slots read under each segment id.
  std::map<unsigned, std::vector<unsigned>> SlotsReadOfSegment;
  /// The preheader created (or reused) in front of the loop.
  BasicBlock *Preheader = nullptr;
};

/// Performs Steps 3 and 7 on a transformed loop. \p IVs lists induction
/// variables materialized per iteration by the engines (they need no slot).
LoweringResult lowerParallelLoop(Function *F, NormalizedLoop &NL,
                                 const std::vector<DataDependence> &Deps,
                                 const SignalOptResult &Segments,
                                 const std::vector<MaterializedIV> &IVs);

} // namespace helix

#endif // HELIX_HELIX_LOWERING_H
