//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client of the resident serve daemon: connect once, then issue
/// run/stats/shutdown requests over the connection. One ServeClient is one
/// socket and must not be shared between threads without external locking
/// (concurrent clients each open their own — connections are cheap, the
/// daemon multiplexes).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SERVE_SERVECLIENT_H
#define HELIX_SERVE_SERVECLIENT_H

#include "serve/ServeProtocol.h"
#include "support/Socket.h"

#include <string>

namespace helix {

class ServeClient {
public:
  ServeClient() = default;

  /// Connects to the daemon at \p SocketPath. \returns false with a
  /// description in \p Err when the daemon is not there.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);

  bool connected() const { return Sock.valid(); }

  /// Submits \p ModuleText for a pipeline run and blocks for the report.
  /// \p PipelineText empty = the standard pipeline. \returns false only on
  /// transport failure; a server-side rejection or pipeline failure comes
  /// back as Out.Ok == false with Out.Error set.
  bool run(const std::string &ModuleText, const std::string &PipelineText,
           const ConfigOverrides &Overrides, ServeResponse &Out,
           std::string *Err = nullptr);

  /// Fetches the server-lifetime statistics.
  bool stats(ServeStats &Out, std::string *Err = nullptr);

  /// Asks the daemon to shut down (acknowledged before it stops).
  bool shutdownServer(std::string *Err = nullptr);

private:
  /// Sends \p Req and blocks for the response with the matching id.
  bool roundTrip(const ServeRequest &Req, ServeResponse &Out,
                 std::string *Err);

  Socket Sock;
  int64_t NextId = 1;
};

} // namespace helix

#endif // HELIX_SERVE_SERVECLIENT_H
