//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the resident compile-and-simulate service: one
/// JSON object per line in each direction over a local stream socket.
///
/// Requests name a kind ("run", "stats", "shutdown") and an id the client
/// chose; the matching response echoes the id. A "run" carries a textual
/// IR module, an optional pipeline string (stage names, comma separated;
/// empty = the standard eight-stage pipeline) and an optional object of
/// configuration overrides — only the knobs a remote caller may touch,
/// each validated and clamped by the server's admission policy.
///
/// Parsing is strict: unknown request kinds, wrongly typed fields and
/// unknown override keys are rejected with a description, never guessed
/// at. The response of a failed request is a structured error, so a
/// malformed or trapping submission can never take the daemon down.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SERVE_SERVEPROTOCOL_H
#define HELIX_SERVE_SERVEPROTOCOL_H

#include "pipeline/PipelineConfig.h"
#include "pipeline/PipelineReport.h"
#include "support/Json.h"

#include <optional>
#include <string>
#include <vector>

namespace helix {

/// The configuration knobs a request may override, all optional. Only
/// execution-policy and experiment knobs are exposed; everything else is
/// fixed by the server so cache entries stay comparable across clients.
struct ConfigOverrides {
  std::optional<int64_t> NumCores;
  std::optional<double> SignalCycles;
  std::optional<int64_t> ForceNestingLevel;
  std::optional<int64_t> MaxInterpInstructions;
  std::optional<int64_t> ModelProfileThreads;
  std::optional<bool> DoAcross;

  /// Folds the present overrides into \p C.
  void applyTo(PipelineConfig &C) const;

  /// Deterministic text of the present overrides — part of the server's
  /// request-coalescing key, so two requests coalesce only when they would
  /// run under the same configuration.
  std::string cacheKey() const;

  bool empty() const {
    return !NumCores && !SignalCycles && !ForceNestingLevel &&
           !MaxInterpInstructions && !ModelProfileThreads && !DoAcross;
  }
};

struct ServeRequest {
  enum class Kind { Run, Stats, Shutdown };

  int64_t Id = 0;
  Kind RequestKind = Kind::Run;
  std::string ModuleText;   ///< textual IR (run only)
  std::string PipelineText; ///< comma-separated stages; empty = standard
  ConfigOverrides Overrides;
};

/// Where one stage slot of a run got its result from.
struct StageSummary {
  std::string Name;
  std::string Source; ///< "executed", "context" (in-context reuse) or
                      ///< "cache" (restored from the shared stage cache)
  double WallMillis = 0.0;
  uint64_t InterpretedInstructions = 0;
};

/// Server-lifetime statistics ("stats" responses and the daemon's exit
/// summary).
struct ServeStats {
  uint64_t Received = 0;  ///< requests parsed off a connection
  uint64_t Served = 0;    ///< run requests answered with a report
  uint64_t Failed = 0;    ///< run requests answered with an error
  uint64_t Rejected = 0;  ///< refused by admission control (queue full)
  uint64_t Coalesced = 0; ///< runs that shared another request's execution

  /// In-memory stage-cache front: hits/misses/stores/evictions.
  uint64_t CacheHits = 0, CacheMisses = 0, CacheStores = 0,
           CacheEvictions = 0;
  /// Decode-once engine cache (process lifetime, shared with everything).
  uint64_t DecodeDecodes = 0, DecodeHits = 0, DecodeEvictions = 0,
           DecodeBodyHits = 0;

  /// Static sync-check aggregate over every run whose report carried the
  /// check stage's counters: loops proven clean vs. findings (a finding
  /// fails the run before anything executes).
  uint64_t SyncLoopsChecked = 0, SyncFindings = 0;

  /// Dependence-soundness audit aggregate (validate stage): witnessed
  /// cross-iteration memory dependences vs. ones the static DDG missed
  /// (an uncovered witness fails the run at the validate stage).
  uint64_t DepLoopsAudited = 0, DepWitnessed = 0, DepUncovered = 0;

  /// Per-stage execution aggregate across every served run.
  struct StageAgg {
    std::string Name;
    uint64_t Executions = 0; ///< stage bodies actually run
    uint64_t Reuses = 0;     ///< memory/disk/context reuses
    double Millis = 0.0;     ///< wall time of the executions
  };
  std::vector<StageAgg> Stages;

  /// Snapshot of the process-wide metrics registry at stats time — the
  /// daemon's full telemetry surface ("serve.requests", "pipeline.runs",
  /// "exec.dispatch.steps", ...) in one place.
  std::vector<obs::MetricSample> Metrics;
};

struct ServeResponse {
  int64_t Id = 0;
  bool Ok = false;
  std::string Error;
  bool Coalesced = false; ///< this run shared another request's execution

  bool HasReport = false;
  PipelineReport Report;
  std::vector<StageSummary> Stages;

  bool HasStats = false;
  ServeStats Stats;
};

// --- Serialization ---------------------------------------------------------

Json requestToJson(const ServeRequest &R);
Json responseToJson(const ServeResponse &R);
Json statsToJson(const ServeStats &S);

// --- Parsing (strict) ------------------------------------------------------

/// Parses a request object. \returns false with a description in \p Err on
/// any violation: missing/mistyped id or kind, unknown kind, missing
/// module on a run, unknown or mistyped override key.
bool requestFromJson(const Json &V, ServeRequest &R, std::string *Err);

/// Parses a full request line (JSON text). Convenience for the server's
/// connection loop.
bool parseRequestLine(const std::string &Line, ServeRequest &R,
                      std::string *Err);

bool responseFromJson(const Json &V, ServeResponse &R, std::string *Err);
bool statsFromJson(const Json &V, ServeStats &S, std::string *Err);

} // namespace helix

#endif // HELIX_SERVE_SERVEPROTOCOL_H
