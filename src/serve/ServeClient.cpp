#include "serve/ServeClient.h"

using namespace helix;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool ServeClient::connect(const std::string &SocketPath, std::string *Err) {
  Sock = Socket::connectTo(SocketPath, Err);
  return Sock.valid();
}

bool ServeClient::roundTrip(const ServeRequest &Req, ServeResponse &Out,
                            std::string *Err) {
  if (!Sock.valid())
    return fail(Err, "not connected");
  std::string Line;
  requestToJson(Req).print(Line);
  Line += '\n';
  if (!Sock.sendAll(Line))
    return fail(Err, "send failed (daemon gone?)");

  // The connection is used synchronously, so the next line is our answer;
  // the id check guards against a desynchronized stream all the same.
  std::string RespLine;
  if (!Sock.recvLine(RespLine))
    return fail(Err, "connection closed before a response arrived");
  Json V;
  std::string ParseErr;
  if (!Json::parse(RespLine, V, &ParseErr))
    return fail(Err, "unparseable response: " + ParseErr);
  if (!responseFromJson(V, Out, &ParseErr))
    return fail(Err, "malformed response: " + ParseErr);
  if (Out.Id != Req.Id)
    return fail(Err, "response id mismatch (stream desynchronized)");
  return true;
}

bool ServeClient::run(const std::string &ModuleText,
                      const std::string &PipelineText,
                      const ConfigOverrides &Overrides, ServeResponse &Out,
                      std::string *Err) {
  ServeRequest Req;
  Req.Id = NextId++;
  Req.RequestKind = ServeRequest::Kind::Run;
  Req.ModuleText = ModuleText;
  Req.PipelineText = PipelineText;
  Req.Overrides = Overrides;
  return roundTrip(Req, Out, Err);
}

bool ServeClient::stats(ServeStats &Out, std::string *Err) {
  ServeRequest Req;
  Req.Id = NextId++;
  Req.RequestKind = ServeRequest::Kind::Stats;
  ServeResponse Resp;
  if (!roundTrip(Req, Resp, Err))
    return false;
  if (!Resp.HasStats)
    return fail(Err, "stats response carried no statistics");
  Out = Resp.Stats;
  return true;
}

bool ServeClient::shutdownServer(std::string *Err) {
  ServeRequest Req;
  Req.Id = NextId++;
  Req.RequestKind = ServeRequest::Kind::Shutdown;
  ServeResponse Resp;
  return roundTrip(Req, Resp, Err) && Resp.Ok;
}
