#include "serve/ServeProtocol.h"

#include "pipeline/ReportJson.h"
#include "support/Format.h"

using namespace helix;

//===----------------------------------------------------------------------===//
// ConfigOverrides
//===----------------------------------------------------------------------===//

void ConfigOverrides::applyTo(PipelineConfig &C) const {
  if (NumCores)
    C.NumCores = unsigned(*NumCores);
  if (SignalCycles)
    C.Selection.SignalCycles = *SignalCycles;
  if (ForceNestingLevel)
    C.Selection.ForceNestingLevel = int(*ForceNestingLevel);
  if (MaxInterpInstructions)
    C.MaxInterpInstructions = uint64_t(*MaxInterpInstructions);
  if (ModelProfileThreads)
    C.ModelProfileThreads = unsigned(*ModelProfileThreads);
  if (DoAcross)
    C.DoAcross = *DoAcross;
}

std::string ConfigOverrides::cacheKey() const {
  std::string Key;
  if (NumCores)
    Key += formatStr("nc=%lld;", (long long)*NumCores);
  if (SignalCycles)
    Key += formatStr("sc=%.17g;", *SignalCycles);
  if (ForceNestingLevel)
    Key += formatStr("fnl=%lld;", (long long)*ForceNestingLevel);
  if (MaxInterpInstructions)
    Key += formatStr("mii=%lld;", (long long)*MaxInterpInstructions);
  if (ModelProfileThreads)
    Key += formatStr("mpt=%lld;", (long long)*ModelProfileThreads);
  if (DoAcross)
    Key += formatStr("da=%d;", *DoAcross ? 1 : 0);
  return Key;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

Json u64(uint64_t V) { return Json::integer(int64_t(V)); }

const char *kindName(ServeRequest::Kind K) {
  switch (K) {
  case ServeRequest::Kind::Run:
    return "run";
  case ServeRequest::Kind::Stats:
    return "stats";
  case ServeRequest::Kind::Shutdown:
    return "shutdown";
  }
  return "run";
}

Json overridesToJson(const ConfigOverrides &O) {
  Json V = Json::object();
  if (O.NumCores)
    V.set("num_cores", Json::integer(*O.NumCores));
  if (O.SignalCycles)
    V.set("signal_cycles", Json::number(*O.SignalCycles));
  if (O.ForceNestingLevel)
    V.set("force_nesting_level", Json::integer(*O.ForceNestingLevel));
  if (O.MaxInterpInstructions)
    V.set("max_interp_instructions", Json::integer(*O.MaxInterpInstructions));
  if (O.ModelProfileThreads)
    V.set("model_profile_threads", Json::integer(*O.ModelProfileThreads));
  if (O.DoAcross)
    V.set("doacross", Json::boolean(*O.DoAcross));
  return V;
}

} // namespace

Json helix::requestToJson(const ServeRequest &R) {
  Json V = Json::object();
  V.set("id", Json::integer(R.Id));
  V.set("kind", Json::str(kindName(R.RequestKind)));
  if (R.RequestKind == ServeRequest::Kind::Run) {
    V.set("module", Json::str(R.ModuleText));
    if (!R.PipelineText.empty())
      V.set("pipeline", Json::str(R.PipelineText));
    if (!R.Overrides.empty())
      V.set("config", overridesToJson(R.Overrides));
  }
  return V;
}

Json helix::statsToJson(const ServeStats &S) {
  Json V = Json::object();
  V.set("received", u64(S.Received));
  V.set("served", u64(S.Served));
  V.set("failed", u64(S.Failed));
  V.set("rejected", u64(S.Rejected));
  V.set("coalesced", u64(S.Coalesced));
  Json Cache = Json::object();
  Cache.set("hits", u64(S.CacheHits));
  Cache.set("misses", u64(S.CacheMisses));
  Cache.set("stores", u64(S.CacheStores));
  Cache.set("evictions", u64(S.CacheEvictions));
  V.set("stage_cache", std::move(Cache));
  Json Decode = Json::object();
  Decode.set("decodes", u64(S.DecodeDecodes));
  Decode.set("hits", u64(S.DecodeHits));
  Decode.set("evictions", u64(S.DecodeEvictions));
  Decode.set("body_hits", u64(S.DecodeBodyHits));
  V.set("decode_cache", std::move(Decode));
  Json Sync = Json::object();
  Sync.set("loops_checked", u64(S.SyncLoopsChecked));
  Sync.set("findings", u64(S.SyncFindings));
  V.set("sync_check", std::move(Sync));
  Json Dep = Json::object();
  Dep.set("loops_audited", u64(S.DepLoopsAudited));
  Dep.set("witnessed", u64(S.DepWitnessed));
  Dep.set("uncovered", u64(S.DepUncovered));
  V.set("dep_audit", std::move(Dep));
  Json Stages = Json::array();
  for (const ServeStats::StageAgg &A : S.Stages) {
    Json O = Json::object();
    O.set("name", Json::str(A.Name));
    O.set("executions", u64(A.Executions));
    O.set("reuses", u64(A.Reuses));
    O.set("millis", Json::number(A.Millis));
    Stages.push(std::move(O));
  }
  V.set("stages", std::move(Stages));
  if (!S.Metrics.empty()) {
    obs::MetricsSnapshot Snap;
    Snap.Samples = S.Metrics;
    V.set("metrics", Snap.toJson());
  }
  return V;
}

Json helix::responseToJson(const ServeResponse &R) {
  Json V = Json::object();
  V.set("id", Json::integer(R.Id));
  V.set("ok", Json::boolean(R.Ok));
  if (!R.Error.empty())
    V.set("error", Json::str(R.Error));
  if (R.Coalesced)
    V.set("coalesced", Json::boolean(true));
  if (R.HasReport) {
    V.set("report", reportToJson(R.Report));
    Json Stages = Json::array();
    for (const StageSummary &S : R.Stages) {
      Json O = Json::object();
      O.set("name", Json::str(S.Name));
      O.set("source", Json::str(S.Source));
      O.set("wall_millis", Json::number(S.WallMillis));
      O.set("interpreted_instructions", u64(S.InterpretedInstructions));
      Stages.push(std::move(O));
    }
    V.set("stages", std::move(Stages));
  }
  if (R.HasStats)
    V.set("stats", statsToJson(R.Stats));
  return V;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool overridesFromJson(const Json &V, ConfigOverrides &O, std::string *Err) {
  if (!V.isObject())
    return fail(Err, "config: expected object");
  for (const auto &[Key, Val] : V.members()) {
    if (Key == "num_cores" || Key == "force_nesting_level" ||
        Key == "max_interp_instructions" || Key == "model_profile_threads") {
      if (!Val.isInt())
        return fail(Err, "config." + Key + ": expected integer");
      int64_t I = Val.asInt();
      if (Key == "num_cores")
        O.NumCores = I;
      else if (Key == "force_nesting_level")
        O.ForceNestingLevel = I;
      else if (Key == "max_interp_instructions")
        O.MaxInterpInstructions = I;
      else
        O.ModelProfileThreads = I;
    } else if (Key == "signal_cycles") {
      if (!Val.isNumber())
        return fail(Err, "config.signal_cycles: expected number");
      O.SignalCycles = Val.asDouble();
    } else if (Key == "doacross") {
      if (!Val.isBool())
        return fail(Err, "config.doacross: expected bool");
      O.DoAcross = Val.asBool();
    } else {
      return fail(Err, "config: unknown key '" + Key + "'");
    }
  }
  return true;
}

} // namespace

bool helix::requestFromJson(const Json &V, ServeRequest &R, std::string *Err) {
  if (!V.isObject())
    return fail(Err, "request: expected object");
  R = ServeRequest();

  const Json *Id = V.find("id");
  if (!Id || !Id->isInt())
    return fail(Err, "request: missing integer 'id'");
  R.Id = Id->asInt();

  const Json *Kind = V.find("kind");
  if (!Kind || !Kind->isString())
    return fail(Err, "request: missing string 'kind'");
  const std::string &K = Kind->asString();
  if (K == "run")
    R.RequestKind = ServeRequest::Kind::Run;
  else if (K == "stats")
    R.RequestKind = ServeRequest::Kind::Stats;
  else if (K == "shutdown")
    R.RequestKind = ServeRequest::Kind::Shutdown;
  else
    return fail(Err, "request: unknown kind '" + K + "'");

  if (R.RequestKind != ServeRequest::Kind::Run)
    return true;

  const Json *M = V.find("module");
  if (!M || !M->isString() || M->asString().empty())
    return fail(Err, "run request: missing non-empty string 'module'");
  R.ModuleText = M->asString();

  if (const Json *P = V.find("pipeline")) {
    if (!P->isString())
      return fail(Err, "run request: 'pipeline' must be a string");
    R.PipelineText = P->asString();
  }
  if (const Json *C = V.find("config"))
    if (!overridesFromJson(*C, R.Overrides, Err))
      return false;
  return true;
}

bool helix::parseRequestLine(const std::string &Line, ServeRequest &R,
                             std::string *Err) {
  Json V;
  if (!Json::parse(Line, V, Err))
    return false;
  return requestFromJson(V, R, Err);
}

bool helix::statsFromJson(const Json &V, ServeStats &S, std::string *Err) {
  if (!V.isObject())
    return fail(Err, "stats: expected object");
  S = ServeStats();
  auto ReadU64 = [&](const Json &O, const char *Key, uint64_t &Out) {
    const Json *F = O.find(Key);
    if (!F)
      return true;
    if (!F->isNumber())
      return fail(Err, std::string("stats.") + Key + ": expected number");
    Out = uint64_t(F->asInt());
    return true;
  };
  if (!ReadU64(V, "received", S.Received) || !ReadU64(V, "served", S.Served) ||
      !ReadU64(V, "failed", S.Failed) || !ReadU64(V, "rejected", S.Rejected) ||
      !ReadU64(V, "coalesced", S.Coalesced))
    return false;
  if (const Json *C = V.find("stage_cache")) {
    if (!C->isObject())
      return fail(Err, "stats.stage_cache: expected object");
    if (!ReadU64(*C, "hits", S.CacheHits) ||
        !ReadU64(*C, "misses", S.CacheMisses) ||
        !ReadU64(*C, "stores", S.CacheStores) ||
        !ReadU64(*C, "evictions", S.CacheEvictions))
      return false;
  }
  if (const Json *D = V.find("decode_cache")) {
    if (!D->isObject())
      return fail(Err, "stats.decode_cache: expected object");
    if (!ReadU64(*D, "decodes", S.DecodeDecodes) ||
        !ReadU64(*D, "hits", S.DecodeHits) ||
        !ReadU64(*D, "evictions", S.DecodeEvictions))
      return false;
    if (D->find("body_hits") && !ReadU64(*D, "body_hits", S.DecodeBodyHits))
      return false;
  }
  if (const Json *SC = V.find("sync_check")) {
    if (!SC->isObject())
      return fail(Err, "stats.sync_check: expected object");
    if (!ReadU64(*SC, "loops_checked", S.SyncLoopsChecked) ||
        !ReadU64(*SC, "findings", S.SyncFindings))
      return false;
  }
  if (const Json *DA = V.find("dep_audit")) {
    if (!DA->isObject())
      return fail(Err, "stats.dep_audit: expected object");
    if (!ReadU64(*DA, "loops_audited", S.DepLoopsAudited) ||
        !ReadU64(*DA, "witnessed", S.DepWitnessed) ||
        !ReadU64(*DA, "uncovered", S.DepUncovered))
      return false;
  }
  if (const Json *Stages = V.find("stages")) {
    if (!Stages->isArray())
      return fail(Err, "stats.stages: expected array");
    for (const Json &E : Stages->elements()) {
      if (!E.isObject())
        return fail(Err, "stats.stages[]: expected object");
      ServeStats::StageAgg A;
      const Json *Name = E.find("name");
      if (!Name || !Name->isString())
        return fail(Err, "stats.stages[].name: expected string");
      A.Name = Name->asString();
      if (!ReadU64(E, "executions", A.Executions) ||
          !ReadU64(E, "reuses", A.Reuses))
        return false;
      A.Millis = E.getDouble("millis", 0.0);
      S.Stages.push_back(std::move(A));
    }
  }
  if (const Json *M = V.find("metrics")) {
    obs::MetricsSnapshot Snap;
    std::string MetricsErr;
    if (!obs::MetricsSnapshot::fromJson(*M, Snap, &MetricsErr))
      return fail(Err, "stats." + MetricsErr);
    S.Metrics = std::move(Snap.Samples);
  }
  return true;
}

bool helix::responseFromJson(const Json &V, ServeResponse &R,
                             std::string *Err) {
  if (!V.isObject())
    return fail(Err, "response: expected object");
  R = ServeResponse();

  const Json *Id = V.find("id");
  if (!Id || !Id->isInt())
    return fail(Err, "response: missing integer 'id'");
  R.Id = Id->asInt();

  const Json *Ok = V.find("ok");
  if (!Ok || !Ok->isBool())
    return fail(Err, "response: missing bool 'ok'");
  R.Ok = Ok->asBool();

  if (const Json *E = V.find("error")) {
    if (!E->isString())
      return fail(Err, "response: 'error' must be a string");
    R.Error = E->asString();
  }
  if (const Json *C = V.find("coalesced")) {
    if (!C->isBool())
      return fail(Err, "response: 'coalesced' must be a bool");
    R.Coalesced = C->asBool();
  }
  if (const Json *Rep = V.find("report")) {
    if (!reportFromJson(*Rep, R.Report, Err))
      return false;
    R.HasReport = true;
    if (const Json *Stages = V.find("stages")) {
      if (!Stages->isArray())
        return fail(Err, "response: 'stages' must be an array");
      for (const Json &E : Stages->elements()) {
        if (!E.isObject())
          return fail(Err, "response.stages[]: expected object");
        StageSummary S;
        const Json *Name = E.find("name");
        if (!Name || !Name->isString())
          return fail(Err, "response.stages[].name: expected string");
        S.Name = Name->asString();
        S.Source = E.getString("source", "executed");
        S.WallMillis = E.getDouble("wall_millis", 0.0);
        S.InterpretedInstructions =
            uint64_t(E.getInt("interpreted_instructions", 0));
        R.Stages.push_back(std::move(S));
      }
    }
  }
  if (const Json *St = V.find("stats")) {
    if (!statsFromJson(*St, R.Stats, Err))
      return false;
    R.HasStats = true;
  }
  return true;
}
