#include "serve/ServeServer.h"

#include "exec/ExecProgram.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pipeline/PipelineBuilder.h"
#include "support/Format.h"

#include <algorithm>
#include <ctime>
#include <sys/socket.h>

using namespace helix;

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

ServeServer::ServeServer(ServeServerConfig Config)
    : Config(std::move(Config)) {
  if (!this->Config.DiskCachePath.empty())
    Disk = std::make_unique<DiskStageCache>(this->Config.DiskCachePath);
  Memory = std::make_unique<MemoryStageCache>(this->Config.MemoryCacheBytes,
                                              Disk.get());
  Pool = std::make_unique<ThreadPool>(this->Config.Workers);
  if (!this->Config.LogPath.empty())
    Log.open(this->Config.LogPath, std::ios::app);
}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start(std::string *Err) {
  if (Running.load())
    return true;
  Listener = ListenSocket::listenOn(Config.SocketPath, /*Backlog=*/128, Err);
  if (!Listener.valid())
    return false;
  StopRequested.store(false);
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  logLine(formatStr("listening on %s (workers=%u, max_in_flight=%u)",
                    Config.SocketPath.c_str(), Pool->numThreads(),
                    Config.MaxInFlight));
  return true;
}

void ServeServer::stop() {
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    StopRequested.store(true);
  }
  StopCond.notify_all();
  if (!Running.exchange(false))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  {
    // Unblock every connection thread stuck in recvLine. shutdown() (not
    // close) so the descriptor stays valid until its owner thread exits.
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto &C : Connections)
      if (C->Sock.valid())
        ::shutdown(C->Sock.fd(), SHUT_RDWR);
  }
  for (;;) {
    std::unique_ptr<Connection> C;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (Connections.empty())
        break;
      C = std::move(Connections.back());
      Connections.pop_back();
    }
    if (C->Thread.joinable())
      C->Thread.join();
  }
  Pool->wait();
  Listener.close();
  logLine("stopped");
}

void ServeServer::waitForShutdownRequest() {
  std::unique_lock<std::mutex> Lock(StopMutex);
  StopCond.wait(Lock, [this] { return StopRequested.load(); });
}

//===----------------------------------------------------------------------===//
// Accept / connection loops
//===----------------------------------------------------------------------===//

void ServeServer::acceptLoop() {
  while (!StopRequested.load()) {
    Socket S = Listener.acceptWithTimeout(/*TimeoutMillis=*/100);
    // Reap finished connection threads so a long-lived daemon does not
    // accumulate one joinable thread per past client.
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      for (size_t I = 0; I != Connections.size();) {
        if (Connections[I]->Finished.load()) {
          if (Connections[I]->Thread.joinable())
            Connections[I]->Thread.join();
          Connections.erase(Connections.begin() + long(I));
        } else {
          ++I;
        }
      }
    }
    if (!S.valid())
      continue;
    auto Conn = std::make_unique<Connection>();
    Conn->Sock = std::move(S);
    Connection *Raw = Conn.get();
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      Connections.push_back(std::move(Conn));
    }
    Raw->Thread = std::thread([this, Raw] { connectionLoop(Raw); });
  }
}

void ServeServer::connectionLoop(Connection *Conn) {
  std::string Line;
  while (!StopRequested.load() && Conn->Sock.recvLine(Line)) {
    if (Line.empty())
      continue;
    ServeResponse Resp = handleRequest(Line);
    std::string Out;
    responseToJson(Resp).print(Out);
    Out += '\n';
    if (!Conn->Sock.sendAll(Out))
      break;
  }
  Conn->Finished.store(true);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

ServeResponse ServeServer::handleRequest(const std::string &Line) {
  obs::TraceSpan RequestSpan("serve.request", "serve");
  obs::MetricsRegistry::global().counter("serve.requests").add();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Received;
  }

  ServeResponse Resp;
  Json V;
  std::string Err;
  if (!Json::parse(Line, V, &Err)) {
    Resp.Error = "malformed request: " + Err;
    logLine("rejecting unparseable request: " + Err);
    return Resp;
  }
  // Echo the id even when validation below fails, so the client can match
  // the error to its request.
  if (const Json *Id = V.find("id"); Id && Id->isInt())
    Resp.Id = Id->asInt();

  ServeRequest Req;
  if (!requestFromJson(V, Req, &Err)) {
    Resp.Error = "malformed request: " + Err;
    logLine("rejecting malformed request: " + Err);
    return Resp;
  }
  Resp.Id = Req.Id;

  switch (Req.RequestKind) {
  case ServeRequest::Kind::Stats:
    Resp.Ok = true;
    Resp.HasStats = true;
    fillStats(Resp.Stats);
    return Resp;
  case ServeRequest::Kind::Shutdown:
    Resp.Ok = true;
    logLine("shutdown requested");
    {
      std::lock_guard<std::mutex> Lock(StopMutex);
      StopRequested.store(true);
    }
    StopCond.notify_all();
    return Resp;
  case ServeRequest::Kind::Run:
    return handleRun(Req);
  }
  Resp.Error = "unhandled request kind";
  return Resp;
}

ServeResponse ServeServer::handleRun(const ServeRequest &Req) {
  ServeResponse Resp;
  Resp.Id = Req.Id;

  // Admission control: a bounded count of in-flight runs. Beyond it the
  // request fails fast — the client sees a structured rejection instead of
  // an unbounded queue delay.
  unsigned Before = InFlight.fetch_add(1);
  if (Before >= Config.MaxInFlight) {
    InFlight.fetch_sub(1);
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.Rejected;
    }
    Resp.Error = formatStr("rejected: %u runs in flight (limit %u)",
                           Before, Config.MaxInFlight);
    logLine(Resp.Error);
    return Resp;
  }
  struct InFlightGuard {
    std::atomic<unsigned> &N;
    ~InFlightGuard() { N.fetch_sub(1); }
  } Guard{InFlight};

  // Parse eagerly (cheap next to a pipeline run): the module fingerprint
  // keys coalescing, and a syntax error must not occupy a worker.
  ParseResult Parsed = parseModule(Req.ModuleText);
  if (!Parsed.M) {
    Resp.Error = "module parse error: " + Parsed.Error;
    recordRunOutcome(Resp);
    return Resp;
  }
  std::string VerifyErr = verifyModule(*Parsed.M);
  if (!VerifyErr.empty()) {
    Resp.Error = "module verification failed: " + VerifyErr;
    recordRunOutcome(Resp);
    return Resp;
  }
  std::string Fingerprint = StageCache::moduleFingerprint(*Parsed.M);

  // Coalescing: requests for the same (module, pipeline, overrides) point
  // share one pipeline execution — under a thundering herd of identical
  // submissions the daemon does the work once.
  std::string JobKey =
      Fingerprint + "|" + Req.PipelineText + "|" + Req.Overrides.cacheKey();
  std::shared_ptr<Job> J;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    auto It = Jobs.find(JobKey);
    if (It != Jobs.end()) {
      J = It->second;
    } else {
      J = std::make_shared<Job>();
      Jobs.emplace(JobKey, J);
      Owner = true;
    }
  }

  if (!Owner) {
    std::unique_lock<std::mutex> Lock(J->M);
    J->Ready.wait(Lock, [&] { return J->Done; });
    int64_t Id = Resp.Id;
    Resp = J->Resp;
    Resp.Id = Id;
    Resp.Coalesced = true;
    logLine(formatStr("run id=%lld coalesced %s",
                      static_cast<long long>(Resp.Id),
                      Resp.Ok ? "ok" : "failed"));
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Stats.Coalesced;
      ++(Resp.Ok ? Stats.Served : Stats.Failed);
    }
    return Resp;
  }

  // Owner path: run on the worker pool, publish to every waiter, then
  // retire the job key so later identical requests start fresh.
  const Module *M = Parsed.M.get();
  Pool->submit([this, J, &Req, M, &Fingerprint] {
    ServeResponse R = executeRun(Req, *M, Fingerprint);
    {
      std::lock_guard<std::mutex> Lock(J->M);
      J->Resp = std::move(R);
      J->Done = true;
    }
    J->Ready.notify_all();
  });
  {
    std::unique_lock<std::mutex> Lock(J->M);
    J->Ready.wait(Lock, [&] { return J->Done; });
    int64_t Id = Resp.Id;
    Resp = J->Resp;
    Resp.Id = Id;
  }
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    Jobs.erase(JobKey);
  }
  recordRunOutcome(Resp);
  return Resp;
}

ServeResponse ServeServer::executeRun(const ServeRequest &Req,
                                      const Module &M,
                                      const std::string &Fingerprint) {
  obs::TraceSpan RunSpan("serve.run", "serve");
  ServeResponse Resp;

  Pipeline P;
  if (Req.PipelineText.empty()) {
    P = PipelineBuilder::standard();
  } else {
    std::string BuildErr;
    P = PipelineBuilder().parse(Req.PipelineText).build(&BuildErr);
    if (P.empty()) {
      Resp.Error = "pipeline build error: " + BuildErr;
      return Resp;
    }
  }

  PipelineConfig C;
  // The pool is already parallel across requests; per-request fan-out on
  // top of it oversubscribes, so model-profile defaults to single-thread
  // here (a request may still override it).
  C.ModelProfileThreads = 1;
  Req.Overrides.applyTo(C);
  C.MaxInterpInstructions =
      std::min(C.MaxInterpInstructions, Config.MaxInterpInstructions);

  PipelineContext Ctx(M, C);
  Ctx.setStageCache(Memory.get(), "serve");
  Ctx.setModuleFingerprint(Fingerprint);

  Resp.Report = P.run(Ctx);
  Resp.HasReport = true;
  Resp.Ok = Resp.Report.Ok;
  Resp.Error = Resp.Report.Error;

  for (const PipelineContext::StageRun &Run : Ctx.history()) {
    StageSummary S;
    S.Name = Run.Name;
    S.Source = Run.Cached ? "context" : Run.FromDisk ? "cache" : "executed";
    S.WallMillis = Run.WallMillis;
    S.InterpretedInstructions = Run.InterpretedInstructions;
    Resp.Stages.push_back(std::move(S));
  }
  return Resp;
}

//===----------------------------------------------------------------------===//
// Statistics / logging
//===----------------------------------------------------------------------===//

void ServeServer::recordRunOutcome(const ServeResponse &Resp) {
  if (Resp.Ok)
    logLine(formatStr("run id=%lld ok (%zu stages)",
                      static_cast<long long>(Resp.Id), Resp.Stages.size()));
  else
    logLine(formatStr("run id=%lld failed: %s",
                      static_cast<long long>(Resp.Id), Resp.Error.c_str()));
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++(Resp.Ok ? Stats.Served : Stats.Failed);
  if (Resp.HasReport) {
    Stats.SyncLoopsChecked += Resp.Report.SyncCheck.LoopsChecked;
    Stats.SyncFindings += Resp.Report.SyncCheck.Findings;
    Stats.DepLoopsAudited += Resp.Report.DepAudit.LoopsAudited;
    Stats.DepWitnessed += Resp.Report.DepAudit.Witnessed;
    Stats.DepUncovered += Resp.Report.DepAudit.Uncovered;
  }
  for (const StageSummary &S : Resp.Stages) {
    auto It = std::find_if(
        Stats.Stages.begin(), Stats.Stages.end(),
        [&](const ServeStats::StageAgg &A) { return A.Name == S.Name; });
    if (It == Stats.Stages.end()) {
      Stats.Stages.push_back({S.Name, 0, 0, 0.0});
      It = std::prev(Stats.Stages.end());
    }
    if (S.Source == "executed") {
      ++It->Executions;
      It->Millis += S.WallMillis;
    } else {
      ++It->Reuses;
    }
  }
}

void ServeServer::fillStats(ServeStats &Out) const {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Stats;
  }
  StageCacheCounters C = Memory->counters();
  Out.CacheHits = C.Hits;
  Out.CacheMisses = C.Misses;
  Out.CacheStores = C.Stores;
  Out.CacheEvictions = C.Evictions;
  DecodeCache::Counters D = DecodeCache::global().counters();
  Out.DecodeDecodes = D.Decodes;
  Out.DecodeHits = D.Hits;
  Out.DecodeEvictions = D.Evictions;
  Out.DecodeBodyHits = D.BodyHits;
  Out.Metrics = obs::MetricsRegistry::global().snapshot().Samples;
}

ServeStats ServeServer::stats() const {
  ServeStats S;
  fillStats(S);
  return S;
}

void ServeServer::logLine(const std::string &Msg) {
  std::lock_guard<std::mutex> Lock(LogMutex);
  if (!Log.is_open())
    return;
  std::time_t Now = std::time(nullptr);
  struct tm TM;
  localtime_r(&Now, &TM);
  char Stamp[32];
  std::strftime(Stamp, sizeof(Stamp), "%F %T", &TM);
  Log << Stamp << " " << Msg << "\n";
  Log.flush();
}
