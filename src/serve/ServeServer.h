//===----------------------------------------------------------------------===//
///
/// \file
/// The resident compile-and-simulate service. One ServeServer owns a
/// listening local socket, a worker ThreadPool, and the process-lifetime
/// warm caches every request shares:
///
///   - a MemoryStageCache front (optionally layered over a DiskStageCache),
///     so a repeated module+configuration skips every training run;
///   - DecodeCache::global(), shared with everything else in the process.
///
/// Request lifecycle: a connection thread reads one JSON line, parses it
/// strictly, and for a "run" request passes through admission control (a
/// bounded count of in-flight runs — beyond it the request is *rejected
/// with a structured error*, never queued unboundedly), then either joins
/// an identical in-flight run (coalescing: same module fingerprint,
/// pipeline and overrides share one execution and both get its report) or
/// executes the pipeline on the worker pool. Failures of any kind — parse
/// errors, verifier rejections, trapping modules, stage failures — produce
/// an error response on that request only; the daemon keeps serving.
///
/// Shutdown: stop() (or a "shutdown" request) stops the accept loop,
/// shuts down every live connection, drains in-flight runs and joins all
/// threads. The socket file is unlinked on close.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_SERVE_SERVESERVER_H
#define HELIX_SERVE_SERVESERVER_H

#include "pipeline/StageCache.h"
#include "serve/ServeProtocol.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace helix {

class Module;

struct ServeServerConfig {
  std::string SocketPath;

  /// Pipeline worker threads. 0 = hardware concurrency.
  unsigned Workers = 0;

  /// Admission bound: maximum runs in flight (executing or waiting for a
  /// worker). A run arriving beyond it is rejected with a structured
  /// error, so a burst degrades into fast failures instead of an unbounded
  /// queue.
  unsigned MaxInFlight = 64;

  /// Per-request interpreter budget cap. A request asking for more is
  /// clamped; a request asking for less gets what it asked for.
  uint64_t MaxInterpInstructions = ExecLimits::DefaultMaxSteps;

  /// Byte bound of the in-memory stage-cache front.
  size_t MemoryCacheBytes = size_t(256) << 20;

  /// When non-empty, a DiskStageCache at this directory backs the memory
  /// front: memory misses fall through, stores write through.
  std::string DiskCachePath;

  /// When non-empty, one line per server event is appended here.
  std::string LogPath;
};

class ServeServer {
public:
  explicit ServeServer(ServeServerConfig Config);
  ~ServeServer();

  ServeServer(const ServeServer &) = delete;
  ServeServer &operator=(const ServeServer &) = delete;

  /// Binds the socket and starts the accept loop. \returns false (with a
  /// description in \p Err) when the socket cannot be bound.
  bool start(std::string *Err = nullptr);

  /// Graceful shutdown: stop accepting, unblock every connection, drain
  /// in-flight runs, join all threads. Idempotent.
  void stop();

  /// Blocks until a client sent a "shutdown" request or stop() was called.
  void waitForShutdownRequest();

  /// True once a client sent "shutdown" (or stop() began) — the daemon's
  /// main loop polls this next to its signal flag.
  bool shutdownRequested() const { return StopRequested.load(); }

  bool running() const { return Running.load(); }
  const std::string &socketPath() const { return Config.SocketPath; }

  /// Snapshot of the server-lifetime statistics.
  ServeStats stats() const;

private:
  /// One coalesced execution: every request with the same job key blocks
  /// on Done and shares Resp (id and coalesced flag are per-request).
  struct Job {
    std::mutex M;
    std::condition_variable Ready;
    bool Done = false;
    ServeResponse Resp;
  };

  struct Connection {
    Socket Sock;
    std::thread Thread;
    std::atomic<bool> Finished{false};
  };

  void acceptLoop();
  void connectionLoop(Connection *Conn);
  ServeResponse handleRequest(const std::string &Line);
  ServeResponse handleRun(const ServeRequest &Req);
  /// Executes the pipeline for \p Req (worker-pool side of handleRun).
  ServeResponse executeRun(const ServeRequest &Req, const Module &M,
                           const std::string &Fingerprint);
  void fillStats(ServeStats &Out) const;
  void recordRunOutcome(const ServeResponse &Resp);
  void logLine(const std::string &Msg);

  ServeServerConfig Config;
  std::unique_ptr<DiskStageCache> Disk;   ///< null without a disk path
  std::unique_ptr<MemoryStageCache> Memory;
  std::unique_ptr<ThreadPool> Pool;

  ListenSocket Listener;
  std::thread Acceptor;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  std::mutex StopMutex;
  std::condition_variable StopCond;

  std::mutex ConnMutex;
  std::vector<std::unique_ptr<Connection>> Connections;

  std::atomic<unsigned> InFlight{0};
  std::mutex JobsMutex;
  std::map<std::string, std::shared_ptr<Job>> Jobs;

  mutable std::mutex StatsMutex;
  ServeStats Stats; ///< request counters + per-stage aggregates

  std::mutex LogMutex;
  std::ofstream Log;
};

} // namespace helix

#endif // HELIX_SERVE_SERVESERVER_H
