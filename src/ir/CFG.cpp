#include "ir/CFG.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

CFGInfo::CFGInfo(Function *F) : F(F) {
  Preds.assign(F->numBlockIds(), {});
  RPOIndex.assign(F->numBlockIds(), ~0u);

  for (BasicBlock *BB : *F)
    for (BasicBlock *Succ : BB->successors())
      Preds[Succ->id()].push_back(BB);

  // Iterative post-order DFS from the entry block.
  std::vector<BasicBlock *> PostOrder;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  std::vector<bool> Visited(F->numBlockIds(), false);
  Stack.push_back({F->entry(), 0});
  Visited[F->entry()->id()] = true;
  while (!Stack.empty()) {
    auto &[BB, Pos] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Pos < Succs.size()) {
      BasicBlock *S = Succs[Pos++];
      if (!Visited[S->id()]) {
        Visited[S->id()] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0, E = unsigned(RPO.size()); I != E; ++I)
    RPOIndex[RPO[I]->id()] = I;
}

BasicBlock *helix::splitEdge(Function *F, BasicBlock *From, BasicBlock *To) {
  Instruction *Term = From->terminator();
  assert(Term && "edge source has no terminator");
  assert((Term->target1() == To || Term->target2() == To) &&
         "no such CFG edge");
  BasicBlock *Mid = F->createBlock(From->name() + "." + To->name());
  Instruction *Br = Mid->append(Opcode::Br);
  Br->setTarget1(To);
  // Redirect only the matching target(s); a CondBr with both targets equal
  // to To is redirected on both arms, which is still correct.
  Term->replaceTarget(To, Mid);
  return Mid;
}
