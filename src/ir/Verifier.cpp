#include "ir/Verifier.h"

#include "support/Format.h"

#include <set>
#include <vector>

using namespace helix;

namespace {

std::string checkInstr(const Function &F, const BasicBlock &BB,
                       const Instruction &I) {
  auto Fail = [&](const char *Msg) {
    return formatStr("@%s/%s: %s (%s)", F.name().c_str(), BB.name().c_str(),
                     Msg, opcodeName(I.opcode()));
  };

  // Register ids in range.
  if (I.hasDest() && I.dest() >= F.numRegs())
    return Fail("destination register out of range");
  for (unsigned K = 0, E = I.numOperands(); K != E; ++K) {
    const Operand &O = I.operand(K);
    if (O.isReg() && O.regId() >= F.numRegs())
      return Fail("operand register out of range");
    if (O.isGlobal() && O.globalIndex() >= F.parent()->numGlobals())
      return Fail("global operand out of range");
  }

  // Operand arities and structural fields.
  Opcode Op = I.opcode();
  if (isBinaryOpcode(Op)) {
    if (I.numOperands() != 2 || !I.hasDest())
      return Fail("binary op needs two operands and a destination");
    return "";
  }
  switch (Op) {
  case Opcode::Mov:
  case Opcode::IntToFP:
  case Opcode::FPToInt:
  case Opcode::Load:
  case Opcode::HeapAlloc:
    if (I.numOperands() != 1 || !I.hasDest())
      return Fail("unary op needs one operand and a destination");
    break;
  case Opcode::Store:
    if (I.numOperands() != 2 || I.hasDest())
      return Fail("store needs two operands and no destination");
    break;
  case Opcode::Alloca:
    if (I.numOperands() != 0 || !I.hasDest() || I.imm() <= 0)
      return Fail("alloca needs a positive immediate and a destination");
    break;
  case Opcode::Br:
    if (!I.target1() || I.target2() || I.numOperands() != 0)
      return Fail("br needs exactly one target");
    break;
  case Opcode::CondBr:
    if (!I.target1() || !I.target2() || I.numOperands() != 1)
      return Fail("condbr needs a condition and two targets");
    break;
  case Opcode::Call: {
    if (!I.callee())
      return Fail("call without callee");
    if (I.numOperands() != I.callee()->numParams())
      return Fail("call arity does not match callee parameter count");
    break;
  }
  case Opcode::Ret:
    if (I.numOperands() > 1)
      return Fail("ret takes at most one operand");
    break;
  case Opcode::Wait:
  case Opcode::SignalOp:
    // The segment id is the immediate; a register operand would make it
    // runtime-varying, which no engine supports.
    if (I.numOperands() != 0 || I.hasDest())
      return Fail("sync op takes no operands and no destination");
    // The runtime publishes segment flags in one 64-bit mask per
    // iteration; an id past 63 would silently alias another segment.
    if (I.imm() < 0 || I.imm() > 63)
      return Fail("segment id out of range [0, 63]");
    break;
  case Opcode::IterStart:
  case Opcode::MemFence:
  case Opcode::Nop:
    if (I.numOperands() != 0 || I.hasDest())
      return Fail("nullary op takes no operands");
    break;
  default:
    break;
  }

  // Branch targets must live in this function.
  for (BasicBlock *T : {I.target1(), I.target2()}) {
    if (!T)
      continue;
    bool Found = false;
    for (BasicBlock *Candidate : F)
      if (Candidate == T) {
        Found = true;
        break;
      }
    if (!Found)
      return Fail("branch target not in function");
  }
  return "";
}

/// Is \p BB on a CFG cycle, i.e. can it reach itself through at least one
/// edge? Iterative DFS over successors; no allocation beyond the visit set.
bool onCycle(const BasicBlock *BB) {
  std::vector<BasicBlock *> Start = BB->successors();
  std::vector<const BasicBlock *> Stack(Start.begin(), Start.end());
  std::set<const BasicBlock *> Seen(Stack.begin(), Stack.end());
  while (!Stack.empty()) {
    const BasicBlock *Cur = Stack.back();
    Stack.pop_back();
    if (Cur == BB)
      return true;
    for (const BasicBlock *Succ : Cur->successors())
      if (Seen.insert(Succ).second)
        Stack.push_back(Succ);
  }
  return false;
}

} // namespace

std::string helix::verifyFunction(const Function &F) {
  if (F.numBlocks() == 0)
    return formatStr("@%s: function has no blocks", F.name().c_str());

  for (BasicBlock *BB : F) {
    if (BB->empty())
      return formatStr("@%s/%s: empty block", F.name().c_str(),
                       BB->name().c_str());
    if (!BB->terminator())
      return formatStr("@%s/%s: block lacks a terminator", F.name().c_str(),
                       BB->name().c_str());
    for (unsigned Idx = 0, E = BB->size(); Idx != E; ++Idx) {
      Instruction *I = BB->instr(Idx);
      if (I->parent() != BB)
        return formatStr("@%s/%s: bad parent link", F.name().c_str(),
                         BB->name().c_str());
      if (I->isTerminator() && Idx + 1 != E)
        return formatStr("@%s/%s: terminator in the middle of a block",
                         F.name().c_str(), BB->name().c_str());
      std::string Err = checkInstr(F, *BB, *I);
      if (!Err.empty())
        return Err;
      // A Wait/Signal outside every loop can never pair two iterations;
      // its only possible runtime effect is a first-iteration hang.
      if (I->isSync() && !onCycle(BB))
        return formatStr("@%s/%s: %s outside any loop body",
                         F.name().c_str(), BB->name().c_str(),
                         opcodeName(I->opcode()));
    }
  }
  return "";
}

std::string helix::verifyModule(const Module &M) {
  for (Function *F : M) {
    std::string Err = verifyFunction(*F);
    if (!Err.empty())
      return Err;
  }
  return "";
}
