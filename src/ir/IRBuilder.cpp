#include "ir/IRBuilder.h"

#include "support/Compiler.h"

using namespace helix;

Instruction *IRBuilder::appendChecked(Opcode Op) {
  assert(BB && "no insertion point set");
  assert(!BB->terminator() && "appending after a terminator");
  return BB->append(Op);
}

unsigned IRBuilder::binary(Opcode Op, Operand A, Operand B) {
  assert(isBinaryOpcode(Op) && "not a binary opcode");
  Instruction *I = appendChecked(Op);
  I->addOperand(A);
  I->addOperand(B);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

void IRBuilder::binaryTo(unsigned Dest, Opcode Op, Operand A, Operand B) {
  assert(isBinaryOpcode(Op) && "not a binary opcode");
  Instruction *I = appendChecked(Op);
  I->addOperand(A);
  I->addOperand(B);
  I->setDest(Dest);
}

void IRBuilder::movTo(unsigned Dest, Operand V) {
  Instruction *I = appendChecked(Opcode::Mov);
  I->addOperand(V);
  I->setDest(Dest);
}

void IRBuilder::loadTo(unsigned Dest, Operand Addr) {
  Instruction *I = appendChecked(Opcode::Load);
  I->addOperand(Addr);
  I->setDest(Dest);
}

unsigned IRBuilder::mov(Operand V) {
  Instruction *I = appendChecked(Opcode::Mov);
  I->addOperand(V);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

unsigned IRBuilder::conv(Opcode Op, Operand V) {
  assert((Op == Opcode::IntToFP || Op == Opcode::FPToInt) &&
         "not a conversion opcode");
  Instruction *I = appendChecked(Op);
  I->addOperand(V);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

unsigned IRBuilder::load(Operand Addr) {
  Instruction *I = appendChecked(Opcode::Load);
  I->addOperand(Addr);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

void IRBuilder::store(Operand Value, Operand Addr) {
  Instruction *I = appendChecked(Opcode::Store);
  I->addOperand(Value);
  I->addOperand(Addr);
}

unsigned IRBuilder::allocaSlots(int64_t NumSlots) {
  assert(NumSlots > 0 && "alloca of zero slots");
  Instruction *I = appendChecked(Opcode::Alloca);
  I->setImm(NumSlots);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

unsigned IRBuilder::heapAlloc(Operand NumSlots) {
  Instruction *I = appendChecked(Opcode::HeapAlloc);
  I->addOperand(NumSlots);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

void IRBuilder::br(BasicBlock *Target) {
  Instruction *I = appendChecked(Opcode::Br);
  I->setTarget1(Target);
}

void IRBuilder::condBr(Operand Cond, BasicBlock *Then, BasicBlock *Else) {
  Instruction *I = appendChecked(Opcode::CondBr);
  I->addOperand(Cond);
  I->setTarget1(Then);
  I->setTarget2(Else);
}

unsigned IRBuilder::call(Function *Callee,
                         const std::vector<Operand> &Args) {
  assert(Callee && "null callee");
  assert(Args.size() == Callee->numParams() && "call arity mismatch");
  Instruction *I = appendChecked(Opcode::Call);
  I->setCallee(Callee);
  for (const Operand &A : Args)
    I->addOperand(A);
  unsigned Dest = F->allocReg();
  I->setDest(Dest);
  return Dest;
}

void IRBuilder::callVoid(Function *Callee,
                         const std::vector<Operand> &Args) {
  assert(Callee && "null callee");
  assert(Args.size() == Callee->numParams() && "call arity mismatch");
  Instruction *I = appendChecked(Opcode::Call);
  I->setCallee(Callee);
  for (const Operand &A : Args)
    I->addOperand(A);
}

void IRBuilder::ret() { appendChecked(Opcode::Ret); }

void IRBuilder::ret(Operand V) {
  Instruction *I = appendChecked(Opcode::Ret);
  I->addOperand(V);
}
