//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual IR syntax produced by Module::print().
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_IRPARSER_H
#define HELIX_IR_IRPARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace helix {

/// Outcome of a parse: either a module, or a diagnostic naming the first
/// offending line.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error; // empty on success

  bool succeeded() const { return M != nullptr; }
};

/// Parses a whole module from \p Text.
///
/// Grammar (one construct per line; '#' starts a comment):
///   global @name SIZE [= {v0, v1, ...}]
///   func @name(NPARAMS) {
///   label:
///     rN = add rA, 5
///     store r1, @g
///     br label
///     condbr r1, thenLabel, elseLabel
///     r2 = call @f(r1, 2)
///     ret [operand]
///   }
ParseResult parseModule(const std::string &Text);

} // namespace helix

#endif // HELIX_IR_IRPARSER_H
