#include "ir/Clone.h"

#include "support/Compiler.h"

using namespace helix;

std::unique_ptr<Module> helix::cloneModule(const Module &M,
                                           CloneMap *MapOut) {
  auto NewM = std::make_unique<Module>();
  CloneMap Map;

  for (unsigned I = 0, E = M.numGlobals(); I != E; ++I) {
    const GlobalVariable &G = M.global(I);
    unsigned Idx = NewM->createGlobal(G.Name, G.Size);
    NewM->global(Idx).Init = G.Init;
  }

  // Create functions and blocks first so calls and branches can resolve.
  for (const Function *F :
       const_cast<Module &>(M)) { // iteration is non-mutating
    Function *NF = NewM->createFunction(F->name(), F->numParams());
    NF->ensureRegCount(F->numRegs());
    Map.Functions[F] = NF;
    for (const BasicBlock *BB : *F)
      Map.Blocks[BB] = NF->createBlock(BB->name());
  }

  for (const Function *F : const_cast<Module &>(M)) {
    for (const BasicBlock *BB : *F) {
      BasicBlock *NBB = Map.Blocks.at(BB);
      for (const Instruction *I : *BB) {
        Instruction *NI = NBB->append(I->opcode());
        NI->setImm(I->imm());
        if (I->hasDest())
          NI->setDest(I->dest());
        for (unsigned K = 0, E = I->numOperands(); K != E; ++K)
          NI->addOperand(I->operand(K));
        if (I->callee())
          NI->setCallee(Map.Functions.at(I->callee()));
        if (I->target1())
          NI->setTarget1(Map.Blocks.at(I->target1()));
        if (I->target2())
          NI->setTarget2(Map.Blocks.at(I->target2()));
      }
    }
  }

  if (MapOut)
    *MapOut = std::move(Map);
  return NewM;
}
