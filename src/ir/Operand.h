//===----------------------------------------------------------------------===//
///
/// \file
/// Data operands of IR instructions: virtual registers, integer/float
/// immediates, and global addresses.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_OPERAND_H
#define HELIX_IR_OPERAND_H

#include <cassert>
#include <cstdint>

namespace helix {

/// Sentinel for "no destination register".
inline constexpr unsigned NoReg = ~0u;

/// A data operand. Branch targets and callees are stored on the instruction
/// itself, not as Operands, so CFG edits never have to scan operand lists.
class Operand {
public:
  enum class Kind : uint8_t { Reg, ImmInt, ImmFloat, Global };

  static Operand reg(unsigned RegId) {
    Operand O;
    O.K = Kind::Reg;
    O.RegId = RegId;
    return O;
  }
  static Operand immInt(int64_t Value) {
    Operand O;
    O.K = Kind::ImmInt;
    O.IntValue = Value;
    return O;
  }
  static Operand immFloat(double Value) {
    Operand O;
    O.K = Kind::ImmFloat;
    O.FloatValue = Value;
    return O;
  }
  /// \p GlobalIdx indexes Module::globals(); the interpreter resolves it to
  /// the global's base address.
  static Operand global(unsigned GlobalIdx) {
    Operand O;
    O.K = Kind::Global;
    O.RegId = GlobalIdx;
    return O;
  }

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImmInt() const { return K == Kind::ImmInt; }
  bool isImmFloat() const { return K == Kind::ImmFloat; }
  bool isGlobal() const { return K == Kind::Global; }

  unsigned regId() const {
    assert(isReg() && "not a register operand");
    return RegId;
  }
  int64_t intValue() const {
    assert(isImmInt() && "not an integer immediate");
    return IntValue;
  }
  double floatValue() const {
    assert(isImmFloat() && "not a float immediate");
    return FloatValue;
  }
  unsigned globalIndex() const {
    assert(isGlobal() && "not a global operand");
    return RegId;
  }

  /// Rewrites a register operand in place (used by inlining and cloning).
  void setReg(unsigned NewRegId) {
    assert(isReg() && "not a register operand");
    RegId = NewRegId;
  }

  bool operator==(const Operand &Other) const {
    if (K != Other.K)
      return false;
    switch (K) {
    case Kind::Reg:
    case Kind::Global:
      return RegId == Other.RegId;
    case Kind::ImmInt:
      return IntValue == Other.IntValue;
    case Kind::ImmFloat:
      return FloatValue == Other.FloatValue;
    }
    return false;
  }

private:
  Kind K = Kind::ImmInt;
  union {
    unsigned RegId;
    int64_t IntValue;
    double FloatValue;
  };
};

} // namespace helix

#endif // HELIX_IR_OPERAND_H
