//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction class of the HELIX IR.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_INSTRUCTION_H
#define HELIX_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Operand.h"

#include <cassert>
#include <vector>

namespace helix {

class BasicBlock;
class Function;

/// A single three-address instruction.
///
/// Every instruction has a function-unique dense id, which analyses use to
/// index bitsets. Ids survive block motion but not cloning (clones get fresh
/// ids in the destination function).
class Instruction {
public:
  Instruction(Opcode Op, uint32_t Id) : Op(Op), Id(Id) {}

  Opcode opcode() const { return Op; }
  void setOpcode(Opcode NewOp) { Op = NewOp; }
  uint32_t id() const { return Id; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  // --- Destination register -------------------------------------------------
  bool hasDest() const { return Dest != NoReg; }
  unsigned dest() const {
    assert(hasDest() && "instruction has no destination");
    return Dest;
  }
  void setDest(unsigned RegId) { Dest = RegId; }
  void clearDest() { Dest = NoReg; }

  // --- Data operands --------------------------------------------------------
  unsigned numOperands() const { return unsigned(Ops.size()); }
  const Operand &operand(unsigned Idx) const {
    assert(Idx < Ops.size() && "operand index out of range");
    return Ops[Idx];
  }
  Operand &operand(unsigned Idx) {
    assert(Idx < Ops.size() && "operand index out of range");
    return Ops[Idx];
  }
  void addOperand(Operand O) { Ops.push_back(O); }
  void setOperands(std::vector<Operand> NewOps) { Ops = std::move(NewOps); }
  const std::vector<Operand> &operands() const { return Ops; }
  std::vector<Operand> &operands() { return Ops; }

  // --- Control flow ---------------------------------------------------------
  bool isTerminator() const { return isTerminatorOpcode(Op); }
  BasicBlock *target1() const { return Target1; }
  BasicBlock *target2() const { return Target2; }
  void setTarget1(BasicBlock *BB) { Target1 = BB; }
  void setTarget2(BasicBlock *BB) { Target2 = BB; }

  /// Redirects every branch target equal to \p From to \p To.
  void replaceTarget(BasicBlock *From, BasicBlock *To) {
    if (Target1 == From)
      Target1 = To;
    if (Target2 == From)
      Target2 = To;
  }

  Function *callee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }

  // --- Immediate (Alloca size, Wait/Signal segment id) ----------------------
  int64_t imm() const { return Imm; }
  void setImm(int64_t Value) { Imm = Value; }

  // --- Classification helpers ----------------------------------------------
  bool mayReadMemory() const {
    return Op == Opcode::Load || Op == Opcode::Call;
  }
  bool mayWriteMemory() const {
    return Op == Opcode::Store || Op == Opcode::Call;
  }
  bool isCall() const { return Op == Opcode::Call; }
  bool isSync() const {
    return Op == Opcode::Wait || Op == Opcode::SignalOp;
  }
  /// \returns true for instructions the scheduler must never reorder:
  /// terminators, synchronization, calls, and iteration-start markers.
  bool isSchedulingBarrier() const {
    return isTerminator() || isSync() || isCall() ||
           Op == Opcode::IterStart || Op == Opcode::MemFence;
  }

private:
  Opcode Op;
  uint32_t Id;
  unsigned Dest = NoReg;
  std::vector<Operand> Ops;
  Function *Callee = nullptr;
  BasicBlock *Target1 = nullptr;
  BasicBlock *Target2 = nullptr;
  int64_t Imm = 0;
  BasicBlock *Parent = nullptr;
};

} // namespace helix

#endif // HELIX_IR_INSTRUCTION_H
