//===----------------------------------------------------------------------===//
///
/// \file
/// Modules of the HELIX IR: the unit of whole-program analysis and
/// transformation.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_MODULE_H
#define HELIX_IR_MODULE_H

#include "ir/Function.h"

#include <atomic>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace helix {

/// A named module-level memory region of \p Size 8-byte slots. The
/// interpreter assigns each global a base address at load time.
struct GlobalVariable {
  std::string Name;
  uint64_t Size = 1;
  /// Optional initial integer values (shorter than Size => rest is zero).
  std::vector<int64_t> Init;
};

/// A whole program: functions plus global variables.
class Module {
public:
  /// Process-unique identity of this module object, never reused even
  /// after destruction. The execution-engine decode cache keys on it so a
  /// recycled allocation can never be mistaken for the module that was
  /// decoded there before.
  uint64_t uid() const { return Uid; }

  /// Creates a function. Names must be unique within the module.
  Function *createFunction(std::string Name, unsigned NumParams);
  Function *findFunction(const std::string &Name) const;

  unsigned numFunctions() const { return unsigned(Funcs.size()); }
  Function *function(unsigned Idx) const { return Funcs[Idx].get(); }

  /// Creates a global of \p Size slots; returns its index.
  unsigned createGlobal(std::string Name, uint64_t Size);
  unsigned numGlobals() const { return unsigned(Globals.size()); }
  GlobalVariable &global(unsigned Idx) { return Globals[Idx]; }
  const GlobalVariable &global(unsigned Idx) const { return Globals[Idx]; }
  /// Finds a global index by name; returns ~0u if absent.
  unsigned findGlobal(const std::string &Name) const;

  class function_iterator {
  public:
    function_iterator(const std::vector<std::unique_ptr<Function>> *V,
                      size_t Pos)
        : V(V), Pos(Pos) {}
    Function *operator*() const { return (*V)[Pos].get(); }
    function_iterator &operator++() {
      ++Pos;
      return *this;
    }
    bool operator!=(const function_iterator &O) const { return Pos != O.Pos; }

  private:
    const std::vector<std::unique_ptr<Function>> *V;
    size_t Pos;
  };
  function_iterator begin() const { return function_iterator(&Funcs, 0); }
  function_iterator end() const {
    return function_iterator(&Funcs, Funcs.size());
  }

  /// Prints the module in the textual syntax accepted by the parser.
  void print(std::ostream &OS) const;
  /// Convenience: returns print() output as a string.
  std::string toString() const;

private:
  inline static std::atomic<uint64_t> NextUid{1};
  uint64_t Uid = NextUid.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<GlobalVariable> Globals;
};

} // namespace helix

#endif // HELIX_IR_MODULE_H
