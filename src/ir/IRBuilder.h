//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience builder for constructing IR, used by workload generators,
/// the HELIX lowering steps, tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_IRBUILDER_H
#define HELIX_IR_IRBUILDER_H

#include "ir/Module.h"

namespace helix {

/// Appends instructions at the end of the current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *function() const { return F; }
  BasicBlock *insertBlock() const { return BB; }
  void setInsertPoint(BasicBlock *NewBB) { BB = NewBB; }

  // --- Operand shorthands ---------------------------------------------------
  static Operand imm(int64_t V) { return Operand::immInt(V); }
  static Operand fimm(double V) { return Operand::immFloat(V); }
  static Operand reg(unsigned R) { return Operand::reg(R); }

  // --- Instruction creation (each returns the destination register when the
  // --- instruction produces a value) ----------------------------------------
  unsigned binary(Opcode Op, Operand A, Operand B);
  unsigned add(Operand A, Operand B) { return binary(Opcode::Add, A, B); }
  unsigned sub(Operand A, Operand B) { return binary(Opcode::Sub, A, B); }
  unsigned mul(Operand A, Operand B) { return binary(Opcode::Mul, A, B); }
  unsigned cmpLT(Operand A, Operand B) { return binary(Opcode::CmpLT, A, B); }
  unsigned cmpEQ(Operand A, Operand B) { return binary(Opcode::CmpEQ, A, B); }

  unsigned mov(Operand V);
  unsigned conv(Opcode Op, Operand V);
  unsigned load(Operand Addr);

  // --- Variants writing a caller-chosen register (loop variables,
  // --- accumulators and other mutable state) -------------------------------
  void binaryTo(unsigned Dest, Opcode Op, Operand A, Operand B);
  void movTo(unsigned Dest, Operand V);
  void loadTo(unsigned Dest, Operand Addr);
  void store(Operand Value, Operand Addr);
  unsigned allocaSlots(int64_t NumSlots);
  unsigned heapAlloc(Operand NumSlots);

  void br(BasicBlock *Target);
  void condBr(Operand Cond, BasicBlock *Then, BasicBlock *Else);
  /// Call producing a value.
  unsigned call(Function *Callee, const std::vector<Operand> &Args);
  /// Call whose result (if any) is discarded.
  void callVoid(Function *Callee, const std::vector<Operand> &Args);
  void ret();
  void ret(Operand V);

private:
  Instruction *appendChecked(Opcode Op);

  Function *F;
  BasicBlock *BB = nullptr;
};

} // namespace helix

#endif // HELIX_IR_IRBUILDER_H
