//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode definitions and opcode traits for the HELIX three-address IR.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_OPCODE_H
#define HELIX_IR_OPCODE_H

#include <cstdint>

namespace helix {

/// The instruction set of the IR.
///
/// The IR is a register machine over 64-bit integer and 64-bit floating
/// point values with a word-granular flat memory (an address names one
/// 8-byte slot). This mirrors what HELIX needs from ILDJIT's IR: explicit
/// loads/stores, calls, a CFG, and room for instrumentation.
enum class Opcode : uint8_t {
  // Integer arithmetic: Dst = A op B.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Floating-point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Conversions.
  IntToFP,
  FPToInt,
  // Integer comparisons producing 0/1.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Floating-point comparisons producing 0/1.
  FCmpEQ,
  FCmpNE,
  FCmpLT,
  FCmpLE,
  FCmpGT,
  FCmpGE,
  // Register copy / constant materialization: Dst = Op0.
  Mov,
  // Memory. Addresses are 64-bit slot indices into a flat memory.
  Load,      ///< Dst = Mem[Op0]
  Store,     ///< Mem[Op1] = Op0
  Alloca,    ///< Dst = base of Imm fresh stack slots in the current frame
  HeapAlloc, ///< Dst = base of Op0 fresh heap slots
  // Control flow.
  Br,     ///< unconditional branch to Target1
  CondBr, ///< Op0 != 0 ? Target1 : Target2
  Call,   ///< Dst = Callee(Op0, Op1, ...); Dst optional
  Ret,    ///< return, optionally Op0
  // HELIX synchronization operations (inserted by the parallelizer; Imm is
  // the sequential-segment id).
  Wait,
  SignalOp,
  /// Marks the start of the loop body: the point at which the next
  /// iteration's prologue may begin on the successor core (Step 3).
  IterStart,
  /// Memory barrier for platforms without total store ordering (§2.3).
  MemFence,
  // No operation (placeholder produced by some rewrites).
  Nop,
};

/// \returns the lower-case mnemonic used by the printer and parser.
const char *opcodeName(Opcode Op);

/// \returns true for Br, CondBr and Ret.
bool isTerminatorOpcode(Opcode Op);

/// \returns true if the opcode defines a destination register.
bool opcodeHasDest(Opcode Op);

/// \returns true for binary arithmetic/comparison opcodes.
bool isBinaryOpcode(Opcode Op);

/// \returns true for the floating-point arithmetic/compare opcodes.
bool isFloatOpcode(Opcode Op);

} // namespace helix

#endif // HELIX_IR_OPCODE_H
