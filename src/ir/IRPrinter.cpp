//===----------------------------------------------------------------------===//
///
/// \file
/// Textual printer for the IR. The output is accepted by IRParser, so
/// modules round-trip through text (tested in tests/IRParserTest.cpp).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <sstream>

using namespace helix;

namespace {

std::string floatToText(double V) {
  std::string S = formatStr("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

void printOperand(std::ostream &OS, const Operand &O, const Module &M) {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    OS << 'r' << O.regId();
    return;
  case Operand::Kind::ImmInt:
    OS << O.intValue();
    return;
  case Operand::Kind::ImmFloat:
    OS << floatToText(O.floatValue());
    return;
  case Operand::Kind::Global:
    OS << '@' << M.global(O.globalIndex()).Name;
    return;
  }
  HELIX_UNREACHABLE("unknown operand kind");
}

void printInstruction(std::ostream &OS, const Instruction *I,
                      const Module &M) {
  OS << "  ";
  if (I->hasDest())
    OS << 'r' << I->dest() << " = ";
  OS << opcodeName(I->opcode());

  switch (I->opcode()) {
  case Opcode::Alloca:
    OS << ' ' << I->imm();
    break;
  case Opcode::Wait:
  case Opcode::SignalOp:
    OS << ' ' << I->imm();
    break;
  case Opcode::Br:
    OS << ' ' << I->target1()->name();
    break;
  case Opcode::CondBr:
    OS << ' ';
    printOperand(OS, I->operand(0), M);
    OS << ", " << I->target1()->name() << ", " << I->target2()->name();
    break;
  case Opcode::Call: {
    OS << " @" << I->callee()->name() << '(';
    for (unsigned Idx = 0, E = I->numOperands(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      printOperand(OS, I->operand(Idx), M);
    }
    OS << ')';
    break;
  }
  default: {
    for (unsigned Idx = 0, E = I->numOperands(); Idx != E; ++Idx) {
      OS << (Idx ? ", " : " ");
      printOperand(OS, I->operand(Idx), M);
    }
    break;
  }
  }
  OS << '\n';
}

} // namespace

void Module::print(std::ostream &OS) const {
  for (unsigned I = 0, E = numGlobals(); I != E; ++I) {
    const GlobalVariable &G = global(I);
    OS << "global @" << G.Name << ' ' << G.Size;
    if (!G.Init.empty()) {
      OS << " = {";
      for (size_t J = 0; J != G.Init.size(); ++J) {
        if (J)
          OS << ", ";
        OS << G.Init[J];
      }
      OS << '}';
    }
    OS << '\n';
  }
  if (numGlobals())
    OS << '\n';

  for (Function *F : *this) {
    OS << "func @" << F->name() << '(' << F->numParams() << ") {\n";
    for (BasicBlock *BB : *F) {
      OS << BB->name() << ":\n";
      for (Instruction *I : *BB)
        printInstruction(OS, I, *this);
    }
    OS << "}\n\n";
  }
}

std::string Module::toString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
