//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for IR modules.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_VERIFIER_H
#define HELIX_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace helix {

/// Checks module invariants: every block terminated exactly once, branch
/// targets in-function, operand arities, register ids in range, call arity
/// matching the callee, globals in range.
///
/// \returns an empty string if the module is well formed, otherwise a
/// diagnostic describing the first violation found.
std::string verifyModule(const Module &M);

/// Like verifyModule but for a single function.
std::string verifyFunction(const Function &F);

} // namespace helix

#endif // HELIX_IR_VERIFIER_H
