//===----------------------------------------------------------------------===//
///
/// \file
/// Functions of the HELIX IR.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_FUNCTION_H
#define HELIX_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace helix {

class Module;

/// A function: a CFG over basic blocks plus a virtual register file.
///
/// Parameters occupy registers 0 .. numParams()-1. The entry block is the
/// first block created.
class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams)
      : Parent(Parent), Name(std::move(Name)), NumParams(NumParams),
        NextReg(NumParams) {}

  Module *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  unsigned numParams() const { return NumParams; }

  // --- Registers ------------------------------------------------------------
  /// Allocates a fresh virtual register.
  unsigned allocReg() { return NextReg++; }
  /// Guarantees that register ids below \p N are considered allocated
  /// (used by the parser, which sees explicit register numbers).
  void ensureRegCount(unsigned N) {
    if (N > NextReg)
      NextReg = N;
  }
  /// One past the largest register id ever allocated.
  unsigned numRegs() const { return NextReg; }

  // --- Blocks ---------------------------------------------------------------
  /// Creates a block; the first one created is the entry block.
  BasicBlock *createBlock(std::string BlockName = "");
  /// Removes and destroys \p BB. The caller must have rewired all edges.
  void eraseBlock(BasicBlock *BB);

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  unsigned numBlocks() const { return unsigned(Blocks.size()); }
  BasicBlock *block(unsigned Idx) const { return Blocks[Idx].get(); }
  /// Finds a block by name; returns null if absent.
  BasicBlock *findBlock(const std::string &BlockName) const;

  /// Moves \p BB to just after \p After in the block list (layout order only;
  /// does not affect CFG edges).
  void moveBlockAfter(BasicBlock *BB, BasicBlock *After);

  class block_iterator {
  public:
    block_iterator(const std::vector<std::unique_ptr<BasicBlock>> *V,
                   size_t Pos)
        : V(V), Pos(Pos) {}
    BasicBlock *operator*() const { return (*V)[Pos].get(); }
    block_iterator &operator++() {
      ++Pos;
      return *this;
    }
    bool operator!=(const block_iterator &O) const { return Pos != O.Pos; }

  private:
    const std::vector<std::unique_ptr<BasicBlock>> *V;
    size_t Pos;
  };
  block_iterator begin() const { return block_iterator(&Blocks, 0); }
  block_iterator end() const { return block_iterator(&Blocks, Blocks.size()); }

  // --- Dense id spaces for analyses ------------------------------------------
  uint32_t takeInstrId() { return NextInstrId++; }
  /// One past the largest instruction id ever handed out.
  uint32_t numInstrIds() const { return NextInstrId; }
  uint32_t numBlockIds() const { return NextBlockId; }

  /// Total static instruction count (linear scan over blocks).
  unsigned numInstrs() const;

private:
  Module *Parent;
  std::string Name;
  unsigned NumParams;
  unsigned NextReg;
  uint32_t NextInstrId = 0;
  uint32_t NextBlockId = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace helix

#endif // HELIX_IR_FUNCTION_H
