//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the core IR classes (Opcode traits, BasicBlock,
/// Function, Module).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace helix;

//===----------------------------------------------------------------------===//
// Opcode traits
//===----------------------------------------------------------------------===//

const char *helix::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::IntToFP:
    return "itof";
  case Opcode::FPToInt:
    return "ftoi";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::FCmpEQ:
    return "fcmpeq";
  case Opcode::FCmpNE:
    return "fcmpne";
  case Opcode::FCmpLT:
    return "fcmplt";
  case Opcode::FCmpLE:
    return "fcmple";
  case Opcode::FCmpGT:
    return "fcmpgt";
  case Opcode::FCmpGE:
    return "fcmpge";
  case Opcode::Mov:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::HeapAlloc:
    return "halloc";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Wait:
    return "wait";
  case Opcode::SignalOp:
    return "signal";
  case Opcode::IterStart:
    return "iterstart";
  case Opcode::MemFence:
    return "fence";
  case Opcode::Nop:
    return "nop";
  }
  HELIX_UNREACHABLE("unknown opcode");
}

bool helix::isTerminatorOpcode(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool helix::opcodeHasDest(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
  case Opcode::Wait:
  case Opcode::SignalOp:
  case Opcode::IterStart:
  case Opcode::MemFence:
  case Opcode::Nop:
    return false;
  case Opcode::Call: // optional
  default:
    return true;
  }
}

bool helix::isBinaryOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::FCmpEQ:
  case Opcode::FCmpNE:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
  case Opcode::FCmpGT:
  case Opcode::FCmpGE:
    return true;
  default:
    return false;
  }
}

bool helix::isFloatOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FCmpEQ:
  case Opcode::FCmpNE:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
  case Opcode::FCmpGT:
  case Opcode::FCmpGE:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Instruction *BasicBlock::createInstr(Opcode Op) {
  auto *I = new Instruction(Op, Parent->takeInstrId());
  I->setParent(this);
  return I;
}

Instruction *BasicBlock::append(Opcode Op) {
  Instruction *I = createInstr(Op);
  Instrs.emplace_back(I);
  return I;
}

Instruction *BasicBlock::insertAt(unsigned Idx, Opcode Op) {
  assert(Idx <= Instrs.size() && "insertion index out of range");
  Instruction *I = createInstr(Op);
  Instrs.emplace(Instrs.begin() + Idx, I);
  return I;
}

Instruction *BasicBlock::insertBefore(Instruction *Before, Opcode Op) {
  return insertAt(indexOf(Before), Op);
}

Instruction *BasicBlock::insertAfter(Instruction *After, Opcode Op) {
  return insertAt(indexOf(After) + 1, Op);
}

void BasicBlock::erase(Instruction *I) {
  unsigned Idx = indexOf(I);
  Instrs.erase(Instrs.begin() + Idx);
}

std::unique_ptr<Instruction> BasicBlock::take(Instruction *I) {
  unsigned Idx = indexOf(I);
  std::unique_ptr<Instruction> Owned = std::move(Instrs[Idx]);
  Instrs.erase(Instrs.begin() + Idx);
  Owned->setParent(nullptr);
  return Owned;
}

Instruction *BasicBlock::insertOwned(unsigned Idx,
                                     std::unique_ptr<Instruction> I) {
  assert(Idx <= Instrs.size() && "insertion index out of range");
  I->setParent(this);
  Instruction *Raw = I.get();
  Instrs.emplace(Instrs.begin() + Idx, std::move(I));
  return Raw;
}

unsigned BasicBlock::indexOf(const Instruction *I) const {
  for (unsigned Idx = 0, E = unsigned(Instrs.size()); Idx != E; ++Idx)
    if (Instrs[Idx].get() == I)
      return Idx;
  HELIX_UNREACHABLE("instruction not in block");
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  Instruction *Term = terminator();
  if (!Term)
    return Result;
  if (Term->target1())
    Result.push_back(Term->target1());
  if (Term->target2())
    Result.push_back(Term->target2());
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

BasicBlock *Function::createBlock(std::string BlockName) {
  uint32_t Id = NextBlockId++;
  if (BlockName.empty())
    BlockName = "bb" + std::to_string(Id);
  // Names must be unique within the function: the textual IR uses them as
  // labels, so a collision (e.g. repeated block splitting deriving
  // "x.cont" twice) would print a module the parser rejects as a
  // duplicate label. Callers hold the returned pointer, never the name,
  // so disambiguating here is safe.
  if (findBlock(BlockName)) {
    unsigned Suffix = 1;
    std::string Candidate;
    do
      Candidate = BlockName + "." + std::to_string(Suffix++);
    while (findBlock(Candidate));
    BlockName = std::move(Candidate);
  }
  Blocks.emplace_back(new BasicBlock(this, Id, std::move(BlockName)));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  Blocks.erase(It);
}

BasicBlock *Function::findBlock(const std::string &BlockName) const {
  for (const auto &BB : Blocks)
    if (BB->name() == BlockName)
      return BB.get();
  return nullptr;
}

void Function::moveBlockAfter(BasicBlock *BB, BasicBlock *After) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  std::unique_ptr<BasicBlock> Owned = std::move(*It);
  Blocks.erase(It);
  auto AfterIt = std::find_if(Blocks.begin(), Blocks.end(),
                              [&](const auto &P) { return P.get() == After; });
  assert(AfterIt != Blocks.end() && "anchor block not in function");
  Blocks.insert(AfterIt + 1, std::move(Owned));
}

unsigned Function::numInstrs() const {
  unsigned N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(std::string Name, unsigned NumParams) {
  assert(!findFunction(Name) && "duplicate function name");
  Funcs.emplace_back(new Function(this, std::move(Name), NumParams));
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

unsigned Module::createGlobal(std::string Name, uint64_t Size) {
  assert(findGlobal(Name) == ~0u && "duplicate global name");
  GlobalVariable G;
  G.Name = std::move(Name);
  G.Size = Size;
  Globals.push_back(std::move(G));
  return unsigned(Globals.size() - 1);
}

unsigned Module::findGlobal(const std::string &Name) const {
  for (unsigned I = 0, E = unsigned(Globals.size()); I != E; ++I)
    if (Globals[I].Name == Name)
      return I;
  return ~0u;
}
