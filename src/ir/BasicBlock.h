//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks of the HELIX IR.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_BASICBLOCK_H
#define HELIX_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace helix {

class Function;

/// A maximal straight-line sequence of instructions ending in a terminator.
///
/// Blocks own their instructions; Instruction pointers stay stable across
/// insertions and removals elsewhere in the block.
class BasicBlock {
public:
  BasicBlock(Function *Parent, uint32_t Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *parent() const { return Parent; }
  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  bool empty() const { return Instrs.empty(); }
  unsigned size() const { return unsigned(Instrs.size()); }
  Instruction *instr(unsigned Idx) const { return Instrs[Idx].get(); }
  Instruction *front() const { return Instrs.front().get(); }
  Instruction *back() const { return Instrs.back().get(); }

  /// \returns the terminator, or null if the block is not yet terminated.
  Instruction *terminator() const {
    if (Instrs.empty() || !Instrs.back()->isTerminator())
      return nullptr;
    return Instrs.back().get();
  }

  /// Creates an instruction and appends it.
  Instruction *append(Opcode Op);
  /// Creates an instruction and inserts it at position \p Idx.
  Instruction *insertAt(unsigned Idx, Opcode Op);
  /// Creates an instruction and inserts it immediately before \p Before,
  /// which must live in this block.
  Instruction *insertBefore(Instruction *Before, Opcode Op);
  /// Creates an instruction and inserts it immediately after \p After,
  /// which must live in this block.
  Instruction *insertAfter(Instruction *After, Opcode Op);

  /// Removes and destroys \p I, which must live in this block.
  void erase(Instruction *I);
  /// Removes \p I without destroying it and returns ownership.
  std::unique_ptr<Instruction> take(Instruction *I);
  /// Inserts an owned instruction at position \p Idx (used by schedulers and
  /// by inlining when splicing instructions between blocks).
  Instruction *insertOwned(unsigned Idx, std::unique_ptr<Instruction> I);

  /// \returns the position of \p I in this block (linear scan).
  unsigned indexOf(const Instruction *I) const;

  /// Range-style access over raw pointers.
  class iterator {
  public:
    iterator(const std::vector<std::unique_ptr<Instruction>> *V, size_t Pos)
        : V(V), Pos(Pos) {}
    Instruction *operator*() const { return (*V)[Pos].get(); }
    iterator &operator++() {
      ++Pos;
      return *this;
    }
    bool operator!=(const iterator &O) const { return Pos != O.Pos; }

  private:
    const std::vector<std::unique_ptr<Instruction>> *V;
    size_t Pos;
  };
  iterator begin() const { return iterator(&Instrs, 0); }
  iterator end() const { return iterator(&Instrs, Instrs.size()); }

  /// Successor blocks from the terminator (0, 1 or 2 of them).
  std::vector<BasicBlock *> successors() const;

private:
  Instruction *createInstr(Opcode Op);

  Function *Parent;
  uint32_t Id;
  std::string Name;
  std::vector<std::unique_ptr<Instruction>> Instrs;
};

} // namespace helix

#endif // HELIX_IR_BASICBLOCK_H
