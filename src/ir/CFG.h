//===----------------------------------------------------------------------===//
///
/// \file
/// CFG utilities: predecessor maps, reverse post order, edge splitting and
/// reachability, shared by the analyses and the HELIX transformation.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_CFG_H
#define HELIX_IR_CFG_H

#include "ir/Function.h"

#include <vector>

namespace helix {

/// Precomputed CFG shape of one function. Invalidated by any CFG edit.
class CFGInfo {
public:
  explicit CFGInfo(Function *F);

  Function *function() const { return F; }

  const std::vector<BasicBlock *> &predecessors(const BasicBlock *BB) const {
    return Preds[BB->id()];
  }

  /// Blocks in reverse post order from the entry. Unreachable blocks are
  /// excluded.
  const std::vector<BasicBlock *> &reversePostOrder() const { return RPO; }

  /// Position of \p BB in the RPO sequence; ~0u for unreachable blocks.
  unsigned rpoIndex(const BasicBlock *BB) const { return RPOIndex[BB->id()]; }

  bool isReachable(const BasicBlock *BB) const {
    return RPOIndex[BB->id()] != ~0u;
  }

private:
  Function *F;
  std::vector<std::vector<BasicBlock *>> Preds; // indexed by block id
  std::vector<BasicBlock *> RPO;
  std::vector<unsigned> RPOIndex; // indexed by block id
};

/// Splits the CFG edge \p From -> \p To by inserting a fresh block containing
/// a single unconditional branch to \p To. \returns the new block.
BasicBlock *splitEdge(Function *F, BasicBlock *From, BasicBlock *To);

} // namespace helix

#endif // HELIX_IR_CFG_H
