//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-module cloning. The driver keeps a pristine copy of each workload
/// for sequential baselines and per-candidate profiling clones.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_IR_CLONE_H
#define HELIX_IR_CLONE_H

#include "ir/Module.h"

#include <map>
#include <memory>

namespace helix {

/// Correspondence between original and cloned IR objects.
struct CloneMap {
  std::map<const Function *, Function *> Functions;
  std::map<const BasicBlock *, BasicBlock *> Blocks;
};

/// Deep-copies \p M. Register numbers, block names, global indices and
/// instruction order are preserved exactly (instruction ids are re-assigned
/// densely in program order).
std::unique_ptr<Module> cloneModule(const Module &M, CloneMap *MapOut = nullptr);

} // namespace helix

#endif // HELIX_IR_CLONE_H
