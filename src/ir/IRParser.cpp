#include "ir/IRParser.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace helix;

namespace {

/// Cursor over one line of input.
class LineLexer {
public:
  explicit LineLexer(const std::string &L) : Line(&L) {}

  void skipSpace() {
    while (Pos < Line->size() && std::isspace((unsigned char)(*Line)[Pos]))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line->size() || (*Line)[Pos] == '#';
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Line->size() && (*Line)[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return Pos < Line->size() ? (*Line)[Pos] : '\0';
  }

  /// Reads an identifier-like token [A-Za-z0-9_.]+.
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Line->size() &&
           (std::isalnum((unsigned char)(*Line)[Pos]) || (*Line)[Pos] == '_' ||
            (*Line)[Pos] == '.'))
      ++Pos;
    return Line->substr(Start, Pos - Start);
  }

  /// Reads a (possibly signed, possibly floating) numeric token.
  std::string number() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Line->size() && ((*Line)[Pos] == '-' || (*Line)[Pos] == '+'))
      ++Pos;
    while (Pos < Line->size() &&
           (std::isdigit((unsigned char)(*Line)[Pos]) || (*Line)[Pos] == '.' ||
            (*Line)[Pos] == 'e' || (*Line)[Pos] == 'E' ||
            (((*Line)[Pos] == '-' || (*Line)[Pos] == '+') && Pos > Start &&
             ((*Line)[Pos - 1] == 'e' || (*Line)[Pos - 1] == 'E'))))
      ++Pos;
    return Line->substr(Start, Pos - Start);
  }

private:
  const std::string *Line;
  size_t Pos = 0;
};

class Parser {
public:
  explicit Parser(const std::string &Text) {
    std::istringstream SS(Text);
    std::string Line;
    while (std::getline(SS, Line))
      Lines.push_back(Line);
  }

  ParseResult run();

private:
  [[nodiscard]] bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("line %u: %s", CurLine + 1, Msg.c_str());
    return false;
  }

  static bool isBlank(const std::string &Line) {
    for (char C : Line) {
      if (C == '#')
        return true;
      if (!std::isspace((unsigned char)C))
        return false;
    }
    return true;
  }

  bool prescan();
  bool parseGlobalLine(const std::string &Line);
  bool parseFunctionBody(Function *F, unsigned BodyBegin, unsigned BodyEnd);
  bool parseInstruction(Function *F, BasicBlock *BB, const std::string &Line);
  std::optional<Operand> parseOperand(LineLexer &Lex, Function *F);

  std::vector<std::string> Lines;
  unsigned CurLine = 0;
  std::string Error;
  std::unique_ptr<Module> M;
  // func name -> (header line, body start, body end exclusive of '}')
  struct FuncSpan {
    Function *F;
    unsigned Begin;
    unsigned End;
  };
  std::vector<FuncSpan> FuncSpans;
};

bool Parser::prescan() {
  M = std::make_unique<Module>();
  for (CurLine = 0; CurLine < Lines.size(); ++CurLine) {
    const std::string &Line = Lines[CurLine];
    if (isBlank(Line))
      continue;
    LineLexer Lex(Line);
    if (Lex.peek() == 'g') {
      std::string Kw = Lex.ident();
      if (Kw != "global")
        return fail("expected 'global' or 'func'");
      if (!parseGlobalLine(Line))
        return false;
      continue;
    }
    LineLexer Lex2(Line);
    std::string Kw = Lex2.ident();
    if (Kw != "func")
      return fail("expected 'global' or 'func' at top level, got '" + Kw +
                  "'");
    if (!Lex2.consume('@'))
      return fail("expected '@' after 'func'");
    std::string Name = Lex2.ident();
    if (Name.empty())
      return fail("missing function name");
    if (!Lex2.consume('('))
      return fail("expected '(' after function name");
    std::string NParams = Lex2.number();
    if (NParams.empty())
      return fail("missing parameter count");
    if (!Lex2.consume(')') || !Lex2.consume('{'))
      return fail("expected '(N) {' in function header");
    if (M->findFunction(Name))
      return fail("duplicate function @" + Name);
    Function *F =
        M->createFunction(Name, unsigned(std::strtoul(NParams.c_str(),
                                                      nullptr, 10)));
    unsigned Begin = CurLine + 1;
    unsigned Depth = CurLine;
    // Find the closing '}' line.
    unsigned EndLine = Begin;
    bool Found = false;
    for (; EndLine < Lines.size(); ++EndLine) {
      LineLexer L(Lines[EndLine]);
      if (L.peek() == '}') {
        Found = true;
        break;
      }
    }
    (void)Depth;
    if (!Found)
      return fail("missing '}' for function @" + Name);
    FuncSpans.push_back({F, Begin, EndLine});
    CurLine = EndLine;
  }
  return true;
}

bool Parser::parseGlobalLine(const std::string &Line) {
  LineLexer Lex(Line);
  std::string Kw = Lex.ident();
  assert(Kw == "global" && "caller checked keyword");
  if (!Lex.consume('@'))
    return fail("expected '@' after 'global'");
  std::string Name = Lex.ident();
  if (Name.empty())
    return fail("missing global name");
  std::string SizeTok = Lex.number();
  if (SizeTok.empty())
    return fail("missing global size");
  uint64_t Size = std::strtoull(SizeTok.c_str(), nullptr, 10);
  if (Size == 0)
    return fail("global size must be positive");
  if (M->findGlobal(Name) != ~0u)
    return fail("duplicate global @" + Name);
  unsigned Idx = M->createGlobal(Name, Size);
  if (Lex.consume('=')) {
    if (!Lex.consume('{'))
      return fail("expected '{' after '='");
    GlobalVariable &G = M->global(Idx);
    while (!Lex.consume('}')) {
      std::string V = Lex.number();
      if (V.empty())
        return fail("bad global initializer");
      G.Init.push_back(std::strtoll(V.c_str(), nullptr, 10));
      Lex.consume(',');
    }
    if (G.Init.size() > G.Size)
      return fail("more initializers than slots in @" + Name);
  }
  return true;
}

std::optional<Operand> Parser::parseOperand(LineLexer &Lex, Function *F) {
  char C = Lex.peek();
  if (C == 'r') {
    std::string Tok = Lex.ident();
    if (Tok.size() < 2) {
      (void)fail("bad register token '" + Tok + "'");
      return std::nullopt;
    }
    unsigned Reg = unsigned(std::strtoul(Tok.c_str() + 1, nullptr, 10));
    F->ensureRegCount(Reg + 1);
    return Operand::reg(Reg);
  }
  if (C == '@') {
    Lex.consume('@');
    std::string Name = Lex.ident();
    unsigned Idx = M->findGlobal(Name);
    if (Idx == ~0u) {
      (void)fail("unknown global @" + Name);
      return std::nullopt;
    }
    return Operand::global(Idx);
  }
  // Non-finite float immediates print as inf/-inf/nan/-nan (%.17g); they
  // must parse back, or modules computing them would not round-trip.
  {
    LineLexer Probe = Lex;
    bool Neg = Probe.consume('-');
    std::string Word = Probe.ident();
    if (Word == "inf" || Word == "nan") {
      Lex = Probe;
      double V = Word == "inf" ? std::numeric_limits<double>::infinity()
                               : std::numeric_limits<double>::quiet_NaN();
      return Operand::immFloat(Neg ? -V : V);
    }
  }
  std::string Num = Lex.number();
  if (Num.empty()) {
    (void)fail("expected operand");
    return std::nullopt;
  }
  if (Num.find('.') != std::string::npos ||
      Num.find('e') != std::string::npos || Num.find('E') != std::string::npos)
    return Operand::immFloat(std::strtod(Num.c_str(), nullptr));
  return Operand::immInt(std::strtoll(Num.c_str(), nullptr, 10));
}

bool Parser::parseFunctionBody(Function *F, unsigned BodyBegin,
                               unsigned BodyEnd) {
  // First pass: create blocks for labels so branches can forward-reference.
  for (CurLine = BodyBegin; CurLine < BodyEnd; ++CurLine) {
    const std::string &Line = Lines[CurLine];
    if (isBlank(Line))
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    // A label line contains only "name:".
    LineLexer Lex(Line);
    std::string Label = Lex.ident();
    if (!Label.empty() && Lex.consume(':') && Lex.atEnd()) {
      if (F->findBlock(Label))
        return fail("duplicate label '" + Label + "'");
      F->createBlock(Label);
    }
  }
  if (F->numBlocks() == 0)
    return fail("function @" + F->name() + " has no blocks");

  // Second pass: parse instructions into the current block.
  BasicBlock *BB = nullptr;
  for (CurLine = BodyBegin; CurLine < BodyEnd; ++CurLine) {
    const std::string &Line = Lines[CurLine];
    if (isBlank(Line))
      continue;
    LineLexer Lex(Line);
    std::string First = Lex.ident();
    if (!First.empty() && Lex.consume(':') && Lex.atEnd()) {
      BB = F->findBlock(First);
      assert(BB && "label created in first pass");
      continue;
    }
    if (!BB)
      return fail("instruction before first label");
    if (!parseInstruction(F, BB, Line))
      return false;
  }
  return true;
}

bool Parser::parseInstruction(Function *F, BasicBlock *BB,
                              const std::string &Line) {
  LineLexer Lex(Line);
  unsigned Dest = NoReg;
  // Optional "rN =" prefix.
  if (Lex.peek() == 'r') {
    LineLexer Probe = Lex;
    std::string Tok = Probe.ident();
    if (Probe.consume('=') && Tok.size() >= 2 && Tok[0] == 'r' &&
        std::isdigit((unsigned char)Tok[1])) {
      Dest = unsigned(std::strtoul(Tok.c_str() + 1, nullptr, 10));
      F->ensureRegCount(Dest + 1);
      Lex = Probe;
    }
  }

  std::string Name = Lex.ident();
  static const std::map<std::string, Opcode> OpcodeByName = [] {
    std::map<std::string, Opcode> ByName;
    for (unsigned Op = 0; Op <= unsigned(Opcode::Nop); ++Op)
      ByName[opcodeName(Opcode(Op))] = Opcode(Op);
    return ByName;
  }();
  auto It = OpcodeByName.find(Name);
  if (It == OpcodeByName.end())
    return fail("unknown opcode '" + Name + "'");
  Opcode Op = It->second;

  Instruction *I = BB->append(Op);
  if (Dest != NoReg)
    I->setDest(Dest);

  auto ParseOps = [&](unsigned Count) {
    for (unsigned K = 0; K != Count; ++K) {
      if (K && !Lex.consume(','))
        return fail("expected ','");
      std::optional<Operand> O = parseOperand(Lex, F);
      if (!O)
        return false;
      I->addOperand(*O);
    }
    return true;
  };

  switch (Op) {
  case Opcode::Br: {
    std::string Label = Lex.ident();
    BasicBlock *T = F->findBlock(Label);
    if (!T)
      return fail("unknown label '" + Label + "'");
    I->setTarget1(T);
    break;
  }
  case Opcode::CondBr: {
    std::optional<Operand> Cond = parseOperand(Lex, F);
    if (!Cond)
      return false;
    I->addOperand(*Cond);
    if (!Lex.consume(','))
      return fail("expected ',' after condbr condition");
    std::string L1 = Lex.ident();
    if (!Lex.consume(','))
      return fail("expected ',' between condbr labels");
    std::string L2 = Lex.ident();
    BasicBlock *T1 = F->findBlock(L1), *T2 = F->findBlock(L2);
    if (!T1 || !T2)
      return fail("unknown condbr label");
    I->setTarget1(T1);
    I->setTarget2(T2);
    break;
  }
  case Opcode::Call: {
    if (!Lex.consume('@'))
      return fail("expected '@callee' after call");
    std::string Callee = Lex.ident();
    Function *CF = M->findFunction(Callee);
    if (!CF)
      return fail("unknown function @" + Callee);
    I->setCallee(CF);
    if (!Lex.consume('('))
      return fail("expected '(' after callee");
    if (!Lex.consume(')')) {
      while (true) {
        std::optional<Operand> O = parseOperand(Lex, F);
        if (!O)
          return false;
        I->addOperand(*O);
        if (Lex.consume(')'))
          break;
        if (!Lex.consume(','))
          return fail("expected ',' or ')' in call arguments");
      }
    }
    break;
  }
  case Opcode::Alloca:
  case Opcode::Wait:
  case Opcode::SignalOp: {
    std::string Num = Lex.number();
    if (Num.empty())
      return fail("missing immediate");
    I->setImm(std::strtoll(Num.c_str(), nullptr, 10));
    break;
  }
  case Opcode::Ret: {
    if (!Lex.atEnd()) {
      std::optional<Operand> O = parseOperand(Lex, F);
      if (!O)
        return false;
      I->addOperand(*O);
    }
    break;
  }
  case Opcode::IterStart:
  case Opcode::MemFence:
  case Opcode::Nop:
    break;
  case Opcode::Store:
    if (!ParseOps(2))
      return false;
    break;
  case Opcode::Mov:
  case Opcode::Load:
  case Opcode::HeapAlloc:
  case Opcode::IntToFP:
  case Opcode::FPToInt:
    if (!ParseOps(1))
      return false;
    break;
  default:
    assert(isBinaryOpcode(Op) && "unhandled opcode class in parser");
    if (!ParseOps(2))
      return false;
    break;
  }

  if (!Lex.atEnd())
    return fail("trailing tokens after instruction");
  return true;
}

ParseResult Parser::run() {
  ParseResult Result;
  if (!prescan()) {
    Result.Error = Error;
    return Result;
  }
  for (const FuncSpan &Span : FuncSpans) {
    if (!parseFunctionBody(Span.F, Span.Begin, Span.End)) {
      Result.Error = Error;
      return Result;
    }
  }
  Result.M = std::move(M);
  return Result;
}

} // namespace

ParseResult helix::parseModule(const std::string &Text) {
  Parser P(Text);
  return P.run();
}
