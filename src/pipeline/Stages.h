//===----------------------------------------------------------------------===//
///
/// \file
/// The eight standard stages of the HELIX pipeline, mapping the paper's
/// structure onto the Stage interface:
///
///   profile        Section 2.2/3.1: training run of the original program,
///                  dynamic loop nesting graph and per-loop profiles.
///   candidates     Section 2.2: filter loops worth evaluating.
///   model-profile  Section 3.1: per candidate, profile the
///                  HELIX-optimized form to extract Equation-1 inputs.
///   select         Section 2.2: analytical loop selection (or a forced
///                  nesting level for the Figure 11/13 experiments).
///   transform      Section 2.1, Steps 1-8: parallelize the chosen set.
///   check          static verification of the transformed IR: the
///                  SyncChecker (src/check) re-derives the loop-carried
///                  dependences and proves coverage, deadlock-freedom and
///                  sync hygiene before anything executes.
///   validate       run the transformed program sequentially; outputs must
///                  match; collect the traces the simulator replays.
///   simulate       Section 3: CMP timing simulation and report
///                  aggregation (Figures 9-13, Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_STAGES_H
#define HELIX_PIPELINE_STAGES_H

#include "pipeline/Stage.h"

namespace helix {

class ProfileStage : public Stage {
public:
  const char *name() const override { return "profile"; }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
  bool serializeResult(const PipelineContext &Ctx,
                       std::string &Out) const override;
  bool deserializeResult(PipelineContext &Ctx,
                         const std::string &In) const override;
};

class CandidateStage : public Stage {
public:
  const char *name() const override { return "candidates"; }
  std::vector<const char *> dependencies() const override {
    return {"profile"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
  bool serializeResult(const PipelineContext &Ctx,
                       std::string &Out) const override;
  bool deserializeResult(PipelineContext &Ctx,
                         const std::string &In) const override;
};

/// Section 3.1's "subsequent profiling runs", fanned out over a thread
/// pool: every candidate's transform + trace run is independent (each
/// works on a private module clone), so the stage evaluates
/// PipelineConfig::ModelProfileThreads candidates concurrently and merges
/// the results in candidate order — bit-identical to a single-thread run.
class ModelProfilingStage : public Stage {
public:
  const char *name() const override { return "model-profile"; }
  std::vector<const char *> dependencies() const override {
    return {"candidates"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
  bool serializeResult(const PipelineContext &Ctx,
                       std::string &Out) const override;
  bool deserializeResult(PipelineContext &Ctx,
                         const std::string &In) const override;
};

class SelectionStage : public Stage {
public:
  const char *name() const override { return "select"; }
  std::vector<const char *> dependencies() const override {
    return {"model-profile"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  bool serializeResult(const PipelineContext &Ctx,
                       std::string &Out) const override;
  bool deserializeResult(PipelineContext &Ctx,
                         const std::string &In) const override;
};

class TransformStage : public Stage {
public:
  const char *name() const override { return "transform"; }
  std::vector<const char *> dependencies() const override {
    return {"select"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
};

class CheckStage : public Stage {
public:
  const char *name() const override { return "check"; }
  std::vector<const char *> dependencies() const override {
    return {"transform"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
};

class ValidateStage : public Stage {
public:
  const char *name() const override { return "validate"; }
  std::vector<const char *> dependencies() const override {
    return {"check"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
};

class SimulateStage : public Stage {
public:
  const char *name() const override { return "simulate"; }
  std::vector<const char *> dependencies() const override {
    return {"validate"};
  }
  std::string cacheKey(const PipelineConfig &Config) const override;
  bool run(PipelineContext &Ctx) override;
  void resetReport(PipelineReport &Report) const override;
};

} // namespace helix

#endif // HELIX_PIPELINE_STAGES_H
