//===----------------------------------------------------------------------===//
///
/// \file
/// The unified, layered configuration of the HELIX pipeline — the single
/// source of truth for every knob. It replaces the former split between
/// DriverConfig (driver-level knobs) and HelixOptions (transform knobs),
/// which duplicated SelectionSignalCycles and NumCores.
///
/// Layers:
///   - NumCores            top-level: how many cores the CMP has. Feeds the
///                         selection model, the data-placement accounting
///                         and the timing simulator alike.
///   - Helix               the transformation switches (Section 2.1 steps)
///                         plus the machine latency model they assume.
///   - Selection           the loop-selection experiment knobs (Section
///                         2.2 / 3.3, Figures 11-13).
///   - Prefetch/DoAcross   timing-simulator execution models (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_PIPELINECONFIG_H
#define HELIX_PIPELINE_PIPELINECONFIG_H

#include "exec/ExecLimits.h"
#include "helix/HelixOptions.h"
#include "sim/ParallelSim.h"

#include <cstdint>
#include <string>

namespace helix {

/// Knobs of the analytical loop-selection stage (Equation 1).
struct SelectionConfig {
  /// Signal latency S assumed by the selection model.
  ///
  /// Figure 12/13 override semantics: negative (the default) means the
  /// compiler estimates S per loop from its profile — the gap-based
  /// Section-3.3 estimate of how much of the unprefetched latency the
  /// helper thread can hide. An explicit value >= 0 models a compiler that
  /// *believes* every signal costs exactly S cycles, including on the
  /// chain of sequential segments: 0 reproduces Figure 12's underestimate
  /// (deep loops get picked, then slow down), 110 the overestimate
  /// (profitable loops are forfeited), and sweeping 4 -> 110 reproduces
  /// Figure 13's drift of the chosen loops toward outermost nesting
  /// levels.
  double SignalCycles = -1.0;

  /// When >= 1, skip model-driven selection and pick every executed
  /// candidate at this dynamic nesting level (1 = outermost), as in
  /// Figures 11 and 13.
  int ForceNestingLevel = -1;

  /// Candidate filter: loops below this fraction of program time are not
  /// evaluated.
  double MinLoopCycleFraction = 0.002;
};

/// Everything the pipeline stages read. One source of truth per knob.
struct PipelineConfig {
  /// Cores of the simulated CMP (Figure 9 sweeps 2/4/6). The machine
  /// *latency* constants live in Helix.Machine; the core count lives here
  /// only.
  unsigned NumCores = 6;

  /// HELIX transformation switches (Steps 1-8) and the machine latency
  /// model the transformation and simulator assume.
  HelixOptions Helix;

  SelectionConfig Selection;

  /// Signal-latency model of the timing simulator (Step 8 evaluation).
  PrefetchMode Prefetch = PrefetchMode::Helper;
  /// Model the classic DOACROSS baseline instead of HELIX overlap.
  bool DoAcross = false;

  /// Interpreter run-length cap for profiling and validation runs.
  uint64_t MaxInterpInstructions = ExecLimits::DefaultMaxSteps;

  /// Worker threads of the model-profile stage's per-candidate fan-out.
  /// 0 = hardware concurrency, 1 = forced single-thread execution. Pure
  /// execution policy: the stage's results are bit-identical for every
  /// value, so this knob is deliberately absent from its cache key.
  unsigned ModelProfileThreads = 0;

  /// Record structured trace spans (pipeline stages, loop passes, decode,
  /// execution) into the process-wide obs::TraceRecorder during this run.
  /// Enable-only: a run with the knob set switches the global recorder on
  /// and leaves it on, so concurrent runs (the serve daemon) keep a
  /// consistent recorder state. Drain with TraceRecorder::drainToFile —
  /// the tools' --trace-out flag does both ends. Deliberately absent from
  /// every stage cache key: tracing never changes results.
  bool TraceSpans = false;

  /// A/B baseline for the analysis-preservation contract: when true, the
  /// transforming stages put their AnalysisManager into conservative mode
  /// (every invalidation behaves like invalidate-all — the pre-preservation
  /// world). Results are bit-identical either way; only the analysis
  /// counters and compile time differ. bench_pass_performance and the
  /// preservation regression test flip this to prove the win.
  bool ConservativeAnalysisInvalidation = false;

  /// Central configuration validation, run by Pipeline::run before any
  /// stage executes. \returns an empty string when the configuration is
  /// usable, else a description of the first problem. Guards the knobs
  /// whose bad values would otherwise surface as UB deep inside a stage
  /// (e.g. NumCores == 0 reaching a modulo in the data-placement
  /// accounting).
  std::string validate() const {
    if (NumCores < 1)
      return "PipelineConfig: NumCores must be >= 1";
    if (MaxInterpInstructions == 0)
      return "PipelineConfig: MaxInterpInstructions must be >= 1";
    return std::string();
  }
};

} // namespace helix

#endif // HELIX_PIPELINE_PIPELINECONFIG_H
