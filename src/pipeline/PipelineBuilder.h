//===----------------------------------------------------------------------===//
///
/// \file
/// Composition of stages into runnable pipelines.
///
/// A Pipeline is an ordered list of stages executed against a
/// PipelineContext with per-stage caching and instrumentation. A
/// PipelineBuilder assembles one from code (add()) or from a pipeline
/// string such as
///
///   "profile,candidates,model-profile,select,transform,validate,simulate"
///
/// Shorthand strings are allowed: build() completes missing dependencies
/// by inserting them before their dependents, so "profile,select,simulate"
/// builds the full eight-stage pipeline. Ordering violations (a stage
/// listed after one that depends on it) and duplicates are build errors.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_PIPELINEBUILDER_H
#define HELIX_PIPELINE_PIPELINEBUILDER_H

#include "pipeline/PipelineContext.h"
#include "pipeline/Stage.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace helix {

/// Called after every stage slot of a run (executed or cache-skipped).
using StageCallback = std::function<void(const PipelineContext::StageRun &)>;

class Pipeline {
public:
  Pipeline() = default;
  Pipeline(Pipeline &&) = default;
  Pipeline &operator=(Pipeline &&) = default;

  /// Executes the stages in order against \p Ctx. Stages whose cached
  /// result is still valid for Ctx.config() are skipped; the first stage
  /// that must re-run invalidates everything downstream. \returns a copy
  /// of the context's report (Ok=true when every stage succeeded).
  PipelineReport run(PipelineContext &Ctx) const;

  /// One-shot convenience: fresh context over \p Original, run, report.
  PipelineReport run(const Module &Original,
                     const PipelineConfig &Config) const;

  size_t size() const { return Stages.size(); }
  const Stage &stage(size_t I) const { return *Stages[I]; }
  bool empty() const { return Stages.empty(); }

  /// The pipeline string: stage names joined with ','. Parsing this string
  /// again builds an identical pipeline (round trip).
  std::string str() const;

  void setInstrumentation(StageCallback CB) { Callback = std::move(CB); }

private:
  friend class PipelineBuilder;
  std::vector<std::unique_ptr<Stage>> Stages;
  StageCallback Callback;
};

class PipelineBuilder {
public:
  /// Instantiates a registered standard stage by name; null for unknown
  /// names.
  static std::unique_ptr<Stage> createStage(const std::string &Name);
  /// Names of all registered standard stages, in canonical order.
  static const std::vector<std::string> &standardStageNames();
  /// The full eight-stage pipeline (what runHelixPipeline runs).
  static Pipeline standard();

  /// Appends a custom stage instance.
  PipelineBuilder &add(std::unique_ptr<Stage> S);
  /// Appends a registered stage by name; records an error for unknown
  /// names.
  PipelineBuilder &add(const std::string &Name);
  /// Appends every stage of a pipeline string ("a,b,c", whitespace
  /// tolerated).
  PipelineBuilder &parse(const std::string &Text);
  /// Instrumentation hook installed on the built pipeline.
  PipelineBuilder &instrument(StageCallback CB);

  /// Validates the composition, completes missing dependencies, and
  /// returns the pipeline. On error returns an empty pipeline and, when
  /// \p Err is non-null, stores a description. The builder is consumed.
  Pipeline build(std::string *Err = nullptr);

private:
  std::vector<std::unique_ptr<Stage>> Pending;
  StageCallback Callback;
  std::string Error;
};

} // namespace helix

#endif // HELIX_PIPELINE_PIPELINEBUILDER_H
