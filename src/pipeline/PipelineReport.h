//===----------------------------------------------------------------------===//
///
/// \file
/// The result structures produced by the pipeline: per chosen loop
/// statistics and the whole-program report whose fields back the paper's
/// figures (9-13) and Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_PIPELINEREPORT_H
#define HELIX_PIPELINE_PIPELINEREPORT_H

#include "analysis/AnalysisKinds.h"
#include "helix/PassTiming.h"
#include "helix/SpeedupModel.h"
#include "obs/Metrics.h"
#include "sim/ParallelSim.h"

#include <string>
#include <vector>

namespace helix {

/// Per chosen loop results.
struct LoopReport {
  std::string Name;
  unsigned Node = 0;
  unsigned NestingLevel = 1; ///< dynamic level, 1 = outermost
  LoopModelInputs Inputs;
  SimStats Sim;
  // Static transform statistics (from ParallelLoopInfo).
  unsigned NumDepsTotal = 0, NumDepsCarried = 0;
  /// Pairs ZIV/SIV kept that value-range facts disproved (Step 2
  /// sharpening) — dependence precision the range analysis bought.
  unsigned NumDepsPrunedByRange = 0;
  unsigned SignalsInserted = 0, SignalsKept = 0;
  unsigned WaitsInserted = 0, WaitsKept = 0;
  unsigned CodeSizeInstrs = 0;
  unsigned NumSegments = 0;
};

struct PipelineReport {
  bool Ok = false;
  std::string Error;

  uint64_t SeqCycles = 0; ///< original sequential program time
  uint64_t ParCycles = 0; ///< simulated parallel program time
  double Speedup = 1.0;
  double ModelSpeedup = 1.0; ///< Equation-1 estimate for the chosen set
  bool OutputsMatch = false; ///< transformed program computes same result

  unsigned NumCandidates = 0;
  unsigned NumLoopsInProgram = 0;
  std::vector<LoopReport> Loops;

  /// Per-pass wall time of the transform stage's final parallelization,
  /// aggregated over the chosen loops (normalize, dependence, inline,
  /// ...). Attribution for slow Steps on big modules; the stage-level
  /// instrumentation only sees the transform as one opaque block.
  std::vector<LoopPassTiming> TransformPassTimings;

  /// Analysis-cache behaviour of the transform stage's AnalysisManager:
  /// per analysis, how often it was built, served from cache, and
  /// invalidated across the chosen-loop transforms. A pass silently
  /// regressing to invalidate-all shows up here as a build-count jump
  /// next to the timings above.
  std::vector<AnalysisCounterReport> TransformAnalysisCounters;

  /// The same counters for the model-profile stage's per-candidate
  /// transforms, merged in candidate order. Persisted in the stage's disk
  /// payload, so a sweep served from the cache still reports the analysis
  /// behaviour of the run that produced the entry.
  std::vector<AnalysisCounterReport> ModelProfileAnalysisCounters;

  /// Decode-once engine cache behaviour during this run: the delta of
  /// DecodeCache::global()'s decode/hit/evict counters across
  /// Pipeline::run. A warm repeat of an identical module shows zero
  /// decodes here; an eviction jump flags a working set larger than the
  /// cache. (Alongside the analysis counters above, this is the second
  /// process-lifetime cache the resident service shares across requests.)
  struct DecodeCacheStats {
    uint64_t Decodes = 0;
    uint64_t Hits = 0;
    uint64_t Evictions = 0;
    /// Instance tables rebuilt around a content-addressed shared body (a
    /// structurally identical module was decoded before).
    uint64_t BodyHits = 0;
  };
  DecodeCacheStats Decode;

  /// The check stage's static verification of the transformed program's
  /// Wait/Signal contract (src/check/SyncChecker.h). Findings abort the
  /// pipeline before the validate stage executes a single instruction;
  /// the counters survive so reports show how much was proven.
  struct SyncCheckStats {
    unsigned LoopsChecked = 0;
    unsigned DepsChecked = 0;
    unsigned EndpointsChecked = 0;
    unsigned SegmentsChecked = 0;
    unsigned Findings = 0;  ///< total diagnostics
    unsigned Coverage = 0;  ///< coverage-no-wait/-no-signal, shared-access
    unsigned Deadlock = 0;  ///< deadlock-signal-skipped
    unsigned Hygiene = 0;   ///< duplicate/unpaired signals, unknown ids
    unsigned Integrity = 0; ///< body-mutated, iv-stride-mismatch
  };
  SyncCheckStats SyncCheck;

  /// The validate stage's dependence-soundness audit (check/DepAudit):
  /// cross-iteration memory dependences witnessed while the transformed
  /// program ran its sequential validation leg, checked against the
  /// synchronized static dependence set. Uncovered witnesses fail the
  /// stage — a pruned-but-real dependence must never reach simulation.
  struct DepAuditStats {
    unsigned LoopsAudited = 0;
    unsigned Witnessed = 0;
    unsigned Covered = 0;
    unsigned Uncovered = 0;
    unsigned StaticMemDeps = 0;
    unsigned StaticUnwitnessed = 0; ///< precision gap, not an error
  };
  DepAuditStats DepAudit;

  /// Per-run delta of the process-wide metrics registry
  /// (obs::MetricsRegistry::global()) across Pipeline::run: every counter
  /// and histogram this run moved ("cache.stage.hits",
  /// "exec.interpreted.instructions", ...), gauges at their current value.
  /// Same attribution caveat as Decode above under concurrent runs.
  std::vector<obs::MetricSample> Metrics;

  // Figure 11 breakdown, percent of sequential execution time.
  double PctParallel = 0, PctSeqData = 0, PctSeqControl = 0, PctOutside = 100;

  // Table 1 aggregates.
  double LoopCarriedPct = 0;   ///< carried deps / all dependences
  double SignalsRemovedPct = 0;///< removed by Step 6 (static)
  double DataTransferPct = 0;  ///< forwarded words / loads executed in loops
  unsigned MaxCodeInstrs = 0;
};

} // namespace helix

#endif // HELIX_PIPELINE_PIPELINEREPORT_H
