//===----------------------------------------------------------------------===//
///
/// \file
/// The stage interface of the composable HELIX pipeline. A stage is a
/// named, individually runnable step that reads and writes artifacts of a
/// PipelineContext. Stages declare their upstream dependencies (so a
/// builder can complete and validate compositions) and a cache key over
/// the configuration slice they read (so contexts can reuse results across
/// configuration sweeps).
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_STAGE_H
#define HELIX_PIPELINE_STAGE_H

#include "pipeline/PipelineConfig.h"
#include "pipeline/PipelineReport.h"

#include <string>
#include <vector>

namespace helix {

class PipelineContext;

class Stage {
public:
  virtual ~Stage() = default;

  /// Stable, unique stage name; also the pipeline-string token.
  virtual const char *name() const = 0;

  /// Names of the stages whose artifacts this stage consumes. They must
  /// run earlier in any pipeline containing this stage.
  virtual std::vector<const char *> dependencies() const { return {}; }

  /// Serialization of the configuration slice this stage reads. Two
  /// configurations with equal keys produce identical stage results on the
  /// same context (given identical upstream artifacts), which is what
  /// makes stage results reusable across sweeps.
  virtual std::string cacheKey(const PipelineConfig &Config) const = 0;

  /// Executes the stage against \p Ctx. On failure, sets
  /// Ctx.Report.Error and returns false; the pipeline aborts.
  virtual bool run(PipelineContext &Ctx) = 0;

  /// Resets the report fields this stage owns to their defaults. Called
  /// for the failing stage and everything downstream when a run aborts,
  /// so a failed run never reports values left over from an earlier
  /// configuration point on a reused context.
  virtual void resetReport(PipelineReport &Report) const { (void)Report; }

  // --- Disk persistence (optional) ---------------------------------------
  //
  // A stage that can externalize its artifacts participates in the
  // disk-backed stage cache (pipeline/StageCache.h): after a successful
  // execution the pipeline stores serializeResult()'s payload, and on a
  // later run (typically a fresh process) deserializeResult() replaces the
  // execution entirely. Artifacts that are cheap and deterministic to
  // rebuild (module clones, analyses, the loop nesting graph) are NOT
  // serialized — deserializeResult recomputes them and loads only what an
  // interpreter training run would have produced.

  /// Appends this stage's artifacts to \p Out. \returns false when the
  /// stage does not support persistence (the default).
  virtual bool serializeResult(const PipelineContext &Ctx,
                               std::string &Out) const {
    (void)Ctx;
    (void)Out;
    return false;
  }

  /// Restores this stage's artifacts (and the report fields it owns) from
  /// \p In, exactly as a fresh run() would have left them. \returns false
  /// when unsupported or when \p In is malformed/inconsistent with the
  /// context — the pipeline then falls back to executing the stage.
  virtual bool deserializeResult(PipelineContext &Ctx,
                                 const std::string &In) const {
    (void)Ctx;
    (void)In;
    return false;
  }
};

} // namespace helix

#endif // HELIX_PIPELINE_STAGE_H
