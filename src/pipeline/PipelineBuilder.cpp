#include "pipeline/PipelineBuilder.h"

#include "exec/ExecProgram.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pipeline/StageCache.h"
#include "pipeline/Stages.h"

#include <algorithm>
#include <chrono>
#include <set>

using namespace helix;

//===----------------------------------------------------------------------===//
// Pipeline execution with caching and instrumentation.
//===----------------------------------------------------------------------===//

PipelineReport Pipeline::run(PipelineContext &Ctx) const {
  Ctx.Report.Ok = false;
  Ctx.Report.Error.clear();
  Ctx.takePendingInterpreted(); // drop stray attribution from failed runs

  if (Stages.empty()) {
    // An empty pipeline is almost always a build() failure the caller did
    // not check; running it must not look like success.
    Ctx.Report.Error = "empty pipeline (build failed or no stages added)";
    return Ctx.Report;
  }

  // Central configuration validation: reject knob values whose failure
  // mode inside a stage would be UB (NumCores == 0 reaching a modulo) or
  // a silent hang, before anything executes.
  std::string ConfigError = Ctx.config().validate();
  if (!ConfigError.empty()) {
    Ctx.Report.Error = ConfigError;
    return Ctx.Report;
  }

  // Observability: the TraceSpans knob switches the process-wide recorder
  // on (enable-only, see PipelineConfig); the whole run and each executed
  // stage become nested spans.
  if (Ctx.config().TraceSpans)
    obs::TraceRecorder::global().setEnabled(true);
  obs::TraceSpan RunSpan("pipeline.run", "pipeline");
  obs::MetricsRegistry &MR = obs::MetricsRegistry::global();

  // Decode-cache delta across this run (surfaced in the report next to the
  // analysis counters). The counters are process-wide, so with concurrent
  // pipeline runs (the serve daemon) a delta attributes *some* other
  // requests' decodes to this run — still exact for the warm-repeat
  // assertion, which runs one request at a time. The metrics-registry
  // delta below shares the caveat.
  const DecodeCache::Counters DecodeStart = DecodeCache::global().counters();
  const obs::MetricsSnapshot MetricsStart = MR.snapshot();
  MR.counter("pipeline.runs").add();
  Ctx.Report.Decode = {};
  Ctx.Report.Metrics.clear();
  auto RecordDecodeStats = [&] {
    DecodeCache::Counters Now = DecodeCache::global().counters();
    Ctx.Report.Decode.Decodes = Now.Decodes - DecodeStart.Decodes;
    Ctx.Report.Decode.Hits = Now.Hits - DecodeStart.Hits;
    Ctx.Report.Decode.Evictions = Now.Evictions - DecodeStart.Evictions;
    Ctx.Report.Decode.BodyHits = Now.BodyHits - DecodeStart.BodyHits;
    // Publish the delta into the registry first so the report's registry
    // snapshot includes the decode numbers it sits next to.
    MR.counter("exec.decode.decodes").add(Ctx.Report.Decode.Decodes);
    MR.counter("exec.decode.hits").add(Ctx.Report.Decode.Hits);
    MR.counter("exec.decode.evictions").add(Ctx.Report.Decode.Evictions);
    MR.counter("exec.decode.body_hits").add(Ctx.Report.Decode.BodyHits);
    Ctx.Report.Metrics = MR.snapshot().deltaFrom(MetricsStart).Samples;
  };

  StageCache *Disk = Ctx.stageCache();
  if (Disk && Ctx.moduleFingerprint().empty())
    Ctx.setModuleFingerprint(StageCache::moduleFingerprint(Ctx.original()));

  // A cached result is trusted only when (a) its key matches the current
  // config and (b) its generation stamp is not older than any upstream
  // stage's — condition (b) also catches upstream stages that re-ran as
  // part of a *different* pipeline on this context (e.g. a partial
  // "select"-only run between two full runs), where a plain
  // invalidate-downstream-in-this-pipeline cascade would not fire.
  uint64_t UpstreamGen = 0;
  // Concatenated stage keys up to and including the current stage. This is
  // what disk entries are keyed on: a dependency-closed pipeline is a
  // prefix of the standard chain, so the accumulated string captures the
  // configuration slice of everything that influenced the stage's input.
  std::string ChainKey;
  for (size_t I = 0; I != Stages.size(); ++I) {
    Stage &S = *Stages[I];
    std::string Key = S.cacheKey(Ctx.config());
    ChainKey += std::string(S.name()) + '=' + Key + ';';
    const PipelineContext::StageRecord *Rec = Ctx.stageRecord(S.name());
    if (Rec && Rec->Key == Key && Rec->Generation >= UpstreamGen) {
      UpstreamGen = Rec->Generation;
      MR.counter("cache.stage.hits").add();
      PipelineContext::StageRun R;
      R.Name = S.name();
      R.Cached = true;
      Ctx.addHistory(R);
      if (Callback)
        Callback(Ctx.history().back());
      continue;
    }
    Ctx.clearStageResult(S.name());

    // In-memory miss: try the disk cache before executing. A valid disk
    // entry restores the stage's artifacts without any interpreter work —
    // this is what makes a repeated bench invocation skip training runs
    // entirely. deserializeResult validates against the context and
    // rejects inconsistent payloads, so a bad entry degrades to a cold
    // execution, never to wrong results.
    if (Disk) {
      auto LoadStart = std::chrono::steady_clock::now();
      std::string Entry = StageCache::entryName(
          Ctx.workloadKey(), S.name(), ChainKey, Ctx.moduleFingerprint());
      std::string Payload;
      if (Disk->load(Entry, Payload) && S.deserializeResult(Ctx, Payload)) {
        auto LoadEnd = std::chrono::steady_clock::now();
        MR.counter("cache.stage.disk_hits").add();
        PipelineContext::StageRun R;
        R.Name = S.name();
        R.FromDisk = true;
        R.WallMillis = std::chrono::duration<double, std::milli>(LoadEnd -
                                                                 LoadStart)
                           .count();
        R.InterpretedInstructions = Ctx.takePendingInterpreted(); // 0
        Ctx.addHistory(R);
        if (Callback)
          Callback(Ctx.history().back());
        UpstreamGen = Ctx.recordStageResult(S.name(), Key);
        continue;
      }
    }

    auto Start = std::chrono::steady_clock::now();
    bool Ok;
    {
      obs::TraceSpan StageSpan(std::string("stage:") + S.name(), "stage");
      Ok = S.run(Ctx);
    }
    auto End = std::chrono::steady_clock::now();

    PipelineContext::StageRun R;
    R.Name = S.name();
    R.WallMillis =
        std::chrono::duration<double, std::milli>(End - Start).count();
    R.InterpretedInstructions = Ctx.takePendingInterpreted();
    MR.counter("cache.stage.misses").add();
    MR.histogram("pipeline.stage.wall_ms", {1, 10, 100, 1000, 10000})
        .observe(int64_t(R.WallMillis));
    MR.counter("exec.interpreted.instructions")
        .add(R.InterpretedInstructions);
    Ctx.addHistory(R);
    if (Callback)
      Callback(Ctx.history().back());

    if (!Ok) {
      // The context now holds partial artifacts of this stage: everything
      // not strictly upstream of it is stale. Drop those cache records so
      // a later run rebuilds them, and reset the report fields they own so
      // the failed run does not echo values from an earlier configuration
      // point — including standard stages *outside* this pipeline (the
      // chain/prefix property makes them all downstream).
      std::set<std::string> Upstream;
      for (size_t K = 0; K != I; ++K)
        Upstream.insert(Stages[K]->name());
      for (const std::string &Name : PipelineBuilder::standardStageNames()) {
        if (Upstream.count(Name))
          continue;
        Ctx.clearStageResult(Name);
        if (std::unique_ptr<Stage> Std = PipelineBuilder::createStage(Name))
          Std->resetReport(Ctx.Report);
      }
      for (size_t K = I; K != Stages.size(); ++K) {
        Ctx.clearStageResult(Stages[K]->name());
        Stages[K]->resetReport(Ctx.Report);
      }
      if (Ctx.Report.Error.empty())
        Ctx.Report.Error = std::string(S.name()) + " stage failed";
      RecordDecodeStats();
      return Ctx.Report;
    }
    UpstreamGen = Ctx.recordStageResult(S.name(), Key);
    if (Disk) {
      std::string Payload;
      if (S.serializeResult(Ctx, Payload))
        Disk->store(StageCache::entryName(Ctx.workloadKey(), S.name(),
                                          ChainKey, Ctx.moduleFingerprint()),
                    Payload);
    }
  }

  // The standard stages form a chain, and a dependency-closed pipeline is
  // therefore a prefix of it: every registered stage *not* in this
  // pipeline is downstream. Walk the whole chain against the *current*
  // config: the first stage whose record is missing, outdated, or keyed
  // to a different config is stale, and so is everything after it (its
  // input would change). Stale out-of-pipeline stages lose their record
  // and their report fields, so a partial run never returns an earlier
  // configuration point's numbers as current — even when every stage in
  // the partial pipeline itself was a cache hit.
  std::set<std::string> InPipeline;
  for (const auto &S : Stages)
    InPipeline.insert(S->name());
  uint64_t ChainGen = 0;
  bool ChainValid = true;
  for (const std::string &Name : PipelineBuilder::standardStageNames()) {
    std::unique_ptr<Stage> Std = PipelineBuilder::createStage(Name);
    const PipelineContext::StageRecord *Rec = Ctx.stageRecord(Name);
    if (ChainValid) {
      ChainValid = Rec && Rec->Generation >= ChainGen &&
                   Rec->Key == Std->cacheKey(Ctx.config());
      if (ChainValid)
        ChainGen = Rec->Generation;
    }
    if (!ChainValid && !InPipeline.count(Name)) {
      if (Rec)
        Ctx.clearStageResult(Name);
      Std->resetReport(Ctx.Report);
    }
  }

  Ctx.Report.Ok = true;
  RecordDecodeStats();
  return Ctx.Report;
}

PipelineReport Pipeline::run(const Module &Original,
                             const PipelineConfig &Config) const {
  PipelineContext Ctx(Original, Config);
  return run(Ctx);
}

std::string Pipeline::str() const {
  std::string Out;
  for (const auto &S : Stages) {
    if (!Out.empty())
      Out += ',';
    Out += S->name();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Builder.
//===----------------------------------------------------------------------===//

std::unique_ptr<Stage> PipelineBuilder::createStage(const std::string &Name) {
  if (Name == "profile")
    return std::make_unique<ProfileStage>();
  if (Name == "candidates")
    return std::make_unique<CandidateStage>();
  if (Name == "model-profile")
    return std::make_unique<ModelProfilingStage>();
  if (Name == "select")
    return std::make_unique<SelectionStage>();
  if (Name == "transform")
    return std::make_unique<TransformStage>();
  if (Name == "check")
    return std::make_unique<CheckStage>();
  if (Name == "validate")
    return std::make_unique<ValidateStage>();
  if (Name == "simulate")
    return std::make_unique<SimulateStage>();
  return nullptr;
}

const std::vector<std::string> &PipelineBuilder::standardStageNames() {
  static const std::vector<std::string> Names = {
      "profile", "candidates", "model-profile", "select",
      "transform", "check", "validate", "simulate"};
  return Names;
}

Pipeline PipelineBuilder::standard() {
  PipelineBuilder B;
  for (const std::string &Name : standardStageNames())
    B.add(Name);
  Pipeline P = B.build();
  return P;
}

PipelineBuilder &PipelineBuilder::add(std::unique_ptr<Stage> S) {
  Pending.push_back(std::move(S));
  return *this;
}

PipelineBuilder &PipelineBuilder::add(const std::string &Name) {
  std::unique_ptr<Stage> S = createStage(Name);
  if (!S) {
    if (Error.empty())
      Error = "unknown stage '" + Name + "'";
    return *this;
  }
  return add(std::move(S));
}

PipelineBuilder &PipelineBuilder::parse(const std::string &Text) {
  size_t Pos = 0;
  bool AnyToken = false;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Token = Text.substr(Pos, Comma - Pos);
    // Trim surrounding whitespace; ignore empty tokens between commas.
    size_t B = Token.find_first_not_of(" \t\n");
    if (B != std::string::npos) {
      size_t E = Token.find_last_not_of(" \t\n");
      add(Token.substr(B, E - B + 1));
      AnyToken = true;
    }
    Pos = Comma + 1;
  }
  // An empty/whitespace-only pipeline string is a caller bug (a typoed
  // flag, an unset variable). Silently yielding a zero-stage pipeline
  // would defer the failure to run(); report it at build time instead.
  if (!AnyToken && Error.empty())
    Error = "empty pipeline string";
  return *this;
}

PipelineBuilder &PipelineBuilder::instrument(StageCallback CB) {
  Callback = std::move(CB);
  return *this;
}

Pipeline PipelineBuilder::build(std::string *Err) {
  Pipeline P;
  if (!Error.empty()) {
    if (Err)
      *Err = Error;
    return P;
  }

  std::set<std::string> Present;
  std::vector<std::unique_ptr<Stage>> Out;

  // Inserts the dependency closure of \p Name (registered stages only),
  // depth-first, before the dependent.
  std::function<bool(const std::string &)> AddDep =
      [&](const std::string &Name) -> bool {
    if (Present.count(Name))
      return true;
    std::unique_ptr<Stage> Dep = createStage(Name);
    if (!Dep) {
      Error = "stage depends on unknown stage '" + Name + "'";
      return false;
    }
    for (const char *D : Dep->dependencies())
      if (!AddDep(D))
        return false;
    Present.insert(Name);
    Out.push_back(std::move(Dep));
    return true;
  };

  for (auto &S : Pending) {
    if (Present.count(S->name())) {
      Error = std::string("stage '") + S->name() +
              "' is duplicated or listed after a stage that depends on it";
      break;
    }
    bool DepsOk = true;
    for (const char *D : S->dependencies())
      if (!AddDep(D)) {
        DepsOk = false;
        break;
      }
    if (!DepsOk)
      break;
    Present.insert(S->name());
    Out.push_back(std::move(S));
  }

  Pending.clear();
  if (!Error.empty()) {
    if (Err)
      *Err = Error;
    return P;
  }
  P.Stages = std::move(Out);
  P.Callback = std::move(Callback);
  if (Err)
    Err->clear();
  return P;
}
