//===----------------------------------------------------------------------===//
///
/// \file
/// The stage cache: named entries holding one stage's serialized artifacts
/// for one (workload, upstream-chain) point. Pipeline::run consults one
/// when a context has it attached (PipelineContext::setStageCache): a hit
/// replaces the stage execution — for the profiling stages that means a
/// repeated bench invocation (or a repeated serve request) skips every
/// training run.
///
/// Two implementations share the StageCache interface:
///
///   - DiskStageCache: a directory of entry files, surviving the process.
///   - MemoryStageCache: a bounded, thread-safe in-process map with
///     hit/miss/eviction counters — the warm front of the resident serve
///     daemon, optionally layered over a disk cache (loads fall through
///     and promote, stores write through).
///
/// Entry naming and invalidation:
///
///   <workload>-<stage>-<hash>.stagecache
///
/// where <hash> is a 64-bit FNV-1a over (format version, workload key,
/// a fingerprint of the original module's printed IR, and the
/// concatenated cache keys of the stage and every stage upstream of it in
/// the standard chain). Any change to the workload generator, to an
/// upstream knob, or to a stage's own configuration slice therefore lands
/// on a different name; stale entries are never read, only orphaned.
/// Semantic changes to a stage's *implementation* are covered by the
/// code-version token each persisted stage embeds in its cacheKey
/// ("v2"/"c1"/"p2" in Stages.cpp) — bump it when the stage's behaviour
/// changes without any knob changing.
///
/// Disk file format: "HLXC" magic, format version, payload length, FNV-1a
/// checksum of the payload, payload bytes. A truncated, corrupted or
/// version-mismatched file is treated as a miss (and removed) — the
/// pipeline falls back to executing the stage, so a damaged cache can
/// never produce wrong results, only cold ones.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_STAGECACHE_H
#define HELIX_PIPELINE_STAGECACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace helix {

class Module;

/// Monotonic counters of one cache instance. Hits/Misses count load()
/// calls; Stores counts accepted store() calls; Evictions counts entries
/// dropped to stay under a capacity bound (memory cache only).
struct StageCacheCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
  uint64_t Evictions = 0;
};

/// The interface Pipeline::run talks to. Implementations must be safe for
/// concurrent load/store from multiple threads — the serve daemon runs
/// many requests against one instance.
class StageCache {
public:
  virtual ~StageCache() = default;

  /// False when the cache could not initialize; every load then misses and
  /// every store is dropped.
  virtual bool ok() const = 0;

  /// Reads the payload stored under \p EntryName. \returns false on miss.
  virtual bool load(const std::string &EntryName,
                    std::string &PayloadOut) const = 0;

  /// Stores \p Payload under \p EntryName. \returns true on success.
  virtual bool store(const std::string &EntryName,
                     const std::string &Payload) const = 0;

  virtual StageCacheCounters counters() const = 0;

  /// Entry name for one stage result: workload key + stage name + hash of
  /// everything that must invalidate it (see file comment).
  static std::string entryName(const std::string &WorkloadKey,
                               const std::string &StageName,
                               const std::string &ChainKey,
                               const std::string &ModuleFingerprint);

  /// 64-bit FNV-1a, the cache's sole hash.
  static uint64_t fnv1a(const std::string &Data);

  /// Fingerprint of a module: FNV-1a over its printed IR, hex-encoded.
  /// Exact — any textual change to the program invalidates every entry
  /// derived from it.
  static std::string moduleFingerprint(const Module &M);
};

/// Directory-backed persistent cache. Concurrent processes may share one
/// directory: writers stage to a unique temporary and rename atomically,
/// and the reader validates size and checksum against the inode it opened
/// (not the path), so a same-key store racing a load can never make the
/// load observe a torn entry or mis-reject a fresh one.
class DiskStageCache : public StageCache {
public:
  /// Binds the cache to \p Directory, creating it (and parents) if absent.
  /// When creation fails the cache is inert: every load misses, every
  /// store is dropped, and ok() reports false.
  explicit DiskStageCache(std::string Directory);

  const std::string &directory() const { return Dir; }
  bool ok() const override { return Usable; }

  bool load(const std::string &EntryName,
            std::string &PayloadOut) const override;
  bool store(const std::string &EntryName,
             const std::string &Payload) const override;
  StageCacheCounters counters() const override;

private:
  std::string entryPath(const std::string &EntryName) const;

  std::string Dir;
  bool Usable = false;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0}, Stores{0};
};

/// Process-lifetime warm cache: a mutex-guarded map bounded by total
/// payload bytes with LRU eviction. With a backing cache attached, a
/// memory miss falls through to it (promoting hits into memory) and every
/// store writes through — the layering the serve daemon uses to combine
/// warm in-process entries with an optional persistent directory.
class MemoryStageCache : public StageCache {
public:
  explicit MemoryStageCache(size_t MaxBytes = size_t(256) << 20,
                            StageCache *Backing = nullptr)
      : MaxBytes(MaxBytes), Backing(Backing) {}

  bool ok() const override { return true; }
  bool load(const std::string &EntryName,
            std::string &PayloadOut) const override;
  bool store(const std::string &EntryName,
             const std::string &Payload) const override;
  StageCacheCounters counters() const override;

  size_t entryCount() const;
  size_t byteSize() const;

private:
  void insertLocked(const std::string &EntryName,
                    const std::string &Payload) const;

  size_t MaxBytes;
  StageCache *Backing;
  mutable std::mutex Mutex;
  /// LRU order, most recent front. Entries own their payload bytes.
  mutable std::list<std::pair<std::string, std::string>> Order;
  mutable std::unordered_map<
      std::string, std::list<std::pair<std::string, std::string>>::iterator>
      Map;
  mutable size_t Bytes = 0;
  mutable StageCacheCounters Stats;
};

} // namespace helix

#endif // HELIX_PIPELINE_STAGECACHE_H
