//===----------------------------------------------------------------------===//
///
/// \file
/// Disk-persistent stage cache. A DiskStageCache is a directory of entry
/// files, each holding one stage's serialized artifacts for one (workload,
/// upstream-chain) point. Pipeline::run consults it when a context has one
/// attached (PipelineContext::setDiskCache): a hit replaces the stage
/// execution — for the profiling stages that means a repeated bench
/// invocation in a fresh process skips every training run.
///
/// Entry naming and invalidation:
///
///   <workload>-<stage>-<hash>.stagecache
///
/// where <hash> is a 64-bit FNV-1a over (format version, workload key,
/// a fingerprint of the original module's printed IR, and the
/// concatenated cache keys of the stage and every stage upstream of it in
/// the standard chain). Any change to the workload generator, to an
/// upstream knob, or to a stage's own configuration slice therefore lands
/// on a different file name; stale entries are never read, only orphaned.
/// Semantic changes to a stage's *implementation* are covered by the
/// code-version token each persisted stage embeds in its cacheKey
/// ("v2"/"c1"/"p1" in Stages.cpp) — bump it when the stage's behaviour
/// changes without any knob changing.
///
/// File format: "HLXC" magic, format version, payload length, FNV-1a
/// checksum of the payload, payload bytes. A truncated, corrupted or
/// version-mismatched file is treated as a miss (and removed) — the
/// pipeline falls back to executing the stage, so a damaged cache can
/// never produce wrong results, only cold ones.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_STAGECACHE_H
#define HELIX_PIPELINE_STAGECACHE_H

#include <cstdint>
#include <string>

namespace helix {

class Module;

class DiskStageCache {
public:
  /// Binds the cache to \p Directory, creating it (and parents) if absent.
  /// When creation fails the cache is inert: every load misses, every
  /// store is dropped, and ok() reports false.
  explicit DiskStageCache(std::string Directory);

  const std::string &directory() const { return Dir; }
  bool ok() const { return Usable; }

  /// Reads the payload stored under \p EntryName. \returns false on miss,
  /// corruption (the entry is then removed), or format mismatch.
  bool load(const std::string &EntryName, std::string &PayloadOut) const;

  /// Atomically stores \p Payload under \p EntryName (write to a
  /// temporary, then rename) so a concurrent or killed writer never leaves
  /// a torn entry behind. \returns true on success.
  bool store(const std::string &EntryName, const std::string &Payload) const;

  /// Entry file name for one stage result: workload key + stage name +
  /// hash of everything that must invalidate it (see file comment).
  static std::string entryName(const std::string &WorkloadKey,
                               const std::string &StageName,
                               const std::string &ChainKey,
                               const std::string &ModuleFingerprint);

  /// 64-bit FNV-1a, the cache's sole hash.
  static uint64_t fnv1a(const std::string &Data);

  /// Fingerprint of a module: FNV-1a over its printed IR, hex-encoded.
  /// Exact — any textual change to the program invalidates every entry
  /// derived from it.
  static std::string moduleFingerprint(const Module &M);

private:
  std::string entryPath(const std::string &EntryName) const;

  std::string Dir;
  bool Usable = false;
};

} // namespace helix

#endif // HELIX_PIPELINE_STAGECACHE_H
