//===----------------------------------------------------------------------===//
///
/// \file
/// The typed blackboard the pipeline stages communicate through. A context
/// is bound to one original module and owns every artifact the stages
/// produce: the pristine clone, its analyses and loop nesting graph, the
/// profiles, the model inputs, the chosen set, the transformed program,
/// the execution traces and the report.
///
/// The context also implements stage-result caching: each successful stage
/// execution is recorded together with a key derived from the slice of the
/// configuration the stage reads. Re-running a pipeline on the same
/// context after changing the configuration re-executes only the stages
/// whose key changed (and everything downstream of them), so a sweep that
/// varies one selection knob re-uses the expensive profiling work — the
/// Figure 10/12/13 ablations profile once instead of once per point.
///
//===----------------------------------------------------------------------===//

#ifndef HELIX_PIPELINE_PIPELINECONTEXT_H
#define HELIX_PIPELINE_PIPELINECONTEXT_H

#include "analysis/AnalysisManager.h"
#include "analysis/LoopNestGraph.h"
#include "helix/ParallelLoopInfo.h"
#include "pipeline/PipelineConfig.h"
#include "pipeline/PipelineReport.h"
#include "profile/Profiler.h"
#include "sim/TraceCollector.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace helix {

class StageCache;

class PipelineContext {
public:
  /// \p Original must outlive the context; stages clone it and never
  /// mutate it.
  explicit PipelineContext(const Module &Original,
                           const PipelineConfig &Config = PipelineConfig())
      : Original(&Original), Config(Config) {}

  PipelineContext(const PipelineContext &) = delete;
  PipelineContext &operator=(const PipelineContext &) = delete;

  const Module &original() const { return *Original; }

  const PipelineConfig &config() const { return Config; }
  /// Replaces the configuration for subsequent runs. Cached stage results
  /// are *not* dropped here: each stage's cache key decides whether the
  /// new configuration invalidates it.
  void setConfig(const PipelineConfig &C) { Config = C; }

  // --- Artifacts, in stage order. Public by design: stages are spread
  //     over several translation units and the context is their interface.

  // profile
  std::unique_ptr<Module> Pristine;     ///< clone the pipeline works on
  std::unique_ptr<AnalysisManager> AM;  ///< analyses of Pristine
  std::unique_ptr<LoopNestGraph> LNG;   ///< loop nesting graph of Pristine
  ExecResult SeqRun;                  ///< sequential (training) run
  ProgramProfile Profile;
  std::vector<unsigned> Levels; ///< dynamic nesting level per LNG node

  // candidates
  std::vector<unsigned> Candidates; ///< LNG node ids worth evaluating

  // model-profile
  std::vector<std::optional<LoopModelInputs>> ModelInputs; ///< per LNG node

  // select
  std::vector<unsigned> Chosen; ///< LNG node ids to parallelize

  // transform
  std::unique_ptr<Module> Transformed;
  std::unique_ptr<AnalysisManager> TransformedAM;
  /// (LNG node, metadata) per successfully parallelized loop. Stable for
  /// the lifetime of the transform result: Traces points into it.
  std::vector<std::pair<unsigned, ParallelLoopInfo>> TransformedLoops;

  // validate
  std::unique_ptr<TraceCollector> Traces;
  ExecResult ParRun;

  // simulate / aggregate
  PipelineReport Report;

  // --- Stage-result cache ------------------------------------------------

  /// A successful stage execution: the config key it ran under and a
  /// monotonic generation stamp. The stamp orders executions *across*
  /// pipeline runs, so a cached result is trusted only when nothing
  /// upstream of it has executed more recently — even when the upstream
  /// stage re-ran as part of a different (e.g. partial) pipeline.
  struct StageRecord {
    std::string Key;
    uint64_t Generation = 0;
  };
  const StageRecord *stageRecord(const std::string &Name) const {
    auto It = StageKeys.find(Name);
    return It == StageKeys.end() ? nullptr : &It->second;
  }
  /// Records a successful execution and returns its generation stamp.
  uint64_t recordStageResult(const std::string &Name, const std::string &Key) {
    StageKeys[Name] = {Key, ++Generation};
    return Generation;
  }
  void clearStageResult(const std::string &Name) { StageKeys.erase(Name); }

  // --- Persistent / shared stage cache -----------------------------------

  /// Attaches a stage cache (pipeline/StageCache.h — disk-backed,
  /// in-memory, or layered). \p WorkloadKey names this context's program
  /// in entry files — bench harnesses pass the workload name, the serve
  /// daemon a per-service label. The cache must outlive the context. Pass
  /// nullptr to detach. Subsequent Pipeline::run calls will satisfy
  /// persistence-aware stages from it (and populate it after executions).
  void setStageCache(StageCache *Cache, std::string WorkloadKey) {
    this->Cache = Cache;
    this->WorkloadKey = std::move(WorkloadKey);
  }
  /// Compatibility spelling from when the only implementation was the disk
  /// cache; bench harnesses and older tests still use it.
  void setDiskCache(StageCache *Cache, std::string WorkloadKey) {
    setStageCache(Cache, std::move(WorkloadKey));
  }
  StageCache *stageCache() const { return Cache; }
  const std::string &workloadKey() const { return WorkloadKey; }

  /// Fingerprint of the original module, computed lazily by Pipeline::run
  /// when a disk cache is attached (it needs the IR printer, which this
  /// header must not depend on).
  const std::string &moduleFingerprint() const { return Fingerprint; }
  void setModuleFingerprint(std::string F) { Fingerprint = std::move(F); }

  // --- Instrumentation ---------------------------------------------------

  /// One entry per stage slot of every pipeline run on this context.
  struct StageRun {
    std::string Name;
    bool Cached = false;     ///< in-memory result reused, body not executed
    bool FromDisk = false;   ///< restored from the disk cache, body not run
    double WallMillis = 0.0; ///< 0 when Cached; load time when FromDisk
    uint64_t InterpretedInstructions = 0; ///< interpreter work in the stage
  };
  /// Detailed per-slot records, most recent last. Bounded: on very long
  /// sweeps the oldest half is dropped once the cap is hit; the
  /// timesExecuted/timesReused counters below are exact regardless.
  const std::vector<StageRun> &history() const { return History; }
  /// How often the stage body actually executed on this context.
  unsigned timesExecuted(const std::string &Name) const {
    auto It = ExecutedCount.find(Name);
    return It == ExecutedCount.end() ? 0 : It->second;
  }
  /// How often a cached result was reused instead.
  unsigned timesReused(const std::string &Name) const {
    auto It = ReusedCount.find(Name);
    return It == ReusedCount.end() ? 0 : It->second;
  }
  /// How often the stage was restored from the disk cache.
  unsigned timesLoadedFromDisk(const std::string &Name) const {
    auto It = DiskLoadCount.find(Name);
    return It == DiskLoadCount.end() ? 0 : It->second;
  }

  /// Stages call this to attribute interpreter work to the current run;
  /// the pipeline driver folds it into the StageRun record.
  void noteInterpreted(uint64_t Instructions) {
    PendingInstructions += Instructions;
  }

  /// Used by Pipeline::run around each stage execution.
  uint64_t takePendingInterpreted() {
    uint64_t N = PendingInstructions;
    PendingInstructions = 0;
    return N;
  }
  void addHistory(StageRun R) {
    (R.Cached ? ReusedCount : R.FromDisk ? DiskLoadCount : ExecutedCount)
        [R.Name] += 1;
    if (History.size() >= MaxHistory)
      History.erase(History.begin(), History.begin() + MaxHistory / 2);
    History.push_back(std::move(R));
  }

private:
  static constexpr size_t MaxHistory = 8192;
  const Module *Original;
  PipelineConfig Config;
  std::map<std::string, StageRecord> StageKeys;
  uint64_t Generation = 0;
  std::vector<StageRun> History;
  std::map<std::string, unsigned> ExecutedCount, ReusedCount, DiskLoadCount;
  uint64_t PendingInstructions = 0;
  StageCache *Cache = nullptr;
  std::string WorkloadKey;
  std::string Fingerprint;
};

} // namespace helix

#endif // HELIX_PIPELINE_PIPELINECONTEXT_H
